package walrus

import (
	"testing"
)

// TestGiSTBackendMatchesRStar: both index backends produce identical query
// results on the same data.
func TestGiSTBackendMatchesRStar(t *testing.T) {
	imgs := []BatchItem{
		{"a", scene(green, red, 10, 10, 50)},
		{"b", scene(green, red, 60, 60, 50)},
		{"c", scene(gray, blue, 30, 30, 50)},
		{"d", scene(green, yellow, 20, 40, 40)},
	}
	build := func(backend IndexBackend) *DB {
		o := testOptions()
		o.Index = backend
		db, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range imgs {
			if err := db.Add(it.ID, it.Image); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	rs := build(IndexRStar)
	gi := build(IndexGiST)
	if rs.NumRegions() != gi.NumRegions() {
		t.Fatalf("region counts differ: %d vs %d", rs.NumRegions(), gi.NumRegions())
	}
	for _, q := range []struct{ x, y int }{{8, 8}, {40, 40}, {70, 20}} {
		query := scene(green, red, q.x, q.y, 50)
		mr, _, err := rs.Query(query, DefaultQueryParams())
		if err != nil {
			t.Fatal(err)
		}
		mg, _, err := gi.Query(query, DefaultQueryParams())
		if err != nil {
			t.Fatal(err)
		}
		if len(mr) != len(mg) {
			t.Fatalf("result counts differ: %d vs %d", len(mr), len(mg))
		}
		for i := range mr {
			if mr[i].ID != mg[i].ID || mr[i].Similarity != mg[i].Similarity {
				t.Fatalf("rank %d: rstar %+v vs gist %+v", i, mr[i], mg[i])
			}
		}
	}
	// Remove works on the gist backend too.
	ok, err := gi.Remove("b")
	if err != nil || !ok {
		t.Fatalf("gist Remove: %v %v", ok, err)
	}
	if gi.Len() != 3 {
		t.Fatalf("Len = %d", gi.Len())
	}
	if gi.Stats().IndexHeight < 1 {
		t.Fatal("gist Height")
	}
}

func TestIndexBackendString(t *testing.T) {
	if IndexRStar.String() != "rstar" || IndexGiST.String() != "gist" {
		t.Fatal("IndexBackend strings")
	}
	if IndexBackend(9).String() == "" {
		t.Fatal("unknown backend string")
	}
}

// TestGiSTBackendRestrictions: disk mode and bulk load require the R*-tree.
func TestGiSTBackendRestrictions(t *testing.T) {
	o := testOptions()
	o.Index = IndexGiST
	if _, err := Create(t.TempDir(), o); err == nil {
		t.Fatal("Create accepted gist backend")
	}
	if _, err := BuildFrom(o, nil, 0); err == nil {
		t.Fatal("BuildFrom accepted gist backend")
	}
	o.Index = IndexBackend(7)
	if _, err := New(o); err == nil {
		t.Fatal("New accepted unknown backend")
	}
}
