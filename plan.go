//walrus:lint-hot query stage runner: drives the per-shard stage fan-outs
package walrus

import (
	"context"
	"time"

	"walrus/internal/match"
	"walrus/internal/obs"
	"walrus/internal/region"
)

// The composable query plan. A query no longer hand-chains its stages:
// planPhaseA and planScore assemble an explicit stage list from the
// query parameters and the snapshot's configuration, and runStages
// executes it — one runner shared by Snapshot and ShardedSnapshot (and
// therefore the serve layer), providing the deadline check, the child
// span, and the funnel timing slot for every stage, so a new tier plugs
// in by adding one queryStage to the plan instead of rethreading
// query.go, shard.go and trace.go by hand.

// stageExec is the state one plan execution threads between stages: the
// snapshot the stages read, the query inputs, and each stage's output.
// A sharded query runs one exec per shard over the same plan.
type stageExec struct {
	snap     *Snapshot
	qRegions []region.Region
	qArea    int
	p        QueryParams
	workers  int
	// tc is the EXPLAIN funnel collector (nil when the query is not
	// explained); the runner files each stage's wall time into it.
	tc *traceCollector

	// Stage outputs, in pipeline order.
	perRegion    [][]probeHit
	pairsByImage map[int][]match.Pair
	retrieved    int
	matches      []Match
}

// queryStage is one composable pipeline stage: a plan name (also the
// span suffix and the collector's timing slot) and the stage body. The
// body receives the execution state and its own span; deadline checks,
// span lifecycle and stage timing belong to the runner.
type queryStage struct {
	name string
	run  func(ctx context.Context, ex *stageExec, sp *obs.Span) error
}

// prefilterEnabled resolves the effective prefilter setting: the coarse
// tier applies only to centroid-signature databases, whose envelope test
// is a euclidean bound the binary signatures conservatively approximate.
// Bounding-box databases match by box overlap, which the probe already
// tests exactly.
func prefilterEnabled(p QueryParams, opts Options) bool {
	return p.Prefilter && !opts.UseBBox
}

// planPhaseA assembles the probe side of the pipeline — everything up to
// the per-image pair sets the scorer consumes: probe, then the optional
// coarse prefilter and refine tiers, then aggregate.
func planPhaseA(p QueryParams, opts Options) []queryStage {
	stages := make([]queryStage, 0, 4)
	stages = append(stages, queryStage{name: "probe", run: runProbe})
	if prefilterEnabled(p, opts) {
		stages = append(stages, queryStage{name: "prefilter", run: runPrefilter})
	}
	if p.Refine {
		stages = append(stages, queryStage{name: "refine", run: runRefine})
	}
	stages = append(stages, queryStage{name: "aggregate", run: runAggregate})
	return stages
}

// planScore is the scoring side of the pipeline, run per shard after
// phase A so a sharded query can fan the two phases out independently.
func planScore() []queryStage {
	return []queryStage{{name: "score", run: runScore}}
}

// runStages executes a plan over one exec. Every stage gets a deadline
// check before it starts, a child span named prefix+name under parent
// (tagged with the shard index when shard >= 0), and — when the query is
// explained — its wall time recorded into the collector slot matching
// its name. A failing stage ends its own span with an error mark; the
// caller owns the parent.
func runStages(ctx context.Context, stages []queryStage, ex *stageExec, parent *obs.Span, prefix string, shard int) error {
	for _, st := range stages {
		if err := ctx.Err(); err != nil {
			return err
		}
		sp := parent.Child(prefix + st.name)
		if shard >= 0 {
			sp.SetAttr("shard", int64(shard))
		}
		var stageStart time.Time
		if ex.tc != nil {
			stageStart = statsClock()
		}
		if err := st.run(ctx, ex, sp); err != nil {
			failSpans(sp)
			return err
		}
		if ex.tc != nil {
			ex.tc.recordNS(st.name, statsSince(stageStart).Nanoseconds())
		}
		sp.End()
	}
	return nil
}

func runProbe(ctx context.Context, ex *stageExec, sp *obs.Span) error {
	perRegion, err := ex.snap.probeStage(ctx, ex.qRegions, ex.p, ex.workers, ex.tc)
	if err != nil {
		return err
	}
	ex.perRegion = perRegion
	return nil
}

func runPrefilter(ctx context.Context, ex *stageExec, sp *obs.Span) error {
	return ex.snap.prefilterStage(ctx, ex.qRegions, ex.perRegion, ex.p, ex.workers, ex.tc)
}

func runRefine(ctx context.Context, ex *stageExec, sp *obs.Span) error {
	return ex.snap.refineStage(ctx, ex.qRegions, ex.perRegion, ex.p, ex.workers, ex.tc)
}

func runAggregate(ctx context.Context, ex *stageExec, sp *obs.Span) error {
	ex.pairsByImage, ex.retrieved = aggregateStage(ex.perRegion)
	if ex.tc != nil {
		ex.tc.candidates = len(ex.pairsByImage)
	}
	sp.SetAttr("regions_retrieved", int64(ex.retrieved))
	sp.SetAttr("candidates", int64(len(ex.pairsByImage)))
	return nil
}

func runScore(ctx context.Context, ex *stageExec, sp *obs.Span) error {
	matches, err := ex.snap.scoreStage(ctx, ex.qRegions, ex.qArea, ex.pairsByImage, ex.p, ex.workers)
	if err != nil {
		return err
	}
	ex.matches = matches
	if ex.tc != nil {
		ex.tc.matches = len(matches)
	}
	sp.SetAttr("matches", int64(len(matches)))
	return nil
}
