package walrus

import (
	"fmt"

	"walrus/internal/gist"
	"walrus/internal/rstar"
)

// IndexBackend selects the spatial index implementation for in-memory
// databases.
type IndexBackend int

const (
	// IndexRStar is the purpose-built R*-tree (the default, and the only
	// backend supported by disk-backed databases).
	IndexRStar IndexBackend = iota
	// IndexGiST uses the generalized search tree framework with the
	// rectangle key class — the structure the paper's own implementation
	// was built on (libgist). Useful as an ablation against the R*-tree.
	IndexGiST
)

func (b IndexBackend) String() string {
	switch b {
	case IndexRStar:
		return "rstar"
	case IndexGiST:
		return "gist"
	default:
		return fmt.Sprintf("IndexBackend(%d)", int(b))
	}
}

// spatialIndex abstracts the region index so the DB can run on either the
// R*-tree or the GiST rectangle tree.
type spatialIndex interface {
	Insert(r rstar.Rect, data int64) error
	Delete(r rstar.Rect, data int64) (bool, error)
	SearchAll(q rstar.Rect) ([]rstar.Entry, error)
	Len() int
	Height() int
}

// rstar.Tree satisfies spatialIndex directly.
var _ spatialIndex = (*rstar.Tree)(nil)

// gistIndex adapts the generic GiST to spatialIndex.
type gistIndex struct {
	t *gist.Tree[rstar.Rect]
}

func newGistIndex(dim, capacity int) (*gistIndex, error) {
	if dim < 1 {
		return nil, fmt.Errorf("walrus: index dimension %d < 1", dim)
	}
	t, err := gist.New[rstar.Rect](gist.RectOps{}, capacity)
	if err != nil {
		return nil, err
	}
	return &gistIndex{t: t}, nil
}

func (g *gistIndex) Insert(r rstar.Rect, data int64) error {
	g.t.Insert(r, data)
	return nil
}

func (g *gistIndex) Delete(r rstar.Rect, data int64) (bool, error) {
	return g.t.Delete(r, data), nil
}

func (g *gistIndex) SearchAll(q rstar.Rect) ([]rstar.Entry, error) {
	var out []rstar.Entry
	g.t.Search(q, func(key rstar.Rect, data int64) bool {
		out = append(out, rstar.Entry{Rect: key, Data: data})
		return true
	})
	return out, nil
}

func (g *gistIndex) Len() int { return g.t.Len() }

func (g *gistIndex) Height() int { return g.t.Height() }
