package walrus

import (
	"fmt"
	"sync"

	"walrus/internal/gist"
	"walrus/internal/rstar"
)

// IndexBackend selects the spatial index implementation for in-memory
// databases.
type IndexBackend int

const (
	// IndexRStar is the purpose-built R*-tree (the default, and the only
	// backend supported by disk-backed databases).
	IndexRStar IndexBackend = iota
	// IndexGiST uses the generalized search tree framework with the
	// rectangle key class — the structure the paper's own implementation
	// was built on (libgist). Useful as an ablation against the R*-tree.
	IndexGiST
)

func (b IndexBackend) String() string {
	switch b {
	case IndexRStar:
		return "rstar"
	case IndexGiST:
		return "gist"
	default:
		return fmt.Sprintf("IndexBackend(%d)", int(b))
	}
}

// spatialIndex abstracts the region index so the DB can run on either the
// R*-tree or the GiST rectangle tree.
type spatialIndex interface {
	Insert(r rstar.Rect, data int64) error
	Delete(r rstar.Rect, data int64) (bool, error)
	SearchAll(q rstar.Rect) ([]rstar.Entry, error)
	Len() int
	Height() int
}

// rstar.Tree satisfies spatialIndex directly.
var _ spatialIndex = (*rstar.Tree)(nil)

// gistIndex adapts the generic GiST to spatialIndex. Unlike the R*-tree
// it has no versioned node store, so snapshot reads cannot pin an epoch;
// instead the adapter carries its own RWMutex and gistView probes the
// live tree under the read lock (see gistView for the isolation
// consequences). Writers already serialize on db.mu; the internal lock
// only orders them against lock-free snapshot readers.
type gistIndex struct {
	mu sync.RWMutex
	t  *gist.Tree[rstar.Rect]
}

func newGistIndex(dim, capacity int) (*gistIndex, error) {
	if dim < 1 {
		return nil, fmt.Errorf("walrus: index dimension %d < 1", dim)
	}
	t, err := gist.New[rstar.Rect](gist.RectOps{}, capacity)
	if err != nil {
		return nil, err
	}
	return &gistIndex{t: t}, nil
}

func (g *gistIndex) Insert(r rstar.Rect, data int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.t.Insert(r, data)
	return nil
}

func (g *gistIndex) Delete(r rstar.Rect, data int64) (bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.t.Delete(r, data), nil
}

func (g *gistIndex) SearchAll(q rstar.Rect) ([]rstar.Entry, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []rstar.Entry
	g.t.Search(q, func(key rstar.Rect, data int64) bool {
		out = append(out, rstar.Entry{Rect: key, Data: data})
		return true
	})
	return out, nil
}

func (g *gistIndex) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.t.Len()
}

func (g *gistIndex) Height() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.t.Height()
}
