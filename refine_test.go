package walrus

import (
	"testing"

	"walrus/internal/imgio"
)

// fineOptions enables two-tier signatures.
func fineOptions() Options {
	o := testOptions()
	o.Region.FineSignature = 8
	return o
}

func TestFineSignaturesStored(t *testing.T) {
	db, err := New(fineOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("x", scene(green, red, 20, 20, 50)); err != nil {
		t.Fatal(err)
	}
	regions, ok := db.RegionsOf("x")
	if !ok || len(regions) == 0 {
		t.Fatal("no regions")
	}
	wantDim := 3 * 8 * 8
	for _, r := range regions {
		if len(r.Fine) != wantDim {
			t.Fatalf("fine signature dim %d, want %d", len(r.Fine), wantDim)
		}
		// The fine signature's top-left 2x2 corner per channel must equal
		// the coarse signature (both are centroids of corners of the same
		// per-window transforms).
		for c := 0; c < 3; c++ {
			for rr := 0; rr < 2; rr++ {
				for cc := 0; cc < 2; cc++ {
					coarse := r.Signature[c*4+rr*2+cc]
					fine := r.Fine[c*64+rr*8+cc]
					if d := coarse - fine; d > 1e-9 || d < -1e-9 {
						t.Fatalf("fine corner != coarse: %v vs %v", fine, coarse)
					}
				}
			}
		}
	}
}

// TestRefineNeverAddsPairs: the refined phase can only drop candidate
// pairs, so retrieved-region counts never grow.
func TestRefineNeverAddsPairs(t *testing.T) {
	db, err := New(fineOptions())
	if err != nil {
		t.Fatal(err)
	}
	imgs := []*imgio.Image{
		scene(green, red, 10, 10, 50),
		scene(green, red, 60, 60, 50),
		scene(gray, blue, 30, 30, 50),
		scene(green, yellow, 40, 20, 40),
	}
	for i, im := range imgs {
		if err := db.Add(string(rune('a'+i)), im); err != nil {
			t.Fatal(err)
		}
	}
	q := scene(green, red, 30, 30, 50)
	p := DefaultQueryParams()
	p.Epsilon = 0.15 // generous, so the coarse probe over-retrieves
	_, plain, err := db.Query(q, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Refine = true
	_, refined, err := db.Query(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if refined.RegionsRetrieved > plain.RegionsRetrieved {
		t.Fatalf("refine grew pairs: %d > %d", refined.RegionsRetrieved, plain.RegionsRetrieved)
	}
	if refined.RegionsRetrieved == 0 {
		t.Fatal("refine dropped everything, including true matches")
	}
}

// TestRefineKeepsTrueMatch: an identical image survives refinement at
// full similarity.
func TestRefineKeepsTrueMatch(t *testing.T) {
	db, err := New(fineOptions())
	if err != nil {
		t.Fatal(err)
	}
	im := scene(green, red, 25, 35, 55)
	if err := db.Add("self", im); err != nil {
		t.Fatal(err)
	}
	p := DefaultQueryParams()
	p.Refine = true
	matches, _, err := db.Query(im, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Similarity < 0.95 {
		t.Fatalf("self match under refinement: %+v", matches)
	}
}

// TestRefineIgnoredWithoutFineSignatures: enabling Refine on a database
// without fine signatures changes nothing.
func TestRefineIgnoredWithoutFineSignatures(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("a", scene(green, red, 20, 20, 50)); err != nil {
		t.Fatal(err)
	}
	q := scene(green, red, 40, 40, 50)
	p := DefaultQueryParams()
	_, plain, err := db.Query(q, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Refine = true
	_, refined, err := db.Query(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if plain.RegionsRetrieved != refined.RegionsRetrieved {
		t.Fatalf("refine changed results without fine signatures: %d vs %d",
			plain.RegionsRetrieved, refined.RegionsRetrieved)
	}
}

// TestRefineCustomEpsilon: a tiny RefineEpsilon prunes aggressively.
func TestRefineCustomEpsilon(t *testing.T) {
	db, err := New(fineOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("a", scene(green, red, 20, 20, 50)); err != nil {
		t.Fatal(err)
	}
	// Slightly different red hue: passes coarse, should fail a strict fine
	// bound.
	q := scene(green, [3]float64{0.8, 0.18, 0.12}, 22, 22, 50)
	p := DefaultQueryParams()
	p.Epsilon = 0.15
	p.Refine = true
	p.RefineEpsilon = 1e-9
	_, stats, err := db.Query(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RegionsRetrieved != 0 {
		t.Fatalf("strict refine bound kept %d pairs", stats.RegionsRetrieved)
	}
}

// TestMergeRegionsReducesCount: the agglomerative repair pass never
// increases the region count and keeps retrieval working.
func TestMergeRegionsReducesCount(t *testing.T) {
	base := testOptions()
	merged := testOptions()
	merged.Region.MergeRegions = true
	im := scene(green, red, 30, 30, 60)

	dbA, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := dbA.Add("x", im); err != nil {
		t.Fatal(err)
	}
	dbB, err := New(merged)
	if err != nil {
		t.Fatal(err)
	}
	if err := dbB.Add("x", im); err != nil {
		t.Fatal(err)
	}
	if dbB.NumRegions() > dbA.NumRegions() {
		t.Fatalf("merge increased regions: %d > %d", dbB.NumRegions(), dbA.NumRegions())
	}
	matches, _, err := dbB.Query(im, DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Similarity < 0.95 {
		t.Fatalf("merged-region retrieval broken: %+v", matches)
	}
}

func TestFineSignatureValidation(t *testing.T) {
	o := testOptions()
	o.Region.FineSignature = 3 // not a power of two
	if _, err := New(o); err == nil {
		t.Error("accepted FineSignature 3")
	}
	o.Region.FineSignature = 2 // not > Signature
	if _, err := New(o); err == nil {
		t.Error("accepted FineSignature == Signature")
	}
	o.Region.FineSignature = 64 // > MinWindow (32 in testOptions)
	if _, err := New(o); err == nil {
		t.Error("accepted FineSignature > MinWindow")
	}
}
