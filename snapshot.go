package walrus

import (
	"fmt"
	"sync/atomic"
	"time"

	"walrus/internal/region"
	"walrus/internal/rstar"
)

// snapCore is one published version of the catalog. Every field is
// immutable once the core is stored into DB.cur: writers build the next
// version under the exclusive lock and publish it with an atomic pointer
// swap, so readers dereference one pointer and see an internally
// consistent catalog without ever touching db.mu.
//
// The slices share backing arrays with the live catalog copy-on-write:
// appending past a published length never moves published elements, and
// any in-place mutation (Remove's tombstones, byID deletion) first clones
// the slice or map it touches (see the mutable*Locked helpers).
type snapCore struct {
	version uint64
	opts    Options
	ext     *region.Extractor
	images  []imageRecord
	refs    []regionRef
	byID    map[string]int
	// bsigs is parallel to refs: the binary prefilter summary of each
	// indexed region, always published at the same length as refs.
	bsigs []binSig

	liveRegions int
	indexLen    int
	height      int
	diskBacked  bool
}

// indexView is a read-only view of the spatial index bound to one
// snapshot. For the R*-tree it is an epoch-pinned rstar.TreeView whose
// reads bypass the tree's live root entirely; for the GiST backend it is
// an adapter over the (internally locked) live tree — see gistView for
// the weaker isolation that implies.
type indexView interface {
	SearchAll(q rstar.Rect) ([]rstar.Entry, error)
	// SearchAllCounting is SearchAll plus the number of index nodes
	// visited answering the probe — the EXPLAIN path's funnel input. The
	// GiST backend reports 0: it exposes no traversal counter.
	SearchAllCounting(q rstar.Rect) ([]rstar.Entry, int, error)
	Release()
}

// gistView adapts the live GiST to indexView. The GiST has no versioned
// store, so probes observe the live tree: an entry inserted or removed
// after the snapshot was taken can appear in (or vanish from) probe
// results. The probe stage compensates by validating every hit against
// the snapshot's catalog — out-of-range or tombstoned refs are skipped —
// which restores catalog-consistent results at per-probe (rather than
// whole-query) isolation.
type gistView struct{ g *gistIndex }

func (v gistView) SearchAll(q rstar.Rect) ([]rstar.Entry, error) { return v.g.SearchAll(q) }
func (v gistView) Release()                                      {}

func (v gistView) SearchAllCounting(q rstar.Rect) ([]rstar.Entry, int, error) {
	es, err := v.g.SearchAll(q)
	return es, 0, err
}

// Snapshot is a stable, point-in-time view of the database: a published
// catalog version plus an epoch-pinned index view. All methods are
// read-only, lock-free and safe for concurrent use; they observe the
// state as of acquisition no matter how many writers commit afterwards.
//
// A Snapshot pins resources (the R*-tree's superseded node pre-images)
// until released: call Release when done, ideally with defer. Using a
// snapshot after Release is invalid. Snapshots are acquired with
// DB.Snapshot; one-shot readers (DB.Query, DB.Len, ...) acquire and
// release internally.
//
// Snapshot deliberately holds no *DB: nothing reachable from it can
// acquire db.mu or mutate the catalog, and the snapshotsafe analyzer
// enforces that its methods stay that way.
type Snapshot struct {
	core *snapCore
	view indexView

	// met is the metrics handle captured at acquisition; Release must
	// decrement the same activeSnapshots gauge acquisition incremented
	// even if SetMetrics swaps handles in between.
	met      *dbMetrics
	om       *atomic.Pointer[dbMetrics]
	released atomic.Bool
}

// Snapshot returns a stable read view of the current database version.
// The caller must call Release on the result.
func (db *DB) Snapshot() (*Snapshot, error) {
	for {
		core := db.cur.Load()
		if core == nil {
			return nil, fmt.Errorf("walrus: database not initialized")
		}
		var view indexView
		switch t := db.tree.(type) {
		case *rstar.Tree:
			tv, err := t.SnapshotView()
			if err != nil {
				return nil, err
			}
			if tv.Epoch() != core.version {
				// A writer published between loading the core and pinning
				// the tree. Retry with the fresher core; each retry
				// observes a newer version, so the loop cannot cycle.
				tv.Release()
				continue
			}
			view = tv
		case *gistIndex:
			view = gistView{t}
		default:
			return nil, fmt.Errorf("walrus: index backend %T supports no snapshots", db.tree)
		}
		s := &Snapshot{core: core, view: view, om: &db.om}
		if m := db.om.Load(); m != nil {
			s.met = m
			m.snapshotsTotal.Inc()
			m.activeSnapshots.Add(1)
		}
		return s, nil
	}
}

// Release unpins the snapshot, allowing the storage layer to reclaim
// superseded state. Idempotent.
func (s *Snapshot) Release() {
	if !s.released.CompareAndSwap(false, true) {
		return
	}
	s.view.Release()
	if s.met != nil {
		s.met.activeSnapshots.Add(-1)
	}
}

// Version is the catalog version this snapshot observes. Versions start
// at 1 and increase by one per committed write operation.
func (s *Snapshot) Version() uint64 { return s.core.version }

// Options returns the database configuration as of the snapshot.
func (s *Snapshot) Options() Options { return s.core.opts }

// Len returns the number of indexed images in the snapshot.
func (s *Snapshot) Len() int { return len(s.core.byID) }

// NumRegions returns the number of live indexed regions in the snapshot.
func (s *Snapshot) NumRegions() int { return s.core.liveRegions }

// IDs returns the ids of all indexed images in insertion order.
func (s *Snapshot) IDs() []string {
	out := make([]string, 0, len(s.core.byID))
	for _, rec := range s.core.images {
		if rec.ID != "" {
			out = append(out, rec.ID)
		}
	}
	return out
}

// RegionsOf returns the regions extracted for an indexed image.
func (s *Snapshot) RegionsOf(id string) ([]region.Region, bool) {
	idx, ok := s.core.byID[id]
	if !ok {
		return nil, false
	}
	return s.core.images[idx].Regions, true
}

// Stats summarizes the snapshot's state.
func (s *Snapshot) Stats() Stats {
	return Stats{
		Images:       len(s.core.byID),
		Regions:      s.core.liveRegions,
		IndexHeight:  s.core.height,
		SignatureDim: s.core.opts.Region.Dim(),
		DiskBacked:   s.core.diskBacked,
	}
}

// publishLocked commits the catalog state under db.mu as the next
// version: it advances the index epoch (R*-tree), builds an immutable
// snapCore sharing the catalog slices, and swaps it into db.cur. After
// the swap the shared slices and map belong to the published version
// too, so the shared flags force the next in-place mutation to clone.
// Caller holds db.mu exclusively.
func (db *DB) publishLocked() {
	m := db.om.Load()
	var start time.Time
	if m != nil {
		start = statsClock()
	}
	db.version++
	if t, ok := db.tree.(*rstar.Tree); ok {
		// The tree's epoch counter and the catalog version advance in
		// lockstep (both only ever move here), so pinning the epoch that
		// equals core.version yields the matching index state.
		db.version = t.PublishEpoch()
	}
	core := &snapCore{
		version:     db.version,
		opts:        db.opts,
		ext:         db.ext,
		images:      db.images,
		refs:        db.refs,
		byID:        db.byID,
		bsigs:       db.bsigs,
		liveRegions: db.liveRegions,
		indexLen:    db.tree.Len(),
		height:      db.tree.Height(),
		diskBacked:  db.persist != nil,
	}
	db.imagesShared, db.refsShared, db.byIDShared = true, true, true
	db.cur.Store(core)
	if m != nil {
		m.snapshotVersion.Set(int64(core.version))
		m.publishes.Inc()
		m.publishSeconds.Observe(statsSince(start).Seconds())
	}
}

// mutableImagesLocked returns db.images safe for in-place mutation,
// cloning it first if a published snapshot shares the backing array.
// Caller holds db.mu exclusively.
func (db *DB) mutableImagesLocked() []imageRecord {
	if db.imagesShared {
		db.images = append([]imageRecord(nil), db.images...)
		db.imagesShared = false
	}
	return db.images
}

// mutableRefsLocked is mutableImagesLocked for db.refs.
func (db *DB) mutableRefsLocked() []regionRef {
	if db.refsShared {
		db.refs = append([]regionRef(nil), db.refs...)
		db.refsShared = false
	}
	return db.refs
}

// mutableByIDLocked returns db.byID safe for mutation, cloning it first
// if a published snapshot shares it. Unlike slice appends, map writes
// are never safe concurrently with readers, so every write path must go
// through this. Caller holds db.mu exclusively.
func (db *DB) mutableByIDLocked() map[string]int {
	if db.byIDShared {
		clone := make(map[string]int, len(db.byID)+1)
		for id, idx := range db.byID {
			clone[id] = idx
		}
		db.byID = clone
		db.byIDShared = false
	}
	return db.byID
}
