// Package walrus implements WALRUS (WAveLet-based Retrieval of
// User-specified Scenes), the region-based image similarity retrieval
// system of Natsev, Rastogi and Shim (SIGMOD 1999).
//
// A DB decomposes every inserted image into regions — clusters of
// variable-size sliding windows with similar Haar-wavelet signatures — and
// indexes each region's signature in an R*-tree. A query image is
// decomposed the same way; regions of database images whose signatures lie
// within an epsilon envelope of a query region form matching pairs, and
// each candidate image is scored by the fraction of the two images' area
// covered by matching regions (Definition 4.3 of the paper). The model is
// robust to translation and scaling of individual objects, not just of
// whole images.
//
// Basic usage:
//
//	db, _ := walrus.New(walrus.DefaultOptions())
//	_ = db.Add("img1", img1)                    // *imgio.Image, RGB
//	matches, stats, _ := db.Query(q, walrus.DefaultQueryParams())
//
// Use Create/Open instead of New for a disk-backed database.
package walrus

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"walrus/internal/imgio"
	"walrus/internal/match"
	"walrus/internal/parallel"
	"walrus/internal/region"
	"walrus/internal/rstar"
	"walrus/internal/store"
)

// ErrDuplicateID reports an Add (or AddBatch item) whose id is already
// indexed. It is wrapped in the returned error, so callers classify with
// errors.Is — the HTTP front-end maps it to 409 Conflict.
var ErrDuplicateID = errors.New("already indexed")

// ErrUnknownID reports a QueryByID against an id the queried snapshot
// does not contain. The HTTP front-end maps it to 404 Not Found.
var ErrUnknownID = errors.New("unknown image id")

// Options configures a DB at creation time.
type Options struct {
	// Region configures region extraction (window sizes, signature size,
	// clustering epsilon, color space, bitmap resolution).
	Region region.Options
	// UseBBox indexes regions by the bounding box of their window
	// signatures instead of by centroid (the alternative signature of
	// Section 4 of the paper).
	UseBBox bool
	// NodeCapacity is the index node capacity for in-memory databases
	// (disk-backed databases derive it from the page size). 0 means a
	// sensible default.
	NodeCapacity int
	// Index selects the in-memory index backend: the R*-tree (default) or
	// the GiST rectangle tree. Disk-backed databases always use the paged
	// R*-tree.
	Index IndexBackend
	// Shards is the shard count of a sharded database (NewSharded,
	// CreateSharded, BuildFromSharded): the catalog is partitioned by a
	// hash of the image id into this many independent sub-databases, each
	// with its own catalog, index, WAL and snapshot chain, so writers on
	// different shards never share a lock. 0 means 1. Ignored by the
	// single-database constructors (New, Create, BuildFrom).
	Shards int
	// Parallelism is the default worker count for ingest: it resolves the
	// workers argument of AddBatch, BuildFrom and CreateFrom when that
	// argument is 0, and (unless Region.Workers overrides it) bounds the
	// pool region extraction fans its wavelet work across. 0 uses
	// GOMAXPROCS; 1 forces the serial path. The indexed regions and all
	// query results are identical for every setting.
	Parallelism int
	// CacheSize is the capacity, in cached queries, of the version-keyed
	// result cache serving repeated queries without touching the index.
	// 0 (the default) disables caching. Entries are keyed on the pinned
	// snapshot version (or the fleet's version vector), a fingerprint of
	// the query, and the resolved parameters, so any committed write
	// invalidates by construction; stale entries age out by LRU.
	// SetCacheSize resizes at runtime.
	CacheSize int
	// Durability selects how aggressively a disk-backed database fsyncs
	// its write-ahead log (see DurabilityPolicy). Ignored by in-memory
	// databases. The zero value is DurabilityGroupCommit.
	Durability DurabilityPolicy
	// FS, when non-nil, opens the files of a disk-backed database in
	// place of the real filesystem — the fault-injection seam used by
	// crash-recovery tests. Func fields are ignored by gob, so it is
	// never persisted in the catalog.
	FS FileOpener
}

// DefaultOptions mirrors the parameter choices of the paper's retrieval
// experiments (Section 6.4).
func DefaultOptions() Options {
	return Options{Region: region.DefaultOptions(), NodeCapacity: 16}
}

// QueryParams configures one query.
type QueryParams struct {
	// Epsilon is ε, the maximum signature distance between matching
	// regions (Definition 4.1). The paper's experiments used 0.085.
	Epsilon float64
	// Tau is τ, the minimum similarity for an image to be reported
	// (Definition 4.3). 0 reports every image with any matching region.
	Tau float64
	// Matcher selects the image-matching algorithm (quick, greedy, exact).
	Matcher match.Algorithm
	// Denominator selects the similarity normalization.
	Denominator match.Denominator
	// Limit caps the number of returned matches (0 = unlimited).
	Limit int
	// Refine enables the refined matching phase of Section 5.5: candidate
	// region pairs found by the index probe are re-verified against the
	// finer signatures stored when Options.Region.FineSignature is set,
	// trading response time for better-qualified matches. Ignored when the
	// database stores no fine signatures.
	Refine bool
	// RefineEpsilon is the distance bound for the fine-signature check;
	// 0 means Epsilon scaled by sqrt(fineDim/coarseDim), which keeps the
	// per-dimension tolerance of the coarse check.
	RefineEpsilon float64
	// Parallelism bounds the worker pool the query fans its per-region
	// index probes and per-candidate scoring across: 0 uses GOMAXPROCS,
	// 1 reproduces the serial query exactly. Results and stats are
	// identical for every setting; only wall-clock time changes.
	Parallelism int
	// Prefilter plans the coarse rejection tier between the index probe
	// and the refine/score stages: candidate hits are screened with a
	// popcount Hamming test over precomputed binary signatures and the
	// WBIIS variance acceptance test before the exact distance check runs
	// on the survivors. At the default bounds both tests are
	// conservative, so results are identical with the tier on or off;
	// only the per-candidate work changes. Ignored by bounding-box
	// databases (Options.UseBBox), whose probe envelope is exact already.
	Prefilter bool
	// PrefilterHamming overrides the Hamming acceptance bound (0 derives
	// the exactness-preserving bound from Epsilon). Lower values reject
	// harder but may drop true matches.
	PrefilterHamming int
	// PrefilterBeta is the WBIIS variance tolerance β (0 means the WBIIS
	// default, 0.5). The β-test is backed by a conservative σ guard, so β
	// tuning affects speed, never correctness.
	PrefilterBeta float64
	// NoCache makes this query bypass the version-keyed result cache:
	// it neither reads nor populates it. Meaningful only on a database
	// with a cache configured (Options.CacheSize / SetCacheSize).
	NoCache bool
}

// DefaultQueryParams returns the paper's query parameters with no
// similarity threshold and no limit.
func DefaultQueryParams() QueryParams {
	return QueryParams{Epsilon: 0.085, Matcher: match.Quick}
}

// Match is one query result.
type Match struct {
	// ID is the image id passed to Add.
	ID string
	// Similarity is the matched-area fraction in [0,1].
	Similarity float64
	// Pairs is the similar region pair set (query region index, target
	// region index); nil for the quick matcher.
	Pairs []match.Pair
	// MatchingRegions is the number of matching region pairs found by the
	// index probe for this image.
	MatchingRegions int
}

// QueryStats reports the work a query performed — the quantities Table 1
// of the paper measures.
type QueryStats struct {
	// QueryRegions is the number of regions extracted from the query.
	QueryRegions int
	// RegionsRetrieved is the total number of matching database regions
	// over all query regions.
	RegionsRetrieved int
	// CandidateImages is the number of distinct images with at least one
	// matching region.
	CandidateImages int
	// Elapsed is the wall-clock query time, including region extraction.
	Elapsed time.Duration
	// ExtractTime, ProbeTime and ScoreTime break Elapsed into its phases:
	// query region extraction, index probes (plus distance filtering), and
	// image matching/scoring.
	ExtractTime, ProbeTime, ScoreTime time.Duration
	// Cache reports how the result cache handled the query: "" (no cache
	// configured, or a path that bypasses caching, such as scene
	// queries), "hit", "miss", or "bypass" (NoCache was set). On a hit
	// every other field echoes the cached execution except Elapsed, which
	// is the lookup time.
	Cache string `json:",omitempty"`
}

// AvgRegionsPerQueryRegion is Table 1's "Avg. No. of Regions Retrieved".
func (s QueryStats) AvgRegionsPerQueryRegion() float64 {
	if s.QueryRegions == 0 {
		return 0
	}
	return float64(s.RegionsRetrieved) / float64(s.QueryRegions)
}

// imageRecord is the per-image catalog entry.
type imageRecord struct {
	ID      string
	W, H    int
	Regions []region.Region
}

// regionRef locates one indexed region: which image, and which region
// within that image. The R*-tree payload is an index into DB.refs. For
// disk-backed databases RID is the packed heap-file record id of the
// region's serialized payload.
type regionRef struct {
	Image int
	Local int
	RID   uint64
}

// DB is a WALRUS image database. All exported methods are safe for
// concurrent use.
//
// Concurrency contract: the database is read through immutable
// snapshots. Readers — Query, QueryScene, Len, Stats, IDs, RegionsOf,
// NumRegions, or an explicit DB.Snapshot — load the current published
// version with one atomic pointer read and (for queries) pin the
// matching index epoch; they never acquire db.mu and are never blocked
// by writers. Writers — Add, AddBatch, Remove, SetDurability — build
// the next version under the exclusive lock copy-on-write and publish
// it with an atomic swap; superseded index state is retained until the
// last snapshot pinning it is released (epoch-based reclamation).
// AddBatch keeps the expensive region extraction outside the lock and
// publishes the whole batch as one version. Results never depend on
// scheduling: the parallelism knobs change wall-clock time only.
type DB struct {
	mu   sync.RWMutex
	opts Options           // guarded by mu (SetDurability rewrites the policy at runtime)
	ext  *region.Extractor // immutable after prepare
	// tree is set at construction and the pointer never changes after the
	// DB is published; its contents are mutated only under mu, and
	// snapshot reads go through epoch-pinned views, not the live root.
	tree spatialIndex
	// defaultWorkers resolves AddBatch-style workers arguments of 0; it
	// is immutable after prepare.
	defaultWorkers int

	images []imageRecord  // guarded by mu
	byID   map[string]int // guarded by mu
	refs   []regionRef    // guarded by mu
	// bsigs holds the binary prefilter signature of each indexed region,
	// parallel to refs (guarded by mu). Append-only: Remove tombstones the
	// ref and the stale summary is simply never read again, so snapshots
	// share the backing array without copy-on-write.
	bsigs []binSig
	// liveRegions counts refs whose Local >= 0 (guarded by mu); kept
	// incrementally so publishing a version is O(1) in catalog size.
	liveRegions int
	// version is the last published catalog version (guarded by mu). For
	// the R*-tree backend it tracks the tree's publish epoch exactly.
	version uint64
	// The shared flags mark catalog containers whose backing storage is
	// reachable from a published snapshot (guarded by mu): set on every
	// publish, cleared when a writer clones before an in-place mutation.
	// Appends past the published length are safe without cloning.
	imagesShared, refsShared, byIDShared bool
	// persist is set before the DB is published and nilled only by Close;
	// its own state is mutated exclusively under mu.
	persist *persistState // nil for in-memory databases

	// cur is the currently published catalog version; readers load it
	// lock-free. Never nil once a constructor returns.
	cur atomic.Pointer[snapCore]

	// cache is the version-keyed query result cache; nil (the default
	// unless Options.CacheSize is set) means caching is off and the query
	// wrappers pay one atomic load. Swapped whole by SetCacheSize.
	cache atomic.Pointer[queryCache]

	// om points at the pre-resolved observability handles installed by
	// SetMetrics; nil (the default) means observability is off and the
	// instrumented paths reduce to one atomic load.
	om atomic.Pointer[dbMetrics]
}

// New creates an in-memory database.
func New(opts Options) (*DB, error) {
	db, err := prepare(opts)
	if err != nil {
		return nil, err
	}
	capacity := opts.NodeCapacity
	if capacity == 0 {
		capacity = 16
	}
	switch opts.Index {
	case IndexRStar:
		ms, err := rstar.NewMemStore(opts.Region.Dim(), capacity)
		if err != nil {
			return nil, err
		}
		tree, err := rstar.New(rstar.NewVersioned(ms))
		if err != nil {
			return nil, err
		}
		db.tree = tree
	case IndexGiST:
		gi, err := newGistIndex(opts.Region.Dim(), capacity)
		if err != nil {
			return nil, err
		}
		db.tree = gi
	default:
		return nil, fmt.Errorf("walrus: unknown index backend %v", opts.Index)
	}
	db.publishLocked()
	return db, nil
}

func prepare(opts Options) (*DB, error) {
	ropts := opts.Region
	if ropts.Workers == 0 && opts.Parallelism > 0 {
		// Region.Workers inherits the database-wide parallelism default.
		ropts.Workers = opts.Parallelism
	}
	ext, err := region.NewExtractor(ropts)
	if err != nil {
		return nil, err
	}
	db := &DB{opts: opts, ext: ext, byID: make(map[string]int), defaultWorkers: opts.Parallelism}
	if opts.CacheSize > 0 {
		db.cache.Store(newQueryCache(opts.CacheSize))
	}
	return db, nil
}

// SetCacheSize resizes the version-keyed query result cache at runtime:
// n > 0 installs a fresh, empty cache with that capacity; n <= 0
// disables caching. Safe to call while queries run — in-flight queries
// finish against the cache they loaded.
func (db *DB) SetCacheSize(n int) {
	if n <= 0 {
		db.cache.Store(nil)
		return
	}
	db.cache.Store(newQueryCache(n))
}

// ingestWorkers resolves a caller-supplied worker count against the
// database's Parallelism default: workers > 0 wins, otherwise
// Options.Parallelism applies (itself defaulting to GOMAXPROCS).
func (db *DB) ingestWorkers(workers int) int {
	if workers <= 0 {
		workers = db.defaultWorkers
	}
	return parallel.Workers(workers)
}

// Options returns the database configuration.
func (db *DB) Options() Options {
	return db.cur.Load().opts
}

// Version returns the current published catalog version. Versions start
// at 1 (a freshly constructed database) and advance by one per committed
// write operation (an AddBatch counts as one).
func (db *DB) Version() uint64 {
	return db.cur.Load().version
}

// Len returns the number of indexed images.
func (db *DB) Len() int {
	return len(db.cur.Load().byID)
}

// NumRegions returns the number of live indexed regions.
func (db *DB) NumRegions() int {
	return db.cur.Load().liveRegions
}

// Add extracts regions from an RGB image and indexes them under id,
// publishing the image as the next catalog version. Adding an id twice
// is an error; use Remove first to replace an image.
func (db *DB) Add(id string, im *imgio.Image) error {
	regions, err := db.ext.Extract(im)
	if err != nil {
		return fmt.Errorf("walrus: extracting regions of %q: %w", id, err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	defer db.publishLocked()
	return db.addExtractedLocked(id, im, regions)
}

// Query decomposes an RGB image into regions, probes the index with each
// region's epsilon envelope, scores every candidate image, and returns
// matches with similarity >= p.Tau sorted by decreasing similarity. The
// whole query — extraction included — runs against one snapshot of the
// database, unaffected by concurrent writers.
func (db *DB) Query(im *imgio.Image, p QueryParams) ([]Match, QueryStats, error) {
	return db.QueryContext(context.Background(), im, p)
}

// QueryContext is Query with a deadline: the context is checked between
// pipeline stages and inside the parallel probe/score tasks, so an
// expired request stops consuming worker slots and returns the context's
// error. With a result cache configured, the lookup keys on the pinned
// snapshot version and a fingerprint of the query pixels — see
// Options.CacheSize.
func (db *DB) QueryContext(ctx context.Context, im *imgio.Image, p QueryParams) ([]Match, QueryStats, error) {
	s, err := db.Snapshot()
	if err != nil {
		return nil, QueryStats{}, err
	}
	defer s.Release()
	c := db.cache.Load()
	if c == nil {
		return s.QueryContext(ctx, im, p)
	}
	return cachedQuery(ctx, c, db.cacheMetrics(), s.core.version, false, hashQueryImage(im), p,
		func() ([]Match, QueryStats, error) { return s.QueryContext(ctx, im, p) })
}

// QueryByID runs a query using the stored regions of an already-indexed
// image, skipping extraction; see Snapshot.QueryByID. Cacheable like
// QueryContext, keyed on the id instead of pixels.
func (db *DB) QueryByID(ctx context.Context, id string, p QueryParams) ([]Match, QueryStats, error) {
	s, err := db.Snapshot()
	if err != nil {
		return nil, QueryStats{}, err
	}
	defer s.Release()
	c := db.cache.Load()
	if c == nil {
		return s.QueryByID(ctx, id, p)
	}
	return cachedQuery(ctx, c, db.cacheMetrics(), s.core.version, false, hashQueryID(id), p,
		func() ([]Match, QueryStats, error) { return s.QueryByID(ctx, id, p) })
}

// cacheMetrics returns the cache instrument set, nil when metrics are
// detached.
func (db *DB) cacheMetrics() *cacheMetrics {
	if m := db.om.Load(); m != nil {
		return &m.cache
	}
	return nil
}

// Remove deletes an image and its regions from the database. It reports
// whether the id was present. The image's slot in the internal catalog is
// retired, not compacted.
func (db *DB) Remove(id string) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	imgIdx, ok := db.byID[id]
	if !ok {
		return false, nil
	}
	defer db.publishLocked()
	// Tombstoning mutates published catalog entries in place, so work on
	// private copies of the containers a snapshot may share.
	refs := db.mutableRefsLocked()
	images := db.mutableImagesLocked()
	tombstoned := 0
	for payload, ref := range refs {
		if ref.Image != imgIdx || ref.Local < 0 {
			continue
		}
		r := images[imgIdx].Regions[ref.Local]
		removed, err := db.tree.Delete(signatureRect(db.opts.UseBBox, r), int64(payload))
		if err != nil {
			return false, err
		}
		if !removed {
			return false, fmt.Errorf("walrus: region of %q missing from index", id)
		}
		if db.persist != nil {
			if err := db.persist.heap.Delete(store.UnpackRID(refs[payload].RID)); err != nil {
				return false, err
			}
		}
		refs[payload].Local = -1 // tombstone
		tombstoned++
	}
	delete(db.mutableByIDLocked(), id)
	images[imgIdx].Regions = nil
	images[imgIdx].ID = ""
	db.liveRegions -= tombstoned
	if db.persist != nil {
		if err := db.commitLocked(&walDelta{Op: deltaRemove, ID: id}); err != nil {
			return true, err
		}
	}
	if m := db.om.Load(); m != nil {
		m.removes.Inc()
		m.images.Set(int64(len(db.byID)))
		m.regions.Add(-int64(tombstoned))
	}
	return true, nil
}

// IDs returns the ids of all indexed images in insertion order.
func (db *DB) IDs() []string {
	core := db.cur.Load()
	out := make([]string, 0, len(core.byID))
	for _, rec := range core.images {
		if rec.ID != "" {
			out = append(out, rec.ID)
		}
	}
	return out
}

// RegionsOf returns the regions extracted for an indexed image.
func (db *DB) RegionsOf(id string) ([]region.Region, bool) {
	core := db.cur.Load()
	idx, ok := core.byID[id]
	if !ok {
		return nil, false
	}
	return core.images[idx].Regions, true
}

func euclid(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Sqrt(d)
}
