package walrus

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"walrus/internal/imgio"
	"walrus/internal/match"
	"walrus/internal/obs"
	"walrus/internal/parallel"
	"walrus/internal/region"
)

// shardManifestName is the file marking a directory as a sharded
// database and recording its shard count.
const shardManifestName = "shards.json"

type shardManifest struct {
	Shards int `json:"shards"`
}

// shardDirName is the subdirectory holding shard i's files.
func shardDirName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// shardOf maps an image id to its owning shard: FNV-1a over the id,
// reduced mod the shard count. The hash is stable across processes and
// platforms, so a database always routes an id to the same shard.
func shardOf(id string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int(h.Sum64() % uint64(n))
}

// resolveShardCount normalizes Options.Shards: 0 means 1.
func resolveShardCount(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("walrus: negative shard count %d", n)
	}
	if n == 0 {
		return 1, nil
	}
	return n, nil
}

// partitionItems splits a batch by owning shard, preserving item order
// within each shard.
func partitionItems(items []BatchItem, n int) [][]BatchItem {
	parts := make([][]BatchItem, n)
	for _, it := range items {
		k := shardOf(it.ID, n)
		parts[k] = append(parts[k], it)
	}
	return parts
}

// Sharded is a WALRUS database partitioned into independent shards by a
// hash of the image id. Each shard is a complete DB — its own catalog,
// R*-tree versioned store, write-ahead log and snapshot chain — so
// writers touching different shards never share a lock, and crash
// recovery replays the per-shard logs in parallel.
//
// Reads go through cross-shard snapshots: a ShardedSnapshot pins one
// epoch-matched snapshot per shard (a version vector), queries fan out
// across the pinned shards and merge their rankings, and aggregate
// reads (Stats, IDs, Len) sum over the same pinned vector instead of
// racing each shard's live state. Query results are identical for every
// shard count and every parallelism setting; only wall-clock time
// changes. All exported methods are safe for concurrent use.
type Sharded struct {
	mu   sync.Mutex
	opts Options // guarded by mu (SetDurability rewrites the policy at runtime)

	// shards is immutable after construction; shardOf routes ids to
	// elements.
	shards []*DB

	// cache is the fleet-level result cache, keyed on the pinned version
	// vector; nil means caching is off. Cross-shard queries bypass the
	// shards' own query paths, so the per-shard caches stay unused and
	// this is the only cache a sharded database consults.
	cache atomic.Pointer[queryCache]

	// om points at the fleet-level observability handles installed by
	// SetMetrics; nil (the default) means observability is off.
	om atomic.Pointer[shardedMetrics]
}

// newShardedFrom wraps constructed shards in a Sharded, installing the
// fleet-level result cache when Options.CacheSize asks for one.
func newShardedFrom(opts Options, shards []*DB) *Sharded {
	s := &Sharded{opts: opts, shards: shards}
	if opts.CacheSize > 0 {
		s.cache.Store(newQueryCache(opts.CacheSize))
	}
	return s
}

// NewSharded creates an in-memory sharded database with opts.Shards
// shards (0 means 1).
func NewSharded(opts Options) (*Sharded, error) {
	n, err := resolveShardCount(opts.Shards)
	if err != nil {
		return nil, err
	}
	opts.Shards = n
	shards := make([]*DB, n)
	for i := range shards {
		db, err := New(opts)
		if err != nil {
			return nil, err
		}
		shards[i] = db
	}
	return newShardedFrom(opts, shards), nil
}

// CreateSharded creates a disk-backed sharded database: dir gains a
// shards.json manifest and one shard-NNNN subdirectory per shard, each
// a self-contained database directory with its own index, WAL and
// catalog.
func CreateSharded(dir string, opts Options) (*Sharded, error) {
	n, err := resolveShardCount(opts.Shards)
	if err != nil {
		return nil, err
	}
	opts.Shards = n
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("walrus: creating %s: %w", dir, err)
	}
	if err := writeShardManifest(dir, n); err != nil {
		return nil, err
	}
	shards := make([]*DB, n)
	for i := range shards {
		db, err := Create(filepath.Join(dir, shardDirName(i)), opts)
		if err != nil {
			return nil, errors.Join(fmt.Errorf("walrus: creating shard %d: %w", i, err), closeShards(shards))
		}
		shards[i] = db
	}
	return newShardedFrom(opts, shards), nil
}

// OpenSharded reopens a sharded database created by CreateSharded. The
// shards are independent, so their opens — including any WAL replay
// after a crash — run in parallel: recovery time scales with the
// largest shard's log, not the sum.
func OpenSharded(dir string) (*Sharded, error) { return OpenShardedFS(dir, nil) }

// OpenShardedFS is OpenSharded with an explicit filesystem seam; nil fs
// uses the real filesystem. Crash-recovery tests pass a fault-injecting
// opener.
func OpenShardedFS(dir string, fs FileOpener) (*Sharded, error) {
	n, err := readShardManifest(dir)
	if err != nil {
		return nil, err
	}
	shards := make([]*DB, n)
	err = parallel.ForErr(n, n, func(i int) error {
		db, err := OpenFS(filepath.Join(dir, shardDirName(i)), fs)
		if err != nil {
			return fmt.Errorf("walrus: opening shard %d: %w", i, err)
		}
		shards[i] = db
		return nil
	})
	if err != nil {
		return nil, errors.Join(err, closeShards(shards))
	}
	opts := shards[0].Options()
	opts.Shards = n
	opts.FS = fs
	return newShardedFrom(opts, shards), nil
}

// BuildFromSharded is BuildFrom for a sharded database: the collection
// is partitioned by id hash and each shard is bulk-loaded with STR
// packing. The result is identical to NewSharded followed by AddBatch
// up to index layout.
func BuildFromSharded(opts Options, items []BatchItem, workers int) (*Sharded, error) {
	n, err := resolveShardCount(opts.Shards)
	if err != nil {
		return nil, err
	}
	opts.Shards = n
	parts := partitionItems(items, n)
	shards := make([]*DB, n)
	for i := range shards {
		db, err := BuildFrom(opts, parts[i], workers)
		if err != nil {
			return nil, err
		}
		shards[i] = db
	}
	return newShardedFrom(opts, shards), nil
}

// CreateFromSharded is CreateFrom for a sharded database: one unlogged
// bulk load per shard directory.
func CreateFromSharded(dir string, opts Options, items []BatchItem, workers int) (*Sharded, error) {
	n, err := resolveShardCount(opts.Shards)
	if err != nil {
		return nil, err
	}
	opts.Shards = n
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("walrus: creating %s: %w", dir, err)
	}
	if err := writeShardManifest(dir, n); err != nil {
		return nil, err
	}
	parts := partitionItems(items, n)
	shards := make([]*DB, n)
	for i := range shards {
		db, err := CreateFrom(filepath.Join(dir, shardDirName(i)), opts, parts[i], workers)
		if err != nil {
			return nil, errors.Join(fmt.Errorf("walrus: creating shard %d: %w", i, err), closeShards(shards))
		}
		shards[i] = db
	}
	return newShardedFrom(opts, shards), nil
}

// closeShards closes every already-constructed shard of a failed
// constructor.
func closeShards(shards []*DB) error {
	errs := make([]error, 0, len(shards))
	for _, sh := range shards {
		if sh != nil {
			errs = append(errs, sh.Close())
		}
	}
	return errors.Join(errs...)
}

func writeShardManifest(dir string, n int) error {
	data, err := json.MarshalIndent(shardManifest{Shards: n}, "", "  ")
	if err != nil {
		return fmt.Errorf("walrus: encoding shard manifest: %w", err)
	}
	tmp := filepath.Join(dir, shardManifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("walrus: writing shard manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, shardManifestName)); err != nil {
		return fmt.Errorf("walrus: writing shard manifest: %w", err)
	}
	syncDir(dir)
	return nil
}

func readShardManifest(dir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(dir, shardManifestName))
	if err != nil {
		return 0, fmt.Errorf("walrus: reading shard manifest (is %s a sharded database?): %w", dir, err)
	}
	var m shardManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, fmt.Errorf("walrus: decoding shard manifest: %w", err)
	}
	if m.Shards < 1 {
		return 0, fmt.Errorf("walrus: shard manifest declares %d shards", m.Shards)
	}
	return m.Shards, nil
}

// IsSharded reports whether dir holds a sharded database (a shards.json
// manifest); CLIs use it to auto-detect which Open variant applies.
func IsSharded(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, shardManifestName))
	return err == nil
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Options returns the database configuration.
func (s *Sharded) Options() Options {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opts
}

// fanWorkers resolves a worker knob for cross-shard fan-out against the
// Parallelism option.
func (s *Sharded) fanWorkers(workers int) int {
	if workers <= 0 {
		s.mu.Lock()
		workers = s.opts.Parallelism
		s.mu.Unlock()
	}
	return parallel.Workers(workers)
}

// Add routes the image to its owning shard and indexes it there; only
// that shard's writer lock is held, so adds to different shards run in
// parallel.
func (s *Sharded) Add(id string, im *imgio.Image) error {
	return s.shards[shardOf(id, len(s.shards))].Add(id, im)
}

// Remove deletes an image from its owning shard. It reports whether the
// id was present.
func (s *Sharded) Remove(id string) (bool, error) {
	return s.shards[shardOf(id, len(s.shards))].Remove(id)
}

// AddBatch partitions the batch by owning shard and runs one AddBatch
// per shard across the worker pool. Each shard publishes its sub-batch
// as one catalog version; there is no cross-shard atomicity — a reader
// can observe shard A's sub-batch before shard B commits — but within
// every shard the batch is all-or-nothing exactly as DB.AddBatch
// guarantees. All shards attempt their sub-batch even when one fails;
// the lowest-numbered shard's error is returned.
func (s *Sharded) AddBatch(items []BatchItem, workers int) error {
	parts := partitionItems(items, len(s.shards))
	return parallel.ForErr(len(s.shards), s.fanWorkers(workers), func(i int) error {
		if len(parts[i]) == 0 {
			return nil
		}
		return s.shards[i].AddBatch(parts[i], workers)
	})
}

// ShardedSnapshot is a stable, point-in-time view of a sharded
// database: one epoch-matched Snapshot per shard, acquired together. The
// per-shard versions form the snapshot's version vector — every read
// through this snapshot observes exactly one consistent version of each
// shard, however many writers commit concurrently. All methods are
// read-only, lock-free and safe for concurrent use. Call Release when
// done.
type ShardedSnapshot struct {
	snaps []*Snapshot

	// met is captured at acquisition so Release decrements the same
	// gauge acquisition incremented even if SetMetrics swaps handles.
	met      *shardedMetrics
	om       *atomic.Pointer[shardedMetrics]
	released atomic.Bool
}

// Snapshot pins a cross-shard read view: one snapshot per shard. The
// caller must call Release on the result.
func (s *Sharded) Snapshot() (*ShardedSnapshot, error) {
	snaps := make([]*Snapshot, len(s.shards))
	for i, sh := range s.shards {
		sn, err := sh.Snapshot()
		if err != nil {
			for _, acquired := range snaps[:i] {
				acquired.Release()
			}
			return nil, err
		}
		snaps[i] = sn
	}
	ss := &ShardedSnapshot{snaps: snaps, om: &s.om}
	if m := s.om.Load(); m != nil {
		ss.met = m
		m.snapshotsTotal.Inc()
		m.activeSnapshots.Add(1)
	}
	return ss, nil
}

// Release unpins every per-shard snapshot. Idempotent.
func (ss *ShardedSnapshot) Release() {
	if !ss.released.CompareAndSwap(false, true) {
		return
	}
	for _, sn := range ss.snaps {
		sn.Release()
	}
	if ss.met != nil {
		ss.met.activeSnapshots.Add(-1)
	}
}

// VersionVector returns the per-shard catalog versions this snapshot
// observes, indexed by shard.
func (ss *ShardedSnapshot) VersionVector() []uint64 {
	vv := make([]uint64, len(ss.snaps))
	for i, sn := range ss.snaps {
		vv[i] = sn.Version()
	}
	return vv
}

// Shards returns the shard count.
func (ss *ShardedSnapshot) Shards() int { return len(ss.snaps) }

// Options returns the database configuration as of the snapshot.
func (ss *ShardedSnapshot) Options() Options {
	o := ss.snaps[0].Options()
	o.Shards = len(ss.snaps)
	return o
}

// Len returns the number of indexed images across all shards.
func (ss *ShardedSnapshot) Len() int {
	n := 0
	for _, sn := range ss.snaps {
		n += sn.Len()
	}
	return n
}

// NumRegions returns the number of live indexed regions across all
// shards.
func (ss *ShardedSnapshot) NumRegions() int {
	n := 0
	for _, sn := range ss.snaps {
		n += sn.NumRegions()
	}
	return n
}

// IDs returns the ids of all indexed images in lexicographic order —
// the canonical order for a sharded database, since insertion order
// interleaves differently at different shard counts.
func (ss *ShardedSnapshot) IDs() []string {
	out := make([]string, 0, ss.Len())
	for _, sn := range ss.snaps {
		out = append(out, sn.IDs()...)
	}
	sort.Strings(out)
	return out
}

// RegionsOf returns the regions extracted for an indexed image, read
// from its owning shard's pinned snapshot.
func (ss *ShardedSnapshot) RegionsOf(id string) ([]region.Region, bool) {
	return ss.snaps[shardOf(id, len(ss.snaps))].RegionsOf(id)
}

// ShardedStats summarizes a sharded database. Images, Regions,
// SignatureDim and DiskBacked are logical: the same corpus yields the
// same values at every shard count. Shards and PerShard describe the
// physical layout (per-shard image counts, index heights), which
// legitimately varies with the shard count.
type ShardedStats struct {
	Images, Regions int
	SignatureDim    int
	DiskBacked      bool
	Shards          int
	PerShard        []Stats
}

// Stats summarizes the snapshot's state. Every field — totals and
// per-shard breakdown alike — derives from the one pinned version
// vector, so the totals always equal the sum of the PerShard rows.
func (ss *ShardedSnapshot) Stats() ShardedStats {
	st := ShardedStats{Shards: len(ss.snaps), PerShard: make([]Stats, len(ss.snaps))}
	for i, sn := range ss.snaps {
		per := sn.Stats()
		st.PerShard[i] = per
		st.Images += per.Images
		st.Regions += per.Regions
	}
	st.SignatureDim = st.PerShard[0].SignatureDim
	st.DiskBacked = st.PerShard[0].DiskBacked
	return st
}

// Query runs the staged pipeline across every shard of the pinned
// version vector: the query image is decomposed once, each shard
// probes and scores its own pinned view in parallel, and the per-shard
// rankings merge into one. Image ids are disjoint across shards and
// every shard sorts by the same (similarity desc, id asc) key, so the
// merged ranking is byte-identical to the single-shard one; the Limit
// applies only after the merge.
func (ss *ShardedSnapshot) Query(im *imgio.Image, p QueryParams) ([]Match, QueryStats, error) {
	return ss.QueryContext(context.Background(), im, p)
}

// QueryContext is Query with a deadline: the context rides into every
// shard's probe and score stages, so an expired request stops fanning
// out cross-shard work and returns the context's error.
func (ss *ShardedSnapshot) QueryContext(ctx context.Context, im *imgio.Image, p QueryParams) ([]Match, QueryStats, error) {
	start := statsClock()
	if p.Epsilon < 0 {
		return nil, QueryStats{}, fmt.Errorf("walrus: negative epsilon %v", p.Epsilon)
	}
	if err := ctx.Err(); err != nil {
		return nil, QueryStats{}, err
	}
	qspan := ss.beginQuerySpan(ctx)
	es := qspan.Child("query.extract")
	// Every shard carries the same extractor configuration, so shard 0's
	// snapshot extracts for all of them.
	qRegions, err := ss.snaps[0].extractStage(im)
	if err != nil {
		failSpans(es, qspan)
		return nil, QueryStats{}, err
	}
	es.End()
	stats := QueryStats{QueryRegions: len(qRegions), ExtractTime: statsSince(start)}
	return ss.finishQuery(ctx, qRegions, im.W*im.H, p, start, stats, qspan)
}

// beginQuerySpan opens the live "query" span for a cross-shard query: a
// child of the request span when the context carries one, else a fresh
// root trace on the fleet registry, else nil (tracing off).
func (ss *ShardedSnapshot) beginQuerySpan(ctx context.Context) *obs.Span {
	if parent := obs.SpanFromContext(ctx); parent != nil {
		return parent.Child("query")
	}
	if ss.om != nil {
		if m := ss.om.Load(); m != nil {
			return m.reg.StartSpan("query")
		}
	}
	return nil
}

// QueryByID runs the pipeline using the stored regions of an indexed
// image, read from its owning shard's pinned snapshot, as the query
// against every shard; see Snapshot.QueryByID.
func (ss *ShardedSnapshot) QueryByID(ctx context.Context, id string, p QueryParams) ([]Match, QueryStats, error) {
	start := statsClock()
	if p.Epsilon < 0 {
		return nil, QueryStats{}, fmt.Errorf("walrus: negative epsilon %v", p.Epsilon)
	}
	if err := ctx.Err(); err != nil {
		return nil, QueryStats{}, err
	}
	owner := ss.snaps[shardOf(id, len(ss.snaps))]
	idx, ok := owner.core.byID[id]
	if !ok {
		return nil, QueryStats{}, fmt.Errorf("walrus: query image %q: %w", id, ErrUnknownID)
	}
	qspan := ss.beginQuerySpan(ctx)
	es := qspan.Child("query.extract")
	rec := owner.core.images[idx]
	es.End()
	stats := QueryStats{QueryRegions: len(rec.Regions), ExtractTime: statsSince(start)}
	return ss.finishQuery(ctx, rec.Regions, rec.W*rec.H, p, start, stats, qspan)
}

// finishQuery fans the stage plan across every pinned shard and merges
// the per-shard rankings: every shard executes the same planPhaseA /
// planScore lists a single-store query runs, through the same runner,
// with its own stageExec. The runner hangs one "query.shard.<stage>"
// span per shard stage off the two phase umbrellas — the shard is
// visible in the trace tree, not reconstructed after the fact — and an
// EXPLAIN context gets one traceCollector per shard, merged into the
// fleet funnel after the merge.
func (ss *ShardedSnapshot) finishQuery(ctx context.Context, qRegions []region.Region, qArea int, p QueryParams, start time.Time, stats QueryStats, qspan *obs.Span) ([]Match, QueryStats, error) {
	probeStart := statsClock()
	workers := parallel.Workers(p.Parallelism)
	qt := queryTraceFrom(ctx)
	execs := make([]*stageExec, len(ss.snaps))
	for i, sn := range ss.snaps {
		execs[i] = &stageExec{snap: sn, qRegions: qRegions, qArea: qArea, p: p, workers: workers}
		if qt != nil {
			execs[i].tc = newTraceCollector(len(qRegions), sn.core.version)
		}
	}

	// Every shard shares one configuration, so shard 0's options assemble
	// the plan for all of them.
	phaseA := planPhaseA(p, ss.snaps[0].core.opts)
	ps := qspan.Child("query.probe")
	err := parallel.ForErr(len(ss.snaps), workers, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return runStages(ctx, phaseA, execs[i], ps, "query.shard.", i)
	})
	if err != nil {
		failSpans(ps, qspan)
		return nil, stats, err
	}
	for _, ex := range execs {
		stats.RegionsRetrieved += ex.retrieved
		stats.CandidateImages += len(ex.pairsByImage)
	}
	stats.ProbeTime = statsSince(probeStart)
	ps.End()
	scoreStart := statsClock()

	scorePlan := planScore()
	// Per-shard scoring runs unlimited; the fleet Limit cuts only the
	// merged ranking, so a low Limit cannot drop a high-similarity match
	// that happens to live on a crowded shard.
	for _, ex := range execs {
		ex.p.Limit = 0
	}
	sspan := qspan.Child("query.score")
	err = parallel.ForErr(len(ss.snaps), workers, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return runStages(ctx, scorePlan, execs[i], sspan, "query.shard.", i)
	})
	if err != nil {
		failSpans(sspan, qspan)
		return nil, stats, err
	}
	var mergeStart time.Time
	if qt != nil {
		mergeStart = statsClock()
	}
	perShardMatches := make([][]Match, len(ss.snaps))
	for i, ex := range execs {
		perShardMatches[i] = ex.matches
	}
	matches := mergeMatches(perShardMatches, p.Limit)
	sspan.End()
	stats.ScoreTime = statsSince(scoreStart)
	stats.Elapsed = statsSince(start)
	if qt != nil {
		tcs := make([]*traceCollector, len(execs))
		mergedIn := 0
		for i, ex := range execs {
			tcs[i] = ex.tc
			mergedIn += len(ex.matches)
		}
		qt.fill(qspan, true, p, len(qRegions), tcs, stats, mergedIn, len(matches), statsSince(mergeStart).Nanoseconds())
	}
	ss.observeQuery(qspan, stats)
	return matches, stats, nil
}

// QueryScene is DB.QueryScene across the sharded snapshot.
func (ss *ShardedSnapshot) QueryScene(im *imgio.Image, x, y, w, h int, p QueryParams) ([]Match, QueryStats, error) {
	return ss.QuerySceneContext(context.Background(), im, x, y, w, h, p)
}

// QuerySceneContext is QueryScene with a deadline; see QueryContext.
func (ss *ShardedSnapshot) QuerySceneContext(ctx context.Context, im *imgio.Image, x, y, w, h int, p QueryParams) ([]Match, QueryStats, error) {
	minW := ss.snaps[0].Options().Region.MinWindow
	if w < minW || h < minW {
		return nil, QueryStats{}, fmt.Errorf("walrus: scene %dx%d smaller than the minimum window %d", w, h, minW)
	}
	crop, err := imgio.Crop(im, x, y, w, h)
	if err != nil {
		return nil, QueryStats{}, fmt.Errorf("walrus: cropping scene: %w", err)
	}
	p.Denominator = match.QueryOnly
	return ss.QueryContext(ctx, crop, p)
}

// mergeMatches concatenates per-shard rankings and re-sorts by the
// shared (similarity desc, id asc) key. Ids are disjoint across shards,
// so the merge reproduces exactly the ranking a single shard would have
// produced over the union.
func mergeMatches(perShard [][]Match, limit int) []Match {
	total := 0
	for _, m := range perShard {
		total += len(m)
	}
	merged := make([]Match, 0, total)
	for _, m := range perShard {
		merged = append(merged, m...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Similarity != merged[j].Similarity {
			return merged[i].Similarity > merged[j].Similarity
		}
		return merged[i].ID < merged[j].ID
	})
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	return merged
}

// observeQuery finishes one successful cross-shard query's
// observability: the live query span gains the fleet funnel attributes
// and ends, and the fleet-level counters and histograms advance.
// Per-shard metrics cover only writes, since fan-out queries bypass the
// shards' own query paths.
func (ss *ShardedSnapshot) observeQuery(qspan *obs.Span, stats QueryStats) {
	qspan.SetAttr("query_regions", int64(stats.QueryRegions))
	qspan.SetAttr("regions_retrieved", int64(stats.RegionsRetrieved))
	qspan.SetAttr("candidates", int64(stats.CandidateImages))
	qspan.SetAttr("shards", int64(len(ss.snaps)))
	qspan.End()
	if ss.om == nil {
		return
	}
	m := ss.om.Load()
	if m == nil {
		return
	}
	m.queries.Inc()
	m.queryRegions.Add(uint64(stats.QueryRegions))
	m.regionsRetrieved.Add(uint64(stats.RegionsRetrieved))
	m.candidates.Add(uint64(stats.CandidateImages))
	m.querySeconds.Observe(stats.Elapsed.Seconds())
	m.extractSeconds.Observe(stats.ExtractTime.Seconds())
	m.probeSeconds.Observe(stats.ProbeTime.Seconds())
	m.scoreSeconds.Observe(stats.ScoreTime.Seconds())
}

// Query runs one query against a snapshot of the whole fleet; see
// ShardedSnapshot.Query.
func (s *Sharded) Query(im *imgio.Image, p QueryParams) ([]Match, QueryStats, error) {
	return s.QueryContext(context.Background(), im, p)
}

// QueryContext is Query with a deadline; see ShardedSnapshot.QueryContext.
// With a result cache configured, the lookup keys on the pinned version
// vector and a fingerprint of the query pixels — see Options.CacheSize.
func (s *Sharded) QueryContext(ctx context.Context, im *imgio.Image, p QueryParams) ([]Match, QueryStats, error) {
	ss, err := s.Snapshot()
	if err != nil {
		return nil, QueryStats{}, err
	}
	defer ss.Release()
	c := s.cache.Load()
	if c == nil {
		return ss.QueryContext(ctx, im, p)
	}
	return cachedQuery(ctx, c, s.cacheMetrics(), versionKey(ss.VersionVector()), true, hashQueryImage(im), p,
		func() ([]Match, QueryStats, error) { return ss.QueryContext(ctx, im, p) })
}

// QueryByID queries by the stored regions of an indexed image; see
// ShardedSnapshot.QueryByID. Cacheable like QueryContext, keyed on the
// id instead of pixels.
func (s *Sharded) QueryByID(ctx context.Context, id string, p QueryParams) ([]Match, QueryStats, error) {
	ss, err := s.Snapshot()
	if err != nil {
		return nil, QueryStats{}, err
	}
	defer ss.Release()
	c := s.cache.Load()
	if c == nil {
		return ss.QueryByID(ctx, id, p)
	}
	return cachedQuery(ctx, c, s.cacheMetrics(), versionKey(ss.VersionVector()), true, hashQueryID(id), p,
		func() ([]Match, QueryStats, error) { return ss.QueryByID(ctx, id, p) })
}

// SetCacheSize resizes the fleet-level query result cache at runtime:
// n > 0 installs a fresh, empty cache with that capacity; n <= 0
// disables caching. See DB.SetCacheSize.
func (s *Sharded) SetCacheSize(n int) {
	if n <= 0 {
		s.cache.Store(nil)
		return
	}
	s.cache.Store(newQueryCache(n))
}

// cacheMetrics returns the fleet cache instrument set, nil when metrics
// are detached.
func (s *Sharded) cacheMetrics() *cacheMetrics {
	if m := s.om.Load(); m != nil {
		return &m.cache
	}
	return nil
}

// QueryScene is DB.QueryScene for a sharded database.
func (s *Sharded) QueryScene(im *imgio.Image, x, y, w, h int, p QueryParams) ([]Match, QueryStats, error) {
	return s.QuerySceneContext(context.Background(), im, x, y, w, h, p)
}

// QuerySceneContext is QueryScene with a deadline.
func (s *Sharded) QuerySceneContext(ctx context.Context, im *imgio.Image, x, y, w, h int, p QueryParams) ([]Match, QueryStats, error) {
	ss, err := s.Snapshot()
	if err != nil {
		return nil, QueryStats{}, err
	}
	defer ss.Release()
	return ss.QuerySceneContext(ctx, im, x, y, w, h, p)
}

// Len returns the number of indexed images across all shards, read from
// one pinned version vector.
func (s *Sharded) Len() int {
	ss, err := s.Snapshot()
	if err != nil {
		return 0
	}
	defer ss.Release()
	return ss.Len()
}

// NumRegions returns the number of live regions across all shards, read
// from one pinned version vector.
func (s *Sharded) NumRegions() int {
	ss, err := s.Snapshot()
	if err != nil {
		return 0
	}
	defer ss.Release()
	return ss.NumRegions()
}

// IDs returns the ids of all indexed images in lexicographic order,
// read from one pinned version vector.
func (s *Sharded) IDs() []string {
	ss, err := s.Snapshot()
	if err != nil {
		return nil
	}
	defer ss.Release()
	return ss.IDs()
}

// RegionsOf returns the regions extracted for an indexed image.
func (s *Sharded) RegionsOf(id string) ([]region.Region, bool) {
	return s.shards[shardOf(id, len(s.shards))].RegionsOf(id)
}

// Stats returns a snapshot of database statistics; totals and per-shard
// rows derive from the same pinned version vector.
func (s *Sharded) Stats() ShardedStats {
	ss, err := s.Snapshot()
	if err != nil {
		return ShardedStats{}
	}
	defer ss.Release()
	return ss.Stats()
}

// VersionVector returns the current published catalog version of every
// shard. Unlike ShardedSnapshot.VersionVector it does not pin the
// versions: each element is a point-in-time read of one shard.
func (s *Sharded) VersionVector() []uint64 {
	vv := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		vv[i] = sh.Version()
	}
	return vv
}

// Flush checkpoints every shard of a disk-backed database in parallel.
func (s *Sharded) Flush() error {
	errs := make([]error, len(s.shards))
	parallel.For(len(s.shards), len(s.shards), func(i int) { errs[i] = s.shards[i].Flush() })
	return errors.Join(errs...)
}

// Close flushes and releases every shard. In-memory databases need no
// Close, but calling it is harmless.
func (s *Sharded) Close() error {
	errs := make([]error, len(s.shards))
	parallel.For(len(s.shards), len(s.shards), func(i int) { errs[i] = s.shards[i].Close() })
	return errors.Join(errs...)
}

// SetDurability changes the durability policy of every shard at
// runtime. The fleet-level option and the per-shard policies are
// updated one shard at a time: a concurrent writer may commit under the
// old policy on one shard and the new on another, but each shard's own
// commit path always sees one coherent policy.
func (s *Sharded) SetDurability(p DurabilityPolicy) {
	s.mu.Lock()
	s.opts.Durability = p
	s.mu.Unlock()
	for _, sh := range s.shards {
		sh.SetDurability(p)
	}
}

// Recovery returns the per-shard crash-recovery reports from
// OpenSharded, indexed by shard. ok is false for in-memory databases.
func (s *Sharded) Recovery() ([]RecoveryStats, bool) {
	out := make([]RecoveryStats, len(s.shards))
	ok := false
	for i, sh := range s.shards {
		rs, shardOK := sh.Recovery()
		out[i] = rs
		ok = ok || shardOK
	}
	return out, ok
}

// shardedMetrics holds the fleet-level obs handles of a Sharded
// database: cross-shard queries and snapshots, which bypass the
// individual shards' query paths. One atomic load decides whether
// instrumentation runs; nil means observability is off.
type shardedMetrics struct {
	reg *obs.Registry

	queries          *obs.Counter
	queryRegions     *obs.Counter
	regionsRetrieved *obs.Counter
	candidates       *obs.Counter

	querySeconds   *obs.Histogram
	extractSeconds *obs.Histogram
	probeSeconds   *obs.Histogram
	scoreSeconds   *obs.Histogram

	activeSnapshots *obs.Gauge
	snapshotsTotal  *obs.Counter

	cache cacheMetrics
}

// SetMetrics attaches an observability registry to the fleet and every
// shard under it. Shard-level metrics are scoped by shard index
// (walrus_shard0_images, walrus_shard1_ingest_total, ...), so per-shard
// write skew and snapshot leaks stay visible; fleet-level query and
// snapshot metrics keep the unscoped walrus_* names a standalone
// database would use. Subsystem metrics (WAL, pager, R*-tree, worker
// pool) are shared: every shard reports into the same series. Passing
// nil detaches everything.
func (s *Sharded) SetMetrics(reg *obs.Registry) {
	for i, sh := range s.shards {
		sh.setMetricsScoped(reg, fmt.Sprintf("shard%d_", i))
	}
	if reg == nil {
		s.om.Store(nil)
		return
	}
	reg.Gauge("walrus_shards", "Shard count of the sharded database.").Set(int64(len(s.shards)))
	n := func(base string) string { return "walrus_" + base }
	m := &shardedMetrics{
		reg:              reg,
		queries:          reg.Counter(n("query_total"), "Queries served."),
		queryRegions:     reg.Counter(n("query_regions_total"), "Regions extracted from query images."),
		regionsRetrieved: reg.Counter(n("query_regions_retrieved_total"), "Matching database regions retrieved by index probes."),
		candidates:       reg.Counter(n("query_candidates_total"), "Candidate images scored by queries."),
		querySeconds:     reg.Histogram(n("query_seconds"), "End-to-end query latency.", nil),
		extractSeconds:   reg.Histogram(n("query_extract_seconds"), "Query region-extraction phase latency.", nil),
		probeSeconds:     reg.Histogram(n("query_probe_seconds"), "Query index-probe phase latency.", nil),
		scoreSeconds:     reg.Histogram(n("query_score_seconds"), "Query candidate-scoring phase latency.", nil),
		activeSnapshots:  reg.Gauge(n("snapshots_active"), "Cross-shard snapshots acquired and not yet released."),
		snapshotsTotal:   reg.Counter(n("snapshots_total"), "Cross-shard snapshots acquired."),
		cache:            newCacheMetrics(reg, n),
	}
	s.om.Store(m)
}

// Metrics returns a point-in-time snapshot of every metric in the
// registry attached with SetMetrics. With no registry attached it
// returns an empty snapshot with non-nil maps.
func (s *Sharded) Metrics() obs.Snapshot {
	if m := s.om.Load(); m != nil {
		return m.reg.Snapshot()
	}
	var none *obs.Registry
	return none.Snapshot()
}
