package walrus

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"walrus/internal/crashfs"
	"walrus/internal/region"
	"walrus/internal/rstar"
)

// crashOp is one step of the scripted crash-matrix workload. Region
// extraction is hoisted out (it is deterministic and crash-irrelevant),
// so each matrix iteration pays only for storage work.
type crashOp struct {
	name string
	run  func(db *DB) error
}

func crashWorkload(t *testing.T, o Options) []crashOp {
	t.Helper()
	ext, err := region.NewExtractor(o.Region)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, base, obj [3]float64, x, y, side int) crashOp {
		im := scene(base, obj, x, y, side)
		regions, err := ext.Extract(im)
		if err != nil {
			t.Fatal(err)
		}
		return crashOp{"add " + id, func(db *DB) error {
			db.mu.Lock()
			defer db.mu.Unlock()
			defer db.publishLocked()
			return db.addExtractedLocked(id, im, regions)
		}}
	}
	rm := func(id string) crashOp {
		return crashOp{"remove " + id, func(db *DB) error {
			_, err := db.Remove(id)
			return err
		}}
	}
	return []crashOp{
		mk("a", green, red, 10, 10, 40),
		mk("b", gray, blue, 30, 30, 40),
		rm("a"),
		mk("c", green, yellow, 60, 60, 40),
		{"flush", func(db *DB) error { return db.Flush() }},
		mk("d", blue, red, 20, 20, 50),
		rm("b"),
	}
}

// crashSnapshot fingerprints the full logical state of a database: the
// image catalog, the payload directory, every region payload, and the
// set of live index entries. Two databases with equal snapshots hold the
// same committed operations.
func crashSnapshot(t *testing.T, db *DB) string {
	t.Helper()
	db.mu.RLock()
	defer db.mu.RUnlock()
	var b strings.Builder
	for i, im := range db.images {
		fmt.Fprintf(&b, "img %d %q %dx%d %d\n", i, im.ID, im.W, im.H, len(im.Regions))
		for j, r := range im.Regions {
			enc, err := r.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, "  region %d %x\n", j, sha256.Sum256(enc))
		}
	}
	for i, ref := range db.refs {
		fmt.Fprintf(&b, "ref %d image=%d local=%d rid=%d\n", i, ref.Image, ref.Local, ref.RID)
	}
	// Probe the whole index: the live entry set must match the live refs.
	dim := db.opts.Region.Dim()
	mins := make([]float64, dim)
	maxs := make([]float64, dim)
	for i := range mins {
		mins[i], maxs[i] = -1e9, 1e9
	}
	world, err := rstar.NewRect(mins, maxs)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := db.tree.SearchAll(world)
	if err != nil {
		t.Fatalf("index probe during snapshot: %v", err)
	}
	payloads := make([]int64, 0, len(entries))
	for _, e := range entries {
		payloads = append(payloads, e.Data)
	}
	sort.Slice(payloads, func(i, j int) bool { return payloads[i] < payloads[j] })
	fmt.Fprintf(&b, "index %v\n", payloads)
	return b.String()
}

// runOracle executes the workload serially on a clean disk database and
// returns snapshots[i] = state after the first i operations.
func runOracle(t *testing.T, o Options, ops []crashOp) []string {
	t.Helper()
	dir := t.TempDir()
	db, err := Create(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	snaps := []string{crashSnapshot(t, db)}
	for _, op := range ops {
		if err := op.run(db); err != nil {
			t.Fatalf("oracle %s: %v", op.name, err)
		}
		snaps = append(snaps, crashSnapshot(t, db))
	}
	return snaps
}

// runToKill creates a database through the injector, arms the kill
// point, and runs the workload until an operation fails (or all
// complete). It returns the number of completed operations.
func runToKill(t *testing.T, o Options, ops []crashOp, in *crashfs.Injector, dir string, killAt int64, tear int) int {
	t.Helper()
	o.FS = in.Open
	db, err := Create(dir, o)
	if err != nil {
		t.Fatalf("Create before arming: %v", err)
	}
	in.Arm(killAt, tear)
	completed := 0
	for _, op := range ops {
		if err := op.run(db); err != nil {
			if !errors.Is(err, crashfs.ErrKilled) {
				t.Fatalf("op %s failed with a non-injected error: %v", op.name, err)
			}
			break
		}
		completed++
	}
	db.Close() // errors expected after the kill; just release descriptors
	return completed
}

// TestCrashMatrixAlwaysDurable enumerates kill points across a scripted
// workload under DurabilityAlways and asserts that recovery lands
// exactly on the serial oracle: the state after `completed` operations,
// or after one more (an operation can commit durably and then fail in
// its post-commit checkpoint work).
func TestCrashMatrixAlwaysDurable(t *testing.T) {
	o := testOptions()
	o.Durability = DurabilityAlways
	ops := crashWorkload(t, o)
	oracle := runOracle(t, o, ops)

	// Dry run through the injector (never killed) to size the matrix.
	probe := crashfs.New()
	total := int64(0)
	{
		dir := t.TempDir()
		if got := runToKill(t, o, ops, probe, dir, 0, -1); got != len(ops) {
			t.Fatalf("dry run completed %d/%d ops", got, len(ops))
		}
		total = probe.Ops()
	}
	if total < int64(len(ops)) {
		t.Fatalf("implausible op count %d", total)
	}

	budget := int64(100)
	if testing.Short() {
		budget = 25
	}
	stride := total / budget
	if stride < 1 {
		stride = 1
	}
	killed := 0
	for kill := int64(1); kill <= total; kill += stride {
		// Alternate clean kills and torn writes (persist an 8-byte
		// prefix of the killing write).
		tear := -1
		if kill%2 == 0 {
			tear = 8
		}
		in := crashfs.New()
		dir := t.TempDir()
		completed := runToKill(t, o, ops, in, dir, kill, tear)
		if !in.Killed() {
			// The workload finished before reaching this kill point
			// (op counts can shrink slightly with torn-write timing).
			continue
		}
		killed++
		in.Arm(0, -1) // disarm: recovery sees the crashed disk image
		re, err := OpenFS(dir, in.Open)
		if err != nil {
			t.Fatalf("kill=%d tear=%d after %d ops: recovery failed: %v", kill, tear, completed, err)
		}
		got := crashSnapshot(t, re)
		re.Close()
		if got != oracle[completed] && (completed+1 >= len(oracle) || got != oracle[completed+1]) {
			t.Fatalf("kill=%d tear=%d: recovered state matches neither oracle[%d] nor oracle[%d]",
				kill, tear, completed, completed+1)
		}
	}
	if killed < 2 {
		t.Fatalf("crash matrix exercised only %d kill points (total ops %d)", killed, total)
	}
	t.Logf("crash matrix: %d kill points over %d ops, stride %d", killed, total, stride)
}

// TestCrashMatrixGroupCommit: under the default group-commit policy a
// crash may lose recent operations but recovery must still land on SOME
// serial prefix of the workload — never a torn or reordered state.
func TestCrashMatrixGroupCommit(t *testing.T) {
	o := testOptions()
	o.Durability = DurabilityGroupCommit
	ops := crashWorkload(t, o)
	oracle := runOracle(t, o, ops)

	probe := crashfs.New()
	dir := t.TempDir()
	if got := runToKill(t, o, ops, probe, dir, 0, -1); got != len(ops) {
		t.Fatalf("dry run completed %d/%d ops", got, len(ops))
	}
	total := probe.Ops()

	budget := int64(40)
	if testing.Short() {
		budget = 10
	}
	stride := total / budget
	if stride < 1 {
		stride = 1
	}
	for kill := int64(1); kill <= total; kill += stride {
		tear := -1
		if kill%3 == 0 {
			tear = 5
		}
		in := crashfs.New()
		dir := t.TempDir()
		completed := runToKill(t, o, ops, in, dir, kill, tear)
		if !in.Killed() {
			continue
		}
		in.Arm(0, -1)
		re, err := OpenFS(dir, in.Open)
		if err != nil {
			t.Fatalf("kill=%d after %d ops: recovery failed: %v", kill, completed, err)
		}
		got := crashSnapshot(t, re)
		re.Close()
		found := false
		for i := 0; i <= completed+1 && i < len(oracle); i++ {
			if got == oracle[i] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("kill=%d: recovered state is not a serial prefix of the workload", kill)
		}
	}
}

// TestRecoveryReportsStats: a dirty reopen surfaces what recovery did.
func TestRecoveryReportsStats(t *testing.T) {
	o := testOptions()
	o.Durability = DurabilityAlways
	ops := crashWorkload(t, o)

	in := crashfs.New()
	dir := t.TempDir()
	// Kill well into the workload so the log holds committed records.
	probe := crashfs.New()
	if got := runToKill(t, o, ops, probe, t.TempDir(), 0, -1); got != len(ops) {
		t.Fatalf("dry run completed %d ops", got)
	}
	kill := probe.Ops() * 3 / 4
	completed := runToKill(t, o, ops, in, dir, kill, -1)
	if completed == 0 {
		t.Skipf("kill point %d fell before the first commit", kill)
	}
	in.Arm(0, -1)
	re, err := OpenFS(dir, in.Open)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	stats, ok := re.Recovery()
	if !ok {
		t.Fatal("Recovery() not available on a disk-backed database")
	}
	if !stats.Replayed {
		t.Fatal("Replayed = false after a mid-workload crash")
	}
	if stats.RecordsScanned == 0 || stats.Commits == 0 {
		t.Fatalf("implausible recovery stats: %+v", stats)
	}

	// A clean close leaves nothing to replay.
	re.Close()
	re2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if s2, _ := re2.Recovery(); s2.Replayed {
		t.Fatalf("Replayed = true after clean close: %+v", s2)
	}
}

// TestDurabilityAlwaysSurvivesImmediateCrash: once Add returns under
// DurabilityAlways, the image survives a crash with no clean shutdown.
func TestDurabilityAlwaysSurvivesImmediateCrash(t *testing.T) {
	o := testOptions()
	o.Durability = DurabilityAlways
	in := crashfs.New()
	dir := t.TempDir()
	o.FS = in.Open
	db, err := Create(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("survivor", scene(green, red, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}
	// Crash: every subsequent disk operation fails, including Close.
	in.Arm(1, -1)
	db.Close()
	in.Arm(0, -1)

	re, err := OpenFS(dir, in.Open)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("Len = %d after crash recovery, want 1", re.Len())
	}
	if _, ok := re.byID["survivor"]; !ok {
		t.Fatal("committed image lost")
	}
	stats, _ := re.Recovery()
	if !stats.Replayed {
		t.Fatal("recovery did not replay the committed operation")
	}
}
