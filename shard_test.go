package walrus

import (
	"strconv"
	"strings"
	"testing"

	"walrus/internal/imgio"
)

// shardScriptCorpus is the seeded image set the shard tests mutate; a
// slice of corpus50 keeps the matrix fast enough for -race.
func shardScriptCorpus(t *testing.T) []BatchItem {
	t.Helper()
	return corpus50(t)[:24]
}

// runShardScript drives one sharded database through the canonical
// AddBatch/Add/Remove/re-add script at the given shard count and
// parallelism. Every (shards, parallelism) combination must leave the
// database in a logically identical state.
func runShardScript(t *testing.T, shards, par int) *Sharded {
	t.Helper()
	opts := testOptions()
	opts.Shards = shards
	opts.Parallelism = par
	s, err := NewSharded(opts)
	if err != nil {
		t.Fatalf("shards=%d: NewSharded: %v", shards, err)
	}
	items := shardScriptCorpus(t)
	if err := s.AddBatch(items[:14], par); err != nil {
		t.Fatalf("shards=%d: AddBatch: %v", shards, err)
	}
	for _, it := range items[14:18] {
		if err := s.Add(it.ID, it.Image); err != nil {
			t.Fatalf("shards=%d: Add %s: %v", shards, it.ID, err)
		}
	}
	for _, id := range []string{"corpus-03", "corpus-11", "corpus-16"} {
		ok, err := s.Remove(id)
		if err != nil {
			t.Fatalf("shards=%d: Remove %s: %v", shards, id, err)
		}
		if !ok {
			t.Fatalf("shards=%d: Remove %s: not present", shards, id)
		}
	}
	if err := s.AddBatch(items[18:], par); err != nil {
		t.Fatalf("shards=%d: AddBatch tail: %v", shards, err)
	}
	// Re-adding a removed id must work and land on the same shard.
	if err := s.Add("corpus-11", items[11].Image); err != nil {
		t.Fatalf("shards=%d: re-Add corpus-11: %v", shards, err)
	}
	return s
}

// shardFingerprint renders everything the determinism matrix compares
// byte-for-byte: the canonical id listing, the logical (layout-independent)
// Stats fields, per-id region counts, and full query rankings with exact
// similarities. Physical layout — per-shard image counts, index heights —
// is deliberately excluded: it varies with the shard count by design.
func shardFingerprint(t *testing.T, s *Sharded, queries []*imgio.Image, par int) string {
	t.Helper()
	var b strings.Builder
	ids := s.IDs()
	b.WriteString("ids=")
	b.WriteString(strings.Join(ids, ","))
	b.WriteString("\n")
	st := s.Stats()
	b.WriteString("images=")
	b.WriteString(strconv.Itoa(st.Images))
	b.WriteString(" regions=")
	b.WriteString(strconv.Itoa(st.Regions))
	b.WriteString(" sigdim=")
	b.WriteString(strconv.Itoa(st.SignatureDim))
	b.WriteString(" disk=")
	b.WriteString(strconv.FormatBool(st.DiskBacked))
	b.WriteString("\n")
	if got := s.Len(); got != st.Images {
		t.Fatalf("Len() = %d, Stats().Images = %d", got, st.Images)
	}
	if got := s.NumRegions(); got != st.Regions {
		t.Fatalf("NumRegions() = %d, Stats().Regions = %d", got, st.Regions)
	}
	for _, id := range ids {
		regs, ok := s.RegionsOf(id)
		if !ok {
			t.Fatalf("RegionsOf(%s): not found but listed in IDs", id)
		}
		b.WriteString("regions[")
		b.WriteString(id)
		b.WriteString("]=")
		b.WriteString(strconv.Itoa(len(regs)))
		b.WriteString("\n")
	}
	p := DefaultQueryParams()
	p.Parallelism = par
	p.Limit = 10
	for qi, q := range queries {
		matches, qs, err := s.Query(q, p)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		b.WriteString("q")
		b.WriteString(strconv.Itoa(qi))
		b.WriteString(" qregions=")
		b.WriteString(strconv.Itoa(qs.QueryRegions))
		b.WriteString(" retrieved=")
		b.WriteString(strconv.Itoa(qs.RegionsRetrieved))
		b.WriteString(" candidates=")
		b.WriteString(strconv.Itoa(qs.CandidateImages))
		b.WriteString("\n")
		for _, m := range matches {
			b.WriteString("  ")
			b.WriteString(m.ID)
			b.WriteString(" ")
			b.WriteString(strconv.FormatFloat(m.Similarity, 'g', -1, 64))
			b.WriteString(" ")
			b.WriteString(strconv.Itoa(m.MatchingRegions))
			b.WriteString("\n")
		}
	}
	return b.String()
}

func shardTestQueries() []*imgio.Image {
	return []*imgio.Image{
		scene(green, red, 24, 24, 40),
		scene(gray, blue, 40, 40, 44),
		scene(green, yellow, 16, 48, 36),
	}
}

// TestShardMatrixDeterminism is the shard-count equivalence matrix: the
// same mutation script run at shards ∈ {1,2,4,7} and Parallelism ∈ {1,4}
// must produce byte-identical query results, IDs() and logical Stats()
// output, with the shards=1 serial run pinned as the oracle.
func TestShardMatrixDeterminism(t *testing.T) {
	queries := shardTestQueries()
	oracle := ""
	for _, shards := range []int{1, 2, 4, 7} {
		for _, par := range []int{1, 4} {
			s := runShardScript(t, shards, par)
			got := shardFingerprint(t, s, queries, par)
			if oracle == "" {
				oracle = got
				continue
			}
			if got != oracle {
				t.Errorf("shards=%d parallelism=%d diverges from the shards=1 oracle\n--- oracle ---\n%s--- got ---\n%s",
					shards, par, oracle, got)
			}
		}
	}
}

// TestShardMatchesUnsharded pins the sharded fan-out to the plain DB
// pipeline: a 4-shard database must rank every query exactly like an
// unsharded database over the same corpus.
func TestShardMatchesUnsharded(t *testing.T) {
	items := shardScriptCorpus(t)
	plain, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.AddBatch(items, 0); err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Shards = 4
	s, err := NewSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddBatch(items, 0); err != nil {
		t.Fatal(err)
	}
	if s.Len() != plain.Len() || s.NumRegions() != plain.NumRegions() {
		t.Fatalf("sharded %d/%d images/regions, plain %d/%d",
			s.Len(), s.NumRegions(), plain.Len(), plain.NumRegions())
	}
	for qi, q := range shardTestQueries() {
		want, ws, err := plain.Query(q, DefaultQueryParams())
		if err != nil {
			t.Fatal(err)
		}
		got, gs, err := s.Query(q, DefaultQueryParams())
		if err != nil {
			t.Fatal(err)
		}
		if gs.RegionsRetrieved != ws.RegionsRetrieved || gs.CandidateImages != ws.CandidateImages {
			t.Fatalf("query %d stats differ: retrieved %d/%d candidates %d/%d",
				qi, gs.RegionsRetrieved, ws.RegionsRetrieved, gs.CandidateImages, ws.CandidateImages)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d matches sharded, %d plain", qi, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || got[i].Similarity != want[i].Similarity ||
				got[i].MatchingRegions != want[i].MatchingRegions {
				t.Fatalf("query %d rank %d differs: %+v vs %+v", qi, i, got[i], want[i])
			}
		}
	}
}

// TestShardBulkLoadDeterminism: the STR bulk-load constructors must
// produce the same logical state as the incremental script's AddBatch,
// at every shard count.
func TestShardBulkLoadDeterminism(t *testing.T) {
	items := shardScriptCorpus(t)
	queries := shardTestQueries()
	oracle := ""
	for _, shards := range []int{1, 3} {
		opts := testOptions()
		opts.Shards = shards
		built, err := BuildFromSharded(opts, items, 0)
		if err != nil {
			t.Fatal(err)
		}
		incr, err := NewSharded(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := incr.AddBatch(items, 0); err != nil {
			t.Fatal(err)
		}
		fpBuilt := shardFingerprint(t, built, queries, 0)
		fpIncr := shardFingerprint(t, incr, queries, 0)
		if fpBuilt != fpIncr {
			t.Errorf("shards=%d: BuildFromSharded diverges from AddBatch\n--- AddBatch ---\n%s--- BuildFrom ---\n%s",
				shards, fpIncr, fpBuilt)
		}
		if oracle == "" {
			oracle = fpBuilt
		} else if fpBuilt != oracle {
			t.Errorf("shards=%d: BuildFromSharded diverges from shards=1 oracle", shards)
		}
	}
}

// TestShardDiskRoundtrip: CreateSharded → mutate → Close → OpenSharded
// preserves the fingerprint, reports per-shard recovery stats, and the
// manifest makes the directory auto-detectable.
func TestShardDiskRoundtrip(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.Shards = 3
	s, err := CreateSharded(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	items := shardScriptCorpus(t)
	if err := s.AddBatch(items[:16], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Remove(items[5].ID); err != nil {
		t.Fatal(err)
	}
	queries := shardTestQueries()
	before := shardFingerprint(t, s, queries, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !IsSharded(dir) {
		t.Fatalf("IsSharded(%s) = false after CreateSharded", dir)
	}
	reopened, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.Shards(); got != 3 {
		t.Fatalf("Shards() = %d after reopen, want 3", got)
	}
	rs, ok := reopened.Recovery()
	if !ok || len(rs) != 3 {
		t.Fatalf("Recovery() = (%d reports, %v), want 3 reports from a disk-backed fleet", len(rs), ok)
	}
	for i, r := range rs {
		if r.Replayed {
			t.Errorf("shard %d replayed its WAL after a clean close", i)
		}
	}
	after := shardFingerprint(t, reopened, queries, 0)
	if after != before {
		t.Errorf("fingerprint changed across Close/OpenSharded\n--- before ---\n%s--- after ---\n%s", before, after)
	}

	// CreateFromSharded bulk-loads into a fresh directory; the physical
	// layout differs (STR packing) but the fingerprint may not.
	bulkDir := t.TempDir()
	final := append([]BatchItem(nil), items[:5]...)
	final = append(final, items[6:16]...)
	bulk, err := CreateFromSharded(bulkDir, opts, final, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer bulk.Close()
	if got := shardFingerprint(t, bulk, queries, 0); got != before {
		t.Errorf("CreateFromSharded fingerprint diverges\n--- incremental ---\n%s--- bulk ---\n%s", before, got)
	}
}
