package walrus

import (
	"fmt"
	"sync"
	"testing"

	"walrus/internal/obs"
)

// TestShardFanoutConsistency is the cross-shard mixed oracle: readers
// acquire sharded snapshots under write churn and assert each query
// observed exactly one consistent version per shard — the version vector
// is complete and per-shard monotone, every accessor agrees on the image
// set, and query results never name an image outside the pinned vector.
// Afterwards the per-shard and fleet active-snapshots gauges must drain
// to zero (the leak check).
func TestShardFanoutConsistency(t *testing.T) {
	const shards = 3
	opts := testOptions()
	opts.Shards = shards
	opts.Parallelism = 2
	s, err := NewSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.SetMetrics(reg)

	var seeds []BatchItem
	for i := 0; i < 9; i++ {
		seeds = append(seeds, BatchItem{
			ID:    fmt.Sprintf("seed-%d", i),
			Image: scene(green, red, (i*9)%70, (i*13)%70, 40),
		})
	}
	if err := s.AddBatch(seeds, 0); err != nil {
		t.Fatal(err)
	}
	q := scene(green, red, 24, 24, 40)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Adders: disjoint id streams, hashing across all shards.
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				id := fmt.Sprintf("new-%d-%d", g, i)
				if err := s.Add(id, scene(gray, blue, (i*11)%70, (g*17+i*7)%70, 44)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Remover.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, id := range []string{"seed-1", "seed-4", "seed-7"} {
			if _, err := s.Remove(id); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Readers: per-shard version monotonicity plus set consistency.
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := DefaultQueryParams()
			p.Parallelism = g % 3
			last := make([]uint64, shards)
			for i := 0; i < 8; i++ {
				ss, err := s.Snapshot()
				if err != nil {
					errs <- err
					return
				}
				vv := ss.VersionVector()
				if len(vv) != shards {
					errs <- fmt.Errorf("version vector has %d entries, want %d", len(vv), shards)
					ss.Release()
					return
				}
				for k, v := range vv {
					if v < last[k] {
						errs <- fmt.Errorf("shard %d version went backwards: %d after %d", k, v, last[k])
						ss.Release()
						return
					}
					last[k] = v
				}
				ids := ss.IDs()
				st := ss.Stats()
				if ss.Len() != len(ids) || st.Images != len(ids) {
					errs <- fmt.Errorf("torn sharded snapshot %v: Len %d, IDs %d, Stats.Images %d",
						vv, ss.Len(), len(ids), st.Images)
					ss.Release()
					return
				}
				sumImages, sumRegions := 0, 0
				for _, per := range st.PerShard {
					sumImages += per.Images
					sumRegions += per.Regions
				}
				if sumImages != st.Images || sumRegions != st.Regions {
					errs <- fmt.Errorf("unpinned aggregation %v: totals %d/%d, per-shard sums %d/%d",
						vv, st.Images, st.Regions, sumImages, sumRegions)
					ss.Release()
					return
				}
				present := make(map[string]bool, len(ids))
				for _, id := range ids {
					present[id] = true
				}
				matches, _, err := ss.Query(q, p)
				if err != nil {
					errs <- err
					ss.Release()
					return
				}
				for _, m := range matches {
					if !present[m.ID] {
						errs <- fmt.Errorf("snapshot %v: query matched %q outside its version vector", vv, m.ID)
						ss.Release()
						return
					}
				}
				ss.Release()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if want := 9 + 12 - 3; s.Len() != want {
		t.Fatalf("Len = %d after mixed workload, want %d", s.Len(), want)
	}

	// Leak check: every snapshot the workload acquired (including the
	// one-shot readers' internal ones) has been released, per shard and
	// fleet-wide.
	gauges := s.Metrics().Gauges
	if active := gauges["walrus_snapshots_active"]; active != 0 {
		t.Errorf("fleet walrus_snapshots_active = %d after workload, want 0", active)
	}
	for k := 0; k < shards; k++ {
		name := fmt.Sprintf("walrus_shard%d_snapshots_active", k)
		if active, ok := gauges[name]; !ok {
			t.Errorf("gauge %s missing", name)
		} else if active != 0 {
			t.Errorf("%s = %d after workload, want 0", name, active)
		}
	}
}

// TestShardStatsPinnedAggregation is the regression for the db.mu audit:
// Stats totals and the per-shard breakdown must come from one pinned
// version vector, so the totals always equal the per-shard sums even
// while writers churn every shard.
func TestShardStatsPinnedAggregation(t *testing.T) {
	opts := testOptions()
	opts.Shards = 4
	s, err := NewSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("churn-%d", i)
			if err := s.Add(id, scene(green, red, (i*7)%70, (i*11)%70, 40)); err != nil {
				t.Error(err)
				return
			}
			if i%3 == 2 {
				if _, err := s.Remove(fmt.Sprintf("churn-%d", i-2)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < 30; i++ {
		st := s.Stats()
		sumImages, sumRegions := 0, 0
		for _, per := range st.PerShard {
			sumImages += per.Images
			sumRegions += per.Regions
		}
		if sumImages != st.Images || sumRegions != st.Regions {
			t.Errorf("iteration %d: totals %d/%d but per-shard sums %d/%d",
				i, st.Images, st.Regions, sumImages, sumRegions)
		}
	}
	close(stop)
	wg.Wait()
}

// TestShardSetDurabilityCoherence is the regression for the audit's
// SetDurability finding: concurrent policy flips and Options reads on a
// disk-backed fleet must stay race-free (Sharded.mu guards the fleet
// option) and every shard must end on the final policy.
func TestShardSetDurabilityCoherence(t *testing.T) {
	opts := testOptions()
	opts.Shards = 3
	s, err := CreateSharded(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Add("seed", scene(green, red, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	policies := []DurabilityPolicy{DurabilityAlways, DurabilityNone, DurabilityGroupCommit}
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				s.SetDurability(policies[(g+i)%len(policies)])
				got := s.Options().Durability
				found := false
				for _, p := range policies {
					if got == p {
						found = true
					}
				}
				if !found {
					t.Errorf("Options().Durability = %v, not a policy any writer set", got)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := s.Add(fmt.Sprintf("w-%d", i), scene(gray, blue, i*6, i*8, 40)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	s.SetDurability(DurabilityAlways)
	if got := s.Options().Durability; got != DurabilityAlways {
		t.Fatalf("Options().Durability = %v after final SetDurability, want %v", got, DurabilityAlways)
	}
	ss, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Release()
	if got := ss.Options().Durability; got != DurabilityAlways {
		t.Errorf("snapshot Options().Durability = %v, want %v", got, DurabilityAlways)
	}
}
