package walrus

import (
	"fmt"
	"testing"

	"walrus/internal/imgio"
)

func bulkItems(n int) []BatchItem {
	var items []BatchItem
	for i := 0; i < n; i++ {
		items = append(items, BatchItem{
			ID:    fmt.Sprintf("img-%02d", i),
			Image: scene(green, red, (i*11)%70, (i*7)%70, 40),
		})
	}
	return items
}

// TestBuildFromMatchesIncremental: the bulk-built database answers queries
// identically to one built with Add.
func TestBuildFromMatchesIncremental(t *testing.T) {
	items := bulkItems(10)
	bulk, err := BuildFrom(testOptions(), items, 4)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := inc.Add(it.ID, it.Image); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Len() != inc.Len() || bulk.NumRegions() != inc.NumRegions() {
		t.Fatalf("bulk %d/%d vs incremental %d/%d",
			bulk.Len(), bulk.NumRegions(), inc.Len(), inc.NumRegions())
	}
	q := scene(green, red, 33, 21, 40)
	mb, _, err := bulk.Query(q, DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	mi, _, err := inc.Query(q, DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(mb) != len(mi) {
		t.Fatalf("result counts differ: %d vs %d", len(mb), len(mi))
	}
	for i := range mb {
		if mb[i].ID != mi[i].ID || mb[i].Similarity != mi[i].Similarity {
			t.Fatalf("rank %d: %+v vs %+v", i, mb[i], mi[i])
		}
	}
}

func TestBuildFromEmptyAndErrors(t *testing.T) {
	db, err := BuildFrom(testOptions(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 0 {
		t.Fatalf("empty build Len = %d", db.Len())
	}
	// The empty database accepts subsequent adds.
	if err := db.Add("later", scene(green, red, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}

	items := bulkItems(2)
	items[1].ID = items[0].ID
	if _, err := BuildFrom(testOptions(), items, 2); err == nil {
		t.Fatal("accepted duplicate ids")
	}
	bad := []BatchItem{{"tiny", imgio.New(4, 4, 3)}}
	if _, err := BuildFrom(testOptions(), bad, 1); err == nil {
		t.Fatal("accepted too-small image")
	}
}

// TestBuildFromThenMutate: the bulk-built DB supports Add/Remove/Query.
func TestBuildFromThenMutate(t *testing.T) {
	db, err := BuildFrom(testOptions(), bulkItems(6), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("extra", scene(gray, blue, 30, 30, 40)); err != nil {
		t.Fatal(err)
	}
	ok, err := db.Remove("img-03")
	if err != nil || !ok {
		t.Fatalf("Remove: %v %v", ok, err)
	}
	matches, _, err := db.Query(scene(gray, blue, 30, 30, 40), DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].ID != "extra" {
		t.Fatalf("post-mutation query: %+v", matches)
	}
}

// TestCreateFromDiskRoundTrip: the disk-backed bulk build persists and
// answers queries identically after reopening.
func TestCreateFromDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	items := bulkItems(8)
	db, err := CreateFrom(dir, testOptions(), items, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := scene(green, red, 25, 25, 40)
	want, _, err := db.Query(q, DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 8 {
		t.Fatalf("Len = %d", re.Len())
	}
	got, _, err := re.Query(q, DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("result counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Similarity != want[i].Similarity {
			t.Fatalf("rank %d drifted: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Mutations work on the reopened bulk-built database.
	if err := re.Add("extra", scene(gray, blue, 30, 30, 40)); err != nil {
		t.Fatal(err)
	}
	if ok, err := re.Remove("img-02"); err != nil || !ok {
		t.Fatalf("Remove: %v %v", ok, err)
	}
}

func TestCreateFromRejectsGiST(t *testing.T) {
	o := testOptions()
	o.Index = IndexGiST
	if _, err := CreateFrom(t.TempDir(), o, nil, 0); err == nil {
		t.Fatal("CreateFrom accepted gist backend")
	}
}
