package walrus

import (
	"fmt"
	"testing"

	"walrus/internal/imgio"
)

func TestAddBatchMatchesSequentialAdd(t *testing.T) {
	items := []BatchItem{
		{"a", scene(green, red, 10, 10, 50)},
		{"b", scene(green, red, 60, 60, 50)},
		{"c", scene(gray, blue, 30, 30, 50)},
		{"d", scene(green, yellow, 20, 40, 40)},
	}
	seq, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := seq.Add(it.ID, it.Image); err != nil {
			t.Fatal(err)
		}
	}
	par, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := par.AddBatch(items, 3); err != nil {
		t.Fatal(err)
	}
	if par.Len() != seq.Len() || par.NumRegions() != seq.NumRegions() {
		t.Fatalf("batch differs: %d/%d images, %d/%d regions",
			par.Len(), seq.Len(), par.NumRegions(), seq.NumRegions())
	}
	// Query results must be identical (same regions, same order).
	q := scene(green, red, 30, 30, 50)
	ms, _, err := seq.Query(q, DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	mp, _, err := par.Query(q, DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(mp) {
		t.Fatalf("result counts differ: %d vs %d", len(ms), len(mp))
	}
	for i := range ms {
		if ms[i].ID != mp[i].ID || ms[i].Similarity != mp[i].Similarity {
			t.Fatalf("rank %d differs: %+v vs %+v", i, ms[i], mp[i])
		}
	}
}

func TestAddBatchEmptyAndErrors(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddBatch(nil, 4); err != nil {
		t.Fatal(err)
	}
	// A too-small image fails extraction; the error names the item.
	items := []BatchItem{
		{"ok", scene(green, red, 10, 10, 40)},
		{"tiny", imgio.New(8, 8, 3)},
	}
	if err := db.AddBatch(items, 2); err == nil {
		t.Fatal("AddBatch accepted a too-small image")
	}
	// The item before the failure is indexed.
	if db.Len() != 1 {
		t.Fatalf("Len = %d after partial batch", db.Len())
	}
	// Duplicate ids fail at insertion.
	if err := db.AddBatch([]BatchItem{{"ok", scene(green, red, 0, 0, 40)}}, 1); err == nil {
		t.Fatal("AddBatch accepted duplicate id")
	}
}

func TestAddBatchManyWorkers(t *testing.T) {
	var items []BatchItem
	for i := 0; i < 12; i++ {
		items = append(items, BatchItem{
			ID:    fmt.Sprintf("img-%02d", i),
			Image: scene(green, red, (i*7)%60, (i*11)%60, 40),
		})
	}
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddBatch(items, 64); err != nil { // more workers than items
		t.Fatal(err)
	}
	if db.Len() != 12 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestStats(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Images != 0 || s.Regions != 0 || s.DiskBacked {
		t.Fatalf("fresh stats: %+v", s)
	}
	if s.SignatureDim != 12 {
		t.Fatalf("SignatureDim = %d", s.SignatureDim)
	}
	if err := db.Add("a", scene(green, red, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}
	s = db.Stats()
	if s.Images != 1 || s.Regions == 0 || s.IndexHeight < 1 {
		t.Fatalf("stats after add: %+v", s)
	}
	// Disk-backed flag.
	ddb, err := Create(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ddb.Close()
	if !ddb.Stats().DiskBacked {
		t.Fatal("disk-backed DB not reported")
	}
}

func TestQueryScene(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Target contains a red square bottom-right on green.
	if err := db.Add("has-object", scene(green, red, 80, 80, 40)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("no-object", scene(gray, blue, 20, 20, 40)); err != nil {
		t.Fatal(err)
	}
	// Query image has the object top-left plus unrelated clutter elsewhere;
	// select just the object's rectangle.
	q := scene(green, red, 4, 4, 40)
	for y := 80; y < 120; y++ {
		for x := 20; x < 120; x++ {
			q.SetRGB(x, y, 0.9, 0.9, 0.2) // clutter the scene query should ignore
		}
	}
	matches, stats, err := db.QueryScene(q, 0, 0, 48, 48, DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if stats.QueryRegions == 0 {
		t.Fatal("no regions from scene")
	}
	if len(matches) == 0 || matches[0].ID != "has-object" {
		t.Fatalf("scene query matches: %+v", matches)
	}
	// Scene smaller than the window is rejected.
	if _, _, err := db.QueryScene(q, 0, 0, 16, 16, DefaultQueryParams()); err == nil {
		t.Fatal("accepted scene smaller than window")
	}
	// Out-of-bounds rectangle is rejected.
	if _, _, err := db.QueryScene(q, 100, 100, 48, 48, DefaultQueryParams()); err == nil {
		t.Fatal("accepted out-of-bounds scene")
	}
}
