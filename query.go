//walrus:lint-hot staged query pipeline: probe/refine/score fan-outs
package walrus

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"walrus/internal/imgio"
	"walrus/internal/match"
	"walrus/internal/obs"
	"walrus/internal/parallel"
	"walrus/internal/region"
	"walrus/internal/rstar"
	"walrus/internal/wbiis"
)

// The query pipeline stages. A query runs as a stage plan over one
// immutable Snapshot — extract, probe, the optional prefilter and refine
// tiers, aggregate, score — assembled by planPhaseA/planScore and driven
// by runStages (plan.go). Each stage takes only the snapshot and the
// previous stage's output, so the whole pipeline is lock-free: the
// catalog slices and the pinned index view cannot change underneath it,
// and the per-stage fan-out over the worker pool needs no
// synchronization beyond slot-indexed writes.

// signatureRect builds the index key for a region: its centroid point,
// or its signature bounding box when useBBox is set.
func signatureRect(useBBox bool, r region.Region) rstar.Rect {
	if useBBox {
		rect, err := rstar.NewRect(r.Min, r.Max)
		if err == nil {
			return rect
		}
	}
	return rstar.Point(r.Signature)
}

// probeHit is one index hit: a matching (query region, target region)
// pair, the image the target region belongs to, and the index payload
// locating the region's binary signature in the snapshot's bsigs slice.
type probeHit struct {
	image   int
	payload int64
	pair    match.Pair
}

// extractStage decomposes the query image into regions using the
// snapshot's extractor, so extraction and index probes are bound to the
// same version of the configuration.
func (s *Snapshot) extractStage(im *imgio.Image) ([]region.Region, error) {
	qRegions, err := s.core.ext.Extract(im)
	if err != nil {
		return nil, fmt.Errorf("walrus: extracting query regions: %w", err)
	}
	return qRegions, nil
}

// probeStage probes the index with every query region's epsilon
// envelope. The probes only read the pinned view and the snapshot
// catalog, so they fan across the worker pool; each writes its hits into
// its own slot and the slots are merged in query-region order by the
// aggregate stage, which keeps pairsByImage — and therefore scores,
// stats and rankings — identical to the serial query.
// A nil tc (the common case) adds nothing to the probe path; an EXPLAIN
// query passes a collector and each task records its region's slot.
func (s *Snapshot) probeStage(ctx context.Context, qRegions []region.Region, p QueryParams, workers int, tc *traceCollector) ([][]probeHit, error) {
	perRegion := make([][]probeHit, len(qRegions))
	err := parallel.ForErr(len(qRegions), workers, func(qi int) error {
		// The deadline check rides each parallel task: a query whose
		// context expires mid-probe stops fanning out more index work.
		if err := ctx.Err(); err != nil {
			return err
		}
		qr := qRegions[qi]
		probe := signatureRect(s.core.opts.UseBBox, qr).Expand(p.Epsilon)
		var entries []rstar.Entry
		var err error
		if tc == nil {
			entries, err = s.view.SearchAll(probe)
		} else {
			var visits int
			entries, visits, err = s.view.SearchAllCounting(probe)
			tc.indexHits[qi] = len(entries)
			tc.nodeVisits[qi] = visits
		}
		if err != nil {
			return err
		}
		// When the prefilter tier is planned, the exact distance check is
		// deferred to it: the coarse Hamming/variance tests run first and
		// the euclidean distance is computed only for survivors.
		exact := !prefilterEnabled(p, s.core.opts)
		hits := make([]probeHit, len(entries))
		n := 0
		for _, e := range entries {
			// Validate the hit against the snapshot catalog. The pinned
			// R*-tree view never yields out-of-version entries, but the
			// GiST view probes the live tree: skip refs the snapshot does
			// not know (inserted later) or has tombstoned (removed later).
			if e.Data < 0 || int(e.Data) >= len(s.core.refs) {
				continue
			}
			ref := s.core.refs[e.Data]
			if ref.Local < 0 {
				continue
			}
			target := s.core.images[ref.Image].Regions[ref.Local]
			// Centroid signatures use euclidean distance (the paper's
			// metric); the box probe over-approximates the euclidean ball,
			// so filter. Bounding-box signatures match by box overlap,
			// which the probe tests exactly.
			if exact && !s.core.opts.UseBBox && euclid(qr.Signature, target.Signature) > p.Epsilon {
				continue
			}
			hits[n] = probeHit{image: ref.Image, payload: e.Data, pair: match.Pair{Q: qi, T: ref.Local}}
			n++
		}
		perRegion[qi] = hits[:n]
		if tc != nil {
			tc.probeOut[qi] = n
		}
		return nil
	})
	return perRegion, err
}

// prefilterStage is the coarse-to-fine rejection tier between probe and
// refine: each hit is screened by a popcount Hamming test over the
// precomputed binary signatures (with a bound no true epsilon-match can
// exceed — see hammingBound), then by the WBIIS variance acceptance test
// paired with the conservative σ guard (sigmaBound), and only survivors
// pay the exact euclidean check the probe stage deferred. Both coarse
// tests are conservative at their default settings, so results match the
// unfiltered pipeline exactly; PrefilterHamming can trade that guarantee
// for a harsher cut. Hit lists are filtered in place, fanned and
// slot-indexed like every other stage.
func (s *Snapshot) prefilterStage(ctx context.Context, qRegions []region.Region, perRegion [][]probeHit, p QueryParams, workers int, tc *traceCollector) error {
	dim := s.core.opts.Region.Dim()
	hBound := p.PrefilterHamming
	if hBound <= 0 {
		hBound = hammingBound(dim, p.Epsilon)
	}
	beta := p.PrefilterBeta
	if beta <= 0 {
		beta = wbiis.DefaultOptions().Beta
	}
	sBound := sigmaBound(dim, p.Epsilon)
	qsigs := make([]binSig, len(qRegions))
	if tc != nil {
		tc.prefiltered = true
	}
	return parallel.ForErr(len(perRegion), workers, func(qi int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		qr := qRegions[qi]
		qsigs[qi] = makeBinSig(qr.Signature)
		qb := &qsigs[qi]
		hits := perRegion[qi]
		n := 0
		for _, h := range hits {
			tb := &s.core.bsigs[h.payload]
			if qb.hamming(tb) > hBound {
				continue
			}
			if !wbiis.Acceptance(qb.Sigma, tb.Sigma, beta) && math.Abs(qb.Sigma-tb.Sigma) > sBound {
				continue
			}
			target := s.core.images[h.image].Regions[h.pair.T]
			if euclid(qr.Signature, target.Signature) > p.Epsilon {
				continue
			}
			hits[n] = h
			n++
		}
		perRegion[qi] = hits[:n]
		if tc != nil {
			tc.prefilterOut[qi] = n
		}
		return nil
	})
}

// refineStage is the refined matching phase of Section 5.5: candidate
// pairs are re-verified against the finer signatures when both sides
// carry one, filtering each region's hit list in place. Like the probe
// and score stages, every task checks the deadline so an expired
// context stops the refinement fan-out.
func (s *Snapshot) refineStage(ctx context.Context, qRegions []region.Region, perRegion [][]probeHit, p QueryParams, workers int, tc *traceCollector) error {
	if !p.Refine {
		return nil
	}
	return parallel.ForErr(len(perRegion), workers, func(qi int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if tc != nil {
			// Record the pass-through count up front so regions without a
			// fine signature (refined nowhere below) still fill their slot.
			tc.refineOut[qi] = len(perRegion[qi])
		}
		qr := qRegions[qi]
		if qr.Fine == nil {
			return nil
		}
		bound := p.RefineEpsilon
		if bound == 0 {
			// Scale epsilon by sqrt(fineDim/coarseDim), keeping the
			// per-dimension tolerance of the coarse check.
			bound = p.Epsilon * math.Sqrt(float64(len(qr.Fine))/float64(len(qr.Signature)))
		}
		hits := perRegion[qi]
		n := 0
		for _, h := range hits {
			target := s.core.images[h.image].Regions[h.pair.T]
			if target.Fine != nil && euclid(qr.Fine, target.Fine) > bound {
				continue
			}
			hits[n] = h
			n++
		}
		perRegion[qi] = hits[:n]
		if tc != nil {
			tc.refineOut[qi] = n
		}
		return nil
	})
}

// aggregateStage merges the per-region hit lists in query-region order
// into the per-image pair sets the scorer consumes, counting the total
// regions retrieved. The pair sets are carved out of one flat buffer
// sized by a counting pass — a single allocation however many candidate
// images the probes surfaced.
func aggregateStage(perRegion [][]probeHit) (map[int][]match.Pair, int) {
	counts := make(map[int]int)
	retrieved := 0
	for _, hits := range perRegion {
		for _, h := range hits {
			counts[h.image]++
		}
		retrieved += len(hits)
	}
	buf := make([]match.Pair, retrieved)
	next := 0
	pairsByImage := make(map[int][]match.Pair, len(counts))
	fill := make(map[int]int, len(counts))
	for _, hits := range perRegion {
		for _, h := range hits {
			s, ok := pairsByImage[h.image]
			if !ok {
				c := counts[h.image]
				s = buf[next : next+c]
				next += c
				pairsByImage[h.image] = s
			}
			s[fill[h.image]] = h.pair
			fill[h.image]++
		}
	}
	return pairsByImage, retrieved
}

// scoreStage scores every candidate image, fanning the (independent,
// read-only) match computations across the worker pool. Candidates are
// scored into fixed slots ordered by image index, so the result set is
// schedule-independent. It returns matches with similarity >= p.Tau
// sorted by decreasing similarity, capped at p.Limit.
func (s *Snapshot) scoreStage(ctx context.Context, qRegions []region.Region, qArea int, pairsByImage map[int][]match.Pair, p QueryParams, workers int) ([]Match, error) {
	candidates := make([]int, len(pairsByImage))
	n := 0
	for imgIdx := range pairsByImage {
		candidates[n] = imgIdx
		n++
	}
	sort.Ints(candidates)
	scoreOpts := match.Options{Algorithm: p.Matcher, Denominator: p.Denominator}
	scored := make([]match.Result, len(candidates))
	err := parallel.ForErr(len(candidates), workers, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		imgIdx := candidates[i]
		rec := s.core.images[imgIdx]
		res, err := match.Score(qRegions, rec.Regions, pairsByImage[imgIdx], qArea, rec.W*rec.H, scoreOpts)
		if err != nil {
			return err
		}
		scored[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	matches := make([]Match, len(candidates))
	kept := 0
	for i, imgIdx := range candidates {
		if scored[i].Similarity < p.Tau {
			continue
		}
		rec := s.core.images[imgIdx]
		matches[kept] = Match{
			ID:              rec.ID,
			Similarity:      scored[i].Similarity,
			Pairs:           scored[i].Pairs,
			MatchingRegions: len(pairsByImage[imgIdx]),
		}
		kept++
	}
	matches = matches[:kept]
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Similarity != matches[j].Similarity {
			return matches[i].Similarity > matches[j].Similarity
		}
		return matches[i].ID < matches[j].ID
	})
	if p.Limit > 0 && len(matches) > p.Limit {
		matches = matches[:p.Limit]
	}
	return matches, nil
}

// Query runs the staged query pipeline against the snapshot: the same
// semantics as DB.Query, but over this fixed version, so a caller can
// issue several queries against one consistent state while writers
// commit concurrently.
func (s *Snapshot) Query(im *imgio.Image, p QueryParams) ([]Match, QueryStats, error) {
	return s.QueryContext(context.Background(), im, p)
}

// QueryContext is Query with a deadline: the context is checked between
// pipeline stages and inside every per-region probe and per-candidate
// score task, so a request whose deadline expires stops burning worker
// slots mid-pipeline and returns the context's error. The snapshot is
// unaffected — cancellation never tears published state.
func (s *Snapshot) QueryContext(ctx context.Context, im *imgio.Image, p QueryParams) ([]Match, QueryStats, error) {
	start := statsClock()
	if p.Epsilon < 0 {
		return nil, QueryStats{}, fmt.Errorf("walrus: negative epsilon %v", p.Epsilon)
	}
	if err := ctx.Err(); err != nil {
		return nil, QueryStats{}, err
	}
	qspan := s.beginQuerySpan(ctx)
	es := qspan.Child("query.extract")
	qRegions, err := s.extractStage(im)
	if err != nil {
		failSpans(es, qspan)
		return nil, QueryStats{}, err
	}
	es.End()
	stats := QueryStats{QueryRegions: len(qRegions), ExtractTime: statsSince(start)}
	return s.finishQuery(ctx, qRegions, im.W*im.H, p, start, stats, qspan)
}

// beginQuerySpan opens the live "query" span: a child of the request
// span when the context carries one (the serving layer's root), else a
// fresh root trace on the attached registry, else nil — tracing off, and
// every downstream span call is a nil no-op.
func (s *Snapshot) beginQuerySpan(ctx context.Context) *obs.Span {
	if parent := obs.SpanFromContext(ctx); parent != nil {
		return parent.Child("query")
	}
	if m := s.om.Load(); m != nil {
		return m.reg.StartSpan("query")
	}
	return nil
}

// failSpans ends the still-open spans of a failed query, innermost
// first, marking each with an error attribute so partial traces are
// distinguishable from completed ones.
func failSpans(spans ...*obs.Span) {
	for _, sp := range spans {
		sp.SetAttr("error", 1)
		sp.End()
	}
}

// QueryByID runs the staged pipeline using the stored regions of an
// already-indexed image as the query, skipping extraction entirely: the
// network front-end's "more like this" path. The id is resolved against
// this snapshot's version; ErrUnknownID reports an absent (or removed)
// id.
func (s *Snapshot) QueryByID(ctx context.Context, id string, p QueryParams) ([]Match, QueryStats, error) {
	start := statsClock()
	if p.Epsilon < 0 {
		return nil, QueryStats{}, fmt.Errorf("walrus: negative epsilon %v", p.Epsilon)
	}
	if err := ctx.Err(); err != nil {
		return nil, QueryStats{}, err
	}
	idx, ok := s.core.byID[id]
	if !ok {
		return nil, QueryStats{}, fmt.Errorf("walrus: query image %q: %w", id, ErrUnknownID)
	}
	qspan := s.beginQuerySpan(ctx)
	es := qspan.Child("query.extract")
	rec := s.core.images[idx]
	es.End()
	stats := QueryStats{QueryRegions: len(rec.Regions), ExtractTime: statsSince(start)}
	return s.finishQuery(ctx, rec.Regions, rec.W*rec.H, p, start, stats, qspan)
}

// finishQuery is the shared tail of the pipeline, entered with the query
// regions already in hand (extracted from an image, or read back from
// the catalog for QueryByID). It assembles the stage plan from the
// parameters and the snapshot's configuration and executes it through
// the shared runner, which hangs one child span per stage off the live
// "query" span qspan (nil when tracing is off); an EXPLAIN context
// additionally routes every stage's counts through a traceCollector into
// the context's QueryTrace.
func (s *Snapshot) finishQuery(ctx context.Context, qRegions []region.Region, qArea int, p QueryParams, start time.Time, stats QueryStats, qspan *obs.Span) ([]Match, QueryStats, error) {
	probeStart := statsClock()
	qt := queryTraceFrom(ctx)
	ex := &stageExec{snap: s, qRegions: qRegions, qArea: qArea, p: p, workers: parallel.Workers(p.Parallelism)}
	if qt != nil {
		ex.tc = newTraceCollector(len(qRegions), s.core.version)
	}

	if err := runStages(ctx, planPhaseA(p, s.core.opts), ex, qspan, "query.", -1); err != nil {
		failSpans(qspan)
		return nil, stats, err
	}
	stats.RegionsRetrieved = ex.retrieved
	stats.CandidateImages = len(ex.pairsByImage)
	stats.ProbeTime = statsSince(probeStart)
	scoreStart := statsClock()

	if err := runStages(ctx, planScore(), ex, qspan, "query.", -1); err != nil {
		failSpans(qspan)
		return nil, stats, err
	}
	stats.ScoreTime = statsSince(scoreStart)
	stats.Elapsed = statsSince(start)
	if qt != nil {
		qt.fill(qspan, false, p, len(qRegions), []*traceCollector{ex.tc}, stats, len(ex.matches), len(ex.matches), 0)
	}
	s.observeQuery(qspan, stats)
	return ex.matches, stats, nil
}

// QueryScene is DB.QueryScene over this snapshot.
func (s *Snapshot) QueryScene(im *imgio.Image, x, y, w, h int, p QueryParams) ([]Match, QueryStats, error) {
	return s.QuerySceneContext(context.Background(), im, x, y, w, h, p)
}

// QuerySceneContext is QueryScene with a deadline; see QueryContext.
func (s *Snapshot) QuerySceneContext(ctx context.Context, im *imgio.Image, x, y, w, h int, p QueryParams) ([]Match, QueryStats, error) {
	minW := s.core.opts.Region.MinWindow
	if w < minW || h < minW {
		return nil, QueryStats{}, fmt.Errorf("walrus: scene %dx%d smaller than the minimum window %d", w, h, minW)
	}
	crop, err := imgio.Crop(im, x, y, w, h)
	if err != nil {
		return nil, QueryStats{}, fmt.Errorf("walrus: cropping scene: %w", err)
	}
	// Score by coverage of the scene alone: a target that contains the
	// whole scene should score near 1 however large the target is.
	p.Denominator = match.QueryOnly
	return s.QueryContext(ctx, crop, p)
}

// observeQuery finishes one successful query's observability: the live
// query span gains its funnel attributes and ends (recording into the
// span ring), and the same quantities Query returns in QueryStats are
// re-emitted as counters and phase histograms. The span may outlive the
// registry handle — a request-scoped span keeps recording into the
// serving layer's registry even if SetMetrics detaches the database's.
func (s *Snapshot) observeQuery(qspan *obs.Span, stats QueryStats) {
	qspan.SetAttr("query_regions", int64(stats.QueryRegions))
	qspan.SetAttr("regions_retrieved", int64(stats.RegionsRetrieved))
	qspan.SetAttr("candidates", int64(stats.CandidateImages))
	qspan.End()
	m := s.om.Load()
	if m == nil {
		return
	}
	m.queries.Inc()
	m.queryRegions.Add(uint64(stats.QueryRegions))
	m.regionsRetrieved.Add(uint64(stats.RegionsRetrieved))
	m.candidates.Add(uint64(stats.CandidateImages))
	m.querySeconds.Observe(stats.Elapsed.Seconds())
	m.extractSeconds.Observe(stats.ExtractTime.Seconds())
	m.probeSeconds.Observe(stats.ProbeTime.Seconds())
	m.scoreSeconds.Observe(stats.ScoreTime.Seconds())
}
