//walrus:lint-hot staged query pipeline: probe/refine/score fan-outs
package walrus

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"walrus/internal/imgio"
	"walrus/internal/match"
	"walrus/internal/obs"
	"walrus/internal/parallel"
	"walrus/internal/region"
	"walrus/internal/rstar"
)

// The query pipeline. A query runs as five stages over one immutable
// Snapshot — extract, probe, refine, aggregate, score — composed by
// Snapshot.Query. Each stage takes only the snapshot and the previous
// stage's output, so the whole pipeline is lock-free: the catalog slices
// and the pinned index view cannot change underneath it, and the
// per-stage fan-out over the worker pool needs no synchronization beyond
// slot-indexed writes.

// signatureRect builds the index key for a region: its centroid point,
// or its signature bounding box when useBBox is set.
func signatureRect(useBBox bool, r region.Region) rstar.Rect {
	if useBBox {
		rect, err := rstar.NewRect(r.Min, r.Max)
		if err == nil {
			return rect
		}
	}
	return rstar.Point(r.Signature)
}

// probeHit is one index hit: a matching (query region, target region)
// pair and the image the target region belongs to.
type probeHit struct {
	image int
	pair  match.Pair
}

// extractStage decomposes the query image into regions using the
// snapshot's extractor, so extraction and index probes are bound to the
// same version of the configuration.
func (s *Snapshot) extractStage(im *imgio.Image) ([]region.Region, error) {
	qRegions, err := s.core.ext.Extract(im)
	if err != nil {
		return nil, fmt.Errorf("walrus: extracting query regions: %w", err)
	}
	return qRegions, nil
}

// probeStage probes the index with every query region's epsilon
// envelope. The probes only read the pinned view and the snapshot
// catalog, so they fan across the worker pool; each writes its hits into
// its own slot and the slots are merged in query-region order by the
// aggregate stage, which keeps pairsByImage — and therefore scores,
// stats and rankings — identical to the serial query.
// A nil tc (the common case) adds nothing to the probe path; an EXPLAIN
// query passes a collector and each task records its region's slot.
func (s *Snapshot) probeStage(ctx context.Context, qRegions []region.Region, p QueryParams, workers int, tc *traceCollector) ([][]probeHit, error) {
	perRegion := make([][]probeHit, len(qRegions))
	err := parallel.ForErr(len(qRegions), workers, func(qi int) error {
		// The deadline check rides each parallel task: a query whose
		// context expires mid-probe stops fanning out more index work.
		if err := ctx.Err(); err != nil {
			return err
		}
		qr := qRegions[qi]
		probe := signatureRect(s.core.opts.UseBBox, qr).Expand(p.Epsilon)
		var entries []rstar.Entry
		var err error
		if tc == nil {
			entries, err = s.view.SearchAll(probe)
		} else {
			var visits int
			entries, visits, err = s.view.SearchAllCounting(probe)
			tc.indexHits[qi] = len(entries)
			tc.nodeVisits[qi] = visits
		}
		if err != nil {
			return err
		}
		hits := make([]probeHit, 0, len(entries))
		for _, e := range entries {
			// Validate the hit against the snapshot catalog. The pinned
			// R*-tree view never yields out-of-version entries, but the
			// GiST view probes the live tree: skip refs the snapshot does
			// not know (inserted later) or has tombstoned (removed later).
			if e.Data < 0 || int(e.Data) >= len(s.core.refs) {
				continue
			}
			ref := s.core.refs[e.Data]
			if ref.Local < 0 {
				continue
			}
			target := s.core.images[ref.Image].Regions[ref.Local]
			// Centroid signatures use euclidean distance (the paper's
			// metric); the box probe over-approximates the euclidean ball,
			// so filter. Bounding-box signatures match by box overlap,
			// which the probe tests exactly.
			if !s.core.opts.UseBBox && euclid(qr.Signature, target.Signature) > p.Epsilon {
				continue
			}
			hits = append(hits, probeHit{image: ref.Image, pair: match.Pair{Q: qi, T: ref.Local}})
		}
		perRegion[qi] = hits
		if tc != nil {
			tc.probeOut[qi] = len(hits)
		}
		return nil
	})
	return perRegion, err
}

// refineStage is the refined matching phase of Section 5.5: candidate
// pairs are re-verified against the finer signatures when both sides
// carry one, filtering each region's hit list in place. Like the probe
// and score stages, every task checks the deadline so an expired
// context stops the refinement fan-out.
func (s *Snapshot) refineStage(ctx context.Context, qRegions []region.Region, perRegion [][]probeHit, p QueryParams, workers int, tc *traceCollector) error {
	if !p.Refine {
		return nil
	}
	return parallel.ForErr(len(perRegion), workers, func(qi int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if tc != nil {
			// Record the pass-through count up front so regions without a
			// fine signature (refined nowhere below) still fill their slot.
			tc.refineOut[qi] = len(perRegion[qi])
		}
		qr := qRegions[qi]
		if qr.Fine == nil {
			return nil
		}
		bound := p.RefineEpsilon
		if bound == 0 {
			// Scale epsilon by sqrt(fineDim/coarseDim), keeping the
			// per-dimension tolerance of the coarse check.
			bound = p.Epsilon * math.Sqrt(float64(len(qr.Fine))/float64(len(qr.Signature)))
		}
		kept := perRegion[qi][:0]
		for _, h := range perRegion[qi] {
			target := s.core.images[h.image].Regions[h.pair.T]
			if target.Fine != nil && euclid(qr.Fine, target.Fine) > bound {
				continue
			}
			kept = append(kept, h)
		}
		perRegion[qi] = kept
		if tc != nil {
			tc.refineOut[qi] = len(kept)
		}
		return nil
	})
}

// aggregateStage merges the per-region hit lists in query-region order
// into the per-image pair sets the scorer consumes, counting the total
// regions retrieved.
func aggregateStage(perRegion [][]probeHit) (map[int][]match.Pair, int) {
	pairsByImage := make(map[int][]match.Pair)
	retrieved := 0
	for _, hits := range perRegion {
		for _, h := range hits {
			pairsByImage[h.image] = append(pairsByImage[h.image], h.pair)
		}
		retrieved += len(hits)
	}
	return pairsByImage, retrieved
}

// scoreStage scores every candidate image, fanning the (independent,
// read-only) match computations across the worker pool. Candidates are
// scored into fixed slots ordered by image index, so the result set is
// schedule-independent. It returns matches with similarity >= p.Tau
// sorted by decreasing similarity, capped at p.Limit.
func (s *Snapshot) scoreStage(ctx context.Context, qRegions []region.Region, qArea int, pairsByImage map[int][]match.Pair, p QueryParams, workers int) ([]Match, error) {
	candidates := make([]int, 0, len(pairsByImage))
	for imgIdx := range pairsByImage {
		candidates = append(candidates, imgIdx)
	}
	sort.Ints(candidates)
	scoreOpts := match.Options{Algorithm: p.Matcher, Denominator: p.Denominator}
	scored := make([]match.Result, len(candidates))
	err := parallel.ForErr(len(candidates), workers, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		imgIdx := candidates[i]
		rec := s.core.images[imgIdx]
		res, err := match.Score(qRegions, rec.Regions, pairsByImage[imgIdx], qArea, rec.W*rec.H, scoreOpts)
		if err != nil {
			return err
		}
		scored[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	matches := make([]Match, 0, len(candidates))
	for i, imgIdx := range candidates {
		if scored[i].Similarity < p.Tau {
			continue
		}
		rec := s.core.images[imgIdx]
		matches = append(matches, Match{
			ID:              rec.ID,
			Similarity:      scored[i].Similarity,
			Pairs:           scored[i].Pairs,
			MatchingRegions: len(pairsByImage[imgIdx]),
		})
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Similarity != matches[j].Similarity {
			return matches[i].Similarity > matches[j].Similarity
		}
		return matches[i].ID < matches[j].ID
	})
	if p.Limit > 0 && len(matches) > p.Limit {
		matches = matches[:p.Limit]
	}
	return matches, nil
}

// Query runs the staged query pipeline against the snapshot: the same
// semantics as DB.Query, but over this fixed version, so a caller can
// issue several queries against one consistent state while writers
// commit concurrently.
func (s *Snapshot) Query(im *imgio.Image, p QueryParams) ([]Match, QueryStats, error) {
	return s.QueryContext(context.Background(), im, p)
}

// QueryContext is Query with a deadline: the context is checked between
// pipeline stages and inside every per-region probe and per-candidate
// score task, so a request whose deadline expires stops burning worker
// slots mid-pipeline and returns the context's error. The snapshot is
// unaffected — cancellation never tears published state.
func (s *Snapshot) QueryContext(ctx context.Context, im *imgio.Image, p QueryParams) ([]Match, QueryStats, error) {
	start := statsClock()
	if p.Epsilon < 0 {
		return nil, QueryStats{}, fmt.Errorf("walrus: negative epsilon %v", p.Epsilon)
	}
	if err := ctx.Err(); err != nil {
		return nil, QueryStats{}, err
	}
	qspan := s.beginQuerySpan(ctx)
	es := qspan.Child("query.extract")
	qRegions, err := s.extractStage(im)
	if err != nil {
		failSpans(es, qspan)
		return nil, QueryStats{}, err
	}
	es.End()
	stats := QueryStats{QueryRegions: len(qRegions), ExtractTime: statsSince(start)}
	return s.finishQuery(ctx, qRegions, im.W*im.H, p, start, stats, qspan)
}

// beginQuerySpan opens the live "query" span: a child of the request
// span when the context carries one (the serving layer's root), else a
// fresh root trace on the attached registry, else nil — tracing off, and
// every downstream span call is a nil no-op.
func (s *Snapshot) beginQuerySpan(ctx context.Context) *obs.Span {
	if parent := obs.SpanFromContext(ctx); parent != nil {
		return parent.Child("query")
	}
	if m := s.om.Load(); m != nil {
		return m.reg.StartSpan("query")
	}
	return nil
}

// failSpans ends the still-open spans of a failed query, innermost
// first, marking each with an error attribute so partial traces are
// distinguishable from completed ones.
func failSpans(spans ...*obs.Span) {
	for _, sp := range spans {
		sp.SetAttr("error", 1)
		sp.End()
	}
}

// QueryByID runs the staged pipeline using the stored regions of an
// already-indexed image as the query, skipping extraction entirely: the
// network front-end's "more like this" path. The id is resolved against
// this snapshot's version; ErrUnknownID reports an absent (or removed)
// id.
func (s *Snapshot) QueryByID(ctx context.Context, id string, p QueryParams) ([]Match, QueryStats, error) {
	start := statsClock()
	if p.Epsilon < 0 {
		return nil, QueryStats{}, fmt.Errorf("walrus: negative epsilon %v", p.Epsilon)
	}
	if err := ctx.Err(); err != nil {
		return nil, QueryStats{}, err
	}
	idx, ok := s.core.byID[id]
	if !ok {
		return nil, QueryStats{}, fmt.Errorf("walrus: query image %q: %w", id, ErrUnknownID)
	}
	qspan := s.beginQuerySpan(ctx)
	es := qspan.Child("query.extract")
	rec := s.core.images[idx]
	es.End()
	stats := QueryStats{QueryRegions: len(rec.Regions), ExtractTime: statsSince(start)}
	return s.finishQuery(ctx, rec.Regions, rec.W*rec.H, p, start, stats, qspan)
}

// finishQuery is the shared probe→refine→aggregate→score tail of the
// pipeline, entered with the query regions already in hand (extracted
// from an image, or read back from the catalog for QueryByID). The live
// "query" span qspan (nil when tracing is off) gains probe and score
// children; an EXPLAIN context additionally routes every stage's counts
// through a traceCollector into the context's QueryTrace.
func (s *Snapshot) finishQuery(ctx context.Context, qRegions []region.Region, qArea int, p QueryParams, start time.Time, stats QueryStats, qspan *obs.Span) ([]Match, QueryStats, error) {
	probeStart := statsClock()
	workers := parallel.Workers(p.Parallelism)
	qt := queryTraceFrom(ctx)
	var tc *traceCollector
	if qt != nil {
		tc = newTraceCollector(len(qRegions), s.core.version)
	}

	ps := qspan.Child("query.probe")
	perRegion, err := s.probeStage(ctx, qRegions, p, workers, tc)
	if err != nil {
		failSpans(ps, qspan)
		return nil, stats, err
	}
	if tc != nil {
		tc.probeNS = statsSince(probeStart).Nanoseconds()
	}
	if err := s.refineStage(ctx, qRegions, perRegion, p, workers, tc); err != nil {
		failSpans(ps, qspan)
		return nil, stats, err
	}
	if tc != nil {
		tc.refineNS = statsSince(probeStart).Nanoseconds() - tc.probeNS
	}
	pairsByImage, retrieved := aggregateStage(perRegion)
	if tc != nil {
		tc.aggregateNS = statsSince(probeStart).Nanoseconds() - tc.probeNS - tc.refineNS
		tc.candidates = len(pairsByImage)
	}
	stats.RegionsRetrieved = retrieved
	stats.CandidateImages = len(pairsByImage)
	stats.ProbeTime = statsSince(probeStart)
	ps.End()
	scoreStart := statsClock()

	sspan := qspan.Child("query.score")
	matches, err := s.scoreStage(ctx, qRegions, qArea, pairsByImage, p, workers)
	if err != nil {
		failSpans(sspan, qspan)
		return nil, stats, err
	}
	sspan.End()
	stats.ScoreTime = statsSince(scoreStart)
	stats.Elapsed = statsSince(start)
	if tc != nil {
		tc.scoreNS = stats.ScoreTime.Nanoseconds()
		tc.matches = len(matches)
	}
	if qt != nil {
		qt.fill(qspan, false, p, len(qRegions), []*traceCollector{tc}, stats, len(matches), len(matches), 0)
	}
	s.observeQuery(qspan, stats)
	return matches, stats, nil
}

// QueryScene is DB.QueryScene over this snapshot.
func (s *Snapshot) QueryScene(im *imgio.Image, x, y, w, h int, p QueryParams) ([]Match, QueryStats, error) {
	return s.QuerySceneContext(context.Background(), im, x, y, w, h, p)
}

// QuerySceneContext is QueryScene with a deadline; see QueryContext.
func (s *Snapshot) QuerySceneContext(ctx context.Context, im *imgio.Image, x, y, w, h int, p QueryParams) ([]Match, QueryStats, error) {
	minW := s.core.opts.Region.MinWindow
	if w < minW || h < minW {
		return nil, QueryStats{}, fmt.Errorf("walrus: scene %dx%d smaller than the minimum window %d", w, h, minW)
	}
	crop, err := imgio.Crop(im, x, y, w, h)
	if err != nil {
		return nil, QueryStats{}, fmt.Errorf("walrus: cropping scene: %w", err)
	}
	// Score by coverage of the scene alone: a target that contains the
	// whole scene should score near 1 however large the target is.
	p.Denominator = match.QueryOnly
	return s.QueryContext(ctx, crop, p)
}

// observeQuery finishes one successful query's observability: the live
// query span gains its funnel attributes and ends (recording into the
// span ring), and the same quantities Query returns in QueryStats are
// re-emitted as counters and phase histograms. The span may outlive the
// registry handle — a request-scoped span keeps recording into the
// serving layer's registry even if SetMetrics detaches the database's.
func (s *Snapshot) observeQuery(qspan *obs.Span, stats QueryStats) {
	qspan.SetAttr("query_regions", int64(stats.QueryRegions))
	qspan.SetAttr("regions_retrieved", int64(stats.RegionsRetrieved))
	qspan.SetAttr("candidates", int64(stats.CandidateImages))
	qspan.End()
	m := s.om.Load()
	if m == nil {
		return
	}
	m.queries.Inc()
	m.queryRegions.Add(uint64(stats.QueryRegions))
	m.regionsRetrieved.Add(uint64(stats.RegionsRetrieved))
	m.candidates.Add(uint64(stats.CandidateImages))
	m.querySeconds.Observe(stats.Elapsed.Seconds())
	m.extractSeconds.Observe(stats.ExtractTime.Seconds())
	m.probeSeconds.Observe(stats.ProbeTime.Seconds())
	m.scoreSeconds.Observe(stats.ScoreTime.Seconds())
}
