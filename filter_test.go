package walrus

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"walrus/internal/imgio"
	"walrus/internal/obs"
)

// queryBackend is the query surface shared by DB and Sharded, letting
// the determinism matrix run the same assertions over both.
type queryBackend interface {
	Query(im *imgio.Image, p QueryParams) ([]Match, QueryStats, error)
}

// filterBackend builds a corpus-loaded backend with the given shard
// count (1 means a plain DB, so both code paths are exercised).
func filterBackend(t *testing.T, items []BatchItem, shards int) queryBackend {
	t.Helper()
	if shards == 1 {
		db, err := New(testOptions())
		if err != nil {
			t.Fatal(err)
		}
		if err := db.AddBatch(items, 0); err != nil {
			t.Fatal(err)
		}
		return db
	}
	opts := testOptions()
	opts.Shards = shards
	s, err := NewSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddBatch(items, 0); err != nil {
		t.Fatal(err)
	}
	return s
}

// assertSameAnswer fails unless two query executions agree on the full
// observable result: ranking, similarities, region counts, and the
// funnel-visible stats.
func assertSameAnswer(t *testing.T, label string, ma []Match, sa QueryStats, mb []Match, sb QueryStats) {
	t.Helper()
	if sa.RegionsRetrieved != sb.RegionsRetrieved || sa.CandidateImages != sb.CandidateImages {
		t.Fatalf("%s: stats differ: retrieved %d/%d candidates %d/%d",
			label, sa.RegionsRetrieved, sb.RegionsRetrieved, sa.CandidateImages, sb.CandidateImages)
	}
	if len(ma) != len(mb) {
		t.Fatalf("%s: %d matches vs %d", label, len(ma), len(mb))
	}
	for i := range ma {
		if ma[i].ID != mb[i].ID || ma[i].Similarity != mb[i].Similarity ||
			ma[i].MatchingRegions != mb[i].MatchingRegions {
			t.Fatalf("%s: rank %d differs: %+v vs %+v", label, i, ma[i], mb[i])
		}
	}
}

// TestPrefilterDeterminism pins the prefilter tier's correctness claim
// across the full execution matrix — Parallelism {1,8} x shards {1,4}:
// with bounds wide enough to accept everything the answer is identical
// to the no-prefilter oracle by construction, and at the default derived
// bounds the filter is conservative (it only rejects hits the exact
// euclidean check would reject anyway), so the answer is still
// identical — only the per-candidate work changes.
func TestPrefilterDeterminism(t *testing.T) {
	items := corpus50(t)
	queries := []*imgio.Image{
		items[0].Image,
		items[11].Image,
		scene(green, red, 24, 24, 40),
		scene(gray, blue, 40, 40, 44),
	}
	for _, shards := range []int{1, 4} {
		backend := filterBackend(t, items, shards)
		for _, par := range []int{1, 8} {
			for _, refine := range []bool{false, true} {
				base := DefaultQueryParams()
				base.Parallelism = par
				base.Refine = refine
				variants := map[string]QueryParams{
					"accept-all": func() QueryParams {
						p := base
						p.Prefilter = true
						p.PrefilterHamming = binSigBits // no Hamming distance exceeds the bit width
						p.PrefilterBeta = 1e9
						return p
					}(),
					"default-bounds": func() QueryParams {
						p := base
						p.Prefilter = true
						return p
					}(),
				}
				for qi, q := range queries {
					om, os, err := backend.Query(q, base)
					if err != nil {
						t.Fatalf("oracle query: %v", err)
					}
					for name, p := range variants {
						label := fmt.Sprintf("shards=%d par=%d refine=%v %s q%d", shards, par, refine, name, qi)
						pm, pst, err := backend.Query(q, p)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						assertSameAnswer(t, label, om, os, pm, pst)
					}
				}
			}
		}
	}
}

// TestPrefilterReducesWork checks the tier actually filters: on the
// synthetic corpus the default bounds must reject some probe hits
// before scoring, visible as a smaller retrieved-region count in the
// EXPLAIN funnel's prefilter row.
func TestPrefilterReducesWork(t *testing.T) {
	items := corpus50(t)
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddBatch(items, 0); err != nil {
		t.Fatal(err)
	}
	p := DefaultQueryParams()
	p.Prefilter = true
	ctx, qt := WithQueryTrace(context.Background())
	s, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	if _, _, err := s.QueryContext(ctx, items[0].Image, p); err != nil {
		t.Fatal(err)
	}
	var in, out int
	for _, st := range qt.Stages {
		if st.Stage == "prefilter" {
			in, out = st.In, st.Out
		}
	}
	if in == 0 {
		t.Fatal("explain funnel has no prefilter row")
	}
	if out >= in {
		t.Fatalf("prefilter rejected nothing: in=%d out=%d", in, out)
	}
}

// TestQueryCache covers the result cache protocol on a single DB: a
// repeat query hits, the served result is a private copy, a committed
// write invalidates by construction, NoCache bypasses without
// populating, and LRU eviction shows up in the metrics.
func TestQueryCache(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	db.SetMetrics(reg)
	db.SetCacheSize(2)
	if err := db.Add("target", scene(green, red, 32, 32, 48)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("other", scene(gray, blue, 16, 16, 48)); err != nil {
		t.Fatal(err)
	}
	q := scene(green, red, 32, 32, 48)
	p := DefaultQueryParams()

	m1, s1, err := db.Query(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Cache != "miss" {
		t.Fatalf("first query Cache = %q, want miss", s1.Cache)
	}
	m2, s2, err := db.Query(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Cache != "hit" {
		t.Fatalf("repeat query Cache = %q, want hit", s2.Cache)
	}
	assertSameAnswer(t, "hit vs miss", m1, s1, m2, s2)

	// The cached entry is private: clobbering a served slice must not
	// leak into later hits.
	m2[0].ID = "clobbered"
	m3, s3, err := db.Query(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Cache != "hit" || m3[0].ID != m1[0].ID {
		t.Fatalf("served result not private: Cache=%q best=%q", s3.Cache, m3[0].ID)
	}

	// NoCache bypasses in both directions: it neither reads the cached
	// entry nor stores one under a fresh key.
	pn := p
	pn.Tau = 0.01
	pn.NoCache = true
	if _, sn, err := db.Query(q, pn); err != nil || sn.Cache != "bypass" {
		t.Fatalf("NoCache query: Cache=%q err=%v, want bypass", sn.Cache, err)
	}
	pn.NoCache = false
	if _, sn, err := db.Query(q, pn); err != nil || sn.Cache != "miss" {
		t.Fatalf("query after bypass: Cache=%q err=%v, want miss (bypass must not populate)", sn.Cache, err)
	}

	// A committed write publishes a new version; the old entries can
	// never be served again.
	if err := db.Add("target2", scene(green, red, 32, 32, 48)); err != nil {
		t.Fatal(err)
	}
	m4, s4, err := db.Query(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if s4.Cache != "miss" {
		t.Fatalf("query after write Cache = %q, want miss", s4.Cache)
	}
	if len(m4) != len(m1)+1 {
		t.Fatalf("query after write returned %d matches, want %d", len(m4), len(m1)+1)
	}

	// Capacity is 2: a third distinct key evicts the cold end.
	pe := p
	pe.Tau = 0.02
	if _, _, err := db.Query(q, pe); err != nil {
		t.Fatal(err)
	}
	pe.Tau = 0.03
	if _, _, err := db.Query(q, pe); err != nil {
		t.Fatal(err)
	}
	snap := db.Metrics()
	if snap.Counters["walrus_cache_evictions_total"] == 0 {
		t.Fatalf("no evictions recorded: %v", snap.Counters)
	}
	if got := snap.Gauges["walrus_cache_entries"]; got != 2 {
		t.Fatalf("cache_entries = %d, want 2", got)
	}
	if snap.Counters["walrus_cache_hits_total"] < 2 {
		t.Fatalf("cache_hits_total = %d, want >= 2", snap.Counters["walrus_cache_hits_total"])
	}
}

// TestQueryCacheSharded runs the same protocol over a sharded database,
// where the key is the pinned version vector: a write to any one shard
// invalidates the fleet-level entries.
func TestQueryCacheSharded(t *testing.T) {
	opts := testOptions()
	opts.Shards = 4
	opts.CacheSize = 8
	s, err := NewSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add("target", scene(green, red, 32, 32, 48)); err != nil {
		t.Fatal(err)
	}
	q := scene(green, red, 32, 32, 48)
	p := DefaultQueryParams()
	m1, s1, err := s.Query(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Cache != "miss" {
		t.Fatalf("first query Cache = %q, want miss", s1.Cache)
	}
	m2, s2, err := s.Query(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Cache != "hit" {
		t.Fatalf("repeat query Cache = %q, want hit", s2.Cache)
	}
	assertSameAnswer(t, "sharded hit vs miss", m1, s1, m2, s2)

	// QueryByID caches under its own key family.
	if _, sb, err := s.QueryByID(context.Background(), "target", p); err != nil || sb.Cache != "miss" {
		t.Fatalf("QueryByID: Cache=%q err=%v, want miss", sb.Cache, err)
	}
	if _, sb, err := s.QueryByID(context.Background(), "target", p); err != nil || sb.Cache != "hit" {
		t.Fatalf("repeat QueryByID: Cache=%q err=%v, want hit", sb.Cache, err)
	}

	if err := s.Add("other", scene(gray, blue, 16, 16, 48)); err != nil {
		t.Fatal(err)
	}
	if _, s3, err := s.Query(q, p); err != nil || s3.Cache != "miss" {
		t.Fatalf("query after write Cache = %q err=%v, want miss", s3.Cache, err)
	}
}

// TestQueryCacheChurn races a writer committing new images against
// readers whose query never matches the churn: with version-keyed
// entries every read — hit or miss — must observe a consistent
// published version, so the expected match is present in every answer
// and no stale result outlives the write that invalidated it.
func TestQueryCacheChurn(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	db.SetCacheSize(8)
	if err := db.Add("target", scene(green, red, 32, 32, 48)); err != nil {
		t.Fatal(err)
	}
	q := scene(green, red, 32, 32, 48)
	p := DefaultQueryParams()
	// Blue churn images never clear this threshold against the green/red
	// query, so the expected answer is the same at every version.
	p.Tau = 0.9

	const writes = 12
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			if err := db.Add(fmt.Sprintf("churn-%02d", i), scene(gray, blue, 16, 16, 48)); err != nil {
				t.Errorf("churn add: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3*writes; i++ {
				matches, stats, err := db.Query(q, p)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if len(matches) != 1 || matches[0].ID != "target" {
					t.Errorf("reader saw %+v, want exactly [target]", matches)
					return
				}
				if stats.Cache != "hit" && stats.Cache != "miss" {
					t.Errorf("reader Cache = %q", stats.Cache)
					return
				}
			}
		}()
	}
	wg.Wait()
}
