package walrus

import (
	"fmt"
	"sync"
	"testing"

	"walrus/internal/obs"
	"walrus/internal/rstar"
)

// TestSnapshotPinnedVersion: a snapshot keeps observing the state it was
// acquired at while writers commit new versions, and releases its pinned
// index state afterwards.
func TestSnapshotPinnedVersion(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Version(); got != 1 {
		t.Fatalf("fresh database at version %d, want 1", got)
	}
	if err := db.Add("a", scene(green, red, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("b", scene(gray, blue, 30, 30, 40)); err != nil {
		t.Fatal(err)
	}

	s, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	if s.Version() != db.Version() {
		t.Fatalf("snapshot version %d != db version %d", s.Version(), db.Version())
	}
	wantRegions := s.NumRegions()

	// Writers commit new versions: an add, a batch (one version), a
	// remove, and a durability change.
	if err := db.Add("c", scene(green, yellow, 50, 50, 40)); err != nil {
		t.Fatal(err)
	}
	batch := []BatchItem{
		{ID: "d", Image: scene(blue, red, 20, 20, 40)},
		{ID: "e", Image: scene(gray, yellow, 60, 60, 40)},
	}
	vBefore := db.Version()
	if err := db.AddBatch(batch, 1); err != nil {
		t.Fatal(err)
	}
	if got := db.Version(); got != vBefore+1 {
		t.Fatalf("AddBatch advanced version %d -> %d, want one step", vBefore, got)
	}
	if removed, err := db.Remove("a"); err != nil || !removed {
		t.Fatalf("Remove: %v %v", removed, err)
	}
	db.SetDurability(DurabilityNone)

	// The snapshot still answers from its pinned version.
	if s.Len() != 2 {
		t.Fatalf("snapshot Len = %d, want 2", s.Len())
	}
	if ids := s.IDs(); len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("snapshot IDs = %v, want [a b]", ids)
	}
	if s.NumRegions() != wantRegions {
		t.Fatalf("snapshot NumRegions = %d, want %d", s.NumRegions(), wantRegions)
	}
	if _, ok := s.RegionsOf("a"); !ok {
		t.Fatal("snapshot lost removed image a")
	}
	if _, ok := s.RegionsOf("c"); ok {
		t.Fatal("snapshot sees image c added after acquisition")
	}
	if s.Stats().Images != 2 || s.Stats().Regions != wantRegions {
		t.Fatalf("snapshot stats %+v changed", s.Stats())
	}
	if s.Options().Durability != DurabilityGroupCommit {
		t.Fatal("snapshot observed the later durability change")
	}
	matches, _, err := s.Query(scene(green, red, 10, 10, 40), DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.ID != "a" && m.ID != "b" {
			t.Fatalf("snapshot query matched %q, not in the pinned version", m.ID)
		}
	}

	// The live database sees the newest version.
	if db.Len() != 4 {
		t.Fatalf("db Len = %d, want 4", db.Len())
	}
	if db.Options().Durability != DurabilityNone {
		t.Fatal("db lost the durability change")
	}

	// Releasing the last pin drains the retained pre-images.
	s.Release()
	s.Release() // idempotent
	if vs := db.tree.(*rstar.Tree).Versioned(); vs.Retained() != 0 {
		t.Fatalf("retained pre-images = %d after release, want 0", vs.Retained())
	}
}

// TestSnapshotConsistencyUnderWrites is the torn-read oracle: AddBatch
// publishes image pairs atomically, so every snapshot must observe both
// halves of a pair or neither — any torn catalog or index view fails the
// invariants. Runs under -race in the CI snapshot tier.
func TestSnapshotConsistencyUnderWrites(t *testing.T) {
	for _, backend := range []IndexBackend{IndexRStar, IndexGiST} {
		t.Run(backend.String(), func(t *testing.T) {
			opts := testOptions()
			opts.Index = backend
			db, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Add("seed", scene(green, red, 20, 20, 40)); err != nil {
				t.Fatal(err)
			}

			const pairs = 6
			var wg sync.WaitGroup
			errs := make(chan error, 16)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < pairs; i++ {
					batch := []BatchItem{
						{ID: fmt.Sprintf("pair-%d-a", i), Image: scene(gray, blue, (i*11)%70, (i*7)%70, 40)},
						{ID: fmt.Sprintf("pair-%d-b", i), Image: scene(green, yellow, (i*13)%70, (i*5)%70, 40)},
					}
					if err := db.AddBatch(batch, 1); err != nil {
						errs <- err
						return
					}
					if i%2 == 1 {
						if _, err := db.Remove(fmt.Sprintf("pair-%d-a", i)); err != nil {
							errs <- err
							return
						}
					}
				}
			}()

			q := scene(gray, blue, 30, 30, 40)
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					lastVersion := uint64(0)
					for i := 0; i < 40; i++ {
						s, err := db.Snapshot()
						if err != nil {
							errs <- err
							return
						}
						if v := s.Version(); v < lastVersion {
							errs <- fmt.Errorf("version went backwards: %d after %d", v, lastVersion)
							s.Release()
							return
						} else {
							lastVersion = v
						}
						ids := s.IDs()
						// One published version, not a torn mix: counts agree
						// across every accessor of the same snapshot.
						if s.Len() != len(ids) || s.Stats().Images != s.Len() {
							errs <- fmt.Errorf("snapshot v%d: Len %d, IDs %d, Stats.Images %d",
								s.Version(), s.Len(), len(ids), s.Stats().Images)
							s.Release()
							return
						}
						if s.NumRegions() != s.Stats().Regions {
							errs <- fmt.Errorf("snapshot v%d: NumRegions %d != Stats.Regions %d",
								s.Version(), s.NumRegions(), s.Stats().Regions)
							s.Release()
							return
						}
						// Pair atomicity: AddBatch is one version, so "-b"
						// present requires "-a" present unless "-a" was
						// removed by a later (whole) version — and a removal
						// version also contains every earlier pair half.
						present := make(map[string]bool, len(ids))
						for _, id := range ids {
							present[id] = true
						}
						for i := 0; i < pairs; i++ {
							a, b := fmt.Sprintf("pair-%d-a", i), fmt.Sprintf("pair-%d-b", i)
							if present[a] && !present[b] {
								errs <- fmt.Errorf("snapshot v%d: torn batch: %s present without %s", s.Version(), a, b)
								s.Release()
								return
							}
						}
						// Repeated reads of one snapshot are identical.
						if again := s.IDs(); len(again) != len(ids) {
							errs <- fmt.Errorf("snapshot v%d: IDs changed between reads: %d then %d", s.Version(), len(ids), len(again))
							s.Release()
							return
						}
						// Query results name only images the snapshot knows.
						if i%8 == 0 {
							matches, _, err := s.Query(q, DefaultQueryParams())
							if err != nil {
								errs <- err
								s.Release()
								return
							}
							for _, m := range matches {
								if !present[m.ID] {
									errs <- fmt.Errorf("snapshot v%d: query matched %q, unknown to the snapshot", s.Version(), m.ID)
									s.Release()
									return
								}
							}
						}
						s.Release()
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if tr, ok := db.tree.(*rstar.Tree); ok {
				if r := tr.Versioned().Retained(); r != 0 {
					t.Fatalf("retained pre-images = %d after all snapshots released, want 0", r)
				}
			}
		})
	}
}

// TestSnapshotAcquireReleasePublishRace stresses the acquire retry loop:
// snapshots are acquired and released as fast as possible while a writer
// publishes continuously, and each must come back internally consistent
// with its pinned epoch. The final leak check proves acquire/release
// pairs balanced (active gauge zero, nothing retained).
func TestSnapshotAcquireReleasePublishRace(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	db.SetMetrics(reg)
	im := scene(green, red, 15, 15, 40)
	if err := db.Add("seed", im); err != nil {
		t.Fatal(err)
	}
	regions, err := db.ext.Extract(im)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		// Reuse pre-extracted regions so the writer publishes at a high
		// rate instead of spending its time in wavelet transforms.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("churn-%d", i)
			db.mu.Lock()
			err := db.addExtractedLocked(id, im, regions)
			db.publishLocked()
			db.mu.Unlock()
			if err != nil {
				t.Errorf("add %s: %v", id, err)
				return
			}
			if i%3 == 2 {
				if _, err := db.Remove(fmt.Sprintf("churn-%d", i-1)); err != nil {
					t.Errorf("remove: %v", err)
					return
				}
			}
		}
	}()

	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 300; i++ {
				s, err := db.Snapshot()
				if err != nil {
					t.Errorf("Snapshot: %v", err)
					return
				}
				if s.Len() != len(s.IDs()) {
					t.Errorf("snapshot v%d: Len %d != len(IDs) %d", s.Version(), s.Len(), len(s.IDs()))
					s.Release()
					return
				}
				s.Release()
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()

	if active := reg.Snapshot().Gauges["walrus_snapshots_active"]; active != 0 {
		t.Fatalf("walrus_snapshots_active = %d after all releases, want 0", active)
	}
	if r := db.tree.(*rstar.Tree).Versioned().Retained(); r != 0 {
		t.Fatalf("retained pre-images = %d with no pins, want 0", r)
	}
	if total := reg.Snapshot().Counters["walrus_snapshots_total"]; total < 4*300 {
		t.Fatalf("walrus_snapshots_total = %d, want >= %d", total, 4*300)
	}
}

// TestSnapshotDiskBacked pins a snapshot on a disk-backed database across
// adds, removes and a checkpoint: the buffer pool and paged store must
// keep serving the pinned epoch's nodes.
func TestSnapshotDiskBacked(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.Version(); got != 1 {
		t.Fatalf("fresh disk database at version %d, want 1", got)
	}
	if err := db.Add("a", scene(green, red, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}
	s, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()

	if err := db.Add("b", scene(gray, blue, 40, 40, 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	if s.Len() != 1 {
		t.Fatalf("snapshot Len = %d, want 1", s.Len())
	}
	matches, _, err := s.Query(scene(green, red, 10, 10, 40), DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.ID == "a" {
			found = true
		}
		if m.ID == "b" {
			t.Fatal("snapshot query matched image b added after acquisition")
		}
	}
	if !found {
		t.Fatal("snapshot query lost image a")
	}
	s.Release()
	if r := db.tree.(*rstar.Tree).Versioned().Retained(); r != 0 {
		t.Fatalf("retained pre-images = %d after release, want 0", r)
	}

	// Reopen: version numbering restarts at 1 for the new process.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Version(); got != 1 {
		t.Fatalf("reopened database at version %d, want 1", got)
	}
	if re.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", re.Len())
	}
}
