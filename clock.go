package walrus

import "time"

// statsClock and statsSince isolate the wall-clock reads feeding the
// QueryStats timing fields and the obs phase histograms. Timing is
// observability only — it never influences matching, scoring, or result
// order — so these helpers sit on the lint clockExempt list (the shared
// exemption consulted by both the determinism and obs analyzers); the
// pipeline itself must stay clock-free.

func statsClock() time.Time {
	return time.Now()
}

func statsSince(t time.Time) time.Duration {
	return time.Since(t)
}
