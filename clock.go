package walrus

import "time"

// statsClock and statsSince isolate the wall-clock reads feeding the
// QueryStats timing fields. Timing is observability only — it never
// influences matching, scoring, or result order — so these helpers carry
// the only sanctioned determinism suppressions in the root package; the
// pipeline itself must stay clock-free.

func statsClock() time.Time {
	return time.Now() //walrus:lint-ignore determinism QueryStats timing is observability only and never feeds results
}

func statsSince(t time.Time) time.Duration {
	return time.Since(t) //walrus:lint-ignore determinism QueryStats timing is observability only and never feeds results
}
