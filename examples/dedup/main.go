// Dedup: near-duplicate detection with WALRUS. A collection is seeded
// with pairs of near-duplicates (the same scene re-encoded with noise,
// dithering, color shifts or slight crops — typical of images that
// circulate on the web) and every image is queried against the rest; pairs
// above a similarity threshold are reported as duplicates. Region-based
// similarity tolerates exactly the perturbations re-encoding introduces,
// so precision/recall of the recovered pairs is high.
//
// Run with:
//
//	go run ./examples/dedup
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"walrus"
	"walrus/internal/dataset"
	"walrus/internal/imgio"
)

func main() {
	log.SetFlags(0)

	// Build a base collection and derive near-duplicates for some of it.
	ds, err := dataset.Generate(dataset.Options{Seed: 77, PerCategory: 6})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	type img struct {
		id string
		im *imgio.Image
	}
	var collection []img
	truth := map[string]string{} // duplicate id -> original id
	for i, it := range ds.Items {
		collection = append(collection, img{it.ID, it.Image})
		if i%5 != 0 {
			continue
		}
		// Derive a near-duplicate: noise + dither + slight color shift.
		dup := imgio.Dither(imgio.AddNoise(it.Image, rng, 0.03), 32)
		dup = imgio.ColorShift(dup, 0.02, -0.02, 0.01)
		dupID := it.ID + "-dup"
		collection = append(collection, img{dupID, dup})
		truth[dupID] = it.ID
	}

	// Duplicate detection wants much tighter matching than scene retrieval:
	// store finer 8×8 signatures alongside the 2×2 ones and enable the
	// refined matching phase (paper §5.5) with a small epsilon.
	opts := walrus.DefaultOptions()
	opts.Region.FineSignature = 8
	db, err := walrus.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	var batch []walrus.BatchItem
	for _, c := range collection {
		batch = append(batch, walrus.BatchItem{ID: c.id, Image: c.im})
	}
	if err := db.AddBatch(batch, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection: %d images (%d planted duplicate pairs)\n\n", len(collection), len(truth))

	// Query every image and record its best non-self match. A pair is a
	// duplicate when the relationship is mutual (each is the other's best
	// match) and the similarity clears the threshold — the standard
	// mutual-best-match filter for near-duplicate mining.
	const threshold = 0.97
	params := walrus.DefaultQueryParams()
	params.Epsilon = 0.05
	params.Refine = true
	// The auto refine bound is Epsilon*sqrt(fineDim/coarseDim) = 0.2; a
	// hand-tightened bound separates true re-encodings (tiny fine
	// distance) from same-category lookalikes (same coarse signature,
	// different fine texture).
	params.RefineEpsilon = 0.03
	params.Tau = threshold
	best := map[string]string{}
	for _, c := range collection {
		matches, _, err := db.Query(c.im, params)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range matches {
			if m.ID != c.id {
				best[c.id] = m.ID
				break
			}
		}
	}
	seen := map[string]bool{}
	var found [][2]string
	for id, other := range best {
		// Accept the pair when the relationship is mutual, or when the
		// counterpart simply has no recorded best match (it cleared the
		// threshold in one direction only).
		if b, ok := best[other]; ok && b != id {
			continue
		}
		a, b := id, other
		if a > b {
			a, b = b, a
		}
		if !seen[a+"|"+b] {
			seen[a+"|"+b] = true
			found = append(found, [2]string{a, b})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i][0] < found[j][0] })

	correct := 0
	for _, p := range found {
		isTrue := truth[p[1]] == p[0] || truth[p[0]] == p[1]
		mark := " "
		if isTrue {
			mark = "*"
			correct++
		}
		fmt.Printf("  %s %-22s <-> %s\n", mark, p[0], p[1])
	}
	fmt.Printf("\nrecovered %d pairs, %d planted (* = planted), precision %.2f, recall %.2f\n",
		len(found), len(truth),
		safeDiv(correct, len(found)), safeDiv(correct, len(truth)))
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
