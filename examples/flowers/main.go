// Flowers: the paper's headline comparison (Figures 7 and 8). A query of
// red flowers on green leaves is run against a labeled synthetic dataset
// under WBIIS (one Daubechies-wavelet signature per image) and WALRUS
// (region signatures). The printed precision@k shows WALRUS returning
// mostly flowers while WBIIS mixes in bricks, sunsets and lawns — the
// same confusions the paper reports for the misc dataset.
//
// Run with:
//
//	go run ./examples/flowers [-per-category 30] [-k 14]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"walrus/internal/dataset"
	"walrus/internal/experiments"
)

func main() {
	log.SetFlags(0)
	perCat := flag.Int("per-category", 25, "dataset images per category")
	k := flag.Int("k", 14, "results per system (paper: 14)")
	flag.Parse()

	opts := dataset.DefaultOptions()
	opts.PerCategory = *perCat
	ds, err := dataset.Generate(opts)
	if err != nil {
		log.Fatal(err)
	}
	query := ds.ByCategory(dataset.Flowers)[0]
	fmt.Printf("dataset: %d images in %d categories; query: %s\n\n", len(ds.Items), len(dataset.Categories()), query.ID)

	fig7, err := experiments.Fig7(ds, query, *k)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintRetrieval(os.Stdout, fig7)
	fmt.Println()

	cfg := experiments.PaperWalrusConfig()
	db, err := experiments.BuildWalrusDB(ds, cfg.Options)
	if err != nil {
		log.Fatal(err)
	}
	fig8, err := experiments.Fig8(db, query, cfg.Params, *k)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintRetrieval(os.Stdout, fig8)

	fmt.Printf("\nprecision@%d: WBIIS %.2f vs WALRUS %.2f", *k, fig7.Precision(), fig8.Precision())
	if fig8.Precision() > fig7.Precision() {
		fmt.Println("  — region-granularity matching wins, as in the paper")
	} else {
		fmt.Println()
	}
}
