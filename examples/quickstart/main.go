// Quickstart: index three small synthetic scenes in an in-memory WALRUS
// database and query with a variant of one of them. Demonstrates that
// WALRUS retrieves the image whose *regions* match, even though the shared
// object sits at a different position in the query.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"walrus"
	"walrus/internal/imgio"
)

// scene paints a base color with a square object of another color — the
// simplest possible "image with one region of interest".
func scene(baseR, baseG, baseB, objR, objG, objB float64, x, y, side int) *imgio.Image {
	im := imgio.New(128, 128, 3)
	im.FillRGB(baseR, baseG, baseB)
	for yy := y; yy < y+side; yy++ {
		for xx := x; xx < x+side; xx++ {
			im.SetRGB(xx, yy, objR, objG, objB)
		}
	}
	return im
}

func main() {
	log.SetFlags(0)

	// Create an in-memory database with the paper's default parameters.
	db, err := walrus.New(walrus.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Index three images: red square on green (bottom-right), blue square
	// on gray, yellow square on dark blue.
	images := []struct {
		id string
		im *imgio.Image
	}{
		{"red-on-green", scene(0.15, 0.6, 0.2, 0.85, 0.1, 0.1, 70, 70, 50)},
		{"blue-on-gray", scene(0.5, 0.5, 0.5, 0.1, 0.2, 0.85, 20, 20, 50)},
		{"yellow-on-navy", scene(0.05, 0.1, 0.35, 0.9, 0.85, 0.1, 40, 40, 50)},
	}
	for _, it := range images {
		if err := db.Add(it.id, it.im); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d images, %d regions total\n\n", db.Len(), db.NumRegions())

	// Query with a red square on green — but at the OPPOSITE corner from
	// the indexed image. A whole-image signature would see two quite
	// different pictures; WALRUS matches the regions.
	query := scene(0.15, 0.6, 0.2, 0.85, 0.1, 0.1, 8, 8, 50)
	matches, stats, err := db.Query(query, walrus.DefaultQueryParams())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %d regions extracted, %d matching regions retrieved, %s elapsed\n",
		stats.QueryRegions, stats.RegionsRetrieved, stats.Elapsed)
	fmt.Printf("%-5s %-16s %12s\n", "rank", "image", "similarity")
	for i, m := range matches {
		fmt.Printf("%-5d %-16s %12.4f\n", i+1, m.ID, m.Similarity)
	}
	if len(matches) > 0 && matches[0].ID == "red-on-green" {
		fmt.Println("\nthe translated object was matched: region-based retrieval works")
	}
}
