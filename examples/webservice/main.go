// Webservice: a small HTTP image-search service over a WALRUS database,
// now a thin wrapper over the production front-end in internal/serve —
// the example only assembles a dataset and delegates routing, admission
// control, write coalescing and graceful shutdown to the serve package.
//
//	GET  /v1/stats                  — database + serving statistics (JSON)
//	GET  /v1/search?id=<id>&k=5     — query by an indexed image's id
//	POST /v1/search?k=5             — query by a PPM image in the request body
//	POST /v1/images?id=<id>         — index a PPM image from the request body
//	GET  /healthz, /readyz          — liveness and readiness
//
// Run with:
//
//	go run ./examples/webservice            # serve on :8080
//	go run ./examples/webservice -selftest  # start, exercise endpoints, exit
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"walrus"
	"walrus/internal/dataset"
	"walrus/internal/serve"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8080", "listen address")
	perCat := flag.Int("per-category", 10, "dataset images per category")
	selftest := flag.Bool("selftest", false, "start, run a few requests against the server, and exit")
	flag.Parse()

	opts := dataset.DefaultOptions()
	opts.PerCategory = *perCat
	ds, err := dataset.Generate(opts)
	if err != nil {
		log.Fatal(err)
	}
	db, err := walrus.New(walrus.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	items := make([]walrus.BatchItem, len(ds.Items))
	for i, it := range ds.Items {
		items[i] = walrus.BatchItem{ID: it.ID, Image: it.Image}
	}
	log.Printf("indexing %d images...", len(items))
	if err := db.AddBatch(items, 0); err != nil {
		log.Fatal(err)
	}

	params := walrus.DefaultQueryParams()
	params.Limit = 5
	srv, err := serve.New(serve.Config{
		Backend:       db,
		DefaultParams: params,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *selftest {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		serveErr := make(chan error, 1)
		go func() {
			serveErr <- srv.Serve(ln)
		}()
		base := "http://" + ln.Addr().String()
		for _, url := range []string{
			base + "/v1/stats",
			base + "/v1/search?id=flowers-0000&k=5",
			base + "/healthz",
		} {
			resp, err := http.Get(url)
			if err != nil {
				log.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				log.Fatal(err)
			}
			if err := resp.Body.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("GET %s -> %s\n%s\n", url, resp.Status, body)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Fatal(err)
		}
		if err := <-serveErr; err != nil {
			log.Fatal(err)
		}
		return
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() {
		<-sigs
		log.Print("draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- srv.Drain(ctx)
	}()

	log.Printf("serving on %s (try /v1/stats or /v1/search?id=flowers-0000)", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}
