// Webservice: a small HTTP image-search service over a WALRUS database.
// On startup it indexes a synthetic labeled dataset, then serves:
//
//	GET  /stats                  — database statistics (JSON)
//	GET  /search?id=<id>&k=5     — query by an indexed image's id
//	POST /search?k=5             — query by a PPM image in the request body
//	POST /images?id=<id>         — index a PPM image from the request body
//
// Run with:
//
//	go run ./examples/webservice            # serve on :8080
//	go run ./examples/webservice -selftest  # start, exercise endpoints, exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"

	"walrus"
	"walrus/internal/dataset"
	"walrus/internal/imgio"
)

type server struct {
	db *walrus.DB
	ds *dataset.Dataset
}

type searchResponse struct {
	Query   string         `json:"query"`
	Elapsed string         `json:"elapsed"`
	Results []searchResult `json:"results"`
}

type searchResult struct {
	ID         string  `json:"id"`
	Category   string  `json:"category"`
	Similarity float64 `json:"similarity"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"images":  s.db.Len(),
		"regions": s.db.NumRegions(),
	})
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	k := 5
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 100 {
			http.Error(w, "invalid k", http.StatusBadRequest)
			return
		}
		k = n
	}
	var query *imgio.Image
	var label string
	switch r.Method {
	case http.MethodGet:
		id := r.URL.Query().Get("id")
		item, ok := s.ds.Find(id)
		if !ok {
			http.Error(w, "unknown image id", http.StatusNotFound)
			return
		}
		query = item.Image
		label = id
	case http.MethodPost:
		im, err := imgio.DecodePPM(io.LimitReader(r.Body, 16<<20))
		if err != nil {
			http.Error(w, "bad PPM body: "+err.Error(), http.StatusBadRequest)
			return
		}
		query = im
		label = "(uploaded)"
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}

	params := walrus.DefaultQueryParams()
	params.Limit = k
	matches, stats, err := s.db.Query(query, params)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := searchResponse{Query: label, Elapsed: stats.Elapsed.String()}
	for _, m := range matches {
		resp.Results = append(resp.Results, searchResult{
			ID:         m.ID,
			Category:   string(dataset.CategoryOf(m.ID)),
			Similarity: m.Similarity,
		})
	}
	writeJSON(w, resp)
}

func (s *server) handleAddImage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	im, err := imgio.DecodePPM(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		http.Error(w, "bad PPM body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.db.Add(id, im); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, map[string]string{"indexed": id})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8080", "listen address")
	perCat := flag.Int("per-category", 10, "dataset images per category")
	selftest := flag.Bool("selftest", false, "start, run a few requests against the server, and exit")
	flag.Parse()

	opts := dataset.DefaultOptions()
	opts.PerCategory = *perCat
	ds, err := dataset.Generate(opts)
	if err != nil {
		log.Fatal(err)
	}
	db, err := walrus.New(walrus.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("indexing %d images...", len(ds.Items))
	for _, it := range ds.Items {
		if err := db.Add(it.ID, it.Image); err != nil {
			log.Fatal(err)
		}
	}
	s := &server{db: db, ds: ds}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/images", s.handleAddImage)

	if *selftest {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, mux)
		base := "http://" + ln.Addr().String()
		for _, url := range []string{
			base + "/stats",
			base + "/search?id=flowers-0000&k=5",
		} {
			resp, err := http.Get(url)
			if err != nil {
				log.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			fmt.Printf("GET %s -> %s\n%s\n", url, resp.Status, body)
		}
		return
	}
	log.Printf("serving on %s (try /stats or /search?id=flowers-0000)", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
