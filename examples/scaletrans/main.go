// Scaletrans: robustness to object scaling and translation, the core claim
// of the WALRUS similarity model (Section 4). One scene is indexed in five
// variants — identical, translated, scaled, translated+scaled, and an
// unrelated control — and the same query is scored by WALRUS and by two
// single-signature baselines (WBIIS and a color histogram). WALRUS ranks
// every variant above the control; the baselines degrade as soon as the
// object moves or changes size.
//
// Run with:
//
//	go run ./examples/scaletrans
package main

import (
	"fmt"
	"log"

	"walrus"
	"walrus/internal/histogram"
	"walrus/internal/imgio"
	"walrus/internal/wbiis"
)

// flowerScene paints a green textured-ish background with a red disk
// cluster ("flower") at the given center and size.
func flowerScene(cx, cy, size int) *imgio.Image {
	im := imgio.New(128, 128, 3)
	im.FillRGB(0.15, 0.55, 0.18)
	// Simple flower: center disk + four petals.
	paint := func(x0, y0, r int, cr, cg, cb float64) {
		for y := y0 - r; y <= y0+r; y++ {
			for x := x0 - r; x <= x0+r; x++ {
				dx, dy := x-x0, y-y0
				if dx*dx+dy*dy <= r*r {
					im.SetRGB(x, y, cr, cg, cb)
				}
			}
		}
	}
	p := size / 2
	paint(cx-p, cy, p, 0.85, 0.1, 0.1)
	paint(cx+p, cy, p, 0.85, 0.1, 0.1)
	paint(cx, cy-p, p, 0.85, 0.1, 0.1)
	paint(cx, cy+p, p, 0.85, 0.1, 0.1)
	paint(cx, cy, size/3, 0.95, 0.85, 0.15)
	return im
}

func unrelatedScene() *imgio.Image {
	im := imgio.New(128, 128, 3)
	im.FillRGB(0.45, 0.5, 0.55)
	for y := 40; y < 90; y++ {
		for x := 30; x < 100; x++ {
			im.SetRGB(x, y, 0.15, 0.25, 0.7)
		}
	}
	return im
}

func main() {
	log.SetFlags(0)

	variants := []struct {
		id string
		im *imgio.Image
	}{
		{"identical", flowerScene(40, 40, 24)},
		{"translated", flowerScene(90, 88, 24)},
		{"scaled", flowerScene(40, 40, 44)},
		{"trans+scaled", flowerScene(84, 80, 44)},
		{"unrelated", unrelatedScene()},
	}
	query := flowerScene(40, 40, 24)

	// WALRUS.
	db, err := walrus.New(walrus.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range variants {
		if err := db.Add(v.id, v.im); err != nil {
			log.Fatal(err)
		}
	}
	wres, _, err := db.Query(query, walrus.DefaultQueryParams())
	if err != nil {
		log.Fatal(err)
	}
	walrusScore := map[string]float64{}
	for _, m := range wres {
		walrusScore[m.ID] = m.Similarity
	}

	// WBIIS baseline.
	wx, err := wbiis.New(wbiis.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range variants {
		if err := wx.Add(v.id, v.im); err != nil {
			log.Fatal(err)
		}
	}
	wbiisRank := map[string]int{}
	bm, err := wx.Query(query, len(variants))
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range bm {
		wbiisRank[m.ID] = i + 1
	}

	// Histogram baseline.
	hx, err := histogram.New(histogram.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range variants {
		if err := hx.Add(v.id, v.im); err != nil {
			log.Fatal(err)
		}
	}
	histRank := map[string]int{}
	hm, err := hx.Query(query, len(variants))
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range hm {
		histRank[m.ID] = i + 1
	}

	fmt.Println("query: flower at (40,40), size 24")
	fmt.Printf("%-14s %18s %12s %12s\n", "variant", "WALRUS similarity", "WBIIS rank", "hist rank")
	for _, v := range variants {
		fmt.Printf("%-14s %18.4f %12d %12d\n", v.id, walrusScore[v.id], wbiisRank[v.id], histRank[v.id])
	}
	fmt.Println()
	if walrusScore["trans+scaled"] > walrusScore["unrelated"] {
		fmt.Println("WALRUS scores the translated+scaled object above the unrelated control.")
	}
}
