package walrus

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"walrus/internal/obs"
)

// normalizeTrace strips everything about a QueryTrace that is allowed to
// vary run to run — trace id, wall times, and the echoed parallelism —
// and returns the rest as canonical JSON. Two queries over the same data
// must normalize identically at every Parallelism setting.
func normalizeTrace(t *testing.T, qt *QueryTrace) string {
	t.Helper()
	c := *qt
	c.TraceID = ""
	c.ElapsedNS = 0
	c.Params.Parallelism = 0
	c.Stages = append([]ExplainStage(nil), qt.Stages...)
	for i := range c.Stages {
		c.Stages[i].DurationNS = 0
	}
	c.Shards = append([]ExplainShard(nil), qt.Shards...)
	for i := range c.Shards {
		c.Shards[i].ProbeNS = 0
		c.Shards[i].ScoreNS = 0
	}
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatalf("marshaling trace: %v", err)
	}
	return string(b)
}

// explainedQuery runs one query with a fresh funnel accumulator and
// returns the filled trace.
func explainedQuery(t *testing.T, s *Sharded, par int) (*QueryTrace, QueryStats, int) {
	t.Helper()
	p := DefaultQueryParams()
	p.Parallelism = par
	p.Limit = 10
	ctx, qt := WithQueryTrace(context.Background())
	matches, stats, err := s.QueryContext(ctx, scene(green, red, 24, 24, 40), p)
	if err != nil {
		t.Fatalf("explained query (par=%d): %v", par, err)
	}
	return qt, stats, len(matches)
}

// buildTraceSharded seeds a sharded database with a deterministic corpus.
func buildTraceSharded(t *testing.T, shards int) *Sharded {
	t.Helper()
	opts := testOptions()
	opts.Shards = shards
	opts.Parallelism = 4
	s, err := NewSharded(opts)
	if err != nil {
		t.Fatalf("NewSharded(%d): %v", shards, err)
	}
	if err := s.AddBatch(corpus50(t)[:20], 4); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	return s
}

// TestTraceCompleteness storms a 4-shard database with concurrent
// explained queries and then audits every recorded trace: exactly one
// root span named "query", every other span parented inside the same
// trace (no orphans — the parent links must survive the cross-shard
// fan-out), and the expected span family present. It also pins the
// funnel's determinism guarantee: the counts a storm query reports at
// Parallelism 4 are byte-identical to a serial query's. Runs under
// -race in CI (the explain tier).
func TestTraceCompleteness(t *testing.T) {
	s := buildTraceSharded(t, 4)
	// A big ring so the whole storm fits without wraparound; the
	// overflow path has its own test (TestTraceSpanRingOverflow).
	reg := obs.NewRegistrySpanRing(1 << 14)
	s.SetMetrics(reg)
	defer s.SetMetrics(nil)

	serial, _, _ := explainedQuery(t, s, 1)
	wantFunnel := normalizeTrace(t, serial)

	const goroutines, perG = 4, 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	traces := make(chan uint64, goroutines*perG)
	funnels := make(chan string, goroutines*perG)
	type funnelCarrier struct {
		qt *QueryTrace
		id uint64
	}
	results := make(chan funnelCarrier, goroutines*perG)
	p := DefaultQueryParams()
	p.Parallelism = 4
	p.Limit = 10
	q := scene(green, red, 24, 24, 40)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctx, qt := WithQueryTrace(context.Background())
				if _, _, err := s.QueryContext(ctx, q, p); err != nil {
					errs <- err
					return
				}
				id, err := obs.ParseTraceID(qt.TraceID)
				if err != nil {
					errs <- fmt.Errorf("bad trace id %q: %w", qt.TraceID, err)
					return
				}
				results <- funnelCarrier{qt, id}
			}
		}()
	}
	wg.Wait()
	close(errs)
	close(results)
	for err := range errs {
		t.Fatal(err)
	}
	for r := range results {
		traces <- r.id
		funnels <- normalizeTrace(t, r.qt)
	}
	close(traces)
	close(funnels)

	// Every storm funnel matches the serial reference byte for byte.
	for f := range funnels {
		if f != wantFunnel {
			t.Fatalf("storm funnel diverged from serial reference:\n got %s\nwant %s", f, wantFunnel)
		}
	}

	// Every trace is a complete, single-rooted tree.
	seen := map[uint64]bool{}
	for id := range traces {
		if seen[id] {
			t.Fatalf("trace id %d assigned to two queries", id)
		}
		seen[id] = true
		spans := reg.Tracer().TraceSpans(id)
		if len(spans) == 0 {
			t.Fatalf("trace %d recorded no spans", id)
		}
		ids := map[uint64]bool{}
		for _, sp := range spans {
			ids[sp.ID] = true
		}
		roots := 0
		byName := map[string]int{}
		for _, sp := range spans {
			byName[sp.Name]++
			if sp.Parent == 0 {
				roots++
				if sp.Name != "query" {
					t.Fatalf("trace %d: root span is %q, want \"query\"", id, sp.Name)
				}
				continue
			}
			if !ids[sp.Parent] {
				t.Fatalf("trace %d: span %q (id %d) orphaned — parent %d not in trace",
					id, sp.Name, sp.ID, sp.Parent)
			}
		}
		if roots != 1 {
			t.Fatalf("trace %d: %d root spans, want exactly 1", id, roots)
		}
		want := map[string]int{
			"query": 1, "query.extract": 1, "query.probe": 1, "query.score": 1,
			"query.shard.probe": 4, "query.shard.aggregate": 4, "query.shard.score": 4,
		}
		for name, n := range want {
			if byName[name] != n {
				t.Fatalf("trace %d: %d %q spans, want %d (have %v)", id, byName[name], name, n, byName)
			}
		}
	}
}

// TestExplainFunnelDeterminism pins the funnel's two invariance claims:
// counts are identical at every Parallelism (full normalized-JSON
// equality per shard count), and logically identical across shard counts
// — the 4-shard totals must agree with the 1-shard oracle on everything
// layout-independent (per-stage flow, candidates, matches), while
// physical fields (node visits, per-shard split) may differ.
func TestExplainFunnelDeterminism(t *testing.T) {
	type totals struct {
		regions, probeOut, candidates, matches int
	}
	reduce := func(qt *QueryTrace) totals {
		tot := totals{regions: qt.QueryRegions, matches: qt.Matches}
		for _, st := range qt.Stages {
			switch st.Stage {
			case "probe":
				tot.probeOut = st.Out
			case "aggregate":
				tot.candidates = st.Out
			}
		}
		return tot
	}
	var oracle totals
	for _, shards := range []int{1, 4} {
		s := buildTraceSharded(t, shards)
		serial, stats, matches := explainedQuery(t, s, 1)
		parallel, _, _ := explainedQuery(t, s, 8)
		if got, want := normalizeTrace(t, parallel), normalizeTrace(t, serial); got != want {
			t.Fatalf("shards=%d: funnel differs between Parallelism 1 and 8:\n got %s\nwant %s",
				shards, got, want)
		}
		// The funnel agrees with the stats the same query returned.
		if serial.QueryRegions != stats.QueryRegions || serial.Matches != matches {
			t.Fatalf("shards=%d: funnel disagrees with stats: %+v vs %+v (%d matches)",
				shards, serial, stats, matches)
		}
		retrieved, candidates := 0, 0
		for _, sh := range serial.Shards {
			retrieved += sh.RegionsRetrieved
			candidates += sh.CandidateImages
		}
		if retrieved != stats.RegionsRetrieved || candidates != stats.CandidateImages {
			t.Fatalf("shards=%d: shard rows sum to %d/%d, stats say %d/%d",
				shards, retrieved, candidates, stats.RegionsRetrieved, stats.CandidateImages)
		}
		// Stage chaining holds from probe onward (extract→probe multiplies
		// by the shard count, so that edge is checked via In directly).
		for i := 1; i < len(serial.Stages); i++ {
			if serial.Stages[i].Stage == "probe" {
				if want := serial.QueryRegions * shards; serial.Stages[i].In != want {
					t.Fatalf("shards=%d: probe In = %d, want %d", shards, serial.Stages[i].In, want)
				}
				continue
			}
			if serial.Stages[i].In != serial.Stages[i-1].Out {
				t.Fatalf("shards=%d: stage %q In = %d, previous Out = %d",
					shards, serial.Stages[i].Stage, serial.Stages[i].In, serial.Stages[i-1].Out)
			}
		}
		if len(serial.Shards) != shards {
			t.Fatalf("shards=%d: %d shard rows", shards, len(serial.Shards))
		}
		tot := reduce(serial)
		if shards == 1 {
			oracle = tot
			continue
		}
		if tot != oracle {
			t.Fatalf("logical funnel totals differ across shard counts: shards=4 %+v, oracle %+v", tot, oracle)
		}
	}
}
