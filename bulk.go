package walrus

import (
	"errors"
	"fmt"

	"walrus/internal/rstar"
)

// BuildFrom constructs a fresh in-memory database from a whole collection
// at once: region extraction runs on up to workers goroutines (0 = the
// Parallelism option, itself defaulting to GOMAXPROCS) and the R*-tree is
// bulk-loaded with Sort-Tile-Recursive
// packing instead of one insert per region, which is both faster and
// yields a better-clustered index than incremental insertion. Use this
// for the initial indexing pass the paper describes ("indexing of images
// is done only once at the beginning"); Add/Remove work normally on the
// result.
func BuildFrom(opts Options, items []BatchItem, workers int) (*DB, error) {
	if opts.Index != IndexRStar {
		return nil, fmt.Errorf("walrus: BuildFrom supports only the %v index backend", IndexRStar)
	}
	db, err := prepare(opts)
	if err != nil {
		return nil, err
	}
	extracted, errs := db.extractAll(items, workers)

	var rects []rstar.Rect
	var payloads []int64
	for i, it := range items {
		if errs[i] != nil {
			return nil, fmt.Errorf("walrus: extracting regions of %q: %w", it.ID, errs[i])
		}
		if _, dup := db.byID[it.ID]; dup {
			return nil, fmt.Errorf("walrus: duplicate image id %q", it.ID)
		}
		imgIdx := len(db.images)
		db.images = append(db.images, imageRecord{ID: it.ID, W: it.Image.W, H: it.Image.H, Regions: extracted[i]})
		db.byID[it.ID] = imgIdx
		for local, r := range extracted[i] {
			payloads = append(payloads, int64(len(db.refs)))
			db.refs = append(db.refs, regionRef{Image: imgIdx, Local: local})
			db.bsigs = append(db.bsigs, makeBinSig(r.Signature))
			rects = append(rects, signatureRect(opts.UseBBox, r))
		}
	}

	capacity := opts.NodeCapacity
	if capacity == 0 {
		capacity = 16
	}
	ms, err := rstar.NewMemStore(opts.Region.Dim(), capacity)
	if err != nil {
		return nil, err
	}
	// Bulk-load through the versioned store before the first publish:
	// construction writes are epoch-0 and retain no pre-images.
	tree, err := rstar.BulkLoad(rstar.NewVersioned(ms), rects, payloads)
	if err != nil {
		return nil, err
	}
	db.tree = tree
	db.liveRegions = len(db.refs)
	db.publishLocked()
	return db, nil
}

// CreateFrom builds a disk-backed database over a whole collection in one
// pass: region extraction runs on up to workers goroutines, region
// payloads stream into the heap file, and the paged R*-tree is bulk-loaded
// with STR packing. This is the fastest way to run the paper's one-time
// indexing phase against a directory-resident database.
func CreateFrom(dir string, opts Options, items []BatchItem, workers int) (*DB, error) {
	if opts.Index != IndexRStar {
		return nil, fmt.Errorf("walrus: disk-backed databases support only the %v index backend", IndexRStar)
	}
	db, err := createDB(dir, opts)
	if err != nil {
		return nil, err
	}
	if err := db.beginBulkLoad(); err != nil {
		return nil, errors.Join(err, db.Close())
	}
	extracted, errs := db.extractAll(items, workers)

	var rects []rstar.Rect
	var payloads []int64
	for i, it := range items {
		if errs[i] != nil {
			return nil, errors.Join(fmt.Errorf("walrus: extracting regions of %q: %w", it.ID, errs[i]), db.Close())
		}
		if _, dup := db.byID[it.ID]; dup {
			return nil, errors.Join(fmt.Errorf("walrus: duplicate image id %q", it.ID), db.Close())
		}
		imgIdx := len(db.images)
		db.images = append(db.images, imageRecord{ID: it.ID, W: it.Image.W, H: it.Image.H, Regions: extracted[i]})
		db.byID[it.ID] = imgIdx
		for local, r := range extracted[i] {
			rec, err := r.MarshalBinary()
			if err != nil {
				return nil, errors.Join(fmt.Errorf("walrus: encoding region of %q: %w", it.ID, err), db.Close())
			}
			rid, err := db.persist.heap.Insert(rec)
			if err != nil {
				return nil, errors.Join(fmt.Errorf("walrus: storing region of %q: %w", it.ID, err), db.Close())
			}
			payloads = append(payloads, int64(len(db.refs)))
			db.refs = append(db.refs, regionRef{Image: imgIdx, Local: local, RID: rid.Pack()})
			db.bsigs = append(db.bsigs, makeBinSig(r.Signature))
			rects = append(rects, signatureRect(opts.UseBBox, r))
		}
	}

	// Bulk-load through the same versioned store the empty tree was
	// created on; the database has published no version yet, so the load
	// retains no pre-images, and the publish below produces version 1.
	tree, err := rstar.BulkLoad(db.tree.(*rstar.Tree).Versioned(), rects, payloads)
	if err != nil {
		return nil, errors.Join(err, db.Close())
	}
	db.tree = tree
	db.liveRegions = len(db.refs)
	if err := db.endBulkLoad(); err != nil {
		return nil, errors.Join(err, db.Close())
	}
	db.publishLocked()
	return db, nil
}

// beginBulkLoad suspends write-ahead logging for a bulk rebuild: logging
// full page images of a from-scratch load would double the write volume
// for no benefit, since there is no prior state worth recovering to. A
// durable rebuild marker makes the trade explicit — a crash before
// endBulkLoad leaves the marker in the log, and Open refuses the
// directory with a "rebuild interrupted" error instead of presenting a
// half-built database.
func (db *DB) beginBulkLoad() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	p := db.persist
	if p == nil {
		return nil
	}
	p.wal.AppendApp(kindRebuild, nil)
	p.wal.AppendCommit()
	if err := p.wal.Sync(); err != nil {
		return err
	}
	p.unlogged = true
	p.pool.SetFlushHook(nil)
	return nil
}

// endBulkLoad resumes logging and checkpoints, which flushes the built
// database, snapshots the catalog, and truncates the log — retiring the
// rebuild marker written by beginBulkLoad.
func (db *DB) endBulkLoad() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	p := db.persist
	if p == nil {
		return nil
	}
	p.unlogged = false
	p.pool.SetFlushHook(p.flushHook)
	return db.checkpointLocked(false)
}
