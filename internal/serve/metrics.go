package serve

import "walrus/internal/obs"

// metrics holds the serving layer's pre-resolved observability handles
// in the walrus_serve_* namespace. A nil registry yields nil handles,
// whose operations are no-ops — the same disabled fast path the engine
// uses — so no serving code branches on "is observability on".
type metrics struct {
	ingestRequests *obs.Counter
	searchRequests *obs.Counter
	deleteRequests *obs.Counter
	requestErrors  *obs.Counter
	requestSeconds *obs.Histogram

	admitted      *obs.Counter
	shed          *obs.Counter
	queueDepth    *obs.Gauge
	active        *obs.Gauge
	admissionWait *obs.Histogram
	deadlineDrops *obs.Counter

	coalesceFlushes  *obs.Counter
	coalesceRejects  *obs.Counter
	coalescedWrites  *obs.Counter
	coalesceBatch    *obs.Histogram
	coalesceFlushSec *obs.Histogram

	slowQueries *obs.Counter

	draining *obs.Gauge
	drains   *obs.Counter
}

// coalesceBatchBuckets are batch-size bucket bounds (writes per flush).
var coalesceBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		ingestRequests: reg.Counter("walrus_serve_ingest_requests_total", "Ingest (POST /v1/images) requests accepted for processing."),
		searchRequests: reg.Counter("walrus_serve_search_requests_total", "Search (POST|GET /v1/search) requests accepted for processing."),
		deleteRequests: reg.Counter("walrus_serve_delete_requests_total", "Delete (DELETE /v1/images/{id}) requests accepted for processing."),
		requestErrors:  reg.Counter("walrus_serve_request_errors_total", "Requests answered with a 4xx/5xx status."),
		requestSeconds: reg.Histogram("walrus_serve_request_seconds", "End-to-end latency of admitted requests.", nil),

		admitted:      reg.Counter("walrus_serve_admitted_total", "Requests that acquired an admission slot."),
		shed:          reg.Counter("walrus_serve_shed_total", "Requests shed with 429 because the admission queue was full."),
		queueDepth:    reg.Gauge("walrus_serve_admission_queue_depth", "Requests currently waiting for an admission slot."),
		active:        reg.Gauge("walrus_serve_active_requests", "Requests currently holding an admission slot."),
		admissionWait: reg.Histogram("walrus_serve_admission_wait_seconds", "Time queued requests waited for an admission slot.", nil),
		deadlineDrops: reg.Counter("walrus_serve_deadline_drops_total", "Queued requests abandoned because their deadline expired before a slot freed."),

		coalesceFlushes:  reg.Counter("walrus_serve_coalesce_flushes_total", "Write-coalescer flushes (one AddBatch publish each)."),
		coalesceRejects:  reg.Counter("walrus_serve_coalesce_rejects_total", "Writes rejected by the coalescer before the flush (duplicate ids)."),
		coalescedWrites:  reg.Counter("walrus_serve_coalesced_writes_total", "Images committed through coalesced flushes."),
		coalesceBatch:    reg.Histogram("walrus_serve_coalesce_batch_size", "Images per coalescer flush.", coalesceBatchBuckets),
		coalesceFlushSec: reg.Histogram("walrus_serve_coalesce_flush_seconds", "Latency of one coalescer flush (AddBatch commit).", nil),

		slowQueries: reg.Counter("walrus_serve_slow_queries_total", "Searches whose engine time met Config.SlowQueryThreshold."),

		draining: reg.Gauge("walrus_serve_draining", "1 while the server is draining, 0 otherwise."),
		drains:   reg.Counter("walrus_serve_drains_total", "Graceful drains initiated."),
	}
}
