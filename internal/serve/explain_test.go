package serve

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"walrus"
	"walrus/internal/obs"
)

// explainSchema flattens a decoded JSON value into sorted key paths
// (arrays contribute their first element under a "[]" segment), so the
// golden file pins the wire shape of the explain payload without pinning
// run-dependent values.
func explainSchema(v any) []string {
	var paths []string
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch x := v.(type) {
		case map[string]any:
			for k, child := range x {
				walk(prefix+"."+k, child)
			}
		case []any:
			if len(x) > 0 {
				walk(prefix+"[]", x[0])
			} else {
				paths = append(paths, prefix+"[]")
			}
		default:
			paths = append(paths, prefix)
		}
	}
	walk("explain", v)
	sort.Strings(paths)
	return paths
}

// TestExplainSchemaGolden pins the JSON schema of /v1/search?explain=1
// against testdata/explain_schema.golden: the flattened key paths of the
// explain object plus the stage sequence. A field rename or reorder is an
// API break for every client parsing EXPLAIN output — regenerate the
// golden deliberately with WALRUS_UPDATE_GOLDEN=1 when the schema is
// meant to change.
func TestExplainSchemaGolden(t *testing.T) {
	reg := obs.NewRegistry()
	db, err := walrus.New(testOptions())
	if err != nil {
		t.Fatalf("creating db: %v", err)
	}
	db.SetCacheSize(4)
	s := newTestServer(t, Config{Metrics: reg, Backend: db})
	for i := 0; i < 3; i++ {
		w := do(s, "POST", fmt.Sprintf("/v1/images?id=img-%d", i), "image/x-portable-pixmap", testPPM(t, i))
		if w.Code != http.StatusCreated {
			t.Fatalf("ingest img-%d: got %d: %s", i, w.Code, w.Body.String())
		}
	}
	// refine=1 and prefilter=1 force the optional stages, and the cached
	// backend adds the cache row, so the golden covers every stage an
	// unsharded query can emit.
	w := do(s, "POST", "/v1/search?explain=1&refine=1&prefilter=1&k=5", "image/x-portable-pixmap", testPPM(t, 0))
	if w.Code != http.StatusOK {
		t.Fatalf("search: got %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Walrus-Trace"); got == "" {
		t.Fatal("explained search response missing X-Walrus-Trace header")
	}
	if got := w.Header().Get("X-Walrus-Cache"); got != "miss" {
		t.Fatalf("first search X-Walrus-Cache = %q, want \"miss\"", got)
	}
	var resp map[string]any
	decodeBody(t, w, &resp)
	explain, ok := resp["explain"].(map[string]any)
	if !ok {
		t.Fatalf("response has no explain object: %v", resp)
	}

	var b strings.Builder
	b.WriteString("# Flattened JSON schema of the /v1/search?explain=1 payload.\n")
	b.WriteString("# Regenerate with WALRUS_UPDATE_GOLDEN=1 go test -run TestExplainSchemaGolden ./internal/serve\n")
	for _, p := range explainSchema(explain) {
		b.WriteString(p)
		b.WriteString("\n")
	}
	b.WriteString("stages:")
	stages, _ := explain["stages"].([]any)
	for _, st := range stages {
		m, _ := st.(map[string]any)
		b.WriteString(" ")
		b.WriteString(fmt.Sprint(m["stage"]))
	}
	b.WriteString("\n")
	got := b.String()

	golden := filepath.Join("testdata", "explain_schema.golden")
	if os.Getenv("WALRUS_UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with WALRUS_UPDATE_GOLDEN=1 to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("explain schema drifted from %s:\n got:\n%s\nwant:\n%s", golden, got, want)
	}

	// The trace the header names is fetchable and non-empty.
	tw := do(s, "GET", "/v1/trace/"+w.Header().Get("X-Walrus-Trace"), "", nil)
	if tw.Code != http.StatusOK {
		t.Fatalf("GET /v1/trace: got %d: %s", tw.Code, tw.Body.String())
	}
	var trace struct {
		Spans []obs.SpanRecord `json:"spans"`
	}
	decodeBody(t, tw, &trace)
	if len(trace.Spans) == 0 {
		t.Fatal("trace endpoint returned no spans for the explained query")
	}

	// The identical query repeats against an unchanged database: served
	// from the result cache, reported in the response header.
	w2 := do(s, "POST", "/v1/search?explain=1&refine=1&prefilter=1&k=5", "image/x-portable-pixmap", testPPM(t, 0))
	if w2.Code != http.StatusOK {
		t.Fatalf("repeat search: got %d: %s", w2.Code, w2.Body.String())
	}
	if got := w2.Header().Get("X-Walrus-Cache"); got != "hit" {
		t.Fatalf("repeat search X-Walrus-Cache = %q, want \"hit\"", got)
	}
	if w.Body.String() == "" || w2.Body.String() == "" {
		t.Fatal("empty search response body")
	}
}
