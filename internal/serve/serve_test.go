package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"walrus"
	"walrus/internal/imgio"
	"walrus/internal/obs"
)

// testOptions keeps extraction trivial: 32×32 images under a fixed
// 32×32 window yield one region per image.
func testOptions() walrus.Options {
	o := walrus.DefaultOptions()
	o.Region.MaxWindow = 32
	o.Region.MinWindow = 32
	o.Region.Step = 32
	return o
}

// testImage synthesizes a distinct 32×32 image for seed i.
func testImage(i int) *imgio.Image {
	im := imgio.New(32, 32, 3)
	seed := uint32(i+1) * 2654435761
	for c := 0; c < 3; c++ {
		base := 0.75 * float64((seed>>(8*uint(c)))&0xff) / 255
		plane := im.Plane(c)
		for p := range plane {
			plane[p] = base + 0.2*float64(p%7)/6
		}
	}
	return im
}

func testPPM(t *testing.T, i int) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := imgio.EncodePPM(&b, testImage(i)); err != nil {
		t.Fatalf("encoding PPM: %v", err)
	}
	return b.Bytes()
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Backend == nil {
		db, err := walrus.New(testOptions())
		if err != nil {
			t.Fatalf("creating db: %v", err)
		}
		cfg.Backend = db
	}
	if cfg.CoalesceMaxWait == 0 {
		cfg.CoalesceMaxWait = time.Millisecond
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("creating server: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s
}

// do runs one request through the handler and returns the recorder.
func do(s *Server, method, target, contentType string, body []byte) *httptest.ResponseRecorder {
	var r io.Reader
	if body != nil {
		r = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, target, r)
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func decodeBody(t *testing.T, w *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding response %q: %v", w.Body.String(), err)
	}
}

func TestServeIngestSearchDelete(t *testing.T) {
	s := newTestServer(t, Config{})

	// Raw PPM ingest.
	if w := do(s, "POST", "/v1/images?id=img-0", "image/x-portable-pixmap", testPPM(t, 0)); w.Code != http.StatusCreated {
		t.Fatalf("ingest img-0: got %d, want 201: %s", w.Code, w.Body.String())
	}
	// Duplicate id is a conflict.
	if w := do(s, "POST", "/v1/images?id=img-0", "", testPPM(t, 0)); w.Code != http.StatusConflict {
		t.Fatalf("duplicate ingest: got %d, want 409: %s", w.Code, w.Body.String())
	}
	// Missing id is a bad request.
	if w := do(s, "POST", "/v1/images", "", testPPM(t, 1)); w.Code != http.StatusBadRequest {
		t.Fatalf("ingest without id: got %d, want 400", w.Code)
	}

	// JSON batch ingest.
	var payload ingestPayload
	for i := 1; i < 4; i++ {
		payload.Images = append(payload.Images, struct {
			ID  string `json:"id"`
			PPM []byte `json:"ppm"`
		}{ID: fmt.Sprintf("img-%d", i), PPM: testPPM(t, i)})
	}
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatalf("marshaling batch: %v", err)
	}
	w := do(s, "POST", "/v1/images", "application/json", body)
	if w.Code != http.StatusCreated {
		t.Fatalf("batch ingest: got %d, want 201: %s", w.Code, w.Body.String())
	}
	var added struct {
		Added int `json:"added"`
	}
	decodeBody(t, w, &added)
	if added.Added != 3 {
		t.Fatalf("batch ingest: added %d, want 3", added.Added)
	}

	// Search by posted body finds the identical image with similarity 1.
	w = do(s, "POST", "/v1/search?k=2", "", testPPM(t, 2))
	if w.Code != http.StatusOK {
		t.Fatalf("search by body: got %d: %s", w.Code, w.Body.String())
	}
	var sr searchResponse
	decodeBody(t, w, &sr)
	if len(sr.Matches) == 0 || sr.Matches[0].ID != "img-2" || sr.Matches[0].Similarity < 0.999 {
		t.Fatalf("search by body: got %+v, want img-2 at similarity 1", sr.Matches)
	}
	if len(sr.Matches) > 2 {
		t.Fatalf("k=2 returned %d matches", len(sr.Matches))
	}

	// Search by indexed id.
	w = do(s, "GET", "/v1/search?id=img-1&k=1", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("search by id: got %d: %s", w.Code, w.Body.String())
	}
	decodeBody(t, w, &sr)
	if len(sr.Matches) != 1 || sr.Matches[0].ID != "img-1" {
		t.Fatalf("search by id: got %+v, want img-1 first", sr.Matches)
	}

	// Unknown id is 404; malformed params are 400.
	if w := do(s, "GET", "/v1/search?id=nope", "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("search unknown id: got %d, want 404", w.Code)
	}
	if w := do(s, "GET", "/v1/search?id=img-1&k=-3", "", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("search bad k: got %d, want 400", w.Code)
	}
	if w := do(s, "GET", "/v1/search?id=img-1&epsilon=bogus", "", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("search bad epsilon: got %d, want 400", w.Code)
	}
	if w := do(s, "GET", "/v1/search?id=img-1&region=1,2,3,4", "", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("search id+region: got %d, want 400", w.Code)
	}
	if w := do(s, "GET", "/v1/search", "", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("GET search without id: got %d, want 400", w.Code)
	}

	// Scene search with an explicit region.
	if w := do(s, "POST", "/v1/search?region=0,0,32,32", "", testPPM(t, 3)); w.Code != http.StatusOK {
		t.Fatalf("scene search: got %d: %s", w.Code, w.Body.String())
	}

	// Delete, then the id is gone.
	if w := do(s, "DELETE", "/v1/images/img-3", "", nil); w.Code != http.StatusOK {
		t.Fatalf("delete: got %d: %s", w.Code, w.Body.String())
	}
	if w := do(s, "DELETE", "/v1/images/img-3", "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("delete twice: got %d, want 404", w.Code)
	}
	if w := do(s, "GET", "/v1/search?id=img-3", "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("search deleted id: got %d, want 404", w.Code)
	}
}

func TestServeStatsAndHealth(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Metrics: reg})
	if w := do(s, "POST", "/v1/images?id=a", "", testPPM(t, 0)); w.Code != http.StatusCreated {
		t.Fatalf("ingest: got %d: %s", w.Code, w.Body.String())
	}

	w := do(s, "GET", "/v1/stats", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stats: got %d", w.Code)
	}
	var st statsResponse
	decodeBody(t, w, &st)
	if st.Images != 1 || st.Regions != 1 || st.Sharded || st.Version == 0 || st.Draining {
		t.Fatalf("stats: got %+v", st)
	}

	if w := do(s, "GET", "/healthz", "", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz: got %d", w.Code)
	}
	if w := do(s, "GET", "/readyz", "", nil); w.Code != http.StatusOK {
		t.Fatalf("readyz: got %d", w.Code)
	}
	w = do(s, "GET", "/metrics", "", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "walrus_serve_ingest_requests_total") {
		t.Fatalf("metrics: got %d, body missing serve counters", w.Code)
	}
}

func TestServeShardedBackend(t *testing.T) {
	opts := testOptions()
	opts.Shards = 4
	sh, err := walrus.NewSharded(opts)
	if err != nil {
		t.Fatalf("creating sharded db: %v", err)
	}
	s := newTestServer(t, Config{Backend: sh})

	for i := 0; i < 8; i++ {
		if w := do(s, "POST", fmt.Sprintf("/v1/images?id=img-%d", i), "", testPPM(t, i)); w.Code != http.StatusCreated {
			t.Fatalf("ingest img-%d: got %d: %s", i, w.Code, w.Body.String())
		}
	}
	w := do(s, "GET", "/v1/search?id=img-5&k=1", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("sharded search: got %d: %s", w.Code, w.Body.String())
	}
	var sr searchResponse
	decodeBody(t, w, &sr)
	if len(sr.Matches) != 1 || sr.Matches[0].ID != "img-5" {
		t.Fatalf("sharded search: got %+v, want img-5", sr.Matches)
	}

	w = do(s, "GET", "/v1/stats", "", nil)
	var st statsResponse
	decodeBody(t, w, &st)
	if !st.Sharded || st.Shards != 4 || st.Images != 8 || len(st.VersionVector) != 4 {
		t.Fatalf("sharded stats: got %+v", st)
	}
}

// TestServeAdmissionSaturation fills the one admission slot and the
// one-deep wait queue with ingests parked in a slow coalescer window,
// then shows the next request is shed with 429 + Retry-After and that
// the queue and active gauges drain back to zero afterwards.
func TestServeAdmissionSaturation(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{
		Metrics:              reg,
		MaxConcurrentQueries: 1,
		QueueLimit:           1,
		CoalesceMaxBatch:     64,
		CoalesceMaxWait:      300 * time.Millisecond, // parks ingests long enough to observe saturation
	})

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		body := testPPM(t, i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = do(s, "POST", fmt.Sprintf("/v1/images?id=slow-%d", i), "", body).Code
		}(i)
	}
	// Wait until the slot is held and the queue is occupied.
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.running() != 1 || s.adm.depth() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("saturation not reached: running=%d depth=%d", s.adm.running(), s.adm.depth())
		}
		time.Sleep(time.Millisecond)
	}

	w := do(s, "POST", "/v1/images?id=shed", "", testPPM(t, 9))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated request: got %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatalf("429 response missing Retry-After")
	}
	if got := s.m.shed.Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	wg.Wait()
	for i, code := range codes {
		if code != http.StatusCreated {
			t.Fatalf("parked ingest %d: got %d, want 201", i, code)
		}
	}
	if s.adm.running() != 0 || s.adm.depth() != 0 {
		t.Fatalf("after drain-out: running=%d depth=%d, want 0/0", s.adm.running(), s.adm.depth())
	}
	if g := s.m.queueDepth.Value(); g != 0 {
		t.Fatalf("queue depth gauge = %d, want 0", g)
	}
	if g := s.m.active.Value(); g != 0 {
		t.Fatalf("active gauge = %d, want 0", g)
	}
}

// TestServeCoalescerVersionAtomicity fires N concurrent single-image
// POSTs and asserts they land in far fewer published catalog versions
// than N: the coalescer batches them into whole AddBatch flushes.
func TestServeCoalescerVersionAtomicity(t *testing.T) {
	db, err := walrus.New(testOptions())
	if err != nil {
		t.Fatalf("creating db: %v", err)
	}
	const n = 32
	s := newTestServer(t, Config{
		Backend: db,
		Metrics: obs.NewRegistry(),
		// Admit every writer at once so all n POSTs can park in the same
		// coalescing window.
		MaxConcurrentQueries: n,
		QueueLimit:           n,
		CoalesceMaxBatch:     2 * n,
		CoalesceMaxWait:      200 * time.Millisecond,
	})

	bodies := make([][]byte, n)
	for i := range bodies {
		bodies[i] = testPPM(t, i)
	}
	v0 := db.Version()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if w := do(s, "POST", fmt.Sprintf("/v1/images?id=img-%d", i), "", bodies[i]); w.Code != http.StatusCreated {
				t.Errorf("ingest img-%d: got %d: %s", i, w.Code, w.Body.String())
			}
		}(i)
	}
	wg.Wait()

	if got := db.Len(); got != n {
		t.Fatalf("indexed %d images, want %d", got, n)
	}
	versions := db.Version() - v0
	if versions == 0 || versions > n/4 {
		t.Fatalf("%d concurrent POSTs published %d versions, want 1..%d (coalescing broken)", n, versions, n/4)
	}
	if flushes := s.m.coalesceFlushes.Value(); flushes != versions {
		t.Fatalf("flushes=%d but versions advanced by %d: a flush must publish exactly one version", flushes, versions)
	}
}

// TestServeGracefulDrain hammers a live listener with concurrent
// writers, drains mid-stream, and proves every write acknowledged with
// 201 is present — and durable — after the drain: the database reopens
// from disk holding each acked id.
func TestServeGracefulDrain(t *testing.T) {
	testGracefulDrain(t,
		func(t *testing.T, dir string) Backend {
			db, err := walrus.Create(dir, testOptions())
			if err != nil {
				t.Fatalf("creating db: %v", err)
			}
			return db
		},
		func(t *testing.T, dir string) Backend {
			db, err := walrus.Open(dir)
			if err != nil {
				t.Fatalf("reopening after drain: %v", err)
			}
			return db
		})
}

// TestServeGracefulDrainSharded runs the same acked-write-survives-drain
// proof over the sharded backend: coalesced batches fan out across
// shards, and the drain must still flush every shard's WAL before the
// server reports drained.
func TestServeGracefulDrainSharded(t *testing.T) {
	shardedOptions := func() walrus.Options {
		o := testOptions()
		o.Shards = 4
		return o
	}
	testGracefulDrain(t,
		func(t *testing.T, dir string) Backend {
			db, err := walrus.CreateSharded(dir, shardedOptions())
			if err != nil {
				t.Fatalf("creating sharded db: %v", err)
			}
			return db
		},
		func(t *testing.T, dir string) Backend {
			db, err := walrus.OpenSharded(dir)
			if err != nil {
				t.Fatalf("reopening sharded db after drain: %v", err)
			}
			return db
		})
}

// testGracefulDrain is the shared drain scenario, parameterized over the
// durable backend: create builds a fresh store in dir and reopen loads
// it back from disk after the drain.
func testGracefulDrain(t *testing.T, create, reopen func(t *testing.T, dir string) Backend) {
	t.Helper()
	dir := t.TempDir()
	s, err := New(Config{
		Backend:         create(t, dir),
		CoalesceMaxWait: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("creating server: %v", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listening: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	const writers = 8
	var (
		mu    sync.Mutex
		acked []string
	)
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		body := testPPM(t, wi) // shared pixel content; only ids must be unique
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for seq := 0; ; seq++ {
				id := fmt.Sprintf("w%d-%d", wi, seq)
				resp, err := client.Post(base+"/v1/images?id="+id, "image/x-portable-pixmap",
					bytes.NewReader(body))
				if err != nil {
					return // connection refused after drain
				}
				_, copyErr := io.Copy(io.Discard, resp.Body)
				closeErr := resp.Body.Close()
				if copyErr != nil || closeErr != nil {
					t.Errorf("writer %d: draining response: copy=%v close=%v", wi, copyErr, closeErr)
					return
				}
				if resp.StatusCode != http.StatusCreated {
					return // draining (503) or shed: unacknowledged, may or may not exist
				}
				mu.Lock()
				acked = append(acked, id)
				mu.Unlock()
			}
		}(wi)
	}

	// Let the writers build up in-flight traffic, then drain under them.
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 20 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// Every acknowledged write survived the drain, durably.
	reopened := reopen(t, dir)
	defer func() {
		if err := reopened.Close(); err != nil {
			t.Errorf("closing reopened db: %v", err)
		}
	}()
	mu.Lock()
	defer mu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no writes were acknowledged before the drain")
	}
	for _, id := range acked {
		if _, ok := reopened.RegionsOf(id); !ok {
			t.Fatalf("acknowledged write %q lost across drain (%d acked total)", id, len(acked))
		}
	}
	// And the server refuses new work after draining.
	if w := do(s, "POST", "/v1/images?id=late", "", testPPM(t, 0)); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain ingest: got %d, want 503", w.Code)
	}
	if w := do(s, "GET", "/readyz", "", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain readyz: got %d, want 503", w.Code)
	}
}

// TestServeDeadlinePropagation gives requests a microscopic deadline
// and shows the pipeline surfaces it as 503 rather than hanging.
func TestServeDeadlinePropagation(t *testing.T) {
	db, err := walrus.New(testOptions())
	if err != nil {
		t.Fatalf("creating db: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := db.Add(fmt.Sprintf("img-%d", i), testImage(i)); err != nil {
			t.Fatalf("seeding: %v", err)
		}
	}
	s := newTestServer(t, Config{Backend: db, RequestTimeout: time.Nanosecond})
	w := do(s, "GET", "/v1/search?id=img-0", "", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: got %d, want 503: %s", w.Code, w.Body.String())
	}
	if g := s.m.active.Value(); g != 0 {
		t.Fatalf("active gauge = %d after deadline drop, want 0", g)
	}
}
