package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"walrus"
	"walrus/internal/obs"
)

// errDraining reports a write refused because the server is shutting
// down. Handlers map it to 503.
var errDraining = errors.New("serve: draining, no longer accepting writes")

// coalesceReq is one ingest request's items plus the channel its flush
// outcome is delivered on. A request's items commit or fail together.
type coalesceReq struct {
	items []walrus.BatchItem
	done  chan error
}

// coalescer batches concurrent ingests into single AddBatch calls. All
// writes of the serving process flow through its one goroutine, which
// gathers requests until the batch reaches maxBatch items or the oldest
// pending request has waited maxWait, then flushes the whole batch as
// one AddBatch — one published catalog version per database (per shard
// for sharded backends) per flush, however many clients were writing.
//
// Because that goroutine is the process's only writer, it can reject
// duplicate ids exactly (against the backend and within the batch)
// before the flush, so one poisoned request cannot fail its neighbours
// and the success path stays version-atomic.
type coalescer struct {
	backend  Backend
	maxBatch int
	maxWait  time.Duration
	workers  int
	m        *metrics

	in     chan coalesceReq
	quit   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

func newCoalescer(b Backend, maxBatch int, maxWait time.Duration, workers int, m *metrics) *coalescer {
	c := &coalescer{
		backend:  b,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		workers:  workers,
		m:        m,
		in:       make(chan coalesceReq),
		quit:     make(chan struct{}),
	}
	c.wg.Add(1)
	go c.run()
	return c
}

// add submits a request's items for the next flush and blocks until
// that flush commits (or rejects them). The wait is not abandoned on
// context expiry: once enqueued, the write's true outcome — committed
// or not — must reach the caller, and flushes are latency-bounded by
// maxWait, so the wait is too.
func (c *coalescer) add(req coalesceReq) error {
	if c.closed.Load() {
		return errDraining
	}
	select {
	case c.in <- req:
	case <-c.quit:
		return errDraining
	}
	return <-req.done
}

// close stops intake and flushes any pending requests. After close, add
// returns errDraining. Safe to call once.
func (c *coalescer) close() {
	c.closed.Store(true)
	close(c.quit)
	c.wg.Wait()
}

// run is the single writer goroutine: park until a request arrives,
// gather companions for it, flush, repeat.
func (c *coalescer) run() {
	defer c.wg.Done()
	for {
		select {
		case req := <-c.in:
			c.gather(req)
		case <-c.quit:
			c.drainPending()
			return
		}
	}
}

// gather accumulates requests behind first until the batch holds
// maxBatch items or first has waited maxWait, then flushes.
func (c *coalescer) gather(first coalesceReq) {
	batch := []coalesceReq{first}
	n := len(first.items)
	timer := time.NewTimer(c.maxWait)
	defer timer.Stop()
	for n < c.maxBatch {
		select {
		case req := <-c.in:
			batch = append(batch, req)
			n += len(req.items)
		case <-timer.C:
			c.flush(batch)
			return
		case <-c.quit:
			// Drain was requested mid-gather: flush what we have now so
			// the blocked callers get their acknowledgements, then let
			// run's quit arm collect any last racers.
			c.flush(batch)
			return
		}
	}
	c.flush(batch)
}

// drainPending flushes requests that won the race into c.in while quit
// was closing. Their callers are still blocked on done and must hear an
// outcome.
func (c *coalescer) drainPending() {
	for {
		select {
		case req := <-c.in:
			c.flush([]coalesceReq{req})
		default:
			return
		}
	}
}

// flush commits one gathered batch. Requests carrying an id the backend
// already holds — or one an earlier request in the same batch claimed —
// are rejected before the AddBatch, so the flush itself cannot fail on
// duplicates and commits as one published version. If AddBatch still
// fails (extraction error), every accepted request hears that error:
// the batch may have partially applied, and an error acknowledgement
// truthfully reports "outcome unknown, retry".
func (c *coalescer) flush(batch []coalesceReq) {
	accepted := batch[:0:0]
	var items []walrus.BatchItem
	claimed := make(map[string]bool)
	for _, req := range batch {
		reject := error(nil)
		own := make(map[string]bool, len(req.items))
		for _, it := range req.items {
			if _, dup := c.backend.RegionsOf(it.ID); dup || claimed[it.ID] || own[it.ID] {
				reject = fmt.Errorf("serve: image %q %w", it.ID, walrus.ErrDuplicateID)
				break
			}
			own[it.ID] = true
		}
		if reject != nil {
			c.m.coalesceRejects.Inc()
			req.done <- reject
			continue
		}
		for _, it := range req.items {
			claimed[it.ID] = true
		}
		accepted = append(accepted, req)
		items = append(items, req.items...)
	}
	if len(accepted) == 0 {
		return
	}
	start := obs.Clock()
	err := c.backend.AddBatch(items, c.workers)
	c.m.coalesceFlushes.Inc()
	c.m.coalesceBatch.Observe(float64(len(items)))
	c.m.coalesceFlushSec.Observe(obs.Since(start).Seconds())
	if err == nil {
		c.m.coalescedWrites.Add(uint64(len(items)))
	}
	for _, req := range accepted {
		req.done <- err
	}
}
