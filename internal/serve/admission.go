package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"walrus/internal/obs"
)

// errSaturated reports a request shed because every admission slot was
// busy and the wait queue was at its bound. Handlers map it to 429 with
// a Retry-After hint.
var errSaturated = errors.New("serve: server saturated, admission queue full")

// admission is the bounded queue in front of the request worker slots.
// At most cap(slots) requests run concurrently; at most queueLimit more
// wait for a slot; everything beyond that is shed immediately. Shedding
// at the edge keeps the engine's worker pool at a fixed concurrency
// instead of collapsing under a convoy of half-finished requests.
type admission struct {
	slots      chan struct{} // filled token = one running request
	queueLimit int
	queued     atomic.Int64
	m          *metrics
}

func newAdmission(slots, queueLimit int, m *metrics) *admission {
	return &admission{slots: make(chan struct{}, slots), queueLimit: queueLimit, m: m}
}

// acquire takes an admission slot, waiting in the bounded queue if none
// is free. It returns errSaturated when the queue is full, or the
// context's error if the deadline expires while queued. A nil return
// must be paired with release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.m.admitted.Inc()
		a.m.active.Add(1)
		return nil
	default:
	}
	if a.queued.Add(1) > int64(a.queueLimit) {
		a.queued.Add(-1)
		a.m.shed.Inc()
		return errSaturated
	}
	a.m.queueDepth.Add(1)
	start := obs.Clock()
	select {
	case a.slots <- struct{}{}:
		a.queued.Add(-1)
		a.m.queueDepth.Add(-1)
		a.m.admissionWait.Observe(obs.Since(start).Seconds())
		a.m.admitted.Inc()
		a.m.active.Add(1)
		return nil
	case <-ctx.Done():
		a.queued.Add(-1)
		a.m.queueDepth.Add(-1)
		a.m.deadlineDrops.Inc()
		return ctx.Err()
	}
}

// release returns the slot taken by a successful acquire.
func (a *admission) release() {
	<-a.slots
	a.m.active.Add(-1)
}

// depth reports the current wait-queue depth (for /v1/stats; the gauge
// serves the metrics path, this serves the JSON one even with metrics
// off).
func (a *admission) depth() int { return int(a.queued.Load()) }

// running reports the number of requests currently holding a slot.
func (a *admission) running() int { return len(a.slots) }
