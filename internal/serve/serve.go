package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"walrus"
	"walrus/internal/imgio"
	"walrus/internal/obs"
	"walrus/internal/parallel"
	"walrus/internal/region"
)

// Backend is the engine surface the server drives. Both *walrus.DB and
// *walrus.Sharded satisfy it, so one server fronts either layout; Open
// picks the right one from the on-disk format.
type Backend interface {
	AddBatch(items []walrus.BatchItem, workers int) error
	Remove(id string) (bool, error)
	QueryContext(ctx context.Context, im *imgio.Image, p walrus.QueryParams) ([]walrus.Match, walrus.QueryStats, error)
	QueryByID(ctx context.Context, id string, p walrus.QueryParams) ([]walrus.Match, walrus.QueryStats, error)
	QuerySceneContext(ctx context.Context, im *imgio.Image, x, y, w, h int, p walrus.QueryParams) ([]walrus.Match, walrus.QueryStats, error)
	RegionsOf(id string) ([]region.Region, bool)
	Len() int
	NumRegions() int
	Flush() error
	Close() error
}

var (
	_ Backend = (*walrus.DB)(nil)
	_ Backend = (*walrus.Sharded)(nil)
)

// Open opens the database at dir, auto-detecting whether it is a
// sharded or single-store layout.
func Open(dir string) (Backend, error) {
	if walrus.IsSharded(dir) {
		return walrus.OpenSharded(dir)
	}
	return walrus.Open(dir)
}

// Config configures a Server. The zero value of every field except
// Backend has a usable default.
type Config struct {
	// Backend is the database to serve. Required.
	Backend Backend

	// MaxConcurrentQueries bounds the requests executing at once
	// (admission slots). 0 uses the machine's GOMAXPROCS.
	MaxConcurrentQueries int
	// QueueLimit bounds the requests waiting for a slot; beyond it
	// requests are shed with 429. 0 uses 4× the slot count.
	QueueLimit int
	// RequestTimeout is the per-request deadline, propagated through the
	// query pipeline. 0 uses 30s; negative disables deadlines.
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses. 0 uses 1s.
	RetryAfter time.Duration
	// MaxBodyBytes caps request body size. 0 uses 16 MiB.
	MaxBodyBytes int64

	// CoalesceMaxBatch is the most images one coalescer flush commits.
	// 0 uses 64.
	CoalesceMaxBatch int
	// CoalesceMaxWait bounds how long the oldest pending write waits
	// before a partial batch is flushed. 0 uses 2ms.
	CoalesceMaxWait time.Duration
	// IngestWorkers is the worker count passed to AddBatch for region
	// extraction. 0 uses the backend's Parallelism option.
	IngestWorkers int

	// DefaultParams are the query parameters requests start from before
	// applying their own overrides. Zero value uses DefaultQueryParams.
	DefaultParams walrus.QueryParams

	// Metrics, when non-nil, receives the walrus_serve_* instruments and
	// has the internal/obs mux (/metrics, /debug/...) mounted on the
	// server's own handler. It also enables live tracing: every admitted
	// request runs under a root span whose trace id is returned in the
	// X-Walrus-Trace response header and fetchable at /v1/trace/{id}.
	Metrics *obs.Registry
	// Logf, when non-nil, receives server-side error logs (e.g. response
	// encode failures after the status line was sent).
	Logf func(format string, args ...any)

	// Log, when non-nil, receives structured logs: one access record per
	// admitted request at info level, and slow-query records at warn.
	Log *slog.Logger
	// SlowQueryThreshold, when positive, logs every search whose engine
	// elapsed time meets it through Log — trace id, effective parameters
	// and the full candidate funnel including per-shard timings. 0
	// disables slow-query logging.
	SlowQueryThreshold time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentQueries <= 0 {
		c.MaxConcurrentQueries = parallel.Workers(0)
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 4 * c.MaxConcurrentQueries
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.CoalesceMaxBatch <= 0 {
		c.CoalesceMaxBatch = 64
	}
	if c.CoalesceMaxWait <= 0 {
		c.CoalesceMaxWait = 2 * time.Millisecond
	}
	if c.DefaultParams == (walrus.QueryParams{}) {
		c.DefaultParams = walrus.DefaultQueryParams()
	}
	return c
}

// Server is the HTTP front-end. Create with New, serve with Serve or
// ListenAndServe (or mount it anywhere as an http.Handler), stop with
// Drain.
type Server struct {
	cfg     Config
	backend Backend
	adm     *admission
	coal    *coalescer
	mux     *http.ServeMux
	m       *metrics

	draining atomic.Bool

	mu sync.Mutex
	hs *http.Server // the Serve/ListenAndServe server, for Drain's Shutdown
}

// New builds a Server over cfg.Backend. The caller owns nothing after
// this: Drain flushes and closes the backend.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("serve: Config.Backend is required")
	}
	cfg = cfg.withDefaults()
	m := newMetrics(cfg.Metrics)
	s := &Server{
		cfg:     cfg,
		backend: cfg.Backend,
		adm:     newAdmission(cfg.MaxConcurrentQueries, cfg.QueueLimit, m),
		coal:    newCoalescer(cfg.Backend, cfg.CoalesceMaxBatch, cfg.CoalesceMaxWait, cfg.IngestWorkers, m),
		mux:     http.NewServeMux(),
		m:       m,
	}
	s.mux.HandleFunc("POST /v1/images", s.admitted(m.ingestRequests, s.handleIngest))
	s.mux.HandleFunc("DELETE /v1/images/{id}", s.admitted(m.deleteRequests, s.handleDelete))
	s.mux.HandleFunc("POST /v1/search", s.admitted(m.searchRequests, s.handleSearch))
	s.mux.HandleFunc("GET /v1/search", s.admitted(m.searchRequests, s.handleSearch))
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	if cfg.Metrics != nil {
		oh := obs.Handler(cfg.Metrics)
		s.mux.Handle("GET /metrics", oh)
		s.mux.Handle("GET /debug/", oh)
	}
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Serve accepts connections on ln until Drain. It returns nil after a
// graceful drain.
func (s *Server) Serve(ln net.Listener) error {
	hs := &http.Server{Handler: s}
	s.mu.Lock()
	s.hs = hs
	s.mu.Unlock()
	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listening on %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Drain gracefully stops the server: new requests are refused (readyz
// flips to 503, handlers answer 503), in-flight requests run to
// completion — queries finish against their pinned snapshots, pending
// writes are flushed and acknowledged — then the backend is flushed and
// closed. An acknowledged write is therefore never lost: its AddBatch
// committed before its 2xx, and the backend flush happens strictly
// after the coalescer stops. ctx bounds the wait for in-flight
// requests. Drain is idempotent; only the first call does the work.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.m.draining.Set(1)
	s.m.drains.Inc()
	s.mu.Lock()
	hs := s.hs
	s.mu.Unlock()
	var firstErr error
	if hs != nil {
		if err := hs.Shutdown(ctx); err != nil {
			firstErr = fmt.Errorf("serve: shutdown: %w", err)
		}
	}
	s.coal.close()
	if err := s.backend.Flush(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("serve: flushing backend: %w", err)
	}
	if err := s.backend.Close(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("serve: closing backend: %w", err)
	}
	return firstErr
}

// admitted wraps a handler with the production envelope: drain check,
// per-request deadline, admission control, live request span (trace id
// on the response, context-propagated into the engine), latency
// accounting and the access log.
func (s *Server) admitted(reqs *obs.Counter, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.fail(w, errDraining)
			return
		}
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if err := s.adm.acquire(r.Context()); err != nil {
			s.fail(w, err)
			return
		}
		defer s.adm.release()
		reqs.Inc()
		start := obs.Clock()
		var span *obs.Span
		if s.cfg.Metrics != nil {
			span = s.cfg.Metrics.StartSpan("request")
			// The trace id goes on the wire before the handler runs, so even
			// failed requests hand the client a handle into /v1/trace/{id}.
			w.Header().Set("X-Walrus-Trace", obs.FormatTraceID(span.TraceID()))
			r = r.WithContext(obs.ContextWithSpan(r.Context(), span))
		}
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		span.SetAttr("status", int64(sw.code()))
		span.End()
		elapsed := obs.Since(start)
		s.m.requestSeconds.Observe(elapsed.Seconds())
		if s.cfg.Log != nil {
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.code()),
				slog.Duration("elapsed", elapsed),
			}
			if span != nil {
				attrs = append(attrs, slog.String("trace", obs.FormatTraceID(span.TraceID())))
			}
			s.cfg.Log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		}
	}
}

// statusWriter captures the response status for the access log and the
// request span; code() defaults to 200 when the handler never called
// WriteHeader explicitly.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// handleTrace serves the live span tree of one trace id, as returned in
// the X-Walrus-Trace header. The span ring is the whole trace store, so
// old traces expire as the ring wraps; walrus_obs_spans_dropped_total
// counts what has been lost.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Metrics == nil {
		s.failStatus(w, http.StatusNotFound, "tracing disabled: server runs without a metrics registry")
		return
	}
	id, err := obs.ParseTraceID(r.PathValue("id"))
	if err != nil {
		s.failStatus(w, http.StatusBadRequest, err.Error())
		return
	}
	spans := s.cfg.Metrics.Tracer().TraceSpans(id)
	if len(spans) == 0 {
		s.failStatus(w, http.StatusNotFound, "trace not found (it may have expired from the span ring)")
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"trace": obs.FormatTraceID(id),
		"spans": spans,
	})
}

// ingestPayload is the JSON batch-ingest body: PPM bytes are base64 in
// the wire form, decoded transparently by encoding/json.
type ingestPayload struct {
	Images []struct {
		ID  string `json:"id"`
		PPM []byte `json:"ppm"`
	} `json:"images"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var items []walrus.BatchItem
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var payload ingestPayload
		if err := json.NewDecoder(r.Body).Decode(&payload); err != nil {
			s.failStatus(w, http.StatusBadRequest, "decoding JSON body: "+err.Error())
			return
		}
		if len(payload.Images) == 0 {
			s.failStatus(w, http.StatusBadRequest, "empty image batch")
			return
		}
		for _, img := range payload.Images {
			if img.ID == "" {
				s.failStatus(w, http.StatusBadRequest, "image with empty id")
				return
			}
			im, err := imgio.DecodePPM(bytes.NewReader(img.PPM))
			if err != nil {
				s.failStatus(w, http.StatusBadRequest, fmt.Sprintf("image %q: %v", img.ID, err))
				return
			}
			items = append(items, walrus.BatchItem{ID: img.ID, Image: im})
		}
	} else {
		id := r.URL.Query().Get("id")
		if id == "" {
			s.failStatus(w, http.StatusBadRequest, "missing id parameter")
			return
		}
		im, err := imgio.DecodePPM(r.Body)
		if err != nil {
			s.failStatus(w, http.StatusBadRequest, "decoding PPM body: "+err.Error())
			return
		}
		items = []walrus.BatchItem{{ID: id, Image: im}}
	}
	if err := s.coal.add(coalesceReq{items: items, done: make(chan error, 1)}); err != nil {
		s.fail(w, err)
		return
	}
	ids := make([]string, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	s.writeJSON(w, http.StatusCreated, map[string]any{"added": len(ids), "ids": ids})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok, err := s.backend.Remove(id)
	if err != nil {
		s.fail(w, err)
		return
	}
	if !ok {
		s.fail(w, fmt.Errorf("serve: image %q: %w", id, walrus.ErrUnknownID))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"removed": id})
}

// matchResult is one search hit on the wire.
type matchResult struct {
	ID              string  `json:"id"`
	Similarity      float64 `json:"similarity"`
	MatchingRegions int     `json:"matching_regions"`
}

// searchResponse is the /v1/search reply. Explain is present only when
// the request asked for explain=1: the stage-by-stage candidate funnel
// of this query.
type searchResponse struct {
	Matches []matchResult `json:"matches"`
	Stats   struct {
		QueryRegions     int     `json:"query_regions"`
		RegionsRetrieved int     `json:"regions_retrieved"`
		CandidateImages  int     `json:"candidate_images"`
		ElapsedSeconds   float64 `json:"elapsed_seconds"`
	} `json:"stats"`
	Explain *walrus.QueryTrace `json:"explain,omitempty"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	p := s.cfg.DefaultParams
	var parseErr error
	getFloat := func(key string, dst *float64) {
		if v := q.Get(key); v != "" && parseErr == nil {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 {
				parseErr = fmt.Errorf("bad %s=%q", key, v)
				return
			}
			*dst = f
		}
	}
	getFloat("epsilon", &p.Epsilon)
	getFloat("tau", &p.Tau)
	if q.Get("threshold") != "" { // alias for tau
		getFloat("threshold", &p.Tau)
	}
	if v := q.Get("k"); v != "" && parseErr == nil {
		k, err := strconv.Atoi(v)
		if err != nil || k < 0 {
			parseErr = fmt.Errorf("bad k=%q", v)
		} else {
			p.Limit = k
		}
	}
	if v := q.Get("refine"); v != "" && parseErr == nil {
		b, err := strconv.ParseBool(v)
		if err != nil {
			parseErr = fmt.Errorf("bad refine=%q", v)
		} else {
			p.Refine = b
		}
	}
	if v := q.Get("prefilter"); v != "" && parseErr == nil {
		b, err := strconv.ParseBool(v)
		if err != nil {
			parseErr = fmt.Errorf("bad prefilter=%q", v)
		} else {
			p.Prefilter = b
		}
	}
	if v := q.Get("nocache"); v != "" && parseErr == nil {
		b, err := strconv.ParseBool(v)
		if err != nil {
			parseErr = fmt.Errorf("bad nocache=%q", v)
		} else {
			p.NoCache = b
		}
	}
	explain := false
	if v := q.Get("explain"); v != "" && parseErr == nil {
		b, err := strconv.ParseBool(v)
		if err != nil {
			parseErr = fmt.Errorf("bad explain=%q", v)
		} else {
			explain = b
		}
	}
	var rx, ry, rw, rh int
	hasRegion := q.Get("region") != ""
	if hasRegion && parseErr == nil {
		if n, err := fmt.Sscanf(q.Get("region"), "%d,%d,%d,%d", &rx, &ry, &rw, &rh); err != nil || n != 4 {
			parseErr = fmt.Errorf("bad region=%q (want x,y,w,h)", q.Get("region"))
		}
	}
	if parseErr != nil {
		s.failStatus(w, http.StatusBadRequest, parseErr.Error())
		return
	}

	// The funnel accumulator rides the context when the client asked for
	// it, or when slow-query logging may need it after the fact.
	ctx := r.Context()
	var qt *walrus.QueryTrace
	if explain || s.cfg.SlowQueryThreshold > 0 {
		ctx, qt = walrus.WithQueryTrace(ctx)
	}

	var (
		matches []walrus.Match
		stats   walrus.QueryStats
		err     error
	)
	if id := q.Get("id"); id != "" {
		if hasRegion {
			s.failStatus(w, http.StatusBadRequest, "region= cannot be combined with id=")
			return
		}
		matches, stats, err = s.backend.QueryByID(ctx, id, p)
	} else {
		if r.Method != http.MethodPost {
			s.failStatus(w, http.StatusBadRequest, "GET search requires id=; POST a PPM body otherwise")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		var im *imgio.Image
		im, err = imgio.DecodePPM(r.Body)
		if err != nil {
			s.failStatus(w, http.StatusBadRequest, "decoding PPM body: "+err.Error())
			return
		}
		if hasRegion {
			matches, stats, err = s.backend.QuerySceneContext(ctx, im, rx, ry, rw, rh, p)
		} else {
			matches, stats, err = s.backend.QueryContext(ctx, im, p)
		}
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	// A backend with a result cache reports each query's cache outcome;
	// surface it so clients and tests can tell a hit from a recompute.
	if stats.Cache != "" {
		w.Header().Set("X-Walrus-Cache", stats.Cache)
	}
	if qt != nil && s.cfg.SlowQueryThreshold > 0 && stats.Elapsed >= s.cfg.SlowQueryThreshold {
		s.m.slowQueries.Inc()
		s.logSlowQuery(r, qt, stats)
	}
	resp := searchResponse{Matches: make([]matchResult, len(matches))}
	if explain {
		resp.Explain = qt
	}
	for i, m := range matches {
		resp.Matches[i] = matchResult{ID: m.ID, Similarity: m.Similarity, MatchingRegions: m.MatchingRegions}
	}
	resp.Stats.QueryRegions = stats.QueryRegions
	resp.Stats.RegionsRetrieved = stats.RegionsRetrieved
	resp.Stats.CandidateImages = stats.CandidateImages
	resp.Stats.ElapsedSeconds = stats.Elapsed.Seconds()
	s.writeJSON(w, http.StatusOK, resp)
}

// logSlowQuery emits one structured slow-query record: trace id,
// effective parameters, the funnel's totals and each shard's share of
// the work, so a slow search is diagnosable from the log line alone.
func (s *Server) logSlowQuery(r *http.Request, qt *walrus.QueryTrace, stats walrus.QueryStats) {
	if s.cfg.Log == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("trace", qt.TraceID),
		slog.Duration("elapsed", stats.Elapsed),
		slog.Float64("epsilon", qt.Params.Epsilon),
		slog.Float64("tau", qt.Params.Tau),
		slog.Int("limit", qt.Params.Limit),
		slog.Bool("refine", qt.Params.Refine),
		slog.Int("query_regions", qt.QueryRegions),
		slog.Int("regions_retrieved", stats.RegionsRetrieved),
		slog.Int("candidates", stats.CandidateImages),
		slog.Int("matches", qt.Matches),
	}
	for _, sh := range qt.Shards {
		attrs = append(attrs, slog.Group(fmt.Sprintf("shard%d", sh.Shard),
			slog.Int64("probe_us", sh.ProbeNS/1000),
			slog.Int64("score_us", sh.ScoreNS/1000),
			slog.Int("candidates", sh.CandidateImages),
			slog.Int("matches", sh.Matches)))
	}
	s.cfg.Log.LogAttrs(r.Context(), slog.LevelWarn, "slow query", attrs...)
}

// statsResponse is the /v1/stats reply.
type statsResponse struct {
	Images         int      `json:"images"`
	Regions        int      `json:"regions"`
	Sharded        bool     `json:"sharded"`
	Shards         int      `json:"shards,omitempty"`
	Version        uint64   `json:"version,omitempty"`
	VersionVector  []uint64 `json:"version_vector,omitempty"`
	ActiveRequests int      `json:"active_requests"`
	QueuedRequests int      `json:"queued_requests"`
	Draining       bool     `json:"draining"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{
		Images:         s.backend.Len(),
		Regions:        s.backend.NumRegions(),
		ActiveRequests: s.adm.running(),
		QueuedRequests: s.adm.depth(),
		Draining:       s.draining.Load(),
	}
	switch b := s.backend.(type) {
	case *walrus.DB:
		resp.Version = b.Version()
	case *walrus.Sharded:
		resp.Sharded = true
		resp.Shards = b.Shards()
		resp.VersionVector = b.VersionVector()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// statusFor maps engine and serving errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, walrus.ErrDuplicateID):
		return http.StatusConflict
	case errors.Is(err, walrus.ErrUnknownID):
		return http.StatusNotFound
	case errors.Is(err, errSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) fail(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	s.failStatus(w, status, err.Error())
}

func (s *Server) failStatus(w http.ResponseWriter, status int, msg string) {
	s.m.requestErrors.Inc()
	s.writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already on the wire: an encode failure here can
	// only be logged, not turned into a different response.
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("serve: encoding response: %v", err)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
