// Package serve is the production HTTP front-end of the WALRUS engine:
// a stdlib-only net/http service over a *walrus.DB or *walrus.Sharded
// backend with the behaviors a network edge needs beyond routing.
//
//   - Admission control: a fixed pool of request slots fronted by a
//     bounded wait queue. When every slot is busy and the queue is full,
//     requests are shed immediately with 429 and a Retry-After hint
//     instead of piling onto the worker pool; queue depth, waits and
//     sheds are exported in the walrus_serve_* metrics namespace.
//   - Deadlines: every admitted request carries a context deadline that
//     propagates into the staged query pipeline (probe and score tasks
//     check it), so an expired request stops consuming workers.
//   - Write coalescing: concurrent ingests are batched into one
//     AddBatch per flush — bounded by batch size and by the age of the
//     oldest pending write — so each flush publishes exactly one catalog
//     version per database (per shard for sharded backends) and the
//     copy-on-write publish cost is amortized across writers.
//   - Graceful drain: Drain stops accepting work, waits for in-flight
//     requests (queries finish against their pinned snapshots), flushes
//     the coalescer, then flushes and closes the backend. A write is
//     acknowledged only after its flush commits, so an acknowledged
//     write is never lost across a drain.
//
// Endpoints:
//
//	POST   /v1/images            PPM body (?id=...) or JSON batch
//	POST   /v1/search            PPM body; ?id= queries an indexed image
//	GET    /v1/search            ?id= only
//	DELETE /v1/images/{id}       remove an image
//	GET    /v1/stats             backend + serving statistics
//	GET    /healthz              liveness (always 200 while the process runs)
//	GET    /readyz               readiness (503 once draining)
//	GET    /metrics, /debug/...  the internal/obs mux, when a registry is set
package serve

// The serving layer is instrumented, so its wall-clock reads route
// through the annotated obs clock helpers like every other instrumented
// package.
//
//walrus:lint-scope obs
