package histogram

import (
	"math"
	"testing"

	"walrus/internal/imgio"
)

func solid(r, g, b float64) *imgio.Image {
	im := imgio.New(32, 32, 3)
	im.FillRGB(r, g, b)
	return im
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{BinsPerChannel: 1}); err == nil {
		t.Error("accepted 1 bin")
	}
	if _, err := New(Options{BinsPerChannel: 99}); err == nil {
		t.Error("accepted 99 bins")
	}
}

func TestHistogramNormalized(t *testing.T) {
	h, err := Histogram(solid(0.9, 0.1, 0.5), 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	nonzero := 0
	for _, v := range h {
		sum += v
		if v > 0 {
			nonzero++
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("histogram sums to %v", sum)
	}
	if nonzero != 1 {
		t.Fatalf("solid image fills %d bins", nonzero)
	}
	if _, err := Histogram(imgio.New(4, 4, 1), 4); err == nil {
		t.Error("Histogram accepted 1-channel image")
	}
}

func TestQueryRanking(t *testing.T) {
	for _, metric := range []Metric{L1, L2} {
		ix, err := New(Options{BinsPerChannel: 4, Metric: metric})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Add("red", solid(0.9, 0.1, 0.1)); err != nil {
			t.Fatal(err)
		}
		if err := ix.Add("blue", solid(0.1, 0.1, 0.9)); err != nil {
			t.Fatal(err)
		}
		if ix.Len() != 2 {
			t.Fatalf("Len = %d", ix.Len())
		}
		matches, err := ix.Query(solid(0.85, 0.15, 0.1), 2)
		if err != nil {
			t.Fatal(err)
		}
		if matches[0].ID != "red" || matches[0].Distance > matches[1].Distance {
			t.Fatalf("metric %v: %+v", metric, matches)
		}
	}
}

// TestHistogramBlindToLayout documents the known weakness: rearranging the
// same pixels leaves the histogram identical.
func TestHistogramBlindToLayout(t *testing.T) {
	left := imgio.New(32, 32, 3)
	right := imgio.New(32, 32, 3)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if x < 16 {
				left.SetRGB(x, y, 1, 0, 0)
				right.SetRGB(x, y, 0, 0, 1)
			} else {
				left.SetRGB(x, y, 0, 0, 1)
				right.SetRGB(x, y, 1, 0, 0)
			}
		}
	}
	hl, _ := Histogram(left, 4)
	hr, _ := Histogram(right, 4)
	for i := range hl {
		if hl[i] != hr[i] {
			t.Fatal("histograms differ for rearranged pixels")
		}
	}
}

func TestQueryEdgeCases(t *testing.T) {
	ix, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m, err := ix.Query(solid(0, 0, 0), 0); err != nil || m != nil {
		t.Fatalf("k=0: %v %v", m, err)
	}
	if m, err := ix.Query(solid(0, 0, 0), 3); err != nil || len(m) != 0 {
		t.Fatalf("empty: %v %v", m, err)
	}
}
