// Package histogram implements a QBIC-style color-histogram baseline
// (Niblack et al., the earliest class of systems Section 2 of the WALRUS
// paper discusses). Each image is summarized by a normalized 3-D color
// histogram; query results are ranked by L1 or L2 histogram distance.
// Histograms discard all shape, texture and location information, so
// images with similar color mixes but unrelated content collide — the
// classic failure mode motivating wavelet signatures.
package histogram

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"walrus/internal/imgio"
)

// Metric selects the histogram distance.
type Metric int

const (
	// L1 is the sum of absolute bin differences.
	L1 Metric = iota
	// L2 is the euclidean bin distance.
	L2
)

// Options configures a histogram index.
type Options struct {
	// BinsPerChannel quantizes each RGB channel into this many bins; the
	// histogram has BinsPerChannel³ cells.
	BinsPerChannel int
	// Metric is the ranking distance.
	Metric Metric
}

// DefaultOptions uses the common 4×4×4 = 64-bin histogram with L1.
func DefaultOptions() Options {
	return Options{BinsPerChannel: 4, Metric: L1}
}

// Match is one query result; lower distance is better.
type Match struct {
	ID       string
	Distance float64
}

type signature struct {
	id   string
	hist []float64
}

// Index is an in-memory histogram index, safe for concurrent use.
type Index struct {
	opts Options
	mu   sync.RWMutex
	sigs []signature
}

// New creates an empty index.
func New(opts Options) (*Index, error) {
	if opts.BinsPerChannel < 2 || opts.BinsPerChannel > 16 {
		return nil, fmt.Errorf("histogram: BinsPerChannel %d out of range [2,16]", opts.BinsPerChannel)
	}
	return &Index{opts: opts}, nil
}

// Len returns the number of indexed images.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.sigs)
}

// Histogram computes the normalized color histogram of an RGB image.
func Histogram(im *imgio.Image, binsPerChannel int) ([]float64, error) {
	if im.C != 3 {
		return nil, fmt.Errorf("histogram: image has %d channels, want 3", im.C)
	}
	b := binsPerChannel
	h := make([]float64, b*b*b)
	n := im.W * im.H
	r, g, bl := im.Plane(0), im.Plane(1), im.Plane(2)
	quant := func(v float64) int {
		i := int(v * float64(b))
		if i >= b {
			i = b - 1
		}
		if i < 0 {
			i = 0
		}
		return i
	}
	for i := 0; i < n; i++ {
		h[quant(r[i])*b*b+quant(g[i])*b+quant(bl[i])]++
	}
	for i := range h {
		h[i] /= float64(n)
	}
	return h, nil
}

// Add indexes an RGB image under id.
func (ix *Index) Add(id string, im *imgio.Image) error {
	h, err := Histogram(im, ix.opts.BinsPerChannel)
	if err != nil {
		return fmt.Errorf("histogram: indexing %q: %w", id, err)
	}
	ix.mu.Lock()
	ix.sigs = append(ix.sigs, signature{id: id, hist: h})
	ix.mu.Unlock()
	return nil
}

// Query returns the k indexed images with the smallest histogram distance.
func (ix *Index) Query(im *imgio.Image, k int) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	q, err := Histogram(im, ix.opts.BinsPerChannel)
	if err != nil {
		return nil, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]Match, len(ix.sigs))
	for i := range ix.sigs {
		out[i] = Match{ID: ix.sigs[i].id, Distance: distance(q, ix.sigs[i].hist, ix.opts.Metric)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

func distance(a, b []float64, m Metric) float64 {
	total := 0.0
	for i := range a {
		d := a[i] - b[i]
		if m == L1 {
			total += math.Abs(d)
		} else {
			total += d * d
		}
	}
	if m == L2 {
		return math.Sqrt(total)
	}
	return total
}
