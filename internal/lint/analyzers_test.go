package lint

import "testing"

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, "determfix", Determinism)
}

// TestDeterminismScoping proves the analyzer stays silent for packages
// outside the pipeline that have not opted in, even when they contain
// would-be violations.
func TestDeterminismScoping(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir("testdata/src/determnoscope")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []*Analyzer{Determinism}); len(diags) != 0 {
		t.Errorf("determinism fired outside its scope:\n%s", fmtDiags(diags))
	}
}

func TestErrSinkFixture(t *testing.T) {
	runFixture(t, "errsinkfix", ErrSink)
}

func TestCtxFlowFixture(t *testing.T) {
	runFixture(t, "ctxfix", CtxFlow)
}

// TestCtxFlowScoping proves ctxflow stays silent for packages outside
// the request path that have not opted in (determnoscope has no scope
// directive for it).
func TestCtxFlowScoping(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir("testdata/src/determnoscope")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []*Analyzer{CtxFlow}); len(diags) != 0 {
		t.Errorf("ctxflow fired outside its scope:\n%s", fmtDiags(diags))
	}
}

func TestGoroLeakFixture(t *testing.T) {
	runFixture(t, "gorofix", GoroLeak)
}

func TestHotAllocFixture(t *testing.T) {
	runFixture(t, "hotfix", HotAlloc)
}

// TestHotAllocScoping proves hotalloc only fires in files carrying the
// //walrus:lint-hot directive: a package with none is silent even when
// it allocates in loops.
func TestHotAllocScoping(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir("testdata/src/determnoscope")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []*Analyzer{HotAlloc}); len(diags) != 0 {
		t.Errorf("hotalloc fired without a lint-hot directive:\n%s", fmtDiags(diags))
	}
}

func TestLockDisciplineFixture(t *testing.T) {
	runFixture(t, "lockfix", LockDiscipline)
}

func TestParallelConvFixture(t *testing.T) {
	runFixture(t, "parfix", ParallelConv)
}

func TestObsFixture(t *testing.T) {
	runFixture(t, "obsfix", Obs)
}

func TestSnapshotSafeFixture(t *testing.T) {
	runFixture(t, "snapfix", SnapshotSafe)
}

// TestSnapshotSafeScoping proves the analyzer stays silent for packages
// outside the module root that have not opted in, even when they define
// a type named Snapshot.
func TestSnapshotSafeScoping(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir("testdata/src/determnoscope")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []*Analyzer{SnapshotSafe}); len(diags) != 0 {
		t.Errorf("snapshotsafe fired outside its scope:\n%s", fmtDiags(diags))
	}
}

// TestObsScoping proves the obs analyzer stays silent for packages outside
// the instrumented set that have not opted in (determnoscope reads the
// clock directly and carries no scope directive for obs).
func TestObsScoping(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir("testdata/src/determnoscope")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []*Analyzer{Obs}); len(diags) != 0 {
		t.Errorf("obs fired outside its scope:\n%s", fmtDiags(diags))
	}
}

// TestIgnoreDirectives exercises the //walrus:lint-ignore escape hatch:
// documented ignores suppress, undocumented ones are diagnostics
// themselves (and suppress nothing), unknown analyzers and malformed
// directives are reported.
func TestIgnoreDirectives(t *testing.T) {
	runFixture(t, "ignorefix", Determinism)
}

func TestAllAnalyzersRegistered(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"ctxflow", "determinism", "errsink", "goroleak", "hotalloc", "lockdiscipline", "obs", "parallelconv", "snapshotsafe"} {
		if !names[want] {
			t.Errorf("All() is missing analyzer %q", want)
		}
	}
}
