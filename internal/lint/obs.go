package lint

import "go/ast"

// obsScope lists the module-relative package paths that carry internal/obs
// instrumentation. Inside them, every wall-clock read must flow through an
// annotated clock helper (obs.Clock / obs.Since, or the root package's
// statsClock / statsSince) so that timing stays auditable in one place and
// the deterministic pipeline cannot silently grow clock dependence.
// internal/experiments and the cmd/ front-ends stay out of scope: measuring
// wall-clock time is their purpose, not a side effect.
var obsScope = map[string]bool{
	"":                  true, // module root: Query/ingest phase timing
	"internal/obs":      true,
	"internal/store":    true,
	"internal/wal":      true,
	"internal/parallel": true,
	"internal/rstar":    true,
}

// wallClockCalls are the time package entry points the obs analyzer polices.
var wallClockCalls = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

// clockExempt is the shared exemption list: module-relative package path to
// the names of its sanctioned clock helpers, the only functions in an
// instrumented (or deterministic) package allowed to read the wall clock
// directly. Both the obs analyzer and the determinism analyzer consult it,
// so a helper is annotated once here instead of growing a lint-ignore
// directive per call site. The testdata entries back the analyzer fixtures.
var clockExempt = map[string]map[string]bool{
	"":             {"statsClock": true, "statsSince": true},
	"internal/obs": {"Clock": true, "Since": true},

	"internal/lint/testdata/src/obsfix":    {"sanctionedClock": true, "sanctionedSince": true},
	"internal/lint/testdata/src/determfix": {"sanctionedClock": true},
}

// Obs forbids direct wall-clock reads in instrumented packages: timing must
// route through the clock helpers named in clockExempt so instrumentation
// overhead and clock usage stay centralized and auditable. Packages outside
// the default scope can opt in with //walrus:lint-scope obs.
var Obs = &Analyzer{
	Name: "obs",
	Doc:  "route instrumentation timing through the annotated clock helpers (obs.Clock/obs.Since)",
	Run:  runObs,
}

func runObs(pass *Pass) {
	pkg := pass.Pkg
	if !obsScope[pkg.Rel] && !pkg.ScopedFor(pass.analyzer.Name) {
		return
	}
	exempt := clockExempt[pkg.Rel]
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && exempt[fd.Name.Name] {
				continue // a sanctioned clock helper: the one place reads belong
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if p := funcPath(calleeOf(pkg.Info, call)); wallClockCalls[p] {
					pass.Reportf(call.Pos(), "direct %s in instrumented package %s: route timing through an annotated clock helper (obs.Clock/obs.Since) or add the enclosing function to the lint clockExempt list", p, pkg.ImportPath)
				}
				return true
			})
		}
	}
}
