package lint

import (
	"go/ast"
)

// ParallelConv enforces the internal/parallel calling convention: a
// closure handed to a worker pool must communicate results by writing the
// slot indexed by its own parameter (out[i] = ...), never by mutating
// shared captured state — shared writes race, and even when locked their
// order depends on the goroutine schedule, which breaks the repo's
// determinism contract.
var ParallelConv = &Analyzer{
	Name: "parallelconv",
	Doc:  "flag parallel-pool closures mutating shared captured state instead of per-index slots",
	Run:  runParallelConv,
}

func runParallelConv(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if rel, inMod := cutModPrefix(pkg.ModPath, fn.Pkg().Path()); !inMod || rel != "internal/parallel" {
				return true
			}
			for _, arg := range call.Args {
				fl, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				for _, w := range sharedClosureWrites(pkg.Info, fl) {
					pass.Reportf(w.pos, "parallel closure %s captured %q: worker order is nondeterministic; write a slot indexed by the closure parameter instead", w.verb, w.name)
				}
			}
			return true
		})
	}
}
