package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sharedLoader builds one Loader per test binary: fixture packages and
// the real module share its FileSet, export-data cache, and type-checked
// package memo, which keeps the suite fast.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// expectation is one `// want` comment: a regexp that must match a
// diagnostic at file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRe matches `// want` and `// want+N` comments; backtick-quoted
// regexps follow.
var (
	wantRe      = regexp.MustCompile(`//\s*want(\+\d+)?\s+(.*)$`)
	wantQuoteRe = regexp.MustCompile("`([^`]+)`")
)

// parseWants scans the fixture package's files for `// want` comments.
// A plain `// want` expects the diagnostic on its own line; `// want+N`
// expects it N lines below (for diagnostics on directive lines, which
// cannot carry a second trailing comment).
func parseWants(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			target := i + 1 // 1-based
			if m[1] != "" {
				n, err := strconv.Atoi(m[1][1:])
				if err != nil {
					t.Fatalf("%s:%d: bad want offset %q", path, i+1, m[1])
				}
				target += n
			}
			quotes := wantQuoteRe.FindAllStringSubmatch(m[2], -1)
			if len(quotes) == 0 {
				t.Fatalf("%s:%d: want comment without a backtick-quoted regexp", path, i+1)
			}
			for _, q := range quotes {
				re, err := regexp.Compile(q[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", path, i+1, err)
				}
				out = append(out, expectation{file: path, line: target, re: re})
			}
		}
	}
	return out
}

// runFixture lints one testdata package with the given analyzers and
// checks the resulting diagnostics against the fixture's want comments:
// every want must be matched by exactly one diagnostic and every
// diagnostic must be claimed by a want.
func runFixture(t *testing.T, fixture string, analyzers ...*Analyzer) {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags := Run([]*Package{pkg}, analyzers)
	wants := parseWants(t, pkg.Dir)

	claimed := make([]bool, len(diags))
	for _, w := range wants {
		matched := false
		for i, d := range diags {
			if claimed[i] || d.Line != w.line || !sameFile(d.File, w.file) {
				continue
			}
			if w.re.MatchString(d.Message) {
				claimed[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !claimed[i] {
			t.Errorf("%s:%d: unexpected diagnostic [%s] %s", d.File, d.Line, d.Analyzer, d.Message)
		}
	}
}

// sameFile compares diagnostic and expectation paths, which may differ
// in absoluteness.
func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	if err1 != nil || err2 != nil {
		return filepath.Base(a) == filepath.Base(b)
	}
	return aa == bb
}

// fmtDiags renders diagnostics for failure messages.
func fmtDiags(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "  %s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	}
	return sb.String()
}
