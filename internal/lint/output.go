package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// WriteText prints diagnostics in the conventional file:line:col form,
// with paths relative to root when possible.
func WriteText(w io.Writer, root string, diags []Diagnostic) error {
	for _, d := range diags {
		file := d.File
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			file = rel
		}
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", file, d.Line, d.Col, d.Analyzer, d.Message); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON prints diagnostics as a JSON array (always an array, never
// null, so `jq length` works on a clean run).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// SARIF 2.1.0 skeleton — the minimal subset code-scanning UIs consume:
// one run, one tool with a rule per analyzer, one result per diagnostic
// with a physical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF prints diagnostics as a SARIF 2.1.0 log. Paths are emitted
// relative to root (slash-separated URIs) when possible; the rule table
// lists the analyzers that ran, plus the directive-hygiene
// pseudo-analyzer when it fired.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
		known[a.Name] = true
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		if !known[d.Analyzer] {
			rules = append(rules, sarifRule{ID: d.Analyzer, ShortDescription: sarifMessage{Text: "directive hygiene"}})
			known[d.Analyzer] = true
		}
		uri := d.File
		if rel, err := filepath.Rel(root, uri); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "walrus-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
