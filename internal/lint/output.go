package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// WriteText prints diagnostics in the conventional file:line:col form,
// with paths relative to root when possible.
func WriteText(w io.Writer, root string, diags []Diagnostic) error {
	for _, d := range diags {
		file := d.File
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			file = rel
		}
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", file, d.Line, d.Col, d.Analyzer, d.Message); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON prints diagnostics as a JSON array (always an array, never
// null, so `jq length` works on a clean run).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
