package lint

import (
	"go/ast"
	"go/types"
)

// errSinkPackages are the module-relative package paths forming the
// durability surface: every error produced by their exported API must be
// observed by callers.
var errSinkPackages = map[string]bool{
	"internal/store": true, // store.File, pager, buffer pool, heap
	"internal/wal":   true,
	"internal/imgio": true, // PPM/PNG I/O
}

// stdlibSinkPackages extends the surface to the serving layer's stdlib
// edges: a dropped http.ResponseWriter write, json.Encoder encode, or
// http.Server shutdown error silently truncates a response or a drain,
// which is as invisible to clients as a dropped fsync is to recovery.
// Paths here are absolute import paths, not module-relative ones.
var stdlibSinkPackages = map[string]bool{
	"net/http":      true, // ResponseWriter.Write, Server.Shutdown/Serve/Close
	"encoding/json": true, // Encoder.Encode, Decoder.Decode
}

// ErrSink flags discarded errors from the durability and serving
// surfaces: calls on store.File implementations, pager/bufpool/heap/WAL
// methods, imgio I/O functions, and net/http / encoding/json APIs whose
// error result is dropped (bare expression statement, defer/go
// statement, or assignment to the blank identifier).
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc:  "flag discarded errors from store.File, pager, bufpool, WAL, imgio, net/http, and encoding/json APIs",
	Run:  runErrSink,
}

func runErrSink(pass *Pass) {
	pkg := pass.Pkg
	fileIface := storeFileInterface(pkg)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				reportDropped(pass, fileIface, st.X, "")
			case *ast.DeferStmt:
				reportDropped(pass, fileIface, st.Call, "deferred ")
			case *ast.GoStmt:
				reportDropped(pass, fileIface, st.Call, "go ")
			case *ast.AssignStmt:
				checkBlankError(pass, fileIface, st)
			}
			return true
		})
	}
}

// reportDropped reports expr when it is a durability-surface call whose
// error results are discarded entirely.
func reportDropped(pass *Pass, fileIface *types.Interface, expr ast.Expr, how string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	name, on := surfaceCall(pass.Pkg, fileIface, call)
	if !on {
		return
	}
	if len(errorResults(pass.Pkg.Info, call)) == 0 {
		return
	}
	pass.Reportf(call.Pos(), "%scall to %s discards its error; the durability contract requires every %s error to be observed", how, name, name)
}

// checkBlankError reports assignments that send a durability-surface
// error result to the blank identifier.
func checkBlankError(pass *Pass, fileIface *types.Interface, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, on := surfaceCall(pass.Pkg, fileIface, call)
	if !on {
		return
	}
	for _, i := range errorResults(pass.Pkg.Info, call) {
		if i >= len(st.Lhs) {
			continue
		}
		if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(id.Pos(), "error from %s assigned to _; the durability contract requires every %s error to be observed", name, name)
		}
	}
}

// surfaceCall reports whether the call targets the durability surface and
// returns a short display name for it. A call is on the surface when its
// receiver's static type implements store.File (covering *os.File and
// every mock), or when the receiver's named type or the called function
// is declared in one of the errSinkPackages.
func surfaceCall(pkg *Package, fileIface *types.Interface, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn := calleeOf(pkg.Info, call)
	if fn == nil {
		return "", false
	}
	// Method call: classify by the receiver expression's static type.
	if selInfo, ok := pkg.Info.Selections[sel]; ok {
		recv := selInfo.Recv()
		if named := namedOf(recv); named != nil {
			name := named.Obj().Name() + "." + fn.Name()
			if onSurfacePkg(pkg, named.Obj().Pkg()) || onStdlibSinkPkg(named.Obj().Pkg()) {
				return name, true
			}
			if fileIface != nil && (types.Implements(recv, fileIface) ||
				types.Implements(types.NewPointer(recv), fileIface)) {
				return name, true
			}
			if iface, ok := recv.Underlying().(*types.Interface); ok && fileIface != nil && types.Implements(iface, fileIface) {
				return name, true
			}
		}
		return "", false
	}
	// Package-level function call: classify by the callee's package.
	if onSurfacePkg(pkg, fn.Pkg()) || onStdlibSinkPkg(fn.Pkg()) {
		return fn.Pkg().Name() + "." + fn.Name(), true
	}
	return "", false
}

// onStdlibSinkPkg reports whether p is one of the stdlib serving-surface
// packages.
func onStdlibSinkPkg(p *types.Package) bool {
	return p != nil && stdlibSinkPackages[p.Path()]
}

// namedOf unwraps pointers and returns the named type of t, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// onSurfacePkg reports whether p is one of the durability-surface
// packages of the module under analysis.
func onSurfacePkg(pkg *Package, p *types.Package) bool {
	if p == nil {
		return false
	}
	rel, ok := cutModPrefix(pkg.ModPath, p.Path())
	return ok && errSinkPackages[rel]
}

// cutModPrefix returns the module-relative form of path when it belongs
// to the module.
func cutModPrefix(modPath, path string) (string, bool) {
	if path == modPath {
		return "", true
	}
	if len(path) > len(modPath)+1 && path[:len(modPath)] == modPath && path[len(modPath)] == '/' {
		return path[len(modPath)+1:], true
	}
	return "", false
}

// storeFileInterface resolves the store.File interface type so errsink
// can classify arbitrary implementations (os.File, mocks) by behaviour.
// It looks through the package's import graph; nil when the package never
// pulls in internal/store.
func storeFileInterface(pkg *Package) *types.Interface {
	seen := make(map[*types.Package]bool)
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if rel, ok := cutModPrefix(pkg.ModPath, p.Path()); ok && rel == "internal/store" {
			if obj, ok := p.Scope().Lookup("File").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(pkg.Types)
}
