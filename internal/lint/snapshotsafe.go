package lint

import (
	"go/ast"
	"go/types"
)

// snapshotSafeScope is the default package set: the module root, where
// the Snapshot type lives. Other packages can opt in with
// //walrus:lint-scope snapshotsafe (the fixture does).
var snapshotSafeScope = map[string]bool{
	"": true,
}

// snapshotTypeNames are the named types making up a published snapshot.
// Methods of the snapshotMethodTypes are checked; expressions of any of
// these types are treated as immutable snapshot state.
var snapshotTypeNames = map[string]bool{
	"Snapshot":        true,
	"snapCore":        true,
	"ShardedSnapshot": true,
}

// snapshotMethodTypes are the receiver types whose methods must honor
// the snapshot contract. ShardedSnapshot pins one epoch-matched Snapshot
// per shard, so the cross-shard view is held to the same rules as each
// per-shard one.
var snapshotMethodTypes = map[string]bool{
	"Snapshot":        true,
	"ShardedSnapshot": true,
}

// mutexOpNames are the sync.Mutex/RWMutex methods a snapshot method may
// never call: snapshot reads are lock-free by contract.
var mutexOpNames = map[string]bool{
	"Lock": true, "Unlock": true,
	"RLock": true, "RUnlock": true,
	"TryLock": true, "TryRLock": true,
}

// SnapshotSafe machine-checks the snapshot-isolation contract of the
// root package: methods with a Snapshot or ShardedSnapshot receiver must
// not acquire (or release) any mutex — in particular db.mu or a shard's
// mu — and must not mutate snapshot state, i.e. assign, increment or
// delete through any expression of type Snapshot, snapCore or
// ShardedSnapshot. Published snapshots are immutable and read lock-free;
// a method that breaks either property reintroduces exactly the
// reader/writer races the snapshot layer removed.
var SnapshotSafe = &Analyzer{
	Name: "snapshotsafe",
	Doc:  "forbid mutex use and snapshot-state mutation inside Snapshot methods",
	Run:  runSnapshotSafe,
}

func runSnapshotSafe(pass *Pass) {
	pkg := pass.Pkg
	if !snapshotSafeScope[pkg.Rel] && !pkg.ScopedFor(pass.analyzer.Name) {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			_, typeName := receiverOf(pkg, fd)
			if !snapshotMethodTypes[typeName] {
				continue
			}
			checkSnapshotMethod(pass, fd, typeName)
		}
	}
}

func checkSnapshotMethod(pass *Pass, fd *ast.FuncDecl, typeName string) {
	pkg := pass.Pkg
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && mutexOpNames[sel.Sel.Name] && isMutexExpr(pkg.Info, sel.X) {
				pass.Reportf(n.Pos(), "snapshot methods are lock-free by contract: %s.%s must not acquire a mutex inside %s.%s",
					types.ExprString(sel.X), sel.Sel.Name, typeName, fd.Name.Name)
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && snapshotStateExpr(pkg.Info, n.Args[0]) {
					pass.Reportf(n.Pos(), "snapshot state is immutable: delete from %s mutates published snapshot state in %s.%s",
						types.ExprString(n.Args[0]), typeName, fd.Name.Name)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if snapshotStateExpr(pkg.Info, lhs) {
					pass.Reportf(lhs.Pos(), "snapshot state is immutable: %s is written inside %s.%s",
						types.ExprString(lhs), typeName, fd.Name.Name)
				}
			}
		case *ast.IncDecStmt:
			if snapshotStateExpr(pkg.Info, n.X) {
				pass.Reportf(n.Pos(), "snapshot state is immutable: %s is written inside %s.%s",
					types.ExprString(n.X), typeName, fd.Name.Name)
			}
		}
		return true
	})
}

// snapshotStateExpr reports whether writing through expr mutates
// snapshot state: some strict prefix of the selector/index chain has
// type Snapshot or snapCore (possibly behind pointers). The check is
// type- rather than name-based, so aliases like `core := s.core` are
// still caught.
func snapshotStateExpr(info *types.Info, expr ast.Expr) bool {
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			if isSnapshotType(info.TypeOf(e.X)) {
				return true
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// isSnapshotType unwraps pointers and reports whether t is one of the
// snapshot types.
func isSnapshotType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return snapshotTypeNames[n.Obj().Name()]
}

// isMutexExpr reports whether e is a sync.Mutex or sync.RWMutex value
// (possibly behind a pointer) — i.e. whether calling Lock on it is a
// real mutex acquisition rather than an unrelated method.
func isMutexExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
