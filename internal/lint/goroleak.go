package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak requires every go statement in non-test code to have a
// provable shutdown edge — evidence, visible in the same package, that
// the spawned goroutine terminates and is joined:
//
//   - WaitGroup join: the goroutine calls Done on a sync.WaitGroup the
//     package calls Wait on.
//   - Result handoff: the goroutine sends on a channel the package
//     receives from (the `go func() { errCh <- srv.Serve(ln) }()`
//     pattern — the send is the goroutine's last act and the receive is
//     the join).
//   - Join close: the goroutine closes a channel the package receives
//     from (`defer close(done)` + `<-done`).
//   - Quit signal: the goroutine receives from a channel the package
//     closes (`case <-quit:` worker loops joined by `close(quit)`).
//
// For `go m.run()` statements the callee's body is inlined one level
// when it is declared in the same package, so the coalescer and worker
// pool idioms prove themselves. Anything else needs
// //walrus:lint-ignore goroleak <reason> — an undocumented goroutine is
// exactly how a drain path rots into a leak.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "require a provable shutdown edge (WaitGroup join, channel handoff, or quit signal) for every go statement",
	Run:  runGoroLeak,
}

// joinEvidence is the package-wide join surface: the objects the package
// waits on, closes, or receives from anywhere in its non-test files.
type joinEvidence struct {
	wgWait  map[types.Object]bool // WaitGroups with a .Wait() call
	chClose map[types.Object]bool // channels passed to close()
	chRecv  map[types.Object]bool // channels received from
}

func runGoroLeak(pass *Pass) {
	pkg := pass.Pkg
	ev := collectJoinEvidence(pkg)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pkg, gs)
			if body == nil || !hasShutdownEdge(pkg, body, ev) {
				pass.Reportf(gs.Pos(), "goroutine has no provable shutdown edge (WaitGroup join, channel handoff, join close, or quit signal); join it or document with //walrus:lint-ignore goroleak <reason>")
			}
			return true
		})
	}
}

// goBody resolves the statements the spawned goroutine runs: the func
// literal's body, or — for `go m.run()` — the body of a callee declared
// in the same package (one level of inlining).
func goBody(pkg *Package, gs *ast.GoStmt) *ast.BlockStmt {
	if fl, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return fl.Body
	}
	fn := calleeOf(pkg.Info, gs.Call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkg.Types.Path() {
		return nil
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Pos() == fn.Pos() {
				return fd.Body
			}
		}
	}
	return nil
}

// collectJoinEvidence scans every file of the package for the join-side
// operations a goroutine's shutdown edge can anchor to.
func collectJoinEvidence(pkg *Package) joinEvidence {
	ev := joinEvidence{
		wgWait:  make(map[types.Object]bool),
		chClose: make(map[types.Object]bool),
		chRecv:  make(map[types.Object]bool),
	}
	info := pkg.Info
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && isWaitGroupExpr(info, sel.X) {
					if obj := refObj(info, sel.X); obj != nil {
						ev.wgWait[obj] = true
					}
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
						if obj := refObj(info, n.Args[0]); obj != nil {
							ev.chClose[obj] = true
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if obj := refObj(info, n.X); obj != nil {
						ev.chRecv[obj] = true
					}
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						if obj := refObj(info, n.X); obj != nil {
							ev.chRecv[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return ev
}

// hasShutdownEdge reports whether the goroutine body contains one of the
// accepted shutdown edges, matched by object identity against the
// package's join evidence.
func hasShutdownEdge(pkg *Package, body *ast.BlockStmt, ev joinEvidence) bool {
	info := pkg.Info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && isWaitGroupExpr(info, sel.X) {
				if obj := refObj(info, sel.X); obj != nil && ev.wgWait[obj] {
					found = true
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					if obj := refObj(info, n.Args[0]); obj != nil && ev.chRecv[obj] {
						found = true
					}
				}
			}
		case *ast.SendStmt:
			if obj := refObj(info, n.Chan); obj != nil && ev.chRecv[obj] {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := refObj(info, n.X); obj != nil && ev.chClose[obj] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// refObj resolves the object a channel or WaitGroup expression refers
// to: the variable for a plain identifier, the field for a selector
// (c.wg, s.done). Field objects are shared by every method of the type,
// which is what lets a Done in one method match a Wait in another.
func refObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.StarExpr:
		return refObj(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return refObj(info, e.X)
		}
	}
	return nil
}

// isWaitGroupExpr reports whether e has type sync.WaitGroup (possibly
// behind a pointer).
func isWaitGroupExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
