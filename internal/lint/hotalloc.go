package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc polices per-iteration allocation in files marked
// //walrus:lint-hot — the wavelet sliding-window DP, region clustering,
// and refine/score stages where the ROADMAP's raw-speed pass will live.
// Inside any loop body of a hot file (including closures submitted to
// the internal/parallel pools, which run once per task) it flags:
//
//   - make(...) — a fresh slice/map/channel every iteration;
//   - append(dst, ...) — growth reallocation unless dst was
//     preallocated with enough capacity, which the analyzer cannot
//     prove, so every hot-loop append is surfaced;
//   - slice and map composite literals;
//   - interface boxing: passing a concrete value to an interface
//     parameter, which escapes the value to the heap.
//
// Findings use position-free messages so the baseline file
// (.walrus-lint-baseline) can track existing debt across unrelated
// edits: a finding is only fatal once it is not in the baseline.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag per-iteration allocation and interface boxing in //walrus:lint-hot files",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	hot := pass.Pkg.HotFiles()
	if len(hot) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		if !hot[pass.Pkg.Fset.Position(f.Pos()).Filename] {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				ast.Walk(&hotVisitor{pass: pass}, fd.Body)
			}
		}
	}
}

// hotVisitor walks a hot function carrying the innermost enclosing loop
// (nil outside loops). Loop bodies are visited with a fresh visitor so
// the loop context nests correctly; closures handed to parallel.For and
// parallel.ForErr count as loop bodies because the pool runs them once
// per task.
type hotVisitor struct {
	pass  *Pass
	loop  ast.Node
	inLit bool // inside a flagged composite literal; suppress nested reports
}

func (v *hotVisitor) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.ForStmt:
		if n.Init != nil {
			ast.Walk(v, n.Init)
		}
		if n.Cond != nil {
			ast.Walk(v, n.Cond)
		}
		if n.Post != nil {
			ast.Walk(v, n.Post)
		}
		ast.Walk(&hotVisitor{pass: v.pass, loop: n}, n.Body)
		return nil
	case *ast.RangeStmt:
		ast.Walk(v, n.X)
		ast.Walk(&hotVisitor{pass: v.pass, loop: n}, n.Body)
		return nil
	case *ast.CallExpr:
		if fl, ok := fanOutClosure(v.pass.Pkg.Info, n); ok {
			for _, arg := range n.Args[:2] {
				ast.Walk(v, arg)
			}
			ast.Walk(&hotVisitor{pass: v.pass, loop: n}, fl.Body)
			return nil
		}
		if v.loop != nil {
			v.checkCall(n)
		}
	case *ast.CompositeLit:
		if v.loop != nil && !v.inLit && v.checkComposite(n) {
			inner := *v
			inner.inLit = true
			for _, elt := range n.Elts {
				ast.Walk(&inner, elt)
			}
			return nil
		}
	}
	return v
}

// fanOutClosure returns the func literal submitted to a
// parallel.For/ForErr call, if the call is one.
func fanOutClosure(info *types.Info, call *ast.CallExpr) (*ast.FuncLit, bool) {
	if !isParallelFanOut(calleeOf(info, call)) || len(call.Args) != 3 {
		return nil, false
	}
	fl, ok := ast.Unparen(call.Args[2]).(*ast.FuncLit)
	return fl, ok
}

// checkCall flags make, append, and interface-boxing arguments inside a
// hot loop. Messages carry names and types but no positions, so the
// baseline file keys stay stable under unrelated edits.
func (v *hotVisitor) checkCall(call *ast.CallExpr) {
	info := v.pass.Pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if len(call.Args) > 0 {
					v.pass.Reportf(call.Pos(), "make(%s) inside a hot loop allocates every iteration; hoist the buffer out of the loop and reuse it", types.ExprString(call.Args[0]))
				}
			case "append":
				if len(call.Args) > 0 {
					dst := "slice"
					if id := rootIdent(call.Args[0]); id != nil {
						dst = id.Name
					}
					v.pass.Reportf(call.Pos(), "append to %q inside a hot loop may reallocate every iteration; preallocate capacity outside the loop", dst)
				}
			}
			return
		}
	}
	// Type conversions are not calls and do not box by themselves.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		param := paramAt(sig, i)
		if param == nil {
			continue
		}
		if _, isIface := param.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if _, already := at.Underlying().(*types.Interface); already {
			continue
		}
		qual := types.RelativeTo(v.pass.Pkg.Types)
		v.pass.Reportf(arg.Pos(), "passing %s to an interface parameter inside a hot loop boxes the value onto the heap; keep the inner loop monomorphic", types.TypeString(at, qual))
	}
}

// paramAt returns the type of the i-th argument's parameter, unrolling
// variadics.
func paramAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// checkComposite flags slice and map composite literals inside a hot
// loop; struct value literals stay legal (no heap allocation by
// themselves). Reports whether the literal was flagged.
func (v *hotVisitor) checkComposite(lit *ast.CompositeLit) bool {
	t := v.pass.Pkg.Info.TypeOf(lit)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		qual := types.RelativeTo(v.pass.Pkg.Types)
		v.pass.Reportf(lit.Pos(), "%s literal inside a hot loop allocates every iteration; hoist it or reuse a buffer", types.TypeString(t, qual))
		return true
	}
	return false
}
