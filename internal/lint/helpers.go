package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// calleeOf returns the called function object for a call expression, or
// nil when the callee is not a named function or method (e.g. a call
// through a function-typed variable).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPath returns "pkgpath.Name" for a package-level function or
// "pkgpath.Recv.Name" for a method, e.g. "time.Now" or
// "math/rand.(*Rand).Intn". Used to match forbidden callees.
func funcPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			path += "(" + named.Obj().Name() + ")."
		}
	}
	return path + fn.Name()
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// errorResults returns the indices of results of the call's type that are
// of type error. Empty when the call returns no errors.
func errorResults(info *types.Info, call *ast.CallExpr) []int {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	var out []int
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				out = append(out, i)
			}
		}
	default:
		if isErrorType(tv.Type) {
			out = append(out, 0)
		}
	}
	return out
}

// rootIdent walks to the base identifier of a chain of selectors, index
// expressions, stars, and parens: rootIdent(a.b[i].c) == a. Returns nil
// for expressions not rooted in an identifier (calls, literals).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// capturedBy reports whether the identifier resolves to a variable
// declared outside the function literal — i.e. captured by the closure.
func capturedBy(info *types.Info, fl *ast.FuncLit, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() < fl.Pos() || v.Pos() > fl.End()
}

// closureIndexParams returns the set of objects bound to the closure's
// own parameters (for `func(i int) { ... }` handed to a worker pool, the
// index parameter).
func closureIndexParams(info *types.Info, fl *ast.FuncLit) map[types.Object]bool {
	params := make(map[types.Object]bool)
	for _, field := range fl.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	return params
}

// indexedByParam reports whether expr is an index expression whose index
// is (derived from) one of the closure's own parameters — the per-slot
// write pattern `out[i] = ...` that the parallel contract requires.
func indexedByParam(info *types.Info, params map[types.Object]bool, expr ast.Expr) bool {
	idx, ok := ast.Unparen(expr).(*ast.IndexExpr)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(idx.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && params[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// isBuiltinAppend reports whether e is a call to the built-in append.
func isBuiltinAppend(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sharedClosureWrite describes one mutation of captured state inside a
// closure: an assignment/append target rooted outside the closure that is
// not a per-index slot write.
type sharedClosureWrite struct {
	pos  token.Pos
	name string
	verb string // "assigns to" or "appends to"
}

// sharedClosureWrites scans a closure for writes to captured variables
// that are not indexed by a closure parameter. It is the shared engine
// behind the parallelconv and determinism goroutine checks.
func sharedClosureWrites(info *types.Info, fl *ast.FuncLit) []sharedClosureWrite {
	params := closureIndexParams(info, fl)
	var out []sharedClosureWrite
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			// Nested closures are inspected on their own when reached by
			// the caller; their writes are relative to their own params.
			return false
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				// x, y := ... declares new locals — not captured writes.
				return true
			}
			for i, lhs := range st.Lhs {
				root := rootIdent(lhs)
				if root == nil || !capturedBy(info, fl, root) {
					continue
				}
				if indexedByParam(info, params, lhs) {
					continue
				}
				verb := "assigns to"
				if len(st.Rhs) == len(st.Lhs) && isBuiltinAppend(info, st.Rhs[i]) {
					verb = "appends to"
				}
				out = append(out, sharedClosureWrite{pos: lhs.Pos(), name: root.Name, verb: verb})
			}
		case *ast.IncDecStmt:
			root := rootIdent(st.X)
			if root != nil && capturedBy(info, fl, root) && !indexedByParam(info, params, st.X) {
				out = append(out, sharedClosureWrite{pos: st.Pos(), name: root.Name, verb: "assigns to"})
			}
		}
		return true
	})
	return out
}
