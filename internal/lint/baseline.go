package lint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is the tracked-but-not-fatal debt ledger behind
// `.walrus-lint-baseline`: a multiset of findings (keyed by file,
// analyzer, and message — never by line, so unrelated edits to a hot
// file don't invalidate it) that the driver subtracts before failing.
// hotalloc uses it to record the pre-raw-speed-pass allocation debt;
// burning an entry down means deleting its line from the file.
type Baseline map[string]int

// baselineKey is the multiset key of one diagnostic: tab-separated
// module-relative slash path, analyzer, and message.
func baselineKey(root string, d Diagnostic) string {
	file := d.File
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		file = filepath.ToSlash(rel)
	}
	return file + "\t" + d.Analyzer + "\t" + d.Message
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline. Blank lines and #-comments are skipped.
func LoadBaseline(path string) (Baseline, error) {
	b := make(Baseline)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return b, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") < 2 {
			return nil, fmt.Errorf("lint: malformed baseline line %q: want file\tanalyzer\tmessage", line)
		}
		b[line]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Apply subtracts baselined findings from diags and returns the
// survivors plus the number of findings the baseline absorbed. The
// baseline is a multiset: two identical findings need two entries.
func (b Baseline) Apply(root string, diags []Diagnostic) (kept []Diagnostic, absorbed int) {
	remaining := make(Baseline, len(b))
	for k, n := range b {
		remaining[k] = n
	}
	kept = make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		k := baselineKey(root, d)
		if remaining[k] > 0 {
			remaining[k]--
			absorbed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, absorbed
}

// WriteBaseline writes diags in baseline format, sorted, one finding
// per line, with a header explaining the workflow.
func WriteBaseline(w io.Writer, root string, diags []Diagnostic) error {
	lines := make([]string, len(diags))
	for i, d := range diags {
		lines[i] = baselineKey(root, d)
	}
	sort.Strings(lines)
	if _, err := fmt.Fprintf(w, "# walrus-lint baseline: tracked-but-not-fatal findings (file\\tanalyzer\\tmessage).\n# Regenerate with `walrus-lint -write-baseline`; burn debt down by deleting lines.\n"); err != nil {
		return err
	}
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
