package lint

import (
	"sync"
	"time"

	"walrus/internal/parallel"
)

// timingSink accumulates per-analyzer wall time across packages. A nil
// sink discards everything, so analyzePackage can time unconditionally.
type timingSink struct {
	mu sync.Mutex
	m  map[string]time.Duration
}

func (t *timingSink) add(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[string]time.Duration)
	}
	t.m[name] += d
}

// RunOptions configures a cache-aware module-wide lint run.
type RunOptions struct {
	// Jobs is the number of packages analyzed concurrently; <= 0 means
	// GOMAXPROCS.
	Jobs int
	// CachePath names the result-cache file; empty disables caching.
	CachePath string
	// Timings enables per-analyzer wall-time accounting (reported in
	// RunStats.Analyzers; cache hits contribute nothing — they run no
	// analyzer).
	Timings bool
}

// RunStats reports what a RunModule call did, for -v output and the
// cache tests.
type RunStats struct {
	Packages    int
	CacheHits   int
	CacheMisses int
	// Analyzers maps analyzer name to accumulated wall time across all
	// analyzed (non-cached) packages; nil unless Timings was set.
	Analyzers map[string]time.Duration
	Elapsed   time.Duration
}

// RunModule lints the module packages matching patterns, analyzing
// packages in parallel and consulting the result cache so unchanged
// packages skip type-checking entirely. Directive hygiene and
// //walrus:lint-ignore suppression are package-local (see
// analyzePackage), which is what makes per-package caching sound.
func RunModule(l *Loader, patterns []string, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, *RunStats, error) {
	start := time.Now()
	stats := &RunStats{}
	listed, index, err := l.List(patterns...)
	if err != nil {
		return nil, nil, err
	}
	stats.Packages = len(listed)

	var cache *Cache
	if opts.CachePath != "" {
		cache = OpenCache(opts.CachePath, l.ModRoot)
	}
	var timings *timingSink
	if opts.Timings {
		timings = &timingSink{}
	}

	// Pass 1: compute keys and probe the cache. No compilation happens
	// here — keys hash sources directly — so a fully warm run never pays
	// for `go list -export`.
	kyr := newKeyer(index)
	perPkg := make([][]Diagnostic, len(listed))
	keys := make([]string, len(listed))
	hits := make([]bool, len(listed))
	errs := make([]error, len(listed))
	if cache != nil {
		parallel.For(len(listed), opts.Jobs, func(i int) {
			lp := listed[i]
			key, err := kyr.key(lp, analyzers)
			if err != nil {
				errs[i] = err
				return
			}
			keys[i] = key
			if diags, ok := cache.Get(lp.ImportPath, key); ok {
				perPkg[i] = diags
				hits[i] = true
			}
		})
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
	}

	// Pass 2: resolve export data for the misses in one `go list
	// -export` invocation, then type-check and analyze them in parallel.
	var missPaths []string
	for i, lp := range listed {
		if !hits[i] {
			missPaths = append(missPaths, lp.ImportPath)
		}
	}
	if err := l.ensureExports(missPaths); err != nil {
		return nil, nil, err
	}
	parallel.For(len(listed), opts.Jobs, func(i int) {
		if hits[i] {
			return
		}
		lp := listed[i]
		pkg, err := l.loadFiles(lp.Dir, lp.ImportPath, lp.GoFiles)
		if err != nil {
			errs[i] = err
			return
		}
		diags := analyzePackage(pkg, analyzers, timings)
		perPkg[i] = diags
		if cache != nil {
			cache.Put(lp.ImportPath, keys[i], diags)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	var diags []Diagnostic
	for i := range perPkg {
		diags = append(diags, perPkg[i]...)
		if hits[i] {
			stats.CacheHits++
		} else {
			stats.CacheMisses++
		}
	}
	sortDiagnostics(diags)

	if cache != nil {
		if err := cache.Save(); err != nil {
			return nil, nil, err
		}
	}
	if timings != nil {
		stats.Analyzers = timings.m
	}
	stats.Elapsed = time.Since(start)
	return diags, stats, nil
}
