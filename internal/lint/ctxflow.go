package lint

import (
	"go/ast"
	"go/types"
)

// ctxFlowScope lists the request-path packages: everything between an
// HTTP request's deadline and the worker-pool fan-out it must be able to
// stop. The module root carries the staged query pipeline, internal/serve
// the front-end, internal/parallel the pools themselves. Other packages
// opt in with //walrus:lint-scope ctxflow.
var ctxFlowScope = map[string]bool{
	"":                  true,
	"internal/serve":    true,
	"internal/parallel": true,
}

// ctxFanOutReceivers are the root package's snapshot types: their methods
// ARE the staged query pipeline, so any of them that fans out over the
// worker pool must carry the request context — otherwise QueryContext's
// deadline dies at that stage's doorstep.
var ctxFanOutReceivers = map[string]bool{
	"Snapshot":        true,
	"ShardedSnapshot": true,
}

// CtxFlow machine-checks the context plumbing of the request path, added
// in the serving PR and easy to rot silently:
//
//  1. Inside a function with a context.Context in scope, calls to
//     context.Background() or context.TODO() discard the caller's
//     deadline and are flagged. Context-free convenience wrappers
//     (Query calling QueryContext(context.Background(), ...)) have no
//     ctx in scope and stay legal.
//  2. An exported function or method that takes a context.Context must
//     consult it — a ctx parameter the body never reads (or a blank _
//     parameter) advertises deadline support it does not deliver.
//  3. A worker-pool fan-out (parallel.For / parallel.ForErr) in a
//     function with a ctx in scope must consult the ctx inside the
//     submitted closure, so an expired deadline stops the fan-out
//     per task instead of burning every worker slot.
//  4. A Snapshot/ShardedSnapshot method that fans out over the worker
//     pool must take a context parameter at all: the staged pipeline is
//     exactly the code QueryContext promises to cancel.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "propagate request contexts through the serve/query/parallel pipeline",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	pkg := pass.Pkg
	if !ctxFlowScope[pkg.Rel] && !pkg.ScopedFor(pass.analyzer.Name) {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParams, blankCtx := ctxParamsOf(pkg.Info, fd.Type)
			if fd.Name.IsExported() {
				checkCtxConsulted(pass, fd, ctxParams, blankCtx)
			}
			checkCtxBody(pass, fd.Body, ctxParams)
			checkFanOutDecl(pass, fd, ctxParams)
		}
	}
}

// ctxParamsOf returns the objects of the function type's context.Context
// parameters, and whether any context parameter is blank (named _).
func ctxParamsOf(info *types.Info, ft *ast.FuncType) (params []types.Object, blank []*ast.Ident) {
	if ft.Params == nil {
		return nil, nil
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				blank = append(blank, name)
				continue
			}
			if obj := info.Defs[name]; obj != nil {
				params = append(params, obj)
			}
		}
	}
	return params, blank
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxConsulted flags exported entry points whose ctx parameter is
// never read in the body (rule 2).
func checkCtxConsulted(pass *Pass, fd *ast.FuncDecl, ctxParams []types.Object, blankCtx []*ast.Ident) {
	for _, id := range blankCtx {
		pass.Reportf(id.Pos(), "exported %s discards its context parameter (_); name it and consult ctx.Err() or forward it", fd.Name.Name)
	}
	for _, obj := range ctxParams {
		used := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == obj {
				used = true
			}
			return !used
		})
		if !used {
			pass.Reportf(obj.Pos(), "exported %s takes a context that is never consulted; check ctx.Err() or forward it down the pipeline", fd.Name.Name)
		}
	}
}

// checkCtxBody walks a function body carrying the set of in-scope ctx
// objects (growing through nested func literals) and enforces rules 1
// and 3 wherever a ctx is in scope.
func checkCtxBody(pass *Pass, body ast.Node, ctxs []types.Object) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := ctxs
			params, _ := ctxParamsOf(info, n.Type)
			inner = append(inner[:len(inner):len(inner)], params...)
			checkCtxBody(pass, n.Body, inner)
			return false
		case *ast.CallExpr:
			if len(ctxs) == 0 {
				return true
			}
			fn := calleeOf(info, n)
			switch funcPath(fn) {
			case "context.Background", "context.TODO":
				pass.Reportf(n.Pos(), "context.%s() discards the caller's deadline: forward %q instead", fn.Name(), ctxs[0].Name())
			}
			if isParallelFanOut(fn) {
				checkFanOutClosure(pass, n, ctxs)
			}
		}
		return true
	})
}

// isParallelFanOut reports whether fn is internal/parallel's For or
// ForErr.
func isParallelFanOut(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != "walrus/internal/parallel" {
		return false
	}
	return fn.Name() == "For" || fn.Name() == "ForErr"
}

// checkFanOutClosure enforces rule 3: the closure submitted to a
// worker-pool fan-out must reference one of the in-scope ctx objects
// (typically `if err := ctx.Err(); err != nil { return err }` at the top
// of each task).
func checkFanOutClosure(pass *Pass, call *ast.CallExpr, ctxs []types.Object) {
	if len(call.Args) != 3 {
		return
	}
	fl, ok := ast.Unparen(call.Args[2]).(*ast.FuncLit)
	if !ok {
		// A named function value: its body is checked where it is defined.
		return
	}
	info := pass.Pkg.Info
	inScope := make(map[types.Object]bool, len(ctxs))
	for _, obj := range ctxs {
		inScope[obj] = true
	}
	// The closure may also take (or rebind) its own ctx — count any
	// context-typed identifier use as consulting the deadline.
	consulted := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !consulted
		}
		obj := info.Uses[id]
		if obj == nil {
			return !consulted
		}
		if inScope[obj] || (obj.Type() != nil && isContextType(obj.Type())) {
			consulted = true
		}
		return !consulted
	})
	if !consulted {
		pass.Reportf(call.Pos(), "parallel fan-out closure never consults %q: check ctx.Err() per task so an expired deadline stops the fan-out", ctxs[0].Name())
	}
}

// checkFanOutDecl enforces rule 4: a snapshot-pipeline method that fans
// out over the worker pool must take a context parameter.
func checkFanOutDecl(pass *Pass, fd *ast.FuncDecl, ctxParams []types.Object) {
	if len(ctxParams) > 0 || fd.Recv == nil {
		return
	}
	_, typeName := receiverOf(pass.Pkg, fd)
	if !ctxFanOutReceivers[typeName] {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isParallelFanOut(calleeOf(pass.Pkg.Info, call)) {
			pass.Reportf(call.Pos(), "%s.%s fans out over the worker pool but takes no context; thread the request ctx through the stage", typeName, fd.Name.Name)
			return false
		}
		return true
	})
}
