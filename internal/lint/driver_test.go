package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeTempModule lays down a two-package throwaway module: package a
// carries a goroleak finding, package b is clean. Editing a's source in
// place is how the invalidation test works, which is why these tests
// never run against the real module.
func writeTempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": `package a

// Leak spawns a goroutine with no shutdown edge.
func Leak() {
	go func() {
		select {}
	}()
}
`,
		"b/b.go": `package b

// Add is allocation- and goroutine-free.
func Add(x, y int) int { return x + y }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runTemp lints the temp module with a fresh loader (a shared loader's
// package memo would mask what the cache does and does not skip).
func runTemp(t *testing.T, dir string, opts RunOptions) ([]Diagnostic, *RunStats) {
	t.Helper()
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, stats, err := RunModule(l, nil, All(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return diags, stats
}

// TestRunModuleCache drives the result cache through its three states:
// a cold run misses everything, a warm run hits everything with
// identical diagnostics, and editing one file invalidates exactly that
// package.
func TestRunModuleCache(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	dir := writeTempModule(t)
	opts := RunOptions{CachePath: filepath.Join(dir, ".walrus-lint-cache")}

	cold, coldStats := runTemp(t, dir, opts)
	if coldStats.CacheHits != 0 || coldStats.CacheMisses != 2 {
		t.Fatalf("cold run: %d hits / %d misses, want 0/2", coldStats.CacheHits, coldStats.CacheMisses)
	}
	if len(cold) != 1 || cold[0].Analyzer != "goroleak" {
		t.Fatalf("cold run diagnostics: %+v, want one goroleak finding", cold)
	}

	warm, warmStats := runTemp(t, dir, opts)
	if warmStats.CacheHits != 2 || warmStats.CacheMisses != 0 {
		t.Fatalf("warm run: %d hits / %d misses, want 2/0", warmStats.CacheHits, warmStats.CacheMisses)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Errorf("warm diagnostics differ from cold:\n warm %+v\n cold %+v", warm, cold)
	}

	// Fixing the leak must invalidate package a only, and the stale
	// finding must not replay from the cache.
	fixed := `package a

// Leak no longer leaks: the handoff joins the goroutine.
func Leak() {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done
}
`
	if err := os.WriteFile(filepath.Join(dir, "a", "a.go"), []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	after, afterStats := runTemp(t, dir, opts)
	if afterStats.CacheHits != 1 || afterStats.CacheMisses != 1 {
		t.Fatalf("post-edit run: %d hits / %d misses, want 1/1", afterStats.CacheHits, afterStats.CacheMisses)
	}
	if len(after) != 0 {
		t.Errorf("post-edit run still reports: %+v", after)
	}
}

// TestRunModuleCacheDisabled pins the no-cache path: empty CachePath
// means every run analyzes everything and writes nothing to disk.
func TestRunModuleCacheDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	dir := writeTempModule(t)
	for i := 0; i < 2; i++ {
		_, stats := runTemp(t, dir, RunOptions{})
		if stats.CacheHits != 0 || stats.CacheMisses != 2 {
			t.Fatalf("run %d: %d hits / %d misses, want 0/2", i, stats.CacheHits, stats.CacheMisses)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ".walrus-lint-cache")); !os.IsNotExist(err) {
		t.Errorf("cache file written despite empty CachePath (stat err %v)", err)
	}
}

// TestRunModuleTimings checks that -v accounting attributes wall time to
// analyzers on misses and to nothing on pure cache hits.
func TestRunModuleTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	dir := writeTempModule(t)
	opts := RunOptions{CachePath: filepath.Join(dir, ".walrus-lint-cache"), Timings: true}

	_, cold := runTemp(t, dir, opts)
	if len(cold.Analyzers) != len(All()) {
		t.Errorf("cold run timed %d analyzers, want %d", len(cold.Analyzers), len(All()))
	}
	_, warm := runTemp(t, dir, opts)
	if len(warm.Analyzers) != 0 {
		t.Errorf("warm run timed %d analyzers, want 0 (all packages cached): %v", len(warm.Analyzers), warm.Analyzers)
	}
	if warm.Elapsed <= 0 || cold.Elapsed <= 0 {
		t.Errorf("elapsed times not recorded: cold %v, warm %v", cold.Elapsed, warm.Elapsed)
	}
}
