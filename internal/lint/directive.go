package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one //walrus:lint-* comment.
//
//	//walrus:lint-ignore <analyzer> <reason...>   suppress a diagnostic
//	//walrus:lint-scope <analyzer>                opt the package into scope
//	//walrus:lint-hot [note...]                   mark the file as a hot path
//
// An ignore applies to diagnostics of the named analyzer on the
// directive's own line (trailing comment) or the line immediately below
// (standalone comment). The reason is mandatory — Run reports ignores
// without one, and they suppress nothing. A hot directive marks its
// whole file as allocation-sensitive: the hotalloc analyzer checks the
// loops of hot files only.
type Directive struct {
	Kind     string // "ignore", "scope", or "hot"
	Analyzer string
	Reason   string
	File     string
	Line     int
	Col      int
}

const (
	ignoreMarker = "//walrus:lint-ignore"
	scopeMarker  = "//walrus:lint-scope"
	hotMarker    = "//walrus:lint-hot"
)

// parseDirectives extracts the lint directives from one parsed file.
func parseDirectives(fset *token.FileSet, f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			var kind, rest string
			switch {
			case strings.HasPrefix(c.Text, ignoreMarker):
				kind, rest = "ignore", c.Text[len(ignoreMarker):]
			case strings.HasPrefix(c.Text, hotMarker):
				kind, rest = "hot", c.Text[len(hotMarker):]
			case strings.HasPrefix(c.Text, scopeMarker):
				kind, rest = "scope", c.Text[len(scopeMarker):]
			default:
				continue
			}
			pos := fset.Position(c.Pos())
			d := Directive{Kind: kind, File: pos.Filename, Line: pos.Line, Col: pos.Column}
			if kind == "hot" {
				// A hot mark names no analyzer; any trailing text is a note.
				d.Reason = strings.TrimSpace(rest)
				out = append(out, d)
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				d.Analyzer = fields[0]
			}
			if len(fields) > 1 {
				d.Reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}
