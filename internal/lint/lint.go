// Package lint is a stdlib-only static-analysis framework for the WALRUS
// repository. It loads and type-checks the module's packages (go/parser +
// go/types, with imports resolved through `go list -export` data, so the
// module keeps its zero-dependency go.mod) and runs repo-specific
// analyzers that machine-check the contracts the test suite can only
// sample:
//
//   - ctxflow: request-path packages must propagate their
//     context.Context — no context.Background()/TODO() where a caller's
//     ctx is in scope, no exported entry points that take a ctx and never
//     consult it, no worker-pool fan-out that an expired deadline cannot
//     stop.
//   - determinism: the signature-extraction pipeline must be bit-exact
//     reproducible — no wall-clock reads, no global math/rand, no
//     map-iteration order or goroutine schedule leaking into results.
//   - errsink: every error on the durability surface (store.File, pager,
//     buffer pool, heap, WAL, imgio I/O) must be observed.
//   - goroleak: every go statement needs a provable shutdown edge — a
//     WaitGroup join, a channel handoff the package receives, a quit
//     channel the package closes, or a documented lint-ignore.
//   - hotalloc: files annotated //walrus:lint-hot must not allocate per
//     loop iteration (make, growing append, slice/map literals,
//     interface boxing); existing findings live in the baseline file
//     until the raw-speed pass burns them down.
//   - lockdiscipline: methods of mutex-carrying structs must hold the
//     documented lock before touching "guarded by mu" fields, and must
//     not upgrade RLock to Lock.
//   - obs: instrumented packages must route wall-clock reads through the
//     annotated clock helpers (obs.Clock/obs.Since, statsClock/statsSince)
//     named on the shared clockExempt list.
//   - parallelconv: closures handed to internal/parallel pools must write
//     per-index slots, never shared captured state.
//   - snapshotsafe: methods of the root package's Snapshot type must stay
//     lock-free and must not mutate published snapshot state.
//
// Diagnostics can be suppressed per line with
//
//	//walrus:lint-ignore <analyzer> <reason>
//
// where the reason is mandatory: an ignore without one is itself a
// diagnostic. A package outside an analyzer's default scope can opt in
// with `//walrus:lint-scope <analyzer>` in any of its files, and a file
// joins the hotalloc hot set with `//walrus:lint-hot`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Package is one type-checked package under analysis.
type Package struct {
	// ImportPath is the package's import path; ModPath the enclosing
	// module's path; Rel the module-relative package path ("" for the
	// module root).
	ImportPath string
	ModPath    string
	Rel        string
	// Dir is the directory the package was loaded from.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Directives are the //walrus:lint-* comment directives found in the
	// package's files.
	Directives []Directive
}

// ScopedFor reports whether any file of the package opts into the named
// analyzer with a //walrus:lint-scope directive.
func (p *Package) ScopedFor(analyzer string) bool {
	for _, d := range p.Directives {
		if d.Kind == "scope" && d.Analyzer == analyzer {
			return true
		}
	}
	return false
}

// HotFiles returns the set of file names (as recorded in the FileSet)
// carrying a //walrus:lint-hot directive.
func (p *Package) HotFiles() map[string]bool {
	out := make(map[string]bool)
	for _, d := range p.Directives {
		if d.Kind == "hot" {
			out[d.File] = true
		}
	}
	return out
}

// Diagnostic is one analyzer finding at a file position.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Analyzer is one named check over a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (package, analyzer) run; analyzers report findings
// through it.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the repo's analyzers in stable order.
func All() []*Analyzer {
	return []*Analyzer{CtxFlow, Determinism, ErrSink, GoroLeak, HotAlloc, LockDiscipline, Obs, ParallelConv, SnapshotSafe}
}

// lintIgnoreName is the pseudo-analyzer that owns directive-hygiene
// diagnostics (malformed or undocumented //walrus:lint-* directives).
// Its findings cannot be suppressed.
const lintIgnoreName = "lintignore"

// Run applies the analyzers to every package, enforces directive hygiene,
// applies //walrus:lint-ignore suppression, and returns the surviving
// diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analyzePackage(pkg, analyzers, nil)...)
	}
	sortDiagnostics(diags)
	return diags
}

// analyzePackage runs the analyzers over one package, enforces directive
// hygiene, and applies //walrus:lint-ignore suppression. Directives are
// file-scoped, so each package's suppression is independent of every
// other's — which is what lets the parallel driver analyze (and cache)
// packages independently. When timings is non-nil, each analyzer's wall
// time on this package is accumulated into it.
func analyzePackage(pkg *Package, analyzers []*Analyzer, timings *timingSink) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	var diags []Diagnostic
	suppressed := make(map[key]bool)
	for _, a := range analyzers {
		start := time.Now()
		a.Run(&Pass{Pkg: pkg, analyzer: a, diags: &diags})
		timings.add(a.Name, time.Since(start))
	}
	for _, d := range pkg.Directives {
		hygiene := func(format string, args ...any) {
			diags = append(diags, Diagnostic{
				Analyzer: lintIgnoreName,
				File:     d.File, Line: d.Line, Col: d.Col,
				Message: fmt.Sprintf(format, args...),
			})
		}
		switch {
		case d.Kind == "hot":
			// A hot mark is file-scoped and names no analyzer.
		case d.Analyzer == "":
			hygiene("malformed //walrus:lint-%s directive: missing analyzer name", d.Kind)
		case !known[d.Analyzer]:
			hygiene("unknown analyzer %q in //walrus:lint-%s directive", d.Analyzer, d.Kind)
		case d.Kind == "ignore" && d.Reason == "":
			hygiene("//walrus:lint-ignore %s is missing a reason; document why the diagnostic is suppressed", d.Analyzer)
		case d.Kind == "ignore":
			// A well-formed ignore suppresses the analyzer on its own
			// line (trailing comment) and the next (standalone comment).
			suppressed[key{d.File, d.Line, d.Analyzer}] = true
			suppressed[key{d.File, d.Line + 1, d.Analyzer}] = true
		}
	}
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if d.Analyzer != lintIgnoreName && suppressed[key{d.File, d.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// sortDiagnostics orders diagnostics by position, then analyzer, then
// message — the stable order every output format emits.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
