// Fixture for the errsink analyzer: dropped and blanked errors from the
// durability surface (a store.File and an *os.File, which implements it)
// must be flagged; observed errors and off-surface drops must not.
package errsinkfix

import (
	"fmt"
	"os"

	"walrus/internal/store"
)

func dropSync(f store.File) {
	f.Sync() // want `call to File.Sync discards its error`
}

func dropDeferredClose(f *os.File) error {
	defer f.Close() // want `deferred call to File.Close discards its error`
	_, err := f.WriteAt([]byte("x"), 0)
	return err
}

func blankTruncate(f store.File) {
	_ = f.Truncate(0) // want `error from File.Truncate assigned to _`
}

func blankWriteError(f store.File) int {
	n, _ := f.WriteAt([]byte("x"), 0) // want `error from File.WriteAt assigned to _`
	return n
}

func observed(f store.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func offSurface() {
	fmt.Println("fmt is not part of the durability surface")
}
