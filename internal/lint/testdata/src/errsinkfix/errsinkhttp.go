// Serving-surface cases for the errsink analyzer: dropped errors from
// net/http and encoding/json silently truncate responses or drains and
// must be flagged; observed errors and no-error APIs must not.
package errsinkfix

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

func dropResponseWrite(w http.ResponseWriter) {
	w.Write([]byte("ok")) // want `call to ResponseWriter.Write discards its error`
}

func blankEncode(w http.ResponseWriter, v any) {
	_ = json.NewEncoder(w).Encode(v) // want `error from Encoder.Encode assigned to _`
}

func dropShutdown(ctx context.Context, srv *http.Server) {
	srv.Shutdown(ctx) // want `call to Server.Shutdown discards its error`
}

func dropDeferredShutdown(ctx context.Context, srv *http.Server) {
	defer srv.Shutdown(ctx) // want `deferred call to Server.Shutdown discards its error`
}

func observedServing(w http.ResponseWriter, v any) error {
	if _, err := w.Write([]byte("ok")); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(v)
}

func noErrorResult(w http.ResponseWriter) {
	// WriteHeader and http.Error return no error: nothing to observe.
	w.WriteHeader(http.StatusTeapot)
	http.Error(w, "teapot", http.StatusTeapot)
}

func offSurfaceWriter(w http.ResponseWriter) {
	// fmt is not a sink package even when it writes into one.
	fmt.Fprintln(w, "ok")
}
