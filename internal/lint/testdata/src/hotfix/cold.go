// cold.go carries no //walrus:lint-hot directive: the same per-iteration
// allocations stay legal here, proving the hot mark is file-scoped.
package hotfix

// ColdPath allocates per iteration in a file outside the hot set.
func ColdPath(rows [][]float64) []float64 {
	var out []float64
	for i := range rows {
		tmp := make([]float64, len(rows[i]))
		copy(tmp, rows[i])
		out = append(out, tmp...)
	}
	return out
}
