// Fixture for the hotalloc analyzer: files marked //walrus:lint-hot
// must not allocate per loop iteration.
//
//walrus:lint-hot fixture stands in for the wavelet DP
package hotfix

import "walrus/internal/parallel"

// Hoisted is clean: the buffer is allocated once, outside the loop.
func Hoisted(rows [][]float64) []float64 {
	buf := make([]float64, len(rows))
	for i := range rows {
		buf[i] = rows[i][0]
	}
	return buf
}

// PerIterMake allocates a scratch slice every iteration.
func PerIterMake(rows [][]float64) float64 {
	total := 0.0
	for i := range rows {
		tmp := make([]float64, len(rows[i])) // want `make\(\[\]float64\) inside a hot loop allocates every iteration`
		copy(tmp, rows[i])
		total += tmp[0]
	}
	return total
}

// Growth appends without preallocated capacity.
func Growth(rows [][]float64) []float64 {
	var out []float64
	for i := range rows {
		out = append(out, rows[i]...) // want `append to "out" inside a hot loop may reallocate every iteration`
	}
	return out
}

// Literal builds a fresh slice literal every iteration.
func Literal(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		pair := []int{i, i * 2} // want `\[\]int literal inside a hot loop allocates every iteration`
		total += pair[0]
	}
	return total
}

// NestedRange flags the inner loop's map literal once, not its
// elements.
func NestedRange(keys []string) int {
	total := 0
	for _, k := range keys {
		for i := 0; i < 3; i++ {
			m := map[string]int{k: i} // want `map\[string\]int literal inside a hot loop allocates every iteration`
			total += m[k]
		}
	}
	return total
}

type sink interface{ add(v int) }

type counter struct{ n int }

func (c *counter) add(v int) { c.n += v }

func use(s sink, v int) { s.add(v) }

// Boxing converts a concrete value to an interface inside the loop.
func Boxing(n int) int {
	c := counter{}
	for i := 0; i < n; i++ {
		use(&c, i) // want `passing \*counter to an interface parameter inside a hot loop boxes the value`
	}
	return c.n
}

// MonomorphicClean keeps the inner loop interface-free: the interface
// conversion happens once, outside.
func MonomorphicClean(n int) int {
	c := counter{}
	var s sink = &c
	for i := 0; i < n; i++ {
		s.add(i)
	}
	return c.n
}

// FanOut treats a pool closure as a loop body: it runs once per task.
func FanOut(rows [][]float64, out []float64) {
	parallel.For(len(rows), 4, func(i int) {
		w := make([]float64, 8) // want `make\(\[\]float64\) inside a hot loop allocates every iteration`
		for j := range w {
			w[j] = rows[i][j%len(rows[i])]
		}
		out[i] = w[0]
	})
}
