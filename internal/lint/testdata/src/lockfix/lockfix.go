// Fixture for the lockdiscipline analyzer: a struct with a documented
// RWMutex whose guarded fields are touched with and without the lock.
package lockfix

import "sync"

type counter struct {
	mu sync.RWMutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu

	hint string // unguarded: informational only
}

func (c *counter) Good() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

func (c *counter) GoodWrite(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = v
}

func (c *counter) BadRead() int {
	return c.n // want `c.n is guarded by mu but read without holding it`
}

func (c *counter) BadWrite(v int) {
	c.n = v // want `c.n is guarded by mu but written without holding it`
}

func (c *counter) BadMapWrite(k string, v int) {
	c.m[k] = v // want `c.m is guarded by mu but written without holding it`
}

func (c *counter) WriteUnderRLock(v int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.n = v // want `c.n written under mu.RLock\(\); writes require the exclusive lock`
}

func (c *counter) Upgrade() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.mu.Lock() // want `c.mu.Lock\(\) while mu.RLock\(\) is held: RWMutex upgrade deadlocks`
	c.n++
	c.mu.Unlock()
}

func (c *counter) Unguarded() string {
	return c.hint // not guarded: allowed
}

// bumpLocked is exempt by the Locked naming convention.
func (c *counter) bumpLocked() {
	c.n++
}
