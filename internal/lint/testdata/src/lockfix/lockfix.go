// Fixture for the lockdiscipline analyzer: a struct with a documented
// RWMutex whose guarded fields are touched with and without the lock.
package lockfix

import "sync"

type counter struct {
	mu sync.RWMutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu

	hint string // unguarded: informational only
}

func (c *counter) Good() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

func (c *counter) GoodWrite(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = v
}

func (c *counter) BadRead() int {
	return c.n // want `c.n is guarded by mu but read without holding it`
}

func (c *counter) BadWrite(v int) {
	c.n = v // want `c.n is guarded by mu but written without holding it`
}

func (c *counter) BadMapWrite(k string, v int) {
	c.m[k] = v // want `c.m is guarded by mu but written without holding it`
}

func (c *counter) WriteUnderRLock(v int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.n = v // want `c.n written under mu.RLock\(\); writes require the exclusive lock`
}

func (c *counter) Upgrade() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.mu.Lock() // want `c.mu.Lock\(\) while mu.RLock\(\) is held: RWMutex upgrade deadlocks`
	c.n++
	c.mu.Unlock()
}

func (c *counter) Unguarded() string {
	return c.hint // not guarded: allowed
}

// bumpLocked is exempt by the Locked naming convention.
func (c *counter) bumpLocked() {
	c.n++
}

// fleet mirrors the root package's Sharded type: a guarded object
// holding references to other guarded objects (its shards).
type fleet struct {
	mu     sync.Mutex
	policy int // guarded by mu
	parts  []*counter
}

// Good: the fleet locks its own mu and reaches shards through methods.
func (f *fleet) GoodFanout(v int) {
	f.mu.Lock()
	f.policy = v
	f.mu.Unlock()
	for _, c := range f.parts {
		c.GoodWrite(v)
	}
}

// BadCross reaches into a shard's private mutex instead of calling one
// of its methods.
func (f *fleet) BadCross(v int) {
	f.parts[0].mu.Lock()   // want `f.parts\[0\].mu.Lock\(\) inside fleet.BadCross acquires another counter's private mutex; call a counter method instead`
	f.parts[0].mu.Unlock() // want `f.parts\[0\].mu.Unlock\(\) inside fleet.BadCross acquires another counter's private mutex; call a counter method instead`
}

// BadCrossAlias does the same through a local alias; the check is
// type-based, so the rename does not evade it.
func (f *fleet) BadCrossAlias() int {
	c := f.parts[0]
	c.mu.RLock() // want `c.mu.RLock\(\) inside fleet.BadCrossAlias acquires another counter's private mutex; call a counter method instead`
	n := c.n
	c.mu.RUnlock() // want `c.mu.RUnlock\(\) inside fleet.BadCrossAlias acquires another counter's private mutex; call a counter method instead`
	return n
}
