// Fixture for the snapshotsafe analyzer: a miniature of the root
// package's snapshot layer, with methods that respect and violate the
// two contract halves (lock-free reads, immutable published state).
package snapfix

//walrus:lint-scope snapshotsafe

import "sync"

type snapCore struct {
	version uint64
	ids     []string
	byID    map[string]int
	counts  []int
}

type DB struct {
	mu   sync.RWMutex
	core *snapCore
}

type Snapshot struct {
	core *snapCore
	db   *DB
}

// Good: reads only.
func (s *Snapshot) Len() int { return len(s.core.ids) }

func (s *Snapshot) Lookup(id string) (int, bool) {
	idx, ok := s.core.byID[id]
	return idx, ok
}

// Good: writes to locals and parameters are not snapshot mutations.
func (s *Snapshot) Collect(out []string) []string {
	for _, id := range s.core.ids {
		out = append(out, id)
	}
	return out
}

func (s *Snapshot) BadLock() int {
	s.db.mu.RLock() // want `snapshot methods are lock-free by contract: s.db.mu.RLock must not acquire a mutex inside Snapshot.BadLock`
	n := len(s.core.ids)
	s.db.mu.RUnlock() // want `snapshot methods are lock-free by contract: s.db.mu.RUnlock must not acquire a mutex inside Snapshot.BadLock`
	return n
}

func (s *Snapshot) BadWriteField() {
	s.core.version = 99 // want `snapshot state is immutable: s.core.version is written inside Snapshot.BadWriteField`
}

func (s *Snapshot) BadWriteSlice(i int) {
	s.core.ids[i] = "" // want `snapshot state is immutable: s.core.ids\[i\] is written inside Snapshot.BadWriteSlice`
}

func (s *Snapshot) BadIncDec() {
	s.core.counts[0]++ // want `snapshot state is immutable: s.core.counts\[0\] is written inside Snapshot.BadIncDec`
}

func (s *Snapshot) BadDelete(id string) {
	delete(s.core.byID, id) // want `snapshot state is immutable: delete from s.core.byID mutates published snapshot state in Snapshot.BadDelete`
}

// BadAlias mutates through a local alias of the core: the check is
// type-based, so renaming the path does not evade it.
func (s *Snapshot) BadAlias() {
	core := s.core
	core.version = 1 // want `snapshot state is immutable: core.version is written inside Snapshot.BadAlias`
}

// mutate exists so unrelated methods of other receivers stay unchecked.
func (db *DB) mutate() {
	db.mu.Lock()
	db.core.version++
	db.mu.Unlock()
}

// ShardedSnapshot mirrors the root package's cross-shard view: one
// pinned Snapshot per shard. Its methods are held to the same contract.
type ShardedSnapshot struct {
	snaps []*Snapshot
	db    *DB
}

// Good: pure fan-out reads.
func (ss *ShardedSnapshot) Len() int {
	n := 0
	for _, sn := range ss.snaps {
		n += sn.Len()
	}
	return n
}

func (ss *ShardedSnapshot) BadLock() int {
	ss.db.mu.RLock() // want `snapshot methods are lock-free by contract: ss.db.mu.RLock must not acquire a mutex inside ShardedSnapshot.BadLock`
	n := len(ss.snaps)
	ss.db.mu.RUnlock() // want `snapshot methods are lock-free by contract: ss.db.mu.RUnlock must not acquire a mutex inside ShardedSnapshot.BadLock`
	return n
}

func (ss *ShardedSnapshot) BadWriteOwn(i int) {
	ss.snaps[i] = nil // want `snapshot state is immutable: ss.snaps\[i\] is written inside ShardedSnapshot.BadWriteOwn`
}

// BadWriteThrough mutates one shard's pinned snapshot state: the chain
// crosses both ShardedSnapshot and snapCore, either of which convicts.
func (ss *ShardedSnapshot) BadWriteThrough() {
	ss.snaps[0].core.version = 9 // want `snapshot state is immutable: ss.snaps\[0\].core.version is written inside ShardedSnapshot.BadWriteThrough`
}
