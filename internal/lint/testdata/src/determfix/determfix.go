// Fixture for the determinism analyzer: the package opts in via the
// scope directive below and mixes violations with the sanctioned
// patterns (seeded sources, sorted map collection, commutative sums).
//
//walrus:lint-scope determinism

package determfix

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `call to time.Now \(wall-clock read\)`
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `call to time.Since \(wall-clock read\)`
}

// sanctionedClock is on the shared clockExempt list (see the lint
// package's obs.go): its wall-clock read is allowed, but nothing else in
// an exempt function is.
func sanctionedClock() time.Time { return time.Now() }

func globalRand() int {
	return rand.Intn(10) // want `call to math/rand.Intn \(global math/rand source\)`
}

func seededRand(rng *rand.Rand) int {
	return rng.Intn(10) // seeded source: allowed
}

func mapOrderLeak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map iteration order feeds "keys" without a subsequent sort`
	}
	return keys
}

func mapOrderSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted below: allowed
	}
	sort.Strings(keys)
	return keys
}

func mapSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // commutative accumulation: allowed
	}
	return total
}

func mapInvert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k // keyed write: order-independent
	}
	return inv
}

func scheduleLeak(n int) []int {
	var out []int
	done := make(chan struct{})
	go func() {
		out = append(out, n) // want `goroutine closure appends to captured "out"`
		close(done)
	}()
	<-done
	return out
}
