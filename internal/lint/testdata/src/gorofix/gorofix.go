// Fixture for the goroleak analyzer: every go statement needs a
// provable shutdown edge — a WaitGroup join, a channel handoff the
// package receives, a join close, a quit signal, or a documented
// lint-ignore.
package gorofix

import "sync"

// Joined is clean: the goroutines Done a WaitGroup the function Waits.
func Joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Handoff is clean: the goroutine's send is received as the join.
func Handoff() error {
	errCh := make(chan error, 1)
	go func() {
		errCh <- nil
	}()
	return <-errCh
}

// JoinClose is clean: the goroutine closes done and the caller blocks
// on it.
func JoinClose() {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done
}

// QuitSignal is clean: the goroutine blocks on a quit channel the
// package closes.
func QuitSignal() {
	quit := make(chan struct{})
	go func() {
		<-quit
	}()
	close(quit)
}

// pool proves the one-level inlining of go m.run(): the callee's Done
// matches Close's Wait through the shared field object.
type pool struct {
	wg sync.WaitGroup
}

func (p *pool) run() {
	defer p.wg.Done()
}

func (p *pool) Start() {
	p.wg.Add(1)
	go p.run()
}

func (p *pool) Close() {
	p.wg.Wait()
}

// Leaks has no shutdown edge at all.
func Leaks() {
	go func() { // want `goroutine has no provable shutdown edge`
		select {}
	}()
}

// LeaksOwnWait spins a private WaitGroup nobody Waits on — Done without
// a package-level Wait is not a join.
func LeaksOwnWait() {
	var solo sync.WaitGroup
	solo.Add(1)
	go func() { // want `goroutine has no provable shutdown edge`
		defer solo.Done()
	}()
}

// Documented keeps a deliberate fire-and-forget goroutine behind an
// explained ignore.
func Documented() {
	//walrus:lint-ignore goroleak process-lifetime ticker, exits with the program
	go func() {
		select {}
	}()
}
