// Fixture for the parallelconv analyzer: closures handed to the
// internal/parallel pool must write per-index slots, never shared state.
package parfix

import "walrus/internal/parallel"

func PerSlot(items []int) []int {
	out := make([]int, len(items))
	parallel.For(len(items), 4, func(i int) {
		out[i] = items[i] * 2 // per-index slot: allowed
	})
	return out
}

func SharedAppend(items []int) []int {
	var out []int
	parallel.For(len(items), 4, func(i int) {
		out = append(out, items[i]*2) // want `parallel closure appends to captured "out"`
	})
	return out
}

func SharedCounter(items []int) int {
	total := 0
	parallel.For(len(items), 4, func(i int) {
		total += items[i] // want `parallel closure assigns to captured "total"`
	})
	return total
}

func SharedErr(items []int) error {
	var firstErr error
	errs := make([]error, len(items))
	err := parallel.ForErr(len(items), 4, func(i int) error {
		firstErr = nil // want `parallel closure assigns to captured "firstErr"`
		errs[i] = nil  // per-index slot: allowed
		return nil
	})
	_ = errs
	_ = firstErr
	return err
}
