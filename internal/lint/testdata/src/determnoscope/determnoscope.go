// Fixture proving determinism scoping: this package contains the same
// wall-clock violation as determfix but carries no scope directive and
// is not one of the pipeline packages, so the analyzer must stay silent.
package determnoscope

import "time"

func WallClock() int64 {
	return time.Now().UnixNano()
}
