// Fixture for the obs analyzer: the package opts in via the scope
// directive below; direct wall-clock reads are diagnostics unless the
// enclosing function is on the shared clockExempt list (sanctionedClock
// and sanctionedSince are registered there for this fixture).
//
//walrus:lint-scope obs

package obsfix

import "time"

// sanctionedClock is on the clockExempt list: this is the one place a
// direct read belongs.
func sanctionedClock() time.Time { return time.Now() }

// sanctionedSince is likewise exempt.
func sanctionedSince(t time.Time) time.Duration { return time.Since(t) }

func timedWork() time.Duration {
	start := time.Now() // want `direct time.Now in instrumented package`
	work()
	return time.Since(start) // want `direct time.Since in instrumented package`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `direct time.Until in instrumented package`
}

func viaHelpers() time.Duration {
	start := sanctionedClock()
	work()
	return sanctionedSince(start)
}

func work() {}
