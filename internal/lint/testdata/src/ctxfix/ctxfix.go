// Fixture for the ctxflow analyzer: request-path code must forward a
// received context, consult it in exported entry points, and check it
// inside worker-pool fan-outs.
//
//walrus:lint-scope ctxflow
package ctxfix

import (
	"context"

	"walrus/internal/parallel"
)

// Forward is clean: the received ctx reaches every task.
func Forward(ctx context.Context, items []int) error {
	return parallel.ForErr(len(items), 4, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		items[i]++
		return nil
	})
}

// Detach consults its ctx but then manufactures a fresh one (rule 1).
func Detach(ctx context.Context) context.Context {
	if ctx.Err() != nil {
		return ctx
	}
	return context.Background() // want `context.Background\(\) discards the caller's deadline: forward "ctx" instead`
}

// Todo is the same leak through context.TODO (rule 1).
func Todo(ctx context.Context) error {
	_ = ctx
	return DoCtx(context.TODO()) // want `context.TODO\(\) discards the caller's deadline: forward "ctx" instead`
}

// Wrapper has no ctx in scope, so Background is the documented idiom
// for context-free convenience entry points.
func Wrapper() error {
	return DoCtx(context.Background())
}

// DoCtx consults its ctx: clean.
func DoCtx(ctx context.Context) error {
	return ctx.Err()
}

// Ignores advertises deadline support it does not deliver (rule 2).
func Ignores(ctx context.Context, n int) int { // want `exported Ignores takes a context that is never consulted; check ctx.Err\(\) or forward it down the pipeline`
	return n * 2
}

// Blank discards the ctx outright (rule 2).
func Blank(_ context.Context, n int) int { // want `exported Blank discards its context parameter \(_\); name it and consult ctx.Err\(\) or forward it`
	return n
}

// ignores is unexported: rule 2 only polices exported entry points.
func ignores(ctx context.Context, n int) int {
	return n
}

// FanOutNoCheck consults its ctx at the top but the submitted closure
// never does, so an expired deadline cannot stop the fan-out (rule 3).
func FanOutNoCheck(ctx context.Context, items []int) {
	if ctx.Err() != nil {
		return
	}
	parallel.For(len(items), 4, func(i int) { // want `parallel fan-out closure never consults "ctx": check ctx.Err\(\) per task so an expired deadline stops the fan-out`
		items[i]++
	})
}

// Snapshot mimics the root pipeline type: its fan-out methods must take
// a context at all (rule 4).
type Snapshot struct{ vals []int }

func (s *Snapshot) scoreAll() {
	parallel.For(len(s.vals), 4, func(i int) { // want `Snapshot\.scoreAll fans out over the worker pool but takes no context; thread the request ctx through the stage`
		s.vals[i]++
	})
}

func (s *Snapshot) scoreCtx(ctx context.Context) {
	parallel.For(len(s.vals), 4, func(i int) {
		if ctx.Err() != nil {
			return
		}
		s.vals[i] *= 2
	})
}

var _ = ignores
