// Fixture for the //walrus:lint-ignore directive: a documented ignore
// suppresses its diagnostic, an undocumented one is itself a diagnostic
// (and suppresses nothing), and unknown or malformed directives are
// reported.
//
//walrus:lint-scope determinism

package ignorefix

import "time"

func documented() int64 {
	return time.Now().UnixNano() //walrus:lint-ignore determinism fixture exercises a documented suppression
}

func documentedStandalone() int64 {
	//walrus:lint-ignore determinism the directive on its own line covers the next line
	return time.Now().UnixNano()
}

func undocumented() int64 {
	// want+2 `//walrus:lint-ignore determinism is missing a reason`
	// want+2 `call to time.Now`
	//walrus:lint-ignore determinism
	return time.Now().UnixNano()
}

func unknownAnalyzer() {
	// want+1 `unknown analyzer "bogus" in //walrus:lint-ignore directive`
	//walrus:lint-ignore bogus this analyzer does not exist
}

func malformed() {
	// want+1 `malformed //walrus:lint-ignore directive: missing analyzer name`
	//walrus:lint-ignore
}
