package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Module     *struct{ Path string }
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library. Packages under analysis are checked from
// source; their imports (stdlib and module-internal alike) resolve
// through gc export data produced by `go list -export`, which is fast,
// build-cached, and always consistent with what the compiler sees.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	exports map[string]string // import path -> export data file
	imp     types.Importer
	pkgs    map[string]*Package // memoized source-checked packages
}

// NewLoader locates the module enclosing dir and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		ModRoot: root,
		ModPath: modPath,
		exports: make(map[string]string),
		pkgs:    make(map[string]*Package),
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookupExport)
	return l, nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					if mp := strings.Trim(strings.TrimSpace(rest), `"`); mp != "" {
						return d, mp, nil
					}
				}
			}
			return "", "", fmt.Errorf("lint: no module path in %s", filepath.Join(d, "go.mod"))
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found at or above %s", dir)
		}
		d = parent
	}
}

// goList runs `go list -export -deps -json` over the patterns and records
// every listed package's export data file.
func (l *Loader) goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Export,GoFiles,DepOnly,Standard,Module",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModRoot
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if lp.Export != "" {
			l.exports[lp.ImportPath] = lp.Export
		}
		out = append(out, &lp)
	}
	return out, nil
}

// lookupExport feeds the gc importer: it returns a reader over the export
// data of one import path, shelling out to `go list` lazily for paths not
// seen yet (e.g. stdlib packages only fixtures import).
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	if _, ok := l.exports[path]; !ok {
		if _, err := l.goList([]string{path}); err != nil {
			return nil, err
		}
	}
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// Load type-checks every module package matching the go package patterns
// (default "./...") and returns them sorted by import path. Test files
// and testdata directories are excluded, mirroring what ships in the
// build.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || lp.Module == nil || lp.Module.Path != l.ModPath {
			continue
		}
		pkg, err := l.loadFiles(lp.Dir, lp.ImportPath, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir type-checks the single package in dir (which may live under a
// testdata directory, where `go list` does not reach — this is how the
// analyzer fixtures are loaded).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test .go files in %s", dir)
	}
	return l.loadFiles(abs, l.ModPath+"/"+filepath.ToSlash(rel), names)
}

// loadFiles parses and type-checks one package from explicit file names.
func (l *Loader) loadFiles(dir, importPath string, names []string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		ModPath:    l.ModPath,
		Rel:        strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModPath), "/"),
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	for _, f := range files {
		pkg.Directives = append(pkg.Directives, parseDirectives(l.Fset, f)...)
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}
