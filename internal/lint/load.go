package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Imports    []string
	DepOnly    bool
	Standard   bool
	Module     *struct{ Path string }
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library. Packages under analysis are checked from
// source; their imports (stdlib and module-internal alike) resolve
// through gc export data produced by `go list -export`, which is fast,
// build-cached, and always consistent with what the compiler sees.
//
// A Loader is safe for concurrent use: the parallel driver loads
// distinct packages from separate goroutines. The FileSet is
// concurrency-safe by contract; the memo maps are guarded by mu and the
// gc importer (which caches internally) is serialized behind impMu.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	mu      sync.Mutex          // guards exports and pkgs
	exports map[string]string   // import path -> export data file
	pkgs    map[string]*Package // memoized source-checked packages

	impMu sync.Mutex // serializes the gc importer
	imp   types.Importer
}

// NewLoader locates the module enclosing dir and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		ModRoot: root,
		ModPath: modPath,
		exports: make(map[string]string),
		pkgs:    make(map[string]*Package),
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookupExport)
	return l, nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					if mp := strings.Trim(strings.TrimSpace(rest), `"`); mp != "" {
						return d, mp, nil
					}
				}
			}
			return "", "", fmt.Errorf("lint: no module path in %s", filepath.Join(d, "go.mod"))
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found at or above %s", dir)
		}
		d = parent
	}
}

// goList runs `go list -deps -json` over the patterns and returns every
// listed package. With export set it adds -export — compiling as needed
// and recording each package's export data file — which is what the
// type-checking path requires; the cache-key path lists without it,
// because skipping the export step is most of a warm run's speedup.
func (l *Loader) goList(patterns []string, export bool) ([]*listedPackage, error) {
	args := []string{"list", "-deps"}
	if export {
		args = append(args, "-export")
	}
	args = append(args,
		"-json=Dir,ImportPath,Export,GoFiles,Imports,DepOnly,Standard,Module",
		"--",
	)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModRoot
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if lp.Export != "" {
			l.mu.Lock()
			l.exports[lp.ImportPath] = lp.Export
			l.mu.Unlock()
		}
		out = append(out, &lp)
	}
	return out, nil
}

// exportFile returns the recorded export data file for an import path.
func (l *Loader) exportFile(path string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	file, ok := l.exports[path]
	return file, ok
}

// ensureExports records export data files for the given packages (and
// their dependencies) in one `go list -export` invocation, so loading a
// batch of packages does not degenerate into one subprocess per import.
func (l *Loader) ensureExports(patterns []string) error {
	if len(patterns) == 0 {
		return nil
	}
	_, err := l.goList(patterns, true)
	return err
}

// lookupExport feeds the gc importer: it returns a reader over the export
// data of one import path, shelling out to `go list` lazily for paths not
// seen yet (e.g. stdlib packages only fixtures import).
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	if _, ok := l.exportFile(path); !ok {
		if _, err := l.goList([]string{path}, true); err != nil {
			return nil, err
		}
	}
	file, ok := l.exportFile(path)
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// lockedImporter serializes calls into the loader's gc importer, whose
// internal package cache is not safe for concurrent use. It implements
// types.ImporterFrom so the type-checker takes the vendor-aware path.
type lockedImporter struct{ l *Loader }

func (li lockedImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li lockedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	li.l.impMu.Lock()
	defer li.l.impMu.Unlock()
	if from, ok := li.l.imp.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return li.l.imp.Import(path)
}

// List resolves the go package patterns (default "./...") to the
// module's own packages — sorted by import path, without type-checking
// or compiling anything. It also returns an index of every
// module-internal package the listing reached (including
// dependency-only ones), which is what the cache keyer walks to hash a
// package's transitive in-module sources. The cache-aware driver lists
// first and only loads the misses.
func (l *Loader) List(patterns ...string) ([]*listedPackage, map[string]*listedPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := l.goList(patterns, false)
	if err != nil {
		return nil, nil, err
	}
	var out []*listedPackage
	index := make(map[string]*listedPackage)
	for _, lp := range listed {
		if lp.Standard || lp.Module == nil || lp.Module.Path != l.ModPath {
			continue
		}
		index[lp.ImportPath] = lp
		if lp.DepOnly {
			continue
		}
		out = append(out, lp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, index, nil
}

// Load type-checks every module package matching the go package patterns
// (default "./...") and returns them sorted by import path. Test files
// and testdata directories are excluded, mirroring what ships in the
// build.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, _, err := l.List(patterns...)
	if err != nil {
		return nil, err
	}
	paths := make([]string, len(listed))
	for i, lp := range listed {
		paths[i] = lp.ImportPath
	}
	if err := l.ensureExports(paths); err != nil {
		return nil, err
	}
	out := make([]*Package, 0, len(listed))
	for _, lp := range listed {
		pkg, err := l.loadFiles(lp.Dir, lp.ImportPath, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks the single package in dir (which may live under a
// testdata directory, where `go list` does not reach — this is how the
// analyzer fixtures are loaded).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test .go files in %s", dir)
	}
	return l.loadFiles(abs, l.ModPath+"/"+filepath.ToSlash(rel), names)
}

// loadFiles parses and type-checks one package from explicit file names.
func (l *Loader) loadFiles(dir, importPath string, names []string) (*Package, error) {
	l.mu.Lock()
	p, ok := l.pkgs[importPath]
	l.mu.Unlock()
	if ok {
		return p, nil
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: lockedImporter{l}}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		ModPath:    l.ModPath,
		Rel:        strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModPath), "/"),
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	for _, f := range files {
		pkg.Directives = append(pkg.Directives, parseDirectives(l.Fset, f)...)
	}
	l.mu.Lock()
	l.pkgs[importPath] = pkg
	l.mu.Unlock()
	return pkg, nil
}
