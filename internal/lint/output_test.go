package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteText(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "errsink", File: "/mod/persist.go", Line: 12, Col: 3, Message: "dropped error"},
		{Analyzer: "determinism", File: "/elsewhere/x.go", Line: 1, Col: 1, Message: "wall clock"},
	}
	var sb strings.Builder
	if err := WriteText(&sb, "/mod", diags); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "persist.go:12:3: errsink: dropped error") {
		t.Errorf("in-module path not relativized:\n%s", got)
	}
	if !strings.Contains(got, "/elsewhere/x.go:1:1: determinism: wall clock") {
		t.Errorf("out-of-module path mangled:\n%s", got)
	}
}

func TestWriteJSON(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "lockdiscipline", File: "a.go", Line: 3, Col: 7, Message: "unlocked access"},
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, diags); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, sb.String())
	}
	if len(decoded) != 1 {
		t.Fatalf("got %d elements, want 1", len(decoded))
	}
	for _, key := range []string{"analyzer", "file", "line", "col", "message"} {
		if _, ok := decoded[0][key]; !ok {
			t.Errorf("JSON diagnostic is missing key %q: %v", key, decoded[0])
		}
	}
}

// TestWriteJSONEmpty pins the clean-run shape: an empty array, never
// null, so `jq length` and similar tooling work unconditionally.
func TestWriteJSONEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != "[]" {
		t.Errorf("empty diagnostics encoded as %q, want []", got)
	}
}
