package lint

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files under testdata/golden")

// goldenDiags is the fixed diagnostic set behind the golden files:
// deterministic paths rooted at /mod, one out-of-module path, and a
// message with characters JSON must escape.
var goldenDiags = []Diagnostic{
	{Analyzer: "ctxflow", File: "/mod/query.go", Line: 12, Col: 3, Message: `context.Background() discards the caller's deadline: forward "ctx" instead`},
	{Analyzer: "goroleak", File: "/mod/internal/serve/serve.go", Line: 40, Col: 2, Message: "goroutine has no provable shutdown edge"},
	{Analyzer: "hotalloc", File: "/elsewhere/x.go", Line: 7, Col: 9, Message: "make([]float64) inside a hot loop allocates every iteration"},
}

// checkGolden compares got against testdata/golden/<name>, rewriting the
// file under -update-golden.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestWriteText(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "errsink", File: "/mod/persist.go", Line: 12, Col: 3, Message: "dropped error"},
		{Analyzer: "determinism", File: "/elsewhere/x.go", Line: 1, Col: 1, Message: "wall clock"},
	}
	var sb strings.Builder
	if err := WriteText(&sb, "/mod", diags); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "persist.go:12:3: errsink: dropped error") {
		t.Errorf("in-module path not relativized:\n%s", got)
	}
	if !strings.Contains(got, "/elsewhere/x.go:1:1: determinism: wall clock") {
		t.Errorf("out-of-module path mangled:\n%s", got)
	}
}

func TestWriteJSON(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "lockdiscipline", File: "a.go", Line: 3, Col: 7, Message: "unlocked access"},
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, diags); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, sb.String())
	}
	if len(decoded) != 1 {
		t.Fatalf("got %d elements, want 1", len(decoded))
	}
	for _, key := range []string{"analyzer", "file", "line", "col", "message"} {
		if _, ok := decoded[0][key]; !ok {
			t.Errorf("JSON diagnostic is missing key %q: %v", key, decoded[0])
		}
	}
}

// TestWriteJSONGolden pins the exact -json byte shape against a golden
// file and round-trips it back into []Diagnostic losslessly.
func TestWriteJSONGolden(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, goldenDiags); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "diags.json", sb.String())

	var back []Diagnostic
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(goldenDiags) {
		t.Fatalf("round-trip lost diagnostics: got %d, want %d", len(back), len(goldenDiags))
	}
	for i := range back {
		if back[i] != goldenDiags[i] {
			t.Errorf("diagnostic %d changed in round-trip:\n got %+v\nwant %+v", i, back[i], goldenDiags[i])
		}
	}
}

// TestWriteSARIFGolden pins the -sarif output against a golden file and
// verifies the SARIF log still carries every diagnostic: rule id,
// message, module-relative URI, and position all survive the format.
func TestWriteSARIFGolden(t *testing.T) {
	var sb strings.Builder
	if err := WriteSARIF(&sb, "/mod", All(), goldenDiags); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "diags.sarif", sb.String())

	var log sarifLog
	if err := json.Unmarshal([]byte(sb.String()), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF envelope: version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "walrus-lint" {
		t.Errorf("driver name %q, want walrus-lint", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(All()) {
		t.Errorf("rule table has %d entries, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(All()))
	}
	if len(run.Results) != len(goldenDiags) {
		t.Fatalf("SARIF run has %d results, want %d", len(run.Results), len(goldenDiags))
	}
	wantURIs := []string{"query.go", "internal/serve/serve.go", "/elsewhere/x.go"}
	for i, res := range run.Results {
		d := goldenDiags[i]
		if res.RuleID != d.Analyzer || res.Message.Text != d.Message {
			t.Errorf("result %d: got (%s, %q), want (%s, %q)", i, res.RuleID, res.Message.Text, d.Analyzer, d.Message)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != wantURIs[i] {
			t.Errorf("result %d URI %q, want %q", i, loc.ArtifactLocation.URI, wantURIs[i])
		}
		if loc.Region.StartLine != d.Line || loc.Region.StartColumn != d.Col {
			t.Errorf("result %d region %d:%d, want %d:%d", i, loc.Region.StartLine, loc.Region.StartColumn, d.Line, d.Col)
		}
	}
}

// TestWriteJSONEmpty pins the clean-run shape: an empty array, never
// null, so `jq length` and similar tooling work unconditionally.
func TestWriteJSONEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != "[]" {
		t.Errorf("empty diagnostics encoded as %q, want []", got)
	}
}
