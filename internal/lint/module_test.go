package lint

import "testing"

// TestModuleIsLintClean lints the real module with every analyzer — the
// same run ci.sh gates on — and asserts zero diagnostics. A failure here
// means a determinism, durability, locking, or parallel-convention
// regression slipped into the tree (or an ignore directive lost its
// reason).
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	l := testLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	if diags := Run(pkgs, All()); len(diags) != 0 {
		t.Errorf("module is not lint-clean (%d diagnostics):\n%s", len(diags), fmtDiags(diags))
	}
}
