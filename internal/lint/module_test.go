package lint

import (
	"path/filepath"
	"testing"
)

// TestModuleIsLintClean lints the real module with every analyzer — the
// same run ci.sh gates on — and asserts zero diagnostics beyond the
// checked-in baseline. A failure here means a context-propagation,
// determinism, durability, goroutine-lifecycle, locking, or
// parallel-convention regression slipped into the tree (or an ignore
// directive lost its reason). Baselined hotalloc findings are the
// tracked allocation debt of the hot files; growing that set fails too.
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	l := testLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	baseline, err := LoadBaseline(filepath.Join(l.ModRoot, ".walrus-lint-baseline"))
	if err != nil {
		t.Fatalf("loading baseline: %v", err)
	}
	diags, absorbed := baseline.Apply(l.ModRoot, Run(pkgs, All()))
	t.Logf("baseline absorbed %d tracked findings", absorbed)
	if len(diags) != 0 {
		t.Errorf("module is not lint-clean (%d diagnostics beyond the baseline):\n%s", len(diags), fmtDiags(diags))
	}
}
