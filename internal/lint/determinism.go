package lint

import (
	"go/ast"
	"go/types"
)

// determinismScope lists the module-relative package paths whose output
// must be bit-exact reproducible: the signature-extraction and matching
// pipeline plus the root package's scoring. internal/experiments and
// benchmark code stay out of scope by design — wall-clock timing is their
// job.
var determinismScope = map[string]bool{
	"":                 true, // module root: scoring, batch, bulk
	"internal/wavelet": true,
	"internal/region":  true,
	"internal/birch":   true,
	"internal/rstar":   true,
	"internal/match":   true,
}

// forbiddenCalls maps fully-qualified callees to the reason they break
// reproducibility inside the deterministic pipeline.
var forbiddenCalls = map[string]string{
	"time.Now":              "wall-clock read",
	"time.Since":            "wall-clock read",
	"time.Until":            "wall-clock read",
	"math/rand.Int":         "global math/rand source",
	"math/rand.Intn":        "global math/rand source",
	"math/rand.Int31":       "global math/rand source",
	"math/rand.Int31n":      "global math/rand source",
	"math/rand.Int63":       "global math/rand source",
	"math/rand.Int63n":      "global math/rand source",
	"math/rand.Uint32":      "global math/rand source",
	"math/rand.Uint64":      "global math/rand source",
	"math/rand.Float32":     "global math/rand source",
	"math/rand.Float64":     "global math/rand source",
	"math/rand.ExpFloat64":  "global math/rand source",
	"math/rand.NormFloat64": "global math/rand source",
	"math/rand.Perm":        "global math/rand source",
	"math/rand.Shuffle":     "global math/rand source",
	"math/rand.Seed":        "global math/rand source",
	"math/rand/v2.Int":      "global math/rand source",
	"math/rand/v2.IntN":     "global math/rand source",
	"math/rand/v2.Float64":  "global math/rand source",
	"math/rand/v2.Perm":     "global math/rand source",
	"math/rand/v2.Shuffle":  "global math/rand source",
}

// Determinism forbids nondeterminism sources inside the signature
// pipeline packages: wall-clock reads, the global math/rand source,
// map-range iteration feeding ordered output, and goroutine closures that
// mutate shared captured state (whose final value then depends on the
// schedule). Packages outside the default scope can opt in with
// //walrus:lint-scope determinism.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand, map-order and schedule dependence in the signature pipeline",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	pkg := pass.Pkg
	if !determinismScope[pkg.Rel] && !pkg.ScopedFor(pass.analyzer.Name) {
		return
	}
	exempt := clockExempt[pkg.Rel]
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			// Sanctioned clock helpers (the shared clockExempt list in
			// obs.go) may read the wall clock; everything else in them is
			// still checked.
			clockOK := false
			if fd, ok := decl.(*ast.FuncDecl); ok {
				clockOK = exempt[fd.Name.Name]
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.CallExpr:
					fn := calleeOf(pkg.Info, st)
					if reason, bad := forbiddenCalls[funcPath(fn)]; bad {
						if clockOK && reason == "wall-clock read" {
							return true
						}
						pass.Reportf(st.Pos(), "call to %s.%s (%s) in deterministic package %s", fn.Pkg().Path(), fn.Name(), reason, pkg.ImportPath)
					}
				case *ast.RangeStmt:
					checkMapRange(pass, st)
				case *ast.GoStmt:
					if fl, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
						for _, w := range sharedClosureWrites(pkg.Info, fl) {
							pass.Reportf(w.pos, "goroutine closure %s captured %q: final value depends on goroutine schedule; write a per-index slot instead", w.verb, w.name)
						}
					}
				}
				return true
			})
		}
	}
}

// checkMapRange flags `for k := range m` loops over maps whose iteration
// order escapes into ordered output. Two accumulation shapes are exempt:
// order-insensitive integer accumulation (+=, counters) and loops whose
// collected variable is sorted later in the same enclosing block.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// Collect the variables the loop body appends to or assigns through;
	// they inherit map order.
	type sink struct {
		obj  types.Object
		node ast.Node
	}
	var sinks []sink
	orderSensitive := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				root := rootIdent(lhs)
				if root == nil {
					continue
				}
				obj := info.Uses[root]
				if obj == nil {
					obj = info.Defs[root]
				}
				if obj == nil || obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
					continue // loop-local
				}
				appendRHS := len(st.Rhs) == len(st.Lhs) && isBuiltinAppend(info, st.Rhs[i])
				if appendRHS {
					sinks = append(sinks, sink{obj, st})
					continue
				}
				// Plain writes keyed by the loop variable (m2[k] = v) or
				// integer accumulation (sum += v) are order-insensitive.
				if st.Tok.String() == "+=" || st.Tok.String() == "|=" {
					if tv, ok := info.Types[lhs]; ok && tv.Type != nil {
						if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
							continue
						}
					}
				}
				if _, isIdx := ast.Unparen(lhs).(*ast.IndexExpr); isIdx {
					continue // keyed write: order-independent
				}
				orderSensitive = true
				sinks = append(sinks, sink{obj, st})
			}
		}
		return true
	})
	if len(sinks) == 0 && !orderSensitive {
		return
	}
	// Suppress when each sink variable is sorted after the loop in the
	// same block: `for k := range m { out = append(out, k) }; sort.X(out)`.
	for _, s := range sinks {
		if sortedAfter(pass, rng, s.obj) {
			continue
		}
		pass.Reportf(s.node.Pos(), "map iteration order feeds %q without a subsequent sort; range over sorted keys or sort the result", s.obj.Name())
	}
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort*
// call in a statement after the range loop inside the same block.
func sortedAfter(pass *Pass, rng *ast.RangeStmt, obj types.Object) bool {
	info := pass.Pkg.Info
	found := false
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			idx := -1
			for i, st := range block.List {
				if st == ast.Stmt(rng) {
					idx = i
					break
				}
			}
			if idx < 0 {
				return true
			}
			for _, st := range block.List[idx+1:] {
				ast.Inspect(st, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeOf(info, call)
					if fn == nil || fn.Pkg() == nil {
						return true
					}
					p := fn.Pkg().Path()
					if p != "sort" && p != "slices" {
						return true
					}
					for _, arg := range call.Args {
						if root := rootIdent(arg); root != nil && info.Uses[root] == obj {
							found = true
						}
					}
					return !found
				})
				if found {
					break
				}
			}
			return !found
		})
		if found {
			break
		}
	}
	return found
}
