package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
)

// cacheSchema versions the cache file format and the analysis semantics
// it captures. Bump it when the stored shape or the meaning of a key
// changes; old caches then miss cleanly instead of replaying stale
// diagnostics.
const cacheSchema = 2

// Cache is the on-disk result cache behind `.walrus-lint-cache`: one
// entry per package, keyed by a content hash of everything the
// package's diagnostics depend on. A hit skips type-checking and
// analysis entirely, which is where the warm-run speedup comes from.
//
// Stored file paths are module-root-relative so the cache survives a
// checkout moving; Get rewrites them back to absolute paths.
type Cache struct {
	path    string
	modRoot string

	mu      sync.Mutex
	entries map[string]cacheEntry // import path -> entry
	dirty   bool
}

type cacheEntry struct {
	Key   string       `json:"key"`
	Diags []Diagnostic `json:"diags"`
}

type cacheFile struct {
	Schema  int                   `json:"schema"`
	Entries map[string]cacheEntry `json:"entries"`
}

// OpenCache loads the cache at path (module-root-relative diagnostics
// resolve against modRoot). A missing, unreadable, or schema-mismatched
// file yields an empty cache — the cache is an accelerator, never a
// correctness dependency.
func OpenCache(path, modRoot string) *Cache {
	c := &Cache{path: path, modRoot: modRoot, entries: make(map[string]cacheEntry)}
	data, err := os.ReadFile(path)
	if err != nil {
		return c
	}
	var cf cacheFile
	if json.Unmarshal(data, &cf) != nil || cf.Schema != cacheSchema || cf.Entries == nil {
		return c
	}
	c.entries = cf.Entries
	return c
}

// Get returns the cached diagnostics for the import path if its stored
// key matches, with file paths rewritten to absolute.
func (c *Cache) Get(importPath, key string) ([]Diagnostic, bool) {
	c.mu.Lock()
	e, ok := c.entries[importPath]
	c.mu.Unlock()
	if !ok || e.Key != key {
		return nil, false
	}
	out := make([]Diagnostic, len(e.Diags))
	for i, d := range e.Diags {
		if !filepath.IsAbs(d.File) {
			d.File = filepath.Join(c.modRoot, filepath.FromSlash(d.File))
		}
		out[i] = d
	}
	return out, true
}

// Put records the diagnostics for the import path under key, with file
// paths stored module-root-relative.
func (c *Cache) Put(importPath, key string, diags []Diagnostic) {
	stored := make([]Diagnostic, len(diags))
	for i, d := range diags {
		if rel, err := filepath.Rel(c.modRoot, d.File); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			d.File = filepath.ToSlash(rel)
		}
		stored[i] = d
	}
	c.mu.Lock()
	c.entries[importPath] = cacheEntry{Key: key, Diags: stored}
	c.dirty = true
	c.mu.Unlock()
}

// Save writes the cache back to disk atomically (temp file + rename).
// A clean cache with no new entries is left untouched.
func (c *Cache) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dirty {
		return nil
	}
	data, err := json.MarshalIndent(cacheFile{Schema: cacheSchema, Entries: c.entries}, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), ".walrus-lint-cache-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	c.dirty = false
	return nil
}

// keyer computes cache keys for listed packages without compiling
// anything. A key covers everything a package's diagnostics depend on:
// the cache schema, the toolchain version (which pins the stdlib —
// upgrading go invalidates everything), the analyzer set, and the
// source bytes of the package plus its transitive module-internal
// dependencies. Hashing sources directly, instead of export-data file
// paths, is what lets the warm path skip `go list -export` — the
// dominant cost of a warm run.
type keyer struct {
	module map[string]*listedPackage // module-internal packages by import path

	mu     sync.Mutex
	hashes map[string]string // import path -> memoized source hash
}

func newKeyer(index map[string]*listedPackage) *keyer {
	return &keyer{module: index, hashes: make(map[string]string)}
}

// sourceHash hashes one package's non-test source files (memoized; safe
// for concurrent use from the parallel driver).
func (k *keyer) sourceHash(lp *listedPackage) (string, error) {
	k.mu.Lock()
	sum, ok := k.hashes[lp.ImportPath]
	k.mu.Unlock()
	if ok {
		return sum, nil
	}
	h := sha256.New()
	for _, name := range lp.GoFiles {
		data, err := os.ReadFile(filepath.Join(lp.Dir, name))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "file %s %x\n", name, sha256.Sum256(data))
	}
	sum = hex.EncodeToString(h.Sum(nil))
	k.mu.Lock()
	k.hashes[lp.ImportPath] = sum
	k.mu.Unlock()
	return sum, nil
}

// closure returns the sorted import paths of lp's module-internal
// transitive dependency closure, including lp itself. Stdlib imports
// are excluded — the toolchain version line in the key covers them.
func (k *keyer) closure(lp *listedPackage) []string {
	seen := map[string]bool{lp.ImportPath: true}
	stack := []string{lp.ImportPath}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		dep := k.module[p]
		if dep == nil {
			continue
		}
		for _, imp := range dep.Imports {
			if !seen[imp] && k.module[imp] != nil {
				seen[imp] = true
				stack = append(stack, imp)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// key returns the cache key for one package under the given analyzer
// set.
func (k *keyer) key(lp *listedPackage, analyzers []*Analyzer) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "schema %d\n", cacheSchema)
	fmt.Fprintf(h, "go %s\n", runtime.Version())
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	fmt.Fprintf(h, "analyzers %v\n", names)
	fmt.Fprintf(h, "package %s\n", lp.ImportPath)
	for _, p := range k.closure(lp) {
		sum, err := k.sourceHash(k.module[p])
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "pkg %s %s\n", p, sum)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
