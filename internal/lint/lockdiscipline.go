package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockDiscipline checks methods of mutex-carrying structs: a field whose
// declaration comment says "guarded by mu" may only be touched while the
// receiver's mu is held, and mu.Lock() must never run while mu.RLock() is
// already held (an RWMutex upgrade deadlocks). Methods whose name ends in
// "Locked" are exempt by convention — their contract is "caller holds
// mu".
//
// Methods of guarded types are additionally forbidden from acquiring
// another guarded object's mu directly (fleet code reaching into a
// shard's db.mu, say): each mutex is private to its owner, and bypassing
// the owner's methods silently skips whatever invariants those methods
// maintain. Route the access through a method of the owning object.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "flag guarded-field access without the documented mutex and RLock-to-Lock upgrades",
	Run:  runLockDiscipline,
}

const guardedMarker = "guarded by mu"

// guardedType records one struct type carrying a `mu` mutex and the names
// of its guarded fields.
type guardedType struct {
	fields map[string]bool
}

func runLockDiscipline(pass *Pass) {
	pkg := pass.Pkg
	guarded := collectGuardedTypes(pkg)
	if len(guarded) == 0 {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // contract: caller holds mu
			}
			recvObj, typeName := receiverOf(pkg, fd)
			if recvObj == nil {
				continue
			}
			gt, ok := guarded[typeName]
			if !ok {
				continue
			}
			checkMethodLocking(pass, fd, recvObj, typeName, gt, guarded)
		}
	}
}

// collectGuardedTypes finds struct types declaring a `mu` sync.Mutex or
// sync.RWMutex field plus at least one field whose comment contains
// "guarded by mu".
func collectGuardedTypes(pkg *Package) map[string]*guardedType {
	out := make(map[string]*guardedType)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				hasMu := false
				fields := make(map[string]bool)
				for _, field := range st.Fields.List {
					comment := field.Doc.Text() + " " + field.Comment.Text()
					for _, name := range field.Names {
						if name.Name == "mu" {
							hasMu = true
							continue
						}
						if strings.Contains(comment, guardedMarker) {
							fields[name.Name] = true
						}
					}
				}
				if hasMu && len(fields) > 0 {
					out[ts.Name.Name] = &guardedType{fields: fields}
				}
			}
		}
	}
	return out
}

// receiverOf returns the receiver variable object and the name of its
// (pointer-unwrapped) named type.
func receiverOf(pkg *Package, fd *ast.FuncDecl) (types.Object, string) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil, ""
	}
	name := fd.Recv.List[0].Names[0]
	obj := pkg.Info.Defs[name]
	if obj == nil {
		return nil, ""
	}
	named := namedOf(obj.Type())
	if named == nil {
		return nil, ""
	}
	return obj, named.Obj().Name()
}

// lockEvent is one position-ordered action inside a method body relevant
// to the lock-state simulation.
type lockEvent struct {
	pos     token.Pos
	kind    string // "lock", "rlock", "unlock", "runlock", "read", "write"
	field   string // for read/write
	inDefer bool
}

// checkMethodLocking simulates lock state over the method's statements in
// source order and reports guarded accesses outside the lock plus
// RLock-to-Lock upgrades. The simulation is linear — branches are treated
// as straight-line code — which is deliberately conservative-enough for a
// repo whose locking style is acquire-at-top, defer-unlock.
func checkMethodLocking(pass *Pass, fd *ast.FuncDecl, recv types.Object, recvType string, gt *guardedType, guarded map[string]*guardedType) {
	info := pass.Pkg.Info
	var events []lockEvent
	var deferDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			// Closures run on their own schedule; their guarded accesses
			// are the invoker's responsibility.
			return false
		case *ast.DeferStmt:
			deferDepth++
			ast.Inspect(st.Call, walk)
			deferDepth--
			return false
		case *ast.CallExpr:
			if field, method, ok := recvSelector2(info, recv, st.Fun); ok && field == "mu" {
				switch method {
				case "Lock", "RLock", "Unlock", "RUnlock":
					events = append(events, lockEvent{
						pos: st.Pos(), kind: strings.ToLower(method), inDefer: deferDepth > 0,
					})
					return false
				}
			}
			if owner, ownerType, method, ok := foreignMuOp(info, recv, guarded, st.Fun); ok {
				pass.Reportf(st.Pos(), "%s.mu.%s() inside %s.%s acquires another %s's private mutex; call a %s method instead",
					types.ExprString(owner), method, recvType, fd.Name.Name, ownerType, ownerType)
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if field, ok := recvFieldAccess(info, recv, lhs); ok && gt.fields[field] {
					events = append(events, lockEvent{pos: lhs.Pos(), kind: "write", field: field})
				}
			}
			for _, rhs := range st.Rhs {
				ast.Inspect(rhs, walk)
			}
			return false
		case *ast.SelectorExpr:
			if field, ok := recvFieldAccess(info, recv, st); ok && gt.fields[field] {
				events = append(events, lockEvent{pos: st.Pos(), kind: "read", field: field})
				return false
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	state := "unlocked"
	for _, ev := range events {
		switch ev.kind {
		case "lock":
			if state == "rlocked" {
				pass.Reportf(ev.pos, "%s.mu.Lock() while mu.RLock() is held: RWMutex upgrade deadlocks", recv.Name())
			}
			state = "locked"
		case "rlock":
			state = "rlocked"
		case "unlock", "runlock":
			if !ev.inDefer {
				state = "unlocked"
			}
		case "read":
			if state == "unlocked" {
				pass.Reportf(ev.pos, "%s.%s is guarded by mu but read without holding it; acquire mu or rename the method with the Locked suffix", recv.Name(), ev.field)
			}
		case "write":
			switch state {
			case "unlocked":
				pass.Reportf(ev.pos, "%s.%s is guarded by mu but written without holding it; acquire mu or rename the method with the Locked suffix", recv.Name(), ev.field)
			case "rlocked":
				pass.Reportf(ev.pos, "%s.%s written under mu.RLock(); writes require the exclusive lock", recv.Name(), ev.field)
			}
		}
	}
}

// recvSelector2 matches expressions of the form recv.<field>.<method>
// (e.g. db.mu.Lock) and returns the field and method names.
func recvSelector2(info *types.Info, recv types.Object, e ast.Expr) (field, method string, ok bool) {
	outer, okSel := ast.Unparen(e).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	inner, okSel := ast.Unparen(outer.X).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okSel := ast.Unparen(inner.X).(*ast.Ident)
	if !okSel || info.Uses[id] != recv {
		return "", "", false
	}
	return inner.Sel.Name, outer.Sel.Name, true
}

// foreignMuOp matches <owner>.mu.<Lock/RLock/...> where owner is NOT the
// receiver and owner's (pointer-unwrapped) type is a guarded type of this
// package: a cross-object mutex acquisition. With sharding, fleet-level
// code holds references to per-shard guarded objects; this is the shape
// that would let it bypass a shard's own locking discipline.
func foreignMuOp(info *types.Info, recv types.Object, guarded map[string]*guardedType, e ast.Expr) (owner ast.Expr, ownerType, method string, ok bool) {
	outer, okSel := ast.Unparen(e).(*ast.SelectorExpr)
	if !okSel || !mutexOpNames[outer.Sel.Name] {
		return nil, "", "", false
	}
	inner, okSel := ast.Unparen(outer.X).(*ast.SelectorExpr)
	if !okSel || inner.Sel.Name != "mu" {
		return nil, "", "", false
	}
	if id, isIdent := ast.Unparen(inner.X).(*ast.Ident); isIdent && info.Uses[id] == recv {
		return nil, "", "", false // the receiver's own mu: handled by the lock simulation
	}
	named := namedOf(info.TypeOf(inner.X))
	if named == nil || guarded[named.Obj().Name()] == nil {
		return nil, "", "", false
	}
	return inner.X, named.Obj().Name(), outer.Sel.Name, true
}

// recvFieldAccess matches recv.<field> (possibly indexed or dereferenced
// further) and returns the field name.
func recvFieldAccess(info *types.Info, recv types.Object, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || info.Uses[id] != recv {
		return "", false
	}
	return sel.Sel.Name, true
}
