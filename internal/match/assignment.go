package match

import (
	"math"

	"walrus/internal/region"
)

// scoreAssignment builds a one-to-one similar-region-pair set by solving a
// maximum-weight bipartite assignment (Hungarian algorithm, O(n³)) where a
// pair's weight is its standalone covered area. Overlap between chosen
// regions is what makes the true problem NP-hard (Theorem 5.1); ignoring
// it during selection yields a polynomial matcher that is optimal whenever
// regions do not overlap and a strong heuristic otherwise. The reported
// coverage is computed with real bitmap unions, so overlap never inflates
// the score.
func scoreAssignment(qRegions, tRegions []region.Region, pairs []Pair, qArea, tArea int) Result {
	if len(pairs) == 0 {
		return Result{}
	}
	// Compact the region indexes that actually occur in pairs.
	qIdx := map[int]int{}
	tIdx := map[int]int{}
	var qIDs, tIDs []int
	for _, p := range pairs {
		if _, ok := qIdx[p.Q]; !ok {
			qIdx[p.Q] = len(qIDs)
			qIDs = append(qIDs, p.Q)
		}
		if _, ok := tIdx[p.T]; !ok {
			tIdx[p.T] = len(tIDs)
			tIDs = append(tIDs, p.T)
		}
	}
	n, m := len(qIDs), len(tIDs)
	// The Hungarian routine wants rows <= cols; transpose if needed.
	transposed := n > m
	if transposed {
		n, m = m, n
	}
	weight := func(r, c int) float64 { return 0 }
	pairSet := make(map[[2]int]float64, len(pairs))
	for _, p := range pairs {
		w := qRegions[p.Q].Bitmap.Fraction()*float64(qArea) +
			tRegions[p.T].Bitmap.Fraction()*float64(tArea)
		pairSet[[2]int{qIdx[p.Q], tIdx[p.T]}] = w
	}
	if transposed {
		weight = func(r, c int) float64 { return pairSet[[2]int{c, r}] }
	} else {
		weight = func(r, c int) float64 { return pairSet[[2]int{r, c}] }
	}

	// Minimize negated weights; absent pairs have weight 0 and thus never
	// beat a real pair for the same slot.
	cost := make([][]float64, n)
	for r := range cost {
		cost[r] = make([]float64, m)
		for c := range cost[r] {
			cost[r][c] = -weight(r, c)
		}
	}
	rowMatch := hungarian(cost)

	k := qRegions[pairs[0].Q].Bitmap.K
	uq := region.NewBitmap(k)
	ut := region.NewBitmap(k)
	var chosen []Pair
	for r, c := range rowMatch {
		if c < 0 {
			continue
		}
		qi, ti := r, c
		if transposed {
			qi, ti = c, r
		}
		if _, real := pairSet[[2]int{qi, ti}]; !real {
			continue
		}
		p := Pair{Q: qIDs[qi], T: tIDs[ti]}
		chosen = append(chosen, p)
		uq.UnionWith(qRegions[p.Q].Bitmap)
		ut.UnionWith(tRegions[p.T].Bitmap)
	}
	return Result{
		Pairs:    chosen,
		CoveredQ: uq.Fraction() * float64(qArea),
		CoveredT: ut.Fraction() * float64(tArea),
	}
}

// hungarian solves the min-cost assignment problem for an n×m cost matrix
// with n <= m, returning the matched column for each row. It is the
// classic O(n²m) potential-based formulation.
func hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	m := len(cost[0])
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)   // p[j] = row matched to column j (1-based; 0 = free)
	way := make([]int, m+1) // way[j] = previous column on the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			out[p[j]-1] = j - 1
		}
	}
	return out
}
