package match

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"walrus/internal/region"
)

func TestHungarianSmallMatrices(t *testing.T) {
	// 2x2: optimal assignment is the anti-diagonal.
	cost := [][]float64{
		{10, 1},
		{1, 10},
	}
	got := hungarian(cost)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("hungarian = %v, want [1 0]", got)
	}
	// Rectangular 2x3.
	cost = [][]float64{
		{5, 2, 9},
		{2, 7, 1},
	}
	got = hungarian(cost)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("hungarian = %v, want [1 2]", got)
	}
	if hungarian(nil) != nil {
		t.Fatal("empty matrix")
	}
}

// TestHungarianMatchesBruteForce compares against exhaustive search on
// random square matrices.
func TestHungarianMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 10
			}
		}
		assigned := hungarian(cost)
		got := 0.0
		for i, j := range assigned {
			got += cost[i][j]
		}
		// Brute force over permutations.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		best := math.Inf(1)
		var recurse func(k int)
		recurse = func(k int) {
			if k == n {
				total := 0.0
				for i, j := range perm {
					total += cost[i][j]
				}
				if total < best {
					best = total
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				recurse(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		recurse(0)
		return math.Abs(got-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAssignmentMatchesExactOnDisjointRegions: with disjoint regions the
// no-overlap relaxation is exact.
func TestAssignmentMatchesExactOnDisjointRegions(t *testing.T) {
	var q, tr []region.Region
	var pairs []Pair
	for i := 0; i < 4; i++ {
		q = append(q, makeRegion(4, []float64{float64(i)}, block(i, 0, i+1, 4)))
		tr = append(tr, makeRegion(4, []float64{float64(i)}, block(i, 0, i+1, 4)))
	}
	// All-pairs bait: region i of q may pair with any region of t.
	for qi := 0; qi < 4; qi++ {
		for ti := 0; ti < 4; ti++ {
			pairs = append(pairs, Pair{qi, ti})
		}
	}
	exact, err := Score(q, tr, pairs, 100, 100, Options{Algorithm: Exact})
	if err != nil {
		t.Fatal(err)
	}
	asn, err := Score(q, tr, pairs, 100, 100, Options{Algorithm: Assignment})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.Similarity-asn.Similarity) > 1e-12 {
		t.Fatalf("assignment %v != exact %v on disjoint regions", asn.Similarity, exact.Similarity)
	}
	if asn.Similarity != 1 {
		t.Fatalf("similarity = %v, want 1", asn.Similarity)
	}
	if len(asn.Pairs) != 4 {
		t.Fatalf("assignment used %d pairs", len(asn.Pairs))
	}
}

// TestAssignmentOneToOne: no region appears twice in the pair set.
func TestAssignmentOneToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const k = 4
		nq, nt := 1+rng.Intn(5), 1+rng.Intn(5)
		mk := func() region.Region {
			var cells [][2]int
			for y := 0; y < k; y++ {
				for x := 0; x < k; x++ {
					if rng.Intn(3) == 0 {
						cells = append(cells, [2]int{x, y})
					}
				}
			}
			return makeRegion(k, []float64{rng.Float64()}, cells)
		}
		var q, tr []region.Region
		for i := 0; i < nq; i++ {
			q = append(q, mk())
		}
		for i := 0; i < nt; i++ {
			tr = append(tr, mk())
		}
		var pairs []Pair
		for qi := 0; qi < nq; qi++ {
			for ti := 0; ti < nt; ti++ {
				if rng.Intn(2) == 0 {
					pairs = append(pairs, Pair{qi, ti})
				}
			}
		}
		res, err := Score(q, tr, pairs, 100, 100, Options{Algorithm: Assignment})
		if err != nil {
			return false
		}
		seenQ := map[int]bool{}
		seenT := map[int]bool{}
		for _, p := range res.Pairs {
			if seenQ[p.Q] || seenT[p.T] {
				return false
			}
			seenQ[p.Q] = true
			seenT[p.T] = true
		}
		// Exact dominates any one-to-one set.
		exact, err := Score(q, tr, pairs, 100, 100, Options{Algorithm: Exact})
		if err != nil {
			return false
		}
		return exact.Similarity >= res.Similarity-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentString(t *testing.T) {
	if Assignment.String() != "assignment" {
		t.Fatal("Algorithm string")
	}
}

func TestAssignmentEmptyPairs(t *testing.T) {
	res, err := Score(nil, nil, nil, 10, 10, Options{Algorithm: Assignment})
	if err != nil || res.Similarity != 0 {
		t.Fatalf("empty: %+v, %v", res, err)
	}
}
