// Pair enumeration without an index: the brute-force counterparts of the
// R*-tree probe, used by tests and small-scale search. These live outside
// match.go so they stay off the lint-hot scoring path — they run once per
// query pair-set at most, not per candidate image.
package match

import (
	"math"

	"walrus/internal/region"
)

// PairsWithin computes the matching region pairs between two region sets
// directly (without an index): centroids within euclidean distance eps.
// The WALRUS database uses the R*-tree for this; PairsWithin is the
// reference implementation used by tests and small-scale search.
func PairsWithin(qRegions, tRegions []region.Region, eps float64) []Pair {
	var out []Pair
	for qi, q := range qRegions {
		for ti, t := range tRegions {
			if euclid(q.Signature, t.Signature) <= eps {
				out = append(out, Pair{qi, ti})
			}
		}
	}
	return out
}

// PairsWithinBBox computes matching pairs under the bounding-box signature
// model: region signatures are boxes, and two regions match when one box
// expanded by eps intersects the other (Definition 4.1's bounding-box
// reading).
func PairsWithinBBox(qRegions, tRegions []region.Region, eps float64) []Pair {
	var out []Pair
	for qi, q := range qRegions {
		for ti, t := range tRegions {
			if boxesWithin(q.Min, q.Max, t.Min, t.Max, eps) {
				out = append(out, Pair{qi, ti})
			}
		}
	}
	return out
}

func boxesWithin(aMin, aMax, bMin, bMax []float64, eps float64) bool {
	for i := range aMin {
		if aMin[i]-eps > bMax[i] || bMin[i]-eps > aMax[i] {
			return false
		}
	}
	return true
}

func euclid(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Sqrt(d)
}
