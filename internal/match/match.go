// Package match implements WALRUS's region- and image-matching steps
// (Sections 5.4–5.5). Given the matching region pairs between a query
// image Q and a target image T, it computes the similarity of Definition
// 4.3 — the fraction of the two images' combined area covered by matching
// regions — with three algorithms:
//
//   - Quick: union the bitmaps of every matched region on each side. This
//     relaxes the one-to-one requirement of Definition 4.2 and runs in
//     linear time; it is the variant the paper used for its retrieval
//     experiments (Section 6.4).
//   - Greedy: the paper's heuristic for the strict similar-region-pair
//     set — iteratively pick the pair of unused regions that adds the most
//     covered area.
//   - Exact: optimal one-to-one pair set by branch and bound. Computing it
//     is NP-hard (Theorem 5.1), so this is exponential and intended for
//     small instances — it validates the greedy heuristic in tests and
//     benches.
//
//walrus:lint-hot scoring runs per candidate image on the query path
package match

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"walrus/internal/region"
)

// Pair links a query region index to a target region index.
type Pair struct {
	Q, T int
}

// Algorithm selects how the similar region pair set is computed.
type Algorithm int

const (
	// Quick unions all matched regions without the one-to-one restriction.
	Quick Algorithm = iota
	// Greedy builds a one-to-one pair set by repeatedly taking the pair
	// with maximum marginal covered area.
	Greedy
	// Exact finds the optimal one-to-one pair set (exponential time).
	Exact
	// Assignment solves the maximum-weight bipartite assignment over the
	// pairs' standalone covered areas with the Hungarian algorithm — the
	// optimal one-to-one pair set under a no-overlap relaxation, in
	// polynomial time.
	Assignment
)

func (a Algorithm) String() string {
	switch a {
	case Quick:
		return "quick"
	case Greedy:
		return "greedy"
	case Exact:
		return "exact"
	case Assignment:
		return "assignment"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Denominator selects the similarity normalization of Section 4.
type Denominator int

const (
	// SumAreas uses area(Q)+area(T), Definition 4.3's denominator.
	SumAreas Denominator = iota
	// QueryOnly measures only the covered fraction of the query image.
	QueryOnly
	// TwiceSmaller uses twice the area of the smaller image, the variant
	// suggested for images of very different sizes.
	TwiceSmaller
)

// Options configures scoring.
type Options struct {
	Algorithm   Algorithm
	Denominator Denominator
}

// Result reports a similarity computation.
type Result struct {
	// Similarity is the matched-area fraction under the chosen
	// denominator, in [0,1].
	Similarity float64
	// Pairs is the similar region pair set used (nil for Quick, which does
	// not build one).
	Pairs []Pair
	// CoveredQ and CoveredT are the covered pixel counts on each side.
	CoveredQ, CoveredT float64
}

// Score computes the similarity between a query and a target image from
// their regions and the list of matching region pairs. qArea and tArea are
// the images' pixel areas.
func Score(qRegions, tRegions []region.Region, pairs []Pair, qArea, tArea int, opts Options) (Result, error) {
	if qArea <= 0 || tArea <= 0 {
		return Result{}, fmt.Errorf("match: non-positive image areas %d, %d", qArea, tArea)
	}
	// The validation loop only records the first offending pair; the
	// error itself is built after the loop so the per-pair body stays
	// allocation-free (fmt.Errorf boxes its int arguments).
	k := -1
	bad := -1
	for i, p := range pairs {
		if p.Q < 0 || p.Q >= len(qRegions) || p.T < 0 || p.T >= len(tRegions) {
			bad = i
			break
		}
		if k == -1 {
			k = qRegions[p.Q].Bitmap.K
		}
		if qRegions[p.Q].Bitmap.K != k || tRegions[p.T].Bitmap.K != k {
			bad = i
			break
		}
	}
	if bad >= 0 {
		p := pairs[bad]
		if p.Q < 0 || p.Q >= len(qRegions) || p.T < 0 || p.T >= len(tRegions) {
			return Result{}, fmt.Errorf("match: pair (%d,%d) out of range (%d query, %d target regions)",
				p.Q, p.T, len(qRegions), len(tRegions))
		}
		return Result{}, fmt.Errorf("match: bitmap grids differ across regions (%d vs %d/%d)",
			k, qRegions[p.Q].Bitmap.K, tRegions[p.T].Bitmap.K)
	}
	var res Result
	switch opts.Algorithm {
	case Quick:
		res = scoreQuick(qRegions, tRegions, pairs, qArea, tArea)
	case Greedy:
		res = scoreGreedy(qRegions, tRegions, pairs, qArea, tArea)
	case Exact:
		res = scoreExact(qRegions, tRegions, pairs, qArea, tArea)
	case Assignment:
		res = scoreAssignment(qRegions, tRegions, pairs, qArea, tArea)
	default:
		return Result{}, fmt.Errorf("match: unknown algorithm %v", opts.Algorithm)
	}
	res.Similarity = normalize(res.CoveredQ, res.CoveredT, qArea, tArea, opts.Denominator)
	return res, nil
}

func normalize(coveredQ, coveredT float64, qArea, tArea int, d Denominator) float64 {
	switch d {
	case QueryOnly:
		return coveredQ / float64(qArea)
	case TwiceSmaller:
		smaller := math.Min(float64(qArea), float64(tArea))
		return math.Min(1, (coveredQ+coveredT)/(2*smaller))
	default:
		return (coveredQ + coveredT) / float64(qArea+tArea)
	}
}

// scoreQuick unions every matched region's bitmap per side.
func scoreQuick(qRegions, tRegions []region.Region, pairs []Pair, qArea, tArea int) Result {
	if len(pairs) == 0 {
		return Result{}
	}
	uq := region.NewBitmap(qRegions[pairs[0].Q].Bitmap.K)
	ut := region.NewBitmap(tRegions[pairs[0].T].Bitmap.K)
	seenQ := make(map[int]bool)
	seenT := make(map[int]bool)
	for _, p := range pairs {
		if !seenQ[p.Q] {
			seenQ[p.Q] = true
			uq.UnionWith(qRegions[p.Q].Bitmap)
		}
		if !seenT[p.T] {
			seenT[p.T] = true
			ut.UnionWith(tRegions[p.T].Bitmap)
		}
	}
	return Result{
		CoveredQ: uq.Fraction() * float64(qArea),
		CoveredT: ut.Fraction() * float64(tArea),
	}
}

// scoreGreedy repeatedly adds the unused pair with the largest marginal
// covered area (measured in pixels across both images). Each iteration
// scans all remaining pairs, so the cost is O(n²) scans of constant-size
// bitmaps for n matching pairs.
func scoreGreedy(qRegions, tRegions []region.Region, pairs []Pair, qArea, tArea int) Result {
	if len(pairs) == 0 {
		return Result{}
	}
	k := qRegions[pairs[0].Q].Bitmap.K
	uq := region.NewBitmap(k)
	ut := region.NewBitmap(k)
	usedQ := make(map[int]bool)
	usedT := make(map[int]bool)
	remaining := append([]Pair(nil), pairs...)
	// chosen is written by index so the selection loop never reallocates;
	// at most len(pairs) pairs can be picked.
	chosen := make([]Pair, len(pairs))
	nChosen := 0
	for len(remaining) > 0 {
		bestGain := 0.0
		bestIdx := -1
		for i, p := range remaining {
			if usedQ[p.Q] || usedT[p.T] {
				continue
			}
			gain := marginalGain(&uq, qRegions[p.Q].Bitmap, qArea) +
				marginalGain(&ut, tRegions[p.T].Bitmap, tArea)
			if gain > bestGain {
				bestGain = gain
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		p := remaining[bestIdx]
		usedQ[p.Q] = true
		usedT[p.T] = true
		uq.UnionWith(qRegions[p.Q].Bitmap)
		ut.UnionWith(tRegions[p.T].Bitmap)
		chosen[nChosen] = p
		nChosen++
		copy(remaining[bestIdx:], remaining[bestIdx+1:])
		remaining = remaining[:len(remaining)-1]
	}
	var picked []Pair // nil, not empty, when nothing matched
	if nChosen > 0 {
		picked = chosen[:nChosen]
	}
	return Result{
		Pairs:    picked,
		CoveredQ: uq.Fraction() * float64(qArea),
		CoveredT: ut.Fraction() * float64(tArea),
	}
}

// marginalGain returns the pixel area that ORing bm into u would add.
func marginalGain(u *region.Bitmap, bm region.Bitmap, imgArea int) float64 {
	added := 0
	for i, w := range bm.Words {
		added += bits.OnesCount64(w &^ u.Words[i])
	}
	return float64(added) / float64(u.K*u.K) * float64(imgArea)
}

// ExactPairLimit bounds the branch-and-bound search space of the Exact
// matcher. Instances with at most this many pairs are solved optimally;
// larger instances are solved optimally over the ExactPairLimit pairs with
// the largest standalone coverage, seeded with the full greedy solution so
// the result is never worse than Greedy.
const ExactPairLimit = 18

// scoreExact finds the one-to-one pair set with maximum covered area by
// depth-first branch and bound over the pair list (Theorem 5.1 shows the
// problem is NP-hard, so this is exponential). See ExactPairLimit for how
// large instances are handled.
func scoreExact(qRegions, tRegions []region.Region, pairs []Pair, qArea, tArea int) Result {
	if len(pairs) == 0 {
		return Result{}
	}
	k := qRegions[pairs[0].Q].Bitmap.K

	// Precompute per-pair standalone gains for the bound, sorted
	// descending so prefixes give the strongest bound.
	type scoredPair struct {
		p    Pair
		solo float64
	}
	sp := make([]scoredPair, len(pairs))
	for i, p := range pairs {
		sp[i] = scoredPair{p,
			qRegions[p.Q].Bitmap.Fraction()*float64(qArea) +
				tRegions[p.T].Bitmap.Fraction()*float64(tArea)}
	}
	sort.Slice(sp, func(i, j int) bool { return sp[i].solo > sp[j].solo })
	if len(sp) > ExactPairLimit {
		sp = sp[:ExactPairLimit]
	}
	suffix := make([]float64, len(sp)+1)
	for i := len(sp) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + sp[i].solo
	}

	// Seed with the greedy solution over the full pair list: the search can
	// only improve on it, which both strengthens the bound and guarantees
	// Exact >= Greedy even when the pair list was truncated.
	best := scoreGreedy(qRegions, tRegions, pairs, qArea, tArea)
	bestScore := best.CoveredQ + best.CoveredT
	usedQ := make(map[int]bool)
	usedT := make(map[int]bool)
	uq := region.NewBitmap(k)
	ut := region.NewBitmap(k)
	var current []Pair

	var dfs func(i int, covQ, covT float64)
	dfs = func(i int, covQ, covT float64) {
		if covQ+covT > bestScore {
			bestScore = covQ + covT
			best = Result{
				Pairs:    append([]Pair(nil), current...),
				CoveredQ: covQ,
				CoveredT: covT,
			}
		}
		if i == len(sp) || covQ+covT+suffix[i] <= bestScore {
			return
		}
		// Branch 1: take pair i if both sides are unused.
		p := sp[i].p
		if !usedQ[p.Q] && !usedT[p.T] {
			savedQ := uq.Clone()
			savedT := ut.Clone()
			gq := marginalGain(&uq, qRegions[p.Q].Bitmap, qArea)
			gt := marginalGain(&ut, tRegions[p.T].Bitmap, tArea)
			usedQ[p.Q], usedT[p.T] = true, true
			uq.UnionWith(qRegions[p.Q].Bitmap)
			ut.UnionWith(tRegions[p.T].Bitmap)
			current = append(current, p)
			dfs(i+1, covQ+gq, covT+gt)
			current = current[:len(current)-1]
			usedQ[p.Q], usedT[p.T] = false, false
			uq, ut = savedQ, savedT
		}
		// Branch 2: skip pair i.
		dfs(i+1, covQ, covT)
	}
	dfs(0, 0, 0)
	return best
}
