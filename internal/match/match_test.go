package match

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"walrus/internal/region"
)

// makeRegion builds a region whose bitmap covers the given cells of a k×k
// grid and whose signature is sig.
func makeRegion(k int, sig []float64, cells [][2]int) region.Region {
	r := region.Region{
		Signature: sig,
		Min:       append([]float64(nil), sig...),
		Max:       append([]float64(nil), sig...),
		Bitmap:    region.NewBitmap(k),
		Windows:   1,
	}
	for _, c := range cells {
		r.Bitmap.Set(c[0], c[1])
	}
	return r
}

// block returns the cells of the rectangle [x0,x1) x [y0,y1).
func block(x0, y0, x1, y1 int) [][2]int {
	var out [][2]int
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			out = append(out, [2]int{x, y})
		}
	}
	return out
}

func TestScoreValidation(t *testing.T) {
	q := []region.Region{makeRegion(4, []float64{0}, block(0, 0, 2, 2))}
	tr := []region.Region{makeRegion(4, []float64{0}, block(0, 0, 2, 2))}
	if _, err := Score(q, tr, []Pair{{0, 0}}, 0, 100, Options{}); err == nil {
		t.Error("accepted zero query area")
	}
	if _, err := Score(q, tr, []Pair{{1, 0}}, 100, 100, Options{}); err == nil {
		t.Error("accepted out-of-range pair")
	}
	if _, err := Score(q, tr, nil, 100, 100, Options{Algorithm: Algorithm(9)}); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestAlgorithmString(t *testing.T) {
	if Quick.String() != "quick" || Greedy.String() != "greedy" || Exact.String() != "exact" {
		t.Fatal("Algorithm.String wrong")
	}
}

func TestScoreNoPairs(t *testing.T) {
	res, err := Score(nil, nil, nil, 100, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Similarity != 0 {
		t.Fatalf("empty similarity = %v", res.Similarity)
	}
}

// TestQuickFullCover: two identical full-cover regions give similarity 1.
func TestQuickFullCover(t *testing.T) {
	full := block(0, 0, 4, 4)
	q := []region.Region{makeRegion(4, []float64{0}, full)}
	tr := []region.Region{makeRegion(4, []float64{0}, full)}
	res, err := Score(q, tr, []Pair{{0, 0}}, 128*128, 128*128, Options{Algorithm: Quick})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Similarity-1) > 1e-12 {
		t.Fatalf("similarity = %v, want 1", res.Similarity)
	}
}

// TestDefinition43Arithmetic: a half-covered query and quarter-covered
// target of equal area score (0.5+0.25)/2.
func TestDefinition43Arithmetic(t *testing.T) {
	q := []region.Region{makeRegion(4, []float64{0}, block(0, 0, 4, 2))}  // 8/16
	tr := []region.Region{makeRegion(4, []float64{0}, block(0, 0, 2, 2))} // 4/16
	res, err := Score(q, tr, []Pair{{0, 0}}, 1000, 1000, Options{Algorithm: Quick})
	if err != nil {
		t.Fatal(err)
	}
	if want := (0.5*1000 + 0.25*1000) / 2000; math.Abs(res.Similarity-want) > 1e-12 {
		t.Fatalf("similarity = %v, want %v", res.Similarity, want)
	}
}

func TestDenominatorVariants(t *testing.T) {
	q := []region.Region{makeRegion(4, []float64{0}, block(0, 0, 4, 2))}
	tr := []region.Region{makeRegion(4, []float64{0}, block(0, 0, 4, 4))}
	// Query area 100 (half covered = 50), target area 400 (fully covered).
	res, err := Score(q, tr, []Pair{{0, 0}}, 100, 400, Options{Algorithm: Quick, Denominator: QueryOnly})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Similarity-0.5) > 1e-12 {
		t.Fatalf("QueryOnly = %v, want 0.5", res.Similarity)
	}
	res, err = Score(q, tr, []Pair{{0, 0}}, 100, 400, Options{Algorithm: Quick, Denominator: TwiceSmaller})
	if err != nil {
		t.Fatal(err)
	}
	// (50+400)/(2*100) clamps to 1.
	if res.Similarity != 1 {
		t.Fatalf("TwiceSmaller = %v, want 1", res.Similarity)
	}
	res, err = Score(q, tr, []Pair{{0, 0}}, 100, 400, Options{Algorithm: Quick, Denominator: SumAreas})
	if err != nil {
		t.Fatal(err)
	}
	if want := (50.0 + 400.0) / 500.0; math.Abs(res.Similarity-want) > 1e-12 {
		t.Fatalf("SumAreas = %v, want %v", res.Similarity, want)
	}
}

// TestGreedyOneToOne: a query region matching many target regions uses
// each region once under Greedy, unlike Quick which unions all targets.
func TestGreedyOneToOne(t *testing.T) {
	q := []region.Region{makeRegion(4, []float64{0}, block(0, 0, 1, 1))} // tiny query coverage
	tr := []region.Region{
		makeRegion(4, []float64{0}, block(0, 0, 2, 4)),
		makeRegion(4, []float64{0}, block(2, 0, 4, 4)),
	}
	pairs := []Pair{{0, 0}, {0, 1}}
	quickRes, err := Score(q, tr, pairs, 100, 100, Options{Algorithm: Quick})
	if err != nil {
		t.Fatal(err)
	}
	greedyRes, err := Score(q, tr, pairs, 100, 100, Options{Algorithm: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	// Quick covers the whole target; greedy may only use one pair since the
	// single query region is consumed by the first.
	if quickRes.CoveredT != 100 {
		t.Fatalf("quick CoveredT = %v, want 100", quickRes.CoveredT)
	}
	if greedyRes.CoveredT >= quickRes.CoveredT {
		t.Fatalf("greedy should cover less than quick here: %v vs %v", greedyRes.CoveredT, quickRes.CoveredT)
	}
	if len(greedyRes.Pairs) != 1 {
		t.Fatalf("greedy used %d pairs, want 1", len(greedyRes.Pairs))
	}
}

// TestExactBeatsGreedyOnAdversarialInstance: classic greedy trap — the
// largest pair blocks two medium pairs whose union is bigger.
func TestExactBeatsGreedyOnAdversarialInstance(t *testing.T) {
	// Query regions: q0 covers 10 cells, q1 covers rows 0-1 (8 cells), q2
	// covers rows 2-3 (8 cells). Targets mirror them.
	q := []region.Region{
		makeRegion(4, []float64{0}, block(0, 0, 4, 2)), // 8 cells: rows 0-1
		makeRegion(4, []float64{0}, block(0, 2, 4, 4)), // 8 cells: rows 2-3
		makeRegion(4, []float64{0}, block(0, 1, 4, 3)), // 8 cells: rows 1-2 (overlaps both)
	}
	tr := []region.Region{
		makeRegion(4, []float64{0}, block(0, 1, 4, 3)), // rows 1-2
		makeRegion(4, []float64{0}, block(0, 0, 4, 2)),
		makeRegion(4, []float64{0}, block(0, 2, 4, 4)),
	}
	// Pair the overlapping query region q2 with the overlapping target t0
	// (greedy bait: biggest immediate gain 16), and the clean pairs
	// (q0,t1), (q1,t2). Optimal: take the two clean pairs covering
	// everything (32); greedy takes (q2,t0) first (16 gain), then clean
	// pairs still available... to force a trap, restrict pairs so q2/t0
	// conflicts: pairs (q2,t1) and (q2,t2) block each other.
	pairs := []Pair{{2, 0}, {0, 1}, {1, 2}, {0, 0}, {1, 0}}
	exact, err := Score(q, tr, pairs, 160, 160, Options{Algorithm: Exact})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Score(q, tr, pairs, 160, 160, Options{Algorithm: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Similarity < greedy.Similarity-1e-12 {
		t.Fatalf("exact %v < greedy %v", exact.Similarity, greedy.Similarity)
	}
	// The exact solution must cover both images fully: q0+q1 and t1+t2.
	if exact.CoveredQ != 160 || exact.CoveredT != 160 {
		t.Fatalf("exact covered %v/%v, want 160/160", exact.CoveredQ, exact.CoveredT)
	}
}

// TestOrderingProperty: for any instance, quick >= exact >= greedy (quick
// relaxes one-to-one; exact is the optimal one-to-one; greedy is a
// heuristic one-to-one).
func TestOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const k = 4
		nq, nt := 1+rng.Intn(4), 1+rng.Intn(4)
		mk := func() region.Region {
			var cells [][2]int
			for y := 0; y < k; y++ {
				for x := 0; x < k; x++ {
					if rng.Intn(3) == 0 {
						cells = append(cells, [2]int{x, y})
					}
				}
			}
			return makeRegion(k, []float64{rng.Float64()}, cells)
		}
		var q, tr []region.Region
		for i := 0; i < nq; i++ {
			q = append(q, mk())
		}
		for i := 0; i < nt; i++ {
			tr = append(tr, mk())
		}
		var pairs []Pair
		for qi := 0; qi < nq; qi++ {
			for ti := 0; ti < nt; ti++ {
				if rng.Intn(2) == 0 {
					pairs = append(pairs, Pair{qi, ti})
				}
			}
		}
		score := func(a Algorithm) float64 {
			res, err := Score(q, tr, pairs, 100, 100, Options{Algorithm: a})
			if err != nil {
				t.Fatal(err)
			}
			return res.Similarity
		}
		qk, ex, gr := score(Quick), score(Exact), score(Greedy)
		return qk >= ex-1e-12 && ex >= gr-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyMatchesExactOnDisjointRegions: with disjoint regions greedy is
// optimal.
func TestGreedyMatchesExactOnDisjointRegions(t *testing.T) {
	var q, tr []region.Region
	var pairs []Pair
	for i := 0; i < 4; i++ {
		q = append(q, makeRegion(4, []float64{float64(i)}, block(i, 0, i+1, 4)))
		tr = append(tr, makeRegion(4, []float64{float64(i)}, block(i, 0, i+1, 4)))
		pairs = append(pairs, Pair{i, i})
	}
	exact, err := Score(q, tr, pairs, 100, 100, Options{Algorithm: Exact})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Score(q, tr, pairs, 100, 100, Options{Algorithm: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.Similarity-greedy.Similarity) > 1e-12 {
		t.Fatalf("greedy %v != exact %v on disjoint regions", greedy.Similarity, exact.Similarity)
	}
	if exact.Similarity != 1 {
		t.Fatalf("similarity = %v, want 1", exact.Similarity)
	}
}

func TestPairsWithin(t *testing.T) {
	q := []region.Region{makeRegion(4, []float64{0, 0}, block(0, 0, 1, 1))}
	tr := []region.Region{
		makeRegion(4, []float64{0.05, 0}, block(0, 0, 1, 1)),
		makeRegion(4, []float64{1, 1}, block(0, 0, 1, 1)),
	}
	pairs := PairsWithin(q, tr, 0.1)
	if len(pairs) != 1 || pairs[0] != (Pair{0, 0}) {
		t.Fatalf("PairsWithin = %v", pairs)
	}
	if got := PairsWithin(q, tr, 2); len(got) != 2 {
		t.Fatalf("wide eps found %d pairs", len(got))
	}
}

func TestPairsWithinBBox(t *testing.T) {
	mk := func(lo, hi float64) region.Region {
		r := makeRegion(4, []float64{(lo + hi) / 2}, block(0, 0, 1, 1))
		r.Min = []float64{lo}
		r.Max = []float64{hi}
		return r
	}
	q := []region.Region{mk(0.0, 0.2)}
	tr := []region.Region{mk(0.25, 0.4), mk(0.5, 0.9)}
	// With eps 0.1 the first target box (gap 0.05) matches; the second
	// (gap 0.3) does not.
	pairs := PairsWithinBBox(q, tr, 0.1)
	if len(pairs) != 1 || pairs[0] != (Pair{0, 0}) {
		t.Fatalf("PairsWithinBBox = %v", pairs)
	}
}
