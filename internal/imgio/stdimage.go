package imgio

import (
	"image"
	"image/color"
)

// FromStdImage converts any standard library image to a 3-channel RGB
// Image with samples in [0,1].
func FromStdImage(src image.Image) *Image {
	b := src.Bounds()
	im := New(b.Dx(), b.Dy(), 3)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, bl, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			im.Set(0, x, y, float64(r)/65535)
			im.Set(1, x, y, float64(g)/65535)
			im.Set(2, x, y, float64(bl)/65535)
		}
	}
	return im
}

// ToStdImage converts an Image (1 or 3 channels, assumed RGB or gray in
// [0,1]) to an *image.RGBA suitable for the standard encoders.
func ToStdImage(im *Image) *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var r, g, b float64
			if im.C >= 3 {
				r, g, b = im.At(0, x, y), im.At(1, x, y), im.At(2, x, y)
			} else {
				r = im.At(0, x, y)
				g, b = r, r
			}
			out.SetRGBA(x, y, color.RGBA{
				R: byte(clamp01(r)*255 + 0.5),
				G: byte(clamp01(g)*255 + 0.5),
				B: byte(clamp01(b)*255 + 0.5),
				A: 255,
			})
		}
	}
	return out
}
