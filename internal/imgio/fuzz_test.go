package imgio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodePPM drives the PPM/PGM codec with arbitrary bytes: malformed
// headers, truncated rasters and overflow-sized dimensions must produce an
// error or a structurally valid image — never a panic or an allocation
// proportional to header-claimed (rather than actual) input size. Every
// successfully decoded image must survive an encode/decode round trip.
func FuzzDecodePPM(f *testing.F) {
	// Valid binary and ASCII images of both channel counts.
	var p6 bytes.Buffer
	im := New(3, 2, 3)
	im.SetRGB(0, 0, 1, 0.5, 0)
	im.SetRGB(2, 1, 0, 0.25, 1)
	if err := EncodePPM(&p6, im); err != nil {
		f.Fatal(err)
	}
	f.Add(p6.Bytes())
	var p5 bytes.Buffer
	if err := EncodePPM(&p5, New(4, 4, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(p5.Bytes())
	f.Add([]byte("P2\n2 2\n255\n0 128\n255 64\n"))
	f.Add([]byte("P3\n1 2\n255\n1 2 3\n4 5 6\n"))
	// Comments, 16-bit samples, and pathological headers.
	f.Add([]byte("P5\n# comment\n2 2\n65535\n\x00\x01\x02\x03\x04\x05\x06\x07"))
	f.Add([]byte("P6\n10000000 10000000\n255\n"))                // dims overflow the sanity cap
	f.Add([]byte("P6\n67108864 1\n255\nxx"))                     // huge row, truncated raster
	f.Add([]byte("P6\n2 2\n255\nab"))                            // truncated binary raster
	f.Add([]byte("P2\n3 3\n255\n1 2 3"))                         // truncated ASCII raster
	f.Add([]byte("P6\n2 -2\n255\n"))                             // negative dimension
	f.Add([]byte("P6\n2 2\n0\n"))                                // zero max value
	f.Add([]byte("P7\n2 2\n255\n" + strings.Repeat("\x00", 12))) // unknown magic

	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := DecodePPM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := im.Validate(); err != nil {
			t.Fatalf("decoded image fails Validate: %v", err)
		}
		if im.W*im.H > 1<<26 {
			t.Fatalf("decoded image exceeds the dimension cap: %dx%d", im.W, im.H)
		}
		var buf bytes.Buffer
		if err := EncodePPM(&buf, im); err != nil {
			t.Fatalf("re-encoding decoded %dx%dx%d image: %v", im.W, im.H, im.C, err)
		}
		back, err := DecodePPM(&buf)
		if err != nil {
			t.Fatalf("decoding re-encoded image: %v", err)
		}
		if back.W != im.W || back.H != im.H || back.C != im.C {
			t.Fatalf("round trip changed shape: %dx%dx%d -> %dx%dx%d",
				im.W, im.H, im.C, back.W, back.H, back.C)
		}
	})
}
