package imgio

import (
	"math"
	"math/rand"
	"testing"
)

func TestRotate90Geometry(t *testing.T) {
	im := New(3, 2, 1)
	// Mark the top-left pixel.
	im.Set(0, 0, 0, 1)
	out := Rotate90(im)
	if out.W != 2 || out.H != 3 {
		t.Fatalf("rotated shape %dx%d", out.W, out.H)
	}
	// Clockwise: (0,0) -> (H-1, 0) = (1, 0).
	if out.At(0, 1, 0) != 1 {
		t.Fatalf("rotated pixel misplaced: %v", out.Pix)
	}
}

func TestRotationsCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	im := randomImage(rng, 7, 5, 3)
	// Four quarter turns are the identity.
	r := Rotate90(Rotate90(Rotate90(Rotate90(im))))
	d, err := MeanAbsDiff(im, r)
	if err != nil || d != 0 {
		t.Fatalf("4x Rotate90 != identity: %v %v", d, err)
	}
	// Two quarter turns equal a half turn.
	a := Rotate90(Rotate90(im))
	b := Rotate180(im)
	d, err = MeanAbsDiff(a, b)
	if err != nil || d != 0 {
		t.Fatalf("Rotate90² != Rotate180: %v %v", d, err)
	}
	// 90 then 270 is the identity.
	c := Rotate270(Rotate90(im))
	d, err = MeanAbsDiff(im, c)
	if err != nil || d != 0 {
		t.Fatalf("Rotate270∘Rotate90 != identity: %v %v", d, err)
	}
}

func TestSharpenIdentityAtZeroStrength(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	im := randomImage(rng, 8, 8, 1)
	out := Sharpen(im, 0)
	d, err := MeanAbsDiff(im, out)
	if err != nil || d > 1e-12 {
		t.Fatalf("Sharpen(0) changed the image: %v %v", d, err)
	}
}

func TestSharpenIncreasesEdgeContrast(t *testing.T) {
	// Vertical step edge.
	im := New(8, 8, 1)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			im.Set(0, x, y, 1)
		}
	}
	out := Sharpen(im, 1)
	// The pixel just left of the edge darkens; just right brightens (both
	// clamped to [0,1] here, so compare the inner gradient instead).
	if out.At(0, 3, 4) > im.At(0, 3, 4) {
		t.Fatalf("left-of-edge pixel brightened: %v", out.At(0, 3, 4))
	}
}

func TestBoxBlurFlattens(t *testing.T) {
	im := New(9, 9, 1)
	im.Set(0, 4, 4, 1) // single bright pixel
	out := BoxBlur(im, 2)
	if out.At(0, 4, 4) >= 1 {
		t.Fatal("blur did not spread the impulse")
	}
	if out.At(0, 3, 4) <= 0 {
		t.Fatal("blur did not reach neighbors")
	}
	// Blur preserves total mass away from borders (impulse is interior).
	var sum float64
	for _, v := range out.Pix {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("blur mass = %v, want 1", sum)
	}
	if got := BoxBlur(im, 0); got == im {
		t.Fatal("BoxBlur(0) returned the receiver")
	}
}

func TestAdjustBrightnessContrastGamma(t *testing.T) {
	im := New(2, 1, 1)
	im.Pix = []float64{0.25, 0.75}
	br := AdjustBrightness(im, 0.5)
	if br.Pix[0] != 0.75 || br.Pix[1] != 1 {
		t.Fatalf("brightness: %v", br.Pix)
	}
	ct := AdjustContrast(im, 2)
	if ct.Pix[0] != 0 || ct.Pix[1] != 1 {
		t.Fatalf("contrast: %v", ct.Pix)
	}
	if id := AdjustContrast(im, 1); id.Pix[0] != 0.25 {
		t.Fatalf("contrast identity: %v", id.Pix)
	}
	gm := AdjustGamma(im, 2)
	if math.Abs(gm.Pix[0]-0.5) > 1e-12 { // 0.25^(1/2)
		t.Fatalf("gamma: %v", gm.Pix)
	}
}

func TestColorReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	im := randomImage(rng, 16, 16, 3)
	out, palette, err := ColorReduce(im, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(palette) > 8 || len(palette) == 0 {
		t.Fatalf("palette size %d", len(palette))
	}
	// Every output pixel is exactly a palette color.
	onPalette := func(p [3]float64) bool {
		for _, pc := range palette {
			if p == pc {
				return true
			}
		}
		return false
	}
	for i := 0; i < im.W*im.H; i++ {
		p := [3]float64{out.Plane(0)[i], out.Plane(1)[i], out.Plane(2)[i]}
		if !onPalette(p) {
			t.Fatalf("pixel %d not on palette: %v", i, p)
		}
	}
	// More colors means higher fidelity.
	out2, _, err := ColorReduce(im, 64)
	if err != nil {
		t.Fatal(err)
	}
	p8, _ := PSNR(im, out)
	p64, _ := PSNR(im, out2)
	if p64 <= p8 {
		t.Fatalf("PSNR did not improve with palette size: %v vs %v", p8, p64)
	}
}

func TestColorReduceDegenerate(t *testing.T) {
	im := New(4, 4, 3)
	im.FillRGB(0.3, 0.6, 0.9)
	out, palette, err := ColorReduce(im, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(palette) != 1 {
		t.Fatalf("solid image palette size %d", len(palette))
	}
	d, _ := MeanAbsDiff(im, out)
	if d > 1e-12 { // palette averaging is float arithmetic, not bit-exact
		t.Fatalf("solid image changed by quantization: %v", d)
	}
	if _, _, err := ColorReduce(New(2, 2, 1), 4); err == nil {
		t.Error("accepted 1-channel image")
	}
	if _, _, err := ColorReduce(im, 0); err == nil {
		t.Error("accepted 0 colors")
	}
}

func TestPSNR(t *testing.T) {
	a := New(2, 2, 1)
	b := a.Clone()
	p, err := PSNR(a, b)
	if err != nil || !math.IsInf(p, 1) {
		t.Fatalf("identical PSNR = %v, %v", p, err)
	}
	b.Pix[0] = 1
	p, err = PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// MSE = 1/4 -> PSNR = 10*log10(4) ≈ 6.02 dB.
	if math.Abs(p-10*math.Log10(4)) > 1e-9 {
		t.Fatalf("PSNR = %v", p)
	}
	if _, err := PSNR(a, New(3, 2, 1)); err == nil {
		t.Error("accepted shape mismatch")
	}
}

func TestSSIM(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	im := randomImage(rng, 32, 32, 3)
	// Identical images score 1.
	s, err := SSIM(im, im.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("self SSIM = %v", s)
	}
	// Mild noise degrades SSIM less than heavy noise.
	mild, _ := SSIM(im, AddNoise(im, rng, 0.05))
	heavy, _ := SSIM(im, AddNoise(im, rng, 0.4))
	if !(mild > heavy) {
		t.Fatalf("SSIM ordering: mild %v, heavy %v", mild, heavy)
	}
	if mild >= 1 || heavy <= -1 {
		t.Fatalf("SSIM out of range: %v %v", mild, heavy)
	}
	// Structured change (blur) hurts more than the same-energy brightness
	// shift, which SSIM is designed to discount relative to MSE.
	shifted, _ := SSIM(im, AdjustBrightness(im, 0.05))
	blurred, _ := SSIM(im, BoxBlur(im, 3))
	if !(shifted > blurred) {
		t.Fatalf("brightness shift (%v) should score above blur (%v)", shifted, blurred)
	}
	if _, err := SSIM(im, randomImage(rng, 16, 16, 3)); err == nil {
		t.Error("SSIM accepted shape mismatch")
	}
	if _, err := SSIM(New(4, 4, 1), New(4, 4, 1)); err == nil {
		t.Error("SSIM accepted tiny images")
	}
}
