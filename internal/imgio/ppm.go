package imgio

import (
	"bufio"
	"fmt"
	"io"
)

// EncodePPM writes a 3-channel image as a binary PPM (P6) with 8-bit
// samples, or a 1-channel image as a binary PGM (P5).
func EncodePPM(w io.Writer, im *Image) error {
	if err := im.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	var magic string
	switch im.C {
	case 1:
		magic = "P5"
	case 3:
		magic = "P6"
	default:
		return fmt.Errorf("imgio: cannot encode %d-channel image as PPM/PGM", im.C)
	}
	if _, err := fmt.Fprintf(bw, "%s\n%d %d\n255\n", magic, im.W, im.H); err != nil {
		return err
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			for c := 0; c < im.C; c++ {
				v := clamp01(im.At(c, x, y))
				if err := bw.WriteByte(byte(v*255 + 0.5)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// DecodePPM reads a binary or ASCII PPM/PGM (P2/P3/P5/P6) image.
func DecodePPM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := ppmToken(br)
	if err != nil {
		return nil, fmt.Errorf("imgio: reading PPM magic: %w", err)
	}
	var channels int
	var ascii bool
	switch magic {
	case "P2":
		channels, ascii = 1, true
	case "P3":
		channels, ascii = 3, true
	case "P5":
		channels = 1
	case "P6":
		channels = 3
	default:
		return nil, fmt.Errorf("imgio: unsupported PPM magic %q", magic)
	}
	w, err := ppmInt(br)
	if err != nil {
		return nil, err
	}
	h, err := ppmInt(br)
	if err != nil {
		return nil, err
	}
	maxVal, err := ppmInt(br)
	if err != nil {
		return nil, err
	}
	if w <= 0 || h <= 0 || w*h > 1<<26 {
		return nil, fmt.Errorf("imgio: unreasonable PPM dimensions %dx%d", w, h)
	}
	if maxVal <= 0 || maxVal > 65535 {
		return nil, fmt.Errorf("imgio: unsupported PPM max value %d", maxVal)
	}
	// The raster is buffered incrementally and the image allocated only
	// once it has arrived in full, so a tiny truncated file with huge
	// header dimensions cannot force a huge allocation: memory stays
	// proportional to the data actually present.
	scale := 1 / float64(maxVal)
	if ascii {
		vals := make([]float64, 0, 1024)
		for i := 0; i < w*h*channels; i++ {
			v, err := ppmInt(br)
			if err != nil {
				return nil, err
			}
			vals = append(vals, float64(v)*scale)
		}
		im := New(w, h, channels)
		i := 0
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				for c := 0; c < channels; c++ {
					im.Set(c, x, y, vals[i])
					i++
				}
			}
		}
		return im, nil
	}
	// Binary formats: exactly one whitespace byte follows the max value
	// (already consumed by ppmInt's delimiter read).
	bytesPer := 1
	if maxVal > 255 {
		bytesPer = 2
	}
	rowBytes := w * channels * bytesPer
	total := h * rowBytes
	const chunkSize = 1 << 16
	raster := make([]byte, 0, min(total, chunkSize))
	chunk := make([]byte, min(total, chunkSize))
	for read := 0; read < total; {
		n := min(total-read, chunkSize)
		if _, err := io.ReadFull(br, chunk[:n]); err != nil {
			return nil, fmt.Errorf("imgio: reading PPM raster at byte %d of %d: %w", read, total, err)
		}
		raster = append(raster, chunk[:n]...)
		read += n
	}
	im := New(w, h, channels)
	for y := 0; y < h; y++ {
		row := raster[y*rowBytes:]
		for x := 0; x < w; x++ {
			for c := 0; c < channels; c++ {
				i := (x*channels + c) * bytesPer
				var v int
				if bytesPer == 1 {
					v = int(row[i])
				} else {
					v = int(row[i])<<8 | int(row[i+1])
				}
				im.Set(c, x, y, float64(v)*scale)
			}
		}
	}
	return im, nil
}

// ppmToken reads the next whitespace-delimited token, skipping comments.
func ppmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func ppmInt(br *bufio.Reader) (int, error) {
	tok, err := ppmToken(br)
	if err != nil {
		return 0, fmt.Errorf("imgio: reading PPM header: %w", err)
	}
	n := 0
	for _, ch := range tok {
		if ch < '0' || ch > '9' {
			return 0, fmt.Errorf("imgio: invalid PPM integer %q", tok)
		}
		n = n*10 + int(ch-'0')
		if n > 1<<30 {
			return 0, fmt.Errorf("imgio: PPM integer %q too large", tok)
		}
	}
	return n, nil
}
