package imgio

import (
	"bufio"
	"fmt"
	"io"
)

// EncodePPM writes a 3-channel image as a binary PPM (P6) with 8-bit
// samples, or a 1-channel image as a binary PGM (P5).
func EncodePPM(w io.Writer, im *Image) error {
	if err := im.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	var magic string
	switch im.C {
	case 1:
		magic = "P5"
	case 3:
		magic = "P6"
	default:
		return fmt.Errorf("imgio: cannot encode %d-channel image as PPM/PGM", im.C)
	}
	if _, err := fmt.Fprintf(bw, "%s\n%d %d\n255\n", magic, im.W, im.H); err != nil {
		return err
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			for c := 0; c < im.C; c++ {
				v := clamp01(im.At(c, x, y))
				if err := bw.WriteByte(byte(v*255 + 0.5)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// DecodePPM reads a binary or ASCII PPM/PGM (P2/P3/P5/P6) image.
func DecodePPM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := ppmToken(br)
	if err != nil {
		return nil, fmt.Errorf("imgio: reading PPM magic: %w", err)
	}
	var channels int
	var ascii bool
	switch magic {
	case "P2":
		channels, ascii = 1, true
	case "P3":
		channels, ascii = 3, true
	case "P5":
		channels = 1
	case "P6":
		channels = 3
	default:
		return nil, fmt.Errorf("imgio: unsupported PPM magic %q", magic)
	}
	w, err := ppmInt(br)
	if err != nil {
		return nil, err
	}
	h, err := ppmInt(br)
	if err != nil {
		return nil, err
	}
	maxVal, err := ppmInt(br)
	if err != nil {
		return nil, err
	}
	if w <= 0 || h <= 0 || w*h > 1<<26 {
		return nil, fmt.Errorf("imgio: unreasonable PPM dimensions %dx%d", w, h)
	}
	if maxVal <= 0 || maxVal > 65535 {
		return nil, fmt.Errorf("imgio: unsupported PPM max value %d", maxVal)
	}
	im := New(w, h, channels)
	scale := 1 / float64(maxVal)
	if ascii {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				for c := 0; c < channels; c++ {
					v, err := ppmInt(br)
					if err != nil {
						return nil, err
					}
					im.Set(c, x, y, float64(v)*scale)
				}
			}
		}
		return im, nil
	}
	// Binary formats: exactly one whitespace byte follows the max value
	// (already consumed by ppmInt's delimiter read).
	bytesPer := 1
	if maxVal > 255 {
		bytesPer = 2
	}
	buf := make([]byte, w*channels*bytesPer)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("imgio: reading PPM row %d: %w", y, err)
		}
		for x := 0; x < w; x++ {
			for c := 0; c < channels; c++ {
				i := (x*channels + c) * bytesPer
				var v int
				if bytesPer == 1 {
					v = int(buf[i])
				} else {
					v = int(buf[i])<<8 | int(buf[i+1])
				}
				im.Set(c, x, y, float64(v)*scale)
			}
		}
	}
	return im, nil
}

// ppmToken reads the next whitespace-delimited token, skipping comments.
func ppmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func ppmInt(br *bufio.Reader) (int, error) {
	tok, err := ppmToken(br)
	if err != nil {
		return 0, fmt.Errorf("imgio: reading PPM header: %w", err)
	}
	n := 0
	for _, ch := range tok {
		if ch < '0' || ch > '9' {
			return 0, fmt.Errorf("imgio: invalid PPM integer %q", tok)
		}
		n = n*10 + int(ch-'0')
		if n > 1<<30 {
			return 0, fmt.Errorf("imgio: PPM integer %q too large", tok)
		}
	}
	return n, nil
}
