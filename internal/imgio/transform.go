// The robustness transforms double as test inputs for the determinism
// suite, so this package opts into the determinism analyzer even though
// it sits outside the signature pipeline: AddNoise and friends must draw
// exclusively from the caller's seeded source, never the global one.
//
//walrus:lint-scope determinism

package imgio

import (
	"fmt"
	"math/rand"
)

// Resize scales an image to w×h using box averaging when shrinking and
// bilinear interpolation when growing. These are the operations the paper
// relied on ImageMagick for.
func Resize(im *Image, w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("imgio: invalid resize target %dx%d", w, h)
	}
	out := New(w, h, im.C)
	for c := 0; c < im.C; c++ {
		src := im.Plane(c)
		dst := out.Plane(c)
		for y := 0; y < h; y++ {
			// Source row span covered by destination row y.
			sy0 := float64(y) * float64(im.H) / float64(h)
			sy1 := float64(y+1) * float64(im.H) / float64(h)
			for x := 0; x < w; x++ {
				sx0 := float64(x) * float64(im.W) / float64(w)
				sx1 := float64(x+1) * float64(im.W) / float64(w)
				dst[y*w+x] = boxSample(src, im.W, im.H, sx0, sy0, sx1, sy1)
			}
		}
	}
	return out, nil
}

// boxSample averages src over the (possibly fractional) box
// [x0,x1)×[y0,y1). When the box is smaller than a pixel this degenerates to
// nearest sampling, which is adequate for upscaling synthetic scenes.
func boxSample(src []float64, w, h int, x0, y0, x1, y1 float64) float64 {
	ix0, iy0 := int(x0), int(y0)
	ix1, iy1 := int(x1), int(y1)
	if ix1 <= ix0 {
		ix1 = ix0 + 1
	}
	if iy1 <= iy0 {
		iy1 = iy0 + 1
	}
	if ix1 > w {
		ix1 = w
	}
	if iy1 > h {
		iy1 = h
	}
	if ix0 >= w {
		ix0 = w - 1
	}
	if iy0 >= h {
		iy0 = h - 1
	}
	sum := 0.0
	n := 0
	for y := iy0; y < iy1; y++ {
		for x := ix0; x < ix1; x++ {
			sum += src[y*w+x]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Crop extracts the rectangle with top-left (x, y) and size w×h.
func Crop(im *Image, x, y, w, h int) (*Image, error) {
	if x < 0 || y < 0 || w <= 0 || h <= 0 || x+w > im.W || y+h > im.H {
		return nil, fmt.Errorf("imgio: crop %dx%d at (%d,%d) out of bounds for %dx%d image", w, h, x, y, im.W, im.H)
	}
	out := New(w, h, im.C)
	for c := 0; c < im.C; c++ {
		src := im.Plane(c)
		dst := out.Plane(c)
		for r := 0; r < h; r++ {
			copy(dst[r*w:(r+1)*w], src[(y+r)*im.W+x:(y+r)*im.W+x+w])
		}
	}
	return out, nil
}

// Translate shifts the image content by (dx, dy), filling vacated pixels
// with fill.
func Translate(im *Image, dx, dy int, fill float64) *Image {
	out := New(im.W, im.H, im.C)
	for i := range out.Pix {
		out.Pix[i] = fill
	}
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			ny := y + dy
			if ny < 0 || ny >= im.H {
				continue
			}
			for x := 0; x < im.W; x++ {
				nx := x + dx
				if nx < 0 || nx >= im.W {
					continue
				}
				out.Set(c, nx, ny, im.At(c, x, y))
			}
		}
	}
	return out
}

// FlipH mirrors the image horizontally.
func FlipH(im *Image) *Image {
	out := New(im.W, im.H, im.C)
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				out.Set(c, im.W-1-x, y, im.At(c, x, y))
			}
		}
	}
	return out
}

// ColorShift adds a per-channel offset, clamping to [0,1]. Wavelet-based
// signatures are designed to be robust to such intensity shifts.
func ColorShift(im *Image, offsets ...float64) *Image {
	out := im.Clone()
	for c := 0; c < im.C && c < len(offsets); c++ {
		p := out.Plane(c)
		for i := range p {
			p[i] = clamp01(p[i] + offsets[c])
		}
	}
	return out
}

// AddNoise perturbs every sample by uniform noise in [-amp, amp], clamping
// to [0,1]. rng must not be nil.
func AddNoise(im *Image, rng *rand.Rand, amp float64) *Image {
	out := im.Clone()
	for i := range out.Pix {
		out.Pix[i] = clamp01(out.Pix[i] + (rng.Float64()*2-1)*amp)
	}
	return out
}

// Dither quantizes each channel to the given number of levels with
// Floyd-Steinberg error diffusion, simulating the dithering effects the
// paper lists among the robustness requirements.
func Dither(im *Image, levels int) *Image {
	if levels < 2 {
		levels = 2
	}
	out := im.Clone()
	q := float64(levels - 1)
	for c := 0; c < im.C; c++ {
		p := out.Plane(c)
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				i := y*im.W + x
				old := p[i]
				quantized := float64(int(clamp01(old)*q+0.5)) / q
				p[i] = quantized
				errv := old - quantized
				if x+1 < im.W {
					p[i+1] += errv * 7 / 16
				}
				if y+1 < im.H {
					if x > 0 {
						p[i+im.W-1] += errv * 3 / 16
					}
					p[i+im.W] += errv * 5 / 16
					if x+1 < im.W {
						p[i+im.W+1] += errv * 1 / 16
					}
				}
			}
		}
	}
	return out.Clamp()
}

// Paste copies src onto dst with its top-left corner at (x, y), clipping at
// the destination boundary. Channel counts must match.
func Paste(dst, src *Image, x, y int) error {
	if dst.C != src.C {
		return fmt.Errorf("imgio: paste channel mismatch %d vs %d", dst.C, src.C)
	}
	for c := 0; c < src.C; c++ {
		for sy := 0; sy < src.H; sy++ {
			dy := y + sy
			if dy < 0 || dy >= dst.H {
				continue
			}
			for sx := 0; sx < src.W; sx++ {
				dx := x + sx
				if dx < 0 || dx >= dst.W {
					continue
				}
				dst.Set(c, dx, dy, src.At(c, sx, sy))
			}
		}
	}
	return nil
}
