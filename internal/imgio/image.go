// Package imgio provides the image substrate WALRUS is built on: a planar
// float-channel image type, PPM/PGM codecs, adapters for the Go standard
// library's image types, and the geometric / photometric transforms
// (resize, crop, translate, color shift, dithering, noise) used by the
// dataset generator and the robustness experiments. It stands in for the
// ImageMagick library the paper's implementation used.
package imgio

import (
	"fmt"
	"math"
)

// Image is a planar multi-channel image. Channel values are float64s,
// nominally in [0,1]. Pixels are stored plane-major: channel c occupies
// Pix[c*W*H : (c+1)*W*H] in row-major order.
type Image struct {
	W, H int
	C    int // number of channels (1 for grayscale, 3 for color)
	Pix  []float64
}

// New allocates a zeroed w×h image with c channels.
func New(w, h, c int) *Image {
	return &Image{W: w, H: h, C: c, Pix: make([]float64, w*h*c)}
}

// Plane returns channel c's pixels in row-major order. The returned slice
// aliases the image.
func (im *Image) Plane(c int) []float64 {
	n := im.W * im.H
	return im.Pix[c*n : (c+1)*n]
}

// At returns the value of channel c at pixel (x, y).
func (im *Image) At(c, x, y int) float64 { return im.Pix[c*im.W*im.H+y*im.W+x] }

// Set assigns the value of channel c at pixel (x, y).
func (im *Image) Set(c, x, y int, v float64) { im.Pix[c*im.W*im.H+y*im.W+x] = v }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, C: im.C, Pix: make([]float64, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// Area returns the number of pixels.
func (im *Image) Area() int { return im.W * im.H }

// Validate checks structural consistency.
func (im *Image) Validate() error {
	if im.W <= 0 || im.H <= 0 || im.C <= 0 {
		return fmt.Errorf("imgio: invalid dimensions %dx%dx%d", im.W, im.H, im.C)
	}
	if len(im.Pix) != im.W*im.H*im.C {
		return fmt.Errorf("imgio: pixel buffer has %d values, want %d", len(im.Pix), im.W*im.H*im.C)
	}
	return nil
}

// Clamp limits every sample to [0,1] in place and returns the image.
func (im *Image) Clamp() *Image {
	for i, v := range im.Pix {
		im.Pix[i] = clamp01(v)
	}
	return im
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Fill sets every pixel of channel c to v.
func (im *Image) Fill(c int, v float64) {
	p := im.Plane(c)
	for i := range p {
		p[i] = v
	}
}

// FillRGB sets all pixels of a 3-channel image to (r, g, b).
func (im *Image) FillRGB(r, g, b float64) {
	im.Fill(0, r)
	im.Fill(1, g)
	im.Fill(2, b)
}

// SetRGB assigns all three channels at pixel (x, y), ignoring coordinates
// outside the image (convenient for shape rasterizers).
func (im *Image) SetRGB(x, y int, r, g, b float64) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	im.Set(0, x, y, r)
	im.Set(1, x, y, g)
	im.Set(2, x, y, b)
}

// MeanAbsDiff returns the mean absolute per-sample difference between two
// images of identical shape, a crude similarity used by tests.
func MeanAbsDiff(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H || a.C != b.C {
		return 0, fmt.Errorf("imgio: shape mismatch %dx%dx%d vs %dx%dx%d", a.W, a.H, a.C, b.W, b.H, b.C)
	}
	sum := 0.0
	for i := range a.Pix {
		sum += math.Abs(a.Pix[i] - b.Pix[i])
	}
	return sum / float64(len(a.Pix)), nil
}
