package imgio

import (
	"fmt"
	"math"
	"sort"
)

// The operations in this file round out the ImageMagick-replacement
// surface the paper relies on ("resize, rotate, sharpen, color reduce, or
// add special effects"): quarter-turn rotations, convolution-based
// sharpening and blurring, brightness/contrast/gamma adjustment, and
// median-cut color reduction.

// Rotate90 returns the image rotated a quarter turn clockwise.
func Rotate90(im *Image) *Image {
	out := New(im.H, im.W, im.C)
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				out.Set(c, im.H-1-y, x, im.At(c, x, y))
			}
		}
	}
	return out
}

// Rotate180 returns the image rotated a half turn.
func Rotate180(im *Image) *Image {
	out := New(im.W, im.H, im.C)
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				out.Set(c, im.W-1-x, im.H-1-y, im.At(c, x, y))
			}
		}
	}
	return out
}

// Rotate270 returns the image rotated a quarter turn counterclockwise.
func Rotate270(im *Image) *Image {
	out := New(im.H, im.W, im.C)
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				out.Set(c, y, im.W-1-x, im.At(c, x, y))
			}
		}
	}
	return out
}

// convolve3 applies a 3×3 kernel with clamped (edge-replicating) borders.
func convolve3(im *Image, k [9]float64) *Image {
	out := New(im.W, im.H, im.C)
	clampX := func(x int) int {
		if x < 0 {
			return 0
		}
		if x >= im.W {
			return im.W - 1
		}
		return x
	}
	clampY := func(y int) int {
		if y < 0 {
			return 0
		}
		if y >= im.H {
			return im.H - 1
		}
		return y
	}
	for c := 0; c < im.C; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				sum := 0.0
				idx := 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						sum += k[idx] * im.At(c, clampX(x+dx), clampY(y+dy))
						idx++
					}
				}
				out.Set(c, x, y, clamp01(sum))
			}
		}
	}
	return out
}

// Sharpen applies an unsharp-masking kernel with the given strength
// (0 = identity, 1 = the classic 3×3 sharpen).
func Sharpen(im *Image, strength float64) *Image {
	s := strength
	return convolve3(im, [9]float64{
		0, -s, 0,
		-s, 1 + 4*s, -s,
		0, -s, 0,
	})
}

// BoxBlur applies a 3×3 mean filter n times (n >= 1), approximating a
// Gaussian blur of growing radius.
func BoxBlur(im *Image, n int) *Image {
	k := [9]float64{}
	for i := range k {
		k[i] = 1.0 / 9
	}
	out := im
	for i := 0; i < n; i++ {
		out = convolve3(out, k)
	}
	if out == im {
		out = im.Clone()
	}
	return out
}

// AdjustBrightness adds delta to every sample, clamping to [0,1].
func AdjustBrightness(im *Image, delta float64) *Image {
	out := im.Clone()
	for i := range out.Pix {
		out.Pix[i] = clamp01(out.Pix[i] + delta)
	}
	return out
}

// AdjustContrast scales samples about 0.5 by factor (1 = identity).
func AdjustContrast(im *Image, factor float64) *Image {
	out := im.Clone()
	for i := range out.Pix {
		out.Pix[i] = clamp01((out.Pix[i]-0.5)*factor + 0.5)
	}
	return out
}

// AdjustGamma applies the power-law v^(1/gamma).
func AdjustGamma(im *Image, gamma float64) *Image {
	out := im.Clone()
	inv := 1 / gamma
	for i := range out.Pix {
		out.Pix[i] = math.Pow(clamp01(out.Pix[i]), inv)
	}
	return out
}

// ColorReduce quantizes a 3-channel image to at most n colors with
// median-cut palette selection (the "color reduce" operation of the
// paper's ImageMagick dependency). It returns the quantized image and the
// palette actually used.
func ColorReduce(im *Image, n int) (*Image, [][3]float64, error) {
	if im.C != 3 {
		return nil, nil, fmt.Errorf("imgio: ColorReduce requires 3 channels, got %d", im.C)
	}
	if n < 1 {
		return nil, nil, fmt.Errorf("imgio: ColorReduce target %d < 1", n)
	}
	total := im.W * im.H
	pixels := make([][3]float64, total)
	r, g, b := im.Plane(0), im.Plane(1), im.Plane(2)
	for i := 0; i < total; i++ {
		pixels[i] = [3]float64{r[i], g[i], b[i]}
	}

	// Median cut: repeatedly split the box with the widest channel spread.
	boxes := [][][3]float64{pixels}
	for len(boxes) < n {
		// Pick the box with the largest spread on any channel.
		bestBox, bestChan := -1, 0
		bestSpread := 0.0
		for bi, box := range boxes {
			if len(box) < 2 {
				continue
			}
			for c := 0; c < 3; c++ {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, p := range box {
					if p[c] < lo {
						lo = p[c]
					}
					if p[c] > hi {
						hi = p[c]
					}
				}
				if spread := hi - lo; spread > bestSpread {
					bestSpread, bestBox, bestChan = spread, bi, c
				}
			}
		}
		if bestBox < 0 || bestSpread == 0 {
			break
		}
		box := boxes[bestBox]
		c := bestChan
		sort.Slice(box, func(i, j int) bool { return box[i][c] < box[j][c] })
		mid := len(box) / 2
		boxes[bestBox] = box[:mid]
		boxes = append(boxes, box[mid:])
	}

	palette := make([][3]float64, 0, len(boxes))
	for _, box := range boxes {
		if len(box) == 0 {
			continue
		}
		var avg [3]float64
		for _, p := range box {
			for c := 0; c < 3; c++ {
				avg[c] += p[c]
			}
		}
		for c := 0; c < 3; c++ {
			avg[c] /= float64(len(box))
		}
		palette = append(palette, avg)
	}

	out := New(im.W, im.H, 3)
	for i := 0; i < total; i++ {
		p := [3]float64{r[i], g[i], b[i]}
		best := 0
		bestD := math.Inf(1)
		for pi, pc := range palette {
			d := 0.0
			for c := 0; c < 3; c++ {
				diff := p[c] - pc[c]
				d += diff * diff
			}
			if d < bestD {
				bestD, best = d, pi
			}
		}
		out.Plane(0)[i] = palette[best][0]
		out.Plane(1)[i] = palette[best][1]
		out.Plane(2)[i] = palette[best][2]
	}
	return out, palette, nil
}

// PSNR returns the peak signal-to-noise ratio between two images of
// identical shape, in dB (infinite for identical images).
func PSNR(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H || a.C != b.C {
		return 0, fmt.Errorf("imgio: shape mismatch %dx%dx%d vs %dx%dx%d", a.W, a.H, a.C, b.W, b.H, b.C)
	}
	mse := 0.0
	for i := range a.Pix {
		d := a.Pix[i] - b.Pix[i]
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(1/mse), nil
}

// SSIM returns the mean structural similarity index between two images of
// identical shape, computed per channel over 8×8 windows with the standard
// constants (K1=0.01, K2=0.03, L=1). 1 means identical; values fall toward
// 0 as structure diverges. It complements PSNR for judging how much a
// transform altered an image.
func SSIM(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H || a.C != b.C {
		return 0, fmt.Errorf("imgio: shape mismatch %dx%dx%d vs %dx%dx%d", a.W, a.H, a.C, b.W, b.H, b.C)
	}
	const (
		win = 8
		c1  = 0.01 * 0.01
		c2  = 0.03 * 0.03
	)
	if a.W < win || a.H < win {
		return 0, fmt.Errorf("imgio: image %dx%d smaller than the %d-pixel SSIM window", a.W, a.H, win)
	}
	total := 0.0
	windows := 0
	for c := 0; c < a.C; c++ {
		pa, pb := a.Plane(c), b.Plane(c)
		for y := 0; y+win <= a.H; y += win {
			for x := 0; x+win <= a.W; x += win {
				var sumA, sumB, sumAA, sumBB, sumAB float64
				for dy := 0; dy < win; dy++ {
					row := (y + dy) * a.W
					for dx := 0; dx < win; dx++ {
						va, vb := pa[row+x+dx], pb[row+x+dx]
						sumA += va
						sumB += vb
						sumAA += va * va
						sumBB += vb * vb
						sumAB += va * vb
					}
				}
				n := float64(win * win)
				muA, muB := sumA/n, sumB/n
				varA := sumAA/n - muA*muA
				varB := sumBB/n - muB*muB
				cov := sumAB/n - muA*muB
				ssim := ((2*muA*muB + c1) * (2*cov + c2)) /
					((muA*muA + muB*muB + c1) * (varA + varB + c2))
				total += ssim
				windows++
			}
		}
	}
	return total / float64(windows), nil
}
