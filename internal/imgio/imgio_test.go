package imgio

import (
	"bytes"
	"image"
	"image/color"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomImage(rng *rand.Rand, w, h, c int) *Image {
	im := New(w, h, c)
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	return im
}

func TestImageAccessors(t *testing.T) {
	im := New(4, 3, 3)
	im.Set(2, 1, 2, 0.75)
	if got := im.At(2, 1, 2); got != 0.75 {
		t.Fatalf("At = %v, want 0.75", got)
	}
	if got := im.Plane(2)[2*4+1]; got != 0.75 {
		t.Fatalf("Plane value = %v, want 0.75", got)
	}
	if im.Area() != 12 {
		t.Fatalf("Area = %d, want 12", im.Area())
	}
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Image{W: 2, H: 2, C: 1, Pix: make([]float64, 3)}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted inconsistent image")
	}
	if err := (&Image{W: 0, H: 1, C: 1}).Validate(); err == nil {
		t.Error("Validate accepted zero width")
	}
}

func TestCloneIsDeep(t *testing.T) {
	im := New(2, 2, 1)
	cl := im.Clone()
	cl.Set(0, 0, 0, 1)
	if im.At(0, 0, 0) != 0 {
		t.Fatal("Clone shares pixel storage")
	}
}

func TestClamp(t *testing.T) {
	im := New(2, 1, 1)
	im.Pix[0], im.Pix[1] = -0.5, 1.5
	im.Clamp()
	if im.Pix[0] != 0 || im.Pix[1] != 1 {
		t.Fatalf("Clamp = %v", im.Pix)
	}
}

func TestPPMRoundTripBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, c := range []int{1, 3} {
		im := randomImage(rng, 17, 9, c)
		var buf bytes.Buffer
		if err := EncodePPM(&buf, im); err != nil {
			t.Fatal(err)
		}
		back, err := DecodePPM(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.W != im.W || back.H != im.H || back.C != im.C {
			t.Fatalf("shape %dx%dx%d, want %dx%dx%d", back.W, back.H, back.C, im.W, im.H, im.C)
		}
		// 8-bit quantization allows error up to 1/255 (plus rounding).
		for i := range im.Pix {
			if math.Abs(im.Pix[i]-back.Pix[i]) > 1.0/255+1e-9 {
				t.Fatalf("sample %d: %v vs %v", i, im.Pix[i], back.Pix[i])
			}
		}
	}
}

func TestPPMDecodeASCII(t *testing.T) {
	src := "P3\n# a comment\n2 2\n255\n255 0 0  0 255 0\n0 0 255  255 255 255\n"
	im, err := DecodePPM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 2 || im.H != 2 || im.C != 3 {
		t.Fatalf("shape %dx%dx%d", im.W, im.H, im.C)
	}
	if im.At(0, 0, 0) != 1 || im.At(1, 1, 0) != 1 || im.At(2, 0, 1) != 1 {
		t.Fatalf("pixels wrong: %v", im.Pix)
	}
	gray := "P2\n2 1\n100\n50 100\n"
	gm, err := DecodePPM(strings.NewReader(gray))
	if err != nil {
		t.Fatal(err)
	}
	if gm.C != 1 || math.Abs(gm.Pix[0]-0.5) > 1e-9 || gm.Pix[1] != 1 {
		t.Fatalf("PGM decode: %v", gm.Pix)
	}
}

func TestPPMDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"P9\n2 2\n255\n",
		"P6\n-2 2\n255\n",
		"P6\n2 2\n0\n",
		"P6\n2 2\n255\nxx", // truncated body
		"P3\n2 2\n255\n1 2\n",
	}
	for _, src := range cases {
		if _, err := DecodePPM(strings.NewReader(src)); err == nil {
			t.Errorf("DecodePPM accepted %q", src)
		}
	}
}

func TestEncodePPMRejectsOddChannels(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodePPM(&buf, New(2, 2, 2)); err == nil {
		t.Error("EncodePPM accepted 2-channel image")
	}
}

func TestStdImageRoundTrip(t *testing.T) {
	src := image.NewRGBA(image.Rect(0, 0, 3, 2))
	src.SetRGBA(1, 1, color.RGBA{R: 255, G: 128, B: 0, A: 255})
	im := FromStdImage(src)
	if im.W != 3 || im.H != 2 || im.C != 3 {
		t.Fatalf("shape %dx%dx%d", im.W, im.H, im.C)
	}
	if math.Abs(im.At(0, 1, 1)-1) > 1e-3 || math.Abs(im.At(1, 1, 1)-128.0/255) > 1e-2 {
		t.Fatalf("pixel (1,1) = %v,%v,%v", im.At(0, 1, 1), im.At(1, 1, 1), im.At(2, 1, 1))
	}
	back := ToStdImage(im)
	r, g, b, _ := back.At(1, 1).RGBA()
	if r>>8 != 255 || (g>>8 != 128 && g>>8 != 127) || b>>8 != 0 {
		t.Fatalf("round trip pixel = %d,%d,%d", r>>8, g>>8, b>>8)
	}
}

func TestToStdImageGray(t *testing.T) {
	im := New(1, 1, 1)
	im.Set(0, 0, 0, 0.5)
	out := ToStdImage(im)
	r, g, b, _ := out.At(0, 0).RGBA()
	if r != g || g != b {
		t.Fatalf("gray pixel not replicated: %d,%d,%d", r>>8, g>>8, b>>8)
	}
}

func TestResizeDownAveragesBoxes(t *testing.T) {
	im := New(4, 4, 1)
	// Top-left 2x2 box all ones, everything else zero.
	im.Set(0, 0, 0, 1)
	im.Set(0, 1, 0, 1)
	im.Set(0, 0, 1, 1)
	im.Set(0, 1, 1, 1)
	small, err := Resize(im, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if small.At(0, 0, 0) != 1 || small.At(0, 1, 0) != 0 || small.At(0, 0, 1) != 0 {
		t.Fatalf("Resize: %v", small.Pix)
	}
}

func TestResizeUpPreservesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	im := randomImage(rng, 8, 8, 1)
	big, err := Resize(im, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(im *Image) float64 {
		s := 0.0
		for _, v := range im.Pix {
			s += v
		}
		return s / float64(len(im.Pix))
	}
	if math.Abs(mean(im)-mean(big)) > 1e-9 {
		t.Fatalf("mean changed: %v vs %v", mean(im), mean(big))
	}
}

func TestResizeErrors(t *testing.T) {
	if _, err := Resize(New(2, 2, 1), 0, 2); err == nil {
		t.Error("Resize accepted zero width")
	}
}

func TestCrop(t *testing.T) {
	im := New(4, 4, 1)
	im.Set(0, 2, 3, 0.9)
	sub, err := Crop(im, 2, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sub.At(0, 0, 1) != 0.9 {
		t.Fatalf("Crop content wrong: %v", sub.Pix)
	}
	if _, err := Crop(im, 3, 3, 2, 2); err == nil {
		t.Error("Crop accepted out-of-bounds rectangle")
	}
}

func TestTranslate(t *testing.T) {
	im := New(3, 3, 1)
	im.Set(0, 0, 0, 1)
	out := Translate(im, 2, 1, 0.25)
	if out.At(0, 2, 1) != 1 {
		t.Fatalf("content not shifted: %v", out.Pix)
	}
	if out.At(0, 0, 0) != 0.25 {
		t.Fatalf("vacated pixel = %v, want fill 0.25", out.At(0, 0, 0))
	}
}

func TestFlipH(t *testing.T) {
	im := New(3, 1, 1)
	im.Pix = []float64{1, 2, 3}
	out := FlipH(im)
	if out.Pix[0] != 3 || out.Pix[2] != 1 {
		t.Fatalf("FlipH = %v", out.Pix)
	}
	// Flipping twice is the identity.
	back := FlipH(out)
	for i := range im.Pix {
		if back.Pix[i] != im.Pix[i] {
			t.Fatalf("double flip changed pixels: %v", back.Pix)
		}
	}
}

func TestColorShiftClamps(t *testing.T) {
	im := New(1, 1, 3)
	im.Pix = []float64{0.9, 0.5, 0.1}
	out := ColorShift(im, 0.3, -0.2, -0.3)
	want := []float64{1, 0.3, 0}
	for i := range want {
		if math.Abs(out.Pix[i]-want[i]) > 1e-9 {
			t.Fatalf("ColorShift = %v, want %v", out.Pix, want)
		}
	}
}

func TestAddNoiseBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	im := randomImage(rng, 8, 8, 3)
	out := AddNoise(im, rng, 0.1)
	for i := range out.Pix {
		if out.Pix[i] < 0 || out.Pix[i] > 1 {
			t.Fatalf("noisy sample %d out of range: %v", i, out.Pix[i])
		}
		if math.Abs(out.Pix[i]-im.Pix[i]) > 0.1+1e-9 {
			t.Fatalf("noise amplitude exceeded at %d", i)
		}
	}
}

func TestDitherPreservesMeanApproximately(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	im := randomImage(rng, 32, 32, 1)
	out := Dither(im, 4)
	var m1, m2 float64
	for i := range im.Pix {
		m1 += im.Pix[i]
		m2 += out.Pix[i]
	}
	m1 /= float64(len(im.Pix))
	m2 /= float64(len(im.Pix))
	if math.Abs(m1-m2) > 0.02 {
		t.Fatalf("dithering shifted mean: %v vs %v", m1, m2)
	}
	// All output values must be (nearly) on the quantization lattice or
	// clamped; with error diffusion neighbors absorb residuals, so just
	// check the range.
	for _, v := range out.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("dithered sample out of range: %v", v)
		}
	}
}

func TestPaste(t *testing.T) {
	dst := New(4, 4, 1)
	src := New(2, 2, 1)
	src.Fill(0, 1)
	if err := Paste(dst, src, 3, 3); err != nil {
		t.Fatal(err)
	}
	if dst.At(0, 3, 3) != 1 {
		t.Fatal("paste did not copy")
	}
	if dst.At(0, 2, 2) != 0 {
		t.Fatal("paste overwrote outside source")
	}
	if err := Paste(dst, New(1, 1, 3), 0, 0); err == nil {
		t.Error("Paste accepted channel mismatch")
	}
}

func TestMeanAbsDiff(t *testing.T) {
	a := New(2, 1, 1)
	b := New(2, 1, 1)
	b.Pix[0] = 0.5
	d, err := MeanAbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.25) > 1e-9 {
		t.Fatalf("MeanAbsDiff = %v, want 0.25", d)
	}
	if _, err := MeanAbsDiff(a, New(3, 1, 1)); err == nil {
		t.Error("MeanAbsDiff accepted shape mismatch")
	}
}

// TestPPMEncodeDecodeQuick drives the codec with random shapes.
func TestPPMEncodeDecodeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := randomImage(rng, 1+rng.Intn(20), 1+rng.Intn(20), 3)
		var buf bytes.Buffer
		if err := EncodePPM(&buf, im); err != nil {
			return false
		}
		back, err := DecodePPM(&buf)
		if err != nil {
			return false
		}
		if back.W != im.W || back.H != im.H {
			return false
		}
		for i := range im.Pix {
			if math.Abs(im.Pix[i]-back.Pix[i]) > 1.0/255+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
