// Package obscli wires the observability registry into the walrus command
// lines: every binary that takes -obs-addr / -obs-snapshot registers its
// flags here and gets back a ready registry plus a teardown hook. The
// default (no flags) is a nil registry, which keeps the instrumented
// library paths on their nil fast path.
package obscli

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"walrus/internal/obs"
)

// Flags holds the observability knobs shared by the walrus commands.
type Flags struct {
	// Addr serves /metrics (Prometheus), /debug/vars (expvar JSON),
	// /debug/walrus/spans and /debug/pprof on this address; empty = off.
	Addr string
	// Snapshot dumps a metrics table to stderr at teardown.
	Snapshot bool
}

// Register installs -obs-addr and -obs-snapshot on the default flag set.
// Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.Addr, "obs-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = disabled)")
	flag.BoolVar(&f.Snapshot, "obs-snapshot", false, "dump a metrics table to stderr before exiting")
	return f
}

// LogFlags holds the structured-logging knobs shared by the walrus
// commands: the slog output format and the slow-query threshold.
type LogFlags struct {
	// Format selects the slog handler: "text" (default) or "json".
	Format string
	// SlowQueryMS logs any query at least this slow; 0 disables.
	SlowQueryMS int
}

// RegisterLog installs -log-format and -slow-query-ms on the default
// flag set. Call before flag.Parse.
func RegisterLog() *LogFlags {
	lf := &LogFlags{}
	flag.StringVar(&lf.Format, "log-format", "text", "structured log format: text or json")
	flag.IntVar(&lf.SlowQueryMS, "slow-query-ms", 0, "log queries slower than this many milliseconds (0 = disabled)")
	return lf
}

// Logger builds the slog.Logger the flags describe, writing to w.
func (lf *LogFlags) Logger(w io.Writer) (*slog.Logger, error) {
	switch lf.Format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("obs: unknown -log-format %q (want text or json)", lf.Format)
	}
}

// SlowQueryThreshold converts -slow-query-ms to a duration.
func (lf *LogFlags) SlowQueryThreshold() time.Duration {
	return time.Duration(lf.SlowQueryMS) * time.Millisecond
}

// Start creates a registry when any observability flag is set and starts
// the HTTP listener if -obs-addr was given. It returns the registry (nil
// when observability is off — safe to pass to DB.SetMetrics as-is) and a
// stop function to defer, which prints the -obs-snapshot table and shuts
// the listener down.
func (f *Flags) Start() (*obs.Registry, func(), error) {
	if f.Addr == "" && !f.Snapshot {
		return nil, func() {}, nil
	}
	reg := obs.NewRegistry()
	var srv *obs.Server
	if f.Addr != "" {
		var err error
		srv, err = obs.Serve(f.Addr, reg)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: listening on %s: %w", f.Addr, err)
		}
		fmt.Fprintf(os.Stderr, "obs: metrics at http://%s/metrics\n", srv.Addr)
	}
	stop := func() {
		if f.Snapshot {
			fmt.Fprintln(os.Stderr, "obs: final metrics snapshot:")
			reg.WriteTable(os.Stderr)
		}
		if srv != nil {
			// Best-effort shutdown of a debug listener on process exit.
			srv.Close() //walrus:lint-ignore errsink process is exiting; nothing to do with a close error
		}
	}
	return reg, stop, nil
}
