package region

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"walrus/internal/colorspace"
	"walrus/internal/imgio"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(16)
	if b.Count() != 0 || b.Fraction() != 0 {
		t.Fatal("fresh bitmap not empty")
	}
	b.Set(0, 0)
	b.Set(15, 15)
	if !b.Get(0, 0) || !b.Get(15, 15) || b.Get(1, 1) {
		t.Fatal("Set/Get wrong")
	}
	if b.Count() != 2 {
		t.Fatalf("Count = %d", b.Count())
	}
	if math.Abs(b.Fraction()-2.0/256) > 1e-12 {
		t.Fatalf("Fraction = %v", b.Fraction())
	}
}

func TestBitmapUnion(t *testing.T) {
	a := NewBitmap(8)
	b := NewBitmap(8)
	a.Set(0, 0)
	b.Set(0, 0)
	b.Set(7, 7)
	if err := a.UnionWith(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 2 {
		t.Fatalf("union Count = %d", a.Count())
	}
	c := NewBitmap(4)
	if err := a.UnionWith(c); err == nil {
		t.Fatal("UnionWith accepted mismatched grids")
	}
}

func TestBitmapCloneIndependent(t *testing.T) {
	a := NewBitmap(8)
	a.Set(3, 3)
	b := a.Clone()
	b.Set(4, 4)
	if a.Get(4, 4) {
		t.Fatal("Clone shares words")
	}
}

func TestCoverWindowExact(t *testing.T) {
	// 64x64 image, 16x16 grid: each cell is 4x4 pixels. A window at
	// (8,8)-(24,24) covers cells 2..5 in both axes.
	b := NewBitmap(16)
	b.CoverWindow(8, 8, 16, 16, 64, 64)
	for by := 0; by < 16; by++ {
		for bx := 0; bx < 16; bx++ {
			want := bx >= 2 && bx < 6 && by >= 2 && by < 6
			if b.Get(bx, by) != want {
				t.Fatalf("cell (%d,%d) = %v, want %v", bx, by, b.Get(bx, by), want)
			}
		}
	}
}

func TestCoverWindowPartialCells(t *testing.T) {
	// A window that only grazes a cell still sets it.
	b := NewBitmap(4)
	b.CoverWindow(0, 0, 1, 1, 64, 64)
	if !b.Get(0, 0) || b.Count() != 1 {
		t.Fatalf("graze: Count=%d", b.Count())
	}
	// Full-image window sets everything.
	f := NewBitmap(4)
	f.CoverWindow(0, 0, 64, 64, 64, 64)
	if f.Count() != 16 {
		t.Fatalf("full cover Count = %d", f.Count())
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{MaxWindow: 3, MinWindow: 2, Signature: 2, Step: 1, BitmapGrid: 16},
		{MaxWindow: 8, MinWindow: 3, Signature: 2, Step: 1, BitmapGrid: 16},
		{MaxWindow: 8, MinWindow: 16, Signature: 2, Step: 1, BitmapGrid: 16},
		{MaxWindow: 8, MinWindow: 4, Signature: 2, Step: 1, BitmapGrid: 0},
		{MaxWindow: 8, MinWindow: 4, Signature: 2, Step: 1, BitmapGrid: 16, ClusterEps: -1},
		{MaxWindow: 8, MinWindow: 4, Signature: 2, Step: 1, BitmapGrid: 16, MaxRegions: -2},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, o)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("DefaultOptions invalid: %v", err)
	}
	if DefaultOptions().Dim() != 12 {
		t.Fatalf("default Dim = %d, want 12 (the paper's 12-dimensional points)", DefaultOptions().Dim())
	}
}

// twoToneImage builds a 128x128 image that is green except for a red
// square at (x0,y0) with the given side.
func twoToneImage(x0, y0, side int) *imgio.Image {
	im := imgio.New(128, 128, 3)
	im.FillRGB(0.1, 0.7, 0.1)
	for y := y0; y < y0+side && y < im.H; y++ {
		for x := x0; x < x0+side && x < im.W; x++ {
			im.SetRGB(x, y, 0.9, 0.1, 0.1)
		}
	}
	return im
}

func testOptions() Options {
	o := DefaultOptions()
	o.MaxWindow = 32
	o.MinWindow = 32
	o.Step = 8
	return o
}

func TestExtractTwoToneImage(t *testing.T) {
	e, err := NewExtractor(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	regions, err := e.Extract(twoToneImage(0, 0, 64))
	if err != nil {
		t.Fatal(err)
	}
	// A half-red half-green image must produce at least two regions (one
	// per dominant color; boundary windows may add more).
	if len(regions) < 2 {
		t.Fatalf("got %d regions, want >= 2", len(regions))
	}
	totalWindows := 0
	union := NewBitmap(16)
	for _, r := range regions {
		if len(r.Signature) != 12 {
			t.Fatalf("signature dim %d, want 12", len(r.Signature))
		}
		if r.Windows <= 0 {
			t.Fatal("region with no windows")
		}
		if r.Bitmap.Count() == 0 {
			t.Fatal("region with empty bitmap")
		}
		for i := range r.Signature {
			if r.Signature[i] < r.Min[i]-1e-9 || r.Signature[i] > r.Max[i]+1e-9 {
				t.Fatal("centroid outside signature bounding box")
			}
		}
		totalWindows += r.Windows
		if err := union.UnionWith(r.Bitmap); err != nil {
			t.Fatal(err)
		}
	}
	// All windows accounted for: (128-32)/8+1 = 13 positions per axis.
	if want := 13 * 13; totalWindows != want {
		t.Fatalf("total windows %d, want %d", totalWindows, want)
	}
	// Windows cover the whole image, so the union bitmap must be full.
	if union.Count() != 256 {
		t.Fatalf("union covers %d cells, want 256", union.Count())
	}
}

// TestExtractHomogeneousImage: a flat image collapses to a single region
// covering everything.
func TestExtractHomogeneousImage(t *testing.T) {
	e, err := NewExtractor(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	im := imgio.New(128, 128, 3)
	im.FillRGB(0.4, 0.5, 0.6)
	regions, err := e.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 {
		t.Fatalf("flat image produced %d regions, want 1", len(regions))
	}
	if regions[0].Bitmap.Count() != 256 {
		t.Fatalf("flat region covers %d cells", regions[0].Bitmap.Count())
	}
}

// TestExtractTranslationInvariance: the same object at two different
// locations yields regions with (nearly) identical signatures.
func TestExtractTranslationInvariance(t *testing.T) {
	e, err := NewExtractor(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Extract(twoToneImage(0, 0, 48))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Extract(twoToneImage(64, 64, 48))
	if err != nil {
		t.Fatal(err)
	}
	// The two dominant regions of a (the green background and the red
	// square) must have near-identical counterparts in b; clusters of
	// mixed boundary windows legitimately differ between the placements.
	sort.Slice(a, func(i, j int) bool { return a[i].Windows > a[j].Windows })
	for _, ra := range a[:2] {
		best := math.Inf(1)
		for _, rb := range b {
			d := 0.0
			for i := range ra.Signature {
				diff := ra.Signature[i] - rb.Signature[i]
				d += diff * diff
			}
			if d = math.Sqrt(d); d < best {
				best = d
			}
		}
		if best > 0.1 {
			t.Fatalf("dominant region has no translated counterpart (nearest %v)", best)
		}
	}
}

// TestExtractClusterEpsMonotone: more permissive εc produces at most as
// many regions (Section 6.6's observation).
func TestExtractClusterEpsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	im := imgio.New(128, 128, 3)
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	prev := -1
	for _, eps := range []float64{0.01, 0.05, 0.2, 0.8} {
		o := testOptions()
		o.ClusterEps = eps
		e, err := NewExtractor(o)
		if err != nil {
			t.Fatal(err)
		}
		regions, err := e.Extract(im)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && len(regions) > prev+prev/4+1 {
			t.Fatalf("eps %v produced %d regions, smaller eps produced %d", eps, len(regions), prev)
		}
		prev = len(regions)
	}
}

func TestExtractErrors(t *testing.T) {
	e, err := NewExtractor(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Extract(imgio.New(16, 16, 3)); err == nil {
		t.Error("Extract accepted image smaller than MinWindow")
	}
	if _, err := e.Extract(imgio.New(128, 128, 1)); err == nil {
		t.Error("Extract accepted grayscale image")
	}
	if _, err := NewExtractor(Options{MaxWindow: 3}); err == nil {
		t.Error("NewExtractor accepted invalid options")
	}
}

// TestExtractMultiScale: enabling multiple window sizes yields more
// windows and still accounts for all of them.
func TestExtractMultiScale(t *testing.T) {
	o := testOptions()
	o.MinWindow = 16
	e, err := NewExtractor(o)
	if err != nil {
		t.Fatal(err)
	}
	regions, err := e.Extract(twoToneImage(16, 16, 64))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range regions {
		total += r.Windows
	}
	// 16-size windows: (128-16)/8+1 = 15 per axis; 32-size: 13 per axis.
	if want := 15*15 + 13*13; total != want {
		t.Fatalf("total windows %d, want %d", total, want)
	}
}

// TestExtractMaxRegionsCap: the cap rebuilds clustering until it fits.
func TestExtractMaxRegionsCap(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	im := imgio.New(128, 128, 3)
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	o := testOptions()
	o.ClusterEps = 0.001
	o.MaxRegions = 5
	e, err := NewExtractor(o)
	if err != nil {
		t.Fatal(err)
	}
	regions, err := e.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) > 5 {
		t.Fatalf("cap violated: %d regions", len(regions))
	}
}

// TestExtractRGBvsYCCRegionCounts mirrors Section 6.6: RGB typically
// produces more clusters than YCC on natural-ish content.
func TestExtractRGBvsYCCRegionCounts(t *testing.T) {
	// Build a scene with several colored patches plus texture.
	rng := rand.New(rand.NewSource(83))
	im := imgio.New(128, 128, 3)
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			r, g, b := rng.Float64(), rng.Float64(), rng.Float64()
			for y := by * 32; y < (by+1)*32; y++ {
				for x := bx * 32; x < (bx+1)*32; x++ {
					im.SetRGB(x, y, r, g, b)
				}
			}
		}
	}
	count := func(space colorspace.Space) int {
		o := testOptions()
		o.Space = space
		e, err := NewExtractor(o)
		if err != nil {
			t.Fatal(err)
		}
		regions, err := e.Extract(im)
		if err != nil {
			t.Fatal(err)
		}
		return len(regions)
	}
	rgb, ycc := count(colorspace.RGB), count(colorspace.YCC)
	if rgb < ycc {
		t.Logf("note: RGB %d < YCC %d on this scene (paper reports RGB ≈ 4x YCC on photos)", rgb, ycc)
	}
	if rgb == 0 || ycc == 0 {
		t.Fatal("no regions extracted")
	}
}

// TestExtractRefineIterations: refinement keeps all windows assigned and
// retrieval-compatible region structure.
func TestExtractRefineIterations(t *testing.T) {
	o := testOptions()
	o.RefineIterations = 5
	e, err := NewExtractor(o)
	if err != nil {
		t.Fatal(err)
	}
	regions, err := e.Extract(twoToneImage(16, 16, 64))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range regions {
		if r.Windows <= 0 || r.Bitmap.Count() == 0 {
			t.Fatalf("degenerate region after refinement: %+v", r)
		}
		total += r.Windows
	}
	if want := 13 * 13; total != want {
		t.Fatalf("refinement lost windows: %d of %d", total, want)
	}
	o.RefineIterations = -1
	if _, err := NewExtractor(o); err == nil {
		t.Fatal("accepted negative RefineIterations")
	}
}
