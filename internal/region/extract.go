//walrus:lint-hot per-window signature extraction dominates indexing cost
package region

import (
	"fmt"

	"walrus/internal/birch"
	"walrus/internal/colorspace"
	"walrus/internal/imgio"
	"walrus/internal/parallel"
	"walrus/internal/wavelet"
)

// Options configures region extraction. The defaults (DefaultOptions)
// reproduce the parameters of the paper's retrieval experiments
// (Section 6.4): 64×64 sliding windows, 2×2 signatures per color channel
// (12 dimensions in a 3-channel space), εc = 0.05 and a 16×16 bitmap.
type Options struct {
	// MaxWindow is the largest sliding window side ωmax (power of two).
	MaxWindow int
	// MinWindow is the smallest window side ωmin (power of two,
	// <= MaxWindow). The paper's retrieval experiments used a single fixed
	// size, MinWindow == MaxWindow == 64.
	MinWindow int
	// Signature is s; each window contributes an s×s low band per channel.
	Signature int
	// Step is the sliding distance t between adjacent windows.
	Step int
	// ClusterEps is εc, the BIRCH radius threshold.
	ClusterEps float64
	// BitmapGrid is k, the side of the coarse coverage bitmap.
	BitmapGrid int
	// Space is the color space signatures are computed in.
	Space colorspace.Space
	// MaxRegions caps the number of regions per image (0 = unlimited); the
	// CF-tree is rebuilt with doubled thresholds until it fits.
	MaxRegions int
	// MergeRegions runs an agglomerative repair pass after BIRCH
	// pre-clustering, merging clusters whose union still fits within
	// ClusterEps. This removes insertion-order artifacts at a small O(k²)
	// cost per image.
	MergeRegions bool
	// RefineIterations, when positive, runs up to that many rounds of
	// centroid refinement (BIRCH's optional phase 4) after pre-clustering,
	// reassigning every window to its nearest cluster centroid. This
	// removes insertion-order sensitivity at the cost of extra passes.
	RefineIterations int
	// Workers bounds the goroutines used inside one extraction: the
	// per-channel wavelet pyramids run concurrently and each pyramid fans
	// its DP rows across the same pool. 0 uses GOMAXPROCS, 1 reproduces
	// the fully serial computation. The extracted regions are identical
	// for every setting.
	Workers int
	// FineSignature, when nonzero, additionally stores a finer
	// FineSignature×FineSignature low band per channel with every region,
	// enabling the refined matching phase of Section 5.5 (re-verifying
	// candidate region pairs with more detailed signatures). Must be a
	// power of two in (Signature, MinWindow].
	FineSignature int
}

// DefaultOptions returns the paper's retrieval parameters.
func DefaultOptions() Options {
	return Options{
		MaxWindow:  64,
		MinWindow:  64,
		Signature:  2,
		Step:       8,
		ClusterEps: 0.05,
		BitmapGrid: 16,
		Space:      colorspace.YCC,
	}
}

// Validate checks option consistency.
func (o Options) Validate() error {
	p := wavelet.SlidingParams{MaxWindow: o.MaxWindow, Signature: o.Signature, Step: o.Step}
	if err := p.Validate(); err != nil {
		return err
	}
	if o.MinWindow < 2 || o.MinWindow > o.MaxWindow || o.MinWindow&(o.MinWindow-1) != 0 {
		return fmt.Errorf("region: MinWindow %d must be a power of two in [2, MaxWindow]", o.MinWindow)
	}
	if o.ClusterEps < 0 {
		return fmt.Errorf("region: negative ClusterEps %v", o.ClusterEps)
	}
	if o.BitmapGrid < 1 || o.BitmapGrid > 256 {
		return fmt.Errorf("region: BitmapGrid %d out of range [1,256]", o.BitmapGrid)
	}
	if o.MaxRegions < 0 {
		return fmt.Errorf("region: negative MaxRegions %d", o.MaxRegions)
	}
	if o.RefineIterations < 0 {
		return fmt.Errorf("region: negative RefineIterations %d", o.RefineIterations)
	}
	if o.Workers < 0 {
		return fmt.Errorf("region: negative Workers %d", o.Workers)
	}
	if o.FineSignature != 0 {
		if o.FineSignature <= o.Signature || o.FineSignature > o.MinWindow || o.FineSignature&(o.FineSignature-1) != 0 {
			return fmt.Errorf("region: FineSignature %d must be a power of two in (Signature=%d, MinWindow=%d]",
				o.FineSignature, o.Signature, o.MinWindow)
		}
	}
	return nil
}

// Dim returns the signature dimensionality: channels × s².
func (o Options) Dim() int {
	return o.Space.Channels() * o.Signature * o.Signature
}

// Region is one extracted image region: a cluster of sliding windows with
// similar wavelet signatures.
type Region struct {
	// Signature is the cluster centroid in signature space (length
	// Options.Dim()).
	Signature []float64
	// Min and Max bound the member window signatures elementwise — the
	// alternative bounding-box region signature of Section 4.
	Min, Max []float64
	// Bitmap marks the image cells covered by the cluster's windows.
	Bitmap Bitmap
	// Windows is the number of sliding windows in the cluster.
	Windows int
	// Fine is the centroid of the members' finer signatures (length
	// channels × FineSignature²); nil unless Options.FineSignature is set.
	// It backs the refined matching phase of Section 5.5.
	Fine []float64
}

// windowRef records the geometry of one sliding window.
type windowRef struct {
	x, y, size int
}

// Extractor turns images into region sets. It is stateless apart from the
// options and safe for concurrent use.
type Extractor struct {
	opts Options
}

// NewExtractor validates opts and returns an Extractor.
func NewExtractor(opts Options) (*Extractor, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Extractor{opts: opts}, nil
}

// Options returns the extractor's configuration.
func (e *Extractor) Options() Options { return e.opts }

// Extract decomposes an RGB image into regions. Images smaller than
// MinWindow in either dimension yield an error.
func (e *Extractor) Extract(im *imgio.Image) ([]Region, error) {
	if err := im.Validate(); err != nil {
		return nil, err
	}
	if im.C != 3 {
		return nil, fmt.Errorf("region: Extract requires a 3-channel RGB image, got %d channels", im.C)
	}
	if im.W < e.opts.MinWindow || im.H < e.opts.MinWindow {
		return nil, fmt.Errorf("region: image %dx%d smaller than minimum window %d", im.W, im.H, e.opts.MinWindow)
	}
	conv, err := colorspace.FromRGB(im, e.opts.Space)
	if err != nil {
		return nil, err
	}

	points, fines, refs, err := e.windowSignatures(conv)
	if err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("region: image %dx%d produced no windows", im.W, im.H)
	}
	clusters, err := birch.ClusterPoints(points, e.opts.ClusterEps, e.opts.MaxRegions)
	if err != nil {
		return nil, err
	}
	if e.opts.MergeRegions {
		clusters = birch.MergeClusters(clusters, e.opts.ClusterEps)
	}
	if e.opts.RefineIterations > 0 {
		clusters = birch.RefineClusters(points, clusters, e.opts.RefineIterations)
	}

	regions := make([]Region, 0, len(clusters))
	for _, c := range clusters {
		r := Region{
			Signature: c.Centroid,
			Min:       c.Min,
			Max:       c.Max,
			Bitmap:    NewBitmap(e.opts.BitmapGrid),
			Windows:   len(c.Members),
		}
		for _, m := range c.Members {
			w := refs[m]
			r.Bitmap.CoverWindow(w.x, w.y, w.size, w.size, im.W, im.H)
		}
		if fines != nil {
			r.Fine = make([]float64, len(fines[0]))
			for _, m := range c.Members {
				for i, v := range fines[m] {
					r.Fine[i] += v
				}
			}
			for i := range r.Fine {
				r.Fine[i] /= float64(len(c.Members))
			}
		}
		regions = append(regions, r)
	}
	return regions, nil
}

// windowSignatures computes the signature point of every sliding window of
// every configured size, together with the window geometries. Points are
// the concatenation of the per-channel s×s low bands; when FineSignature
// is enabled a parallel slice of finer signature vectors is returned (the
// coarse point is the top-left corner of the fine one, so a single wavelet
// pass serves both).
func (e *Extractor) windowSignatures(im *imgio.Image) (points, fines [][]float64, refs []windowRef, err error) {
	maxWin := e.opts.MaxWindow
	// Clamp ωmax to the image; Validate already ensured MinWindow fits.
	for maxWin > im.W || maxWin > im.H {
		maxWin /= 2
	}
	computeSig := e.opts.Signature
	if e.opts.FineSignature > computeSig {
		computeSig = e.opts.FineSignature
	}
	params := wavelet.SlidingParams{MaxWindow: maxWin, Signature: computeSig, Step: e.opts.Step, Workers: e.opts.Workers}
	// The per-channel pyramids are independent; compute them concurrently
	// (each additionally fans its DP rows across params.Workers).
	pyramids := make([]*wavelet.Pyramid, im.C)
	chErrs := make([]error, im.C)
	parallel.For(im.C, e.opts.Workers, func(c int) {
		pyramids[c], chErrs[c] = wavelet.ComputeSlidingWindows(im.Plane(c), im.W, im.H, params)
	})
	for _, err := range chErrs {
		if err != nil {
			return nil, nil, nil, err
		}
	}

	s := e.opts.Signature
	fs := e.opts.FineSignature
	for win := e.opts.MinWindow; win <= maxWin; win *= 2 {
		grid := pyramids[0].Level(win)
		if grid == nil {
			continue
		}
		sig := grid.Sig
		for iy := 0; iy < grid.NY; iy++ {
			for ix := 0; ix < grid.NX; ix++ {
				x, y := grid.PosOf(ix, iy)
				p := make([]float64, 0, im.C*s*s)
				var f []float64
				if fs > 0 {
					f = make([]float64, 0, im.C*fs*fs)
				}
				for c := 0; c < im.C; c++ {
					blk := pyramids[c].Level(win).SigAt(ix, iy)
					p = append(p, cornerBlock(blk, sig, s)...)
					if fs > 0 {
						f = append(f, cornerBlock(blk, sig, fs)...)
					}
				}
				points = append(points, p)
				if fs > 0 {
					fines = append(fines, f)
				}
				refs = append(refs, windowRef{x: x, y: y, size: win})
			}
		}
	}
	return points, fines, refs, nil
}

// cornerBlock extracts the top-left want×want corner of a stored have×have
// signature block into a dense want×want vector. When have < want (a
// window smaller than the signature) the available coefficients land in
// the top-left and the rest stay zero, so all points share one
// dimensionality.
func cornerBlock(blk []float64, have, want int) []float64 {
	out := make([]float64, want*want)
	n := min(have, want)
	for r := 0; r < n; r++ {
		copy(out[r*want:r*want+n], blk[r*have:r*have+n])
	}
	return out
}
