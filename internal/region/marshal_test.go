package region

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomRegion(rng *rand.Rand, dim, fineDim, k int) Region {
	r := Region{
		Signature: make([]float64, dim),
		Min:       make([]float64, dim),
		Max:       make([]float64, dim),
		Bitmap:    NewBitmap(k),
		Windows:   rng.Intn(1000),
	}
	for i := 0; i < dim; i++ {
		r.Signature[i] = rng.Float64()
		r.Min[i] = r.Signature[i] - rng.Float64()*0.1
		r.Max[i] = r.Signature[i] + rng.Float64()*0.1
	}
	if fineDim > 0 {
		r.Fine = make([]float64, fineDim)
		for i := range r.Fine {
			r.Fine[i] = rng.Float64()
		}
	}
	for i := 0; i < k*k/3; i++ {
		r.Bitmap.Set(rng.Intn(k), rng.Intn(k))
	}
	return r
}

func regionsEqual(a, b *Region) bool {
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !eq(a.Signature, b.Signature) || !eq(a.Min, b.Min) || !eq(a.Max, b.Max) || !eq(a.Fine, b.Fine) {
		return false
	}
	if a.Windows != b.Windows || a.Bitmap.K != b.Bitmap.K {
		return false
	}
	for i := range a.Bitmap.Words {
		if a.Bitmap.Words[i] != b.Bitmap.Words[i] {
			return false
		}
	}
	return true
}

func TestRegionMarshalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(48)
		fineDim := 0
		if rng.Intn(2) == 0 {
			fineDim = 1 + rng.Intn(192)
		}
		k := 1 + rng.Intn(32)
		r := randomRegion(rng, dim, fineDim, k)
		data, err := r.MarshalBinary()
		if err != nil {
			return false
		}
		var back Region
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return regionsEqual(&r, &back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionMarshalValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	r := randomRegion(rng, 4, 0, 8)
	r.Min = r.Min[:2] // inconsistent dims
	if _, err := r.MarshalBinary(); err == nil {
		t.Error("marshaled inconsistent region")
	}
	r = randomRegion(rng, 4, 0, 8)
	r.Bitmap.Words = r.Bitmap.Words[:0]
	if _, err := r.MarshalBinary(); err == nil {
		t.Error("marshaled region with truncated bitmap")
	}
}

func TestRegionUnmarshalValidation(t *testing.T) {
	var r Region
	if err := r.UnmarshalBinary(nil); err == nil {
		t.Error("unmarshaled empty record")
	}
	if err := r.UnmarshalBinary(make([]byte, 10)); err == nil {
		t.Error("unmarshaled version-0 record")
	}
	rng := rand.New(rand.NewSource(91))
	good := randomRegion(rng, 4, 0, 8)
	data, err := good.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Error("unmarshaled truncated record")
	}
	data[0] = 99
	if err := r.UnmarshalBinary(data); err == nil {
		t.Error("unmarshaled bad version")
	}
}
