package region

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary layout of a serialized Region (little endian):
//
//	0:  version byte (1)
//	1:  bitmap grid side K (uint8)
//	2:  signature dimensionality (uint16)
//	4:  fine signature dimensionality (uint16; 0 = none)
//	6:  window count (uint32)
//	10: Signature, Min, Max (dim float64s each)
//	    Fine (fineDim float64s)
//	    bitmap words (ceil(K*K/64) uint64s)
const regionMarshalVersion = 1

// MarshalBinary serializes the region for storage in a heap file.
func (r *Region) MarshalBinary() ([]byte, error) {
	dim := len(r.Signature)
	if len(r.Min) != dim || len(r.Max) != dim {
		return nil, fmt.Errorf("region: inconsistent signature dims %d/%d/%d", dim, len(r.Min), len(r.Max))
	}
	if dim > math.MaxUint16 || len(r.Fine) > math.MaxUint16 {
		return nil, fmt.Errorf("region: dimensions too large to marshal")
	}
	if r.Bitmap.K < 1 || r.Bitmap.K > 255 {
		return nil, fmt.Errorf("region: bitmap grid %d out of range", r.Bitmap.K)
	}
	if want := (r.Bitmap.K*r.Bitmap.K + 63) / 64; len(r.Bitmap.Words) != want {
		return nil, fmt.Errorf("region: bitmap has %d words, want %d", len(r.Bitmap.Words), want)
	}
	size := 10 + 8*(3*dim+len(r.Fine)+len(r.Bitmap.Words))
	buf := make([]byte, size)
	buf[0] = regionMarshalVersion
	buf[1] = byte(r.Bitmap.K)
	binary.LittleEndian.PutUint16(buf[2:], uint16(dim))
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(r.Fine)))
	binary.LittleEndian.PutUint32(buf[6:], uint32(r.Windows))
	off := 10
	putFloats := func(v []float64) {
		for _, x := range v {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(x))
			off += 8
		}
	}
	putFloats(r.Signature)
	putFloats(r.Min)
	putFloats(r.Max)
	putFloats(r.Fine)
	for _, w := range r.Bitmap.Words {
		binary.LittleEndian.PutUint64(buf[off:], w)
		off += 8
	}
	return buf, nil
}

// UnmarshalBinary reverses MarshalBinary.
func (r *Region) UnmarshalBinary(data []byte) error {
	if len(data) < 10 {
		return fmt.Errorf("region: record too short (%d bytes)", len(data))
	}
	if data[0] != regionMarshalVersion {
		return fmt.Errorf("region: unsupported record version %d", data[0])
	}
	k := int(data[1])
	dim := int(binary.LittleEndian.Uint16(data[2:]))
	fineDim := int(binary.LittleEndian.Uint16(data[4:]))
	windows := int(binary.LittleEndian.Uint32(data[6:]))
	words := (k*k + 63) / 64
	want := 10 + 8*(3*dim+fineDim+words)
	if len(data) != want {
		return fmt.Errorf("region: record is %d bytes, want %d", len(data), want)
	}
	off := 10
	getFloats := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
		return out
	}
	r.Signature = getFloats(dim)
	r.Min = getFloats(dim)
	r.Max = getFloats(dim)
	if fineDim > 0 {
		r.Fine = getFloats(fineDim)
	} else {
		r.Fine = nil
	}
	r.Bitmap = Bitmap{K: k, Words: make([]uint64, words)}
	for i := range r.Bitmap.Words {
		r.Bitmap.Words[i] = binary.LittleEndian.Uint64(data[off:])
		off += 8
	}
	r.Windows = windows
	return nil
}
