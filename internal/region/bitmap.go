// Package region implements WALRUS's region extraction (Sections 5.2–5.3
// of the paper): it computes wavelet signatures for sliding windows of an
// image, clusters the window signatures with BIRCH under the cluster
// epsilon εc, and turns each cluster into a Region carrying a signature
// (the cluster centroid, or alternatively the bounding box of the member
// signatures) and a coarse k×k bitmap of the image pixels covered by the
// cluster's windows. The bitmap is what the image-matching step uses to
// compute covered areas (Definition 4.3).
package region

import (
	"fmt"
	"math/bits"
)

// Bitmap is a coarse k×k coverage bitmap. Bit (bx, by) is set when the
// corresponding cell of the image is covered by at least one window of the
// region. A 16×16 bitmap costs 32 bytes, the figure quoted in Section 6.4.
type Bitmap struct {
	K     int
	Words []uint64
}

// NewBitmap creates an empty k×k bitmap.
func NewBitmap(k int) Bitmap {
	return Bitmap{K: k, Words: make([]uint64, (k*k+63)/64)}
}

// Set sets the bit at grid cell (bx, by).
func (b *Bitmap) Set(bx, by int) {
	i := by*b.K + bx
	b.Words[i/64] |= 1 << (i % 64)
}

// Get reports the bit at grid cell (bx, by).
func (b *Bitmap) Get(bx, by int) bool {
	i := by*b.K + bx
	return b.Words[i/64]&(1<<(i%64)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.Words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Fraction returns the covered fraction of the image, Count/K².
func (b *Bitmap) Fraction() float64 {
	if b.K == 0 {
		return 0
	}
	return float64(b.Count()) / float64(b.K*b.K)
}

// UnionWith ORs other into b. The bitmaps must have the same K.
func (b *Bitmap) UnionWith(other Bitmap) error {
	if b.K != other.K {
		return fmt.Errorf("region: bitmap grids differ: %d vs %d", b.K, other.K)
	}
	for i := range b.Words {
		b.Words[i] |= other.Words[i]
	}
	return nil
}

// Clone returns a deep copy.
func (b Bitmap) Clone() Bitmap {
	out := Bitmap{K: b.K, Words: make([]uint64, len(b.Words))}
	copy(out.Words, b.Words)
	return out
}

// CoverWindow sets every grid cell that intersects the pixel rectangle
// [x, x+w) × [y, y+h) of an imgW×imgH image.
func (b *Bitmap) CoverWindow(x, y, w, h, imgW, imgH int) {
	if imgW <= 0 || imgH <= 0 {
		return
	}
	bx0 := x * b.K / imgW
	bx1 := ((x+w)*b.K + imgW - 1) / imgW // exclusive
	by0 := y * b.K / imgH
	by1 := ((y+h)*b.K + imgH - 1) / imgH
	if bx0 < 0 {
		bx0 = 0
	}
	if by0 < 0 {
		by0 = 0
	}
	if bx1 > b.K {
		bx1 = b.K
	}
	if by1 > b.K {
		by1 = b.K
	}
	for by := by0; by < by1; by++ {
		for bx := bx0; bx < bx1; bx++ {
			b.Set(bx, by)
		}
	}
}
