package crashfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestInjectorCountsAndKills(t *testing.T) {
	in := New()
	path := filepath.Join(t.TempDir(), "f")
	f, err := in.Open(path, os.O_RDWR|os.O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	in.Arm(3, -1)
	if _, err := f.WriteAt([]byte("one"), 0); err != nil { // op 1
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("three"), 10); err == nil { // op 3: kill
		t.Fatal("kill point did not trigger")
	} else if !errors.Is(err, ErrKilled) {
		t.Fatalf("wrong error: %v", err)
	}
	if !in.Killed() {
		t.Fatal("Killed() = false after kill")
	}
	// Everything afterwards fails, on every file.
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrKilled) {
		t.Fatalf("ReadAt after kill: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrKilled) {
		t.Fatalf("Sync after kill: %v", err)
	}
	if err := f.Truncate(0); !errors.Is(err, ErrKilled) {
		t.Fatalf("Truncate after kill: %v", err)
	}
	if _, err := in.Open(path, os.O_RDWR); !errors.Is(err, ErrKilled) {
		t.Fatalf("Open after kill: %v", err)
	}
	// The killed write persisted nothing.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 3 {
		t.Fatalf("file holds %d bytes, want 3 (killed write leaked)", len(data))
	}
}

func TestInjectorTornWrite(t *testing.T) {
	in := New()
	path := filepath.Join(t.TempDir(), "f")
	f, err := in.Open(path, os.O_RDWR|os.O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in.Arm(1, 4)
	if _, err := f.WriteAt([]byte("torn-write-payload"), 0); !errors.Is(err, ErrKilled) {
		t.Fatalf("expected kill, got %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "torn" {
		t.Fatalf("persisted %q, want the 4-byte prefix \"torn\"", data)
	}
}

func TestInjectorDisarmAndOps(t *testing.T) {
	in := New()
	path := filepath.Join(t.TempDir(), "f")
	f, err := in.Open(path, os.O_RDWR|os.O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 5; i++ {
		if _, err := f.WriteAt([]byte{byte(i)}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := in.Ops(); got != 5 {
		t.Fatalf("Ops = %d, want 5", got)
	}
	// Re-arming resets the counter; Arm(0) never kills.
	in.Arm(0, -1)
	if got := in.Ops(); got != 0 {
		t.Fatalf("Ops after Arm = %d, want 0", got)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if in.Killed() {
		t.Fatal("Killed with killAt=0")
	}
}
