// Package crashfs provides a fault-injecting store.File used to test
// crash recovery deterministically. An Injector is shared by every file
// of one database directory and counts mutating operations (WriteAt,
// Sync, Truncate); at a configured operation it "kills the process":
// the triggering operation fails — optionally persisting only a prefix
// of the write, a torn write — and every subsequent operation on every
// file fails too, so no further state reaches disk. The on-disk bytes at
// that instant are exactly what a real crash at that kill point would
// leave behind, which lets a test enumerate every kill point of a
// scripted workload and assert that recovery reproduces a serial oracle.
package crashfs

import (
	"errors"
	"os"
	"sync"

	"walrus/internal/store"
)

// ErrKilled is returned by every file operation after the injector's
// kill point has triggered.
var ErrKilled = errors.New("crashfs: simulated crash")

// Injector coordinates fault injection across the files of a database.
// The zero configuration (after New) injects nothing but still counts
// operations, which is how tests size a crash matrix.
type Injector struct {
	mu     sync.Mutex
	ops    int64
	killAt int64 // kill when ops reaches this value; 0 = never
	tear   int   // on a write-triggered kill, persist this many bytes (-1 = none)
	killed bool
}

// New returns an injector with no faults armed.
func New() *Injector { return &Injector{tear: -1} }

// Arm schedules a kill at the killAt-th mutating operation from now
// (1-based). If the triggering operation is a write, tearBytes of it are
// persisted first (-1 persists nothing; a value in [0, len) models a torn
// write). Counting restarts from zero.
func (in *Injector) Arm(killAt int64, tearBytes int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops = 0
	in.killAt = killAt
	in.tear = tearBytes
	in.killed = false
}

// Ops returns the number of mutating operations observed since Arm (or
// creation).
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Killed reports whether the kill point has triggered.
func (in *Injector) Killed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.killed
}

// step accounts one mutating operation. It returns (tearBytes, error):
// error is ErrKilled when the operation must fail, and tearBytes >= 0
// tells a write how many bytes to persist before failing.
func (in *Injector) step() (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.killed {
		return -1, ErrKilled
	}
	in.ops++
	if in.killAt > 0 && in.ops >= in.killAt {
		in.killed = true
		return in.tear, ErrKilled
	}
	return -1, nil
}

func (in *Injector) checkRead() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.killed {
		return ErrKilled
	}
	return nil
}

// Open opens path through the injector. flag is os.OpenFile flags.
func (in *Injector) Open(path string, flag int) (store.File, error) {
	if err := in.checkRead(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, err
	}
	return &File{f: f, in: in}, nil
}

// File wraps an *os.File with fault injection. It implements store.File.
type File struct {
	f  *os.File
	in *Injector
}

// ReadAt passes through unless the process is already "dead".
func (c *File) ReadAt(p []byte, off int64) (int, error) {
	if err := c.in.checkRead(); err != nil {
		return 0, err
	}
	return c.f.ReadAt(p, off)
}

// WriteAt counts one operation; at the kill point it persists only the
// configured prefix (a torn write) and fails.
func (c *File) WriteAt(p []byte, off int64) (int, error) {
	tear, err := c.in.step()
	if err != nil {
		if tear > 0 {
			if tear > len(p) {
				tear = len(p)
			}
			// The injected kill already decided this write fails; the torn
			// prefix is deliberately unaccounted, like a real power cut.
			//walrus:lint-ignore errsink simulating a torn write: the injected failure supersedes the prefix write's error
			c.f.WriteAt(p[:tear], off)
		}
		return 0, err
	}
	return c.f.WriteAt(p, off)
}

// Sync counts one operation; at the kill point it fails without syncing.
func (c *File) Sync() error {
	if _, err := c.in.step(); err != nil {
		return err
	}
	return c.f.Sync()
}

// Truncate counts one operation; at the kill point it fails without
// truncating.
func (c *File) Truncate(size int64) error {
	if _, err := c.in.step(); err != nil {
		return err
	}
	return c.f.Truncate(size)
}

// Close closes the underlying file; it is not a counted operation and
// works even after the kill point (the test harness needs to release
// descriptors).
func (c *File) Close() error { return c.f.Close() }
