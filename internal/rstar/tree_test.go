package rstar

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"walrus/internal/store"
)

// randomRect generates a small random rectangle in [0,1)^dim.
func randomRect(rng *rand.Rand, dim int) Rect {
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for i := range lo {
		lo[i] = rng.Float64() * 0.9
		hi[i] = lo[i] + rng.Float64()*0.1
	}
	r, _ := NewRect(lo, hi)
	return r
}

// bruteSearch returns the payloads of all rects intersecting q.
func bruteSearch(rects []Rect, q Rect) []int64 {
	var out []int64
	for i, r := range rects {
		if r.Intersects(q) {
			out = append(out, int64(i))
		}
	}
	return out
}

func sortedPayloads(entries []Entry) []int64 {
	out := make([]int64, len(entries))
	for i, e := range entries {
		out[i] = e.Data
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func int64SlicesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func newMemTree(t *testing.T, dim, maxEntries int) *Tree {
	t.Helper()
	s, err := NewMemStore(dim, maxEntries)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestInsertSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, dim := range []int{1, 2, 3, 6} {
		tr := newMemTree(t, dim, 8)
		var rects []Rect
		for i := 0; i < 400; i++ {
			r := randomRect(rng, dim)
			rects = append(rects, r)
			if err := tr.Insert(r, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("dim %d: %v", dim, err)
		}
		if tr.Len() != 400 {
			t.Fatalf("Len = %d", tr.Len())
		}
		for q := 0; q < 50; q++ {
			query := randomRect(rng, dim)
			query = query.Expand(0.05)
			got, err := tr.SearchAll(query)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteSearch(rects, query)
			if !int64SlicesEqual(sortedPayloads(got), want) {
				t.Fatalf("dim %d query %d: got %v want %v", dim, q, sortedPayloads(got), want)
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := newMemTree(t, 2, 8)
	for i := 0; i < 50; i++ {
		if err := tr.Insert(Point([]float64{0.5, 0.5}), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	err := tr.Search(Point([]float64{0.5, 0.5}).Expand(0.1), func(Entry) bool {
		count++
		return count < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early stop visited %d entries", count)
	}
}

func TestInsertDimMismatch(t *testing.T) {
	tr := newMemTree(t, 3, 8)
	if err := tr.Insert(Point([]float64{1, 2}), 0); err == nil {
		t.Error("Insert accepted wrong dimension")
	}
	if err := tr.Search(Point([]float64{1}), func(Entry) bool { return true }); err == nil {
		t.Error("Search accepted wrong dimension")
	}
	if _, err := tr.Delete(Point([]float64{1}), 0); err == nil {
		t.Error("Delete accepted wrong dimension")
	}
	if _, err := tr.NN([]float64{1}, 3); err == nil {
		t.Error("NN accepted wrong dimension")
	}
}

func TestDeleteAndCondense(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	tr := newMemTree(t, 2, 6)
	var rects []Rect
	const n = 300
	for i := 0; i < n; i++ {
		r := randomRect(rng, 2)
		rects = append(rects, r)
		if err := tr.Insert(r, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a random two thirds, verifying search correctness along the way.
	alive := make(map[int64]bool)
	for i := 0; i < n; i++ {
		alive[int64(i)] = true
	}
	perm := rng.Perm(n)
	for k, idx := range perm[:2*n/3] {
		ok, err := tr.Delete(rects[idx], int64(idx))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("Delete(%d) reported not found", idx)
		}
		delete(alive, int64(idx))
		if k%37 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", k+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(alive) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(alive))
	}
	// Everything alive is findable; everything deleted is gone.
	all, err := tr.SearchAll(Point([]float64{0.5, 0.5}).Expand(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(alive) {
		t.Fatalf("full scan found %d, want %d", len(all), len(alive))
	}
	for _, e := range all {
		if !alive[e.Data] {
			t.Fatalf("deleted entry %d still present", e.Data)
		}
	}
	// Deleting a missing entry reports false.
	ok, err := tr.Delete(rects[perm[0]], int64(perm[0]))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Delete of missing entry reported true")
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	tr := newMemTree(t, 2, 4)
	for i := 0; i < 30; i++ {
		if err := tr.Insert(Point([]float64{float64(i), float64(i)}), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		ok, err := tr.Delete(Point([]float64{float64(i), float64(i)}), int64(i))
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", i, ok, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("Height = %d after deleting all, want 1", tr.Height())
	}
	// The tree is usable again.
	if err := tr.Insert(Point([]float64{1, 1}), 99); err != nil {
		t.Fatal(err)
	}
	got, err := tr.SearchAll(Point([]float64{1, 1}))
	if err != nil || len(got) != 1 || got[0].Data != 99 {
		t.Fatalf("reuse after empty: %v, %v", got, err)
	}
}

func TestNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	tr := newMemTree(t, 3, 8)
	var points [][]float64
	for i := 0; i < 200; i++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		points = append(points, p)
		if err := tr.Insert(Point(p), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		const k = 7
		got, err := tr.NN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("NN returned %d results", len(got))
		}
		dists := make([]float64, len(points))
		for i, p := range points {
			d := 0.0
			for j := range p {
				d += (p[j] - q[j]) * (p[j] - q[j])
			}
			dists[i] = math.Sqrt(d)
		}
		sort.Float64s(dists)
		for i, nn := range got {
			if math.Abs(nn.Dist-dists[i]) > 1e-9 {
				t.Fatalf("trial %d rank %d: NN dist %v, brute %v", trial, i, nn.Dist, dists[i])
			}
		}
		// Results are sorted ascending.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatal("NN results not sorted")
			}
		}
	}
	// k <= 0 returns nothing.
	if res, err := tr.NN([]float64{0, 0, 0}, 0); err != nil || res != nil {
		t.Fatalf("NN(k=0) = %v, %v", res, err)
	}
}

// TestInsertSearchQuick drives random workloads through testing/quick.
func TestInsertSearchQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(4)
		s, err := NewMemStore(dim, 4+rng.Intn(12))
		if err != nil {
			return false
		}
		tr, err := New(s)
		if err != nil {
			return false
		}
		n := 20 + rng.Intn(150)
		rects := make([]Rect, n)
		for i := range rects {
			rects[i] = randomRect(rng, dim)
			if err := tr.Insert(rects[i], int64(i)); err != nil {
				return false
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		for q := 0; q < 10; q++ {
			query := randomRect(rng, dim).Expand(rng.Float64() * 0.1)
			got, err := tr.SearchAll(query)
			if err != nil {
				return false
			}
			if !int64SlicesEqual(sortedPayloads(got), bruteSearch(rects, query)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateRectsAllowed(t *testing.T) {
	tr := newMemTree(t, 2, 4)
	p := Point([]float64{0.3, 0.7})
	for i := 0; i < 40; i++ {
		if err := tr.Insert(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.SearchAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("found %d duplicates, want 40", len(got))
	}
	// Delete them one by one; each delete removes exactly one.
	for i := 0; i < 40; i++ {
		ok, err := tr.Delete(p, int64(i))
		if err != nil || !ok {
			t.Fatalf("Delete dup %d: %v %v", i, ok, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestPagedStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.db")
	pg, err := store.Create(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := store.NewBufferPool(pg, 16)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPagedStore(pg, pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(ps)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(74))
	var rects []Rect
	const n = 500
	for i := 0; i < n; i++ {
		r := randomRect(rng, 4)
		rects = append(rects, r)
		if err := tr.Insert(r, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := ps.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk and verify queries match brute force.
	pg2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	pool2, err := store.NewBufferPool(pg2, 8)
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := NewPagedStore(pg2, pool2, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Load(ps2)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != n {
		t.Fatalf("reloaded Len = %d, want %d", tr2.Len(), n)
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 30; q++ {
		query := randomRect(rng, 4).Expand(0.05)
		got, err := tr2.SearchAll(query)
		if err != nil {
			t.Fatal(err)
		}
		if !int64SlicesEqual(sortedPayloads(got), bruteSearch(rects, query)) {
			t.Fatalf("query %d mismatch after reload", q)
		}
	}
}

func TestPagedStoreDimensionGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dim.db")
	pg, err := store.Create(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	pool, _ := store.NewBufferPool(pg, 4)
	if _, err := NewPagedStore(pg, pool, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPagedStore(pg, pool, 5); err == nil {
		t.Error("PagedStore accepted changed dimension")
	}
	// A page must hold at least 4 entries: dim 60 entries are 968 bytes.
	if _, err := NewPagedStore(pg, pool, 60); err == nil {
		t.Error("PagedStore accepted oversize dimension")
	}
}

func TestLoadWithoutTree(t *testing.T) {
	s, err := NewMemStore(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(s); err == nil {
		t.Error("Load succeeded on empty store")
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr := newMemTree(t, 2, 8)
	got, err := tr.SearchAll(Point([]float64{0, 0}).Expand(1))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty search: %v, %v", got, err)
	}
	nn, err := tr.NN([]float64{0, 0}, 3)
	if err != nil || len(nn) != 0 {
		t.Fatalf("empty NN: %v, %v", nn, err)
	}
	ok, err := tr.Delete(Point([]float64{0, 0}), 1)
	if err != nil || ok {
		t.Fatalf("empty delete: %v, %v", ok, err)
	}
}
