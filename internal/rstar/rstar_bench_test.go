package rstar

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchRects(n, dim int) []Rect {
	rng := rand.New(rand.NewSource(2))
	out := make([]Rect, n)
	for i := range out {
		out[i] = randomRect(rng, dim)
	}
	return out
}

func BenchmarkInsert(b *testing.B) {
	for _, dim := range []int{2, 12} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			rects := benchRects(2000, dim)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, _ := NewMemStore(dim, 16)
				tr, _ := New(s)
				for j, r := range rects {
					if err := tr.Insert(r, int64(j)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	for _, dim := range []int{2, 12} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			rects := benchRects(2000, dim)
			data := make([]int64, len(rects))
			for i := range data {
				data[i] = int64(i)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, _ := NewMemStore(dim, 16)
				if _, err := BulkLoad(s, rects, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSearch(b *testing.B) {
	const dim = 12
	rects := benchRects(5000, dim)
	s, _ := NewMemStore(dim, 16)
	data := make([]int64, len(rects))
	for i := range data {
		data[i] = int64(i)
	}
	tr, err := BulkLoad(s, rects, data)
	if err != nil {
		b.Fatal(err)
	}
	queries := benchRects(64, dim)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)].Expand(0.085)
		if _, err := tr.SearchAll(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNN(b *testing.B) {
	const dim = 12
	rects := benchRects(5000, dim)
	s, _ := NewMemStore(dim, 16)
	data := make([]int64, len(rects))
	for i := range data {
		data[i] = int64(i)
	}
	tr, err := BulkLoad(s, rects, data)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	p := make([]float64, dim)
	for i := range p {
		p[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.NN(p, 10); err != nil {
			b.Fatal(err)
		}
	}
}
