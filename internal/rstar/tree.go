package rstar

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"walrus/internal/obs"
)

// Tree is an R*-tree over a NodeStore. It is not safe for concurrent
// mutation; concurrent Search calls are safe only against an immutable
// tree backed by a concurrency-safe store. For reads that must run
// concurrently with mutation, back the tree with a VersionedStore and
// search through epoch-pinned SnapshotView views instead.
type Tree struct {
	store  NodeStore
	dim    int
	maxE   int // M
	minE   int // m = 40% of M
	reinsP int // entries removed by forced reinsertion (30% of M)

	root   NodeID
	height int // 1 = root is a leaf
	size   int

	om atomic.Pointer[treeMetrics] // nil = observability off
}

// New creates a fresh, empty tree in the store, overwriting any metadata
// already there.
func New(s NodeStore) (*Tree, error) {
	t := newTree(s)
	rootNode, err := s.New(true)
	if err != nil {
		return nil, err
	}
	t.root = rootNode.ID
	t.height = 1
	if err := s.Put(rootNode); err != nil {
		return nil, err
	}
	if err := t.saveMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Load reopens a tree whose metadata is stored in s.
func Load(s NodeStore) (*Tree, error) {
	m, err := s.Meta()
	if err != nil {
		return nil, err
	}
	if !m.Valid {
		return nil, fmt.Errorf("rstar: store holds no tree")
	}
	t := newTree(s)
	t.root = m.Root
	t.height = m.Height
	t.size = m.Size
	return t, nil
}

func newTree(s NodeStore) *Tree {
	maxE := s.MaxEntries()
	minE := maxE * 2 / 5 // 40%
	if minE < 2 {
		minE = 2
	}
	reinsP := maxE * 3 / 10 // 30%
	if reinsP < 1 {
		reinsP = 1
	}
	return &Tree{store: s, dim: s.Dim(), maxE: maxE, minE: minE, reinsP: reinsP}
}

// Len returns the number of data entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

func (t *Tree) saveMeta() error {
	return t.store.SetMeta(Meta{Root: t.root, Height: t.height, Size: t.size, Valid: true})
}

// Insert adds a data entry with the given rectangle (use Point for point
// data) and payload.
func (t *Tree) Insert(r Rect, data int64) error {
	if r.Dim() != t.dim {
		return fmt.Errorf("rstar: rect has dim %d, tree has %d", r.Dim(), t.dim)
	}
	reinserted := make(map[int]bool)
	if err := t.insertEntry(Entry{Rect: r.Clone(), Data: data}, 0, reinserted); err != nil {
		return err
	}
	t.size++
	if m := t.om.Load(); m != nil {
		m.inserts.Inc()
	}
	return t.saveMeta()
}

// insertEntry places e at targetLevel (0 = leaf level), handling overflow
// by forced reinsertion once per level per top-level insert, then by
// splitting.
func (t *Tree) insertEntry(e Entry, targetLevel int, reinserted map[int]bool) error {
	// Descend, enlarging entry rectangles on the way so coverage always
	// holds, and remembering the path for overflow handling.
	type step struct {
		id  NodeID
		idx int
	}
	var path []step
	id := t.root
	for level := t.height - 1; level > targetLevel; level-- {
		n, err := t.store.Get(id)
		if err != nil {
			return err
		}
		i := t.chooseSubtree(n, e.Rect, level)
		n.Entries[i].Rect = n.Entries[i].Rect.Union(e.Rect)
		if err := t.store.Put(n); err != nil {
			return err
		}
		path = append(path, step{id, i})
		id = n.Entries[i].Child
	}
	n, err := t.store.Get(id)
	if err != nil {
		return err
	}
	n.Entries = append(n.Entries, e)
	if err := t.store.Put(n); err != nil {
		return err
	}

	// Overflow treatment, walking back up the path as splits propagate.
	level := targetLevel
	for {
		n, err := t.store.Get(id)
		if err != nil {
			return err
		}
		if len(n.Entries) <= t.maxE {
			return nil
		}
		rootLevel := t.height - 1
		if level < rootLevel && !reinserted[level] {
			reinserted[level] = true
			removed, err := t.forceReinsertPick(n)
			if err != nil {
				return err
			}
			for _, re := range removed {
				if err := t.insertEntry(re, level, reinserted); err != nil {
					return err
				}
			}
			return nil
		}
		right, err := t.splitNode(n)
		if err != nil {
			return err
		}
		if id == t.root {
			newRoot, err := t.store.New(false)
			if err != nil {
				return err
			}
			newRoot.Entries = []Entry{
				{Rect: n.mbr(), Child: n.ID},
				{Rect: right.mbr(), Child: right.ID},
			}
			if err := t.store.Put(newRoot); err != nil {
				return err
			}
			t.root = newRoot.ID
			t.height++
			return t.saveMeta()
		}
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		pn, err := t.store.Get(parent.id)
		if err != nil {
			return err
		}
		pn.Entries[parent.idx].Rect = n.mbr()
		pn.Entries = append(pn.Entries, Entry{Rect: right.mbr(), Child: right.ID})
		if err := t.store.Put(pn); err != nil {
			return err
		}
		id = parent.id
		level++
	}
}

// chooseSubtree picks the child of n (at the given level) to descend into
// for rectangle r: for nodes whose children are leaves, minimal overlap
// enlargement; otherwise minimal area enlargement, with area as the tie
// breaker (the R* heuristic).
func (t *Tree) chooseSubtree(n *Node, r Rect, level int) int {
	best := 0
	if level == 1 {
		// Children are leaves: minimize overlap enlargement.
		bestOverlap := math.Inf(1)
		bestEnl := math.Inf(1)
		bestArea := math.Inf(1)
		for i, e := range n.Entries {
			union := e.Rect.Union(r)
			var before, after float64
			for j, o := range n.Entries {
				if j == i {
					continue
				}
				before += e.Rect.OverlapArea(o.Rect)
				after += union.OverlapArea(o.Rect)
			}
			dOverlap := after - before
			enl := e.Rect.Enlargement(r)
			area := e.Rect.Area()
			if dOverlap < bestOverlap ||
				(dOverlap == bestOverlap && enl < bestEnl) ||
				(dOverlap == bestOverlap && enl == bestEnl && area < bestArea) {
				bestOverlap, bestEnl, bestArea, best = dOverlap, enl, area, i
			}
		}
		return best
	}
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, e := range n.Entries {
		enl := e.Rect.Enlargement(r)
		area := e.Rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			bestEnl, bestArea, best = enl, area, i
		}
	}
	return best
}

// forceReinsertPick removes the reinsP entries of n whose centers are
// farthest from the node MBR's center, puts n back, and returns the
// removed entries ordered closest-first (the R* "close reinsert").
func (t *Tree) forceReinsertPick(n *Node) ([]Entry, error) {
	center := n.mbr()
	type distEntry struct {
		d float64
		e Entry
	}
	des := make([]distEntry, len(n.Entries))
	for i, e := range n.Entries {
		des[i] = distEntry{centerDist2(e.Rect, center), e}
	}
	sort.Slice(des, func(i, j int) bool { return des[i].d < des[j].d })
	keep := len(des) - t.reinsP
	n.Entries = n.Entries[:0]
	for i := 0; i < keep; i++ {
		n.Entries = append(n.Entries, des[i].e)
	}
	if err := t.store.Put(n); err != nil {
		return nil, err
	}
	removed := make([]Entry, 0, t.reinsP)
	for i := keep; i < len(des); i++ {
		removed = append(removed, des[i].e)
	}
	return removed, nil
}

// splitNode splits an overflowing node with the R* topological split:
// choose the axis minimizing total margin over all distributions, then the
// distribution on that axis with minimal overlap (ties: minimal total
// area). n keeps the first group; the returned new node holds the second.
func (t *Tree) splitNode(n *Node) (*Node, error) {
	if om := t.om.Load(); om != nil {
		om.splits.Inc()
	}
	entries := n.Entries
	m := t.minE
	total := len(entries)

	type distribution struct {
		sorted []Entry
		k      int // first group size
	}
	var bestAxisMargin = math.Inf(1)
	var axisDists []distribution
	for axis := 0; axis < t.dim; axis++ {
		byMin := append([]Entry(nil), entries...)
		a := axis
		sort.Slice(byMin, func(i, j int) bool {
			if byMin[i].Rect.Min[a] != byMin[j].Rect.Min[a] {
				return byMin[i].Rect.Min[a] < byMin[j].Rect.Min[a]
			}
			return byMin[i].Rect.Max[a] < byMin[j].Rect.Max[a]
		})
		byMax := append([]Entry(nil), entries...)
		sort.Slice(byMax, func(i, j int) bool { return byMax[i].Rect.Max[a] < byMax[j].Rect.Max[a] })

		marginSum := 0.0
		var dists []distribution
		for _, sorted := range [][]Entry{byMin, byMax} {
			for k := m; k <= total-m; k++ {
				r1 := mbrOf(sorted[:k])
				r2 := mbrOf(sorted[k:])
				marginSum += r1.Margin() + r2.Margin()
				dists = append(dists, distribution{sorted, k})
			}
		}
		if marginSum < bestAxisMargin {
			bestAxisMargin = marginSum
			axisDists = dists
		}
	}

	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	var chosen distribution
	for _, d := range axisDists {
		r1 := mbrOf(d.sorted[:d.k])
		r2 := mbrOf(d.sorted[d.k:])
		ov := r1.OverlapArea(r2)
		area := r1.Area() + r2.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestOverlap, bestArea, chosen = ov, area, d
		}
	}

	right, err := t.store.New(n.Leaf)
	if err != nil {
		return nil, err
	}
	n.Entries = append([]Entry(nil), chosen.sorted[:chosen.k]...)
	right.Entries = append([]Entry(nil), chosen.sorted[chosen.k:]...)
	if err := t.store.Put(n); err != nil {
		return nil, err
	}
	if err := t.store.Put(right); err != nil {
		return nil, err
	}
	return right, nil
}

func mbrOf(entries []Entry) Rect {
	r := entries[0].Rect.Clone()
	for _, e := range entries[1:] {
		r = r.Union(e.Rect)
	}
	return r
}

// Search invokes fn for every data entry whose rectangle intersects q,
// stopping early if fn returns false.
func (t *Tree) Search(q Rect, fn func(Entry) bool) error {
	if q.Dim() != t.dim {
		return fmt.Errorf("rstar: query has dim %d, tree has %d", q.Dim(), t.dim)
	}
	m := t.om.Load()
	if m == nil {
		_, err := searchFrom(t.store.Get, t.root, q, fn, nil)
		return err
	}
	start := obs.Clock()
	visits := 0
	_, err := searchFrom(t.store.Get, t.root, q, fn, &visits)
	m.searches.Inc()
	m.nodeVisits.Add(uint64(visits))
	m.reg.RecordSpan("rstar.search", 0, start, obs.Since(start),
		obs.Attr{Key: "node_visits", Value: int64(visits)})
	return err
}

// searchFrom is the range-search recursion over an arbitrary node fetcher,
// shared by the live tree (store.Get) and epoch-pinned views (getAt).
func searchFrom(get func(NodeID) (*Node, error), id NodeID, q Rect, fn func(Entry) bool, visits *int) (bool, error) {
	if visits != nil {
		*visits++
	}
	n, err := get(id)
	if err != nil {
		return false, err
	}
	for _, e := range n.Entries {
		if !e.Rect.Intersects(q) {
			continue
		}
		if n.Leaf {
			if !fn(e) {
				return false, nil
			}
			continue
		}
		cont, err := searchFrom(get, e.Child, q, fn, visits)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// SearchAll collects every data entry intersecting q.
func (t *Tree) SearchAll(q Rect) ([]Entry, error) {
	var out []Entry
	err := t.Search(q, func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out, err
}

// SearchAllCounting is SearchAll plus the number of nodes the search
// visited, counted unconditionally — the query-EXPLAIN path needs the
// visit count per probe even when no metrics registry is attached.
func (t *Tree) SearchAllCounting(q Rect) ([]Entry, int, error) {
	if q.Dim() != t.dim {
		return nil, 0, fmt.Errorf("rstar: query has dim %d, tree has %d", q.Dim(), t.dim)
	}
	var out []Entry
	visits := 0
	_, err := searchFrom(t.store.Get, t.root, q, func(e Entry) bool {
		out = append(out, e)
		return true
	}, &visits)
	return out, visits, err
}

// Delete removes one data entry whose rectangle equals r and whose payload
// equals data, reporting whether an entry was removed. Underflowing nodes
// are dissolved and their entries reinserted (condense-tree).
func (t *Tree) Delete(r Rect, data int64) (bool, error) {
	if r.Dim() != t.dim {
		return false, fmt.Errorf("rstar: rect has dim %d, tree has %d", r.Dim(), t.dim)
	}
	type step struct {
		id  NodeID
		idx int
	}
	type orphan struct {
		e     Entry
		level int
	}
	var orphans []orphan

	// condense dissolves underflowing non-root nodes bottom-up after the
	// entry has been removed from leaf n, tightening surviving ancestors.
	condense := func(n *Node, level int, path []step) error {
		for len(path) > 0 {
			parentStep := path[len(path)-1]
			path = path[:len(path)-1]
			pn, err := t.store.Get(parentStep.id)
			if err != nil {
				return err
			}
			if len(n.Entries) < t.minE {
				// Dissolve n: remove from parent, orphan its entries.
				for _, e := range n.Entries {
					orphans = append(orphans, orphan{e, level})
				}
				pn.Entries = append(pn.Entries[:parentStep.idx], pn.Entries[parentStep.idx+1:]...)
				if err := t.store.Free(n.ID); err != nil {
					return err
				}
			} else {
				pn.Entries[parentStep.idx].Rect = n.mbr()
			}
			if err := t.store.Put(pn); err != nil {
				return err
			}
			n = pn
			level++
		}
		return nil
	}

	var walk func(id NodeID, level int, path []step) (bool, error)
	walk = func(id NodeID, level int, path []step) (bool, error) {
		n, err := t.store.Get(id)
		if err != nil {
			return false, err
		}
		if n.Leaf {
			for i, e := range n.Entries {
				if e.Data == data && e.Rect.Equal(r) {
					n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
					if err := t.store.Put(n); err != nil {
						return false, err
					}
					return true, condense(n, level, path)
				}
			}
			return false, nil
		}
		for i, e := range n.Entries {
			if !e.Rect.Contains(r) {
				continue
			}
			ok, err := walk(e.Child, level-1, append(path, step{id, i}))
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}

	ok, err := walk(t.root, t.height-1, nil)
	if err != nil || !ok {
		return ok, err
	}
	t.size--

	// Reinsert orphans at their recorded levels.
	reinserted := make(map[int]bool)
	for _, o := range orphans {
		// Subtree orphans whose level now exceeds the root level are
		// flattened by reinserting their leaf descendants instead.
		if o.level > t.height-1 {
			if err := t.reinsertSubtree(o.e, &reinserted); err != nil {
				return true, err
			}
			continue
		}
		if err := t.insertEntry(o.e, o.level, reinserted); err != nil {
			return true, err
		}
	}

	// Shrink the root while it is an internal node with a single child.
	for t.height > 1 {
		rn, err := t.store.Get(t.root)
		if err != nil {
			return true, err
		}
		if rn.Leaf || len(rn.Entries) != 1 {
			break
		}
		child := rn.Entries[0].Child
		if err := t.store.Free(rn.ID); err != nil {
			return true, err
		}
		t.root = child
		t.height--
	}
	return true, t.saveMeta()
}

// reinsertSubtree dissolves a subtree entry into its data entries and
// reinserts them all at the leaf level.
func (t *Tree) reinsertSubtree(e Entry, reinserted *map[int]bool) error {
	var collect func(id NodeID) error
	collect = func(id NodeID) error {
		n, err := t.store.Get(id)
		if err != nil {
			return err
		}
		for _, ce := range n.Entries {
			if n.Leaf {
				if err := t.insertEntry(ce, 0, *reinserted); err != nil {
					return err
				}
				continue
			}
			if err := collect(ce.Child); err != nil {
				return err
			}
		}
		return t.store.Free(id)
	}
	return collect(e.Child)
}

// NNEntry pairs a data entry with its distance for NN results.
type NNEntry struct {
	Entry Entry
	Dist  float64
}

// NN returns the k data entries nearest to point p by MinDist (best-first
// search with a node priority queue).
func (t *Tree) NN(p []float64, k int) ([]NNEntry, error) {
	if len(p) != t.dim {
		return nil, fmt.Errorf("rstar: point has dim %d, tree has %d", len(p), t.dim)
	}
	if k <= 0 {
		return nil, nil
	}
	type item struct {
		dist  float64
		node  NodeID // InvalidNode for data entries
		entry Entry
	}
	// A simple slice-based priority queue keyed by dist; sizes here are
	// modest so O(n) pops are acceptable.
	var pq []item
	push := func(it item) { pq = append(pq, it) }
	pop := func() item {
		best := 0
		for i := 1; i < len(pq); i++ {
			if pq[i].dist < pq[best].dist {
				best = i
			}
		}
		it := pq[best]
		pq[best] = pq[len(pq)-1]
		pq = pq[:len(pq)-1]
		return it
	}
	push(item{0, t.root, Entry{}})
	var out []NNEntry
	for len(pq) > 0 && len(out) < k {
		it := pop()
		if it.node == InvalidNode {
			out = append(out, NNEntry{Entry: it.entry, Dist: math.Sqrt(it.dist)})
			continue
		}
		n, err := t.store.Get(it.node)
		if err != nil {
			return nil, err
		}
		for _, e := range n.Entries {
			d := e.Rect.MinDist2(p)
			if n.Leaf {
				push(item{d, InvalidNode, e})
			} else {
				push(item{d, e.Child, Entry{}})
			}
		}
	}
	return out, nil
}

// CheckInvariants verifies structural invariants; tests call it after
// mutation sequences. It checks (1) entry rectangles of internal nodes
// contain their subtrees, (2) all leaves are at the same depth, (3)
// non-root nodes respect the minimum fill after deletions, and (4) the
// data entry count matches Len().
func (t *Tree) CheckInvariants() error {
	count := 0
	var walk func(id NodeID, level int) (Rect, error)
	walk = func(id NodeID, level int) (Rect, error) {
		n, err := t.store.Get(id)
		if err != nil {
			return Rect{}, err
		}
		if len(n.Entries) > t.maxE {
			return Rect{}, fmt.Errorf("rstar: node %d has %d entries, max %d", id, len(n.Entries), t.maxE)
		}
		if id != t.root && len(n.Entries) < t.minE {
			return Rect{}, fmt.Errorf("rstar: node %d has %d entries, min %d", id, len(n.Entries), t.minE)
		}
		if n.Leaf {
			if level != 0 {
				return Rect{}, fmt.Errorf("rstar: leaf %d at level %d", id, level)
			}
			count += len(n.Entries)
			if len(n.Entries) == 0 {
				return Rect{}, nil
			}
			return n.mbr(), nil
		}
		if level == 0 {
			return Rect{}, fmt.Errorf("rstar: internal node %d at leaf level", id)
		}
		for _, e := range n.Entries {
			childMBR, err := walk(e.Child, level-1)
			if err != nil {
				return Rect{}, err
			}
			if len(childMBR.Min) > 0 && !e.Rect.Contains(childMBR) {
				return Rect{}, fmt.Errorf("rstar: node %d entry rect does not contain child %d", id, e.Child)
			}
		}
		return n.mbr(), nil
	}
	if _, err := walk(t.root, t.height-1); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rstar: tree holds %d entries, Len() says %d", count, t.size)
	}
	return nil
}
