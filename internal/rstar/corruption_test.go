package rstar

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"walrus/internal/store"
)

// TestPagedStoreDetectsCorruption flips bytes in node pages on disk and
// verifies the checksum catches it.
func TestPagedStoreDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corrupt.db")
	pg, err := store.Create(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	pool, _ := store.NewBufferPool(pg, 16)
	ps, err := NewPagedStore(pg, pool, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(ps)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 200; i++ {
		if err := tr.Insert(randomRect(rng, 3), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ps.Flush(); err != nil {
		t.Fatal(err)
	}
	pg.Close()

	// Flip one byte in the middle of every node page (skip the meta page).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 1024 + 100; off < len(raw); off += 1024 {
		raw[off] ^= 0xFF
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	pg2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	pool2, _ := store.NewBufferPool(pg2, 16)
	ps2, err := NewPagedStore(pg2, pool2, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Load(ps2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr2.SearchAll(Point([]float64{0.5, 0.5, 0.5}).Expand(10))
	if err == nil {
		t.Fatal("search succeeded on corrupted pages")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("expected checksum error, got: %v", err)
	}
}

// TestPagedStoreSurvivesUncorruptedReload is the control: the same flow
// without corruption succeeds (guards against over-eager checksums).
func TestPagedStoreSurvivesUncorruptedReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "clean.db")
	pg, err := store.Create(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	pool, _ := store.NewBufferPool(pg, 4) // tiny pool: forces evictions and re-reads
	ps, err := NewPagedStore(pg, pool, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(ps)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(80))
	var rects []Rect
	for i := 0; i < 300; i++ {
		r := randomRect(rng, 3)
		rects = append(rects, r)
		if err := tr.Insert(r, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := ps.Flush(); err != nil {
		t.Fatal(err)
	}
	pg.Close()

	pg2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	pool2, _ := store.NewBufferPool(pg2, 4)
	ps2, err := NewPagedStore(pg2, pool2, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Load(ps2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr2.SearchAll(Point([]float64{0.5, 0.5, 0.5}).Expand(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("full scan found %d of 300", len(got))
	}
}
