package rstar

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"walrus/internal/store"
)

// newVersionedMemTree builds a tree on a versioned memory store.
func newVersionedMemTree(t *testing.T, dim int) *Tree {
	t.Helper()
	ms, err := NewMemStore(dim, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(NewVersioned(ms))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// newVersionedPagedTree builds a tree on a versioned paged store backed by
// a temp file.
func newVersionedPagedTree(t *testing.T, dim int) *Tree {
	t.Helper()
	pg, err := store.Create(filepath.Join(t.TempDir(), "tree.db"), 2048)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pg.Close() })
	pool, err := store.NewBufferPool(pg, 16)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPagedStore(pg, pool, dim)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(NewVersioned(ps))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func pointAt(vals ...float64) Rect { return Point(vals) }

// everything returns a rect covering the whole test coordinate range.
func everything(dim int) Rect {
	min := make([]float64, dim)
	max := make([]float64, dim)
	for i := range min {
		min[i], max[i] = -1e9, 1e9
	}
	r, _ := NewRect(min, max)
	return r
}

func testVersionedOldViewStable(t *testing.T, tr *Tree) {
	t.Helper()
	vs := tr.Versioned()
	if vs == nil {
		t.Fatal("tree store is not versioned")
	}
	const firstBatch = 60
	for i := 0; i < firstBatch; i++ {
		if err := tr.Insert(pointAt(float64(i), float64(i)), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if e := tr.PublishEpoch(); e != 1 {
		t.Fatalf("first publish epoch = %d, want 1", e)
	}

	old, err := tr.SnapshotView()
	if err != nil {
		t.Fatal(err)
	}
	if old.Epoch() != 1 || old.Len() != firstBatch {
		t.Fatalf("old view epoch=%d len=%d, want 1/%d", old.Epoch(), old.Len(), firstBatch)
	}

	// Mutate heavily: more inserts (splits rewrite nodes) and deletions
	// (condense frees nodes), across several published epochs.
	for i := firstBatch; i < firstBatch+80; i++ {
		if err := tr.Insert(pointAt(float64(i), float64(i)), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.PublishEpoch()
	for i := 0; i < 40; i++ {
		ok, err := tr.Delete(pointAt(float64(i), float64(i)), int64(i))
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	tr.PublishEpoch()

	// The pinned view still sees exactly the first batch.
	got, err := old.SearchAll(everything(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != firstBatch {
		t.Fatalf("old view sees %d entries, want %d", len(got), firstBatch)
	}
	seen := make(map[int64]bool)
	for _, e := range got {
		seen[e.Data] = true
	}
	for i := int64(0); i < firstBatch; i++ {
		if !seen[i] {
			t.Fatalf("old view lost entry %d", i)
		}
	}
	if vs.Retained() == 0 {
		t.Fatal("expected retained pre-images while the old epoch is pinned")
	}

	// A fresh view sees the newest state.
	cur, err := tr.SnapshotView()
	if err != nil {
		t.Fatal(err)
	}
	curAll, err := cur.SearchAll(everything(2))
	if err != nil {
		t.Fatal(err)
	}
	if want := firstBatch + 80 - 40; len(curAll) != want || cur.Len() != want {
		t.Fatalf("current view sees %d entries (Len %d), want %d", len(curAll), cur.Len(), want)
	}
	cur.Release()

	old.Release()
	old.Release() // idempotent
	if r := vs.Retained(); r != 0 {
		t.Fatalf("retained = %d after all views released, want 0", r)
	}
}

func TestVersionedOldViewStableMem(t *testing.T) {
	testVersionedOldViewStable(t, newVersionedMemTree(t, 2))
}

func TestVersionedOldViewStablePaged(t *testing.T) {
	testVersionedOldViewStable(t, newVersionedPagedTree(t, 2))
}

// TestVersionedConcurrentSearchPublish hammers epoch-pinned searches
// against a writer that keeps inserting, deleting and publishing. Each
// reader checks the strongest invariant available: a full-space search at
// a pinned epoch returns exactly the entry count recorded in that epoch's
// metadata (no torn reads, no lost or duplicated entries).
func TestVersionedConcurrentSearchPublish(t *testing.T) {
	for _, kind := range []string{"mem", "paged"} {
		t.Run(kind, func(t *testing.T) {
			var tr *Tree
			if kind == "mem" {
				tr = newVersionedMemTree(t, 2)
			} else {
				tr = newVersionedPagedTree(t, 2)
			}
			vs := tr.Versioned()
			type liveEntry struct {
				r    Rect
				data int64
			}
			var live []liveEntry
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 50; i++ {
				r := pointAt(rng.Float64(), rng.Float64())
				if err := tr.Insert(r, int64(i)); err != nil {
					t.Fatal(err)
				}
				live = append(live, liveEntry{r, int64(i)})
			}
			tr.PublishEpoch()

			var mu sync.Mutex // serializes the writer's tree ops
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(8))
				next := int64(50)
				for round := 0; ; round++ {
					select {
					case <-stop:
						return
					default:
					}
					mu.Lock()
					if wrng.Intn(3) == 0 && len(live) > 10 {
						i := wrng.Intn(len(live))
						ok, err := tr.Delete(live[i].r, live[i].data)
						if err != nil || !ok {
							mu.Unlock()
							t.Errorf("delete: ok=%v err=%v", ok, err)
							return
						}
						live = append(live[:i], live[i+1:]...)
					} else {
						r := pointAt(wrng.Float64(), wrng.Float64())
						if err := tr.Insert(r, next); err != nil {
							mu.Unlock()
							t.Errorf("insert: %v", err)
							return
						}
						live = append(live, liveEntry{r, next})
						next++
					}
					if round%3 == 0 {
						tr.PublishEpoch()
					}
					mu.Unlock()
				}
			}()

			var readers sync.WaitGroup
			for r := 0; r < 4; r++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for i := 0; i < 200; i++ {
						view, err := tr.SnapshotView()
						if err != nil {
							t.Errorf("SnapshotView: %v", err)
							return
						}
						got, err := view.SearchAll(everything(2))
						if err != nil {
							view.Release()
							t.Errorf("SearchAll: %v", err)
							return
						}
						if len(got) != view.Len() {
							view.Release()
							t.Errorf("epoch %d: search found %d entries, meta says %d", view.Epoch(), len(got), view.Len())
							return
						}
						view.Release()
					}
				}()
			}
			readers.Wait()
			close(stop)
			wg.Wait()

			mu.Lock()
			tr.PublishEpoch()
			mu.Unlock()
			if r := vs.Retained(); r != 0 {
				t.Fatalf("retained = %d after final publish with no pins, want 0", r)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVersionedPageReuse frees nodes and forces page reuse on the paged
// store while an old epoch stays pinned: the pinned view must not observe
// the recycled page's new content.
func TestVersionedPageReuse(t *testing.T) {
	tr := newVersionedPagedTree(t, 2)
	for i := 0; i < 120; i++ {
		if err := tr.Insert(pointAt(float64(i), 0), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.PublishEpoch()
	view, err := tr.SnapshotView()
	if err != nil {
		t.Fatal(err)
	}
	// Delete most entries (frees pages), then reinsert (reuses them).
	for i := 0; i < 100; i++ {
		if ok, err := tr.Delete(pointAt(float64(i), 0), int64(i)); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	tr.PublishEpoch()
	for i := 200; i < 320; i++ {
		if err := tr.Insert(pointAt(float64(i), 0), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.PublishEpoch()

	got, err := view.SearchAll(everything(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 120 {
		t.Fatalf("pinned view sees %d entries, want 120", len(got))
	}
	for _, e := range got {
		if e.Data >= 200 {
			t.Fatalf("pinned view sees post-pin entry %d", e.Data)
		}
	}
	view.Release()
	if r := tr.Versioned().Retained(); r != 0 {
		t.Fatalf("retained = %d, want 0", r)
	}
}

// TestVersionedUnpublishedSkipsCapture checks that construction-time
// writes (before any Publish) retain nothing.
func TestVersionedUnpublishedSkipsCapture(t *testing.T) {
	tr := newVersionedMemTree(t, 2)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(pointAt(float64(i), float64(i)), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if r := tr.Versioned().Retained(); r != 0 {
		t.Fatalf("retained = %d before first publish, want 0", r)
	}
}

func ExampleTree_SnapshotView() {
	ms, _ := NewMemStore(2, 8)
	tr, _ := New(NewVersioned(ms))
	_ = tr.Insert(Point([]float64{1, 1}), 1)
	tr.PublishEpoch()

	view, _ := tr.SnapshotView()
	defer view.Release()
	_ = tr.Insert(Point([]float64{2, 2}), 2)
	tr.PublishEpoch()

	fmt.Println("view:", view.Len(), "tree:", tr.Len())
	// Output: view: 1 tree: 2
}
