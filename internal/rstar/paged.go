package rstar

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"walrus/internal/store"
)

// Page layout of a serialized node:
//
//	offset 0: flags (byte; bit 0 = leaf)
//	offset 1: entry count (uint16, little endian)
//	offset 3: reserved byte
//	offset 4: CRC32 (Castagnoli) of bytes [0,4) and the entry area
//	offset 8: entries, each 8 bytes (child id or data payload)
//	          followed by dim float64 mins and dim float64 maxs.
const (
	pagedHeader   = 8
	pagedRefBytes = 8
	pagedMetaRoot = 0 // pager root slots used for tree metadata
	pagedMetaInfo = 1 // packed height/size/valid
	pagedMetaDim  = 2
)

// pagedCRC is the checksum table for node pages.
var pagedCRC = crc32.MakeTable(crc32.Castagnoli)

// PagedStore is a NodeStore backed by a store.BufferPool, making the tree
// disk-resident: each node occupies one page, and tree metadata lives in
// the pager's root slots.
type PagedStore struct {
	pool *store.BufferPool
	pg   *store.Pager
	dim  int
	max  int
}

// NewPagedStore creates a paged node store for dim-dimensional rectangles.
// The node capacity is derived from the page size; an error is returned if
// a page cannot hold at least 4 entries.
func NewPagedStore(pg *store.Pager, pool *store.BufferPool, dim int) (*PagedStore, error) {
	if dim < 1 {
		return nil, fmt.Errorf("rstar: dimension %d < 1", dim)
	}
	entryBytes := pagedRefBytes + 16*dim
	// Reserve one slot beyond MaxEntries: the tree transiently persists a
	// node holding M+1 entries before overflow treatment runs.
	max := (pg.PageSize()-pagedHeader)/entryBytes - 1
	if max < 4 {
		return nil, fmt.Errorf("rstar: page size %d holds only %d %d-dimensional entries; need >= 4",
			pg.PageSize(), max, dim)
	}
	if stored := pg.Root(pagedMetaDim); stored != 0 && stored != uint64(dim) {
		return nil, fmt.Errorf("rstar: store was created with dimension %d, not %d", stored, dim)
	}
	pg.SetRoot(pagedMetaDim, uint64(dim))
	return &PagedStore{pool: pool, pg: pg, dim: dim, max: max}, nil
}

// Dim implements NodeStore.
func (s *PagedStore) Dim() int { return s.dim }

// MaxEntries implements NodeStore.
func (s *PagedStore) MaxEntries() int { return s.max }

// New implements NodeStore.
func (s *PagedStore) New(leaf bool) (*Node, error) {
	f, err := s.pool.NewPage()
	if err != nil {
		return nil, err
	}
	n := &Node{ID: NodeID(f.ID), Leaf: leaf}
	s.encode(n, f.Data)
	s.pool.Unpin(f, true)
	return n, nil
}

// Get implements NodeStore.
func (s *PagedStore) Get(id NodeID) (*Node, error) {
	f, err := s.pool.Get(store.PageID(id))
	if err != nil {
		return nil, err
	}
	n, err := s.decode(id, f.Data)
	s.pool.Unpin(f, false)
	return n, err
}

// Put implements NodeStore.
func (s *PagedStore) Put(n *Node) error {
	if len(n.Entries) > s.max+1 {
		return fmt.Errorf("rstar: node %d has %d entries, page holds %d", n.ID, len(n.Entries), s.max+1)
	}
	f, err := s.pool.Get(store.PageID(n.ID))
	if err != nil {
		return err
	}
	s.encode(n, f.Data)
	s.pool.Unpin(f, true)
	return nil
}

// Free implements NodeStore.
func (s *PagedStore) Free(id NodeID) error {
	return s.pool.Discard(store.PageID(id))
}

// Meta implements NodeStore.
func (s *PagedStore) Meta() (Meta, error) {
	info := s.pg.Root(pagedMetaInfo)
	m := Meta{
		Root:   NodeID(s.pg.Root(pagedMetaRoot)),
		Height: int(info >> 33),
		Size:   int((info >> 1) & 0xFFFFFFFF),
		Valid:  info&1 == 1,
	}
	return m, nil
}

// SetMeta implements NodeStore.
func (s *PagedStore) SetMeta(m Meta) error {
	if m.Height < 0 || m.Size < 0 || m.Size > math.MaxUint32 {
		return fmt.Errorf("rstar: metadata out of range: %+v", m)
	}
	s.pg.SetRoot(pagedMetaRoot, uint64(m.Root))
	info := uint64(m.Height)<<33 | uint64(m.Size)<<1
	if m.Valid {
		info |= 1
	}
	s.pg.SetRoot(pagedMetaInfo, info)
	return nil
}

// Flush writes all dirty pages and metadata to disk.
func (s *PagedStore) Flush() error { return s.pool.FlushAll() }

func (s *PagedStore) encode(n *Node, buf []byte) {
	if n.Leaf {
		buf[0] = 1
	} else {
		buf[0] = 0
	}
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.Entries)))
	buf[3] = 0
	off := pagedHeader
	for _, e := range n.Entries {
		ref := uint64(e.Data)
		if !n.Leaf {
			ref = uint64(e.Child)
		}
		binary.LittleEndian.PutUint64(buf[off:], ref)
		off += 8
		for _, v := range e.Rect.Min {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
		for _, v := range e.Rect.Max {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	sum := crc32.Checksum(buf[:4], pagedCRC)
	sum = crc32.Update(sum, pagedCRC, buf[pagedHeader:off])
	binary.LittleEndian.PutUint32(buf[4:], sum)
}

func (s *PagedStore) decode(id NodeID, buf []byte) (*Node, error) {
	n := &Node{ID: id, Leaf: buf[0]&1 == 1}
	count := int(binary.LittleEndian.Uint16(buf[1:]))
	if count > s.max+1 {
		return nil, fmt.Errorf("rstar: page %d claims %d entries, max %d", id, count, s.max+1)
	}
	entryBytes := count * (pagedRefBytes + 16*s.dim)
	sum := crc32.Checksum(buf[:4], pagedCRC)
	sum = crc32.Update(sum, pagedCRC, buf[pagedHeader:pagedHeader+entryBytes])
	if stored := binary.LittleEndian.Uint32(buf[4:]); stored != sum {
		return nil, fmt.Errorf("rstar: page %d checksum mismatch (stored %08x, computed %08x): data corruption", id, stored, sum)
	}
	off := pagedHeader
	n.Entries = make([]Entry, count)
	for i := 0; i < count; i++ {
		ref := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		e := Entry{Rect: Rect{Min: make([]float64, s.dim), Max: make([]float64, s.dim)}}
		if n.Leaf {
			e.Data = int64(ref)
		} else {
			e.Child = NodeID(ref)
		}
		for j := 0; j < s.dim; j++ {
			e.Rect.Min[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		for j := 0; j < s.dim; j++ {
			e.Rect.Max[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		n.Entries[i] = e
	}
	return n, nil
}
