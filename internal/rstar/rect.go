// Package rstar implements a d-dimensional R*-tree (Beckmann, Kriegel,
// Schneider, Seeger, SIGMOD 1990): insertion with forced reinsertion,
// margin-driven node splits, overlap queries, deletion with tree
// condensation, and nearest-neighbor search. WALRUS stores one entry per
// image region, keyed by the region's signature point or signature
// bounding box (Section 5.3/5.4 of the paper), and probes the tree with
// query rectangles extended by the matching epsilon.
//
// Nodes live behind the NodeStore interface, with an in-memory
// implementation and a disk-backed one built on package store, making the
// index genuinely disk-based as in the paper.
package rstar

import (
	"fmt"
	"math"
)

// Rect is a d-dimensional axis-aligned rectangle. A point is a rectangle
// with Min == Max.
type Rect struct {
	Min, Max []float64
}

// NewRect copies lo and hi into a Rect, validating lo[i] <= hi[i].
func NewRect(lo, hi []float64) (Rect, error) {
	if len(lo) != len(hi) {
		return Rect{}, fmt.Errorf("rstar: rect corners have dims %d and %d", len(lo), len(hi))
	}
	if len(lo) == 0 {
		return Rect{}, fmt.Errorf("rstar: zero-dimensional rect")
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Rect{}, fmt.Errorf("rstar: min %v > max %v on dim %d", lo[i], hi[i], i)
		}
	}
	r := Rect{Min: make([]float64, len(lo)), Max: make([]float64, len(hi))}
	copy(r.Min, lo)
	copy(r.Max, hi)
	return r, nil
}

// Point returns the degenerate rectangle at p.
func Point(p []float64) Rect {
	r := Rect{Min: make([]float64, len(p)), Max: make([]float64, len(p))}
	copy(r.Min, p)
	copy(r.Max, p)
	return r
}

// Dim returns the dimensionality.
func (r Rect) Dim() int { return len(r.Min) }

// Clone returns a deep copy.
func (r Rect) Clone() Rect {
	out := Rect{Min: make([]float64, len(r.Min)), Max: make([]float64, len(r.Max))}
	copy(out.Min, r.Min)
	copy(out.Max, r.Max)
	return out
}

// Area returns the d-dimensional volume.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// Margin returns the sum of edge lengths (the R* split criterion).
func (r Rect) Margin() float64 {
	m := 0.0
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// Intersects reports whether r and o share any point (touching counts).
func (r Rect) Intersects(o Rect) bool {
	for i := range r.Min {
		if r.Min[i] > o.Max[i] || o.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Contains reports whether o lies entirely within r.
func (r Rect) Contains(o Rect) bool {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] || o.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Equal reports exact equality.
func (r Rect) Equal(o Rect) bool {
	if len(r.Min) != len(o.Min) {
		return false
	}
	for i := range r.Min {
		if r.Min[i] != o.Min[i] || r.Max[i] != o.Max[i] {
			return false
		}
	}
	return true
}

// Union returns the smallest rectangle containing r and o.
func (r Rect) Union(o Rect) Rect {
	out := r.Clone()
	for i := range out.Min {
		if o.Min[i] < out.Min[i] {
			out.Min[i] = o.Min[i]
		}
		if o.Max[i] > out.Max[i] {
			out.Max[i] = o.Max[i]
		}
	}
	return out
}

// Enlargement returns the area increase needed for r to cover o.
func (r Rect) Enlargement(o Rect) float64 {
	return r.Union(o).Area() - r.Area()
}

// OverlapArea returns the volume of the intersection of r and o.
func (r Rect) OverlapArea(o Rect) float64 {
	a := 1.0
	for i := range r.Min {
		lo := math.Max(r.Min[i], o.Min[i])
		hi := math.Min(r.Max[i], o.Max[i])
		if hi <= lo {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// Expand grows the rectangle by eps on every side, the operation WALRUS
// uses to turn a region signature into an epsilon-envelope query.
func (r Rect) Expand(eps float64) Rect {
	out := r.Clone()
	for i := range out.Min {
		out.Min[i] -= eps
		out.Max[i] += eps
	}
	return out
}

// Center returns the rectangle's center point.
func (r Rect) Center() []float64 {
	c := make([]float64, len(r.Min))
	for i := range c {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// centerDist2 returns the squared euclidean distance between centers.
func centerDist2(a, b Rect) float64 {
	d2 := 0.0
	for i := range a.Min {
		d := (a.Min[i]+a.Max[i])/2 - (b.Min[i]+b.Max[i])/2
		d2 += d * d
	}
	return d2
}

// MinDist2 returns the squared minimum distance from point p to the
// rectangle (0 if p is inside), used for nearest-neighbor pruning.
func (r Rect) MinDist2(p []float64) float64 {
	d2 := 0.0
	for i, v := range p {
		switch {
		case v < r.Min[i]:
			d := r.Min[i] - v
			d2 += d * d
		case v > r.Max[i]:
			d := v - r.Max[i]
			d2 += d * d
		}
	}
	return d2
}
