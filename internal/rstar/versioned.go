package rstar

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"walrus/internal/obs"
)

// VersionedStore wraps a NodeStore with multi-version concurrency: the
// base store always holds the newest state (so WAL logging and
// checkpointing see every write immediately), while an overlay of
// pre-images preserves each node's prior version for readers pinned to an
// older epoch. One writer at a time mutates through the NodeStore
// interface; any number of readers traverse epoch-consistent views
// (TreeView) without blocking the writer beyond the short per-node
// critical sections of this lock.
//
// Epoch scheme: writes accumulate in epoch published+1. Publish makes
// them visible — a subsequent Pin returns the new epoch — and reclaims
// every pre-image no pinned reader can still need. Before the first
// Publish no reader exists, so construction-time writes (New, Create,
// BulkLoad top-ups) skip pre-image capture entirely.
type VersionedStore struct {
	base   NodeStore
	shares bool // base.Get returns shared node pointers (MemStore)

	mu        sync.RWMutex
	published uint64 // epoch visible to new pins; 0 = never published
	pins      map[uint64]int
	pinned    []uint64 // distinct pinned epochs, ascending

	// overlay holds superseded node versions: overlay[id] is ordered by
	// ascending supersededAt, and version v is the node's state for every
	// epoch < v.supersededAt (down to the previous version's bound).
	overlay map[NodeID][]nodeVersion
	meta    []metaVersion
	// fresh marks nodes created in the current write epoch: no pinned
	// epoch can reference them, so their overwrites need no pre-image
	// (this also suppresses garbage captures when a freed page is
	// reused by the pager).
	fresh    map[NodeID]bool
	retained int // live overlay node versions, for leak checks

	retainedG *obs.Gauge // nil = observability off; guarded by mu
	pinsG     *obs.Gauge
}

type nodeVersion struct {
	node         *Node
	supersededAt uint64
}

type metaVersion struct {
	meta         Meta
	supersededAt uint64
}

// NewVersioned wraps base with epoch-based versioning. The wrapper owns
// all access to base from then on: mutators must go through the returned
// store, never through base directly (construction-time bulk loading
// against base before the wrapper's first Publish is the one sanctioned
// exception — see Load in bulk-build callers).
func NewVersioned(base NodeStore) *VersionedStore {
	_, mem := base.(*MemStore)
	return &VersionedStore{
		base:    base,
		shares:  mem,
		pins:    make(map[uint64]int),
		overlay: make(map[NodeID][]nodeVersion),
		fresh:   make(map[NodeID]bool),
	}
}

// Base returns the wrapped store (used by tests and by bulk loaders that
// build into the base before the first Publish).
func (v *VersionedStore) Base() NodeStore { return v.base }

// Dim implements NodeStore.
func (v *VersionedStore) Dim() int { return v.base.Dim() }

// MaxEntries implements NodeStore.
func (v *VersionedStore) MaxEntries() int { return v.base.MaxEntries() }

// New implements NodeStore (writer side).
func (v *VersionedStore) New(leaf bool) (*Node, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	n, err := v.base.New(leaf)
	if err != nil {
		return nil, err
	}
	if v.published > 0 {
		v.fresh[n.ID] = true
	}
	return n, nil
}

// Get implements NodeStore (writer side): it returns the newest version.
// When the base shares node pointers the caller receives a private clone,
// so the stored object stays immutable once a pre-image capture may point
// at it.
func (v *VersionedStore) Get(id NodeID) (*Node, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	n, err := v.base.Get(id)
	if err != nil {
		return nil, err
	}
	if v.shares {
		n = cloneNode(n)
	}
	return n, nil
}

// Put implements NodeStore: the node's prior state is captured as a
// pre-image for pinned readers, then the write goes through to the base.
func (v *VersionedStore) Put(n *Node) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.captureLocked(n.ID); err != nil {
		return err
	}
	return v.base.Put(n)
}

// Free implements NodeStore. The freed node's last state stays readable
// at pinned epochs via the overlay; the base page may be reused at once.
func (v *VersionedStore) Free(id NodeID) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.fresh[id] {
		// Created and dropped within one unpublished epoch: no pinned
		// reader can ever have seen it.
		delete(v.fresh, id)
		return v.base.Free(id)
	}
	if err := v.captureLocked(id); err != nil {
		return err
	}
	return v.base.Free(id)
}

// Meta implements NodeStore (writer side: newest metadata).
func (v *VersionedStore) Meta() (Meta, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.base.Meta()
}

// SetMeta implements NodeStore, capturing the prior metadata once per
// write epoch.
func (v *VersionedStore) SetMeta(m Meta) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.published > 0 {
		write := v.published + 1
		if len(v.meta) == 0 || v.meta[len(v.meta)-1].supersededAt != write {
			old, err := v.base.Meta()
			if err != nil {
				return err
			}
			v.meta = append(v.meta, metaVersion{meta: old, supersededAt: write})
		}
	}
	return v.base.SetMeta(m)
}

// captureLocked records the node's current base state as the pre-image of
// the current write epoch, at most once per node per epoch. Nodes created
// this epoch need no pre-image, and before the first Publish there are no
// readers to preserve state for.
func (v *VersionedStore) captureLocked(id NodeID) error {
	if v.published == 0 || v.fresh[id] {
		return nil
	}
	write := v.published + 1
	chain := v.overlay[id]
	if len(chain) > 0 && chain[len(chain)-1].supersededAt == write {
		return nil
	}
	old, err := v.base.Get(id)
	if err != nil {
		return err
	}
	// For a sharing base the stored pointer is stable: the tree mutates
	// only private clones handed out by Get and replaces the stored node
	// wholesale on Put. For a decoding base (PagedStore) Get already
	// returned a fresh copy. Either way no deep copy is needed here.
	v.overlay[id] = append(chain, nodeVersion{node: old, supersededAt: write})
	v.retained++
	if v.retainedG != nil {
		v.retainedG.Set(int64(v.retained))
	}
	return nil
}

// Publish makes every write since the previous Publish visible to new
// pins and reclaims superseded versions no pinned reader can need.
// It returns the newly published epoch.
func (v *VersionedStore) Publish() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.published++
	clear(v.fresh)
	v.reclaimLocked()
	return v.published
}

// Pin registers a reader at the currently published epoch and returns it.
// Every Pin must be paired with exactly one Unpin.
func (v *VersionedStore) Pin() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	e := v.published
	if v.pins[e] == 0 {
		// Pin always pins the newest epoch, so appends keep the slice
		// ascending.
		v.pinned = append(v.pinned, e)
	}
	v.pins[e]++
	if v.pinsG != nil {
		v.pinsG.Set(int64(len(v.pinned)))
	}
	return e
}

// Unpin releases a Pin, reclaiming any versions only that epoch needed.
func (v *VersionedStore) Unpin(epoch uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := v.pins[epoch] - 1
	if n > 0 {
		v.pins[epoch] = n
	} else {
		delete(v.pins, epoch)
		for i, e := range v.pinned {
			if e == epoch {
				v.pinned = append(v.pinned[:i], v.pinned[i+1:]...)
				break
			}
		}
		v.reclaimLocked()
	}
	if v.pinsG != nil {
		v.pinsG.Set(int64(len(v.pinned)))
	}
}

// reclaimLocked drops every overlay version whose supersededAt epoch is
// neither ahead of the published epoch (still the pending write) nor
// ahead of some pinned reader. A version superseded at S serves exactly
// the epochs below S, so it is garbage once min(published, minPinned) >= S.
func (v *VersionedStore) reclaimLocked() {
	cutoff := v.published
	if len(v.pinned) > 0 && v.pinned[0] < cutoff {
		cutoff = v.pinned[0]
	}
	ids := make([]NodeID, 0, len(v.overlay))
	for id := range v.overlay {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		chain := v.overlay[id]
		drop := 0
		for drop < len(chain) && chain[drop].supersededAt <= cutoff {
			drop++
		}
		if drop == 0 {
			continue
		}
		v.retained -= drop
		if drop == len(chain) {
			delete(v.overlay, id)
		} else {
			v.overlay[id] = chain[drop:]
		}
	}
	dropMeta := 0
	for dropMeta < len(v.meta) && v.meta[dropMeta].supersededAt <= cutoff {
		dropMeta++
	}
	v.meta = v.meta[dropMeta:]
	if v.retainedG != nil {
		v.retainedG.Set(int64(v.retained))
	}
}

// getAt resolves a node as of a pinned epoch: the oldest overlay version
// still covering the epoch, or the base state when the node has not been
// rewritten since.
func (v *VersionedStore) getAt(id NodeID, epoch uint64) (*Node, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, ver := range v.overlay[id] {
		if ver.supersededAt > epoch {
			return ver.node, nil
		}
	}
	return v.base.Get(id)
}

// metaAt resolves tree metadata as of a pinned epoch.
func (v *VersionedStore) metaAt(epoch uint64) (Meta, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, ver := range v.meta {
		if ver.supersededAt > epoch {
			return ver.meta, nil
		}
	}
	return v.base.Meta()
}

// Retained reports how many superseded node versions the overlay holds —
// zero once every reader has released and the writer has published.
func (v *VersionedStore) Retained() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.retained
}

// Published returns the current published epoch (0 before first Publish).
func (v *VersionedStore) Published() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.published
}

// setMetrics wires the store's reclamation gauges into reg; nil detaches.
func (v *VersionedStore) setMetrics(reg *obs.Registry) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if reg == nil {
		v.retainedG, v.pinsG = nil, nil
		return
	}
	v.retainedG = reg.Gauge("walrus_rstar_retained_preimages", "Superseded R*-tree node versions retained for pinned snapshots.")
	v.pinsG = reg.Gauge("walrus_rstar_pinned_epochs", "Distinct R*-tree epochs currently pinned by snapshots.")
	v.retainedG.Set(int64(v.retained))
	v.pinsG.Set(int64(len(v.pinned)))
}

// cloneNode deep-copies the entry slice (entry rectangles are themselves
// copy-on-write: every Rect mutation in the tree allocates fresh bounds,
// so sharing the float arrays is safe).
func cloneNode(n *Node) *Node {
	out := &Node{ID: n.ID, Leaf: n.Leaf}
	if len(n.Entries) > 0 {
		out.Entries = append(make([]Entry, 0, len(n.Entries)), n.Entries...)
	}
	return out
}

// TreeView is an epoch-pinned, immutable read view of a Tree backed by a
// VersionedStore. Searches on a view observe exactly the tree state at
// the pinned epoch regardless of concurrent writes and publishes. Views
// must be released exactly once; Release is idempotent.
type TreeView struct {
	vs       *VersionedStore
	epoch    uint64
	dim      int
	root     NodeID
	height   int
	size     int
	om       *atomic.Pointer[treeMetrics]
	released atomic.Bool
}

// SnapshotView pins the currently published epoch and returns a read view
// of the tree at that epoch. It fails when the tree's store is not a
// VersionedStore.
func (t *Tree) SnapshotView() (*TreeView, error) {
	vs, ok := t.store.(*VersionedStore)
	if !ok {
		return nil, fmt.Errorf("rstar: tree store is not versioned")
	}
	epoch := vs.Pin()
	m, err := vs.metaAt(epoch)
	if err != nil {
		vs.Unpin(epoch)
		return nil, err
	}
	return &TreeView{vs: vs, epoch: epoch, dim: t.dim, root: m.Root, height: m.Height, size: m.Size, om: &t.om}, nil
}

// PublishEpoch publishes all writes since the last publish on a
// versioned-store tree and returns the new epoch; it returns 0 when the
// store is unversioned.
func (t *Tree) PublishEpoch() uint64 {
	if vs, ok := t.store.(*VersionedStore); ok {
		return vs.Publish()
	}
	return 0
}

// Versioned returns the tree's VersionedStore, or nil when the tree runs
// directly on an unversioned store.
func (t *Tree) Versioned() *VersionedStore {
	vs, _ := t.store.(*VersionedStore)
	return vs
}

// Epoch returns the view's pinned epoch.
func (tv *TreeView) Epoch() uint64 { return tv.epoch }

// Len returns the number of data entries at the pinned epoch.
func (tv *TreeView) Len() int { return tv.size }

// Height returns the tree height at the pinned epoch.
func (tv *TreeView) Height() int { return tv.height }

// Release unpins the view's epoch, allowing its retained pre-images to be
// reclaimed. Calling Release more than once is harmless.
func (tv *TreeView) Release() {
	if tv.released.CompareAndSwap(false, true) {
		tv.vs.Unpin(tv.epoch)
	}
}

// Search invokes fn for every data entry at the pinned epoch whose
// rectangle intersects q, stopping early if fn returns false.
func (tv *TreeView) Search(q Rect, fn func(Entry) bool) error {
	if q.Dim() != tv.dim {
		return fmt.Errorf("rstar: query has dim %d, tree has %d", q.Dim(), tv.dim)
	}
	get := func(id NodeID) (*Node, error) { return tv.vs.getAt(id, tv.epoch) }
	m := tv.om.Load()
	if m == nil {
		_, err := searchFrom(get, tv.root, q, fn, nil)
		return err
	}
	start := obs.Clock()
	visits := 0
	_, err := searchFrom(get, tv.root, q, fn, &visits)
	m.searches.Inc()
	m.nodeVisits.Add(uint64(visits))
	m.reg.RecordSpan("rstar.search", 0, start, obs.Since(start),
		obs.Attr{Key: "node_visits", Value: int64(visits)})
	return err
}

// SearchAll collects every data entry at the pinned epoch intersecting q.
func (tv *TreeView) SearchAll(q Rect) ([]Entry, error) {
	var out []Entry
	err := tv.Search(q, func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out, err
}

// SearchAllCounting is SearchAll plus the number of nodes the search
// visited at the pinned epoch, counted unconditionally for the
// query-EXPLAIN path.
func (tv *TreeView) SearchAllCounting(q Rect) ([]Entry, int, error) {
	if q.Dim() != tv.dim {
		return nil, 0, fmt.Errorf("rstar: query has dim %d, tree has %d", q.Dim(), tv.dim)
	}
	get := func(id NodeID) (*Node, error) { return tv.vs.getAt(id, tv.epoch) }
	var out []Entry
	visits := 0
	_, err := searchFrom(get, tv.root, q, func(e Entry) bool {
		out = append(out, e)
		return true
	}, &visits)
	return out, visits, err
}
