package rstar

import "fmt"

// NodeID identifies a node within a NodeStore. 0 is the nil node.
type NodeID uint64

// InvalidNode is the nil NodeID.
const InvalidNode NodeID = 0

// Entry is one slot of a node: in internal nodes Child points to the
// subtree covered by Rect; in leaves Data carries the caller's payload id.
type Entry struct {
	Rect  Rect
	Child NodeID
	Data  int64
}

// Node is an R*-tree node. Nodes are value-ish: mutate Entries and Put the
// node back to the store.
type Node struct {
	ID      NodeID
	Leaf    bool
	Entries []Entry
}

// mbr returns the bounding rectangle of all entries.
func (n *Node) mbr() Rect {
	r := n.Entries[0].Rect.Clone()
	for _, e := range n.Entries[1:] {
		r = r.Union(e.Rect)
	}
	return r
}

// Meta is the tree-level metadata a NodeStore persists so a tree can be
// reloaded.
type Meta struct {
	Root   NodeID
	Height int // number of levels; 1 = root is a leaf
	Size   int // number of data entries
	Valid  bool
}

// NodeStore abstracts node persistence. Implementations must support at
// least MaxEntries() entries per node; the tree never stores more than
// that. Get may return a shared or fresh copy; the tree always calls Put
// after mutating a node, and never mutates a node object again after
// Put without re-fetching it — VersionedStore's zero-copy pre-image
// capture relies on stored node objects staying stable.
type NodeStore interface {
	// Dim is the dimensionality of all rectangles in the store.
	Dim() int
	// MaxEntries is M, the node capacity.
	MaxEntries() int
	// New allocates an empty node.
	New(leaf bool) (*Node, error)
	// Get fetches a node by id.
	Get(id NodeID) (*Node, error)
	// Put persists a node's current state.
	Put(n *Node) error
	// Free releases a node.
	Free(id NodeID) error
	// Meta returns the stored tree metadata.
	Meta() (Meta, error)
	// SetMeta persists tree metadata.
	SetMeta(m Meta) error
}

// MemStore is an in-memory NodeStore.
type MemStore struct {
	dim    int
	max    int
	nodes  map[NodeID]*Node
	nextID NodeID
	meta   Meta
}

// NewMemStore creates an in-memory store for dim-dimensional rectangles
// with node capacity maxEntries (minimum 4).
func NewMemStore(dim, maxEntries int) (*MemStore, error) {
	if dim < 1 {
		return nil, fmt.Errorf("rstar: dimension %d < 1", dim)
	}
	if maxEntries < 4 {
		return nil, fmt.Errorf("rstar: node capacity %d < 4", maxEntries)
	}
	return &MemStore{dim: dim, max: maxEntries, nodes: make(map[NodeID]*Node), nextID: 1}, nil
}

// Dim implements NodeStore.
func (s *MemStore) Dim() int { return s.dim }

// MaxEntries implements NodeStore.
func (s *MemStore) MaxEntries() int { return s.max }

// New implements NodeStore.
func (s *MemStore) New(leaf bool) (*Node, error) {
	n := &Node{ID: s.nextID, Leaf: leaf}
	s.nextID++
	s.nodes[n.ID] = n
	return n, nil
}

// Get implements NodeStore.
func (s *MemStore) Get(id NodeID) (*Node, error) {
	n, ok := s.nodes[id]
	if !ok {
		return nil, fmt.Errorf("rstar: node %d not found", id)
	}
	return n, nil
}

// Put implements NodeStore. For the memory store nodes are shared, so this
// just validates the node is known.
func (s *MemStore) Put(n *Node) error {
	if _, ok := s.nodes[n.ID]; !ok {
		return fmt.Errorf("rstar: Put of unknown node %d", n.ID)
	}
	s.nodes[n.ID] = n
	return nil
}

// Free implements NodeStore.
func (s *MemStore) Free(id NodeID) error {
	if _, ok := s.nodes[id]; !ok {
		return fmt.Errorf("rstar: Free of unknown node %d", id)
	}
	delete(s.nodes, id)
	return nil
}

// Meta implements NodeStore.
func (s *MemStore) Meta() (Meta, error) { return s.meta, nil }

// SetMeta implements NodeStore.
func (s *MemStore) SetMeta(m Meta) error {
	s.meta = m
	return nil
}

// NumNodes reports how many nodes are live (handy in tests).
func (s *MemStore) NumNodes() int { return len(s.nodes) }
