package rstar

import "walrus/internal/obs"

// treeMetrics are one Tree's pre-resolved obs handles. The handle pointer
// lives in an atomic so concurrent Search calls can read it without a
// lock; a nil pointer means observability is off and the query path does
// no metric work and no clock reads.
type treeMetrics struct {
	searches, nodeVisits, inserts, splits *obs.Counter
	reg                                   *obs.Registry
}

// SetMetrics publishes the tree's counters into reg under the
// walrus_rstar_* namespace; nil detaches. Safe to call concurrently with
// Search.
func (t *Tree) SetMetrics(reg *obs.Registry) {
	if vs := t.Versioned(); vs != nil {
		vs.setMetrics(reg)
	}
	if reg == nil {
		t.om.Store(nil)
		return
	}
	t.om.Store(&treeMetrics{
		reg:        reg,
		searches:   reg.Counter("walrus_rstar_searches_total", "R*-tree range searches."),
		nodeVisits: reg.Counter("walrus_rstar_node_visits_total", "Nodes visited by R*-tree searches."),
		inserts:    reg.Counter("walrus_rstar_inserts_total", "Entries inserted into the R*-tree."),
		splits:     reg.Counter("walrus_rstar_splits_total", "R*-tree node splits."),
	})
}
