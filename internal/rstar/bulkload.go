package rstar

import (
	"fmt"
	"math"
	"sort"
)

// BulkLoad builds a tree over the given rectangles and payloads with
// Sort-Tile-Recursive packing (Leutenegger et al.): entries are sorted and
// sliced into near-equal tiles along successive dimensions, producing a
// fully packed tree in O(n log n) — much faster than n individual inserts
// and with better-clustered leaves. The store must be freshly created;
// existing metadata is overwritten.
func BulkLoad(s NodeStore, rects []Rect, data []int64) (*Tree, error) {
	if len(rects) != len(data) {
		return nil, fmt.Errorf("rstar: BulkLoad got %d rects and %d payloads", len(rects), len(data))
	}
	t := newTree(s)
	for _, r := range rects {
		if r.Dim() != t.dim {
			return nil, fmt.Errorf("rstar: BulkLoad rect has dim %d, store has %d", r.Dim(), t.dim)
		}
	}
	entries := make([]Entry, len(rects))
	for i := range rects {
		entries[i] = Entry{Rect: rects[i].Clone(), Data: data[i]}
	}

	// Pack the leaf level, then repeatedly pack the summaries until a
	// single root remains.
	level := entries
	leaf := true
	height := 0
	var rootID NodeID
	for {
		height++
		if height > 64 {
			return nil, fmt.Errorf("rstar: BulkLoad failed to converge")
		}
		if len(level) == 0 {
			// Empty input: a single empty leaf root.
			n, err := s.New(true)
			if err != nil {
				return nil, err
			}
			if err := s.Put(n); err != nil {
				return nil, err
			}
			rootID = n.ID
			break
		}
		groups := strSplit(level, t.maxE, 0, t.dim)
		next := make([]Entry, 0, len(groups))
		for _, g := range groups {
			n, err := s.New(leaf)
			if err != nil {
				return nil, err
			}
			n.Entries = g
			if err := s.Put(n); err != nil {
				return nil, err
			}
			next = append(next, Entry{Rect: n.mbr(), Child: n.ID})
		}
		if len(next) == 1 {
			rootID = next[0].Child
			break
		}
		level = next
		leaf = false
	}
	t.root = rootID
	t.height = height
	t.size = len(rects)
	if err := t.saveMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// strSplit partitions entries into groups of at most cap entries using the
// STR tiling: sort by the current axis's center, slice into near-equal
// slabs, and recurse into the slabs along the next axis. Group sizes stay
// near cap (never below roughly half of it), so packed nodes respect the
// minimum-fill invariant.
func strSplit(entries []Entry, cap, axis, dims int) [][]Entry {
	groups := ceilDiv(len(entries), cap)
	if groups <= 1 {
		return [][]Entry{entries}
	}
	sortByCenter(entries, axis)
	if axis == dims-1 {
		return evenSplit(entries, groups)
	}
	// Number of slabs along this axis: the (dims-axis)-th root of the
	// group count, so the tiling is balanced across remaining dimensions.
	slabs := int(math.Ceil(math.Pow(float64(groups), 1/float64(dims-axis))))
	if slabs < 1 {
		slabs = 1
	}
	if slabs > groups {
		slabs = groups
	}
	var out [][]Entry
	for _, slab := range evenSplit(entries, slabs) {
		out = append(out, strSplit(slab, cap, axis+1, dims)...)
	}
	return out
}

func sortByCenter(entries []Entry, axis int) {
	sort.Slice(entries, func(i, j int) bool {
		ci := entries[i].Rect.Min[axis] + entries[i].Rect.Max[axis]
		cj := entries[j].Rect.Min[axis] + entries[j].Rect.Max[axis]
		return ci < cj
	})
}

// evenSplit slices entries into k contiguous groups whose sizes differ by
// at most one.
func evenSplit(entries []Entry, k int) [][]Entry {
	out := make([][]Entry, 0, k)
	n := len(entries)
	start := 0
	for i := 0; i < k; i++ {
		end := start + n/k
		if i < n%k {
			end++
		}
		out = append(out, entries[start:end:end])
		start = end
	}
	return out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
