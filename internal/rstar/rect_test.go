package rstar

import (
	"math"
	"testing"
)

func rect(t *testing.T, lo, hi []float64) Rect {
	t.Helper()
	r, err := NewRect(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect([]float64{0, 0}, []float64{1}); err == nil {
		t.Error("accepted mismatched dims")
	}
	if _, err := NewRect([]float64{2}, []float64{1}); err == nil {
		t.Error("accepted min > max")
	}
	if _, err := NewRect(nil, nil); err == nil {
		t.Error("accepted zero-dimensional rect")
	}
}

func TestRectBasics(t *testing.T) {
	r := rect(t, []float64{0, 0}, []float64{2, 3})
	if r.Area() != 6 {
		t.Errorf("Area = %v, want 6", r.Area())
	}
	if r.Margin() != 5 {
		t.Errorf("Margin = %v, want 5", r.Margin())
	}
	c := r.Center()
	if c[0] != 1 || c[1] != 1.5 {
		t.Errorf("Center = %v", c)
	}
	if r.Dim() != 2 {
		t.Errorf("Dim = %d", r.Dim())
	}
}

func TestPointRect(t *testing.T) {
	p := Point([]float64{1, 2, 3})
	if p.Area() != 0 {
		t.Errorf("point area = %v", p.Area())
	}
	if !p.Contains(p) || !p.Intersects(p) {
		t.Error("point does not contain/intersect itself")
	}
}

func TestIntersectsAndContains(t *testing.T) {
	a := rect(t, []float64{0, 0}, []float64{2, 2})
	b := rect(t, []float64{1, 1}, []float64{3, 3})
	c := rect(t, []float64{2.5, 2.5}, []float64{4, 4})
	d := rect(t, []float64{0.5, 0.5}, []float64{1.5, 1.5})
	if !a.Intersects(b) || b.Intersects(a) == false {
		t.Error("a/b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a/c should not intersect")
	}
	// Touching counts as intersecting.
	e := rect(t, []float64{2, 0}, []float64{3, 2})
	if !a.Intersects(e) {
		t.Error("touching rects should intersect")
	}
	if !a.Contains(d) {
		t.Error("a should contain d")
	}
	if a.Contains(b) {
		t.Error("a should not contain b")
	}
}

func TestUnionAndEnlargement(t *testing.T) {
	a := rect(t, []float64{0, 0}, []float64{1, 1})
	b := rect(t, []float64{2, 2}, []float64{3, 3})
	u := a.Union(b)
	if !u.Contains(a) || !u.Contains(b) {
		t.Error("union does not contain operands")
	}
	if u.Area() != 9 {
		t.Errorf("union area = %v, want 9", u.Area())
	}
	if enl := a.Enlargement(b); enl != 8 {
		t.Errorf("Enlargement = %v, want 8", enl)
	}
	// Union must not mutate operands.
	if a.Max[0] != 1 {
		t.Error("Union mutated receiver")
	}
}

func TestOverlapArea(t *testing.T) {
	a := rect(t, []float64{0, 0}, []float64{2, 2})
	b := rect(t, []float64{1, 1}, []float64{3, 3})
	if got := a.OverlapArea(b); got != 1 {
		t.Errorf("OverlapArea = %v, want 1", got)
	}
	c := rect(t, []float64{5, 5}, []float64{6, 6})
	if got := a.OverlapArea(c); got != 0 {
		t.Errorf("disjoint OverlapArea = %v, want 0", got)
	}
}

func TestExpand(t *testing.T) {
	p := Point([]float64{1, 1})
	e := p.Expand(0.5)
	if e.Min[0] != 0.5 || e.Max[1] != 1.5 {
		t.Errorf("Expand = %+v", e)
	}
	if e.Area() != 1 {
		t.Errorf("expanded area = %v, want 1", e.Area())
	}
}

func TestMinDist2(t *testing.T) {
	r := rect(t, []float64{0, 0}, []float64{1, 1})
	if d := r.MinDist2([]float64{0.5, 0.5}); d != 0 {
		t.Errorf("inside MinDist2 = %v", d)
	}
	if d := r.MinDist2([]float64{2, 1}); d != 1 {
		t.Errorf("MinDist2 = %v, want 1", d)
	}
	if d := r.MinDist2([]float64{2, 2}); math.Abs(d-2) > 1e-12 {
		t.Errorf("corner MinDist2 = %v, want 2", d)
	}
}

func TestEqualAndClone(t *testing.T) {
	a := rect(t, []float64{0, 1}, []float64{2, 3})
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Min[0] = -1
	if a.Equal(b) || a.Min[0] != 0 {
		t.Error("clone shares storage")
	}
	if a.Equal(Point([]float64{0})) {
		t.Error("rects of different dims compared equal")
	}
}
