package rstar

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"walrus/internal/store"
)

func TestBulkLoadMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, n := range []int{0, 1, 3, 10, 100, 1000} {
		s, err := NewMemStore(3, 8)
		if err != nil {
			t.Fatal(err)
		}
		rects := make([]Rect, n)
		data := make([]int64, n)
		for i := range rects {
			rects[i] = randomRect(rng, 3)
			data[i] = int64(i)
		}
		tr, err := BulkLoad(s, rects, data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for q := 0; q < 20; q++ {
			query := randomRect(rng, 3).Expand(0.05)
			got, err := tr.SearchAll(query)
			if err != nil {
				t.Fatal(err)
			}
			if !int64SlicesEqual(sortedPayloads(got), bruteSearch(rects, query)) {
				t.Fatalf("n=%d query %d: search mismatch", n, q)
			}
		}
	}
}

func TestBulkLoadValidation(t *testing.T) {
	s, err := NewMemStore(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BulkLoad(s, make([]Rect, 2), make([]int64, 3)); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := BulkLoad(s, []Rect{Point([]float64{1})}, []int64{0}); err == nil {
		t.Error("accepted wrong dimension")
	}
}

// TestBulkLoadThenMutate: a bulk-loaded tree accepts further inserts and
// deletes.
func TestBulkLoadThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	s, err := NewMemStore(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	rects := make([]Rect, n)
	data := make([]int64, n)
	for i := range rects {
		rects[i] = randomRect(rng, 2)
		data[i] = int64(i)
	}
	tr, err := BulkLoad(s, rects, data)
	if err != nil {
		t.Fatal(err)
	}
	extra := randomRect(rng, 2)
	if err := tr.Insert(extra, 999); err != nil {
		t.Fatal(err)
	}
	ok, err := tr.Delete(rects[5], 5)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	got, err := tr.SearchAll(extra)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range got {
		if e.Data == 999 {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted entry not found after bulk load")
	}
}

// TestBulkLoadQuick randomizes sizes, dims and capacities.
func TestBulkLoadQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(5)
		s, err := NewMemStore(dim, 4+rng.Intn(16))
		if err != nil {
			return false
		}
		n := rng.Intn(400)
		rects := make([]Rect, n)
		data := make([]int64, n)
		for i := range rects {
			rects[i] = randomRect(rng, dim)
			data[i] = int64(i)
		}
		tr, err := BulkLoad(s, rects, data)
		if err != nil {
			return false
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		for q := 0; q < 5; q++ {
			query := randomRect(rng, dim).Expand(0.1)
			got, err := tr.SearchAll(query)
			if err != nil {
				return false
			}
			if !int64SlicesEqual(sortedPayloads(got), bruteSearch(rects, query)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestBulkLoadPaged: bulk loading works on the disk-backed store and
// survives a reopen.
func TestBulkLoadPaged(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bulk.db")
	pg, err := store.Create(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	pool, _ := store.NewBufferPool(pg, 16)
	ps, err := NewPagedStore(pg, pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	const n = 300
	rects := make([]Rect, n)
	data := make([]int64, n)
	for i := range rects {
		rects[i] = randomRect(rng, 4)
		data[i] = int64(i)
	}
	tr, err := BulkLoad(ps, rects, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := ps.Flush(); err != nil {
		t.Fatal(err)
	}
	pg.Close()

	pg2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	pool2, _ := store.NewBufferPool(pg2, 16)
	ps2, err := NewPagedStore(pg2, pool2, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Load(ps2)
	if err != nil {
		t.Fatal(err)
	}
	query := rects[7].Expand(0.02)
	got, err := tr2.SearchAll(query)
	if err != nil {
		t.Fatal(err)
	}
	if !int64SlicesEqual(sortedPayloads(got), bruteSearch(rects, query)) {
		t.Fatal("search mismatch after reopen")
	}
}

// TestBulkLoadPackingDensity: STR packing produces far fewer nodes than
// one-at-a-time insertion.
func TestBulkLoadPackingDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	const n, cap = 500, 8
	rects := make([]Rect, n)
	data := make([]int64, n)
	for i := range rects {
		rects[i] = randomRect(rng, 2)
		data[i] = int64(i)
	}
	bulkStore, _ := NewMemStore(2, cap)
	if _, err := BulkLoad(bulkStore, rects, data); err != nil {
		t.Fatal(err)
	}
	insStore, _ := NewMemStore(2, cap)
	tr, err := New(insStore)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rects {
		if err := tr.Insert(r, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if bulkStore.NumNodes() > insStore.NumNodes() {
		t.Fatalf("bulk load used %d nodes, insertion used %d", bulkStore.NumNodes(), insStore.NumNodes())
	}
}
