package jfs

import (
	"math/rand"
	"testing"

	"walrus/internal/imgio"
)

func patterned(seed int64) *imgio.Image {
	rng := rand.New(rand.NewSource(seed))
	im := imgio.New(128, 96, 3)
	// Blocky random pattern gives the transform distinct large
	// coefficients.
	for by := 0; by < 6; by++ {
		for bx := 0; bx < 8; bx++ {
			r, g, b := rng.Float64(), rng.Float64(), rng.Float64()
			for y := by * 16; y < (by+1)*16 && y < im.H; y++ {
				for x := bx * 16; x < (bx+1)*16 && x < im.W; x++ {
					im.SetRGB(x, y, r, g, b)
				}
			}
		}
	}
	return im
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Keep: 0}); err == nil {
		t.Error("accepted Keep 0")
	}
	if _, err := New(Options{Keep: 1 << 20}); err == nil {
		t.Error("accepted huge Keep")
	}
}

func TestSelfQueryRanksFirst(t *testing.T) {
	ix, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if err := ix.Add(string(rune('a'+i)), patterned(i)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 5 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for i := int64(0); i < 5; i++ {
		matches, err := ix.Query(patterned(i), 3)
		if err != nil {
			t.Fatal(err)
		}
		if matches[0].ID != string(rune('a'+i)) {
			t.Fatalf("query %d: best %+v", i, matches[0])
		}
		// The self match must be strictly better than the runner-up.
		if len(matches) > 1 && matches[0].Score >= matches[1].Score {
			t.Fatalf("query %d: no separation: %+v", i, matches[:2])
		}
	}
}

func TestSignatureSparsity(t *testing.T) {
	ix, err := New(Options{Keep: 40})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := ix.signatureOf("x", patterned(7))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		kept := len(sig.pos[c]) + len(sig.neg[c])
		if kept > 40 {
			t.Fatalf("channel %d kept %d coefficients, cap 40", c, kept)
		}
		if kept == 0 {
			t.Fatalf("channel %d kept nothing", c)
		}
	}
}

func TestQueryEdgeCases(t *testing.T) {
	ix, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m, err := ix.Query(patterned(1), 0); err != nil || m != nil {
		t.Fatalf("k=0: %v %v", m, err)
	}
	if err := ix.Add("bad", imgio.New(32, 32, 1)); err == nil {
		t.Error("Add accepted 1-channel image")
	}
}

func TestBinLevels(t *testing.T) {
	cases := []struct {
		key  coeffKey
		want int
	}{
		{coeffKey{0, 1}, 0},
		{coeffKey{1, 1}, 0},
		{coeffKey{2, 0}, 1},
		{coeffKey{3, 3}, 1},
		{coeffKey{4, 0}, 2},
		{coeffKey{16, 5}, 4},
		{coeffKey{127, 127}, 5},
	}
	for _, c := range cases {
		if got := bin(c.key); got != c.want {
			t.Errorf("bin(%v) = %d, want %d", c.key, got, c.want)
		}
	}
}
