// Package jfs reimplements the "fast multiresolution image querying"
// scheme of Jacobs, Finkelstein and Salesin (SIGGRAPH 1995), the earliest
// wavelet baseline discussed in the WALRUS paper (Section 2). Each image is
// rescaled to 128×128, Haar-transformed per channel, and truncated to the
// m largest-magnitude coefficients, which are quantized to their sign only.
// Query scoring follows the paper's weighted bitmap metric: a penalty for
// the difference of overall averages minus a bin-weighted bonus for every
// truncated coefficient the query and target share with equal sign.
//
// Like WBIIS this computes a single whole-image signature, so it breaks
// down under object translation and scaling.
package jfs

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"walrus/internal/colorspace"
	"walrus/internal/imgio"
	"walrus/internal/wavelet"
)

const side = 128

// Weights are the per-channel bin weights of the JFS paper (their Table 1,
// scanned-query column, YIQ space): bin(i,j) = min(max(i,j),5).
var defaultWeights = [3][6]float64{
	{5.00, 0.83, 1.01, 0.52, 0.47, 0.30},
	{19.21, 1.26, 0.44, 0.53, 0.28, 0.14},
	{34.37, 0.36, 0.45, 0.14, 0.18, 0.27},
}

// Options configures a JFS index.
type Options struct {
	// Space is the color space (the JFS paper found YIQ best).
	Space colorspace.Space
	// Keep is m, the number of largest-magnitude coefficients retained per
	// channel (the paper used 40-60).
	Keep int
}

// DefaultOptions mirrors the JFS paper's setup.
func DefaultOptions() Options {
	return Options{Space: colorspace.YIQ, Keep: 60}
}

// coeffKey addresses one wavelet coefficient.
type coeffKey struct{ R, C int }

// signature is one image's truncated, quantized transform.
type signature struct {
	id  string
	avg [3]float64               // overall averages per channel
	pos [3]map[coeffKey]struct{} // coefficients quantized to +1
	neg [3]map[coeffKey]struct{} // coefficients quantized to -1
}

// Match is one query result; lower score is better.
type Match struct {
	ID    string
	Score float64
}

// Index is an in-memory JFS index, safe for concurrent use.
type Index struct {
	opts Options
	mu   sync.RWMutex
	sigs []signature
}

// New creates an empty index.
func New(opts Options) (*Index, error) {
	if opts.Keep < 1 || opts.Keep > side*side {
		return nil, fmt.Errorf("jfs: Keep %d out of range", opts.Keep)
	}
	return &Index{opts: opts}, nil
}

// Len returns the number of indexed images.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.sigs)
}

// Add indexes an RGB image under id.
func (ix *Index) Add(id string, im *imgio.Image) error {
	sig, err := ix.signatureOf(id, im)
	if err != nil {
		return err
	}
	ix.mu.Lock()
	ix.sigs = append(ix.sigs, sig)
	ix.mu.Unlock()
	return nil
}

func (ix *Index) signatureOf(id string, im *imgio.Image) (signature, error) {
	if im.C != 3 {
		return signature{}, fmt.Errorf("jfs: image %q has %d channels, want 3", id, im.C)
	}
	scaled, err := imgio.Resize(im, side, side)
	if err != nil {
		return signature{}, err
	}
	conv, err := colorspace.FromRGB(scaled, ix.opts.Space)
	if err != nil {
		return signature{}, err
	}
	sig := signature{id: id}
	for c := 0; c < 3; c++ {
		plane := wavelet.Matrix{Rows: side, Cols: side, Data: conv.Plane(c)}
		t, err := wavelet.Transform2D(plane)
		if err != nil {
			return signature{}, err
		}
		wavelet.Normalize2D(t)
		sig.avg[c] = t.At(0, 0)
		// Rank all non-average coefficients by magnitude, keep the top m.
		type mc struct {
			key coeffKey
			mag float64
			neg bool
		}
		all := make([]mc, 0, side*side-1)
		for r := 0; r < side; r++ {
			for col := 0; col < side; col++ {
				if r == 0 && col == 0 {
					continue
				}
				v := t.At(r, col)
				all = append(all, mc{coeffKey{r, col}, math.Abs(v), v < 0})
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].mag > all[j].mag })
		sig.pos[c] = make(map[coeffKey]struct{})
		sig.neg[c] = make(map[coeffKey]struct{})
		for i := 0; i < ix.opts.Keep && i < len(all); i++ {
			if all[i].mag == 0 {
				break
			}
			if all[i].neg {
				sig.neg[c][all[i].key] = struct{}{}
			} else {
				sig.pos[c][all[i].key] = struct{}{}
			}
		}
	}
	return sig, nil
}

// bin maps a coefficient position to its weight bin.
func bin(k coeffKey) int {
	b := k.R
	if k.C > b {
		b = k.C
	}
	// Positions are spatial indexes; the JFS bins are log-scale levels.
	level := 0
	for b > 1 {
		b >>= 1
		level++
	}
	if level > 5 {
		level = 5
	}
	return level
}

// score computes the JFS query metric between a query and a target
// signature (lower is more similar).
func (ix *Index) score(q, t *signature) float64 {
	total := 0.0
	for c := 0; c < 3; c++ {
		w := defaultWeights[c]
		total += w[0] * math.Abs(q.avg[c]-t.avg[c])
		for key := range q.pos[c] {
			if _, ok := t.pos[c][key]; ok {
				total -= w[bin(key)]
			}
		}
		for key := range q.neg[c] {
			if _, ok := t.neg[c][key]; ok {
				total -= w[bin(key)]
			}
		}
	}
	return total
}

// Query returns the k indexed images with the best (lowest) JFS scores.
func (ix *Index) Query(im *imgio.Image, k int) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	q, err := ix.signatureOf("", im)
	if err != nil {
		return nil, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]Match, len(ix.sigs))
	for i := range ix.sigs {
		out[i] = Match{ID: ix.sigs[i].id, Score: ix.score(&q, &ix.sigs[i])}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
