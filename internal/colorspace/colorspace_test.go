package colorspace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"walrus/internal/imgio"
)

func randomRGB(rng *rand.Rand, w, h int) *imgio.Image {
	im := imgio.New(w, h, 3)
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	return im
}

func TestSpaceString(t *testing.T) {
	if RGB.String() != "RGB" || YCC.String() != "YCC" {
		t.Fatalf("String: %v %v", RGB, YCC)
	}
	if got := Space(99).String(); got != "Space(99)" {
		t.Fatalf("unknown space String = %q", got)
	}
}

func TestParse(t *testing.T) {
	for _, s := range []Space{RGB, YCC, YIQ, YUV, HSV, XYZ, Gray} {
		got, err := Parse(s.String())
		if err != nil || got != s {
			t.Errorf("Parse(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := Parse("CMYK"); err == nil {
		t.Error("Parse accepted unknown space")
	}
}

func TestChannels(t *testing.T) {
	if Gray.Channels() != 1 || YCC.Channels() != 3 {
		t.Fatal("Channels wrong")
	}
}

// TestRoundTripAllSpaces: FromRGB then ToRGB recovers the original within
// numeric tolerance for every invertible space.
func TestRoundTripAllSpaces(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	im := randomRGB(rng, 16, 12)
	for _, s := range []Space{RGB, YCC, YIQ, YUV, HSV, XYZ} {
		conv, err := FromRGB(im, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		back, err := ToRGB(conv, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		d, err := imgio.MeanAbsDiff(im, back)
		if err != nil {
			t.Fatal(err)
		}
		// The published conversion matrices are rounded to 4-6 decimals, so
		// round trips are exact only to ~1e-4.
		if d > 1e-3 {
			t.Errorf("%v: round trip mean abs diff %v", s, d)
		}
	}
}

// TestGrayMatchesLuma: the gray conversion equals the Y channel of YCC.
func TestGrayMatchesLuma(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	im := randomRGB(rng, 8, 8)
	gray, err := FromRGB(im, Gray)
	if err != nil {
		t.Fatal(err)
	}
	ycc, err := FromRGB(im, YCC)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gray.Pix {
		if math.Abs(gray.Pix[i]-ycc.Plane(0)[i]) > 1e-12 {
			t.Fatalf("gray != luma at %d", i)
		}
	}
}

// TestYCCRangeBounded: for RGB inputs in [0,1], all YCC samples stay within
// [0,1] — required for the signature epsilons to be scale-comparable.
func TestYCCRangeBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := randomRGB(rng, 4, 4)
		conv, err := FromRGB(im, YCC)
		if err != nil {
			return false
		}
		for _, v := range conv.Pix {
			if v < -1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestKnownColorsYCC: pure white and black map to the expected luma/chroma.
func TestKnownColorsYCC(t *testing.T) {
	im := imgio.New(2, 1, 3)
	im.SetRGB(0, 0, 1, 1, 1) // white
	im.SetRGB(1, 0, 0, 0, 0) // black
	conv, err := FromRGB(im, YCC)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(conv.At(0, 0, 0)-1) > 1e-9 || math.Abs(conv.At(1, 0, 0)-0.5) > 1e-9 || math.Abs(conv.At(2, 0, 0)-0.5) > 1e-9 {
		t.Errorf("white YCC = %v,%v,%v", conv.At(0, 0, 0), conv.At(1, 0, 0), conv.At(2, 0, 0))
	}
	if math.Abs(conv.At(0, 1, 0)) > 1e-9 || math.Abs(conv.At(1, 1, 0)-0.5) > 1e-9 {
		t.Errorf("black YCC = %v,%v", conv.At(0, 1, 0), conv.At(1, 1, 0))
	}
}

// TestHSVKnownColors: primary red has hue 0, full saturation and value.
func TestHSVKnownColors(t *testing.T) {
	im := imgio.New(3, 1, 3)
	im.SetRGB(0, 0, 1, 0, 0)       // red
	im.SetRGB(1, 0, 0, 1, 0)       // green
	im.SetRGB(2, 0, 0.5, 0.5, 0.5) // gray
	conv, err := FromRGB(im, HSV)
	if err != nil {
		t.Fatal(err)
	}
	if conv.At(0, 0, 0) != 0 || conv.At(1, 0, 0) != 1 || conv.At(2, 0, 0) != 1 {
		t.Errorf("red HSV = %v,%v,%v", conv.At(0, 0, 0), conv.At(1, 0, 0), conv.At(2, 0, 0))
	}
	if math.Abs(conv.At(0, 1, 0)-1.0/3) > 1e-9 {
		t.Errorf("green hue = %v, want 1/3", conv.At(0, 1, 0))
	}
	if conv.At(1, 2, 0) != 0 {
		t.Errorf("gray saturation = %v, want 0", conv.At(1, 2, 0))
	}
}

func TestFromRGBErrors(t *testing.T) {
	if _, err := FromRGB(imgio.New(2, 2, 1), YCC); err == nil {
		t.Error("FromRGB accepted 1-channel input")
	}
	if _, err := ToRGB(imgio.New(2, 2, 3), Gray); err == nil {
		t.Error("ToRGB accepted channel mismatch")
	}
}

// TestGrayToRGBReplicates: converting gray back to RGB replicates channels.
func TestGrayToRGBReplicates(t *testing.T) {
	g := imgio.New(2, 1, 1)
	g.Pix = []float64{0.25, 0.75}
	rgb, err := ToRGB(g, Gray)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 2; x++ {
		if rgb.At(0, x, 0) != rgb.At(1, x, 0) || rgb.At(1, x, 0) != rgb.At(2, x, 0) {
			t.Fatal("gray expansion not replicated")
		}
	}
}
