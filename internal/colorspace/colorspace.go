// Package colorspace converts planar float images between the color spaces
// the WALRUS implementation handles (Section 6.1 mentions YCC and RGB; the
// paper's infrastructure, ImageMagick, also supported XYZ, YIQ, YUV and
// HSV, which we provide for parity). All conversions operate on samples
// nominally in [0,1] per channel; chroma channels are offset so they also
// land in [0,1], keeping euclidean signature distances comparable across
// spaces.
package colorspace

import (
	"fmt"

	"walrus/internal/imgio"
)

// Space identifies a color space.
type Space int

const (
	RGB Space = iota
	YCC       // ITU-R BT.601 YCbCr, the paper's primary space
	YIQ
	YUV
	HSV
	XYZ
	Gray
)

var names = map[Space]string{
	RGB: "RGB", YCC: "YCC", YIQ: "YIQ", YUV: "YUV", HSV: "HSV", XYZ: "XYZ", Gray: "Gray",
}

func (s Space) String() string {
	if n, ok := names[s]; ok {
		return n
	}
	return fmt.Sprintf("Space(%d)", int(s))
}

// Parse maps a case-sensitive space name ("RGB", "YCC", ...) to a Space.
func Parse(name string) (Space, error) {
	for s, n := range names {
		if n == name {
			return s, nil
		}
	}
	return RGB, fmt.Errorf("colorspace: unknown space %q", name)
}

// Channels returns the channel count of images in this space.
func (s Space) Channels() int {
	if s == Gray {
		return 1
	}
	return 3
}

// FromRGB converts a 3-channel RGB image to the target space. The input is
// not modified. Converting to RGB returns a clone.
func FromRGB(im *imgio.Image, to Space) (*imgio.Image, error) {
	if im.C != 3 {
		return nil, fmt.Errorf("colorspace: FromRGB requires 3 channels, got %d", im.C)
	}
	if to == RGB {
		return im.Clone(), nil
	}
	out := imgio.New(im.W, im.H, to.Channels())
	n := im.W * im.H
	r, g, b := im.Plane(0), im.Plane(1), im.Plane(2)
	for i := 0; i < n; i++ {
		switch to {
		case Gray:
			out.Pix[i] = 0.299*r[i] + 0.587*g[i] + 0.114*b[i]
		case YCC:
			y, cb, cr := rgbToYCC(r[i], g[i], b[i])
			out.Pix[i], out.Pix[n+i], out.Pix[2*n+i] = y, cb, cr
		case YIQ:
			y := 0.299*r[i] + 0.587*g[i] + 0.114*b[i]
			iq := 0.595716*r[i] - 0.274453*g[i] - 0.321263*b[i]
			q := 0.211456*r[i] - 0.522591*g[i] + 0.311135*b[i]
			// I in [-0.596, 0.596], Q in [-0.523, 0.523]; center on 0.5.
			out.Pix[i], out.Pix[n+i], out.Pix[2*n+i] = y, iq/1.2+0.5, q/1.1+0.5
		case YUV:
			y := 0.299*r[i] + 0.587*g[i] + 0.114*b[i]
			u := 0.492 * (b[i] - y)
			v := 0.877 * (r[i] - y)
			out.Pix[i], out.Pix[n+i], out.Pix[2*n+i] = y, u/0.872+0.5, v/1.23+0.5
		case HSV:
			h, s, v := rgbToHSV(r[i], g[i], b[i])
			out.Pix[i], out.Pix[n+i], out.Pix[2*n+i] = h, s, v
		case XYZ:
			// sRGB primaries, linear-light approximation (no gamma), scaled
			// so white maps near 1.
			x := 0.4124*r[i] + 0.3576*g[i] + 0.1805*b[i]
			y := 0.2126*r[i] + 0.7152*g[i] + 0.0722*b[i]
			z := 0.0193*r[i] + 0.1192*g[i] + 0.9505*b[i]
			out.Pix[i], out.Pix[n+i], out.Pix[2*n+i] = x/0.9505, y, z/1.089
		default:
			return nil, fmt.Errorf("colorspace: unsupported target %v", to)
		}
	}
	return out, nil
}

// ToRGB converts an image in the given space back to RGB.
func ToRGB(im *imgio.Image, from Space) (*imgio.Image, error) {
	if from == RGB {
		return im.Clone(), nil
	}
	if im.C != from.Channels() {
		return nil, fmt.Errorf("colorspace: image has %d channels, %v needs %d", im.C, from, from.Channels())
	}
	out := imgio.New(im.W, im.H, 3)
	n := im.W * im.H
	for i := 0; i < n; i++ {
		var r, g, b float64
		switch from {
		case Gray:
			r = im.Pix[i]
			g, b = r, r
		case YCC:
			r, g, b = yccToRGB(im.Pix[i], im.Pix[n+i], im.Pix[2*n+i])
		case YIQ:
			y := im.Pix[i]
			iq := (im.Pix[n+i] - 0.5) * 1.2
			q := (im.Pix[2*n+i] - 0.5) * 1.1
			r = y + 0.9563*iq + 0.6210*q
			g = y - 0.2721*iq - 0.6474*q
			b = y - 1.1070*iq + 1.7046*q
		case YUV:
			y := im.Pix[i]
			u := (im.Pix[n+i] - 0.5) * 0.872
			v := (im.Pix[2*n+i] - 0.5) * 1.23
			r = y + v/0.877
			b = y + u/0.492
			g = (y - 0.299*r - 0.114*b) / 0.587
		case HSV:
			r, g, b = hsvToRGB(im.Pix[i], im.Pix[n+i], im.Pix[2*n+i])
		case XYZ:
			x := im.Pix[i] * 0.9505
			y := im.Pix[n+i]
			z := im.Pix[2*n+i] * 1.089
			r = 3.2406*x - 1.5372*y - 0.4986*z
			g = -0.9689*x + 1.8758*y + 0.0415*z
			b = 0.0557*x - 0.2040*y + 1.0570*z
		default:
			return nil, fmt.Errorf("colorspace: unsupported source %v", from)
		}
		out.Pix[i], out.Pix[n+i], out.Pix[2*n+i] = r, g, b
	}
	return out, nil
}

// rgbToYCC implements ITU-R BT.601 with chroma centered on 0.5.
func rgbToYCC(r, g, b float64) (y, cb, cr float64) {
	y = 0.299*r + 0.587*g + 0.114*b
	cb = 0.5 - 0.168736*r - 0.331264*g + 0.5*b
	cr = 0.5 + 0.5*r - 0.418688*g - 0.081312*b
	return
}

func yccToRGB(y, cb, cr float64) (r, g, b float64) {
	r = y + 1.402*(cr-0.5)
	g = y - 0.344136*(cb-0.5) - 0.714136*(cr-0.5)
	b = y + 1.772*(cb-0.5)
	return
}

func rgbToHSV(r, g, b float64) (h, s, v float64) {
	maxv := max(r, max(g, b))
	minv := min(r, min(g, b))
	v = maxv
	d := maxv - minv
	if maxv > 0 {
		s = d / maxv
	}
	if d == 0 {
		return 0, s, v
	}
	switch maxv {
	case r:
		h = (g - b) / d
		if h < 0 {
			h += 6
		}
	case g:
		h = (b-r)/d + 2
	default:
		h = (r-g)/d + 4
	}
	h /= 6
	return
}

func hsvToRGB(h, s, v float64) (r, g, b float64) {
	if s == 0 {
		return v, v, v
	}
	h = h * 6
	if h >= 6 {
		h -= 6
	}
	i := int(h)
	f := h - float64(i)
	p := v * (1 - s)
	q := v * (1 - s*f)
	t := v * (1 - s*(1-f))
	switch i {
	case 0:
		return v, t, p
	case 1:
		return q, v, p
	case 2:
		return p, v, t
	case 3:
		return p, q, v
	case 4:
		return t, p, v
	default:
		return v, p, q
	}
}
