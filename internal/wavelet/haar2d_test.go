package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, size int) Matrix {
	m := NewMatrix(size, size)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

func TestTransform2DRejectsBadShapes(t *testing.T) {
	for _, dims := range [][2]int{{3, 3}, {2, 4}, {0, 0}, {1, 1}, {6, 6}} {
		m := NewMatrix(dims[0], dims[1])
		if _, err := Transform2D(m); err == nil {
			t.Errorf("Transform2D accepted %dx%d", dims[0], dims[1])
		}
		if _, err := Inverse2D(m); err == nil {
			t.Errorf("Inverse2D accepted %dx%d", dims[0], dims[1])
		}
	}
}

// TestTransform2DAverage: coefficient (0,0) is the overall pixel average.
func TestTransform2DAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, size := range []int{2, 4, 8, 32} {
		m := randomMatrix(rng, size)
		sum := 0.0
		for _, v := range m.Data {
			sum += v
		}
		coeffs, err := Transform2D(m)
		if err != nil {
			t.Fatal(err)
		}
		if want := sum / float64(size*size); !almostEqual(coeffs.At(0, 0), want) {
			t.Fatalf("size %d: coeff(0,0) = %v, want %v", size, coeffs.At(0, 0), want)
		}
	}
}

// TestTransform2DHandComputed verifies a 2x2 transform against hand
// calculation with the paper's averaging-and-differencing step.
func TestTransform2DHandComputed(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1) // p00
	m.Set(0, 1, 3) // p01 (right neighbor)
	m.Set(1, 0, 5) // p10 (below)
	m.Set(1, 1, 7)
	coeffs, err := Transform2D(m)
	if err != nil {
		t.Fatal(err)
	}
	// average = 4; horizontal = (-1+3-5+7)/4 = 1; vertical = (-1-3+5+7)/4 = 2;
	// diagonal = (1-3-5+7)/4 = 0.
	checks := []struct {
		r, c int
		want float64
	}{{0, 0, 4}, {0, 1, 1}, {1, 0, 2}, {1, 1, 0}}
	for _, ck := range checks {
		if got := coeffs.At(ck.r, ck.c); !almostEqual(got, ck.want) {
			t.Errorf("coeff(%d,%d) = %v, want %v", ck.r, ck.c, got, ck.want)
		}
	}
}

// TestInverse2DRoundTrip: Inverse2D(Transform2D(m)) == m.
func TestInverse2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, size := range []int{2, 4, 8, 16, 64} {
		m := randomMatrix(rng, size)
		coeffs, err := Transform2D(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Inverse2D(coeffs)
		if err != nil {
			t.Fatal(err)
		}
		if !slicesAlmostEqual(back.Data, m.Data) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

// TestTransform2DConstantImage: a flat image transforms to a single average
// with all-zero details.
func TestTransform2DConstantImage(t *testing.T) {
	m := NewMatrix(16, 16)
	for i := range m.Data {
		m.Data[i] = 0.5
	}
	coeffs, err := Transform2D(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range coeffs.Data {
		want := 0.0
		if i == 0 {
			want = 0.5
		}
		if !almostEqual(v, want) {
			t.Fatalf("coefficient %d = %v, want %v", i, v, want)
		}
	}
}

// TestNormalize2DRoundTrip: Denormalize2D(Normalize2D(m)) == m.
func TestNormalize2DRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 << (1 + rng.Intn(5))
		m := randomMatrix(rng, size)
		orig := m.Clone()
		Denormalize2D(Normalize2D(m))
		return slicesAlmostEqual(m.Data, orig.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestNormalize2DPreservesCoarseBand: the overall average and the three
// level-0 details are unchanged by normalization.
func TestNormalize2DPreservesCoarseBand(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(rng, 8)
	coeffs, err := Transform2D(m)
	if err != nil {
		t.Fatal(err)
	}
	orig := coeffs.Clone()
	Normalize2D(coeffs)
	for _, rc := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		if !almostEqual(coeffs.At(rc[0], rc[1]), orig.At(rc[0], rc[1])) {
			t.Errorf("coefficient (%d,%d) changed by normalization", rc[0], rc[1])
		}
	}
	// The finest band (level log2(8)-1 = 2) must be divided by 2^2 = 4.
	if want := orig.At(0, 4) / 4; !almostEqual(coeffs.At(0, 4), want) {
		t.Errorf("finest-band coefficient = %v, want %v", coeffs.At(0, 4), want)
	}
}

// TestTransform2DUpperLeftIsBlockAverageTransform: the top-left s×s corner
// of the transform of a w×w image equals the full transform of the s×s
// matrix of (w/s)×(w/s) block averages. This is the property that makes the
// low-band signature scale-invariant and underlies the DP algorithm.
func TestTransform2DUpperLeftIsBlockAverageTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const w, s = 32, 4
	m := randomMatrix(rng, w)
	full, err := Transform2D(m)
	if err != nil {
		t.Fatal(err)
	}
	block := w / s
	avg := NewMatrix(s, s)
	for r := 0; r < s; r++ {
		for c := 0; c < s; c++ {
			sum := 0.0
			for dr := 0; dr < block; dr++ {
				for dc := 0; dc < block; dc++ {
					sum += m.At(r*block+dr, c*block+dc)
				}
			}
			avg.Set(r, c, sum/float64(block*block))
		}
	}
	small, err := Transform2D(avg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < s; r++ {
		for c := 0; c < s; c++ {
			if !almostEqual(full.At(r, c), small.At(r, c)) {
				t.Fatalf("corner(%d,%d): full %v vs block-average %v", r, c, full.At(r, c), small.At(r, c))
			}
		}
	}
}

// TestTruncateTopKReconstruction: reconstruction error decreases
// monotonically as more coefficients are kept, reaching zero at full rank
// (the lossy-compression property of Section 3.1).
func TestTruncateTopKReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomMatrix(rng, 16)
	full, err := Transform2D(m)
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(k int) float64 {
		c := full.Clone()
		TruncateTopK(c, k)
		back, err := Inverse2D(c)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := range back.Data {
			d := back.Data[i] - m.Data[i]
			sum += d * d
		}
		return sum
	}
	prev := math.Inf(1)
	for _, k := range []int{1, 8, 32, 128, 256} {
		e := errAt(k)
		if e > prev+1e-12 {
			t.Fatalf("error grew when keeping more coefficients: k=%d err=%v prev=%v", k, e, prev)
		}
		prev = e
	}
	if final := errAt(256); final > 1e-18 {
		t.Fatalf("full-rank reconstruction error %v", final)
	}
	// The average is always kept.
	c := full.Clone()
	if kept := TruncateTopK(c, 1); kept != 1 {
		t.Fatalf("kept %d, want 1", kept)
	}
	if c.At(0, 0) != full.At(0, 0) {
		t.Fatal("average dropped")
	}
	if got := TruncateTopK(full.Clone(), 0); got != 1 {
		t.Fatalf("k=0 kept %d", got)
	}
}
