//walrus:lint-hot sliding-window DP is the per-image signature hot path
package wavelet

import (
	"fmt"

	"walrus/internal/parallel"
)

// SlidingParams configures sliding-window signature computation
// (procedure computeSlidingWindows, Figure 5 of the paper).
type SlidingParams struct {
	// MaxWindow is ωmax, the largest window side. Signatures are produced
	// for every window size 2, 4, ..., MaxWindow. Must be a power of two.
	MaxWindow int
	// Signature is s, the side of the retained low-frequency signature
	// block: each window keeps the top-left min(ω, s) × min(ω, s) corner of
	// its wavelet transform. Must be a power of two.
	Signature int
	// Step is t, the nominal horizontal/vertical distance between the
	// top-left corners of adjacent windows. The effective distance for
	// window size ω is min(ω, t), which keeps subwindow positions aligned
	// with the previous level. Must be a power of two.
	Step int
	// Workers bounds the goroutines the DP fans each level's window rows
	// across: 0 uses GOMAXPROCS, 1 reproduces the serial computation.
	// Every window's signature is assembled independently from the
	// previous level, so the output is bitwise identical for any setting.
	Workers int
}

// Validate checks that all parameters are powers of two within sane bounds.
func (p SlidingParams) Validate() error {
	switch {
	case !isPow2(p.MaxWindow) || p.MaxWindow < 2:
		return fmt.Errorf("wavelet: MaxWindow %d must be a power of two >= 2", p.MaxWindow)
	case !isPow2(p.Signature) || p.Signature < 1:
		return fmt.Errorf("wavelet: Signature %d must be a power of two >= 1", p.Signature)
	case p.Signature > p.MaxWindow:
		return fmt.Errorf("wavelet: Signature %d exceeds MaxWindow %d", p.Signature, p.MaxWindow)
	case !isPow2(p.Step) || p.Step < 1:
		return fmt.Errorf("wavelet: Step %d must be a power of two >= 1", p.Step)
	case p.Workers < 0:
		return fmt.Errorf("wavelet: negative Workers %d", p.Workers)
	}
	return nil
}

// minParallelWindows is the smallest per-level window count worth fanning
// across goroutines; below it the DP runs the level serially.
const minParallelWindows = 256

// Grid holds the signatures of all ω×ω windows of one window size, laid out
// on the regular grid of window positions.
type Grid struct {
	Window int // ω
	Sig    int // side of each stored signature block: min(ω, s)
	Step   int // distance between adjacent windows: min(ω, t)
	NX, NY int // number of window positions horizontally / vertically
	// Data stores NY*NX signature blocks of Sig*Sig values each, row-major
	// over (iy, ix) and then row-major within the block.
	Data []float64
}

// SigAt returns the signature block of the window whose grid position is
// (ix, iy); its top-left pixel is (ix*Step, iy*Step). The returned slice
// aliases the grid's backing array.
func (g *Grid) SigAt(ix, iy int) []float64 {
	blk := g.Sig * g.Sig
	off := (iy*g.NX + ix) * blk
	return g.Data[off : off+blk]
}

// PosOf returns the top-left pixel coordinates of grid position (ix, iy).
func (g *Grid) PosOf(ix, iy int) (x, y int) { return ix * g.Step, iy * g.Step }

// Pyramid is the full output of sliding-window signature computation: one
// Grid per window size 2, 4, ..., MaxWindow.
type Pyramid struct {
	ImageW, ImageH int
	Params         SlidingParams
	levels         map[int]*Grid
}

// Level returns the grid for window size ω, or nil if that size was not
// computed (ω out of range or larger than the image).
func (p *Pyramid) Level(window int) *Grid { return p.levels[window] }

// Sizes returns the window sizes present in the pyramid, in increasing
// order.
func (p *Pyramid) Sizes() []int {
	var out []int
	for w := 2; w <= p.Params.MaxWindow; w *= 2 {
		if p.levels[w] != nil {
			out = append(out, w)
		}
	}
	return out
}

// ComputeSlidingWindows computes signatures for every sliding window with a
// power-of-two size between 2×2 and MaxWindow×MaxWindow in an imgW×imgH
// single-channel image, using the dynamic programming algorithm of Figure 5:
// the transform of each ω×ω window is assembled from the transforms of its
// four ω/2×ω/2 subwindows, so the total cost is O(N·s²·log ωmax) rather
// than the naive O(N·ω²max).
//
// plane is the image in row-major order (len == imgW*imgH).
func ComputeSlidingWindows(plane []float64, imgW, imgH int, params SlidingParams) (*Pyramid, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(plane) != imgW*imgH {
		return nil, fmt.Errorf("wavelet: plane has %d values, want %d (%dx%d)", len(plane), imgW*imgH, imgW, imgH)
	}
	pyr := &Pyramid{ImageW: imgW, ImageH: imgH, Params: params, levels: make(map[int]*Grid)}
	var prev *Grid
	for win := 2; win <= params.MaxWindow; win *= 2 {
		if win > imgW || win > imgH {
			break
		}
		dist := min(win, params.Step)
		sig := min(win, params.Signature)
		g := &Grid{
			Window: win,
			Sig:    sig,
			Step:   dist,
			NX:     (imgW-win)/dist + 1,
			NY:     (imgH-win)/dist + 1,
		}
		g.Data = make([]float64, g.NX*g.NY*sig*sig)
		half := win / 2
		src := prev
		row := func(iy int) {
			for ix := 0; ix < g.NX; ix++ {
				x, y := g.PosOf(ix, iy)
				dst := g.SigAt(ix, iy)
				if win == 2 {
					// Base level: 1×1 "signatures" are the raw pixels.
					a1 := plane[y*imgW+x]
					a2 := plane[y*imgW+x+1]
					a3 := plane[(y+1)*imgW+x]
					a4 := plane[(y+1)*imgW+x+1]
					combineBase(a1, a2, a3, a4, dst, sig)
					continue
				}
				w1 := src.SigAt((x)/src.Step, (y)/src.Step)
				w2 := src.SigAt((x+half)/src.Step, (y)/src.Step)
				w3 := src.SigAt((x)/src.Step, (y+half)/src.Step)
				w4 := src.SigAt((x+half)/src.Step, (y+half)/src.Step)
				assemble(w1, w2, w3, w4, src.Sig, dst, sig, sig)
			}
		}
		// Rows of one level only read the (already complete) previous level
		// and write disjoint slices of g.Data, so they fan out freely. Tiny
		// levels stay serial: goroutine dispatch would dominate the work.
		workers := params.Workers
		if g.NX*g.NY < minParallelWindows {
			workers = 1
		}
		parallel.For(g.NY, workers, row)
		pyr.levels[win] = g
		prev = g
	}
	if len(pyr.levels) == 0 {
		return nil, fmt.Errorf("wavelet: image %dx%d too small for any window", imgW, imgH)
	}
	return pyr, nil
}

// combineBase performs one round of horizontal and vertical averaging and
// differencing on four scalar averages (the base case of procedure
// computeSingleWindow, Figure 4). sig is 1 or 2: for sig 1 only the overall
// average is kept.
func combineBase(a1, a2, a3, a4 float64, dst []float64, sig int) {
	if sig == 1 {
		dst[0] = (a1 + a2 + a3 + a4) / 4
		return
	}
	dst[0] = (a1 + a2 + a3 + a4) / 4
	dst[1] = (-a1 + a2 - a3 + a4) / 4 // horizontal detail
	dst[sig] = (-a1 - a2 + a3 + a4) / 4
	dst[sig+1] = (a1 - a2 - a3 + a4) / 4
}

// assemble implements procedures computeSingleWindow and copyBlocks
// (Figures 3 and 4): it fills the top-left q×q corner of dst (a block with
// row stride dstStride) with the wavelet transform of the parent window's
// averages, given the four children's stored signature blocks w1..w4 (each
// with row stride childStride, of which the top-left q/2×q/2 corner is
// consumed). Children are ordered top-left, top-right, bottom-left,
// bottom-right.
func assemble(w1, w2, w3, w4 []float64, childStride int, dst []float64, dstStride, q int) {
	if q == 1 {
		dst[0] = (w1[0] + w2[0] + w3[0] + w4[0]) / 4
		return
	}
	if q == 2 {
		combineBase(w1[0], w2[0], w3[0], w4[0], dst, dstStride)
		return
	}
	h := q / 2  // quadrant side in dst
	hq := q / 4 // quadrant side contributed by each child
	// copyBlocks: tile the three detail quadrants of dst from the
	// corresponding detail quadrants of the children.
	copyQuad := func(src []float64, srcR, srcC, dstR, dstC int) {
		for r := 0; r < hq; r++ {
			srcOff := (srcR+r)*childStride + srcC
			dstOff := (dstR+r)*dstStride + dstC
			copy(dst[dstOff:dstOff+hq], src[srcOff:srcOff+hq])
		}
	}
	// Child detail quadrants live at rows/cols [0,hq) and [hq,2hq) within
	// the child's top-left 2hq×2hq effective transform.
	// Upper-right quadrant of dst (horizontal details).
	copyQuad(w1, 0, hq, 0, h)
	copyQuad(w2, 0, hq, 0, h+hq)
	copyQuad(w3, 0, hq, hq, h)
	copyQuad(w4, 0, hq, hq, h+hq)
	// Lower-left quadrant (vertical details).
	copyQuad(w1, hq, 0, h, 0)
	copyQuad(w2, hq, 0, h, hq)
	copyQuad(w3, hq, 0, h+hq, 0)
	copyQuad(w4, hq, 0, h+hq, hq)
	// Lower-right quadrant (diagonal details).
	copyQuad(w1, hq, hq, h, h)
	copyQuad(w2, hq, hq, h, h+hq)
	copyQuad(w3, hq, hq, h+hq, h)
	copyQuad(w4, hq, hq, h+hq, h+hq)
	assemble(w1, w2, w3, w4, childStride, dst, dstStride, h)
}

// NaiveSlidingWindows computes the same pyramid as ComputeSlidingWindows by
// independently applying the full two-dimensional Haar transform to each
// window (the naive scheme the paper compares against in Section 6.3). Its
// cost is O(ω² ) per window.
func NaiveSlidingWindows(plane []float64, imgW, imgH int, params SlidingParams) (*Pyramid, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(plane) != imgW*imgH {
		return nil, fmt.Errorf("wavelet: plane has %d values, want %d (%dx%d)", len(plane), imgW*imgH, imgW, imgH)
	}
	pyr := &Pyramid{ImageW: imgW, ImageH: imgH, Params: params, levels: make(map[int]*Grid)}
	for win := 2; win <= params.MaxWindow; win *= 2 {
		if win > imgW || win > imgH {
			break
		}
		dist := min(win, params.Step)
		sig := min(win, params.Signature)
		g := &Grid{
			Window: win,
			Sig:    sig,
			Step:   dist,
			NX:     (imgW-win)/dist + 1,
			NY:     (imgH-win)/dist + 1,
		}
		g.Data = make([]float64, g.NX*g.NY*sig*sig)
		scratch := NewMatrix(win, win)
		for iy := 0; iy < g.NY; iy++ {
			for ix := 0; ix < g.NX; ix++ {
				x, y := g.PosOf(ix, iy)
				for r := 0; r < win; r++ {
					copy(scratch.Data[r*win:(r+1)*win], plane[(y+r)*imgW+x:(y+r)*imgW+x+win])
				}
				coeffs, err := Transform2D(scratch)
				if err != nil {
					return nil, err
				}
				dst := g.SigAt(ix, iy)
				for r := 0; r < sig; r++ {
					copy(dst[r*sig:(r+1)*sig], coeffs.Data[r*win:r*win+sig])
				}
			}
		}
		pyr.levels[win] = g
	}
	if len(pyr.levels) == 0 {
		return nil, fmt.Errorf("wavelet: image %dx%d too small for any window", imgW, imgH)
	}
	return pyr, nil
}

// NaiveWindowSignatures computes signatures for the sliding windows of a
// single window size by applying the full two-dimensional transform to
// each window independently — the literal naive scheme of Section 6.3,
// whose cost O(N·ω²) is independent of the signature size. (The DP
// algorithm has no single-size variant: it inherently builds every smaller
// size on the way up, which is exactly the trade the paper measures.)
func NaiveWindowSignatures(plane []float64, imgW, imgH, window, sig, step int) (*Grid, error) {
	if !isPow2(window) || window < 2 {
		return nil, fmt.Errorf("wavelet: window %d must be a power of two >= 2", window)
	}
	if !isPow2(step) || step < 1 {
		return nil, fmt.Errorf("wavelet: step %d must be a power of two >= 1", step)
	}
	if window > imgW || window > imgH {
		return nil, fmt.Errorf("wavelet: window %d exceeds image %dx%d", window, imgW, imgH)
	}
	if len(plane) != imgW*imgH {
		return nil, fmt.Errorf("wavelet: plane has %d values, want %d (%dx%d)", len(plane), imgW*imgH, imgW, imgH)
	}
	dist := min(window, step)
	s := min(window, sig)
	g := &Grid{
		Window: window,
		Sig:    s,
		Step:   dist,
		NX:     (imgW-window)/dist + 1,
		NY:     (imgH-window)/dist + 1,
	}
	g.Data = make([]float64, g.NX*g.NY*s*s)
	scratch := NewMatrix(window, window)
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			x, y := g.PosOf(ix, iy)
			for r := 0; r < window; r++ {
				copy(scratch.Data[r*window:(r+1)*window], plane[(y+r)*imgW+x:(y+r)*imgW+x+window])
			}
			coeffs, err := Transform2D(scratch)
			if err != nil {
				return nil, err
			}
			dst := g.SigAt(ix, iy)
			for r := 0; r < s; r++ {
				copy(dst[r*s:(r+1)*s], coeffs.Data[r*window:r*window+s])
			}
		}
	}
	return g, nil
}

// WindowSignature computes the s×s low-frequency signature of the single
// ω×ω window rooted at pixel (x, y), by direct transform. It is a
// convenience for tests and for callers that need one window only.
func WindowSignature(plane []float64, imgW, imgH, x, y, window, sig int) ([]float64, error) {
	if !isPow2(window) || window < 2 {
		return nil, fmt.Errorf("wavelet: window %d must be a power of two >= 2", window)
	}
	if x < 0 || y < 0 || x+window > imgW || y+window > imgH {
		return nil, fmt.Errorf("wavelet: window %d at (%d,%d) exceeds image %dx%d", window, x, y, imgW, imgH)
	}
	s := min(window, sig)
	scratch := NewMatrix(window, window)
	for r := 0; r < window; r++ {
		copy(scratch.Data[r*window:(r+1)*window], plane[(y+r)*imgW+x:(y+r)*imgW+x+window])
	}
	coeffs, err := Transform2D(scratch)
	if err != nil {
		return nil, err
	}
	out := make([]float64, s*s)
	for r := 0; r < s; r++ {
		copy(out[r*s:(r+1)*s], coeffs.Data[r*window:r*window+s])
	}
	return out, nil
}
