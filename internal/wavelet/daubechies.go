package wavelet

import (
	"fmt"
	"math"
)

// Daubechies-4 scaling filter coefficients.
var (
	d4h = [4]float64{
		(1 + math.Sqrt(3)) / (4 * math.Sqrt2),
		(3 + math.Sqrt(3)) / (4 * math.Sqrt2),
		(3 - math.Sqrt(3)) / (4 * math.Sqrt2),
		(1 - math.Sqrt(3)) / (4 * math.Sqrt2),
	}
	// Wavelet (detail) filter: g[i] = (-1)^i h[3-i].
	d4g = [4]float64{d4h[3], -d4h[2], d4h[1], -d4h[0]}
)

// daub4Step applies one level of the Daubechies-4 transform to data[0:n]
// with periodic boundary handling, writing n/2 smooth coefficients followed
// by n/2 detail coefficients back into data. n must be even and >= 4.
func daub4Step(data, tmp []float64, n int) {
	half := n / 2
	for k := 0; k < half; k++ {
		var s, d float64
		for i := 0; i < 4; i++ {
			v := data[(2*k+i)%n]
			s += d4h[i] * v
			d += d4g[i] * v
		}
		tmp[k] = s
		tmp[half+k] = d
	}
	copy(data[:n], tmp[:n])
}

// daub4InverseStep undoes one daub4Step level.
func daub4InverseStep(data, tmp []float64, n int) {
	half := n / 2
	for i := 0; i < n; i++ {
		tmp[i] = 0
	}
	for k := 0; k < half; k++ {
		s, d := data[k], data[half+k]
		for i := 0; i < 4; i++ {
			tmp[(2*k+i)%n] += d4h[i]*s + d4g[i]*d
		}
	}
	copy(data[:n], tmp[:n])
}

// DaubechiesTransform2D applies `levels` levels of a separable
// Daubechies-4 wavelet transform (Mallat decomposition: rows then columns
// at each level, recursing on the low-low band) to a square power-of-two
// matrix. It is used by the WBIIS baseline, which compares feature vectors
// derived from 4- and 5-level Daubechies transforms. The input is not
// modified.
func DaubechiesTransform2D(m Matrix, levels int) (Matrix, error) {
	if !m.IsSquarePow2() {
		return Matrix{}, fmt.Errorf("wavelet: DaubechiesTransform2D requires a square power-of-two matrix, got %dx%d", m.Rows, m.Cols)
	}
	w := m.Rows
	if levels < 1 || w>>levels < 2 {
		return Matrix{}, fmt.Errorf("wavelet: %d levels is invalid for a %dx%d matrix", levels, w, w)
	}
	out := m.Clone()
	row := make([]float64, w)
	tmp := make([]float64, w)
	size := w
	for l := 0; l < levels; l++ {
		// Rows.
		for r := 0; r < size; r++ {
			copy(row[:size], out.Data[r*w:r*w+size])
			daub4Step(row, tmp, size)
			copy(out.Data[r*w:r*w+size], row[:size])
		}
		// Columns.
		for c := 0; c < size; c++ {
			for r := 0; r < size; r++ {
				row[r] = out.At(r, c)
			}
			daub4Step(row, tmp, size)
			for r := 0; r < size; r++ {
				out.Set(r, c, row[r])
			}
		}
		size /= 2
	}
	return out, nil
}

// DaubechiesInverse2D undoes DaubechiesTransform2D with the same number of
// levels.
func DaubechiesInverse2D(m Matrix, levels int) (Matrix, error) {
	if !m.IsSquarePow2() {
		return Matrix{}, fmt.Errorf("wavelet: DaubechiesInverse2D requires a square power-of-two matrix, got %dx%d", m.Rows, m.Cols)
	}
	w := m.Rows
	if levels < 1 || w>>levels < 2 {
		return Matrix{}, fmt.Errorf("wavelet: %d levels is invalid for a %dx%d matrix", levels, w, w)
	}
	out := m.Clone()
	row := make([]float64, w)
	tmp := make([]float64, w)
	for l := levels - 1; l >= 0; l-- {
		size := w >> l
		// Columns first (reverse of forward order).
		for c := 0; c < size; c++ {
			for r := 0; r < size; r++ {
				row[r] = out.At(r, c)
			}
			daub4InverseStep(row, tmp, size)
			for r := 0; r < size; r++ {
				out.Set(r, c, row[r])
			}
		}
		// Rows.
		for r := 0; r < size; r++ {
			copy(row[:size], out.Data[r*w:r*w+size])
			daub4InverseStep(row, tmp, size)
			copy(out.Data[r*w:r*w+size], row[:size])
		}
	}
	return out, nil
}
