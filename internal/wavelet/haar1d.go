package wavelet

import (
	"fmt"
	"math"
)

// Transform1D computes the one-dimensional Haar wavelet transform of data
// using the averaging convention of Section 3.1 of the WALRUS paper: each
// pass replaces pairs (a, b) by their average (a+b)/2 and the detail
// coefficient (b-a)/2, recursing on the averages. The result is laid out as
// [overall average, detail of coarsest level, ..., details of finest level],
// i.e. [2,2,5,7] transforms to [4,2,0,1].
//
// len(data) must be a power of two. The input slice is not modified.
func Transform1D(data []float64) ([]float64, error) {
	n := len(data)
	if !isPow2(n) {
		return nil, fmt.Errorf("wavelet: length %d is not a power of two", n)
	}
	out := make([]float64, n)
	copy(out, data)
	tmp := make([]float64, n)
	for cur := n; cur > 1; cur /= 2 {
		half := cur / 2
		for i := 0; i < half; i++ {
			a, b := out[2*i], out[2*i+1]
			tmp[i] = (a + b) / 2
			tmp[half+i] = (b - a) / 2
		}
		copy(out[:cur], tmp[:cur])
	}
	return out, nil
}

// Inverse1D reconstructs the original signal from a transform produced by
// Transform1D. len(coeffs) must be a power of two.
func Inverse1D(coeffs []float64) ([]float64, error) {
	n := len(coeffs)
	if !isPow2(n) {
		return nil, fmt.Errorf("wavelet: length %d is not a power of two", n)
	}
	out := make([]float64, n)
	copy(out, coeffs)
	tmp := make([]float64, n)
	for half := 1; half < n; half *= 2 {
		cur := half * 2
		for i := 0; i < half; i++ {
			avg, det := out[i], out[half+i]
			tmp[2*i] = avg - det
			tmp[2*i+1] = avg + det
		}
		copy(out[:cur], tmp[:cur])
	}
	return out, nil
}

// Normalize1D scales the detail coefficients of a Transform1D result so
// that all coefficients carry equal importance, per Section 3.1: the detail
// band at resolution level j (level 0 being the coarsest detail band, with
// finer bands at increasing j) is divided by sqrt(2)^j. The overall average
// is left unchanged, so [4,2,0,1] normalizes to [4,2,0,1/sqrt(2)].
//
// The slice is modified in place and also returned for convenience.
func Normalize1D(coeffs []float64) []float64 {
	n := len(coeffs)
	level := 0
	for lo := 1; lo < n; lo *= 2 {
		factor := math.Pow(math.Sqrt2, float64(level))
		for i := lo; i < lo*2 && i < n; i++ {
			coeffs[i] /= factor
		}
		level++
	}
	return coeffs
}

// Denormalize1D undoes Normalize1D.
func Denormalize1D(coeffs []float64) []float64 {
	n := len(coeffs)
	level := 0
	for lo := 1; lo < n; lo *= 2 {
		factor := math.Pow(math.Sqrt2, float64(level))
		for i := lo; i < lo*2 && i < n; i++ {
			coeffs[i] *= factor
		}
		level++
	}
	return coeffs
}
