package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func slicesAlmostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestTransform1DPaperExample checks the worked example from Section 3.1:
// [2,2,5,7] -> [4,2,0,1].
func TestTransform1DPaperExample(t *testing.T) {
	got, err := Transform1D([]float64{2, 2, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 2, 0, 1}
	if !slicesAlmostEqual(got, want) {
		t.Fatalf("Transform1D = %v, want %v", got, want)
	}
}

// TestNormalize1DPaperExample checks that normalization matches the paper:
// [4,2,0,1] -> [4,2,0,1/sqrt(2)].
func TestNormalize1DPaperExample(t *testing.T) {
	got := Normalize1D([]float64{4, 2, 0, 1})
	want := []float64{4, 2, 0, 1 / math.Sqrt2}
	if !slicesAlmostEqual(got, want) {
		t.Fatalf("Normalize1D = %v, want %v", got, want)
	}
}

func TestTransform1DRejectsNonPow2(t *testing.T) {
	for _, n := range []int{0, 3, 5, 6, 7, 12} {
		if _, err := Transform1D(make([]float64, n)); err == nil {
			t.Errorf("Transform1D accepted length %d", n)
		}
		if _, err := Inverse1D(make([]float64, n)); err == nil {
			t.Errorf("Inverse1D accepted length %d", n)
		}
	}
}

func TestTransform1DSingleElement(t *testing.T) {
	got, err := Transform1D([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("Transform1D([42]) = %v", got)
	}
}

// TestInverse1DRoundTrip: Inverse1D(Transform1D(x)) == x for random inputs.
func TestInverse1DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.Float64()*100 - 50
		}
		coeffs, err := Transform1D(data)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Inverse1D(coeffs)
		if err != nil {
			t.Fatal(err)
		}
		if !slicesAlmostEqual(back, data) {
			t.Fatalf("n=%d: round trip mismatch\nin  %v\nout %v", n, data, back)
		}
	}
}

// TestTransform1DAverage: the first coefficient is always the overall mean.
func TestTransform1DAverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(6))
		data := make([]float64, n)
		sum := 0.0
		for i := range data {
			data[i] = rng.Float64() * 10
			sum += data[i]
		}
		coeffs, err := Transform1D(data)
		if err != nil {
			return false
		}
		return almostEqual(coeffs[0], sum/float64(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestNormalize1DRoundTrip: Denormalize1D(Normalize1D(x)) == x.
func TestNormalize1DRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(7))
		data := make([]float64, n)
		orig := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64()
			orig[i] = data[i]
		}
		Denormalize1D(Normalize1D(data))
		return slicesAlmostEqual(data, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTransform1DLinearity: the transform is a linear operator.
func TestTransform1DLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 32
	a := make([]float64, n)
	b := make([]float64, n)
	sum := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
		sum[i] = 2*a[i] + 3*b[i]
	}
	ta, _ := Transform1D(a)
	tb, _ := Transform1D(b)
	tsum, _ := Transform1D(sum)
	for i := range tsum {
		if !almostEqual(tsum[i], 2*ta[i]+3*tb[i]) {
			t.Fatalf("linearity violated at %d: %v vs %v", i, tsum[i], 2*ta[i]+3*tb[i])
		}
	}
}

// TestTransform1DConstantSignal: a constant signal has zero details.
func TestTransform1DConstantSignal(t *testing.T) {
	data := make([]float64, 64)
	for i := range data {
		data[i] = 3.25
	}
	coeffs, err := Transform1D(data)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(coeffs[0], 3.25) {
		t.Fatalf("average = %v, want 3.25", coeffs[0])
	}
	for i := 1; i < len(coeffs); i++ {
		if !almostEqual(coeffs[i], 0) {
			t.Fatalf("detail coefficient %d = %v, want 0", i, coeffs[i])
		}
	}
}
