package wavelet

import (
	"fmt"
	"math"
	"sort"
)

// Transform2D computes the two-dimensional non-standard Haar decomposition
// of a square power-of-two matrix, following procedure computeWavelet in
// Figure 2 of the WALRUS paper. One step of horizontal pairwise averaging
// and differencing is applied to each row, then one step of vertical
// averaging and differencing to each column, and the process recurses on
// the quadrant of averages. In the result:
//
//   - element (0,0) of the top-left 1×1 corner is the overall pixel average;
//   - the upper-right quadrant at each scale holds horizontal detail
//     coefficients, the lower-left quadrant vertical details, and the
//     lower-right quadrant diagonal details.
//
// The input matrix is not modified.
func Transform2D(m Matrix) (Matrix, error) {
	if !m.IsSquarePow2() {
		return Matrix{}, fmt.Errorf("wavelet: Transform2D requires a square power-of-two matrix, got %dx%d", m.Rows, m.Cols)
	}
	w := m.Rows
	out := NewMatrix(w, w)
	// cur holds the matrix of averages still to be decomposed.
	cur := m.Clone()
	for size := w; size >= 2; size /= 2 {
		half := size / 2
		next := NewMatrix(half, half)
		for r := 0; r < half; r++ {
			for c := 0; c < half; c++ {
				p00 := cur.At(2*r, 2*c)
				p01 := cur.At(2*r, 2*c+1)
				p10 := cur.At(2*r+1, 2*c)
				p11 := cur.At(2*r+1, 2*c+1)
				next.Set(r, c, (p00+p01+p10+p11)/4)
				// Horizontal detail: difference across columns.
				out.Set(r, half+c, (-p00+p01-p10+p11)/4)
				// Vertical detail: difference across rows.
				out.Set(half+r, c, (-p00-p01+p10+p11)/4)
				// Diagonal detail.
				out.Set(half+r, half+c, (p00-p01-p10+p11)/4)
			}
		}
		cur = next
	}
	out.Set(0, 0, cur.At(0, 0))
	return out, nil
}

// Inverse2D reconstructs the original matrix from a Transform2D result.
func Inverse2D(coeffs Matrix) (Matrix, error) {
	if !coeffs.IsSquarePow2() {
		return Matrix{}, fmt.Errorf("wavelet: Inverse2D requires a square power-of-two matrix, got %dx%d", coeffs.Rows, coeffs.Cols)
	}
	w := coeffs.Rows
	// avg starts as the 1×1 overall average and is refined scale by scale.
	avg := NewMatrix(1, 1)
	avg.Set(0, 0, coeffs.At(0, 0))
	for half := 1; half < w; half *= 2 {
		size := half * 2
		next := NewMatrix(size, size)
		for r := 0; r < half; r++ {
			for c := 0; c < half; c++ {
				a := avg.At(r, c)
				h := coeffs.At(r, half+c)
				v := coeffs.At(half+r, c)
				d := coeffs.At(half+r, half+c)
				next.Set(2*r, 2*c, a-h-v+d)
				next.Set(2*r, 2*c+1, a+h-v-d)
				next.Set(2*r+1, 2*c, a-h+v-d)
				next.Set(2*r+1, 2*c+1, a+h+v+d)
			}
		}
		avg = next
	}
	return avg, nil
}

// Normalize2D scales the detail coefficients of a Transform2D result so
// that coefficients at all scales carry equal importance. Analogous to
// Normalize1D, the detail bands at resolution level j (level 0 being the
// coarsest, i.e. the three 1×1 quadrants next to the overall average) are
// divided by 2^j, the two-dimensional normalization factor named in
// Section 3.2. The matrix is modified in place and returned.
func Normalize2D(coeffs Matrix) Matrix {
	scaleBands(coeffs, func(level int) float64 { return 1 / math.Pow(2, float64(level)) })
	return coeffs
}

// Denormalize2D undoes Normalize2D.
func Denormalize2D(coeffs Matrix) Matrix {
	scaleBands(coeffs, func(level int) float64 { return math.Pow(2, float64(level)) })
	return coeffs
}

// scaleBands multiplies every detail coefficient by factor(level), where
// level 0 is the coarsest detail band. Band level j occupies the three
// quadrants whose rows/cols span [2^j, 2^(j+1)).
func scaleBands(coeffs Matrix, factor func(level int) float64) {
	w := coeffs.Rows
	level := 0
	for half := 1; half < w; half *= 2 {
		f := factor(level)
		for r := 0; r < half; r++ {
			for c := half; c < 2*half; c++ {
				coeffs.Set(r, c, coeffs.At(r, c)*f)
				coeffs.Set(c, r, coeffs.At(c, r)*f)
			}
		}
		for r := half; r < 2*half; r++ {
			for c := half; c < 2*half; c++ {
				coeffs.Set(r, c, coeffs.At(r, c)*f)
			}
		}
		level++
	}
}

// TruncateTopK zeroes all but the k largest-magnitude coefficients of a
// transform (the overall average at (0,0) is always kept), the lossy
// compression Section 3.1 describes: small detail coefficients contribute
// little to the reconstruction, so dropping them trades a small error for
// a sparse representation. The matrix is modified in place and the number
// of retained coefficients (including the average) is returned.
func TruncateTopK(coeffs Matrix, k int) int {
	if k < 1 {
		k = 1
	}
	type mag struct {
		idx int
		abs float64
	}
	all := make([]mag, 0, len(coeffs.Data)-1)
	for i := 1; i < len(coeffs.Data); i++ {
		all = append(all, mag{i, math.Abs(coeffs.Data[i])})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].abs > all[b].abs })
	kept := 1
	for rank, m := range all {
		if rank < k-1 && m.abs > 0 {
			kept++
			continue
		}
		coeffs.Data[m.idx] = 0
	}
	return kept
}
