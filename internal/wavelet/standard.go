package wavelet

import "fmt"

// StandardTransform2D computes the standard two-dimensional Haar
// decomposition: the full one-dimensional transform is applied to every
// row, then to every column of the result. This is the first of the two
// 2-D generalizations Section 3.2 describes (WALRUS itself uses the
// non-standard decomposition of Transform2D; the standard one is provided
// for completeness and for baselines in the style of Jacobs et al., who
// used it). The input is not modified.
func StandardTransform2D(m Matrix) (Matrix, error) {
	if !m.IsSquarePow2() {
		return Matrix{}, fmt.Errorf("wavelet: StandardTransform2D requires a square power-of-two matrix, got %dx%d", m.Rows, m.Cols)
	}
	w := m.Rows
	out := m.Clone()
	// Rows.
	for r := 0; r < w; r++ {
		row, err := Transform1D(out.Data[r*w : (r+1)*w])
		if err != nil {
			return Matrix{}, err
		}
		copy(out.Data[r*w:(r+1)*w], row)
	}
	// Columns.
	col := make([]float64, w)
	for c := 0; c < w; c++ {
		for r := 0; r < w; r++ {
			col[r] = out.At(r, c)
		}
		tc, err := Transform1D(col)
		if err != nil {
			return Matrix{}, err
		}
		for r := 0; r < w; r++ {
			out.Set(r, c, tc[r])
		}
	}
	return out, nil
}

// StandardInverse2D undoes StandardTransform2D.
func StandardInverse2D(coeffs Matrix) (Matrix, error) {
	if !coeffs.IsSquarePow2() {
		return Matrix{}, fmt.Errorf("wavelet: StandardInverse2D requires a square power-of-two matrix, got %dx%d", coeffs.Rows, coeffs.Cols)
	}
	w := coeffs.Rows
	out := coeffs.Clone()
	// Columns first (reverse of the forward order).
	col := make([]float64, w)
	for c := 0; c < w; c++ {
		for r := 0; r < w; r++ {
			col[r] = out.At(r, c)
		}
		ic, err := Inverse1D(col)
		if err != nil {
			return Matrix{}, err
		}
		for r := 0; r < w; r++ {
			out.Set(r, c, ic[r])
		}
	}
	// Rows.
	for r := 0; r < w; r++ {
		ir, err := Inverse1D(out.Data[r*w : (r+1)*w])
		if err != nil {
			return Matrix{}, err
		}
		copy(out.Data[r*w:(r+1)*w], ir)
	}
	return out, nil
}
