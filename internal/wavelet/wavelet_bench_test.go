package wavelet

import (
	"fmt"
	"math/rand"
	"testing"
)

var benchPlane256 = func() []float64 {
	rng := rand.New(rand.NewSource(1))
	p := make([]float64, 256*256)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}()

func BenchmarkTransform2D(b *testing.B) {
	for _, size := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			m := NewMatrix(size, size)
			copy(m.Data, benchPlane256[:size*size])
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Transform2D(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkComputeSlidingWindows(b *testing.B) {
	for _, step := range []int{1, 8} {
		b.Run(fmt.Sprintf("t=%d", step), func(b *testing.B) {
			params := SlidingParams{MaxWindow: 64, Signature: 2, Step: step}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ComputeSlidingWindows(benchPlane256, 256, 256, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDaubechiesTransform2D(b *testing.B) {
	m := NewMatrix(128, 128)
	copy(m.Data, benchPlane256[:128*128])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DaubechiesTransform2D(m, 4); err != nil {
			b.Fatal(err)
		}
	}
}
