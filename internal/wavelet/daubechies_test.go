package wavelet

import (
	"math"
	"math/rand"
	"testing"
)

// TestDaubechiesFilterOrthonormality: the D4 filter satisfies the standard
// orthonormality conditions sum(h)=sqrt(2), sum(h_i^2)=1, sum(g)=0.
func TestDaubechiesFilterOrthonormality(t *testing.T) {
	var sumH, sumH2, sumG float64
	for i := 0; i < 4; i++ {
		sumH += d4h[i]
		sumH2 += d4h[i] * d4h[i]
		sumG += d4g[i]
	}
	if !almostEqual(sumH, math.Sqrt2) {
		t.Errorf("sum(h) = %v, want sqrt(2)", sumH)
	}
	if !almostEqual(sumH2, 1) {
		t.Errorf("sum(h^2) = %v, want 1", sumH2)
	}
	if !almostEqual(sumG, 0) {
		t.Errorf("sum(g) = %v, want 0", sumG)
	}
}

func TestDaubechies1DStepRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{4, 8, 16, 128} {
		data := make([]float64, n)
		orig := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64()
			orig[i] = data[i]
		}
		tmp := make([]float64, n)
		daub4Step(data, tmp, n)
		daub4InverseStep(data, tmp, n)
		if !slicesAlmostEqual(data, orig) {
			t.Fatalf("n=%d: 1D step round trip mismatch", n)
		}
	}
}

func TestDaubechiesTransform2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, tc := range []struct{ size, levels int }{{8, 1}, {16, 2}, {32, 3}, {128, 4}, {128, 5}} {
		m := randomMatrix(rng, tc.size)
		fw, err := DaubechiesTransform2D(m, tc.levels)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DaubechiesInverse2D(fw, tc.levels)
		if err != nil {
			t.Fatal(err)
		}
		if !slicesAlmostEqual(back.Data, m.Data) {
			t.Fatalf("size %d levels %d: round trip mismatch", tc.size, tc.levels)
		}
	}
}

func TestDaubechiesTransform2DErrors(t *testing.T) {
	m := NewMatrix(8, 8)
	if _, err := DaubechiesTransform2D(m, 0); err == nil {
		t.Error("accepted 0 levels")
	}
	if _, err := DaubechiesTransform2D(m, 3); err == nil {
		t.Error("accepted too many levels for 8x8")
	}
	if _, err := DaubechiesTransform2D(NewMatrix(8, 6), 1); err == nil {
		t.Error("accepted non-square matrix")
	}
	if _, err := DaubechiesInverse2D(NewMatrix(6, 6), 1); err == nil {
		t.Error("inverse accepted non-power-of-two matrix")
	}
}

// TestDaubechiesEnergyPreservation: the orthonormal D4 transform preserves
// the signal's energy (sum of squares).
func TestDaubechiesEnergyPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randomMatrix(rng, 64)
	fw, err := DaubechiesTransform2D(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	var e1, e2 float64
	for i := range m.Data {
		e1 += m.Data[i] * m.Data[i]
		e2 += fw.Data[i] * fw.Data[i]
	}
	if !almostEqual(e1, e2) {
		t.Fatalf("energy not preserved: %v vs %v", e1, e2)
	}
}
