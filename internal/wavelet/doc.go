// Package wavelet implements the wavelet machinery that WALRUS is built on:
//
//   - one-dimensional Haar transforms with the averaging convention of the
//     paper (Section 3.1), including the normalization that equalizes the
//     importance of coefficients across resolution levels;
//   - the two-dimensional non-standard Haar decomposition (Figure 2 of the
//     paper) together with its inverse;
//   - naive per-window signature computation, which applies the full
//     two-dimensional transform to every sliding window independently
//     (O(N·ω²) for an N-pixel image and ω×ω windows);
//   - the dynamic-programming sliding-window algorithm of Section 5.2
//     (Figures 3–5), which computes s×s low-frequency signatures for every
//     window size that is a power of two up to ωmax in O(N·s²·log ωmax)
//     time by assembling each window's transform from the transforms of
//     its four subwindows;
//   - a Daubechies-4 transform used by the WBIIS baseline.
//
// All transforms operate on square matrices whose side is a power of two.
// Pixel values are plain float64s; callers normalize to whatever range they
// need (WALRUS uses [0,1]).
package wavelet
