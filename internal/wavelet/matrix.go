package wavelet

import "fmt"

// Matrix is a dense row-major matrix of float64 values. It is the common
// currency of the transforms in this package. The zero value is an empty
// matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) Matrix {
	return Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row r, column c.
func (m Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy of m.
func (m Matrix) Clone() Matrix {
	out := Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// IsSquarePow2 reports whether m is square with a power-of-two side of at
// least 2.
func (m Matrix) IsSquarePow2() bool {
	return m.Rows == m.Cols && m.Rows >= 2 && isPow2(m.Rows)
}

func (m Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// isPow2 reports whether v is a positive power of two.
func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// log2 returns the base-2 logarithm of a power of two.
func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
