package wavelet

import (
	"math/rand"
	"testing"
)

func TestStandardTransform2DRejectsBadShapes(t *testing.T) {
	for _, dims := range [][2]int{{3, 3}, {2, 4}, {1, 1}} {
		m := NewMatrix(dims[0], dims[1])
		if _, err := StandardTransform2D(m); err == nil {
			t.Errorf("StandardTransform2D accepted %dx%d", dims[0], dims[1])
		}
		if _, err := StandardInverse2D(m); err == nil {
			t.Errorf("StandardInverse2D accepted %dx%d", dims[0], dims[1])
		}
	}
}

func TestStandardInverse2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for _, size := range []int{2, 4, 16, 64} {
		m := randomMatrix(rng, size)
		fw, err := StandardTransform2D(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := StandardInverse2D(fw)
		if err != nil {
			t.Fatal(err)
		}
		if !slicesAlmostEqual(back.Data, m.Data) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

// TestStandardVsNonstandardAverage: both decompositions agree on the
// overall average (coefficient (0,0)) but differ elsewhere in general.
func TestStandardVsNonstandardAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	m := randomMatrix(rng, 16)
	std, err := StandardTransform2D(m)
	if err != nil {
		t.Fatal(err)
	}
	non, err := Transform2D(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(std.At(0, 0), non.At(0, 0)) {
		t.Fatalf("averages differ: %v vs %v", std.At(0, 0), non.At(0, 0))
	}
	// The decompositions are genuinely different transforms.
	same := true
	for i := range std.Data {
		if !almostEqual(std.Data[i], non.Data[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("standard and non-standard decompositions coincided on random input")
	}
}

// TestStandardTransformConstant: a flat image still collapses to the
// average with zero details.
func TestStandardTransformConstant(t *testing.T) {
	m := NewMatrix(8, 8)
	for i := range m.Data {
		m.Data[i] = 2.5
	}
	fw, err := StandardTransform2D(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range fw.Data {
		want := 0.0
		if i == 0 {
			want = 2.5
		}
		if !almostEqual(v, want) {
			t.Fatalf("coefficient %d = %v, want %v", i, v, want)
		}
	}
}

func TestNaiveWindowSignaturesMatchesSliding(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	const w, h = 40, 32
	plane := randomPlane(rng, w, h)
	params := SlidingParams{MaxWindow: 16, Signature: 4, Step: 2}
	pyr, err := ComputeSlidingWindows(plane, w, h, params)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NaiveWindowSignatures(plane, w, h, 16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	grid := pyr.Level(16)
	if single.NX != grid.NX || single.NY != grid.NY || single.Sig != grid.Sig {
		t.Fatalf("grid shapes differ: %+v vs %+v", single, grid)
	}
	for i := range grid.Data {
		if !almostEqual(grid.Data[i], single.Data[i]) {
			t.Fatalf("value %d differs: %v vs %v", i, grid.Data[i], single.Data[i])
		}
	}
}

func TestNaiveWindowSignaturesErrors(t *testing.T) {
	plane := make([]float64, 64)
	if _, err := NaiveWindowSignatures(plane, 8, 8, 3, 2, 1); err == nil {
		t.Error("accepted non-power-of-two window")
	}
	if _, err := NaiveWindowSignatures(plane, 8, 8, 16, 2, 1); err == nil {
		t.Error("accepted window larger than image")
	}
	if _, err := NaiveWindowSignatures(plane, 8, 8, 4, 2, 3); err == nil {
		t.Error("accepted non-power-of-two step")
	}
	if _, err := NaiveWindowSignatures(plane, 9, 8, 4, 2, 1); err == nil {
		t.Error("accepted mismatched plane length")
	}
}
