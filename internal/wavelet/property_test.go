package wavelet

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

// randMatrix fills a w×w matrix with values in [0,1).
func randMatrix(rng *rand.Rand, w int) Matrix {
	m := NewMatrix(w, w)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// TestHaar2DRoundTripRandom: Inverse2D(Transform2D(m)) == m on random
// matrices of every supported size.
func TestHaar2DRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range []int{2, 4, 8, 16, 32, 64} {
		for trial := 0; trial < 5; trial++ {
			m := randMatrix(rng, w)
			coeffs, err := Transform2D(m)
			if err != nil {
				t.Fatal(err)
			}
			back, err := Inverse2D(coeffs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range m.Data {
				if math.Abs(m.Data[i]-back.Data[i]) > 1e-9 {
					t.Fatalf("w=%d trial %d: element %d: %v -> %v", w, trial, i, m.Data[i], back.Data[i])
				}
			}
		}
	}
}

// TestHaar2DParseval checks energy preservation. The transform's averaging
// steps divide by 4 where the orthonormal 2D Haar step divides by 2, so a
// coefficient in detail band level j of a 2^J-sided matrix is the
// orthonormal coefficient scaled by 2^-(J-j), and the overall average is
// scaled by 2^-J. Undoing those scales, Parseval's identity must hold:
//
//	sum(pixel²) = 4^J·avg² + Σ_j 4^(J-j) · Σ_{band j} c²
func TestHaar2DParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, w := range []int{2, 4, 8, 16, 32} {
		J := bits.TrailingZeros(uint(w)) // log2(w)
		for trial := 0; trial < 5; trial++ {
			m := randMatrix(rng, w)
			pixelEnergy := 0.0
			for _, v := range m.Data {
				pixelEnergy += v * v
			}
			coeffs, err := Transform2D(m)
			if err != nil {
				t.Fatal(err)
			}
			avg := coeffs.At(0, 0)
			coeffEnergy := math.Pow(4, float64(J)) * avg * avg
			for r := 0; r < w; r++ {
				for c := 0; c < w; c++ {
					if r == 0 && c == 0 {
						continue
					}
					// Band level of a detail coefficient: floor(log2(max(r,c))).
					j := bits.Len(uint(max(r, c))) - 1
					v := coeffs.At(r, c)
					coeffEnergy += math.Pow(4, float64(J-j)) * v * v
				}
			}
			if rel := math.Abs(coeffEnergy-pixelEnergy) / pixelEnergy; rel > 1e-9 {
				t.Fatalf("w=%d trial %d: coefficient energy %v, pixel energy %v (rel err %v)",
					w, trial, coeffEnergy, pixelEnergy, rel)
			}
		}
	}
}

// TestHaar2DLinearity: the transform of a·x + b·y is a·T(x) + b·T(y).
func TestHaar2DLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const w = 16
	x, y := randMatrix(rng, w), randMatrix(rng, w)
	a, b := 2.5, -1.25
	mix := NewMatrix(w, w)
	for i := range mix.Data {
		mix.Data[i] = a*x.Data[i] + b*y.Data[i]
	}
	tx, err := Transform2D(x)
	if err != nil {
		t.Fatal(err)
	}
	ty, err := Transform2D(y)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := Transform2D(mix)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tm.Data {
		want := a*tx.Data[i] + b*ty.Data[i]
		if math.Abs(tm.Data[i]-want) > 1e-9 {
			t.Fatalf("element %d: %v, want %v", i, tm.Data[i], want)
		}
	}
}

// TestSlidingWorkersBitwiseIdentical: the parallel DP must produce the
// exact bytes the serial DP produces, for every level of the pyramid.
func TestSlidingWorkersBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const imgW, imgH = 96, 80
	plane := make([]float64, imgW*imgH)
	for i := range plane {
		plane[i] = rng.Float64()
	}
	base := SlidingParams{MaxWindow: 32, Signature: 4, Step: 2, Workers: 1}
	serial, err := ComputeSlidingWindows(plane, imgW, imgH, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 16} {
		p := base
		p.Workers = workers
		par, err := ComputeSlidingWindows(plane, imgW, imgH, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, win := range serial.Sizes() {
			sg, pg := serial.Level(win), par.Level(win)
			if pg == nil {
				t.Fatalf("workers=%d: level %d missing", workers, win)
			}
			if len(sg.Data) != len(pg.Data) {
				t.Fatalf("workers=%d level %d: %d values vs %d", workers, win, len(sg.Data), len(pg.Data))
			}
			for i := range sg.Data {
				if sg.Data[i] != pg.Data[i] {
					t.Fatalf("workers=%d level %d: value %d differs: %v vs %v",
						workers, win, i, sg.Data[i], pg.Data[i])
				}
			}
		}
	}
}
