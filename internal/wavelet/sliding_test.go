package wavelet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPlane(rng *rand.Rand, w, h int) []float64 {
	p := make([]float64, w*h)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

func TestSlidingParamsValidate(t *testing.T) {
	bad := []SlidingParams{
		{MaxWindow: 3, Signature: 2, Step: 1},
		{MaxWindow: 0, Signature: 2, Step: 1},
		{MaxWindow: 8, Signature: 3, Step: 1},
		{MaxWindow: 8, Signature: 16, Step: 1},
		{MaxWindow: 8, Signature: 2, Step: 3},
		{MaxWindow: 8, Signature: 2, Step: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", p)
		}
	}
	good := SlidingParams{MaxWindow: 64, Signature: 2, Step: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected %+v: %v", good, err)
	}
}

// TestDPSignaturesMatchNaive is the central correctness property of the
// dynamic programming algorithm: for every window size, position, signature
// size and step, the DP signatures must equal the naively computed ones.
func TestDPSignaturesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		w, h   int
		params SlidingParams
	}{
		{32, 32, SlidingParams{MaxWindow: 16, Signature: 2, Step: 1}},
		{32, 32, SlidingParams{MaxWindow: 32, Signature: 4, Step: 1}},
		{40, 24, SlidingParams{MaxWindow: 16, Signature: 4, Step: 2}},
		{33, 47, SlidingParams{MaxWindow: 8, Signature: 8, Step: 1}},
		{64, 48, SlidingParams{MaxWindow: 64, Signature: 2, Step: 8}},
		{24, 24, SlidingParams{MaxWindow: 16, Signature: 1, Step: 4}},
		{16, 16, SlidingParams{MaxWindow: 16, Signature: 16, Step: 16}},
	}
	for _, tc := range cases {
		plane := randomPlane(rng, tc.w, tc.h)
		dp, err := ComputeSlidingWindows(plane, tc.w, tc.h, tc.params)
		if err != nil {
			t.Fatalf("%+v: DP: %v", tc.params, err)
		}
		naive, err := NaiveSlidingWindows(plane, tc.w, tc.h, tc.params)
		if err != nil {
			t.Fatalf("%+v: naive: %v", tc.params, err)
		}
		for _, win := range dp.Sizes() {
			gd, gn := dp.Level(win), naive.Level(win)
			if gn == nil {
				t.Fatalf("%+v: naive missing level %d", tc.params, win)
			}
			if gd.NX != gn.NX || gd.NY != gn.NY || gd.Sig != gn.Sig || gd.Step != gn.Step {
				t.Fatalf("%+v win %d: grid shape mismatch: %+v vs %+v", tc.params, win, gd, gn)
			}
			for iy := 0; iy < gd.NY; iy++ {
				for ix := 0; ix < gd.NX; ix++ {
					if !slicesAlmostEqual(gd.SigAt(ix, iy), gn.SigAt(ix, iy)) {
						t.Fatalf("%+v win %d pos (%d,%d): DP %v vs naive %v",
							tc.params, win, ix, iy, gd.SigAt(ix, iy), gn.SigAt(ix, iy))
					}
				}
			}
		}
	}
}

// TestDPSignaturesMatchNaiveQuick drives the same property through
// testing/quick with randomized dimensions and parameters.
func TestDPSignaturesMatchNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 16 + rng.Intn(33)
		h := 16 + rng.Intn(33)
		params := SlidingParams{
			MaxWindow: 1 << (1 + rng.Intn(4)),
			Signature: 1 << rng.Intn(3),
			Step:      1 << rng.Intn(4),
		}
		if params.Signature > params.MaxWindow {
			params.Signature = params.MaxWindow
		}
		plane := randomPlane(rng, w, h)
		dp, err := ComputeSlidingWindows(plane, w, h, params)
		if err != nil {
			return false
		}
		naive, err := NaiveSlidingWindows(plane, w, h, params)
		if err != nil {
			return false
		}
		for _, win := range dp.Sizes() {
			gd, gn := dp.Level(win), naive.Level(win)
			for i := range gd.Data {
				if !almostEqual(gd.Data[i], gn.Data[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowSignatureMatchesGrid: the single-window helper agrees with the
// sliding computation.
func TestWindowSignatureMatchesGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const w, h = 48, 40
	plane := randomPlane(rng, w, h)
	params := SlidingParams{MaxWindow: 16, Signature: 4, Step: 4}
	pyr, err := ComputeSlidingWindows(plane, w, h, params)
	if err != nil {
		t.Fatal(err)
	}
	g := pyr.Level(16)
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			x, y := g.PosOf(ix, iy)
			want, err := WindowSignature(plane, w, h, x, y, 16, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !slicesAlmostEqual(g.SigAt(ix, iy), want) {
				t.Fatalf("window at (%d,%d): %v vs %v", x, y, g.SigAt(ix, iy), want)
			}
		}
	}
}

// TestSlidingSignatureScaleInvariance: the 2×2 signature of a window over a
// uniform region equals that of a 2× larger window over the 2× upscaled
// region — the property that lets WALRUS match scaled objects.
func TestSlidingSignatureScaleInvariance(t *testing.T) {
	// Build a 32×32 image and its 64×64 pixel-doubled version.
	rng := rand.New(rand.NewSource(13))
	const small = 32
	sp := randomPlane(rng, small, small)
	big := make([]float64, small*2*small*2)
	for y := 0; y < small*2; y++ {
		for x := 0; x < small*2; x++ {
			big[y*small*2+x] = sp[(y/2)*small+x/2]
		}
	}
	sigSmall, err := WindowSignature(sp, small, small, 0, 0, small, 2)
	if err != nil {
		t.Fatal(err)
	}
	sigBig, err := WindowSignature(big, small*2, small*2, 0, 0, small*2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !slicesAlmostEqual(sigSmall, sigBig) {
		t.Fatalf("scale invariance violated: %v vs %v", sigSmall, sigBig)
	}
}

// TestSlidingTranslationInvariance: a window over the same content at a
// different location yields the identical signature.
func TestSlidingTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const w, h, win = 64, 64, 16
	plane := make([]float64, w*h)
	patch := randomPlane(rng, win, win)
	place := func(ox, oy int) {
		for y := 0; y < win; y++ {
			copy(plane[(oy+y)*w+ox:(oy+y)*w+ox+win], patch[y*win:(y+1)*win])
		}
	}
	place(0, 0)
	place(40, 32)
	a, err := WindowSignature(plane, w, h, 0, 0, win, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WindowSignature(plane, w, h, 40, 32, win, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !slicesAlmostEqual(a, b) {
		t.Fatalf("translation invariance violated: %v vs %v", a, b)
	}
}

func TestComputeSlidingWindowsErrors(t *testing.T) {
	plane := make([]float64, 16)
	if _, err := ComputeSlidingWindows(plane, 4, 4, SlidingParams{MaxWindow: 3, Signature: 2, Step: 1}); err == nil {
		t.Error("accepted invalid params")
	}
	if _, err := ComputeSlidingWindows(plane, 5, 4, SlidingParams{MaxWindow: 4, Signature: 2, Step: 1}); err == nil {
		t.Error("accepted mismatched plane length")
	}
	if _, err := ComputeSlidingWindows(make([]float64, 1), 1, 1, SlidingParams{MaxWindow: 2, Signature: 2, Step: 1}); err == nil {
		t.Error("accepted image smaller than the smallest window")
	}
}

func TestWindowSignatureErrors(t *testing.T) {
	plane := make([]float64, 64)
	if _, err := WindowSignature(plane, 8, 8, 7, 0, 4, 2); err == nil {
		t.Error("accepted out-of-bounds window")
	}
	if _, err := WindowSignature(plane, 8, 8, 0, 0, 3, 2); err == nil {
		t.Error("accepted non-power-of-two window")
	}
}

// TestPyramidSizes: levels stop at the image size.
func TestPyramidSizes(t *testing.T) {
	plane := make([]float64, 24*24)
	pyr, err := ComputeSlidingWindows(plane, 24, 24, SlidingParams{MaxWindow: 64, Signature: 2, Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 8, 16}
	got := pyr.Sizes()
	if len(got) != len(want) {
		t.Fatalf("Sizes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sizes() = %v, want %v", got, want)
		}
	}
	if pyr.Level(32) != nil {
		t.Error("Level(32) should be nil for a 24x24 image")
	}
}
