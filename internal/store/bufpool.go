package store

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"time"

	"walrus/internal/obs"
)

// Frame is a buffered page. Callers obtain Frames from a BufferPool, read
// or modify Data, and must Unpin when done, marking the frame dirty if it
// was modified. A pinned frame's Data is stable; once unpinned it may be
// evicted and reused at any time.
type Frame struct {
	ID   PageID
	Data []byte

	// LSN is the WAL position of the frame's last logged image; it is
	// stamped into the page footer when the frame is written back.
	LSN uint64

	pins   int
	dirty  bool
	logged bool // current contents captured in the WAL (see LogDirty)
	elem   *list.Element
}

// PoolStats counts buffer pool activity.
type PoolStats struct {
	Hits, Misses, Evictions, Flushes uint64
	// FailedWriteBacks counts dirty write-backs that errored during
	// eviction; the pool keeps the frame resident and records a sticky
	// I/O error (see Err).
	FailedWriteBacks uint64
}

// FlushHook is consulted immediately before a dirty page is written back
// to the pager. A WAL-backed database installs a hook that forces the log
// durable up to the frame's LSN, enforcing the log-before-flush (WAL)
// invariant. While a hook is installed the pool also stops evicting dirty
// frames (no-steal policy): uncommitted page images never reach the page
// file, so redo-only recovery suffices.
type FlushHook func(id PageID, lsn uint64) error

// BufferPool caches pages of a Pager in memory with LRU replacement.
// It is safe for concurrent use.
type BufferPool struct {
	pager *Pager
	cap   int

	mu     sync.Mutex
	frames map[PageID]*Frame
	lru    *list.List // front = most recently used; holds unpinned and pinned frames alike
	stats  PoolStats
	om     poolMetrics // guarded by mu; zero value = observability off
	hook   FlushHook
	ioErr  error // sticky: first failed write-back, surfaced on later calls
}

// NewBufferPool wraps a pager with a cache of at most capacity pages.
func NewBufferPool(p *Pager, capacity int) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("store: buffer pool capacity %d < 1", capacity)
	}
	return &BufferPool{
		pager:  p,
		cap:    capacity,
		frames: make(map[PageID]*Frame),
		lru:    list.New(),
	}, nil
}

// Stats returns a snapshot of pool counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// SetFlushHook installs (or, with nil, removes) the log-before-flush
// hook. See FlushHook for the eviction-policy consequences.
func (bp *BufferPool) SetFlushHook(h FlushHook) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.hook = h
}

// Err returns the pool's sticky I/O error: the first dirty write-back
// failure during eviction. Once set it is also returned by Get, NewPage
// and FlushAll, since the cached state can no longer be trusted to reach
// disk.
func (bp *BufferPool) Err() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.ioErr
}

// Get returns a pinned frame for page id, reading it from disk on a miss.
func (bp *BufferPool) Get(id PageID) (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if bp.ioErr != nil {
		return nil, bp.ioErr
	}
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		bp.om.hits.Inc()
		f.pins++
		bp.lru.MoveToFront(f.elem)
		return f, nil
	}
	bp.stats.Misses++
	bp.om.misses.Inc()
	f, err := bp.admit(id)
	if err != nil {
		return nil, err
	}
	lsn, err := bp.pager.ReadPage(id, f.Data)
	if err != nil {
		bp.drop(f)
		return nil, err
	}
	f.LSN = lsn
	return f, nil
}

// NewPage allocates a fresh page and returns it pinned and zeroed. The
// frame starts dirty so it is written back even if the caller stores
// nothing.
func (bp *BufferPool) NewPage() (*Frame, error) {
	id, err := bp.pager.Alloc()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if bp.ioErr != nil {
		return nil, bp.ioErr
	}
	f, err := bp.admit(id)
	if err != nil {
		return nil, err
	}
	for i := range f.Data {
		f.Data[i] = 0
	}
	f.dirty = true
	f.logged = false
	return f, nil
}

// admit makes room if needed and installs a new pinned frame for id.
// Caller holds bp.mu.
func (bp *BufferPool) admit(id PageID) (*Frame, error) {
	for len(bp.frames) >= bp.cap {
		if !bp.evictOneLocked() {
			if bp.ioErr != nil {
				return nil, bp.ioErr
			}
			if bp.hook != nil {
				return nil, fmt.Errorf("store: buffer pool exhausted: all %d frames pinned or dirty (WAL no-steal); commit or raise the pool capacity", bp.cap)
			}
			return nil, fmt.Errorf("store: buffer pool exhausted: all %d frames pinned", bp.cap)
		}
	}
	f := &Frame{ID: id, Data: make([]byte, bp.pager.PageSize()), pins: 1}
	f.elem = bp.lru.PushFront(f)
	bp.frames[id] = f
	return f, nil
}

// evictOneLocked removes the least recently used evictable frame, flushing it
// if dirty (steal). Under a FlushHook dirty frames are not evictable
// (no-steal). A failed write-back records the pool's sticky I/O error and
// keeps the frame resident rather than lose data. Returns false if no
// frame could be evicted. Caller holds bp.mu.
func (bp *BufferPool) evictOneLocked() bool {
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*Frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if bp.hook != nil {
				// No-steal: this frame may hold uncommitted data; only a
				// checkpoint (FlushAll) may write it back.
				continue
			}
			var start time.Time
			if bp.om.reg != nil {
				start = obs.Clock()
			}
			if err := bp.pager.WritePage(f.ID, f.Data, f.LSN); err != nil {
				bp.stats.FailedWriteBacks++
				bp.om.failedWriteBacks.Inc()
				if bp.ioErr == nil {
					bp.ioErr = fmt.Errorf("store: evicting page %d: %w", f.ID, err)
				}
				continue
			}
			bp.stats.Flushes++
			bp.om.flushes.Inc()
			if bp.om.reg != nil {
				bp.om.reg.RecordSpan("bufpool.evict", 0, start, obs.Since(start),
					obs.Attr{Key: "page", Value: int64(f.ID)})
			}
		}
		bp.drop(f)
		bp.stats.Evictions++
		bp.om.evictions.Inc()
		return true
	}
	return false
}

// drop removes a frame from the pool. Caller holds bp.mu.
func (bp *BufferPool) drop(f *Frame) {
	bp.lru.Remove(f.elem)
	delete(bp.frames, f.ID)
}

// Unpin releases one pin on f; dirty marks the page as modified.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f.pins <= 0 {
		panic("store: Unpin of unpinned frame")
	}
	f.pins--
	if dirty {
		f.dirty = true
		f.logged = false
	}
}

// DirtyCount returns the number of dirty frames resident in the pool.
// The WAL commit path uses it to decide when to checkpoint.
func (bp *BufferPool) DirtyCount() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, f := range bp.frames {
		if f.dirty {
			n++
		}
	}
	return n
}

// LogDirty passes every frame whose contents changed since its last
// logging to fn (in PageID order, for deterministic logs) and stamps the
// returned LSN on the frame. The WAL commit path uses it to capture redo
// images of all pages a transaction touched before they can reach disk.
func (bp *BufferPool) LogDirty(fn func(id PageID, data []byte) (uint64, error)) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if bp.ioErr != nil {
		return bp.ioErr
	}
	var pending []*Frame
	for _, f := range bp.frames {
		if f.dirty && !f.logged {
			pending = append(pending, f)
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].ID < pending[j].ID })
	for _, f := range pending {
		lsn, err := fn(f.ID, f.Data)
		if err != nil {
			return err
		}
		f.LSN = lsn
		f.logged = true
	}
	return nil
}

// FlushAll writes every dirty frame back and syncs the pager, invoking
// the FlushHook (log-before-flush) ahead of each write-back. Pinned
// frames are flushed but stay resident.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	if bp.ioErr != nil {
		bp.mu.Unlock()
		return bp.ioErr
	}
	for _, f := range bp.frames {
		if !f.dirty {
			continue
		}
		if bp.hook != nil {
			if err := bp.hook(f.ID, f.LSN); err != nil {
				bp.mu.Unlock()
				return err
			}
		}
		if err := bp.pager.WritePage(f.ID, f.Data, f.LSN); err != nil {
			bp.mu.Unlock()
			return err
		}
		f.dirty = false
		bp.stats.Flushes++
		// mu is still held here; the linear lock scan mistakes the
		// error-branch Unlocks above for a release.
		bp.om.flushes.Inc() //walrus:lint-ignore lockdiscipline mu held; linear scan false positive after error-branch Unlock
	}
	bp.mu.Unlock()
	return bp.pager.Sync()
}

// Discard drops page id from the cache without writing it back and frees
// it in the pager. The page must not be pinned.
func (bp *BufferPool) Discard(id PageID) error {
	bp.mu.Lock()
	if f, ok := bp.frames[id]; ok {
		if f.pins > 0 {
			bp.mu.Unlock()
			return fmt.Errorf("store: Discard of pinned page %d", id)
		}
		bp.drop(f)
	}
	bp.mu.Unlock()
	return bp.pager.Free(id)
}
