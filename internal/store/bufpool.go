package store

import (
	"container/list"
	"fmt"
	"sync"
)

// Frame is a buffered page. Callers obtain Frames from a BufferPool, read
// or modify Data, and must Unpin when done, marking the frame dirty if it
// was modified. A pinned frame's Data is stable; once unpinned it may be
// evicted and reused at any time.
type Frame struct {
	ID   PageID
	Data []byte

	pins  int
	dirty bool
	elem  *list.Element
}

// PoolStats counts buffer pool activity.
type PoolStats struct {
	Hits, Misses, Evictions, Flushes uint64
}

// BufferPool caches pages of a Pager in memory with LRU replacement.
// It is safe for concurrent use.
type BufferPool struct {
	pager *Pager
	cap   int

	mu     sync.Mutex
	frames map[PageID]*Frame
	lru    *list.List // front = most recently used; holds unpinned and pinned frames alike
	stats  PoolStats
}

// NewBufferPool wraps a pager with a cache of at most capacity pages.
func NewBufferPool(p *Pager, capacity int) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("store: buffer pool capacity %d < 1", capacity)
	}
	return &BufferPool{
		pager:  p,
		cap:    capacity,
		frames: make(map[PageID]*Frame),
		lru:    list.New(),
	}, nil
}

// Stats returns a snapshot of pool counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// Get returns a pinned frame for page id, reading it from disk on a miss.
func (bp *BufferPool) Get(id PageID) (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		f.pins++
		bp.lru.MoveToFront(f.elem)
		return f, nil
	}
	bp.stats.Misses++
	f, err := bp.admit(id)
	if err != nil {
		return nil, err
	}
	if err := bp.pager.ReadPage(id, f.Data); err != nil {
		bp.drop(f)
		return nil, err
	}
	return f, nil
}

// NewPage allocates a fresh page and returns it pinned and zeroed. The
// frame starts dirty so it is written back even if the caller stores
// nothing.
func (bp *BufferPool) NewPage() (*Frame, error) {
	id, err := bp.pager.Alloc()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, err := bp.admit(id)
	if err != nil {
		return nil, err
	}
	for i := range f.Data {
		f.Data[i] = 0
	}
	f.dirty = true
	return f, nil
}

// admit makes room if needed and installs a new pinned frame for id.
// Caller holds bp.mu.
func (bp *BufferPool) admit(id PageID) (*Frame, error) {
	for len(bp.frames) >= bp.cap {
		if !bp.evictOne() {
			return nil, fmt.Errorf("store: buffer pool exhausted: all %d frames pinned", bp.cap)
		}
	}
	f := &Frame{ID: id, Data: make([]byte, bp.pager.PageSize()), pins: 1}
	f.elem = bp.lru.PushFront(f)
	bp.frames[id] = f
	return f, nil
}

// evictOne removes the least recently used unpinned frame, flushing it if
// dirty. Returns false if every frame is pinned. Caller holds bp.mu.
func (bp *BufferPool) evictOne() bool {
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*Frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if err := bp.pager.WritePage(f.ID, f.Data); err != nil {
				// A failed write-back is unrecoverable for this frame; keep
				// it resident rather than lose data.
				continue
			}
			bp.stats.Flushes++
		}
		bp.drop(f)
		bp.stats.Evictions++
		return true
	}
	return false
}

// drop removes a frame from the pool. Caller holds bp.mu.
func (bp *BufferPool) drop(f *Frame) {
	bp.lru.Remove(f.elem)
	delete(bp.frames, f.ID)
}

// Unpin releases one pin on f; dirty marks the page as modified.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f.pins <= 0 {
		panic("store: Unpin of unpinned frame")
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// FlushAll writes every dirty frame back and syncs the pager. Pinned
// frames are flushed but stay resident.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	for _, f := range bp.frames {
		if f.dirty {
			if err := bp.pager.WritePage(f.ID, f.Data); err != nil {
				bp.mu.Unlock()
				return err
			}
			f.dirty = false
			bp.stats.Flushes++
		}
	}
	bp.mu.Unlock()
	return bp.pager.Sync()
}

// Discard drops page id from the cache without writing it back and frees
// it in the pager. The page must not be pinned.
func (bp *BufferPool) Discard(id PageID) error {
	bp.mu.Lock()
	if f, ok := bp.frames[id]; ok {
		if f.pins > 0 {
			bp.mu.Unlock()
			return fmt.Errorf("store: Discard of pinned page %d", id)
		}
		bp.drop(f)
	}
	bp.mu.Unlock()
	return bp.pager.Free(id)
}
