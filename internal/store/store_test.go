package store

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

func newTestPager(t *testing.T, pageSize int) (*Pager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := Create(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, path
}

func TestPagerCreateRejectsTinyPages(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "x.db"), 16); err == nil {
		t.Fatal("Create accepted 16-byte pages")
	}
}

func TestPagerAllocReadWrite(t *testing.T) {
	p, _ := newTestPager(t, 256)
	id, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id == InvalidPage {
		t.Fatal("Alloc returned InvalidPage")
	}
	buf := make([]byte, 256)
	copy(buf, "hello pages")
	if err := p.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if err := p.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("read back different data")
	}
}

func TestPagerRejectsBadBufferAndIDs(t *testing.T) {
	p, _ := newTestPager(t, 256)
	id, _ := p.Alloc()
	if err := p.WritePage(id, make([]byte, 255)); err == nil {
		t.Error("WritePage accepted short buffer")
	}
	if err := p.ReadPage(id, make([]byte, 257)); err == nil {
		t.Error("ReadPage accepted long buffer")
	}
	if err := p.ReadPage(InvalidPage, make([]byte, 256)); err == nil {
		t.Error("ReadPage accepted page 0")
	}
	if err := p.WritePage(PageID(99), make([]byte, 256)); err == nil {
		t.Error("WritePage accepted out-of-range page")
	}
	if err := p.Free(PageID(99)); err == nil {
		t.Error("Free accepted out-of-range page")
	}
}

func TestPagerFreeListReuse(t *testing.T) {
	p, _ := newTestPager(t, 256)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	c, _ := p.Alloc()
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	// LIFO reuse: the most recently freed page comes back first.
	r1, _ := p.Alloc()
	r2, _ := p.Alloc()
	if r1 != a || r2 != b {
		t.Fatalf("free list reuse: got %d,%d want %d,%d", r1, r2, a, b)
	}
	// A fresh alloc extends the file.
	r3, _ := p.Alloc()
	if r3 != c+1 {
		t.Fatalf("expected extension to page %d, got %d", c+1, r3)
	}
}

func TestPagerPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	p, err := Create(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Alloc()
	buf := make([]byte, 512)
	rng := rand.New(rand.NewSource(61))
	for i := range buf {
		buf[i] = byte(rng.Intn(256))
	}
	if err := p.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	p.SetRoot(3, uint64(id))
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if q.PageSize() != 512 {
		t.Fatalf("PageSize = %d, want 512", q.PageSize())
	}
	if got := q.Root(3); got != uint64(id) {
		t.Fatalf("Root(3) = %d, want %d", got, id)
	}
	got := make([]byte, 512)
	if err := q.ReadPage(PageID(q.Root(3)), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("page contents lost across reopen")
	}
	// Free list survives too.
	if err := q.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := q.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestPagerOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.db")
	p, err := Create(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	// Corrupt the magic.
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(filepath.Join(t.TempDir(), "missing.db")); err == nil {
		t.Error("Open accepted missing file")
	}
}

func TestBufferPoolBasic(t *testing.T) {
	p, _ := newTestPager(t, 256)
	bp, err := NewBufferPool(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data, "cached")
	id := f.ID
	bp.Unpin(f, true)
	// Hit.
	g, err := bp.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(g.Data[:6]) != "cached" {
		t.Fatalf("cached data = %q", g.Data[:6])
	}
	bp.Unpin(g, false)
	st := bp.Stats()
	if st.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", st.Hits)
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	p, _ := newTestPager(t, 256)
	bp, err := NewBufferPool(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		f, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Data[0] = byte(i + 1)
		ids = append(ids, f.ID)
		bp.Unpin(f, true)
	}
	// Pages 0..2 must have been evicted and written back; re-reading them
	// through the pool must return the stored bytes.
	for i, id := range ids {
		f, err := bp.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[0] != byte(i+1) {
			t.Fatalf("page %d: data[0] = %d, want %d", id, f.Data[0], i+1)
		}
		bp.Unpin(f, false)
	}
	if st := bp.Stats(); st.Evictions == 0 || st.Flushes == 0 {
		t.Fatalf("expected evictions and flushes, got %+v", st)
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	p, _ := newTestPager(t, 256)
	bp, err := NewBufferPool(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := bp.NewPage()
	b, _ := bp.NewPage()
	if _, err := bp.NewPage(); err == nil {
		t.Fatal("NewPage succeeded with all frames pinned")
	}
	bp.Unpin(a, false)
	if _, err := bp.NewPage(); err != nil {
		t.Fatalf("NewPage failed after unpin: %v", err)
	}
	bp.Unpin(b, false)
}

func TestBufferPoolUnpinPanicsWhenUnpinned(t *testing.T) {
	p, _ := newTestPager(t, 256)
	bp, _ := NewBufferPool(p, 2)
	f, _ := bp.NewPage()
	bp.Unpin(f, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double Unpin did not panic")
		}
	}()
	bp.Unpin(f, false)
}

func TestBufferPoolFlushAllPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flush.db")
	p, err := Create(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	bp, _ := NewBufferPool(p, 8)
	f, _ := bp.NewPage()
	copy(f.Data, "durable")
	id := f.ID
	bp.Unpin(f, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.Close()

	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	buf := make([]byte, 256)
	if err := q.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:7]) != "durable" {
		t.Fatalf("data = %q", buf[:7])
	}
}

func TestBufferPoolDiscard(t *testing.T) {
	p, _ := newTestPager(t, 256)
	bp, _ := NewBufferPool(p, 4)
	f, _ := bp.NewPage()
	id := f.ID
	if err := bp.Discard(id); err == nil {
		t.Fatal("Discard succeeded on pinned page")
	}
	bp.Unpin(f, true)
	if err := bp.Discard(id); err != nil {
		t.Fatal(err)
	}
	// The freed page is reused by the next allocation.
	g, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if g.ID != id {
		t.Fatalf("freed page not reused: got %d, want %d", g.ID, id)
	}
	bp.Unpin(g, false)
}

func TestNewBufferPoolRejectsZeroCapacity(t *testing.T) {
	p, _ := newTestPager(t, 256)
	if _, err := NewBufferPool(p, 0); err == nil {
		t.Fatal("NewBufferPool accepted capacity 0")
	}
}

// TestPagerManyPagesStress: a few thousand alloc/write/read/free cycles
// through a small buffer pool keep data intact.
func TestPagerManyPagesStress(t *testing.T) {
	p, _ := newTestPager(t, 256)
	bp, _ := NewBufferPool(p, 8)
	rng := rand.New(rand.NewSource(62))
	content := make(map[PageID]byte)
	var live []PageID
	for i := 0; i < 3000; i++ {
		switch {
		case len(live) == 0 || rng.Intn(3) > 0:
			f, err := bp.NewPage()
			if err != nil {
				t.Fatal(err)
			}
			b := byte(rng.Intn(256))
			f.Data[10] = b
			content[f.ID] = b
			live = append(live, f.ID)
			bp.Unpin(f, true)
		default:
			idx := rng.Intn(len(live))
			id := live[idx]
			f, err := bp.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if f.Data[10] != content[id] {
				t.Fatalf("page %d: data %d, want %d", id, f.Data[10], content[id])
			}
			bp.Unpin(f, false)
			if rng.Intn(2) == 0 {
				if err := bp.Discard(id); err != nil {
					t.Fatal(err)
				}
				delete(content, id)
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
	}
}

func TestPagerStats(t *testing.T) {
	p, _ := newTestPager(t, 256)
	s, err := p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalPages != 1 || s.FreePages != 0 || s.PageSize != 256 {
		t.Fatalf("fresh stats: %+v", s)
	}
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	s, err = p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalPages != 3 || s.FreePages != 2 {
		t.Fatalf("stats after free: %+v", s)
	}
	// Reuse shrinks the free list.
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	s, _ = p.Stats()
	if s.FreePages != 1 {
		t.Fatalf("stats after realloc: %+v", s)
	}
}
