package store

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
)

func newTestPager(t *testing.T, pageSize int) (*Pager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := Create(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, path
}

func TestPagerCreateRejectsTinyPages(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "x.db"), 16); err == nil {
		t.Fatal("Create accepted 16-byte pages")
	}
}

func TestPagerAllocReadWrite(t *testing.T) {
	p, _ := newTestPager(t, 256)
	id, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id == InvalidPage {
		t.Fatal("Alloc returned InvalidPage")
	}
	buf := make([]byte, p.PageSize())
	copy(buf, "hello pages")
	if err := p.WritePage(id, buf, 7); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, p.PageSize())
	lsn, err := p.ReadPage(id, got)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 7 {
		t.Fatalf("LSN = %d, want 7", lsn)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("read back different data")
	}
}

func TestPagerRejectsBadBufferAndIDs(t *testing.T) {
	p, _ := newTestPager(t, 256)
	id, _ := p.Alloc()
	ps := p.PageSize()
	if err := p.WritePage(id, make([]byte, ps-1), 0); err == nil {
		t.Error("WritePage accepted short buffer")
	}
	if _, err := p.ReadPage(id, make([]byte, ps+1)); err == nil {
		t.Error("ReadPage accepted long buffer")
	}
	if _, err := p.ReadPage(InvalidPage, make([]byte, ps)); err == nil {
		t.Error("ReadPage accepted page 0")
	}
	if err := p.WritePage(PageID(99), make([]byte, ps), 0); err == nil {
		t.Error("WritePage accepted out-of-range page")
	}
	if err := p.Free(PageID(99)); err == nil {
		t.Error("Free accepted out-of-range page")
	}
}

func TestPagerFreeListReuse(t *testing.T) {
	p, _ := newTestPager(t, 256)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	c, _ := p.Alloc()
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	// LIFO reuse: the most recently freed page comes back first.
	r1, _ := p.Alloc()
	r2, _ := p.Alloc()
	if r1 != a || r2 != b {
		t.Fatalf("free list reuse: got %d,%d want %d,%d", r1, r2, a, b)
	}
	// A fresh alloc extends the file.
	r3, _ := p.Alloc()
	if r3 != c+1 {
		t.Fatalf("expected extension to page %d, got %d", c+1, r3)
	}
}

func TestPagerPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	p, err := Create(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Alloc()
	buf := make([]byte, p.PageSize())
	rng := rand.New(rand.NewSource(61))
	for i := range buf {
		buf[i] = byte(rng.Intn(256))
	}
	if err := p.WritePage(id, buf, 42); err != nil {
		t.Fatal(err)
	}
	p.SetRoot(3, uint64(id))
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if q.PageSize() != 512-PageFooterSize {
		t.Fatalf("PageSize = %d, want %d", q.PageSize(), 512-PageFooterSize)
	}
	if q.PhysicalPageSize() != 512 {
		t.Fatalf("PhysicalPageSize = %d, want 512", q.PhysicalPageSize())
	}
	if got := q.Root(3); got != uint64(id) {
		t.Fatalf("Root(3) = %d, want %d", got, id)
	}
	got := make([]byte, q.PageSize())
	lsn, err := q.ReadPage(PageID(q.Root(3)), got)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 42 {
		t.Fatalf("LSN lost across reopen: got %d, want 42", lsn)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("page contents lost across reopen")
	}
	// Free list survives too.
	if err := q.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := q.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestPagerWALBasePersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.db")
	p, err := Create(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	p.SetWALBase(123456)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if got := q.WALBase(); got != 123456 {
		t.Fatalf("WALBase = %d, want 123456", got)
	}
}

func TestPagerMetaVersionTracksMutations(t *testing.T) {
	p, _ := newTestPager(t, 256)
	v0 := p.MetaVersion()
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	if p.MetaVersion() == v0 {
		t.Fatal("Alloc did not bump the meta version")
	}
	v1 := p.MetaVersion()
	p.SetRoot(0, 99)
	if p.MetaVersion() == v1 {
		t.Fatal("SetRoot did not bump the meta version")
	}
}

func TestPagerOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.db")
	p, err := Create(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(filepath.Join(t.TempDir(), "missing.db")); err == nil {
		t.Error("Open accepted missing file")
	}
}

func TestBufferPoolBasic(t *testing.T) {
	p, _ := newTestPager(t, 256)
	bp, err := NewBufferPool(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data, "cached")
	id := f.ID
	bp.Unpin(f, true)
	// Hit.
	g, err := bp.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(g.Data[:6]) != "cached" {
		t.Fatalf("cached data = %q", g.Data[:6])
	}
	bp.Unpin(g, false)
	st := bp.Stats()
	if st.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", st.Hits)
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	p, _ := newTestPager(t, 256)
	bp, err := NewBufferPool(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		f, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Data[0] = byte(i + 1)
		ids = append(ids, f.ID)
		bp.Unpin(f, true)
	}
	// Pages 0..2 must have been evicted and written back; re-reading them
	// through the pool must return the stored bytes.
	for i, id := range ids {
		f, err := bp.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[0] != byte(i+1) {
			t.Fatalf("page %d: data[0] = %d, want %d", id, f.Data[0], i+1)
		}
		bp.Unpin(f, false)
	}
	if st := bp.Stats(); st.Evictions == 0 || st.Flushes == 0 {
		t.Fatalf("expected evictions and flushes, got %+v", st)
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	p, _ := newTestPager(t, 256)
	bp, err := NewBufferPool(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := bp.NewPage()
	b, _ := bp.NewPage()
	if _, err := bp.NewPage(); err == nil {
		t.Fatal("NewPage succeeded with all frames pinned")
	}
	bp.Unpin(a, false)
	if _, err := bp.NewPage(); err != nil {
		t.Fatalf("NewPage failed after unpin: %v", err)
	}
	bp.Unpin(b, false)
}

func TestBufferPoolUnpinPanicsWhenUnpinned(t *testing.T) {
	p, _ := newTestPager(t, 256)
	bp, _ := NewBufferPool(p, 2)
	f, _ := bp.NewPage()
	bp.Unpin(f, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double Unpin did not panic")
		}
	}()
	bp.Unpin(f, false)
}

func TestBufferPoolFlushAllPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flush.db")
	p, err := Create(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	bp, _ := NewBufferPool(p, 8)
	f, _ := bp.NewPage()
	copy(f.Data, "durable")
	id := f.ID
	bp.Unpin(f, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.Close()

	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	buf := make([]byte, q.PageSize())
	if _, err := q.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:7]) != "durable" {
		t.Fatalf("data = %q", buf[:7])
	}
}

func TestBufferPoolDiscard(t *testing.T) {
	p, _ := newTestPager(t, 256)
	bp, _ := NewBufferPool(p, 4)
	f, _ := bp.NewPage()
	id := f.ID
	if err := bp.Discard(id); err == nil {
		t.Fatal("Discard succeeded on pinned page")
	}
	bp.Unpin(f, true)
	if err := bp.Discard(id); err != nil {
		t.Fatal(err)
	}
	// The freed page is reused by the next allocation.
	g, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if g.ID != id {
		t.Fatalf("freed page not reused: got %d, want %d", g.ID, id)
	}
	bp.Unpin(g, false)
}

func TestNewBufferPoolRejectsZeroCapacity(t *testing.T) {
	p, _ := newTestPager(t, 256)
	if _, err := NewBufferPool(p, 0); err == nil {
		t.Fatal("NewBufferPool accepted capacity 0")
	}
}

// TestBufferPoolNoStealUnderHook: with a FlushHook installed, dirty
// frames are not evicted — the pool prefers exhaustion over writing
// possibly-uncommitted pages (no-steal).
func TestBufferPoolNoStealUnderHook(t *testing.T) {
	p, _ := newTestPager(t, 256)
	bp, _ := NewBufferPool(p, 2)
	hookCalls := 0
	bp.SetFlushHook(func(id PageID, lsn uint64) error {
		hookCalls++
		return nil
	})
	a, _ := bp.NewPage()
	b, _ := bp.NewPage()
	bp.Unpin(a, true)
	bp.Unpin(b, true)
	if _, err := bp.NewPage(); err == nil {
		t.Fatal("NewPage evicted a dirty frame despite no-steal")
	}
	if hookCalls != 0 {
		t.Fatalf("hook called %d times during failed admission", hookCalls)
	}
	// FlushAll cleans the frames (consulting the hook), after which
	// eviction works again.
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if hookCalls != 2 {
		t.Fatalf("hook called %d times during FlushAll, want 2", hookCalls)
	}
	if _, err := bp.NewPage(); err != nil {
		t.Fatalf("NewPage still failing after FlushAll: %v", err)
	}
}

// TestBufferPoolLogDirty: LogDirty visits dirty frames in PageID order,
// stamps the returned LSNs, and skips already-logged frames next time.
func TestBufferPoolLogDirty(t *testing.T) {
	p, _ := newTestPager(t, 256)
	bp, _ := NewBufferPool(p, 8)
	var ids []PageID
	for i := 0; i < 3; i++ {
		f, _ := bp.NewPage()
		ids = append(ids, f.ID)
		bp.Unpin(f, true)
	}
	var visited []PageID
	next := uint64(100)
	log := func(id PageID, data []byte) (uint64, error) {
		visited = append(visited, id)
		next++
		return next, nil
	}
	if err := bp.LogDirty(log); err != nil {
		t.Fatal(err)
	}
	if len(visited) != 3 {
		t.Fatalf("visited %d frames, want 3", len(visited))
	}
	for i := 1; i < len(visited); i++ {
		if visited[i-1] >= visited[i] {
			t.Fatalf("LogDirty order not ascending: %v", visited)
		}
	}
	// All logged: a second pass visits nothing.
	visited = nil
	if err := bp.LogDirty(log); err != nil {
		t.Fatal(err)
	}
	if len(visited) != 0 {
		t.Fatalf("second LogDirty visited %v", visited)
	}
	// Re-dirtying one frame re-queues just that frame.
	f, _ := bp.Get(ids[1])
	f.Data[0] = 9
	bp.Unpin(f, true)
	visited = nil
	if err := bp.LogDirty(log); err != nil {
		t.Fatal(err)
	}
	if len(visited) != 1 || visited[0] != ids[1] {
		t.Fatalf("after re-dirty, visited %v, want [%d]", visited, ids[1])
	}
	if f.LSN != next {
		t.Fatalf("frame LSN = %d, want %d", f.LSN, next)
	}
}

// failAfterFile wraps a File and fails WriteAt once armed.
type failAfterFile struct {
	File
	fail bool
}

func (f *failAfterFile) WriteAt(p []byte, off int64) (int, error) {
	if f.fail {
		return 0, errors.New("injected write failure")
	}
	return f.File.WriteAt(p, off)
}

// TestBufferPoolEvictionErrorIsSticky: a failed dirty write-back during
// eviction must not lose the error — it is counted, surfaced by Err, and
// returned from subsequent pool calls.
func TestBufferPoolEvictionErrorIsSticky(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sticky.db")
	inner, err := Create(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	ff := &failAfterFile{File: inner.f}
	p := inner
	p.f = ff

	bp, _ := NewBufferPool(p, 2)
	a, _ := bp.NewPage()
	b, _ := bp.NewPage()
	bp.Unpin(a, true)
	bp.Unpin(b, true)
	c, _ := bp.NewPage() // evicts a (write-back succeeds, device healthy)
	bp.Unpin(c, true)

	// Now frames b and c are resident and dirty; re-reading a must evict
	// one of them, and that write-back fails.
	ff.fail = true
	if _, err := bp.Get(a.ID); err == nil {
		t.Fatal("Get succeeded while write-backs fail")
	}
	if err := bp.Err(); err == nil {
		t.Fatal("Err() returned nil after failed write-back")
	}
	if st := bp.Stats(); st.FailedWriteBacks == 0 {
		t.Fatalf("FailedWriteBacks = 0, want > 0: %+v", st)
	}
	// The sticky error surfaces from every later call, even after the
	// underlying device "recovers".
	ff.fail = false
	if _, err := bp.Get(a.ID); err == nil {
		t.Fatal("Get did not surface the sticky I/O error")
	}
	if err := bp.FlushAll(); err == nil {
		t.Fatal("FlushAll did not surface the sticky I/O error")
	}
}

// TestPagerManyPagesStress: a few thousand alloc/write/read/free cycles
// through a small buffer pool keep data intact.
func TestPagerManyPagesStress(t *testing.T) {
	p, _ := newTestPager(t, 256)
	bp, _ := NewBufferPool(p, 8)
	rng := rand.New(rand.NewSource(62))
	content := make(map[PageID]byte)
	var live []PageID
	for i := 0; i < 3000; i++ {
		switch {
		case len(live) == 0 || rng.Intn(3) > 0:
			f, err := bp.NewPage()
			if err != nil {
				t.Fatal(err)
			}
			b := byte(rng.Intn(256))
			f.Data[10] = b
			content[f.ID] = b
			live = append(live, f.ID)
			bp.Unpin(f, true)
		default:
			idx := rng.Intn(len(live))
			id := live[idx]
			f, err := bp.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if f.Data[10] != content[id] {
				t.Fatalf("page %d: data %d, want %d", id, f.Data[10], content[id])
			}
			bp.Unpin(f, false)
			if rng.Intn(2) == 0 {
				if err := bp.Discard(id); err != nil {
					t.Fatal(err)
				}
				delete(content, id)
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
	}
}

func TestPagerStats(t *testing.T) {
	p, _ := newTestPager(t, 256)
	s, err := p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalPages != 1 || s.FreePages != 0 || s.PageSize != 256-PageFooterSize {
		t.Fatalf("fresh stats: %+v", s)
	}
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	s, err = p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalPages != 3 || s.FreePages != 2 {
		t.Fatalf("stats after free: %+v", s)
	}
	// Reuse shrinks the free list.
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	s, _ = p.Stats()
	if s.FreePages != 1 {
		t.Fatalf("stats after realloc: %+v", s)
	}
}
