package store

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
)

// File is the I/O surface the storage layer writes through. *os.File
// satisfies it directly; tests substitute fault-injecting implementations
// (internal/crashfs) to exercise crash recovery deterministically.
type File interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(size int64) error
	Close() error
}

var _ File = (*os.File)(nil)

// Every page in a page file carries a footer in its last PageFooterSize
// bytes, maintained by the Pager and invisible to clients (PageSize
// reports the usable size):
//
//	offset n-16: LSN (uint64) — the WAL position of the last logged image
//	             of this page; 0 if the page was never logged.
//	offset n-8:  CRC32-Castagnoli over bytes [0, n-8) — contents + LSN.
//	offset n-4:  reserved (zero)
//
// The checksum turns torn page writes and bit flips into detectable read
// errors, and the LSN lets WAL replay skip page images that are already
// reflected on disk (the ARIES pageLSN comparison).
const PageFooterSize = 16

var footerCRC = crc32.MakeTable(crc32.Castagnoli)

// StampPageFooter writes lsn and a fresh checksum into the footer of a
// full physical page.
func StampPageFooter(page []byte, lsn uint64) {
	n := len(page)
	binary.LittleEndian.PutUint64(page[n-16:], lsn)
	binary.LittleEndian.PutUint32(page[n-8:], crc32.Checksum(page[:n-8], footerCRC))
	binary.LittleEndian.PutUint32(page[n-4:], 0)
}

// CheckPageFooter verifies a full physical page's checksum and returns
// its LSN. ok is false if the page is torn or corrupt.
func CheckPageFooter(page []byte) (lsn uint64, ok bool) {
	n := len(page)
	if n < PageFooterSize {
		return 0, false
	}
	sum := crc32.Checksum(page[:n-8], footerCRC)
	if binary.LittleEndian.Uint32(page[n-8:]) != sum {
		return 0, false
	}
	return binary.LittleEndian.Uint64(page[n-16:]), true
}

// PeekMeta reads the meta page of a page file without opening a Pager:
// WAL recovery runs below the pager and needs the physical page size and
// the fallback WAL base LSN before the file is structurally trusted.
// ok is false if the meta page is unreadable or fails its checksum.
func PeekMeta(f File) (pageSize int, walBase uint64, ok bool) {
	var head [12]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return 0, 0, false
	}
	if binary.LittleEndian.Uint32(head[0:]) != pagerMagic {
		return 0, 0, false
	}
	ps := int(binary.LittleEndian.Uint32(head[8:]))
	if ps < minPageSize || ps > 1<<24 {
		return 0, 0, false
	}
	page := make([]byte, ps)
	if _, err := f.ReadAt(page, 0); err != nil {
		return 0, 0, false
	}
	if _, ok := CheckPageFooter(page); !ok {
		return 0, 0, false
	}
	return ps, binary.LittleEndian.Uint64(page[metaWALBaseOff:]), true
}
