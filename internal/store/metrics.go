package store

import "walrus/internal/obs"

// The storage layer publishes its activity into an obs.Registry through
// pre-resolved metric handles. The zero value of each metrics struct holds
// only nil handles, whose operations are no-ops, so the instrumentation
// sites run unconditionally: with observability off the cost is one nil
// check per counter touch and no wall-clock reads (spans and latency
// histograms are gated on reg != nil).

// poolMetrics are one BufferPool's obs handles.
type poolMetrics struct {
	hits, misses, evictions, flushes, failedWriteBacks *obs.Counter
	reg                                                *obs.Registry // nil when observability is off; gates spans
}

// SetMetrics publishes the pool's counters into reg under the
// walrus_bufpool_* namespace; nil detaches.
func (bp *BufferPool) SetMetrics(reg *obs.Registry) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if reg == nil {
		bp.om = poolMetrics{}
		return
	}
	bp.om = poolMetrics{
		reg:              reg,
		hits:             reg.Counter("walrus_bufpool_hits_total", "Buffer pool page lookups served from memory."),
		misses:           reg.Counter("walrus_bufpool_misses_total", "Buffer pool page lookups that read the pager."),
		evictions:        reg.Counter("walrus_bufpool_evictions_total", "Frames evicted from the buffer pool."),
		flushes:          reg.Counter("walrus_bufpool_flushes_total", "Dirty frames written back to the pager."),
		failedWriteBacks: reg.Counter("walrus_bufpool_failed_writebacks_total", "Dirty write-backs that errored during eviction."),
	}
}

// pagerMetrics are one Pager's obs handles.
type pagerMetrics struct {
	reads, writes, syncs      *obs.Counter
	readSeconds, writeSeconds *obs.Histogram
	reg                       *obs.Registry // nil when observability is off; gates clock reads and spans
}

// SetMetrics publishes the pager's counters and latency histograms into
// reg under the walrus_pager_* namespace; nil detaches.
func (p *Pager) SetMetrics(reg *obs.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if reg == nil {
		p.om = pagerMetrics{}
		return
	}
	p.om = pagerMetrics{
		reg:          reg,
		reads:        reg.Counter("walrus_pager_reads_total", "Pages read from the page file."),
		writes:       reg.Counter("walrus_pager_writes_total", "Physical page writes, including meta and file extension."),
		syncs:        reg.Counter("walrus_pager_syncs_total", "Page file fsyncs."),
		readSeconds:  reg.Histogram("walrus_pager_read_seconds", "Page read latency.", nil),
		writeSeconds: reg.Histogram("walrus_pager_write_seconds", "Physical page write latency.", nil),
	}
}

// heapMetrics are one HeapFile's obs handles.
type heapMetrics struct {
	inserts, gets, deletes *obs.Counter
}

// SetMetrics publishes the heap file's counters into reg under the
// walrus_heap_* namespace; nil detaches.
func (h *HeapFile) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		h.om = heapMetrics{}
		return
	}
	h.om = heapMetrics{
		inserts: reg.Counter("walrus_heap_inserts_total", "Records inserted into the region heap."),
		gets:    reg.Counter("walrus_heap_gets_total", "Records read from the region heap."),
		deletes: reg.Counter("walrus_heap_deletes_total", "Records deleted from the region heap."),
	}
}
