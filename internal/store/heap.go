package store

import (
	"encoding/binary"
	"fmt"
)

// RID identifies a record in a HeapFile: its page and its slot within the
// page's slot directory. RIDs are stable across in-page compaction.
type RID struct {
	Page PageID
	Slot uint16
}

// Pack encodes the RID into a uint64 (handy as an index payload).
func (r RID) Pack() uint64 { return uint64(r.Page)<<16 | uint64(r.Slot) }

// UnpackRID reverses RID.Pack.
func UnpackRID(v uint64) RID {
	return RID{Page: PageID(v >> 16), Slot: uint16(v & 0xFFFF)}
}

func (r RID) String() string { return fmt.Sprintf("rid(%d,%d)", r.Page, r.Slot) }

// Heap page layout:
//
//	offset 0:  next page id (uint32; 0 = end of chain)
//	offset 4:  slot count (uint16)
//	offset 6:  free-space start (uint16; first byte past the record area)
//	offset 8:  record area, growing upward
//	... free space ...
//	page end:  slot directory, growing downward; slot i occupies the 4
//	           bytes at pageSize-4*(i+1): record offset (uint16) and
//	           record length (uint16). Offset 0xFFFF marks a dead slot.
const (
	heapHeader   = 8
	heapSlotSize = 4
	heapDeadSlot = 0xFFFF
)

// HeapFile stores variable-length records in slotted pages chained through
// a pager, the classic database heap-file organization. WALRUS keeps each
// region's serialized payload (signature, bounding box, coverage bitmap)
// here, as the paper stores them "in the index along with the signature"
// (Section 5.4). Not safe for concurrent mutation.
type HeapFile struct {
	pg       *Pager
	pool     *BufferPool
	rootSlot int         // pager root slot holding the first page id
	first    PageID      // first page of the chain (0 = empty)
	last     PageID      // last page of the chain, where inserts go
	om       heapMetrics // zero value = observability off
}

// NewHeapFile creates an empty heap file whose first-page pointer lives in
// the given pager root slot. OpenHeapFile reopens it later.
func NewHeapFile(pg *Pager, pool *BufferPool, rootSlot int) (*HeapFile, error) {
	h := &HeapFile{pg: pg, pool: pool, rootSlot: rootSlot}
	pg.SetRoot(rootSlot, 0)
	return h, nil
}

// OpenHeapFile reopens a heap file previously created with NewHeapFile.
func OpenHeapFile(pg *Pager, pool *BufferPool, rootSlot int) (*HeapFile, error) {
	h := &HeapFile{pg: pg, pool: pool, rootSlot: rootSlot}
	h.first = PageID(pg.Root(rootSlot))
	// Find the tail of the chain for appends.
	id := h.first
	for id != 0 {
		f, err := pool.Get(id)
		if err != nil {
			return nil, err
		}
		next := PageID(binary.LittleEndian.Uint32(f.Data[0:]))
		pool.Unpin(f, false)
		h.last = id
		id = next
	}
	return h, nil
}

// maxRecord returns the largest record this heap can store in one page.
func (h *HeapFile) maxRecord() int {
	return h.pg.PageSize() - heapHeader - heapSlotSize
}

// Insert appends a record and returns its RID.
func (h *HeapFile) Insert(rec []byte) (RID, error) {
	if len(rec) > h.maxRecord() {
		return RID{}, fmt.Errorf("store: record of %d bytes exceeds page capacity %d", len(rec), h.maxRecord())
	}
	if h.last != 0 {
		if rid, ok, err := h.tryInsert(h.last, rec); err != nil || ok {
			if err == nil {
				h.om.inserts.Inc()
			}
			return rid, err
		}
	}
	// Need a fresh page.
	f, err := h.pool.NewPage()
	if err != nil {
		return RID{}, err
	}
	binary.LittleEndian.PutUint32(f.Data[0:], 0)
	binary.LittleEndian.PutUint16(f.Data[4:], 0)
	binary.LittleEndian.PutUint16(f.Data[6:], heapHeader)
	newID := f.ID
	h.pool.Unpin(f, true)
	if h.last == 0 {
		h.first = newID
		h.pg.SetRoot(h.rootSlot, uint64(newID))
	} else {
		prev, err := h.pool.Get(h.last)
		if err != nil {
			return RID{}, err
		}
		binary.LittleEndian.PutUint32(prev.Data[0:], uint32(newID))
		h.pool.Unpin(prev, true)
	}
	h.last = newID
	rid, ok, err := h.tryInsert(newID, rec)
	if err != nil {
		return RID{}, err
	}
	if !ok {
		return RID{}, fmt.Errorf("store: record of %d bytes does not fit an empty page", len(rec))
	}
	h.om.inserts.Inc()
	return rid, nil
}

// tryInsert attempts to place rec in page id, compacting dead space first
// if that would make it fit.
func (h *HeapFile) tryInsert(id PageID, rec []byte) (RID, bool, error) {
	f, err := h.pool.Get(id)
	if err != nil {
		return RID{}, false, err
	}
	defer func() { h.pool.Unpin(f, true) }()

	ps := h.pg.PageSize()
	slots := int(binary.LittleEndian.Uint16(f.Data[4:]))
	free := int(binary.LittleEndian.Uint16(f.Data[6:]))

	// Look for a reusable dead slot; otherwise we need a new directory
	// entry too.
	slot := -1
	for i := 0; i < slots; i++ {
		off := binary.LittleEndian.Uint16(f.Data[ps-heapSlotSize*(i+1):])
		if off == heapDeadSlot {
			slot = i
			break
		}
	}
	needSlot := 0
	if slot < 0 {
		needSlot = heapSlotSize
	}
	avail := ps - heapSlotSize*slots - needSlot - free
	if avail < len(rec) {
		// Try reclaiming dead space.
		if h.deadBytes(f, slots) >= len(rec)-avail {
			h.compactPage(f, slots)
			free = int(binary.LittleEndian.Uint16(f.Data[6:]))
			avail = ps - heapSlotSize*slots - needSlot - free
		}
		if avail < len(rec) {
			return RID{}, false, nil
		}
	}
	if slot < 0 {
		slot = slots
		binary.LittleEndian.PutUint16(f.Data[4:], uint16(slots+1))
	}
	copy(f.Data[free:], rec)
	dir := ps - heapSlotSize*(slot+1)
	binary.LittleEndian.PutUint16(f.Data[dir:], uint16(free))
	binary.LittleEndian.PutUint16(f.Data[dir+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(f.Data[6:], uint16(free+len(rec)))
	return RID{Page: id, Slot: uint16(slot)}, true, nil
}

// deadBytes sums the record bytes owned by dead slots.
func (h *HeapFile) deadBytes(f *Frame, slots int) int {
	// Dead slots zero their length at delete time, so dead record bytes
	// are whatever the live records do not account for.
	ps := h.pg.PageSize()
	live := 0
	for i := 0; i < slots; i++ {
		dir := ps - heapSlotSize*(i+1)
		if binary.LittleEndian.Uint16(f.Data[dir:]) == heapDeadSlot {
			continue
		}
		live += int(binary.LittleEndian.Uint16(f.Data[dir+2:]))
	}
	free := int(binary.LittleEndian.Uint16(f.Data[6:]))
	return free - heapHeader - live
}

// compactPage rewrites live records contiguously, preserving slot numbers
// (and therefore RIDs).
func (h *HeapFile) compactPage(f *Frame, slots int) {
	ps := h.pg.PageSize()
	buf := make([]byte, 0, ps)
	type rec struct {
		slot, length int
	}
	var live []rec
	for i := 0; i < slots; i++ {
		dir := ps - heapSlotSize*(i+1)
		off := binary.LittleEndian.Uint16(f.Data[dir:])
		if off == heapDeadSlot {
			continue
		}
		length := int(binary.LittleEndian.Uint16(f.Data[dir+2:]))
		buf = append(buf, f.Data[off:int(off)+length]...)
		live = append(live, rec{i, length})
	}
	copy(f.Data[heapHeader:], buf)
	pos := heapHeader
	for _, r := range live {
		dir := ps - heapSlotSize*(r.slot+1)
		binary.LittleEndian.PutUint16(f.Data[dir:], uint16(pos))
		pos += r.length
	}
	binary.LittleEndian.PutUint16(f.Data[6:], uint16(pos))
}

// Get returns a copy of the record at rid.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	f, err := h.pool.Get(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(f, false)
	ps := h.pg.PageSize()
	slots := int(binary.LittleEndian.Uint16(f.Data[4:]))
	if int(rid.Slot) >= slots {
		return nil, fmt.Errorf("store: %v: slot out of range (%d slots)", rid, slots)
	}
	dir := ps - heapSlotSize*(int(rid.Slot)+1)
	off := binary.LittleEndian.Uint16(f.Data[dir:])
	if off == heapDeadSlot {
		return nil, fmt.Errorf("store: %v: record deleted", rid)
	}
	length := int(binary.LittleEndian.Uint16(f.Data[dir+2:]))
	out := make([]byte, length)
	copy(out, f.Data[off:int(off)+length])
	h.om.gets.Inc()
	return out, nil
}

// Delete removes the record at rid. Its page space is reclaimed lazily by
// compaction during later inserts.
func (h *HeapFile) Delete(rid RID) error {
	f, err := h.pool.Get(rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unpin(f, true)
	ps := h.pg.PageSize()
	slots := int(binary.LittleEndian.Uint16(f.Data[4:]))
	if int(rid.Slot) >= slots {
		return fmt.Errorf("store: %v: slot out of range (%d slots)", rid, slots)
	}
	dir := ps - heapSlotSize*(int(rid.Slot)+1)
	if binary.LittleEndian.Uint16(f.Data[dir:]) == heapDeadSlot {
		return fmt.Errorf("store: %v: already deleted", rid)
	}
	binary.LittleEndian.PutUint16(f.Data[dir:], heapDeadSlot)
	binary.LittleEndian.PutUint16(f.Data[dir+2:], 0)
	h.om.deletes.Inc()
	return nil
}

// Scan calls fn for every live record in chain order, stopping early if fn
// returns false. The record slice is only valid during the call.
func (h *HeapFile) Scan(fn func(RID, []byte) bool) error {
	id := h.first
	for id != 0 {
		f, err := h.pool.Get(id)
		if err != nil {
			return err
		}
		ps := h.pg.PageSize()
		slots := int(binary.LittleEndian.Uint16(f.Data[4:]))
		next := PageID(binary.LittleEndian.Uint32(f.Data[0:]))
		for i := 0; i < slots; i++ {
			dir := ps - heapSlotSize*(i+1)
			off := binary.LittleEndian.Uint16(f.Data[dir:])
			if off == heapDeadSlot {
				continue
			}
			length := int(binary.LittleEndian.Uint16(f.Data[dir+2:]))
			if !fn(RID{Page: id, Slot: uint16(i)}, f.Data[off:int(off)+length]) {
				h.pool.Unpin(f, false)
				return nil
			}
		}
		h.pool.Unpin(f, false)
		id = next
	}
	return nil
}
