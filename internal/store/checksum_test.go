package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPageFooterRoundTrip(t *testing.T) {
	page := make([]byte, 256)
	copy(page, "payload bytes")
	StampPageFooter(page, 987654321)
	lsn, ok := CheckPageFooter(page)
	if !ok {
		t.Fatal("fresh footer failed verification")
	}
	if lsn != 987654321 {
		t.Fatalf("LSN = %d, want 987654321", lsn)
	}
	for _, off := range []int{0, 5, 100, 240, 248} {
		mutated := append([]byte(nil), page...)
		mutated[off] ^= 0x40
		if _, ok := CheckPageFooter(mutated); ok {
			t.Errorf("flipped byte at %d went undetected", off)
		}
	}
}

// TestHeapPageChecksumDetectsFlippedByte corrupts one byte of a heap page
// directly in the file and verifies the read path reports it instead of
// returning garbage.
func TestHeapPageChecksumDetectsFlippedByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.db")
	p, err := Create(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	pool, _ := NewBufferPool(p, 8)
	h, err := NewHeapFile(p, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte("walrus"), 10)
	rid, err := h.Insert(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one record byte inside the heap page, on disk.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(rid.Page)*256 + 64
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	q, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	pool2, _ := NewBufferPool(q, 8)
	// The corrupt page fails its checksum at first read — either while
	// reopening the heap (it reads the chain head) or on Get.
	h2, err := OpenHeapFile(q, pool2, 0)
	if err == nil {
		_, err = h2.Get(rid)
	}
	if err == nil {
		t.Fatal("corrupted heap page read back without error")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("error does not mention the checksum: %v", err)
	}
}
