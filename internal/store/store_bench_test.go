package store

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func BenchmarkBufferPoolGetHit(b *testing.B) {
	p, err := Create(filepath.Join(b.TempDir(), "bench.db"), 4096)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	bp, _ := NewBufferPool(p, 64)
	f, _ := bp.NewPage()
	id := f.ID
	bp.Unpin(f, true)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := bp.Get(id)
		if err != nil {
			b.Fatal(err)
		}
		bp.Unpin(g, false)
	}
}

func BenchmarkBufferPoolEvictionChurn(b *testing.B) {
	p, err := Create(filepath.Join(b.TempDir(), "churn.db"), 4096)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	bp, _ := NewBufferPool(p, 16)
	var ids []PageID
	for i := 0; i < 64; i++ {
		f, err := bp.NewPage()
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, f.ID)
		bp.Unpin(f, true)
	}
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := bp.Get(ids[rng.Intn(len(ids))])
		if err != nil {
			b.Fatal(err)
		}
		bp.Unpin(f, false)
	}
}

func BenchmarkHeapInsertGet(b *testing.B) {
	p, err := Create(filepath.Join(b.TempDir(), "heap.db"), 4096)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	pool, _ := NewBufferPool(p, 64)
	h, _ := NewHeapFile(p, pool, 5)
	rec := make([]byte, 200)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rid, err := h.Insert(rec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Get(rid); err != nil {
			b.Fatal(err)
		}
	}
}
