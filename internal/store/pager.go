// Package store provides the page-based storage layer the disk-resident
// WALRUS index sits on: a Pager managing fixed-size pages in a single file
// with a free list, and a BufferPool caching pages in memory with LRU
// eviction and pin/unpin semantics. Together they stand in for the storage
// manager the paper's implementation got from the libgist package.
package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
)

// PageID identifies a page within a Pager's file. Page 0 is the metadata
// page and is never handed out; InvalidPage (0) doubles as the nil value.
type PageID uint32

// InvalidPage is the zero PageID, used as a nil marker.
const InvalidPage PageID = 0

// DefaultPageSize is the page size used when none is specified.
const DefaultPageSize = 4096

const (
	pagerMagic   = 0x57414C52 // "WALR"
	pagerVersion = 1
	numRoots     = 8
	metaSize     = 4 + 4 + 4 + 4 + 4 + numRoots*8 // magic, version, pageSize, nPages, freeHead, roots
	minPageSize  = 128
)

// Pager manages fixed-size pages in one file. All methods are safe for
// concurrent use.
type Pager struct {
	mu        sync.Mutex
	f         *os.File
	pageSize  int
	nPages    uint32 // includes the meta page
	freeHead  PageID
	roots     [numRoots]uint64
	metaDirty bool
}

// Create creates a new page file at path, truncating any existing file.
func Create(path string, pageSize int) (*Pager, error) {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < minPageSize {
		return nil, fmt.Errorf("store: page size %d below minimum %d", pageSize, minPageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", path, err)
	}
	p := &Pager{f: f, pageSize: pageSize, nPages: 1, metaDirty: true}
	if err := p.writeMeta(); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

// Open opens an existing page file.
func Open(path string) (*Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	buf := make([]byte, metaSize)
	if _, err := f.ReadAt(buf, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: reading meta page of %s: %w", path, err)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != pagerMagic {
		f.Close()
		return nil, fmt.Errorf("store: %s is not a WALRUS page file", path)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != pagerVersion {
		f.Close()
		return nil, fmt.Errorf("store: %s has unsupported version %d", path, v)
	}
	p := &Pager{
		f:        f,
		pageSize: int(binary.LittleEndian.Uint32(buf[8:])),
		nPages:   binary.LittleEndian.Uint32(buf[12:]),
		freeHead: PageID(binary.LittleEndian.Uint32(buf[16:])),
	}
	for i := 0; i < numRoots; i++ {
		p.roots[i] = binary.LittleEndian.Uint64(buf[20+8*i:])
	}
	if p.pageSize < minPageSize {
		f.Close()
		return nil, fmt.Errorf("store: %s has corrupt page size %d", path, p.pageSize)
	}
	return p, nil
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// NumPages returns the number of pages in the file, including the meta
// page and freed pages.
func (p *Pager) NumPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.nPages)
}

// Root returns user root slot i (0..7); the pager persists these opaque
// values so clients can find their data structures after reopening.
func (p *Pager) Root(i int) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.roots[i]
}

// SetRoot assigns user root slot i.
func (p *Pager) SetRoot(i int, v uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.roots[i] = v
	p.metaDirty = true
}

// writeMeta flushes the metadata page. Caller must hold mu or have
// exclusive access.
func (p *Pager) writeMeta() error {
	buf := make([]byte, p.pageSize)
	binary.LittleEndian.PutUint32(buf[0:], pagerMagic)
	binary.LittleEndian.PutUint32(buf[4:], pagerVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(p.pageSize))
	binary.LittleEndian.PutUint32(buf[12:], p.nPages)
	binary.LittleEndian.PutUint32(buf[16:], uint32(p.freeHead))
	for i := 0; i < numRoots; i++ {
		binary.LittleEndian.PutUint64(buf[20+8*i:], p.roots[i])
	}
	if _, err := p.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("store: writing meta page: %w", err)
	}
	p.metaDirty = false
	return nil
}

// Alloc returns a fresh page, reusing freed pages when available. The
// page's previous contents are undefined.
func (p *Pager) Alloc() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freeHead != InvalidPage {
		id := p.freeHead
		buf := make([]byte, 4)
		if _, err := p.f.ReadAt(buf, p.offset(id)); err != nil {
			return InvalidPage, fmt.Errorf("store: reading free-list page %d: %w", id, err)
		}
		p.freeHead = PageID(binary.LittleEndian.Uint32(buf))
		p.metaDirty = true
		return id, nil
	}
	id := PageID(p.nPages)
	p.nPages++
	p.metaDirty = true
	// Extend the file so ReadPage on the new page succeeds immediately.
	zero := make([]byte, p.pageSize)
	if _, err := p.f.WriteAt(zero, p.offset(id)); err != nil {
		return InvalidPage, fmt.Errorf("store: extending file for page %d: %w", id, err)
	}
	return id, nil
}

// Free returns a page to the free list.
func (p *Pager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(id); err != nil {
		return err
	}
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, uint32(p.freeHead))
	if _, err := p.f.WriteAt(buf, p.offset(id)); err != nil {
		return fmt.Errorf("store: linking freed page %d: %w", id, err)
	}
	p.freeHead = id
	p.metaDirty = true
	return nil
}

// ReadPage fills buf (which must be exactly one page long) with page id.
func (p *Pager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(id); err != nil {
		return err
	}
	if len(buf) != p.pageSize {
		return fmt.Errorf("store: buffer is %d bytes, page size is %d", len(buf), p.pageSize)
	}
	if _, err := p.f.ReadAt(buf, p.offset(id)); err != nil && err != io.EOF {
		return fmt.Errorf("store: reading page %d: %w", id, err)
	}
	return nil
}

// WritePage writes buf (exactly one page long) to page id.
func (p *Pager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(id); err != nil {
		return err
	}
	if len(buf) != p.pageSize {
		return fmt.Errorf("store: buffer is %d bytes, page size is %d", len(buf), p.pageSize)
	}
	if _, err := p.f.WriteAt(buf, p.offset(id)); err != nil {
		return fmt.Errorf("store: writing page %d: %w", id, err)
	}
	return nil
}

func (p *Pager) check(id PageID) error {
	if id == InvalidPage || uint32(id) >= p.nPages {
		return fmt.Errorf("store: page %d out of range (file has %d pages)", id, p.nPages)
	}
	return nil
}

func (p *Pager) offset(id PageID) int64 { return int64(id) * int64(p.pageSize) }

// Sync flushes metadata and file contents to stable storage.
func (p *Pager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.metaDirty {
		if err := p.writeMeta(); err != nil {
			return err
		}
	}
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the file.
func (p *Pager) Close() error {
	if err := p.Sync(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}

// PagerStats summarizes a pager's space accounting.
type PagerStats struct {
	// PageSize is the page size in bytes.
	PageSize int
	// TotalPages counts all pages in the file, including the meta page.
	TotalPages int
	// FreePages counts pages currently on the free list.
	FreePages int
}

// Stats walks the free list and reports space accounting. It takes time
// linear in the free-list length.
func (p *Pager) Stats() (PagerStats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PagerStats{PageSize: p.pageSize, TotalPages: int(p.nPages)}
	buf := make([]byte, 4)
	for id := p.freeHead; id != InvalidPage; {
		s.FreePages++
		if s.FreePages > int(p.nPages) {
			return s, fmt.Errorf("store: free list cycle detected")
		}
		if _, err := p.f.ReadAt(buf, p.offset(id)); err != nil {
			return s, fmt.Errorf("store: reading free-list page %d: %w", id, err)
		}
		id = PageID(binary.LittleEndian.Uint32(buf))
	}
	return s, nil
}
