// Package store provides the page-based storage layer the disk-resident
// WALRUS index sits on: a Pager managing fixed-size checksummed pages in a
// single file with a free list, and a BufferPool caching pages in memory
// with LRU eviction and pin/unpin semantics. Together they stand in for
// the storage manager the paper's implementation got from the libgist
// package. The pager cooperates with internal/wal for crash recovery:
// every page carries an LSN+CRC footer (see file.go) and the whole free
// list lives inside the meta page, so a single logged meta-page image
// captures all allocation state.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"walrus/internal/obs"
)

// PageID identifies a page within a Pager's file. Page 0 is the metadata
// page and is never handed out; InvalidPage (0) doubles as the nil value.
type PageID uint32

// InvalidPage is the zero PageID, used as a nil marker.
const InvalidPage PageID = 0

// DefaultPageSize is the page size used when none is specified.
const DefaultPageSize = 4096

// Meta page layout (within the usable area; the footer is at the physical
// end like any other page):
//
//	offset 0:  magic (uint32)
//	offset 4:  version (uint32)
//	offset 8:  physical page size (uint32)
//	offset 12: page count, including the meta page (uint32)
//	offset 16: WAL base LSN fallback (uint64; see SetWALBase)
//	offset 24: free-list length (uint32)
//	offset 28: reserved (uint32)
//	offset 32: 8 client root slots (uint64 each)
//	offset 96: free page ids (uint32 each), newest last
const (
	pagerMagic     = 0x57414C52 // "WALR"
	pagerVersion   = 2
	numRoots       = 8
	metaWALBaseOff = 16
	metaFreeOff    = 96
	minPageSize    = 256
)

// Pager manages fixed-size pages in one file. All methods are safe for
// concurrent use.
type Pager struct {
	mu       sync.Mutex
	f        File
	pageSize int // physical page size; usable is pageSize - PageFooterSize
	usable   int
	nPages   uint32 // includes the meta page
	free     []PageID
	freeCap  int
	leaked   uint64 // frees dropped because the meta free list was full
	roots    [numRoots]uint64
	walBase  uint64

	metaDirty bool
	metaVer   uint64       // bumped on every meta mutation; see MetaVersion
	metaLSN   uint64       // stamped into the meta page footer on write-back
	om        pagerMetrics // guarded by mu; zero value = observability off
	scratch   []byte       // one physical page, reused under mu
}

// Create creates a new page file at path, truncating any existing file.
func Create(path string, pageSize int) (*Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", path, err)
	}
	p, err := CreateFile(f, pageSize)
	if err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return p, nil
}

// CreateFile initializes a new page file on an already-open File.
func CreateFile(f File, pageSize int) (*Pager, error) {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < minPageSize {
		return nil, fmt.Errorf("store: page size %d below minimum %d", pageSize, minPageSize)
	}
	p := &Pager{f: f, pageSize: pageSize, nPages: 1, metaDirty: true}
	p.initDerived()
	if err := p.writeMeta(); err != nil {
		return nil, err
	}
	return p, nil
}

// Open opens an existing page file.
func Open(path string) (*Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	p, err := OpenFile(f)
	if err != nil {
		return nil, errors.Join(fmt.Errorf("store: %s: %w", path, err), f.Close())
	}
	return p, nil
}

// OpenFile opens an existing page file on an already-open File.
func OpenFile(f File) (*Pager, error) {
	head := make([]byte, 12)
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("store: reading meta page: %w", err)
	}
	if binary.LittleEndian.Uint32(head[0:]) != pagerMagic {
		return nil, fmt.Errorf("store: not a WALRUS page file")
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != pagerVersion {
		return nil, fmt.Errorf("store: unsupported page file version %d", v)
	}
	pageSize := int(binary.LittleEndian.Uint32(head[8:]))
	if pageSize < minPageSize || pageSize > 1<<24 {
		return nil, fmt.Errorf("store: corrupt page size %d", pageSize)
	}
	page := make([]byte, pageSize)
	if _, err := f.ReadAt(page, 0); err != nil {
		return nil, fmt.Errorf("store: reading meta page: %w", err)
	}
	lsn, ok := CheckPageFooter(page)
	if !ok {
		return nil, fmt.Errorf("store: meta page checksum mismatch (torn write?): run recovery or rebuild")
	}
	p := &Pager{f: f, pageSize: pageSize, metaLSN: lsn}
	p.initDerived()
	p.nPages = binary.LittleEndian.Uint32(page[12:])
	p.walBase = binary.LittleEndian.Uint64(page[metaWALBaseOff:])
	nFree := int(binary.LittleEndian.Uint32(page[24:]))
	if nFree > p.freeCap {
		return nil, fmt.Errorf("store: corrupt free list length %d", nFree)
	}
	for i := 0; i < numRoots; i++ {
		p.roots[i] = binary.LittleEndian.Uint64(page[32+8*i:])
	}
	p.free = make([]PageID, nFree)
	for i := 0; i < nFree; i++ {
		p.free[i] = PageID(binary.LittleEndian.Uint32(page[metaFreeOff+4*i:]))
	}
	return p, nil
}

func (p *Pager) initDerived() {
	p.usable = p.pageSize - PageFooterSize
	p.freeCap = (p.usable - metaFreeOff) / 4
	p.scratch = make([]byte, p.pageSize)
}

// PageSize returns the usable page size in bytes — what ReadPage and
// WritePage buffers must measure. The physical page on disk additionally
// carries the PageFooterSize LSN+checksum footer.
func (p *Pager) PageSize() int { return p.usable }

// PhysicalPageSize returns the on-disk page size including the footer.
func (p *Pager) PhysicalPageSize() int { return p.pageSize }

// NumPages returns the number of pages in the file, including the meta
// page and freed pages.
func (p *Pager) NumPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.nPages)
}

// Root returns user root slot i (0..7); the pager persists these opaque
// values so clients can find their data structures after reopening.
func (p *Pager) Root(i int) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.roots[i]
}

// SetRoot assigns user root slot i.
func (p *Pager) SetRoot(i int, v uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.roots[i] != v {
		p.roots[i] = v
		p.touchMeta()
	}
}

// WALBase returns the fallback WAL base LSN stored in the meta page.
func (p *Pager) WALBase() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.walBase
}

// SetWALBase records the WAL base LSN that a fresh log generation will
// start from. It is written (and synced) before the WAL is truncated at a
// checkpoint, so recovery can rebuild a usable log header even if the
// truncation itself was torn by a crash.
func (p *Pager) SetWALBase(v uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.walBase != v {
		p.walBase = v
		p.touchMeta()
	}
}

// MetaVersion returns a counter bumped on every meta mutation (root
// updates, allocation, free). The WAL commit path compares it against the
// last logged version to decide whether to re-log the meta page image.
func (p *Pager) MetaVersion() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.metaVer
}

// SetMetaLSN records the WAL position of the last logged meta page image;
// it is stamped into the meta page footer on the next write-back.
func (p *Pager) SetMetaLSN(lsn uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.metaLSN = lsn
}

// MetaImage returns the current meta page contents (usable bytes), the
// image the WAL logs so recovery can restore allocation state.
func (p *Pager) MetaImage() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	buf := make([]byte, p.usable)
	p.encodeMeta(buf)
	return buf
}

// touchMeta marks the meta page dirty. Caller holds mu.
func (p *Pager) touchMeta() {
	p.metaDirty = true
	p.metaVer++
}

// encodeMeta serializes the meta page into buf (usable bytes). Caller
// holds mu.
func (p *Pager) encodeMeta(buf []byte) {
	binary.LittleEndian.PutUint32(buf[0:], pagerMagic)
	binary.LittleEndian.PutUint32(buf[4:], pagerVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(p.pageSize))
	binary.LittleEndian.PutUint32(buf[12:], p.nPages)
	binary.LittleEndian.PutUint64(buf[metaWALBaseOff:], p.walBase)
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(p.free)))
	binary.LittleEndian.PutUint32(buf[28:], 0)
	for i := 0; i < numRoots; i++ {
		binary.LittleEndian.PutUint64(buf[32+8*i:], p.roots[i])
	}
	for i, id := range p.free {
		binary.LittleEndian.PutUint32(buf[metaFreeOff+4*i:], uint32(id))
	}
	for i := metaFreeOff + 4*len(p.free); i < len(buf); i++ {
		buf[i] = 0
	}
}

// writeMeta flushes the metadata page. Caller must hold mu or have
// exclusive access.
func (p *Pager) writeMeta() error {
	p.encodeMeta(p.scratch[:p.usable])
	if err := p.writePhysicalLocked(0, p.scratch[:p.usable], p.metaLSN); err != nil {
		return fmt.Errorf("store: writing meta page: %w", err)
	}
	p.metaDirty = false
	return nil
}

// writePhysicalLocked frames usable-size data with the LSN+CRC footer and
// writes the physical page. Caller holds mu. data may alias scratch.
func (p *Pager) writePhysicalLocked(id PageID, data []byte, lsn uint64) error {
	var start time.Time
	if p.om.reg != nil {
		start = obs.Clock()
	}
	if &data[0] != &p.scratch[0] {
		copy(p.scratch, data)
	}
	StampPageFooter(p.scratch, lsn)
	if _, err := p.f.WriteAt(p.scratch, p.offset(id)); err != nil {
		return fmt.Errorf("store: writing page %d: %w", id, err)
	}
	if p.om.reg != nil {
		d := obs.Since(start)
		p.om.writes.Inc()
		p.om.writeSeconds.Observe(d.Seconds())
		p.om.reg.RecordSpan("pager.write", 0, start, d, obs.Attr{Key: "page", Value: int64(id)})
	}
	return nil
}

// Alloc returns a fresh page, reusing freed pages when available. The
// page's previous contents are undefined.
func (p *Pager) Alloc() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		id := p.free[n-1]
		p.free = p.free[:n-1]
		p.touchMeta()
		return id, nil
	}
	id := PageID(p.nPages)
	// Extend the file with a zero page (valid footer, LSN 0) so ReadPage
	// on the new page succeeds immediately.
	for i := range p.scratch {
		p.scratch[i] = 0
	}
	if err := p.writePhysicalLocked(id, p.scratch[:p.usable], 0); err != nil {
		return InvalidPage, fmt.Errorf("store: extending file for page %d: %w", id, err)
	}
	p.nPages++
	p.touchMeta()
	return id, nil
}

// Free returns a page to the free list. The free list lives entirely in
// the meta page; if it is full the page is leaked until the file is
// rebuilt (tracked in Stats), which keeps every allocation state change
// recoverable from a single logged meta page image.
func (p *Pager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(id); err != nil {
		return err
	}
	if len(p.free) >= p.freeCap {
		p.leaked++
		return nil
	}
	p.free = append(p.free, id)
	p.touchMeta()
	return nil
}

// ReadPage fills buf (which must be exactly PageSize long) with page id,
// verifies the page checksum, and returns the page's LSN.
func (p *Pager) ReadPage(id PageID, buf []byte) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(id); err != nil {
		return 0, err
	}
	if len(buf) != p.usable {
		return 0, fmt.Errorf("store: buffer is %d bytes, page size is %d", len(buf), p.usable)
	}
	var start time.Time
	if p.om.reg != nil {
		start = obs.Clock()
	}
	if _, err := p.f.ReadAt(p.scratch, p.offset(id)); err != nil && err != io.EOF {
		return 0, fmt.Errorf("store: reading page %d: %w", id, err)
	}
	lsn, ok := CheckPageFooter(p.scratch)
	if !ok {
		return 0, fmt.Errorf("store: page %d checksum mismatch: data corruption or torn write", id)
	}
	copy(buf, p.scratch[:p.usable])
	if p.om.reg != nil {
		d := obs.Since(start)
		p.om.reads.Inc()
		p.om.readSeconds.Observe(d.Seconds())
		p.om.reg.RecordSpan("pager.read", 0, start, d, obs.Attr{Key: "page", Value: int64(id)})
	}
	return lsn, nil
}

// WritePage writes buf (exactly PageSize long) to page id, stamping lsn
// into the page footer. Pass 0 when the page is not WAL-logged.
func (p *Pager) WritePage(id PageID, buf []byte, lsn uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(id); err != nil {
		return err
	}
	if len(buf) != p.usable {
		return fmt.Errorf("store: buffer is %d bytes, page size is %d", len(buf), p.usable)
	}
	return p.writePhysicalLocked(id, buf, lsn)
}

func (p *Pager) check(id PageID) error {
	if id == InvalidPage || uint32(id) >= p.nPages {
		return fmt.Errorf("store: page %d out of range (file has %d pages)", id, p.nPages)
	}
	return nil
}

func (p *Pager) offset(id PageID) int64 { return int64(id) * int64(p.pageSize) }

// Sync flushes metadata and file contents to stable storage.
func (p *Pager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.metaDirty {
		if err := p.writeMeta(); err != nil {
			return err
		}
	}
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	p.om.syncs.Inc()
	return nil
}

// Close syncs and closes the file.
func (p *Pager) Close() error {
	if err := p.Sync(); err != nil {
		return errors.Join(err, p.f.Close())
	}
	return p.f.Close()
}

// PagerStats summarizes a pager's space accounting.
type PagerStats struct {
	// PageSize is the usable page size in bytes.
	PageSize int
	// TotalPages counts all pages in the file, including the meta page.
	TotalPages int
	// FreePages counts pages currently on the free list.
	FreePages int
	// LeakedPages counts frees dropped because the meta free list was
	// full; the space is reclaimed only by rebuilding the file.
	LeakedPages int
}

// Stats reports space accounting.
func (p *Pager) Stats() (PagerStats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PagerStats{
		PageSize:    p.usable,
		TotalPages:  int(p.nPages),
		FreePages:   len(p.free),
		LeakedPages: int(p.leaked),
	}, nil
}
