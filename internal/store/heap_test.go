package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func newTestHeap(t *testing.T, pageSize, poolSize int) (*HeapFile, *Pager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "heap.db")
	pg, err := Create(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pg.Close() })
	pool, err := NewBufferPool(pg, poolSize)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeapFile(pg, pool, 5)
	if err != nil {
		t.Fatal(err)
	}
	return h, pg, path
}

func TestRIDPack(t *testing.T) {
	r := RID{Page: 123456, Slot: 789}
	if got := UnpackRID(r.Pack()); got != r {
		t.Fatalf("pack round trip: %v -> %v", r, got)
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

func TestHeapInsertGet(t *testing.T) {
	h, _, _ := newTestHeap(t, 256, 8)
	recs := [][]byte{
		[]byte("alpha"),
		[]byte("beta-beta"),
		{},
		bytes.Repeat([]byte{0xAB}, 100),
	}
	var rids []RID
	for _, r := range recs {
		rid, err := h.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i, rid := range rids {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("record %d: got %q want %q", i, got, recs[i])
		}
	}
}

func TestHeapRecordTooLarge(t *testing.T) {
	h, _, _ := newTestHeap(t, 256, 8)
	if _, err := h.Insert(make([]byte, 256)); err == nil {
		t.Fatal("accepted record larger than a page")
	}
}

func TestHeapSpillsAcrossPages(t *testing.T) {
	h, pg, _ := newTestHeap(t, 256, 8)
	var rids []RID
	rec := bytes.Repeat([]byte{1}, 60)
	for i := 0; i < 40; i++ {
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if pg.NumPages() < 5 {
		t.Fatalf("expected multiple pages, have %d", pg.NumPages())
	}
	pages := map[PageID]bool{}
	for _, rid := range rids {
		pages[rid.Page] = true
		if _, err := h.Get(rid); err != nil {
			t.Fatal(err)
		}
	}
	if len(pages) < 2 {
		t.Fatal("all records on one page")
	}
}

func TestHeapDeleteAndErrors(t *testing.T) {
	h, _, _ := newTestHeap(t, 256, 8)
	rid, err := h.Insert([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); err == nil {
		t.Fatal("Get succeeded on deleted record")
	}
	if err := h.Delete(rid); err == nil {
		t.Fatal("double delete succeeded")
	}
	if _, err := h.Get(RID{Page: rid.Page, Slot: 99}); err == nil {
		t.Fatal("Get succeeded on bogus slot")
	}
	if err := h.Delete(RID{Page: rid.Page, Slot: 99}); err == nil {
		t.Fatal("Delete succeeded on bogus slot")
	}
}

// TestHeapSlotReuseAndCompaction: after deletions, new inserts reuse dead
// slots and reclaim dead space without breaking surviving RIDs.
func TestHeapSlotReuseAndCompaction(t *testing.T) {
	h, _, _ := newTestHeap(t, 256, 8)
	// Fill one page tightly.
	var rids []RID
	for i := 0; i < 5; i++ {
		rid, err := h.Insert(bytes.Repeat([]byte{byte(i + 1)}, 40))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	firstPage := rids[0].Page
	// Delete two records from the middle.
	if err := h.Delete(rids[1]); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(rids[3]); err != nil {
		t.Fatal(err)
	}
	// A new record fits only after compaction; it must land on the same
	// page, reusing a dead slot.
	rid, err := h.Insert(bytes.Repeat([]byte{9}, 70))
	if err != nil {
		t.Fatal(err)
	}
	if rid.Page != firstPage {
		t.Fatalf("insert went to page %d, want reuse of %d", rid.Page, firstPage)
	}
	if rid.Slot != rids[1].Slot && rid.Slot != rids[3].Slot {
		t.Fatalf("dead slot not reused: got slot %d", rid.Slot)
	}
	// Survivors are intact after compaction.
	for _, i := range []int{0, 2, 4} {
		got, err := h.Get(rids[i])
		if err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte{byte(i + 1)}, 40)
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d corrupted by compaction", i)
		}
	}
}

func TestHeapScan(t *testing.T) {
	h, _, _ := newTestHeap(t, 256, 8)
	want := map[string]bool{}
	for i := 0; i < 25; i++ {
		rec := []byte(fmt.Sprintf("record-%02d", i))
		if _, err := h.Insert(rec); err != nil {
			t.Fatal(err)
		}
		want[string(rec)] = true
	}
	// Delete a few.
	rid, _ := h.Insert([]byte("to-delete"))
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	if err := h.Scan(func(r RID, rec []byte) bool {
		got[string(rec)] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan found %d records, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("scan missed %q", k)
		}
	}
	// Early stop.
	n := 0
	if err := h.Scan(func(RID, []byte) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestHeapReopen: records survive close/reopen, and appends continue at
// the tail.
func TestHeapReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reopen.db")
	pg, err := Create(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	pool, _ := NewBufferPool(pg, 8)
	h, err := NewHeapFile(pg, pool, 5)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 30; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("persistent-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}

	pg2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	pool2, _ := NewBufferPool(pg2, 8)
	h2, err := OpenHeapFile(pg2, pool2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, rid := range rids {
		got, err := h2.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("persistent-%d", i) {
			t.Fatalf("record %d: %q", i, got)
		}
	}
	if _, err := h2.Insert([]byte("appended")); err != nil {
		t.Fatal(err)
	}
}

// TestHeapRandomizedWorkload stresses insert/get/delete against an oracle.
func TestHeapRandomizedWorkload(t *testing.T) {
	h, _, _ := newTestHeap(t, 512, 6)
	rng := rand.New(rand.NewSource(88))
	oracle := map[RID][]byte{}
	var live []RID
	for i := 0; i < 2000; i++ {
		switch {
		case len(live) == 0 || rng.Intn(3) > 0:
			rec := make([]byte, rng.Intn(120))
			rng.Read(rec)
			rid, err := h.Insert(rec)
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := oracle[rid]; dup {
				t.Fatalf("RID %v handed out twice", rid)
			}
			oracle[rid] = append([]byte(nil), rec...)
			live = append(live, rid)
		case rng.Intn(2) == 0:
			idx := rng.Intn(len(live))
			rid := live[idx]
			got, err := h.Get(rid)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, oracle[rid]) {
				t.Fatalf("%v: content mismatch", rid)
			}
		default:
			idx := rng.Intn(len(live))
			rid := live[idx]
			if err := h.Delete(rid); err != nil {
				t.Fatal(err)
			}
			delete(oracle, rid)
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	// Final scan agrees with the oracle.
	seen := 0
	if err := h.Scan(func(rid RID, rec []byte) bool {
		want, ok := oracle[rid]
		if !ok {
			t.Fatalf("scan surfaced deleted/unknown %v", rid)
		}
		if !bytes.Equal(rec, want) {
			t.Fatalf("%v: scan content mismatch", rid)
		}
		seen++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != len(oracle) {
		t.Fatalf("scan saw %d records, oracle has %d", seen, len(oracle))
	}
}
