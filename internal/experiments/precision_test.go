package experiments

import (
	"bytes"
	"strings"
	"testing"

	"walrus/internal/dataset"
)

func TestMeanPrecision(t *testing.T) {
	ds := smallDataset(t, 6, dataset.Flowers, dataset.Ocean, dataset.Bricks)
	cfg := smallConfig()
	rows, err := MeanPrecision(ds, cfg, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]PrecisionRow{}
	for _, r := range rows {
		byName[r.System] = r
		if r.Queries != 6 { // 2 per category × 3 categories
			t.Fatalf("%s: %d queries", r.System, r.Queries)
		}
		if r.MeanPrecision < 0 || r.MeanPrecision > 1 {
			t.Fatalf("%s precision %v out of range", r.System, r.MeanPrecision)
		}
	}
	// On well-separated categories every system should beat random
	// guessing (1/3), and WALRUS should do well in absolute terms.
	if byName["WALRUS"].MeanPrecision < 0.5 {
		t.Fatalf("WALRUS precision %v too low", byName["WALRUS"].MeanPrecision)
	}
	var buf bytes.Buffer
	PrintPrecision(&buf, 4, rows)
	if !strings.Contains(buf.String(), "mean precision") {
		t.Fatal("PrintPrecision missing header")
	}
}

func TestMeanPrecisionEmptyDataset(t *testing.T) {
	ds := &dataset.Dataset{}
	if _, err := MeanPrecision(ds, smallConfig(), 1, 5); err == nil {
		t.Fatal("accepted empty dataset")
	}
}

func TestEpsilonSweep(t *testing.T) {
	ds := smallDataset(t, 5, dataset.Flowers, dataset.Ocean)
	cfg := smallConfig()
	db, err := BuildWalrusDB(ds, cfg.Options)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := EpsilonSweep(db, ds, 2, 4, []float64{0.03, 0.085, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.MeanPrecision < 0 || r.MeanPrecision > 1 {
			t.Fatalf("precision out of range: %+v", r)
		}
		if i > 0 && r.AvgRegions < rows[i-1].AvgRegions {
			t.Fatalf("selectivity not monotone in epsilon: %+v", rows)
		}
	}
	var buf bytes.Buffer
	PrintEpsilonSweep(&buf, 4, rows)
	if !strings.Contains(buf.String(), "mean precision") {
		t.Fatal("PrintEpsilonSweep missing header")
	}
	if _, err := EpsilonSweep(db, &dataset.Dataset{}, 1, 4, []float64{0.1}); err == nil {
		t.Fatal("accepted empty dataset")
	}
}
