package experiments

import (
	"fmt"
	"io"
	"time"

	"walrus"
	"walrus/internal/dataset"
)

// IndexingRow reports one indexing strategy's cost over the same dataset.
type IndexingRow struct {
	Method  string
	Images  int
	Regions int
	Elapsed time.Duration
}

// IndexingThroughput measures the three ways of building a WALRUS
// database over the same collection: one Add per image, parallel batched
// extraction (AddBatch), and parallel extraction plus STR bulk loading of
// the R*-tree (BuildFrom). The paper's indexing phase runs "only once at
// the beginning and when new images are added" — this quantifies that
// one-time cost and the ablation between incremental and packed index
// construction.
func IndexingThroughput(ds *dataset.Dataset, opts walrus.Options) ([]IndexingRow, error) {
	items := make([]walrus.BatchItem, len(ds.Items))
	for i, it := range ds.Items {
		items[i] = walrus.BatchItem{ID: it.ID, Image: it.Image}
	}
	var rows []IndexingRow

	start := time.Now()
	inc, err := walrus.New(opts)
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		if err := inc.Add(it.ID, it.Image); err != nil {
			return nil, err
		}
	}
	rows = append(rows, IndexingRow{"sequential Add", inc.Len(), inc.NumRegions(), time.Since(start)})

	start = time.Now()
	batch, err := walrus.New(opts)
	if err != nil {
		return nil, err
	}
	if err := batch.AddBatch(items, 0); err != nil {
		return nil, err
	}
	rows = append(rows, IndexingRow{"parallel AddBatch", batch.Len(), batch.NumRegions(), time.Since(start)})

	start = time.Now()
	bulk, err := walrus.BuildFrom(opts, items, 0)
	if err != nil {
		return nil, err
	}
	rows = append(rows, IndexingRow{"BuildFrom (STR bulk load)", bulk.Len(), bulk.NumRegions(), time.Since(start)})
	return rows, nil
}

// PrintIndexing renders the indexing comparison.
func PrintIndexing(w io.Writer, rows []IndexingRow) {
	fmt.Fprintln(w, "Indexing throughput over the same collection")
	fmt.Fprintf(w, "%-28s %8s %9s %14s\n", "method", "images", "regions", "elapsed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %8d %9d %14s\n", r.Method, r.Images, r.Regions, r.Elapsed.Round(time.Millisecond))
	}
}
