package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"walrus/internal/dataset"
	"walrus/internal/imgio"
	"walrus/internal/wbiis"
)

// RobustnessRow reports, for one image transformation, at which rank each
// system retrieves the original image when queried with the transformed
// version. Rank 1 is best; 0 means the original was not retrieved at all.
type RobustnessRow struct {
	Transform  string
	WalrusRank int
	WalrusSim  float64
	WBIISRank  int
}

// Robustness quantifies the introduction's robustness claims ("resolution
// changes, dithering effects, color shifts, orientation, size, and
// location"): a database image is perturbed by each transformation and
// used as a query; the row records where the unperturbed original lands in
// each system's ranking.
func Robustness(ds *dataset.Dataset, cfg WalrusConfig, target dataset.Item) ([]RobustnessRow, error) {
	db, err := BuildWalrusDB(ds, cfg.Options)
	if err != nil {
		return nil, err
	}
	wx, err := wbiis.New(wbiis.DefaultOptions())
	if err != nil {
		return nil, err
	}
	for _, it := range ds.Items {
		if err := wx.Add(it.ID, it.Image); err != nil {
			return nil, err
		}
	}

	rng := rand.New(rand.NewSource(7))
	im := target.Image
	variants := []struct {
		name string
		make func() (*imgio.Image, error)
	}{
		{"identity", func() (*imgio.Image, error) { return im.Clone(), nil }},
		{"noise 5%", func() (*imgio.Image, error) { return imgio.AddNoise(im, rng, 0.05), nil }},
		{"dither 8 levels", func() (*imgio.Image, error) { return imgio.Dither(im, 8), nil }},
		{"color shift +0.08", func() (*imgio.Image, error) { return imgio.ColorShift(im, 0.08, 0.08, 0.08), nil }},
		{"translate (16,12)", func() (*imgio.Image, error) { return imgio.Translate(im, 16, 12, 0.5), nil }},
		{"flip horizontal", func() (*imgio.Image, error) { return imgio.FlipH(im), nil }},
		{"upscale 1.5x", func() (*imgio.Image, error) { return imgio.Resize(im, im.W*3/2, im.H*3/2) }},
		// 0.8 keeps the smallest dataset side (85px) above the 64px window.
		{"downscale 0.8x", func() (*imgio.Image, error) { return imgio.Resize(im, im.W*4/5, im.H*4/5) }},
	}

	var rows []RobustnessRow
	for _, v := range variants {
		q, err := v.make()
		if err != nil {
			return nil, err
		}
		row := RobustnessRow{Transform: v.name}
		// Skip variants that became too small for the sliding window.
		if q.W >= cfg.Options.Region.MinWindow && q.H >= cfg.Options.Region.MinWindow {
			matches, _, err := db.Query(q, cfg.Params)
			if err != nil {
				return nil, err
			}
			for i, m := range matches {
				if m.ID == target.ID {
					row.WalrusRank = i + 1
					row.WalrusSim = m.Similarity
					break
				}
			}
		}
		wm, err := wx.Query(q, len(ds.Items))
		if err != nil {
			return nil, err
		}
		for i, m := range wm {
			if m.ID == target.ID {
				row.WBIISRank = i + 1
				break
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintRobustness renders the robustness table.
func PrintRobustness(w io.Writer, target string, rows []RobustnessRow) {
	fmt.Fprintf(w, "Robustness: rank of the original (%s) when querying with a transformed copy\n", target)
	fmt.Fprintf(w, "%-20s %13s %13s %12s\n", "transform", "WALRUS rank", "WALRUS sim", "WBIIS rank")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %13s %13.4f %12s\n", r.Transform, rankString(r.WalrusRank), r.WalrusSim, rankString(r.WBIISRank))
	}
}

func rankString(r int) string {
	if r == 0 {
		return "miss"
	}
	return fmt.Sprintf("%d", r)
}
