package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"walrus"
	"walrus/internal/dataset"
)

// FilterBenchResult measures the coarse-to-fine query tier on a
// disk-backed index: how many probe candidates the binary-signature
// prefilter rejects before exact distance work, and what the
// version-keyed result cache saves on a repeated query. Latencies are
// per-query percentiles over queries x rounds serial samples.
type FilterBenchResult struct {
	Images          int `json:"images"`
	QueriesPerRound int `json:"queries_per_round"`
	Rounds          int `json:"rounds"`

	// Exact pipeline: prefilter off, no cache.
	ColdP50Ns int64 `json:"cold_p50_ns"`
	ColdP99Ns int64 `json:"cold_p99_ns"`
	// Prefilter tier on, no cache.
	PrefilterP50Ns int64 `json:"prefilter_p50_ns"`
	PrefilterP99Ns int64 `json:"prefilter_p99_ns"`
	// Result cache on and warmed: every sample is a hit.
	WarmCacheP50Ns int64 `json:"warm_cache_p50_ns"`
	WarmCacheP99Ns int64 `json:"warm_cache_p99_ns"`

	// The prefilter row of one explained query: probe hits in, survivors
	// out, and the rejected fraction.
	CandidatesIn  int     `json:"prefilter_candidates_in"`
	CandidatesOut int     `json:"prefilter_candidates_out"`
	ReductionPct  float64 `json:"prefilter_reduction_pct"`

	// WarmCacheSpeedup is cold p50 over warm-cache p50.
	WarmCacheSpeedup float64 `json:"warm_cache_speedup"`
	// Identical reports that the prefiltered ranking matched the exact
	// pipeline's on every sampled query.
	Identical bool `json:"identical"`
}

// percentileNS returns the q-quantile (0..1) of a sample set, in
// nanoseconds. The samples are sorted in place.
func percentileNS(samples []time.Duration, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(q * float64(len(samples)-1))
	return samples[idx].Nanoseconds()
}

// FilterBench builds a disk-backed index over up to images dataset
// items, then samples per-query latency in three configurations — exact
// pipeline, prefilter tier on, and warmed result cache — interleaving
// configurations within each round so background noise hits all of them
// alike.
func FilterBench(ds *dataset.Dataset, opts walrus.Options, images, queries, rounds int) (FilterBenchResult, error) {
	if len(ds.Items) == 0 {
		return FilterBenchResult{}, fmt.Errorf("experiments: empty dataset")
	}
	if images > len(ds.Items) {
		images = len(ds.Items)
	}
	items := make([]walrus.BatchItem, images)
	for i := 0; i < images; i++ {
		items[i] = walrus.BatchItem{ID: ds.Items[i].ID, Image: ds.Items[i].Image}
	}
	base, err := os.MkdirTemp("", "walrus-filter")
	if err != nil {
		return FilterBenchResult{}, err
	}
	defer os.RemoveAll(base)
	db, err := walrus.Create(filepath.Join(base, "idx"), opts)
	if err != nil {
		return FilterBenchResult{}, err
	}
	defer db.Close()
	if err := db.AddBatch(items, 0); err != nil {
		return FilterBenchResult{}, err
	}

	exact := walrus.DefaultQueryParams()
	exact.Parallelism = 1 // serial: measure the hot path, not the scheduler
	pre := exact
	pre.Prefilter = true
	q := ds.Items[0].Image

	res := FilterBenchResult{Images: images, QueriesPerRound: queries, Rounds: rounds, Identical: true}

	// Correctness first: the prefiltered ranking must reproduce the
	// exact pipeline's answer on every query image we sample from.
	for i := 0; i < images; i++ {
		me, _, err := db.Query(ds.Items[i].Image, exact)
		if err != nil {
			return res, err
		}
		mp, _, err := db.Query(ds.Items[i].Image, pre)
		if err != nil {
			return res, err
		}
		if len(me) != len(mp) {
			res.Identical = false
			break
		}
		for j := range me {
			if me[j].ID != mp[j].ID || me[j].Similarity != mp[j].Similarity {
				res.Identical = false
				break
			}
		}
	}

	// The prefilter row of one explained query gives the candidate-set
	// reduction the tier achieved.
	ctx, qt := walrus.WithQueryTrace(context.Background())
	if _, _, err := db.QueryContext(ctx, q, pre); err != nil {
		return res, err
	}
	for _, st := range qt.Stages {
		if st.Stage == "prefilter" {
			res.CandidatesIn, res.CandidatesOut = st.In, st.Out
		}
	}
	if res.CandidatesIn > 0 {
		res.ReductionPct = float64(res.CandidatesIn-res.CandidatesOut) / float64(res.CandidatesIn) * 100
	}

	sample := func(p walrus.QueryParams, out *[]time.Duration) error {
		for i := 0; i < queries; i++ {
			start := time.Now()
			if _, _, err := db.Query(q, p); err != nil {
				return err
			}
			*out = append(*out, time.Since(start))
		}
		return nil
	}
	var cold, prefiltered, warm []time.Duration
	if err := sample(exact, &cold); err != nil { // warm-up, discarded
		return res, err
	}
	cold = cold[:0]
	for r := 0; r < rounds; r++ {
		db.SetCacheSize(0)
		if err := sample(exact, &cold); err != nil {
			return res, err
		}
		if err := sample(pre, &prefiltered); err != nil {
			return res, err
		}
		db.SetCacheSize(16)
		if _, _, err := db.Query(q, exact); err != nil { // prime the cache
			return res, err
		}
		if err := sample(exact, &warm); err != nil {
			return res, err
		}
	}
	db.SetCacheSize(0)

	res.ColdP50Ns = percentileNS(cold, 0.50)
	res.ColdP99Ns = percentileNS(cold, 0.99)
	res.PrefilterP50Ns = percentileNS(prefiltered, 0.50)
	res.PrefilterP99Ns = percentileNS(prefiltered, 0.99)
	res.WarmCacheP50Ns = percentileNS(warm, 0.50)
	res.WarmCacheP99Ns = percentileNS(warm, 0.99)
	if res.WarmCacheP50Ns > 0 {
		res.WarmCacheSpeedup = float64(res.ColdP50Ns) / float64(res.WarmCacheP50Ns)
	}
	return res, nil
}

// PrintFilterBench renders the coarse-to-fine tier measurement.
func PrintFilterBench(w io.Writer, r FilterBenchResult) {
	fmt.Fprintf(w, "coarse-to-fine tiers (%d images, %d serial queries x %d rounds)\n",
		r.Images, r.QueriesPerRound, r.Rounds)
	fmt.Fprintf(w, "%-28s p50 %10d ns   p99 %10d ns\n", "exact pipeline", r.ColdP50Ns, r.ColdP99Ns)
	fmt.Fprintf(w, "%-28s p50 %10d ns   p99 %10d ns\n", "prefilter tier", r.PrefilterP50Ns, r.PrefilterP99Ns)
	fmt.Fprintf(w, "%-28s p50 %10d ns   p99 %10d ns\n", "warm result cache", r.WarmCacheP50Ns, r.WarmCacheP99Ns)
	fmt.Fprintf(w, "prefilter candidates: %d -> %d (%.1f%% rejected before exact distance)\n",
		r.CandidatesIn, r.CandidatesOut, r.ReductionPct)
	fmt.Fprintf(w, "warm-cache speedup: %.1fx; prefiltered ranking identical: %v\n", r.WarmCacheSpeedup, r.Identical)
}
