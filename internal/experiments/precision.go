package experiments

import (
	"fmt"
	"io"

	"walrus/internal/dataset"
	"walrus/internal/histogram"
	"walrus/internal/jfs"
	"walrus/internal/wbiis"
)

// PrecisionRow is one system's mean retrieval precision over a set of
// queries.
type PrecisionRow struct {
	System string
	// MeanPrecision averages precision@k over all queries.
	MeanPrecision float64
	// Queries is the number of queries averaged.
	Queries int
}

// MeanPrecision extends the Figure 7/8 comparison from one query to a
// systematic evaluation: for `perCategory` query images drawn from each
// category, every system retrieves its top k (excluding the query itself)
// and precision against the ground-truth labels is averaged. Alongside
// WALRUS and WBIIS it also scores the two earlier baselines the paper's
// related-work section discusses: the truncated-Haar scheme of Jacobs et
// al. and a QBIC-style color histogram.
func MeanPrecision(ds *dataset.Dataset, cfg WalrusConfig, queriesPerCategory, k int) ([]PrecisionRow, error) {
	// Select queries: the first few items of each category.
	var queries []dataset.Item
	for _, cat := range dataset.Categories() {
		items := ds.ByCategory(cat)
		for i := 0; i < queriesPerCategory && i < len(items); i++ {
			queries = append(queries, items[i])
		}
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("experiments: dataset has no queries")
	}

	// Build all four systems.
	db, err := BuildWalrusDB(ds, cfg.Options)
	if err != nil {
		return nil, err
	}
	wx, err := wbiis.New(wbiis.DefaultOptions())
	if err != nil {
		return nil, err
	}
	jx, err := jfs.New(jfs.DefaultOptions())
	if err != nil {
		return nil, err
	}
	hx, err := histogram.New(histogram.DefaultOptions())
	if err != nil {
		return nil, err
	}
	for _, it := range ds.Items {
		if err := wx.Add(it.ID, it.Image); err != nil {
			return nil, err
		}
		if err := jx.Add(it.ID, it.Image); err != nil {
			return nil, err
		}
		if err := hx.Add(it.ID, it.Image); err != nil {
			return nil, err
		}
	}

	precision := func(ids []string, q dataset.Item) float64 {
		if len(ids) == 0 {
			return 0
		}
		related := 0
		for _, id := range ids {
			if dataset.CategoryOf(id) == q.Category {
				related++
			}
		}
		return float64(related) / float64(len(ids))
	}
	topIDs := func(q dataset.Item, fetch func() ([]string, error)) ([]string, error) {
		ids, err := fetch()
		if err != nil {
			return nil, err
		}
		out := ids[:0]
		for _, id := range ids {
			if id == q.ID {
				continue
			}
			out = append(out, id)
			if len(out) == k {
				break
			}
		}
		return out, nil
	}

	sums := map[string]float64{}
	for _, q := range queries {
		// WALRUS.
		p := cfg.Params
		p.Limit = k + 1
		ids, err := topIDs(q, func() ([]string, error) {
			matches, _, err := db.Query(q.Image, p)
			if err != nil {
				return nil, err
			}
			out := make([]string, len(matches))
			for i, m := range matches {
				out[i] = m.ID
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		sums["WALRUS"] += precision(ids, q)

		ids, err = topIDs(q, func() ([]string, error) {
			matches, err := wx.Query(q.Image, k+1)
			if err != nil {
				return nil, err
			}
			out := make([]string, len(matches))
			for i, m := range matches {
				out[i] = m.ID
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		sums["WBIIS"] += precision(ids, q)

		ids, err = topIDs(q, func() ([]string, error) {
			matches, err := jx.Query(q.Image, k+1)
			if err != nil {
				return nil, err
			}
			out := make([]string, len(matches))
			for i, m := range matches {
				out[i] = m.ID
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		sums["JFS"] += precision(ids, q)

		ids, err = topIDs(q, func() ([]string, error) {
			matches, err := hx.Query(q.Image, k+1)
			if err != nil {
				return nil, err
			}
			out := make([]string, len(matches))
			for i, m := range matches {
				out[i] = m.ID
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		sums["histogram"] += precision(ids, q)
	}

	systems := []string{"WALRUS", "WBIIS", "JFS", "histogram"}
	rows := make([]PrecisionRow, 0, len(systems))
	for _, s := range systems {
		rows = append(rows, PrecisionRow{
			System:        s,
			MeanPrecision: sums[s] / float64(len(queries)),
			Queries:       len(queries),
		})
	}
	return rows, nil
}

// PrintPrecision renders the cross-system precision table.
func PrintPrecision(w io.Writer, k int, rows []PrecisionRow) {
	fmt.Fprintf(w, "Mean precision@%d against ground-truth categories (%d queries)\n", k, rows[0].Queries)
	fmt.Fprintf(w, "%-12s %16s\n", "system", "mean precision")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %16.3f\n", r.System, r.MeanPrecision)
	}
}
