package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"walrus"
	"walrus/internal/dataset"
)

// DurabilityRow reports ingest cost under one WAL durability policy.
type DurabilityRow struct {
	Policy       walrus.DurabilityPolicy
	Elapsed      time.Duration
	ImagesPerSec float64
	Overhead     float64 // elapsed relative to the cheapest policy
	Persisted    bool    // reopen after close sees every image
}

// DurabilitySweep ingests the dataset into a disk-backed index once per
// durability policy and measures the write-path cost of each fsync
// discipline: none (flush to OS only), group commit (fsync every 256KB
// of log), and always (fsync per operation). After each run the index is
// reopened to verify the ingest survived a clean close.
func DurabilitySweep(ds *dataset.Dataset, opts walrus.Options) ([]DurabilityRow, error) {
	items := make([]walrus.BatchItem, len(ds.Items))
	for i, it := range ds.Items {
		items[i] = walrus.BatchItem{ID: it.ID, Image: it.Image}
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("experiments: empty dataset")
	}
	base, err := os.MkdirTemp("", "walrus-durability")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(base)

	policies := []walrus.DurabilityPolicy{
		walrus.DurabilityNone,
		walrus.DurabilityGroupCommit,
		walrus.DurabilityAlways,
	}
	// Warm-up ingest (discarded): region extraction dominates wall time,
	// and a cold first run would otherwise be charged to whichever policy
	// goes first.
	{
		db, err := walrus.Create(filepath.Join(base, "warmup"), opts)
		if err != nil {
			return nil, err
		}
		if err := db.AddBatch(items, 0); err != nil {
			db.Close()
			return nil, err
		}
		if err := db.Close(); err != nil {
			return nil, err
		}
	}
	rows := make([]DurabilityRow, 0, len(policies))
	for _, pol := range policies {
		dir := filepath.Join(base, pol.String())
		o := opts
		o.Durability = pol
		db, err := walrus.Create(dir, o)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := db.AddBatch(items, 0); err != nil {
			db.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		if err := db.Close(); err != nil {
			return nil, err
		}
		re, err := walrus.Open(dir)
		if err != nil {
			return nil, fmt.Errorf("reopening %s index: %w", pol, err)
		}
		persisted := re.Len() == len(items)
		re.Close()
		rows = append(rows, DurabilityRow{
			Policy:       pol,
			Elapsed:      elapsed,
			ImagesPerSec: float64(len(items)) / elapsed.Seconds(),
			Persisted:    persisted,
		})
	}
	cheapest := rows[0].Elapsed
	for _, r := range rows {
		if r.Elapsed < cheapest {
			cheapest = r.Elapsed
		}
	}
	for i := range rows {
		rows[i].Overhead = rows[i].Elapsed.Seconds() / cheapest.Seconds()
	}
	return rows, nil
}

// PrintDurability renders the durability-policy cost comparison.
func PrintDurability(w io.Writer, rows []DurabilityRow) {
	fmt.Fprintln(w, "Ingest cost by WAL durability policy")
	fmt.Fprintf(w, "%8s %14s %12s %10s %10s\n", "policy", "elapsed", "images/s", "overhead", "persisted")
	for _, r := range rows {
		ok := "yes"
		if !r.Persisted {
			ok = "NO"
		}
		fmt.Fprintf(w, "%8s %14s %12.2f %9.2fx %10s\n",
			r.Policy, r.Elapsed.Round(time.Millisecond), r.ImagesPerSec, r.Overhead, ok)
	}
}
