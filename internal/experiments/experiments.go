// Package experiments regenerates every table and figure of the WALRUS
// paper's evaluation (Section 6):
//
//   - Fig6a / Fig6b — wavelet signature computation time, naive vs dynamic
//     programming, as window size and signature size grow;
//   - Fig7 / Fig8 — top-k retrieval for a flower query under WBIIS
//     (whole-image signature) and WALRUS (region signatures), scored as
//     precision against the synthetic dataset's ground-truth labels;
//   - Table1 — query response time, average number of regions retrieved
//     per query region, and number of distinct candidate images as the
//     query epsilon grows;
//   - RegionsPerImage (§6.6) — average number of regions per image as the
//     clustering epsilon εc grows, for YCC vs RGB.
//
// The same functions back the cmd/walrus-bench binary and the testing.B
// benchmarks in the repository root.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"walrus"
	"walrus/internal/colorspace"
	"walrus/internal/dataset"
	"walrus/internal/imgio"
	"walrus/internal/match"
	"walrus/internal/region"
	"walrus/internal/wavelet"
	"walrus/internal/wbiis"
)

// ---------------------------------------------------------------------------
// Figure 6: dynamic programming vs naive signature computation.

// Fig6Row is one point of a Figure 6 series.
type Fig6Row struct {
	// Param is the swept parameter: window size for Fig6a, signature size
	// for Fig6b.
	Param int
	// Naive and DP are the wall-clock times of the two algorithms.
	Naive, DP time.Duration
}

// Speedup returns Naive/DP.
func (r Fig6Row) Speedup() float64 {
	if r.DP == 0 {
		return 0
	}
	return float64(r.Naive) / float64(r.DP)
}

// randomPlane builds the deterministic test image used by Figure 6.
func randomPlane(size int) []float64 {
	rng := rand.New(rand.NewSource(42))
	p := make([]float64, size*size)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

// Fig6a reproduces Figure 6(a): fix a size×size image, 2×2 signatures and
// slide 1, and sweep the window size from 2 up to maxWindow. The paper
// used size=256 and maxWindow=128.
func Fig6a(size, maxWindow int) ([]Fig6Row, error) {
	plane := randomPlane(size)
	var rows []Fig6Row
	for win := 2; win <= maxWindow; win *= 2 {
		params := wavelet.SlidingParams{MaxWindow: win, Signature: 2, Step: 1}
		row := Fig6Row{Param: win}
		start := time.Now()
		if _, err := wavelet.ComputeSlidingWindows(plane, size, size, params); err != nil {
			return nil, err
		}
		row.DP = time.Since(start)
		start = time.Now()
		if _, err := wavelet.NaiveWindowSignatures(plane, size, size, win, 2, 1); err != nil {
			return nil, err
		}
		row.Naive = time.Since(start)
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6b reproduces Figure 6(b): fix the window size and sweep the
// signature size from 2 to maxSig. The paper used window=128, maxSig=32.
func Fig6b(size, window, maxSig int) ([]Fig6Row, error) {
	plane := randomPlane(size)
	var rows []Fig6Row
	for sig := 2; sig <= maxSig; sig *= 2 {
		params := wavelet.SlidingParams{MaxWindow: window, Signature: sig, Step: 1}
		row := Fig6Row{Param: sig}
		start := time.Now()
		if _, err := wavelet.ComputeSlidingWindows(plane, size, size, params); err != nil {
			return nil, err
		}
		row.DP = time.Since(start)
		start = time.Now()
		if _, err := wavelet.NaiveWindowSignatures(plane, size, size, window, sig, 1); err != nil {
			return nil, err
		}
		row.Naive = time.Since(start)
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig6 renders a Figure 6 series as a table.
func PrintFig6(w io.Writer, title, paramName string, rows []Fig6Row) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s %14s %14s %10s\n", paramName, "naive", "dynamic-prog", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12d %14s %14s %9.1fx\n", r.Param, r.Naive.Round(time.Microsecond), r.DP.Round(time.Microsecond), r.Speedup())
	}
}

// ---------------------------------------------------------------------------
// Figures 7 and 8: retrieval quality, WBIIS vs WALRUS.

// RetrievalRow is one ranked result.
type RetrievalRow struct {
	Rank     int
	ID       string
	Category dataset.Category
	// Score is system-specific: a distance for WBIIS (lower better), a
	// similarity for WALRUS (higher better).
	Score float64
	// Related reports whether the result shares the query's category.
	Related bool
}

// RetrievalResult is a full top-k answer for one system.
type RetrievalResult struct {
	System  string
	QueryID string
	Rows    []RetrievalRow
}

// Precision returns the fraction of related results.
func (r RetrievalResult) Precision() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	n := 0
	for _, row := range r.Rows {
		if row.Related {
			n++
		}
	}
	return float64(n) / float64(len(r.Rows))
}

// Fig7 reproduces Figure 7: the top-k images WBIIS returns for a query
// drawn from the dataset (the paper's query was image 866, red flowers on
// green leaves; pass a flowers item). The query image itself is excluded
// from the results, as in the paper's figure which lists the 14 best
// non-query matches.
func Fig7(ds *dataset.Dataset, query dataset.Item, k int) (RetrievalResult, error) {
	ix, err := wbiis.New(wbiis.DefaultOptions())
	if err != nil {
		return RetrievalResult{}, err
	}
	for _, it := range ds.Items {
		if err := ix.Add(it.ID, it.Image); err != nil {
			return RetrievalResult{}, err
		}
	}
	matches, err := ix.Query(query.Image, k+1)
	if err != nil {
		return RetrievalResult{}, err
	}
	res := RetrievalResult{System: "WBIIS", QueryID: query.ID}
	for _, m := range matches {
		if m.ID == query.ID {
			continue
		}
		if len(res.Rows) == k {
			break
		}
		res.Rows = append(res.Rows, RetrievalRow{
			Rank:     len(res.Rows) + 1,
			ID:       m.ID,
			Category: dataset.CategoryOf(m.ID),
			Score:    m.Distance,
			Related:  dataset.CategoryOf(m.ID) == query.Category,
		})
	}
	return res, nil
}

// WalrusConfig bundles the database and query parameters for Fig8/Table1.
type WalrusConfig struct {
	Options walrus.Options
	Params  walrus.QueryParams
}

// PaperWalrusConfig returns the exact parameters Section 6.4 reports for
// Figure 8: fixed 64×64 windows, εc = 0.05, 2×2 signatures per channel
// (12-d points), centroid signatures, ε = 0.085, YCC, quick matcher.
func PaperWalrusConfig() WalrusConfig {
	opts := walrus.DefaultOptions() // already the paper's region options
	params := walrus.DefaultQueryParams()
	return WalrusConfig{Options: opts, Params: params}
}

// BuildWalrusDB indexes a whole dataset into a fresh in-memory DB.
func BuildWalrusDB(ds *dataset.Dataset, opts walrus.Options) (*walrus.DB, error) {
	db, err := walrus.New(opts)
	if err != nil {
		return nil, err
	}
	for _, it := range ds.Items {
		if err := db.Add(it.ID, it.Image); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Fig8 reproduces Figure 8: the top-k images WALRUS returns for the same
// query, under the paper's parameters.
func Fig8(db *walrus.DB, query dataset.Item, params walrus.QueryParams, k int) (RetrievalResult, error) {
	params.Limit = k + 1
	matches, _, err := db.Query(query.Image, params)
	if err != nil {
		return RetrievalResult{}, err
	}
	res := RetrievalResult{System: "WALRUS", QueryID: query.ID}
	for _, m := range matches {
		if m.ID == query.ID {
			continue
		}
		if len(res.Rows) == k {
			break
		}
		res.Rows = append(res.Rows, RetrievalRow{
			Rank:     len(res.Rows) + 1,
			ID:       m.ID,
			Category: dataset.CategoryOf(m.ID),
			Score:    m.Similarity,
			Related:  dataset.CategoryOf(m.ID) == query.Category,
		})
	}
	return res, nil
}

// PrintRetrieval renders a Figure 7/8 style ranked list.
func PrintRetrieval(w io.Writer, res RetrievalResult) {
	fmt.Fprintf(w, "%s top-%d for query %s (precision %.2f)\n", res.System, len(res.Rows), res.QueryID, res.Precision())
	fmt.Fprintf(w, "%-5s %-18s %-10s %10s %8s\n", "rank", "image", "category", "score", "related")
	for _, r := range res.Rows {
		rel := ""
		if r.Related {
			rel = "yes"
		}
		fmt.Fprintf(w, "%-5d %-18s %-10s %10.4f %8s\n", r.Rank, r.ID, r.Category, r.Score, rel)
	}
}

// ---------------------------------------------------------------------------
// Table 1: query response time and selectivity vs epsilon.

// Table1Row is one row of Table 1.
type Table1Row struct {
	Epsilon        float64
	Response       time.Duration
	AvgRegions     float64 // avg matching regions per query region
	DistinctImages int
}

// Table1 runs the query at each epsilon and reports the paper's three
// measurements.
func Table1(db *walrus.DB, query *imgio.Image, base walrus.QueryParams, epsilons []float64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, eps := range epsilons {
		p := base
		p.Epsilon = eps
		_, stats, err := db.Query(query, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Epsilon:        eps,
			Response:       stats.Elapsed,
			AvgRegions:     stats.AvgRegionsPerQueryRegion(),
			DistinctImages: stats.CandidateImages,
		})
	}
	return rows, nil
}

// PrintTable1 renders Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: Query Response Time (Selectivity)")
	fmt.Fprintf(w, "%-14s %16s %22s %18s\n", "epsilon", "response", "avg regions/query-reg", "distinct images")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14.3f %16s %22.1f %18d\n", r.Epsilon, r.Response.Round(10*time.Microsecond), r.AvgRegions, r.DistinctImages)
	}
}

// ---------------------------------------------------------------------------
// Section 6.6: number of regions per image vs clustering epsilon.

// RegionsRow reports the average region count per image at one εc.
type RegionsRow struct {
	ClusterEps float64
	YCC, RGB   float64
}

// RegionsPerImage extracts regions from every item at each εc, in both YCC
// and RGB, and reports the average counts (the paper's §6.6 numbers:
// counts fall as εc grows, and RGB produces roughly 4× more clusters than
// YCC).
func RegionsPerImage(items []dataset.Item, baseOpts region.Options, epsilons []float64) ([]RegionsRow, error) {
	var rows []RegionsRow
	for _, eps := range epsilons {
		row := RegionsRow{ClusterEps: eps}
		for _, space := range []colorspace.Space{colorspace.YCC, colorspace.RGB} {
			opts := baseOpts
			opts.ClusterEps = eps
			opts.Space = space
			ext, err := region.NewExtractor(opts)
			if err != nil {
				return nil, err
			}
			total := 0
			for _, it := range items {
				regions, err := ext.Extract(it.Image)
				if err != nil {
					return nil, err
				}
				total += len(regions)
			}
			avg := float64(total) / float64(len(items))
			if space == colorspace.YCC {
				row.YCC = avg
			} else {
				row.RGB = avg
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintRegionsPerImage renders the §6.6 sweep.
func PrintRegionsPerImage(w io.Writer, rows []RegionsRow) {
	fmt.Fprintln(w, "Section 6.6: average regions per image vs cluster epsilon")
	fmt.Fprintf(w, "%-14s %12s %12s %12s\n", "cluster eps", "YCC", "RGB", "RGB/YCC")
	for _, r := range rows {
		ratio := 0.0
		if r.YCC > 0 {
			ratio = r.RGB / r.YCC
		}
		fmt.Fprintf(w, "%-14.3f %12.1f %12.1f %11.1fx\n", r.ClusterEps, r.YCC, r.RGB, ratio)
	}
}

// ---------------------------------------------------------------------------
// Matcher ablation (design-choice bench called out in DESIGN.md).

// MatcherRow compares the three image-matching algorithms on one query.
type MatcherRow struct {
	Algorithm  match.Algorithm
	Response   time.Duration
	TopID      string
	Similarity float64
}

// MatcherAblation runs the same query under quick, greedy and exact
// matching.
func MatcherAblation(db *walrus.DB, query *imgio.Image, base walrus.QueryParams) ([]MatcherRow, error) {
	var rows []MatcherRow
	for _, alg := range []match.Algorithm{match.Quick, match.Greedy, match.Exact, match.Assignment} {
		p := base
		p.Matcher = alg
		p.Limit = 1
		matches, stats, err := db.Query(query, p)
		if err != nil {
			return nil, err
		}
		row := MatcherRow{Algorithm: alg, Response: stats.Elapsed}
		if len(matches) > 0 {
			row.TopID = matches[0].ID
			row.Similarity = matches[0].Similarity
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintMatcherAblation renders the matcher comparison.
func PrintMatcherAblation(w io.Writer, rows []MatcherRow) {
	fmt.Fprintln(w, "Ablation: image-matching algorithm")
	fmt.Fprintf(w, "%-10s %14s %-18s %12s\n", "matcher", "response", "top match", "similarity")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %14s %-18s %12.4f\n", r.Algorithm, r.Response.Round(10*time.Microsecond), r.TopID, r.Similarity)
	}
}
