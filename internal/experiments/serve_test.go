package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestServeBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serve bench drives a live listener; skipped in -short")
	}
	res, err := ServeBench(16, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 16 || res.WriteFraction != 0.25 {
		t.Fatalf("workload shape not echoed: %+v", res)
	}
	if res.Requests == 0 || res.Search.Count == 0 {
		t.Fatalf("no load reached the server: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors under smoke load: %+v", res.Errors, res)
	}
	if res.Writes > 0 {
		if res.VersionsPublished == 0 {
			t.Fatalf("writes acknowledged but no version published: %+v", res)
		}
		if res.VersionsPublished > uint64(res.Writes) {
			t.Fatalf("more versions than writes (coalescing inverted): %+v", res)
		}
	}
	var buf bytes.Buffer
	PrintServeBench(&buf, res)
	for _, want := range []string{"requests=", "search", "writes/version"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("printout missing %q:\n%s", want, buf.String())
		}
	}
}
