package experiments

import (
	"bytes"
	"strings"
	"testing"

	"walrus/internal/dataset"
)

func TestRobustness(t *testing.T) {
	ds := smallDataset(t, 4, dataset.Flowers, dataset.Ocean, dataset.Bricks)
	cfg := smallConfig()
	target := ds.ByCategory(dataset.Flowers)[0]
	rows, err := Robustness(ds, cfg, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("only %d rows", len(rows))
	}
	byName := map[string]RobustnessRow{}
	for _, r := range rows {
		byName[r.Transform] = r
	}
	id := byName["identity"]
	if id.WalrusRank != 1 || id.WBIISRank != 1 {
		t.Fatalf("identity query did not rank the original first: %+v", id)
	}
	if id.WalrusSim < 0.95 {
		t.Fatalf("identity similarity %v", id.WalrusSim)
	}
	// Perturbations tolerated by the region model: the original must be
	// retrieved (nonzero rank) under noise, dithering and translation.
	for _, name := range []string{"noise 5%", "dither 8 levels", "translate (16,12)"} {
		if byName[name].WalrusRank == 0 {
			t.Errorf("WALRUS missed the original under %q", name)
		}
	}
	var buf bytes.Buffer
	PrintRobustness(&buf, target.ID, rows)
	if !strings.Contains(buf.String(), "WALRUS rank") {
		t.Fatal("PrintRobustness missing header")
	}
	if rankString(0) != "miss" || rankString(3) != "3" {
		t.Fatal("rankString wrong")
	}
}
