package experiments

import (
	"bytes"
	"strings"
	"testing"

	"walrus"
	"walrus/internal/dataset"
	"walrus/internal/region"
)

// smallDataset builds a quick dataset whose images fit 32-pixel windows.
func smallDataset(t *testing.T, perCategory int, cats ...dataset.Category) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Options{
		Seed:        11,
		PerCategory: perCategory,
		Sizes:       [][2]int{{96, 64}, {64, 96}},
		Categories:  cats,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// smallConfig shrinks the paper's parameters for fast tests.
func smallConfig() WalrusConfig {
	cfg := PaperWalrusConfig()
	cfg.Options.Region.MaxWindow = 32
	cfg.Options.Region.MinWindow = 32
	cfg.Options.Region.Step = 8
	return cfg
}

func TestFig6aShape(t *testing.T) {
	rows, err := Fig6a(64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // windows 2..32
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.Param != 2<<i {
			t.Fatalf("row %d param %d", i, r.Param)
		}
		if r.DP <= 0 || r.Naive <= 0 {
			t.Fatalf("row %d has zero timing: %+v", i, r)
		}
	}
	// The DP advantage must grow with window size; at the largest window
	// the naive algorithm must be clearly slower.
	if rows[len(rows)-1].Speedup() < 2 {
		t.Fatalf("DP speedup at window 32 = %.2f, want >= 2", rows[len(rows)-1].Speedup())
	}
	var buf bytes.Buffer
	PrintFig6(&buf, "Figure 6(a)", "window", rows)
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatal("PrintFig6 missing header")
	}
}

func TestFig6bShape(t *testing.T) {
	rows, err := Fig6b(64, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // signatures 2, 4, 8
		t.Fatalf("got %d rows", len(rows))
	}
	// Naive time is roughly flat in the signature size; DP grows but stays
	// faster at small signatures.
	if rows[0].Speedup() < 1.5 {
		t.Fatalf("speedup at s=2 is %.2f, want >= 1.5", rows[0].Speedup())
	}
}

func TestFig7AndFig8(t *testing.T) {
	ds := smallDataset(t, 6, dataset.Flowers, dataset.Bricks, dataset.Ocean)
	query := ds.ByCategory(dataset.Flowers)[0]

	fig7, err := Fig7(ds, query, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fig7.System != "WBIIS" || len(fig7.Rows) != 5 {
		t.Fatalf("fig7 = %+v", fig7)
	}
	for _, row := range fig7.Rows {
		if row.ID == query.ID {
			t.Fatal("query image returned as its own match")
		}
	}

	cfg := smallConfig()
	db, err := BuildWalrusDB(ds, cfg.Options)
	if err != nil {
		t.Fatal(err)
	}
	fig8, err := Fig8(db, query, cfg.Params, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fig8.System != "WALRUS" || len(fig8.Rows) == 0 {
		t.Fatalf("fig8 = %+v", fig8)
	}
	if fig8.Precision() < 0.4 {
		t.Fatalf("WALRUS precision %.2f too low on an easy dataset", fig8.Precision())
	}
	var buf bytes.Buffer
	PrintRetrieval(&buf, fig8)
	if !strings.Contains(buf.String(), "WALRUS") {
		t.Fatal("PrintRetrieval missing system name")
	}
}

func TestTable1Monotonicity(t *testing.T) {
	ds := smallDataset(t, 5, dataset.Flowers, dataset.Ocean)
	cfg := smallConfig()
	db, err := BuildWalrusDB(ds, cfg.Options)
	if err != nil {
		t.Fatal(err)
	}
	query := ds.ByCategory(dataset.Flowers)[1]
	rows, err := Table1(db, query.Image, cfg.Params, []float64{0.05, 0.07, 0.09})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].AvgRegions < rows[i-1].AvgRegions {
			t.Fatalf("avg regions not monotone: %+v", rows)
		}
		if rows[i].DistinctImages < rows[i-1].DistinctImages {
			t.Fatalf("distinct images not monotone: %+v", rows)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "distinct images") {
		t.Fatal("PrintTable1 missing header")
	}
}

func TestRegionsPerImage(t *testing.T) {
	ds := smallDataset(t, 2, dataset.Flowers)
	opts := region.DefaultOptions()
	opts.MaxWindow = 32
	opts.MinWindow = 32
	opts.Step = 8
	rows, err := RegionsPerImage(ds.Items, opts, []float64{0.025, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Region counts fall (or at least do not grow materially) as εc grows.
	if rows[1].YCC > rows[0].YCC+1 {
		t.Fatalf("YCC counts grew with epsilon: %+v", rows)
	}
	for _, r := range rows {
		if r.YCC <= 0 || r.RGB <= 0 {
			t.Fatalf("zero counts: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintRegionsPerImage(&buf, rows)
	if !strings.Contains(buf.String(), "RGB/YCC") {
		t.Fatal("PrintRegionsPerImage missing header")
	}
}

func TestMatcherAblation(t *testing.T) {
	ds := smallDataset(t, 3, dataset.Flowers, dataset.Bricks)
	cfg := smallConfig()
	db, err := BuildWalrusDB(ds, cfg.Options)
	if err != nil {
		t.Fatal(err)
	}
	query := ds.ByCategory(dataset.Flowers)[0]
	rows, err := MatcherAblation(db, query.Image, cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Quick >= exact >= greedy similarity on the same candidates.
	if rows[0].Similarity < rows[2].Similarity-1e-9 {
		t.Fatalf("quick < exact: %+v", rows)
	}
	if rows[2].Similarity < rows[1].Similarity-1e-9 {
		t.Fatalf("exact < greedy: %+v", rows)
	}
	var buf bytes.Buffer
	PrintMatcherAblation(&buf, rows)
	if !strings.Contains(buf.String(), "matcher") {
		t.Fatal("PrintMatcherAblation missing header")
	}
}

func TestPaperWalrusConfigMatchesPaper(t *testing.T) {
	cfg := PaperWalrusConfig()
	o := cfg.Options.Region
	if o.MaxWindow != 64 || o.MinWindow != 64 {
		t.Errorf("window = %d..%d, want fixed 64", o.MinWindow, o.MaxWindow)
	}
	if o.Signature != 2 {
		t.Errorf("signature = %d, want 2", o.Signature)
	}
	if o.ClusterEps != 0.05 {
		t.Errorf("cluster eps = %v, want 0.05", o.ClusterEps)
	}
	if o.BitmapGrid != 16 {
		t.Errorf("bitmap grid = %d, want 16", o.BitmapGrid)
	}
	if cfg.Params.Epsilon != 0.085 {
		t.Errorf("epsilon = %v, want 0.085", cfg.Params.Epsilon)
	}
	if dim := o.Dim(); dim != 12 {
		t.Errorf("signature dim = %d, want 12", dim)
	}
}

func TestBuildWalrusDB(t *testing.T) {
	ds := smallDataset(t, 2, dataset.Ocean)
	cfg := smallConfig()
	db, err := BuildWalrusDB(ds, cfg.Options)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	if _, err := BuildWalrusDB(ds, walrus.Options{}); err == nil {
		t.Fatal("BuildWalrusDB accepted zero options")
	}
}

func TestIndexingThroughput(t *testing.T) {
	ds := smallDataset(t, 3, dataset.Flowers, dataset.Ocean)
	rows, err := IndexingThroughput(ds, smallConfig().Options)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Images != len(ds.Items) {
			t.Fatalf("%s indexed %d images, want %d", r.Method, r.Images, len(ds.Items))
		}
		if r.Regions == 0 || r.Elapsed <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}
	// All strategies index the same regions.
	if rows[0].Regions != rows[1].Regions || rows[1].Regions != rows[2].Regions {
		t.Fatalf("region counts differ across strategies: %+v", rows)
	}
	var buf bytes.Buffer
	PrintIndexing(&buf, rows)
	if !strings.Contains(buf.String(), "elapsed") {
		t.Fatal("PrintIndexing missing header")
	}
}
