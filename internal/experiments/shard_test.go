package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestShardScaling(t *testing.T) {
	res, err := ShardScaling(1500, 40, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseImages != 1500 || res.Writes != 40 {
		t.Fatalf("workload shape not echoed: %+v", res)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.WritesPerSec <= 0 || row.PerWriteNs <= 0 {
			t.Fatalf("empty measurement for shards=%d: %+v", row.Shards, row)
		}
	}
	if res.Rows[0].Shards != 1 || res.Rows[0].Speedup != 1 {
		t.Fatalf("first row is not the shards=1 oracle: %+v", res.Rows[0])
	}
	if res.Rows[1].Speedup <= 0 {
		t.Fatalf("speedup not computed: %+v", res.Rows[1])
	}
	if !res.Identical {
		t.Fatal("query results diverged across shard counts")
	}
	var buf bytes.Buffer
	PrintShardScaling(&buf, res)
	for _, want := range []string{"writes/sec", "identical across shard counts: true"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("printout missing %q:\n%s", want, buf.String())
		}
	}
}
