package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"walrus"
	"walrus/internal/dataset"
	"walrus/internal/obs"
)

// ExplainOverheadResult measures what the EXPLAIN/tracing machinery
// costs on the query hot path of a disk-backed index, across the three
// modes a query can run in: tracing off (no registry, plain context —
// the default), live spans (registry attached, no explain), and full
// EXPLAIN (registry attached, funnel accumulator on the context). All
// timings are best-of-rounds means per serial query.
type ExplainOverheadResult struct {
	Images          int `json:"images"`
	QueriesPerRound int `json:"queries_per_round"`
	Rounds          int `json:"rounds"`

	OffNsOp     float64 `json:"off_ns_per_query"`
	LiveNsOp    float64 `json:"live_spans_ns_per_query"`
	ExplainNsOp float64 `json:"explain_ns_per_query"`

	// LivePct and ExplainPct are each mode's overhead over tracing-off.
	LivePct    float64 `json:"live_spans_overhead_pct"`
	ExplainPct float64 `json:"explain_overhead_pct"`

	// FunnelConsistent reports the explain run's funnel invariants: stage
	// Out feeds the next stage's In, the shard rows sum to the totals,
	// and the stats the query returned agree with the funnel.
	FunnelConsistent bool `json:"funnel_consistent"`
	// SpansPerQuery is how many live spans one traced query records.
	SpansPerQuery float64 `json:"spans_per_query"`
}

// explainMode names one timed configuration of ExplainOverhead.
type explainMode int

const (
	modeOff explainMode = iota
	modeLive
	modeExplain
)

// ExplainOverhead builds a disk-backed index over up to images dataset
// items, then times the same serial query workload in the three tracing
// modes, alternating modes within each round and keeping each mode's
// best round so background noise hits all modes alike.
func ExplainOverhead(ds *dataset.Dataset, opts walrus.Options, images, queries, rounds int) (ExplainOverheadResult, error) {
	if len(ds.Items) == 0 {
		return ExplainOverheadResult{}, fmt.Errorf("experiments: empty dataset")
	}
	if images > len(ds.Items) {
		images = len(ds.Items)
	}
	items := make([]walrus.BatchItem, images)
	for i := 0; i < images; i++ {
		items[i] = walrus.BatchItem{ID: ds.Items[i].ID, Image: ds.Items[i].Image}
	}
	base, err := os.MkdirTemp("", "walrus-explain")
	if err != nil {
		return ExplainOverheadResult{}, err
	}
	defer os.RemoveAll(base)
	db, err := walrus.Create(filepath.Join(base, "idx"), opts)
	if err != nil {
		return ExplainOverheadResult{}, err
	}
	defer db.Close()
	if err := db.AddBatch(items, 0); err != nil {
		return ExplainOverheadResult{}, err
	}

	reg := obs.NewRegistry()
	params := walrus.DefaultQueryParams()
	params.Parallelism = 1 // serial: measure the hot path, not the scheduler
	q := ds.Items[0].Image
	run := func(mode explainMode) (time.Duration, error) {
		if mode == modeOff {
			db.SetMetrics(nil)
		} else {
			db.SetMetrics(reg)
		}
		start := time.Now()
		for i := 0; i < queries; i++ {
			ctx := context.Background()
			if mode == modeExplain {
				ctx, _ = walrus.WithQueryTrace(ctx)
			}
			if _, _, err := db.QueryContext(ctx, q, params); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	if _, err := run(modeOff); err != nil { // warm-up, discarded
		return ExplainOverheadResult{}, err
	}

	best := map[explainMode]time.Duration{}
	for r := 0; r < rounds; r++ {
		for _, mode := range []explainMode{modeOff, modeLive, modeExplain} {
			d, err := run(mode)
			if err != nil {
				return ExplainOverheadResult{}, err
			}
			if cur, ok := best[mode]; !ok || d < cur {
				best[mode] = d
			}
		}
	}

	// One final explained query checks the funnel invariants and counts
	// the spans a traced query records (by its own trace id, so ring
	// wraparound from the timed rounds cannot skew the count).
	db.SetMetrics(reg)
	ctx, qt := walrus.WithQueryTrace(context.Background())
	matches, stats, err := db.QueryContext(ctx, q, params)
	if err != nil {
		return ExplainOverheadResult{}, err
	}
	spans := 0
	if id, err := obs.ParseTraceID(qt.TraceID); err == nil {
		spans = len(reg.Tracer().TraceSpans(id))
	}
	db.SetMetrics(nil)

	res := ExplainOverheadResult{
		Images:           images,
		QueriesPerRound:  queries,
		Rounds:           rounds,
		OffNsOp:          float64(best[modeOff].Nanoseconds()) / float64(queries),
		LiveNsOp:         float64(best[modeLive].Nanoseconds()) / float64(queries),
		ExplainNsOp:      float64(best[modeExplain].Nanoseconds()) / float64(queries),
		FunnelConsistent: funnelConsistent(qt, stats, len(matches)),
		SpansPerQuery:    float64(spans),
	}
	res.LivePct = (res.LiveNsOp - res.OffNsOp) / res.OffNsOp * 100
	res.ExplainPct = (res.ExplainNsOp - res.OffNsOp) / res.OffNsOp * 100
	return res, nil
}

// funnelConsistent checks the structural invariants of a filled funnel
// against the stats and matches the same query returned.
func funnelConsistent(qt *walrus.QueryTrace, stats walrus.QueryStats, matches int) bool {
	if qt.QueryRegions != stats.QueryRegions || qt.Matches != matches {
		return false
	}
	if len(qt.Stages) == 0 || len(qt.Shards) == 0 {
		return false
	}
	for i, st := range qt.Stages[1:] {
		if st.In != qt.Stages[i].Out {
			return false
		}
	}
	retrieved, candidates := 0, 0
	for _, sh := range qt.Shards {
		retrieved += sh.RegionsRetrieved
		candidates += sh.CandidateImages
	}
	return retrieved == stats.RegionsRetrieved && candidates == stats.CandidateImages
}

// PrintExplainOverhead renders the EXPLAIN overhead measurement.
func PrintExplainOverhead(w io.Writer, r ExplainOverheadResult) {
	fmt.Fprintf(w, "EXPLAIN overhead (%d images, %d serial queries x %d rounds, best round per mode)\n",
		r.Images, r.QueriesPerRound, r.Rounds)
	fmt.Fprintf(w, "%-34s %12.0f ns/query\n", "tracing off (no registry)", r.OffNsOp)
	fmt.Fprintf(w, "%-34s %12.0f ns/query (%+.2f%%)\n", "live spans (registry attached)", r.LiveNsOp, r.LivePct)
	fmt.Fprintf(w, "%-34s %12.0f ns/query (%+.2f%%)\n", "explain (funnel accumulator)", r.ExplainNsOp, r.ExplainPct)
	fmt.Fprintf(w, "funnel consistent: %v; live spans per traced query: %.0f\n", r.FunnelConsistent, r.SpansPerQuery)
}
