package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"walrus"
	"walrus/internal/imgio"
)

// ShardScalingRow is one shard count's marginal write measurement.
type ShardScalingRow struct {
	Shards       int     `json:"shards"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	PerWriteNs   float64 `json:"ns_per_write"`
	WritesPerSec float64 `json:"writes_per_sec"`
	Speedup      float64 `json:"speedup_vs_one_shard"`
}

// ShardScalingResult measures what sharding buys the write path once the
// catalog is large: every committed write re-publishes its shard's
// copy-on-write catalog, an O(shard catalog) clone, so the marginal cost
// of one Add at a fixed database size divides with the shard count. The
// rows report marginal write throughput against a preloaded base at each
// shard count; Identical asserts the configurations stay logically
// equivalent — same counts and byte-identical query rankings — so the
// speedup is not bought with divergent results.
type ShardScalingResult struct {
	BaseImages int               `json:"base_images"`
	Writes     int               `json:"marginal_writes"`
	Distinct   int               `json:"distinct_signatures"`
	Rows       []ShardScalingRow `json:"rows"`
	Identical  bool              `json:"query_results_identical"`
}

// shardScalingOptions configures single-window extraction: 32×32 images
// under a 32×32 fixed window yield exactly one region per image, which
// keeps a 100k-signature preload affordable while the catalog — the thing
// sharding actually divides — is full-sized.
func shardScalingOptions() walrus.Options {
	o := walrus.DefaultOptions()
	o.Region.MaxWindow = 32
	o.Region.MinWindow = 32
	o.Region.Step = 32
	o.Parallelism = 1 // serial: measure the per-shard commit, not the pool
	return o
}

// shardScalingImages synthesizes k distinct 32×32 images. Pixel content is
// a per-image base color plus a fixed mild texture, so signatures differ
// across the pool; callers cycle the pool to reach any database size
// without holding that many pixel buffers.
func shardScalingImages(k int) []*imgio.Image {
	out := make([]*imgio.Image, k)
	for i := range out {
		im := imgio.New(32, 32, 3)
		seed := uint32(i+1) * 2654435761
		for c := 0; c < 3; c++ {
			base := 0.75 * float64((seed>>(8*uint(c)))&0xff) / 255
			plane := im.Plane(c)
			for p := range plane {
				plane[p] = base + 0.2*float64(p%7)/6
			}
		}
		out[i] = im
	}
	return out
}

// shardScalingFingerprint renders the logical state one configuration
// reached: image and region counts plus full query rankings with exact
// similarities. Every shard count must produce the same string.
func shardScalingFingerprint(s *walrus.Sharded, queries []*imgio.Image, p walrus.QueryParams) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "images=%d regions=%d\n", s.Len(), s.NumRegions())
	for qi, q := range queries {
		matches, qs, err := s.Query(q, p)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "q%d retrieved=%d candidates=%d\n", qi, qs.RegionsRetrieved, qs.CandidateImages)
		for _, m := range matches {
			b.WriteString("  ")
			b.WriteString(m.ID)
			b.WriteString(" ")
			b.WriteString(strconv.FormatFloat(m.Similarity, 'g', -1, 64))
			b.WriteString("\n")
		}
	}
	return b.String(), nil
}

// ShardScaling preloads `base` single-region signatures per configuration
// with the STR bulk loader, then times `writes` sequential Adds of fresh
// ids — the marginal write cost at that database size — for each shard
// count. Speedups are relative to the first shard count (run shards=1
// first to make it the oracle). After the timed phase every configuration
// holds the same image set, and the query fingerprint of each is compared
// against the first configuration's.
func ShardScaling(base, writes int, shardCounts []int) (ShardScalingResult, error) {
	if base <= 0 || writes <= 0 {
		return ShardScalingResult{}, fmt.Errorf("experiments: shard scaling needs positive base (%d) and writes (%d)", base, writes)
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	const distinct = 512
	pool := shardScalingImages(distinct)
	items := make([]walrus.BatchItem, base)
	for i := range items {
		items[i] = walrus.BatchItem{ID: fmt.Sprintf("base-%06d", i), Image: pool[i%distinct]}
	}
	params := walrus.DefaultQueryParams()
	params.Parallelism = 1
	params.Limit = 20
	queries := []*imgio.Image{pool[7%distinct], pool[123%distinct], pool[321%distinct]}

	res := ShardScalingResult{BaseImages: base, Writes: writes, Distinct: distinct, Identical: true}
	oracle := ""
	for _, n := range shardCounts {
		opts := shardScalingOptions()
		opts.Shards = n
		s, err := walrus.BuildFromSharded(opts, items, 0)
		if err != nil {
			return res, err
		}
		start := time.Now()
		for i := 0; i < writes; i++ {
			if err := s.Add(fmt.Sprintf("w-%06d", i), pool[(base+i)%distinct]); err != nil {
				return res, err
			}
		}
		elapsed := time.Since(start)
		row := ShardScalingRow{Shards: n, ElapsedNs: elapsed.Nanoseconds()}
		row.PerWriteNs = float64(row.ElapsedNs) / float64(writes)
		if elapsed > 0 {
			row.WritesPerSec = float64(writes) / elapsed.Seconds()
		}
		res.Rows = append(res.Rows, row)
		fp, err := shardScalingFingerprint(s, queries, params)
		if err != nil {
			return res, err
		}
		if oracle == "" {
			oracle = fp
		} else if fp != oracle {
			res.Identical = false
		}
	}
	if res.Rows[0].WritesPerSec > 0 {
		for i := range res.Rows {
			res.Rows[i].Speedup = res.Rows[i].WritesPerSec / res.Rows[0].WritesPerSec
		}
	}
	return res, nil
}

// PrintShardScaling renders the write-scaling measurement.
func PrintShardScaling(w io.Writer, r ShardScalingResult) {
	fmt.Fprintf(w, "Marginal write throughput at %d preloaded signatures (%d timed writes per shard count)\n",
		r.BaseImages, r.Writes)
	fmt.Fprintf(w, "%-8s %14s %14s %10s\n", "shards", "ns/write", "writes/sec", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %14.0f %14.1f %9.2fx\n", row.Shards, row.PerWriteNs, row.WritesPerSec, row.Speedup)
	}
	fmt.Fprintf(w, "query results identical across shard counts: %v\n", r.Identical)
}
