package experiments

import (
	"fmt"
	"io"
	"time"

	"walrus"
	"walrus/internal/dataset"
	"walrus/internal/parallel"
)

// ParallelRow reports ingest cost at one worker-pool size.
type ParallelRow struct {
	Workers      int
	Elapsed      time.Duration
	ImagesPerSec float64
	Speedup      float64 // relative to the 1-worker row
}

// ParallelSpeedup measures ingest throughput (AddBatch over the whole
// dataset) at parallelism 1 versus the requested pool size, and verifies
// that the two databases answer a query identically — the determinism
// guarantee the parallel pipeline makes. parallelism <= 0 means
// GOMAXPROCS. The boolean reports whether the query results matched.
func ParallelSpeedup(ds *dataset.Dataset, opts walrus.Options, parallelism int) ([]ParallelRow, bool, error) {
	items := make([]walrus.BatchItem, len(ds.Items))
	for i, it := range ds.Items {
		items[i] = walrus.BatchItem{ID: it.ID, Image: it.Image}
	}
	if len(items) == 0 {
		return nil, false, fmt.Errorf("experiments: empty dataset")
	}

	build := func(workers int) (*walrus.DB, time.Duration, error) {
		o := opts
		o.Parallelism = workers
		db, err := walrus.New(o)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		if err := db.AddBatch(items, workers); err != nil {
			return nil, 0, err
		}
		return db, time.Since(start), nil
	}

	serialDB, serialElapsed, err := build(1)
	if err != nil {
		return nil, false, err
	}
	workers := parallel.Workers(parallelism)
	parDB, parElapsed, err := build(workers)
	if err != nil {
		return nil, false, err
	}

	rate := func(d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(len(items)) / d.Seconds()
	}
	rows := []ParallelRow{
		{Workers: 1, Elapsed: serialElapsed, ImagesPerSec: rate(serialElapsed), Speedup: 1},
		{Workers: workers, Elapsed: parElapsed, ImagesPerSec: rate(parElapsed),
			Speedup: serialElapsed.Seconds() / parElapsed.Seconds()},
	}

	// Same query against both databases, serial vs parallel execution: the
	// rankings must agree exactly.
	q := ds.Items[0].Image
	sp := walrus.DefaultQueryParams()
	sp.Parallelism = 1
	serialMatches, _, err := serialDB.Query(q, sp)
	if err != nil {
		return rows, false, err
	}
	pp := walrus.DefaultQueryParams()
	pp.Parallelism = workers
	parMatches, _, err := parDB.Query(q, pp)
	if err != nil {
		return rows, false, err
	}
	identical := len(serialMatches) == len(parMatches)
	if identical {
		for i := range serialMatches {
			if serialMatches[i].ID != parMatches[i].ID ||
				serialMatches[i].Similarity != parMatches[i].Similarity {
				identical = false
				break
			}
		}
	}
	return rows, identical, nil
}

// PrintParallel renders the ingest speedup comparison.
func PrintParallel(w io.Writer, rows []ParallelRow, identical bool) {
	fmt.Fprintln(w, "Ingest throughput: serial vs parallel AddBatch")
	fmt.Fprintf(w, "%8s %14s %12s %9s\n", "workers", "elapsed", "images/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %14s %12.2f %8.2fx\n",
			r.Workers, r.Elapsed.Round(time.Millisecond), r.ImagesPerSec, r.Speedup)
	}
	if identical {
		fmt.Fprintln(w, "query results: identical across parallelism settings")
	} else {
		fmt.Fprintln(w, "query results: MISMATCH between parallelism settings")
	}
}
