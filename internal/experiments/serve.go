package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"walrus"
	"walrus/internal/imgio"
	"walrus/internal/serve"
)

// ServeLatency summarizes one operation class's latency distribution.
type ServeLatency struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// ServeBenchResult measures the HTTP front-end under concurrent mixed
// load: many clients issue searches and ingests against an in-process
// walrus-serve over a real TCP listener. Coalescing shows up as
// VersionsPublished ≪ Writes — every ingest was acknowledged
// individually, but the copy-on-write catalog republished only once per
// flush — while admission control keeps the engine at a fixed
// concurrency and sheds overload as 429s instead of queueing without
// bound.
type ServeBenchResult struct {
	Clients       int     `json:"clients"`
	DurationSec   float64 `json:"duration_sec"`
	WriteFraction float64 `json:"write_fraction"`
	BaseImages    int     `json:"base_images"`

	Requests       int     `json:"requests"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	Errors         int     `json:"errors"`
	Shed           int     `json:"shed_429"`

	Search ServeLatency `json:"search"`
	Ingest ServeLatency `json:"ingest"`

	Writes            int     `json:"writes_acknowledged"`
	VersionsPublished uint64  `json:"versions_published"`
	WritesPerVersion  float64 `json:"writes_per_version"`
}

// serveBenchOptions mirrors the shard experiment's dataset-free setup:
// 32×32 images under a fixed 32×32 window yield one region per image,
// so the harness measures the serving layer, not region extraction.
func serveBenchOptions() walrus.Options {
	o := walrus.DefaultOptions()
	o.Region.MaxWindow = 32
	o.Region.MinWindow = 32
	o.Region.Step = 32
	return o
}

// ServeBench loads an in-process server with clients concurrent workers
// for roughly seconds wall-clock, writeFrac of each worker's requests
// being ingests and the rest searches.
func ServeBench(clients, seconds int, writeFrac float64) (*ServeBenchResult, error) {
	const (
		baseImages = 500
		bodyPool   = 64
	)
	db, err := walrus.New(serveBenchOptions())
	if err != nil {
		return nil, err
	}
	pool := shardScalingImages(bodyPool)
	items := make([]walrus.BatchItem, baseImages)
	for i := range items {
		items[i] = walrus.BatchItem{ID: fmt.Sprintf("base-%04d", i), Image: pool[i%bodyPool]}
	}
	if err := db.AddBatch(items, 0); err != nil {
		return nil, err
	}
	bodies := make([][]byte, bodyPool)
	for i, im := range pool {
		var b bytes.Buffer
		if err := imgio.EncodePPM(&b, im); err != nil {
			return nil, err
		}
		bodies[i] = b.Bytes()
	}

	params := walrus.DefaultQueryParams()
	params.Limit = 5
	srv, err := serve.New(serve.Config{
		Backend: db,
		// Admit enough requests at once that concurrent writers actually
		// overlap inside a coalescing window, and queue up to the full
		// client population so a load spike waits instead of shedding;
		// the bench still counts any 429s it takes.
		MaxConcurrentQueries: 64,
		QueueLimit:           clients,
		CoalesceMaxWait:      5 * time.Millisecond,
		DefaultParams:        params,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}}

	type worker struct {
		search, ingest []time.Duration
		errors, shed   int
		writes         int
	}
	v0 := db.Version()
	workers := make([]worker, clients)
	deadline := time.Now().Add(time.Duration(seconds) * time.Second)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			me := &workers[w]
			for seq := 0; time.Now().Before(deadline); seq++ {
				body := bodies[rng.Intn(bodyPool)]
				var (
					resp *http.Response
					err  error
				)
				isWrite := rng.Float64() < writeFrac
				t0 := time.Now()
				if isWrite {
					url := fmt.Sprintf("%s/v1/images?id=c%d-%d", base, w, seq)
					resp, err = client.Post(url, "image/x-portable-pixmap", bytes.NewReader(body))
				} else {
					resp, err = client.Post(base+"/v1/search?k=5", "image/x-portable-pixmap", bytes.NewReader(body))
				}
				elapsed := time.Since(t0)
				if err != nil {
					me.errors++
					continue
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					me.errors++
				}
				if err := resp.Body.Close(); err != nil {
					me.errors++
				}
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					me.shed++
				case resp.StatusCode >= 400:
					me.errors++
				case isWrite:
					me.writes++
					me.ingest = append(me.ingest, elapsed)
				default:
					me.search = append(me.search, elapsed)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &ServeBenchResult{
		Clients:       clients,
		DurationSec:   elapsed.Seconds(),
		WriteFraction: writeFrac,
		BaseImages:    baseImages,
	}
	var search, ingest []time.Duration
	for i := range workers {
		w := &workers[i]
		search = append(search, w.search...)
		ingest = append(ingest, w.ingest...)
		res.Errors += w.errors
		res.Shed += w.shed
		res.Writes += w.writes
	}
	res.Requests = len(search) + len(ingest) + res.Errors + res.Shed
	res.RequestsPerSec = float64(res.Requests) / elapsed.Seconds()
	res.Search = summarizeLatencies(search)
	res.Ingest = summarizeLatencies(ingest)
	res.VersionsPublished = db.Version() - v0
	if res.VersionsPublished > 0 {
		res.WritesPerVersion = float64(res.Writes) / float64(res.VersionsPublished)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		return nil, err
	}
	if err := <-serveErr; err != nil {
		return nil, err
	}
	return res, nil
}

func summarizeLatencies(ds []time.Duration) ServeLatency {
	out := ServeLatency{Count: len(ds)}
	if len(ds) == 0 {
		return out
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(ds)-1))
		return float64(ds[i]) / float64(time.Millisecond)
	}
	out.P50Ms = at(0.50)
	out.P90Ms = at(0.90)
	out.P99Ms = at(0.99)
	return out
}

// PrintServeBench renders the result as a small report.
func PrintServeBench(w io.Writer, r *ServeBenchResult) {
	fmt.Fprintf(w, "clients=%d duration=%.1fs write-fraction=%.2f base-images=%d\n",
		r.Clients, r.DurationSec, r.WriteFraction, r.BaseImages)
	fmt.Fprintf(w, "requests=%d (%.0f/s)  errors=%d  shed(429)=%d\n",
		r.Requests, r.RequestsPerSec, r.Errors, r.Shed)
	fmt.Fprintf(w, "search  n=%-7d p50=%.2fms p90=%.2fms p99=%.2fms\n",
		r.Search.Count, r.Search.P50Ms, r.Search.P90Ms, r.Search.P99Ms)
	fmt.Fprintf(w, "ingest  n=%-7d p50=%.2fms p90=%.2fms p99=%.2fms\n",
		r.Ingest.Count, r.Ingest.P50Ms, r.Ingest.P90Ms, r.Ingest.P99Ms)
	fmt.Fprintf(w, "writes=%d across %d published versions (%.1f writes/version coalesced)\n",
		r.Writes, r.VersionsPublished, r.WritesPerVersion)
}
