package experiments

import (
	"fmt"
	"io"

	"walrus"
	"walrus/internal/dataset"
)

// EpsilonRow reports retrieval quality and work at one querying epsilon.
type EpsilonRow struct {
	Epsilon       float64
	MeanPrecision float64
	// AvgRegions and AvgImages are the Table 1 selectivity quantities
	// averaged over the query set.
	AvgRegions float64
	AvgImages  float64
}

// EpsilonSweep studies the quality/selectivity trade of the querying
// epsilon (Definition 4.1), which the paper only examines on the cost side
// (Table 1): for each ε it measures mean precision@k over queries from
// every category alongside the average index selectivity. Small ε starves
// recall; large ε floods the matcher with unrelated candidates.
func EpsilonSweep(db *walrus.DB, ds *dataset.Dataset, queriesPerCategory, k int, epsilons []float64) ([]EpsilonRow, error) {
	var queries []dataset.Item
	for _, cat := range dataset.Categories() {
		items := ds.ByCategory(cat)
		for i := 0; i < queriesPerCategory && i < len(items); i++ {
			queries = append(queries, items[i])
		}
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("experiments: dataset has no queries")
	}
	var rows []EpsilonRow
	for _, eps := range epsilons {
		p := walrus.DefaultQueryParams()
		p.Epsilon = eps
		p.Limit = k + 1
		row := EpsilonRow{Epsilon: eps}
		for _, q := range queries {
			matches, stats, err := db.Query(q.Image, p)
			if err != nil {
				return nil, err
			}
			related, total := 0, 0
			for _, m := range matches {
				if m.ID == q.ID {
					continue
				}
				total++
				if total > k {
					break
				}
				if dataset.CategoryOf(m.ID) == q.Category {
					related++
				}
			}
			if total > k {
				total = k
			}
			if total > 0 {
				row.MeanPrecision += float64(related) / float64(total)
			}
			row.AvgRegions += stats.AvgRegionsPerQueryRegion()
			row.AvgImages += float64(stats.CandidateImages)
		}
		n := float64(len(queries))
		row.MeanPrecision /= n
		row.AvgRegions /= n
		row.AvgImages /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintEpsilonSweep renders the sweep.
func PrintEpsilonSweep(w io.Writer, k int, rows []EpsilonRow) {
	fmt.Fprintf(w, "Querying-epsilon sweep: precision@%d vs selectivity\n", k)
	fmt.Fprintf(w, "%-10s %16s %16s %14s\n", "epsilon", "mean precision", "regions/query", "images/query")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10.3f %16.3f %16.1f %14.1f\n", r.Epsilon, r.MeanPrecision, r.AvgRegions, r.AvgImages)
	}
}
