package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"walrus"
	"walrus/internal/dataset"
	"walrus/internal/obs"
)

// SnapshotChurnResult measures what catalog churn costs the read path
// under snapshot isolation: query latency percentiles over an idle index
// versus the same queries while AddBatch/Remove cycles publish fresh
// versions between every probe. With copy-on-write publication a reader
// never waits on a writer, so the contended percentiles should track the
// idle ones; the ratios make the claim checkable.
type SnapshotChurnResult struct {
	Images          int     `json:"images"`
	QueriesPerPhase int     `json:"queries_per_phase"`
	ChurnBatch      int     `json:"churn_batch_images"`
	VersionStart    uint64  `json:"version_start"`
	VersionEnd      uint64  `json:"version_end"`
	Publishes       uint64  `json:"publishes_total"`
	IdleP50Ns       float64 `json:"idle_p50_ns"`
	IdleP99Ns       float64 `json:"idle_p99_ns"`
	ContendedP50Ns  float64 `json:"contended_p50_ns"`
	ContendedP99Ns  float64 `json:"contended_p99_ns"`
	P50Ratio        float64 `json:"contended_over_idle_p50"`
	P99Ratio        float64 `json:"contended_over_idle_p99"`
	PinnedVersion   uint64  `json:"pinned_snapshot_version"`
	PinnedLenStable bool    `json:"pinned_snapshot_len_stable"`
	ActiveAtEnd     int64   `json:"snapshots_active_at_end"`
}

// SnapshotChurn builds an in-memory index over `images` dataset items,
// times `queries` sequential probes against the quiescent index, then
// repeats the workload while a churn writer publishes a fresh catalog
// version between every timed query (AddBatch of `churn` new images plus
// removal of the previous cycle's batch, keeping the live set constant).
//
// The churn runs interleaved on the measuring goroutine rather than in a
// sibling goroutine: on a single-CPU host a concurrent writer would
// timeshare the core and the comparison would measure the scheduler, not
// the snapshot layer. Interleaving still exercises everything snapshot
// isolation claims to make cheap — every timed query acquires a brand-new
// version, the copy-on-write clones and epoch reclamation of the
// superseded state happen while the reader runs, and a long-lived pinned
// snapshot held across the whole contended phase checks that old readers
// neither block writers nor observe churn.
func SnapshotChurn(ds *dataset.Dataset, opts walrus.Options, images, queries, churn int) (SnapshotChurnResult, error) {
	if len(ds.Items) == 0 {
		return SnapshotChurnResult{}, fmt.Errorf("experiments: empty dataset")
	}
	if images > len(ds.Items) {
		images = len(ds.Items)
	}
	opts.Parallelism = 1 // serial: measure the snapshot layer, not the pool
	db, err := walrus.New(opts)
	if err != nil {
		return SnapshotChurnResult{}, err
	}
	items := make([]walrus.BatchItem, images)
	for i := 0; i < images; i++ {
		items[i] = walrus.BatchItem{ID: ds.Items[i].ID, Image: ds.Items[i].Image}
	}
	reg := obs.NewRegistry()
	db.SetMetrics(reg)
	if err := db.AddBatch(items, 0); err != nil {
		return SnapshotChurnResult{}, err
	}

	params := walrus.DefaultQueryParams()
	params.Parallelism = 1
	q := ds.Items[0].Image
	probe := func() (time.Duration, error) {
		start := time.Now()
		_, _, err := db.Query(q, params)
		return time.Since(start), err
	}
	for i := 0; i < 5; i++ { // warm-up, discarded
		if _, err := probe(); err != nil {
			return SnapshotChurnResult{}, err
		}
	}

	res := SnapshotChurnResult{
		Images:          images,
		QueriesPerPhase: queries,
		ChurnBatch:      churn,
		VersionStart:    db.Version(),
	}

	idle := make([]time.Duration, 0, queries)
	for i := 0; i < queries; i++ {
		d, err := probe()
		if err != nil {
			return SnapshotChurnResult{}, err
		}
		idle = append(idle, d)
	}

	// A reader pinned before the churn starts must see the same catalog
	// after every cycle has been published over it.
	pinned, err := db.Snapshot()
	if err != nil {
		return SnapshotChurnResult{}, err
	}
	res.PinnedVersion = pinned.Version()
	pinnedLen := pinned.Len()

	var prev []string
	cycle := 0
	churnOnce := func() error {
		batch := make([]walrus.BatchItem, churn)
		ids := make([]string, churn)
		for j := 0; j < churn; j++ {
			src := ds.Items[(cycle*churn+j)%len(ds.Items)]
			ids[j] = fmt.Sprintf("churn-%d-%d", cycle, j)
			batch[j] = walrus.BatchItem{ID: ids[j], Image: src.Image}
		}
		cycle++
		if err := db.AddBatch(batch, 0); err != nil {
			return err
		}
		for _, id := range prev {
			if _, err := db.Remove(id); err != nil {
				return err
			}
		}
		prev = ids
		return nil
	}

	contended := make([]time.Duration, 0, queries)
	for i := 0; i < queries; i++ {
		if err := churnOnce(); err != nil {
			return SnapshotChurnResult{}, err
		}
		d, err := probe()
		if err != nil {
			return SnapshotChurnResult{}, err
		}
		contended = append(contended, d)
	}
	res.PinnedLenStable = pinned.Len() == pinnedLen && pinned.Version() == res.PinnedVersion
	pinned.Release()

	res.VersionEnd = db.Version()
	snap := reg.Snapshot()
	res.Publishes = snap.Counters["walrus_publishes_total"]
	res.ActiveAtEnd = snap.Gauges["walrus_snapshots_active"]
	res.IdleP50Ns = percentileNs(idle, 0.50)
	res.IdleP99Ns = percentileNs(idle, 0.99)
	res.ContendedP50Ns = percentileNs(contended, 0.50)
	res.ContendedP99Ns = percentileNs(contended, 0.99)
	if res.IdleP50Ns > 0 {
		res.P50Ratio = res.ContendedP50Ns / res.IdleP50Ns
	}
	if res.IdleP99Ns > 0 {
		res.P99Ratio = res.ContendedP99Ns / res.IdleP99Ns
	}
	return res, nil
}

// percentileNs returns the p-th percentile (0..1, nearest-rank) of the
// sample in nanoseconds.
func percentileNs(sample []time.Duration, p float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(sample))
	copy(sorted, sample)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted)-1) + 0.5)
	return float64(sorted[idx].Nanoseconds())
}

// PrintSnapshotChurn renders the reader/writer mix measurement.
func PrintSnapshotChurn(w io.Writer, r SnapshotChurnResult) {
	fmt.Fprintf(w, "Snapshot isolation under churn (%d images, %d queries/phase, %d-image churn batch/query)\n",
		r.Images, r.QueriesPerPhase, r.ChurnBatch)
	fmt.Fprintf(w, "catalog versions %d -> %d (%d publishes)\n", r.VersionStart, r.VersionEnd, r.Publishes)
	fmt.Fprintf(w, "%-26s p50 %10.0f ns   p99 %10.0f ns\n", "idle index", r.IdleP50Ns, r.IdleP99Ns)
	fmt.Fprintf(w, "%-26s p50 %10.0f ns   p99 %10.0f ns\n", "churning index", r.ContendedP50Ns, r.ContendedP99Ns)
	fmt.Fprintf(w, "contended/idle ratio: p50 %.3fx, p99 %.3fx\n", r.P50Ratio, r.P99Ratio)
	fmt.Fprintf(w, "pinned snapshot v%d stable across churn: %v; active snapshots at end: %d\n",
		r.PinnedVersion, r.PinnedLenStable, r.ActiveAtEnd)
}
