package experiments

import (
	"bytes"
	"strings"
	"testing"

	"walrus/internal/dataset"
)

func TestSnapshotChurn(t *testing.T) {
	ds := smallDataset(t, 6, dataset.Flowers, dataset.Ocean)
	cfg := smallConfig()
	res, err := SnapshotChurn(ds, cfg.Options, 6, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Images != 6 || res.QueriesPerPhase != 8 || res.ChurnBatch != 2 {
		t.Fatalf("workload shape not echoed: %+v", res)
	}
	if res.IdleP50Ns <= 0 || res.ContendedP50Ns <= 0 || res.P50Ratio <= 0 {
		t.Fatalf("missing percentiles: %+v", res)
	}
	// Every contended query is preceded by one churn publish (AddBatch)
	// plus removals; the version must have advanced at least once per
	// timed query and the publish counter must agree with the delta.
	if res.VersionEnd < res.VersionStart+uint64(res.QueriesPerPhase) {
		t.Fatalf("version advanced %d -> %d, want at least %d steps",
			res.VersionStart, res.VersionEnd, res.QueriesPerPhase)
	}
	if res.Publishes == 0 {
		t.Fatal("publish counter never incremented")
	}
	if !res.PinnedLenStable {
		t.Fatal("pinned snapshot drifted while the catalog churned")
	}
	if res.ActiveAtEnd != 0 {
		t.Fatalf("snapshot leak: %d still active", res.ActiveAtEnd)
	}
	var buf bytes.Buffer
	PrintSnapshotChurn(&buf, res)
	for _, want := range []string{"contended/idle ratio", "pinned snapshot"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("printout missing %q:\n%s", want, buf.String())
		}
	}
}
