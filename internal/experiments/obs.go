package experiments

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"walrus"
	"walrus/internal/dataset"
	"walrus/internal/obs"
)

// ObsOverheadResult measures what the observability layer costs on the
// query hot path of a disk-backed index. Baseline and enabled timings are
// the best-of-rounds mean per query with the registry detached (the nil
// fast path) and attached; NilOverheadPct bounds the cost of the disabled
// instrumentation by microbenchmarking the nil-path operations a query
// actually executes (counted from the enabled run's own metrics) rather
// than by differencing two noisy wall-clock runs.
type ObsOverheadResult struct {
	Images          int     `json:"images"`
	QueriesPerRound int     `json:"queries_per_round"`
	Rounds          int     `json:"rounds"`
	BaselineNsOp    float64 `json:"baseline_ns_per_query"`
	EnabledNsOp     float64 `json:"enabled_ns_per_query"`
	EnabledPct      float64 `json:"enabled_overhead_pct"`
	NilOpsPerQuery  float64 `json:"nil_ops_per_query"`
	NilOpNs         float64 `json:"nil_op_ns"`
	NilPct          float64 `json:"nil_overhead_pct"`
	MetricsExposed  int     `json:"metrics_exposed"`
	PrometheusValid bool    `json:"prometheus_valid"`
}

// ObsOverhead builds a disk-backed index over up to images dataset items
// (so the query path exercises the buffer pool and pager, not just the
// in-memory tree), then times the same serial query workload with the
// registry detached and attached, alternating modes across rounds and
// keeping each mode's best round. It also validates the Prometheus
// exposition of the enabled run's registry.
//
// A non-nil reg is used as the enabled run's registry — walrus-bench
// passes its -obs-addr registry here so a live scrape during the
// experiment sees the full metric namespace; nil uses a private one.
func ObsOverhead(ds *dataset.Dataset, opts walrus.Options, images, queries, rounds int, reg *obs.Registry) (ObsOverheadResult, error) {
	if len(ds.Items) == 0 {
		return ObsOverheadResult{}, fmt.Errorf("experiments: empty dataset")
	}
	if images > len(ds.Items) {
		images = len(ds.Items)
	}
	items := make([]walrus.BatchItem, images)
	for i := 0; i < images; i++ {
		items[i] = walrus.BatchItem{ID: ds.Items[i].ID, Image: ds.Items[i].Image}
	}
	base, err := os.MkdirTemp("", "walrus-obs")
	if err != nil {
		return ObsOverheadResult{}, err
	}
	defer os.RemoveAll(base)
	db, err := walrus.Create(filepath.Join(base, "idx"), opts)
	if err != nil {
		return ObsOverheadResult{}, err
	}
	defer db.Close()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// Ingest with the registry attached so the write-path metrics (WAL
	// appends/fsyncs/commits, pager writes) are populated for scrapes.
	db.SetMetrics(reg)
	if err := db.AddBatch(items, 0); err != nil {
		return ObsOverheadResult{}, err
	}
	db.SetMetrics(nil)

	params := walrus.DefaultQueryParams()
	params.Parallelism = 1 // serial: measure the hot path, not the scheduler
	q := ds.Items[0].Image
	run := func() (time.Duration, error) {
		start := time.Now()
		for i := 0; i < queries; i++ {
			if _, _, err := db.Query(q, params); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	if _, err := run(); err != nil { // warm-up, discarded
		return ObsOverheadResult{}, err
	}

	best := map[bool]time.Duration{}
	for r := 0; r < rounds; r++ {
		for _, enabled := range []bool{false, true} {
			if enabled {
				db.SetMetrics(reg)
			} else {
				db.SetMetrics(nil)
			}
			d, err := run()
			if err != nil {
				return ObsOverheadResult{}, err
			}
			if cur, ok := best[enabled]; !ok || d < cur {
				best[enabled] = d
			}
		}
	}
	db.SetMetrics(nil)

	snap := reg.Snapshot()
	enabledQueries := snap.Counters["walrus_query_total"]
	if enabledQueries == 0 {
		return ObsOverheadResult{}, fmt.Errorf("experiments: enabled run published no queries")
	}
	// The nil fast path executes one no-op per instrumentation site a real
	// query hits; count those sites from what the enabled run recorded.
	nilOps := float64(snap.Counters["walrus_rstar_searches_total"]+
		snap.Counters["walrus_bufpool_hits_total"]+
		snap.Counters["walrus_bufpool_misses_total"]+
		snap.Counters["walrus_pool_tasks_total"]) / float64(enabledQueries)
	nilOps += 8 // DB-level load + the per-query counter/histogram handles

	res := ObsOverheadResult{
		Images:          images,
		QueriesPerRound: queries,
		Rounds:          rounds,
		BaselineNsOp:    float64(best[false].Nanoseconds()) / float64(queries),
		EnabledNsOp:     float64(best[true].Nanoseconds()) / float64(queries),
		NilOpsPerQuery:  nilOps,
		NilOpNs:         nilOpCost(),
		MetricsExposed:  len(snap.Counters) + len(snap.Gauges) + len(snap.Histograms),
	}
	res.EnabledPct = (res.EnabledNsOp - res.BaselineNsOp) / res.BaselineNsOp * 100
	res.NilPct = res.NilOpsPerQuery * res.NilOpNs / res.BaselineNsOp * 100

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	res.PrometheusValid = obs.ValidatePrometheus(buf.Bytes()) == nil
	return res, nil
}

// nilOpCost measures the per-call cost of the nil fast path: a counter
// increment and a histogram observation on nil handles, the exact
// operations instrumented code runs when no registry is attached.
func nilOpCost() float64 {
	const iters = 1 << 20
	var c *obs.Counter
	var h *obs.Histogram
	start := time.Now()
	for i := 0; i < iters; i++ {
		c.Inc()
		h.Observe(0)
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

// PrintObsOverhead renders the observability overhead measurement.
func PrintObsOverhead(w io.Writer, r ObsOverheadResult) {
	fmt.Fprintf(w, "Observability overhead (%d images, %d serial queries x %d rounds, best round per mode)\n",
		r.Images, r.QueriesPerRound, r.Rounds)
	fmt.Fprintf(w, "%-34s %12.0f ns/query\n", "registry detached (nil fast path)", r.BaselineNsOp)
	fmt.Fprintf(w, "%-34s %12.0f ns/query (%+.2f%%)\n", "registry attached", r.EnabledNsOp, r.EnabledPct)
	fmt.Fprintf(w, "nil-path cost: %.1f no-op sites/query x %.2f ns = %.4f%% of query time\n",
		r.NilOpsPerQuery, r.NilOpNs, r.NilPct)
	fmt.Fprintf(w, "metrics exposed: %d; prometheus exposition valid: %v\n", r.MetricsExposed, r.PrometheusValid)
}
