package birch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sse computes the sum of squared distances from points to their cluster
// centroids — the quantity refinement must not increase.
func sse(points [][]float64, clusters []Cluster) float64 {
	total := 0.0
	for _, c := range clusters {
		for _, m := range c.Members {
			for j := range points[m] {
				d := points[m][j] - c.Centroid[j]
				total += d * d
			}
		}
	}
	return total
}

func TestRefineClustersImprovesSSE(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	centers := [][]float64{{0, 0}, {3, 0}, {0, 3}}
	points, _ := gaussianBlobs(rng, centers, 60, 0.4)
	// Shuffle so the CF-tree sees an adversarial order.
	rng.Shuffle(len(points), func(i, j int) { points[i], points[j] = points[j], points[i] })
	clusters, err := ClusterPoints(points, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := sse(points, clusters)
	refined := RefineClusters(points, clusters, 10)
	after := sse(points, refined)
	if after > before+1e-9 {
		t.Fatalf("refinement increased SSE: %v -> %v", before, after)
	}
	// Membership is a partition of the points.
	var all []int
	for _, c := range refined {
		all = append(all, c.Members...)
		if len(c.Members) != c.CF.N {
			t.Fatalf("member count %d != CF.N %d", len(c.Members), c.CF.N)
		}
		for _, m := range c.Members {
			for j := range points[m] {
				if points[m][j] < c.Min[j]-1e-12 || points[m][j] > c.Max[j]+1e-12 {
					t.Fatal("member escapes bbox after refinement")
				}
			}
		}
	}
	sort.Ints(all)
	if len(all) != len(points) {
		t.Fatalf("refined clusters hold %d of %d points", len(all), len(points))
	}
	for i, v := range all {
		if v != i {
			t.Fatalf("duplicate or missing member at %d: %v", i, v)
		}
	}
}

func TestRefineClustersConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	points := make([][]float64, 100)
	for i := range points {
		points[i] = []float64{rng.Float64()}
	}
	clusters, err := ClusterPoints(points, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := RefineClusters(points, clusters, 50)
	b := RefineClusters(points, a, 1)
	// A converged refinement is a fixed point.
	if math.Abs(sse(points, a)-sse(points, b)) > 1e-12 {
		t.Fatalf("refinement not converged: %v vs %v", sse(points, a), sse(points, b))
	}
}

func TestRefineClustersDegenerate(t *testing.T) {
	if got := RefineClusters(nil, nil, 3); got != nil {
		t.Fatal("nil input")
	}
	points := [][]float64{{1}, {2}}
	clusters, err := ClusterPoints(points, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("%d clusters", len(clusters))
	}
	// Single cluster: unchanged.
	got := RefineClusters(points, clusters, 3)
	if len(got) != 1 || got[0].CF.N != 2 {
		t.Fatalf("single-cluster refinement changed: %+v", got)
	}
	// Zero iterations: unchanged.
	if got := RefineClusters(points, clusters, 0); len(got) != 1 {
		t.Fatal("0 iterations changed clusters")
	}
}
