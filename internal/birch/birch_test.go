package birch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

// TestCFAdditivity: merging CFs equals building one CF from all points, and
// the leaf-entry bounding boxes combine the same way.
func TestCFAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(6)
		na, nb := 1+rng.Intn(10), 1+rng.Intn(10)
		a, b, all := NewCF(dim), NewCF(dim), NewCF(dim)
		for i := 0; i < na+nb; i++ {
			p := make([]float64, dim)
			for j := range p {
				p[j] = rng.NormFloat64()
			}
			if i < na {
				a.Add(p)
			} else {
				b.Add(p)
			}
			all.Add(p)
		}
		a.Merge(&b)
		if a.N != all.N || !almostEqual(a.SS, all.SS) {
			return false
		}
		for i := range a.LS {
			if !almostEqual(a.LS[i], all.LS[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCFRadiusMatchesBruteForce: the CF radius equals the RMS distance of
// the points from their centroid.
func TestCFRadiusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const dim, n = 4, 100
	cf := NewCF(dim)
	points := make([][]float64, n)
	for i := range points {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64() * 10
		}
		points[i] = p
		cf.Add(p)
	}
	c := cf.Centroid()
	var sum float64
	for _, p := range points {
		for j := range p {
			d := p[j] - c[j]
			sum += d * d
		}
	}
	want := math.Sqrt(sum / n)
	if !almostEqual(cf.Radius(), want) {
		t.Fatalf("Radius = %v, brute force %v", cf.Radius(), want)
	}
}

func TestCFEmpty(t *testing.T) {
	cf := NewCF(3)
	if cf.Radius() != 0 {
		t.Error("empty CF radius nonzero")
	}
	c := cf.Centroid()
	for _, v := range c {
		if v != 0 {
			t.Error("empty CF centroid nonzero")
		}
	}
}

func TestMergedRadiusMatchesActualMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	a, b := NewCF(3), NewCF(3)
	for i := 0; i < 20; i++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if i%2 == 0 {
			a.Add(p)
		} else {
			b.Add(p)
		}
	}
	predicted := mergedRadius(&a, &b)
	a.Merge(&b)
	if !almostEqual(predicted, a.Radius()) {
		t.Fatalf("mergedRadius = %v, actual %v", predicted, a.Radius())
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Threshold: -1, Branching: 4, LeafSize: 4, Dim: 2},
		{Threshold: 1, Branching: 1, LeafSize: 4, Dim: 2},
		{Threshold: 1, Branching: 4, LeafSize: 0, Dim: 2},
		{Threshold: 1, Branching: 4, LeafSize: 4, Dim: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", p)
		}
	}
	if _, err := NewTree(bad[0]); err == nil {
		t.Error("NewTree accepted invalid params")
	}
}

func TestInsertDimensionMismatch(t *testing.T) {
	tr, err := NewTree(DefaultParams(3, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]float64{1, 2}, 0); err == nil {
		t.Error("Insert accepted wrong dimension")
	}
}

// gaussianBlobs generates n points around each of the given centers.
func gaussianBlobs(rng *rand.Rand, centers [][]float64, n int, sigma float64) ([][]float64, []int) {
	var points [][]float64
	var labels []int
	for ci, c := range centers {
		for i := 0; i < n; i++ {
			p := make([]float64, len(c))
			for j := range p {
				p[j] = c[j] + rng.NormFloat64()*sigma
			}
			points = append(points, p)
			labels = append(labels, ci)
		}
	}
	return points, labels
}

// TestClusterRecoversBlobs: well-separated blobs come out as exactly one
// cluster each, with the right members.
func TestClusterRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	points, labels := gaussianBlobs(rng, centers, 50, 0.2)
	clusters, err := ClusterPoints(points, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != len(centers) {
		t.Fatalf("got %d clusters, want %d", len(clusters), len(centers))
	}
	// Every cluster must be label-pure and every point assigned exactly once.
	seen := make(map[int]bool)
	for _, c := range clusters {
		label := labels[c.Members[0]]
		for _, m := range c.Members {
			if labels[m] != label {
				t.Fatalf("cluster mixes labels %d and %d", label, labels[m])
			}
			if seen[m] {
				t.Fatalf("point %d assigned twice", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != len(points) {
		t.Fatalf("%d of %d points assigned", len(seen), len(points))
	}
}

// TestRadiusThresholdInvariant: after insertion, every cluster radius is at
// most the threshold (each absorption is guarded by the merged-radius
// test, and singleton entries have radius 0).
func TestRadiusThresholdInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const threshold = 0.3
		tr, err := NewTree(DefaultParams(3, threshold))
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			if err := tr.Insert(p, i); err != nil {
				return false
			}
		}
		for _, c := range tr.Clusters() {
			if c.CF.Radius() > threshold+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestTreeStructuralInvariants: node occupancy limits hold and all points
// are present exactly once.
func TestTreeStructuralInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	params := Params{Threshold: 0.05, Branching: 4, LeafSize: 3, Dim: 2}
	tr, err := NewTree(params)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Insert([]float64{rng.Float64(), rng.Float64()}, i); err != nil {
			t.Fatal(err)
		}
	}
	var checkNode func(nd *node) (CF, int)
	checkNode = func(nd *node) (CF, int) {
		sum := NewCF(params.Dim)
		count := 0
		if nd.leaf {
			if len(nd.entries) > params.LeafSize {
				t.Fatalf("leaf has %d entries, max %d", len(nd.entries), params.LeafSize)
			}
			for _, e := range nd.entries {
				if e.child != nil {
					t.Fatal("leaf entry has a child")
				}
				if len(e.members) != e.cf.N {
					t.Fatalf("entry members %d != CF.N %d", len(e.members), e.cf.N)
				}
				sum.Merge(&e.cf)
				count += e.cf.N
			}
			return sum, count
		}
		if len(nd.entries) > params.Branching {
			t.Fatalf("nonleaf has %d entries, max %d", len(nd.entries), params.Branching)
		}
		for _, e := range nd.entries {
			childCF, childCount := checkNode(e.child)
			if childCF.N != e.cf.N || !almostEqual(childCF.SS, e.cf.SS) {
				t.Fatalf("summary CF stale: child N=%d SS=%v, entry N=%d SS=%v",
					childCF.N, childCF.SS, e.cf.N, e.cf.SS)
			}
			sum.Merge(&childCF)
			count += childCount
		}
		return sum, count
	}
	_, count := checkNode(tr.root)
	if count != n {
		t.Fatalf("tree holds %d points, want %d", count, n)
	}
	if tr.NumPoints() != n {
		t.Fatalf("NumPoints = %d, want %d", tr.NumPoints(), n)
	}
}

// TestClusterBoundingBoxContainsMembers: the tracked min/max really bound
// all member points.
func TestClusterBoundingBoxContainsMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	points := make([][]float64, 300)
	for i := range points {
		points[i] = []float64{rng.Float64(), rng.Float64()}
	}
	clusters, err := ClusterPoints(points, 0.15, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range clusters {
		for _, m := range c.Members {
			for j, v := range points[m] {
				if v < c.Min[j]-1e-12 || v > c.Max[j]+1e-12 {
					t.Fatalf("member %d outside bbox on dim %d", m, j)
				}
			}
		}
	}
}

// TestRebuildReducesClusters: a larger threshold yields at most as many
// clusters, still covering every point.
func TestRebuildReducesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	tr, err := NewTree(DefaultParams(2, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		if err := tr.Insert([]float64{rng.Float64(), rng.Float64()}, i); err != nil {
			t.Fatal(err)
		}
	}
	before := tr.NumClusters()
	nt, err := tr.Rebuild(0.3)
	if err != nil {
		t.Fatal(err)
	}
	after := nt.NumClusters()
	if after > before {
		t.Fatalf("rebuild increased clusters: %d -> %d", before, after)
	}
	total := 0
	var all []int
	for _, c := range nt.Clusters() {
		total += len(c.Members)
		all = append(all, c.Members...)
	}
	if total != n {
		t.Fatalf("rebuild lost points: %d of %d", total, n)
	}
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("member ids damaged at %d: %d", i, v)
		}
	}
	if _, err := tr.Rebuild(0.001); err == nil {
		t.Error("Rebuild accepted smaller threshold")
	}
}

// TestClusterPointsMaxClusters: the rebuild loop enforces the cap.
func TestClusterPointsMaxClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	points := make([][]float64, 500)
	for i := range points {
		points[i] = []float64{rng.Float64() * 5, rng.Float64() * 5}
	}
	clusters, err := ClusterPoints(points, 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) > 10 {
		t.Fatalf("got %d clusters, cap 10", len(clusters))
	}
}

func TestClusterPointsEmpty(t *testing.T) {
	clusters, err := ClusterPoints(nil, 0.1, 0)
	if err != nil || clusters != nil {
		t.Fatalf("ClusterPoints(nil) = %v, %v", clusters, err)
	}
}

// TestThresholdMonotonicity: larger thresholds never yield more clusters
// on the same data in the same order.
func TestThresholdMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	points := make([][]float64, 300)
	for i := range points {
		points[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	prev := -1
	for _, th := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
		clusters, err := ClusterPoints(points, th, 0)
		if err != nil {
			t.Fatal(err)
		}
		// BIRCH is order-sensitive, so strict monotonicity is not
		// guaranteed; allow slack but catch gross violations.
		if prev >= 0 && len(clusters) > prev+prev/4+1 {
			t.Fatalf("threshold %v produced %d clusters, previous smaller threshold produced %d", th, len(clusters), prev)
		}
		prev = len(clusters)
	}
}
