package birch

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchPoints(n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(4))
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		out[i] = p
	}
	return out
}

func BenchmarkClusterPoints(b *testing.B) {
	for _, n := range []int{200, 2000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			points := benchPoints(n, 12)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ClusterPoints(points, 0.05, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRefineClusters(b *testing.B) {
	points := benchPoints(2000, 12)
	clusters, err := ClusterPoints(points, 0.05, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RefineClusters(points, clusters, 3)
	}
}
