package birch

import (
	"math/rand"
	"sort"
	"testing"
)

func TestMergeClustersRepairsSplitBlob(t *testing.T) {
	// Two tight sub-clusters of one blob, artificially split.
	rng := rand.New(rand.NewSource(59))
	mk := func(cx, cy float64, ids []int) Cluster {
		cf := NewCF(2)
		min := []float64{cx, cy}
		max := []float64{cx, cy}
		for range ids {
			p := []float64{cx + rng.NormFloat64()*0.01, cy + rng.NormFloat64()*0.01}
			cf.Add(p)
			for j := range p {
				if p[j] < min[j] {
					min[j] = p[j]
				}
				if p[j] > max[j] {
					max[j] = p[j]
				}
			}
		}
		return Cluster{CF: cf, Members: ids, Centroid: cf.Centroid(), Min: min, Max: max}
	}
	clusters := []Cluster{
		mk(0.50, 0.50, []int{0, 1, 2}),
		mk(0.52, 0.50, []int{3, 4}),
		mk(5.0, 5.0, []int{5, 6}), // far away: must survive
	}
	merged := MergeClusters(clusters, 0.1)
	if len(merged) != 2 {
		t.Fatalf("got %d clusters, want 2", len(merged))
	}
	// All members preserved exactly once.
	var all []int
	for _, c := range merged {
		all = append(all, c.Members...)
		if c.CF.Radius() > 0.1+1e-9 {
			t.Fatalf("merged cluster radius %v exceeds threshold", c.CF.Radius())
		}
		if len(c.Members) != c.CF.N {
			t.Fatalf("member count %d != CF.N %d", len(c.Members), c.CF.N)
		}
	}
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("members damaged: %v", all)
		}
	}
}

func TestMergeClustersNoOpWhenSeparated(t *testing.T) {
	mk := func(x float64, id int) Cluster {
		cf := NewCF(1)
		cf.Add([]float64{x})
		return Cluster{CF: cf, Members: []int{id}, Centroid: []float64{x}, Min: []float64{x}, Max: []float64{x}}
	}
	clusters := []Cluster{mk(0, 0), mk(10, 1), mk(20, 2)}
	merged := MergeClusters(clusters, 0.5)
	if len(merged) != 3 {
		t.Fatalf("separated clusters merged: %d", len(merged))
	}
	// The input must not be mutated.
	if clusters[0].CF.N != 1 {
		t.Fatal("input mutated")
	}
}

func TestMergeClustersHugeThresholdCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	var clusters []Cluster
	for i := 0; i < 10; i++ {
		cf := NewCF(3)
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		cf.Add(p)
		clusters = append(clusters, Cluster{
			CF: cf, Members: []int{i}, Centroid: p,
			Min: append([]float64(nil), p...), Max: append([]float64(nil), p...),
		})
	}
	merged := MergeClusters(clusters, 1e6)
	if len(merged) != 1 {
		t.Fatalf("got %d clusters under huge threshold", len(merged))
	}
	if merged[0].CF.N != 10 || len(merged[0].Members) != 10 {
		t.Fatalf("collapsed cluster incomplete: %+v", merged[0].CF)
	}
	// Bounding box covers all points.
	for i := range merged[0].Min {
		if merged[0].Min[i] > merged[0].Max[i] {
			t.Fatal("degenerate bbox")
		}
	}
}

func TestMergeClustersEmptyAndSingle(t *testing.T) {
	if got := MergeClusters(nil, 1); len(got) != 0 {
		t.Fatal("nil input")
	}
	cf := NewCF(1)
	cf.Add([]float64{1})
	one := []Cluster{{CF: cf, Members: []int{0}, Centroid: []float64{1}, Min: []float64{1}, Max: []float64{1}}}
	if got := MergeClusters(one, 1); len(got) != 1 {
		t.Fatal("single input")
	}
}
