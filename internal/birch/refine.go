//walrus:lint-hot cluster refinement runs per extraction pass
package birch

import "math"

// RefineClusters runs up to iterations rounds of centroid refinement over
// the given clusters (BIRCH's optional phase 4): every point is reassigned
// to its nearest cluster centroid and centroids are recomputed, which
// removes the remaining insertion-order sensitivity of the CF-tree at the
// cost of extra passes over the points. Empty clusters are dropped.
// Refinement stops early when an iteration moves no point.
//
// points[i] must be the point that was inserted with id i; member ids in
// the result index into points.
func RefineClusters(points [][]float64, clusters []Cluster, iterations int) []Cluster {
	if len(clusters) <= 1 || iterations < 1 || len(points) == 0 {
		return clusters
	}
	dim := len(points[0])
	centroids := make([][]float64, len(clusters))
	for i, c := range clusters {
		centroids[i] = append([]float64(nil), c.Centroid...)
	}
	assign := make([]int, len(points))
	// Initial assignment from the cluster membership.
	for ci, c := range clusters {
		for _, m := range c.Members {
			if m >= 0 && m < len(points) {
				assign[m] = ci
			}
		}
	}
	for iter := 0; iter < iterations; iter++ {
		moved := 0
		for pi, p := range points {
			best := assign[pi]
			bestD := math.Inf(1)
			for ci, c := range centroids {
				if c == nil {
					continue
				}
				d := 0.0
				for j := range p {
					diff := p[j] - c[j]
					d += diff * diff
				}
				if d < bestD {
					bestD = d
					best = ci
				}
			}
			if best != assign[pi] {
				assign[pi] = best
				moved++
			}
		}
		// Recompute centroids.
		counts := make([]int, len(centroids))
		sums := make([][]float64, len(centroids))
		for i := range sums {
			sums[i] = make([]float64, dim)
		}
		for pi, p := range points {
			ci := assign[pi]
			counts[ci]++
			for j := range p {
				sums[ci][j] += p[j]
			}
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				centroids[ci] = nil
				continue
			}
			if centroids[ci] == nil {
				centroids[ci] = make([]float64, dim)
			}
			for j := 0; j < dim; j++ {
				centroids[ci][j] = sums[ci][j] / float64(counts[ci])
			}
		}
		if moved == 0 {
			break
		}
	}

	// Rebuild clusters from the final assignment.
	rebuilt := make([]Cluster, 0, len(clusters))
	for ci := range centroids {
		if centroids[ci] == nil {
			continue
		}
		cf := NewCF(dim)
		var members []int
		var min, max []float64
		for pi, p := range points {
			if assign[pi] != ci {
				continue
			}
			cf.Add(p)
			members = append(members, pi)
			if min == nil {
				min = append([]float64(nil), p...)
				max = append([]float64(nil), p...)
				continue
			}
			for j := range p {
				if p[j] < min[j] {
					min[j] = p[j]
				}
				if p[j] > max[j] {
					max[j] = p[j]
				}
			}
		}
		if len(members) == 0 {
			continue
		}
		rebuilt = append(rebuilt, Cluster{
			CF:       cf,
			Members:  members,
			Centroid: cf.Centroid(),
			Min:      min,
			Max:      max,
		})
	}
	return rebuilt
}
