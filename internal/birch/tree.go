package birch

import (
	"fmt"
	"math"
)

// Params configures a CF-tree.
type Params struct {
	// Threshold is εc, the upper bound on the radius of any leaf cluster.
	Threshold float64
	// Branching is B, the maximum number of entries in a nonleaf node.
	Branching int
	// LeafSize is L, the maximum number of entries in a leaf node.
	LeafSize int
	// Dim is the point dimensionality.
	Dim int
}

// DefaultParams returns the branching factors suggested for in-memory use.
func DefaultParams(dim int, threshold float64) Params {
	return Params{Threshold: threshold, Branching: 8, LeafSize: 8, Dim: dim}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.Threshold < 0:
		return fmt.Errorf("birch: negative threshold %v", p.Threshold)
	case p.Branching < 2:
		return fmt.Errorf("birch: branching factor %d < 2", p.Branching)
	case p.LeafSize < 1:
		return fmt.Errorf("birch: leaf size %d < 1", p.LeafSize)
	case p.Dim < 1:
		return fmt.Errorf("birch: dimension %d < 1", p.Dim)
	}
	return nil
}

// entry is one slot in a CF-tree node. Nonleaf entries summarize a child
// node; leaf entries are clusters and carry member ids and the bounding box
// of their member points.
type entry struct {
	cf       CF
	child    *node // nil at leaves
	members  []int
	min, max []float64
}

func (e *entry) absorbPoint(p []float64, id int) {
	e.cf.Add(p)
	e.members = append(e.members, id)
	for i, v := range p {
		if v < e.min[i] {
			e.min[i] = v
		}
		if v > e.max[i] {
			e.max[i] = v
		}
	}
}

func (e *entry) absorbEntry(o *entry) {
	e.cf.Merge(&o.cf)
	e.members = append(e.members, o.members...)
	for i := range e.min {
		if o.min[i] < e.min[i] {
			e.min[i] = o.min[i]
		}
		if o.max[i] > e.max[i] {
			e.max[i] = o.max[i]
		}
	}
}

type node struct {
	leaf    bool
	entries []*entry
}

// Tree is a CF-tree. It is not safe for concurrent mutation.
type Tree struct {
	params Params
	root   *node
	points int
}

// NewTree creates an empty CF-tree.
func NewTree(params Params) (*Tree, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Tree{params: params, root: &node{leaf: true}}, nil
}

// Params returns the tree's configuration.
func (t *Tree) Params() Params { return t.params }

// NumPoints returns the number of points inserted so far.
func (t *Tree) NumPoints() int { return t.points }

// Insert adds one point with an opaque member id.
func (t *Tree) Insert(p []float64, id int) error {
	if len(p) != t.params.Dim {
		return fmt.Errorf("birch: point has dim %d, tree has %d", len(p), t.params.Dim)
	}
	e := t.newLeafEntry(p, id)
	t.insertEntry(e)
	t.points++
	return nil
}

func (t *Tree) newLeafEntry(p []float64, id int) *entry {
	e := &entry{cf: NewCF(t.params.Dim), min: make([]float64, t.params.Dim), max: make([]float64, t.params.Dim)}
	copy(e.min, p)
	copy(e.max, p)
	e.cf.Add(p)
	e.members = []int{id}
	return e
}

// insertEntry pushes a (possibly multi-point) leaf entry down the tree.
func (t *Tree) insertEntry(e *entry) {
	l, r := t.insertInto(t.root, e)
	if l != nil {
		// Root split: grow the tree by one level.
		t.root = &node{leaf: false, entries: []*entry{l, r}}
	}
}

// insertInto inserts e below n. If n splits, the two entries that should
// replace n in its parent are returned; otherwise both are nil.
func (t *Tree) insertInto(n *node, e *entry) (*entry, *entry) {
	if n.leaf {
		// Find the closest leaf entry by centroid distance.
		best := -1
		bestD := math.Inf(1)
		for i, le := range n.entries {
			if d := centroidDist2(&le.cf, &e.cf); d < bestD {
				bestD = d
				best = i
			}
		}
		if best >= 0 && mergedRadius(&n.entries[best].cf, &e.cf) <= t.params.Threshold {
			n.entries[best].absorbEntry(e)
			return nil, nil
		}
		n.entries = append(n.entries, e)
		if len(n.entries) <= t.params.LeafSize {
			return nil, nil
		}
		return t.split(n)
	}
	// Nonleaf: descend into the child whose summary centroid is closest.
	best := 0
	bestD := math.Inf(1)
	for i, ce := range n.entries {
		if d := centroidDist2(&ce.cf, &e.cf); d < bestD {
			bestD = d
			best = i
		}
	}
	chosen := n.entries[best]
	l, r := t.insertInto(chosen.child, e)
	if l == nil {
		// No split below: just refresh the summary CF on the path.
		chosen.cf.Merge(&e.cf)
		return nil, nil
	}
	// Child split: replace the chosen entry with the two split halves.
	n.entries[best] = l
	n.entries = append(n.entries, r)
	if len(n.entries) <= t.params.Branching {
		return nil, nil
	}
	return t.split(n)
}

// split partitions an overflowing node's entries into two nodes, seeding
// with the farthest pair of entry centroids and assigning every other
// entry to the closer seed. It returns the two parent entries summarizing
// the halves.
func (t *Tree) split(n *node) (*entry, *entry) {
	entries := n.entries
	// Farthest pair seeding (O(k²), k is small).
	si, sj := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			if d := centroidDist2(&entries[i].cf, &entries[j].cf); d > worst {
				worst = d
				si, sj = i, j
			}
		}
	}
	left := &node{leaf: n.leaf}
	right := &node{leaf: n.leaf}
	for i, e := range entries {
		switch {
		case i == si:
			left.entries = append(left.entries, e)
		case i == sj:
			right.entries = append(right.entries, e)
		case centroidDist2(&e.cf, &entries[si].cf) <= centroidDist2(&e.cf, &entries[sj].cf):
			left.entries = append(left.entries, e)
		default:
			right.entries = append(right.entries, e)
		}
	}
	return t.summarize(left), t.summarize(right)
}

// summarize builds the parent entry describing node n.
func (t *Tree) summarize(n *node) *entry {
	s := &entry{cf: NewCF(t.params.Dim), child: n}
	for _, e := range n.entries {
		s.cf.Merge(&e.cf)
	}
	return s
}

// Cluster is the final output unit: one leaf entry of the CF-tree.
type Cluster struct {
	CF       CF
	Members  []int     // ids passed to Insert, in insertion order
	Centroid []float64 // CF centroid
	Min, Max []float64 // elementwise bounding box of member points
}

// Clusters returns all leaf entries as clusters. The slice is rebuilt on
// every call; mutating it does not affect the tree.
func (t *Tree) Clusters() []Cluster {
	var out []Cluster
	t.walkLeaves(t.root, func(e *entry) {
		c := Cluster{
			CF:       e.cf.Clone(),
			Members:  append([]int(nil), e.members...),
			Centroid: e.cf.Centroid(),
			Min:      append([]float64(nil), e.min...),
			Max:      append([]float64(nil), e.max...),
		}
		out = append(out, c)
	})
	return out
}

// NumClusters returns the number of leaf entries.
func (t *Tree) NumClusters() int {
	n := 0
	t.walkLeaves(t.root, func(*entry) { n++ })
	return n
}

func (t *Tree) walkLeaves(n *node, fn func(*entry)) {
	if n == nil {
		return
	}
	if n.leaf {
		for _, e := range n.entries {
			fn(e)
		}
		return
	}
	for _, e := range n.entries {
		t.walkLeaves(e.child, fn)
	}
}

// Rebuild constructs a new tree with a larger threshold by reinserting the
// existing leaf entries whole, the mechanism BIRCH uses when a tree
// outgrows memory. newThreshold must be >= the current threshold.
func (t *Tree) Rebuild(newThreshold float64) (*Tree, error) {
	if newThreshold < t.params.Threshold {
		return nil, fmt.Errorf("birch: Rebuild threshold %v below current %v", newThreshold, t.params.Threshold)
	}
	params := t.params
	params.Threshold = newThreshold
	nt, err := NewTree(params)
	if err != nil {
		return nil, err
	}
	t.walkLeaves(t.root, func(e *entry) {
		// Detach the entry from the old tree before reinserting.
		ne := &entry{
			cf:      e.cf.Clone(),
			members: append([]int(nil), e.members...),
			min:     append([]float64(nil), e.min...),
			max:     append([]float64(nil), e.max...),
		}
		nt.insertEntry(ne)
		nt.points += ne.cf.N
	})
	return nt, nil
}

// ClusterPoints is a convenience: it inserts points[i] with id i under the
// given threshold and returns the clusters. If maxClusters > 0 the tree is
// rebuilt with doubled thresholds until at most maxClusters clusters
// remain.
func ClusterPoints(points [][]float64, threshold float64, maxClusters int) ([]Cluster, error) {
	if len(points) == 0 {
		return nil, nil
	}
	t, err := NewTree(DefaultParams(len(points[0]), threshold))
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		if err := t.Insert(p, i); err != nil {
			return nil, err
		}
	}
	if maxClusters > 0 {
		// Doubling the threshold eventually absorbs everything into one
		// cluster, so the loop terminates; the iteration cap is a backstop
		// against pathological float behaviour.
		for iter := 0; t.NumClusters() > maxClusters && iter < 64; iter++ {
			th := t.params.Threshold * 2
			if th <= 0 {
				th = 1e-6
			}
			nt, err := t.Rebuild(th)
			if err != nil {
				return nil, err
			}
			t = nt
		}
	}
	return t.Clusters(), nil
}
