package birch

import "math"

// MergeClusters agglomeratively merges clusters whose union still has
// radius at most threshold. The CF-tree's pre-clustering is sensitive to
// insertion order and can split one natural cluster across several leaf
// entries; this repair pass greedily merges the closest admissible pair
// until no pair qualifies, restoring the radius guarantee the threshold
// expresses. The input slice is not modified; O(k²) per merge for k
// clusters, which is fine for the per-image cluster counts WALRUS sees.
func MergeClusters(clusters []Cluster, threshold float64) []Cluster {
	work := make([]Cluster, len(clusters))
	for i, c := range clusters {
		work[i] = Cluster{
			CF:       c.CF.Clone(),
			Members:  append([]int(nil), c.Members...),
			Centroid: append([]float64(nil), c.Centroid...),
			Min:      append([]float64(nil), c.Min...),
			Max:      append([]float64(nil), c.Max...),
		}
	}
	for len(work) > 1 {
		bestI, bestJ := -1, -1
		bestR := math.Inf(1)
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				r := mergedRadius(&work[i].CF, &work[j].CF)
				if r <= threshold && r < bestR {
					bestR = r
					bestI, bestJ = i, j
				}
			}
		}
		if bestI < 0 {
			break
		}
		a, b := &work[bestI], &work[bestJ]
		a.CF.Merge(&b.CF)
		a.Members = append(a.Members, b.Members...)
		for k := range a.Min {
			if b.Min[k] < a.Min[k] {
				a.Min[k] = b.Min[k]
			}
			if b.Max[k] > a.Max[k] {
				a.Max[k] = b.Max[k]
			}
		}
		a.Centroid = a.CF.Centroid()
		work[bestJ] = work[len(work)-1]
		work = work[:len(work)-1]
	}
	return work
}
