// Package birch implements the pre-clustering phase of the BIRCH
// clustering algorithm (Zhang, Ramakrishnan, Livny, SIGMOD 1996), which
// WALRUS uses to group sliding-window signatures into image regions
// (Section 5.3 of the paper). It builds a CF-tree under a threshold εc on
// the cluster radius in a single linear pass over the points; each leaf
// entry of the tree is one cluster.
//
// Beyond the paper's needs, leaf entries also track the member point ids
// (so WALRUS can build region bitmaps) and the elementwise bounding box of
// member points (so regions can use bounding-box signatures instead of
// centroids, the alternative Section 4 describes).
package birch

import (
	"fmt"
	"math"
)

// CF is a clustering feature: the sufficient statistics (N, LS, SS) of a
// set of points, where LS is the elementwise linear sum and SS the scalar
// sum of squared norms. CFs are additive, which is what makes the CF-tree
// maintainable incrementally.
type CF struct {
	N  int
	LS []float64
	SS float64
}

// NewCF returns an empty CF of the given dimensionality.
func NewCF(dim int) CF { return CF{LS: make([]float64, dim)} }

// Dim returns the dimensionality.
func (cf *CF) Dim() int { return len(cf.LS) }

// Add incorporates a single point.
func (cf *CF) Add(p []float64) {
	cf.N++
	for i, v := range p {
		cf.LS[i] += v
		cf.SS += v * v
	}
}

// Merge incorporates another CF.
func (cf *CF) Merge(o *CF) {
	cf.N += o.N
	for i, v := range o.LS {
		cf.LS[i] += v
	}
	cf.SS += o.SS
}

// Clone returns a deep copy.
func (cf *CF) Clone() CF {
	out := CF{N: cf.N, SS: cf.SS, LS: make([]float64, len(cf.LS))}
	copy(out.LS, cf.LS)
	return out
}

// Centroid returns LS/N, or the zero vector for an empty CF.
func (cf *CF) Centroid() []float64 {
	c := make([]float64, len(cf.LS))
	if cf.N == 0 {
		return c
	}
	for i, v := range cf.LS {
		c[i] = v / float64(cf.N)
	}
	return c
}

// Radius returns the BIRCH radius: the root-mean-square distance of the
// member points from the centroid, sqrt(SS/N - |LS/N|²).
func (cf *CF) Radius() float64 {
	if cf.N == 0 {
		return 0
	}
	n := float64(cf.N)
	var c2 float64
	for _, v := range cf.LS {
		m := v / n
		c2 += m * m
	}
	r2 := cf.SS/n - c2
	if r2 < 0 { // numeric noise
		return 0
	}
	return math.Sqrt(r2)
}

// mergedRadius returns the radius the union of a and b would have, without
// materializing the merge.
func mergedRadius(a, b *CF) float64 {
	n := float64(a.N + b.N)
	if n == 0 {
		return 0
	}
	var c2 float64
	for i := range a.LS {
		m := (a.LS[i] + b.LS[i]) / n
		c2 += m * m
	}
	r2 := (a.SS+b.SS)/n - c2
	if r2 < 0 {
		return 0
	}
	return math.Sqrt(r2)
}

// centroidDist2 returns the squared euclidean distance between the
// centroids of a and b.
func centroidDist2(a, b *CF) float64 {
	na, nb := float64(a.N), float64(b.N)
	if na == 0 || nb == 0 {
		return 0
	}
	var d2 float64
	for i := range a.LS {
		d := a.LS[i]/na - b.LS[i]/nb
		d2 += d * d
	}
	return d2
}

func (cf *CF) String() string {
	return fmt.Sprintf("CF(n=%d, r=%.4f)", cf.N, cf.Radius())
}
