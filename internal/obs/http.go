package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the observability mux:
//
//	/metrics             Prometheus text exposition
//	/debug/vars          expvar-style JSON of every metric
//	/debug/walrus/spans  span-ring JSON
//	/debug/pprof/...     net/http/pprof profiles
//
// The handler only reads the registry, so it is safe to serve while the
// instrumented pipeline runs at full parallelism.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/walrus/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteSpansJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "walrus observability endpoints:\n"+
			"  /metrics\n  /debug/vars\n  /debug/walrus/spans\n  /debug/pprof/\n")
	})
	return mux
}

// Server is a live observability listener started by Serve.
type Server struct {
	// Addr is the bound address (useful when Serve was given ":0").
	Addr string
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when the serve goroutine exits
}

// Serve starts the observability handler on addr in a background
// goroutine. Close the returned server to stop it.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r)}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: srv, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		// Serve returns ErrServerClosed (or a listener error) once Close
		// runs; either way the goroutine is done and there is nobody to
		// hand the error to.
		//walrus:lint-ignore errsink http.Serve error after listener close is expected shutdown noise
		_ = srv.Serve(ln)
	}()
	return s, nil
}

// Close stops the listener and waits for the serve goroutine to exit,
// so a caller that closes and re-binds the same address never races the
// old accept loop.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	err := s.srv.Close()
	<-s.done
	return err
}
