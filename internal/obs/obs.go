// Package obs is the observability kernel of the WALRUS repository: a
// registry of atomic counters, gauges and fixed-bucket latency
// histograms, plus a lightweight span tracer with a bounded in-memory
// ring. It is stdlib-only and designed around a nil fast path: a nil
// *Registry hands out nil metric handles, and every operation on a nil
// handle is a no-op cheap enough to leave in the hot paths permanently.
// Subsystems therefore hold (possibly nil) pre-resolved handles and never
// branch on "is observability enabled".
//
// Metric names follow the Prometheus data model (snake_case, a
// `walrus_` prefix by convention, `_total` suffix on counters,
// `_seconds` on latency histograms). The registry is exposed three ways:
// Prometheus text format (WritePrometheus, served at /metrics by
// Handler), expvar-style JSON (WriteJSON, served at /debug/vars), and a
// human-readable table (WriteTable, the CLI -obs-snapshot dump).
//
// Wall-clock reads are confined to the annotated helpers in clock.go
// (Clock, Since); the repo's `obs` lint analyzer enforces that every
// instrumented package routes its timing through them.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to
// use; all methods are no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (which may be negative) to the gauge.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a namespace of metrics plus a span tracer. All methods are
// safe for concurrent use, and every method is safe on a nil receiver:
// lookups return nil handles whose operations are no-ops, which is the
// "instrumentation disabled" fast path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
	help     map[string]string     // guarded by mu
	tracer   *Tracer               // immutable after NewRegistry
}

// defaultSpanRing is the span ring capacity of NewRegistry.
const defaultSpanRing = 1024

// NewRegistry returns an empty registry whose span ring holds the most
// recent defaultSpanRing completed spans.
func NewRegistry() *Registry { return NewRegistrySpanRing(defaultSpanRing) }

// NewRegistrySpanRing is NewRegistry with an explicit span ring capacity,
// for callers (trace-completeness tests, long-trace debugging) that need
// more history than the default 1024 spans before the ring overwrites.
func NewRegistrySpanRing(capacity int) *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
		tracer:   newTracer(capacity),
	}
	// The ring drops oldest spans silently under load; surface the loss
	// as a counter so the observer observes itself.
	r.tracer.droppedC = r.Counter("walrus_obs_spans_dropped_total",
		"Completed spans overwritten by span-ring wraparound before they could be read.")
	return r
}

// validName reports whether name fits the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// registerLocked validates a metric name and records its help text, enforcing
// that one name maps to exactly one metric kind. Caller holds r.mu.
func (r *Registry) registerLocked(name, help, kind string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	var clashes bool
	switch kind {
	case "counter":
		_, g := r.gauges[name]
		_, h := r.hists[name]
		clashes = g || h
	case "gauge":
		_, c := r.counters[name]
		_, h := r.hists[name]
		clashes = c || h
	case "histogram":
		_, c := r.counters[name]
		_, g := r.gauges[name]
		clashes = c || g
	}
	if clashes {
		panic(fmt.Sprintf("obs: metric %q re-registered as a %s", name, kind))
	}
	if _, ok := r.help[name]; !ok && help != "" {
		r.help[name] = help
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.registerLocked(name, help, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op handle) on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.registerLocked(name, help, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (nil buckets means DefBuckets; an
// implicit +Inf bucket is always appended). Returns nil (a no-op handle)
// on a nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.registerLocked(name, help, "histogram")
	h := newHistogram(buckets)
	r.hists[name] = h
	return h
}

// Tracer returns the registry's span tracer (nil on a nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	// Bounds are the bucket upper bounds; Counts the per-bucket
	// (non-cumulative) observation counts. len(Counts) == len(Bounds)+1;
	// the final slot is the +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric. A nil registry yields empty (non-nil)
// maps, so callers can index the result unconditionally.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// names returns every registered metric name sorted, with its kind and
// help text. Caller holds r.mu.
type namedMetric struct {
	name, kind, help string
}

func (r *Registry) sortedLocked() []namedMetric {
	out := make([]namedMetric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters {
		out = append(out, namedMetric{name, "counter", r.help[name]})
	}
	for name := range r.gauges {
		out = append(out, namedMetric{name, "gauge", r.help[name]})
	}
	for name := range r.hists {
		out = append(out, namedMetric{name, "histogram", r.help[name]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
