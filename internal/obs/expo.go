package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// formatBound renders a histogram bucket bound the way Prometheus does
// (shortest float representation; +Inf for the overflow bucket).
func formatBound(b float64) string {
	if math.IsInf(b, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), sorted by metric name. A nil registry writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := r.sortedLocked()
	snap := make(map[string]any, len(metrics))
	for _, m := range metrics {
		switch m.kind {
		case "counter":
			snap[m.name] = r.counters[m.name].Value()
		case "gauge":
			snap[m.name] = r.gauges[m.name].Value()
		case "histogram":
			snap[m.name] = r.hists[m.name].snapshot()
		}
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, m := range metrics {
		if m.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, strings.ReplaceAll(m.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
		switch v := snap[m.name].(type) {
		case uint64:
			fmt.Fprintf(bw, "%s %d\n", m.name, v)
		case int64:
			fmt.Fprintf(bw, "%s %d\n", m.name, v)
		case HistogramSnapshot:
			cum := uint64(0)
			for i, c := range v.Counts {
				cum += c
				bound := math.Inf(+1)
				if i < len(v.Bounds) {
					bound = v.Bounds[i]
				}
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", m.name, formatBound(bound), cum)
			}
			fmt.Fprintf(bw, "%s_sum %s\n", m.name, strconv.FormatFloat(v.Sum, 'g', -1, 64))
			fmt.Fprintf(bw, "%s_count %d\n", m.name, v.Count)
		}
	}
	return bw.Flush()
}

// WriteJSON renders every metric as one flat expvar-style JSON object:
// scalar metrics map to numbers, histograms to {count, sum, buckets}
// objects. Keys are sorted (encoding/json sorts map keys). A nil
// registry writes an empty object.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]any)
	snap := r.Snapshot()
	for name, v := range snap.Counters {
		out[name] = v
	}
	for name, v := range snap.Gauges {
		out[name] = v
	}
	for name, h := range snap.Histograms {
		buckets := make([]map[string]any, len(h.Counts))
		for i, c := range h.Counts {
			bound := math.Inf(+1)
			if i < len(h.Bounds) {
				bound = h.Bounds[i]
			}
			buckets[i] = map[string]any{"le": formatBound(bound), "count": c}
		}
		out[name] = map[string]any{"count": h.Count, "sum": h.Sum, "buckets": buckets}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteSpansJSON renders the tracer ring as JSON: completed spans
// oldest-first plus the overwrite count.
func (r *Registry) WriteSpansJSON(w io.Writer) error {
	spans, dropped := r.Tracer().Spans()
	if spans == nil {
		spans = []SpanRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"spans": spans, "dropped": dropped})
}

// WriteTable renders a one-shot human-readable dump of every metric —
// the CLI -obs-snapshot output. Histograms collapse to count/sum/mean.
func (r *Registry) WriteTable(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	metrics := r.sortedLocked()
	type row struct{ name, value string }
	rows := make([]row, 0, len(metrics))
	width := 0
	for _, m := range metrics {
		var val string
		switch m.kind {
		case "counter":
			val = strconv.FormatUint(r.counters[m.name].Value(), 10)
		case "gauge":
			val = strconv.FormatInt(r.gauges[m.name].Value(), 10)
		case "histogram":
			h := r.hists[m.name].snapshot()
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			val = fmt.Sprintf("count=%d sum=%.6gs mean=%.6gs", h.Count, h.Sum, mean)
		}
		rows = append(rows, row{m.name, val})
		if len(m.name) > width {
			width = len(m.name)
		}
	}
	r.mu.Unlock()
	for _, rw := range rows {
		fmt.Fprintf(w, "%-*s  %s\n", width, rw.name, rw.value)
	}
	spans, dropped := r.Tracer().Spans()
	fmt.Fprintf(w, "%-*s  %d recent (%d overwritten)\n", width, "trace_spans", len(spans), dropped)
}

// ValidatePrometheus parses a Prometheus text exposition and returns an
// error on the first malformed line or inconsistent histogram family —
// the check the CI obs tier applies to a live scrape. It understands the
// subset this package emits: HELP/TYPE comments, unlabeled scalar
// samples, and histogram families with `le` labels.
func ValidatePrometheus(data []byte) error {
	typeOf := make(map[string]string)
	bucketCum := make(map[string]uint64)  // family -> last cumulative bucket count
	bucketLast := make(map[string]string) // family -> last le bound seen
	countOf := make(map[string]uint64)
	sawInf := make(map[string]bool)
	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				if _, dup := typeOf[fields[2]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[2])
				}
				typeOf[fields[2]] = fields[3]
			}
			continue
		}
		name, rest, ok := splitSample(line)
		if !ok {
			return fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return fmt.Errorf("line %d: bad sample value in %q: %v", lineNo, line, err)
		}
		family := name
		switch {
		case strings.Contains(name, "{"):
			base, le, ok := splitBucket(name)
			if !ok {
				return fmt.Errorf("line %d: unsupported labels in %q", lineNo, line)
			}
			family = strings.TrimSuffix(base, "_bucket")
			if typeOf[family] != "histogram" {
				return fmt.Errorf("line %d: bucket sample %q without a histogram TYPE", lineNo, line)
			}
			if uint64(val) < bucketCum[family] {
				return fmt.Errorf("line %d: histogram %q buckets are not cumulative", lineNo, family)
			}
			bucketCum[family] = uint64(val)
			bucketLast[family] = le
			if le == "+Inf" {
				sawInf[family] = true
			}
		case strings.HasSuffix(name, "_sum") && typeOf[strings.TrimSuffix(name, "_sum")] == "histogram":
			family = strings.TrimSuffix(name, "_sum")
		case strings.HasSuffix(name, "_count") && typeOf[strings.TrimSuffix(name, "_count")] == "histogram":
			family = strings.TrimSuffix(name, "_count")
			countOf[family] = uint64(val)
		default:
			if _, ok := typeOf[name]; !ok {
				return fmt.Errorf("line %d: sample %q precedes its TYPE line", lineNo, name)
			}
			if !validName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
		}
		if !validName(family) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, family)
		}
	}
	for family, typ := range typeOf {
		if typ != "histogram" {
			continue
		}
		if !sawInf[family] {
			return fmt.Errorf("histogram %q has no +Inf bucket", family)
		}
		if countOf[family] != bucketCum[family] {
			return fmt.Errorf("histogram %q: +Inf bucket %d != count %d (last le=%s)",
				family, bucketCum[family], countOf[family], bucketLast[family])
		}
	}
	return nil
}

// splitSample splits "name value" or "name{labels} value".
func splitSample(line string) (name, value string, ok bool) {
	if i := strings.Index(line, "}"); i >= 0 {
		return line[:i+1], line[i+1:], strings.Contains(line[:i+1], "{")
	}
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return "", "", false
	}
	return line[:i], line[i:], true
}

// splitBucket parses `name_bucket{le="bound"}` into (name_bucket, bound).
func splitBucket(s string) (base, le string, ok bool) {
	open := strings.Index(s, "{")
	if open < 0 || !strings.HasSuffix(s, "}") {
		return "", "", false
	}
	label := s[open+1 : len(s)-1]
	var unq string
	if rest, found := strings.CutPrefix(label, "le="); found {
		var err error
		unq, err = strconv.Unquote(rest)
		if err != nil {
			return "", "", false
		}
	} else {
		return "", "", false
	}
	return s[:open], unq, true
}
