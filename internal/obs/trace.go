package obs

import (
	"context"
	"fmt"
	"strconv"
)

// Live trace propagation. A request entry point (internal/serve, a CLI)
// starts a root span with Registry.StartSpan, stores it in the request
// context with ContextWithSpan, and every layer below — snapshot query
// stages, the sharded fan-out, parallel tasks — retrieves it with
// SpanFromContext and hangs children off it. The result is a real
// parent/child tree sharing one trace id, recorded live as each span
// ends, instead of the retroactive reconstruction earlier versions did.
// All helpers tolerate nil spans and contexts without one, so the
// tracing-off path stays a couple of pointer checks.

// spanKey is the context key for the active span.
type spanKey struct{}

// ContextWithSpan returns a context carrying s as the active span.
// Passing a nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the active span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// FormatTraceID renders a trace id the way it appears on the wire: 16
// lowercase hex digits (the X-Walrus-Trace header, /v1/trace/{id}).
func FormatTraceID(trace uint64) string {
	return fmt.Sprintf("%016x", trace)
}

// ParseTraceID parses a wire-format trace id; it accepts any hex string
// that fits uint64, so hand-typed ids without leading zeros work too.
func ParseTraceID(s string) (uint64, error) {
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil || id == 0 {
		return 0, fmt.Errorf("obs: bad trace id %q", s)
	}
	return id, nil
}
