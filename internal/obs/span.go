package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value attribute attached to a span (counts, sizes —
// quantities, not labels, so the value is numeric).
type Attr struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// SpanRecord is one completed span as stored in the tracer ring.
type SpanRecord struct {
	ID       uint64        `json:"id"`
	Parent   uint64        `json:"parent,omitempty"`
	Trace    uint64        `json:"trace,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Tracer records completed spans into a bounded ring: once full, new
// spans overwrite the oldest, the Dropped counter advances, and — when
// the tracer belongs to a registry — the walrus_obs_spans_dropped_total
// counter advances with it, so the observer's own losses are observable.
// Safe for concurrent use; all methods are no-ops on a nil receiver.
type Tracer struct {
	seq      atomic.Uint64
	traceSeq atomic.Uint64
	dropped  atomic.Uint64
	droppedC *Counter // registry mirror of dropped; nil outside a registry

	mu   sync.Mutex
	ring []SpanRecord // guarded by mu
	next int          // guarded by mu
	full bool         // guarded by mu
}

func newTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]SpanRecord, 0, capacity)}
}

// Span is one in-flight operation. Obtain one with Registry.StartSpan or
// Span.Child; a nil Span (from a nil registry/tracer) never reads the
// clock and ignores every method call.
type Span struct {
	tracer *Tracer
	rec    SpanRecord
}

// StartSpan begins a root span under a fresh trace id (nil on a nil
// registry). Children created with Child inherit the trace, so the whole
// tree of one request shares one id — the value surfaced in the
// X-Walrus-Trace response header and fetched back via TraceSpans.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	t := r.tracer
	return t.start(name, 0, t.traceSeq.Add(1))
}

func (t *Tracer) start(name string, parent, trace uint64) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tracer: t,
		rec: SpanRecord{
			ID:     t.seq.Add(1),
			Parent: parent,
			Trace:  trace,
			Name:   name,
			Start:  Clock(),
		},
	}
}

// Child begins a span parented to s, inheriting s's trace id (nil when s
// is nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(name, s.rec.ID, s.rec.Trace)
}

// ID returns the span id (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.rec.ID
}

// TraceID returns the span's trace id (0 for a nil span).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.rec.Trace
}

// SetAttr attaches a numeric attribute to the span.
func (s *Span) SetAttr(key string, value int64) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Value: value})
}

// End completes the span, records it into the ring, and returns its
// duration (0 for a nil span).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.rec.Duration = Since(s.rec.Start)
	s.tracer.record(s.rec)
	return s.rec.Duration
}

// RecordSpan inserts an already-measured span — the retroactive API used
// when phase timings are captured anyway (QueryStats) and re-reading the
// clock would double the cost. It returns the new span's id so children
// can reference it (0 on a nil registry).
func (r *Registry) RecordSpan(name string, parent uint64, start time.Time, d time.Duration, attrs ...Attr) uint64 {
	if r == nil {
		return 0
	}
	rec := SpanRecord{
		ID:       r.tracer.seq.Add(1),
		Parent:   parent,
		Name:     name,
		Start:    start,
		Duration: d,
		Attrs:    attrs,
	}
	r.tracer.record(rec)
	return rec.ID
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full && len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
		if len(t.ring) == cap(t.ring) {
			t.full = true
			t.next = 0
		}
		return
	}
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	t.dropped.Add(1)
	t.droppedC.Inc()
}

// Spans returns the completed spans oldest-first plus the number of
// spans that have been overwritten by ring wraparound. Empty on a nil
// receiver.
func (t *Tracer) Spans() (spans []SpanRecord, dropped uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		spans = append(spans, t.ring...)
	} else {
		spans = append(spans, t.ring[t.next:]...)
		spans = append(spans, t.ring[:t.next]...)
	}
	return spans, t.dropped.Load()
}

// TraceSpans returns the completed spans of one trace, oldest-first. The
// ring is the trace store — bounded by construction — so a trace whose
// spans have been overwritten comes back partial (or empty): check
// Dropped (walrus_obs_spans_dropped_total) when a trace looks truncated.
// Empty on a nil receiver or an unknown trace id.
func (t *Tracer) TraceSpans(trace uint64) []SpanRecord {
	if t == nil || trace == 0 {
		return nil
	}
	all, _ := t.Spans()
	var out []SpanRecord
	for _, s := range all {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}
