package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency bucket upper bounds in seconds,
// spanning sub-millisecond index probes to multi-second bulk ingests.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Observations are float64 values (seconds, for the `_seconds` latency
// histograms). All methods are no-ops on a nil receiver.
type Histogram struct {
	bounds []float64 // immutable ascending upper bounds (exclusive of +Inf)
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v is the bucket (Prometheus `le` semantics); past the
	// last bound the observation lands in the implicit +Inf slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Timer measures one latency observation into a histogram. Obtain one
// with Histogram.Start; a Timer from a nil histogram never reads the
// clock and its Stop is a no-op, preserving the nil fast path.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Start begins timing an observation (a no-op Timer on a nil receiver).
func (h *Histogram) Start() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: Clock()}
}

// Stop records the elapsed seconds since Start and returns the duration
// (0 for a Timer from a nil histogram).
func (t Timer) Stop() time.Duration {
	if t.h == nil {
		return 0
	}
	d := Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}
