package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// httpGet fetches url and returns its body.
func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// TestNilRegistryIsInert: every operation on a nil registry and the nil
// handles it returns must be a no-op — the disabled fast path.
func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("walrus_test_total", "h")
	g := r.Gauge("walrus_test", "h")
	h := r.Histogram("walrus_test_seconds", "h", nil)
	c.Inc()
	c.Add(10)
	g.Set(5)
	g.Add(-2)
	h.Observe(0.1)
	tm := h.Start()
	if d := tm.Stop(); d != 0 {
		t.Errorf("nil histogram timer measured %v", d)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil handles accumulated state")
	}
	sp := r.StartSpan("query")
	sp.SetAttr("n", 1)
	child := sp.Child("probe")
	child.End()
	if d := sp.End(); d != 0 {
		t.Errorf("nil span measured %v", d)
	}
	if id := r.RecordSpan("x", 0, time.Time{}, 0); id != 0 {
		t.Errorf("nil RecordSpan returned id %d", id)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil snapshot is not empty")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	if err := r.WriteJSON(io.Discard); err != nil {
		t.Errorf("nil WriteJSON: %v", err)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("walrus_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("walrus_ops_total", "ops"); c2 != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("walrus_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	h := r.Histogram("walrus_op_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("histogram count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
	snap := r.Snapshot()
	hs := snap.Histograms["walrus_op_seconds"]
	wantCounts := []uint64{1, 1, 1, 1}
	for i, w := range wantCounts {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, hs.Counts[i], w)
		}
	}
}

func TestMetricKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("walrus_thing", "h")
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("walrus_thing", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name did not panic")
		}
	}()
	r.Counter("walrus-bad-name", "h")
}

func TestSpanRingBounded(t *testing.T) {
	r := NewRegistry()
	const n = defaultSpanRing + 50
	for i := 0; i < n; i++ {
		sp := r.StartSpan("op")
		sp.SetAttr("i", int64(i))
		sp.End()
	}
	spans, dropped := r.Tracer().Spans()
	if len(spans) != defaultSpanRing {
		t.Errorf("ring holds %d spans, want %d", len(spans), defaultSpanRing)
	}
	if dropped != 50 {
		t.Errorf("dropped = %d, want 50", dropped)
	}
	// Oldest-first: the first surviving span is the 51st started.
	if got := spans[0].Attrs[0].Value; got != 50 {
		t.Errorf("oldest surviving span attr = %d, want 50", got)
	}
	last := spans[len(spans)-1]
	if last.Attrs[0].Value != n-1 {
		t.Errorf("newest span attr = %d, want %d", last.Attrs[0].Value, n-1)
	}
}

func TestSpanParentLinks(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("query")
	child := root.Child("probe")
	child.End()
	root.End()
	id := r.RecordSpan("score", root.ID(), Clock(), time.Millisecond, Attr{Key: "candidates", Value: 3})
	if id == 0 {
		t.Fatal("RecordSpan returned 0")
	}
	spans, _ := r.Tracer().Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["probe"].Parent != byName["query"].ID {
		t.Error("child span not linked to parent")
	}
	if byName["score"].Parent != byName["query"].ID {
		t.Error("recorded span not linked to parent")
	}
}

func TestPrometheusOutputValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("walrus_ops_total", "total ops").Add(3)
	r.Gauge("walrus_depth", "queue depth").Set(-2)
	h := r.Histogram("walrus_op_seconds", "op latency", nil)
	h.Observe(0.0002)
	h.Observe(42) // lands in +Inf
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE walrus_ops_total counter",
		"walrus_ops_total 3",
		"walrus_depth -2",
		`walrus_op_seconds_bucket{le="+Inf"} 2`,
		"walrus_op_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if err := ValidatePrometheus(buf.Bytes()); err != nil {
		t.Errorf("ValidatePrometheus rejected own output: %v\n%s", err, out)
	}
}

func TestValidatePrometheusRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad value":         "# TYPE x counter\nx notanumber\n",
		"no TYPE":           "lonely_sample 3\n",
		"bad name":          "# TYPE 9bad counter\n9bad 1\n",
		"non-cumulative":    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing inf":       "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"count != inf":      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
		"unsupported label": "# TYPE x counter\nx{job=\"a\"} 1\n",
	}
	for name, in := range cases {
		if err := ValidatePrometheus([]byte(in)); err == nil {
			t.Errorf("%s: validator accepted %q", name, in)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("walrus_ops_total", "h").Add(7)
	r.Histogram("walrus_op_seconds", "h", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, buf.String())
	}
	if got := out["walrus_ops_total"]; got != float64(7) {
		t.Errorf("walrus_ops_total = %v, want 7", got)
	}
	hist, ok := out["walrus_op_seconds"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Errorf("histogram JSON = %v", out["walrus_op_seconds"])
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("walrus_ops_total", "h").Inc()
	r.StartSpan("op").End()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "walrus_ops_total 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Errorf("/debug/vars is not JSON: %v", err)
	}
	var spans map[string]any
	if err := json.Unmarshal([]byte(get("/debug/walrus/spans")), &spans); err != nil {
		t.Errorf("/debug/walrus/spans is not JSON: %v", err)
	}
	if n := len(spans["spans"].([]any)); n != 1 {
		t.Errorf("span endpoint returned %d spans, want 1", n)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline endpoint is empty")
	}
}

// TestConcurrentUse hammers one registry from many goroutines while a
// reader snapshots and re-renders it; run under -race in the race tier.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("walrus_ops_total", "h")
	g := r.Gauge("walrus_depth", "h")
	h := r.Histogram("walrus_op_seconds", "h", nil)
	var wg sync.WaitGroup
	const workers, iters = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i) / 1000)
				sp := r.StartSpan("op")
				sp.SetAttr("w", int64(w))
				sp.End()
				// Interleave registration with updates.
				r.Counter("walrus_other_total", "h").Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("WritePrometheus during load: %v", err)
				return
			}
			if err := ValidatePrometheus(buf.Bytes()); err != nil {
				t.Errorf("invalid exposition during load: %v", err)
				return
			}
			r.Tracer().Spans()
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("walrus_ops_total", "h").Inc()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := httpGet("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp, "walrus_ops_total 1") {
		t.Errorf("served metrics missing counter:\n%s", resp)
	}
}
