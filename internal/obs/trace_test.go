package obs

import (
	"context"
	"fmt"
	"testing"
)

// TestTraceSpanRingOverflow drives more spans through the ring than it
// holds and checks the overflow is not silent: the tracer's Dropped
// count and the walrus_obs_spans_dropped_total counter both advance by
// exactly the overflow, and the ring retains the newest spans.
func TestTraceSpanRingOverflow(t *testing.T) {
	const capacity, total = 64, 200
	r := NewRegistrySpanRing(capacity)
	for i := 0; i < total; i++ {
		sp := r.StartSpan(fmt.Sprintf("op-%d", i))
		sp.End()
	}
	spans, dropped := r.Tracer().Spans()
	if len(spans) != capacity {
		t.Fatalf("ring holds %d spans, want %d", len(spans), capacity)
	}
	if want := uint64(total - capacity); dropped != want {
		t.Errorf("Spans() dropped = %d, want %d", dropped, want)
	}
	if got := r.Snapshot().Counters["walrus_obs_spans_dropped_total"]; got != uint64(total-capacity) {
		t.Errorf("walrus_obs_spans_dropped_total = %d, want %d", got, total-capacity)
	}
	// Oldest-first: the survivors are the last `capacity` spans recorded.
	if spans[0].Name != fmt.Sprintf("op-%d", total-capacity) {
		t.Errorf("oldest surviving span is %q, want op-%d", spans[0].Name, total-capacity)
	}
	if spans[len(spans)-1].Name != fmt.Sprintf("op-%d", total-1) {
		t.Errorf("newest span is %q, want op-%d", spans[len(spans)-1].Name, total-1)
	}
}

// TestTraceContextPropagation checks the live-tracing plumbing: a root
// span rides a context, children inherit its trace id and parent link,
// and TraceSpans reassembles exactly that trace from the ring.
func TestTraceContextPropagation(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("request")
	if root.TraceID() == 0 {
		t.Fatal("root span has no trace id")
	}
	ctx := ContextWithSpan(context.Background(), root)
	got := SpanFromContext(ctx)
	if got != root {
		t.Fatalf("SpanFromContext = %p, want %p", got, root)
	}
	child := got.Child("query")
	grand := child.Child("query.probe")
	grand.End()
	child.End()
	root.End()
	// An unrelated trace must not leak into the lookup.
	other := r.StartSpan("other")
	other.End()

	spans := r.Tracer().TraceSpans(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("TraceSpans returned %d spans, want 3: %+v", len(spans), spans)
	}
	byName := map[string]SpanRecord{}
	roots := 0
	for _, s := range spans {
		byName[s.Name] = s
		if s.Trace != root.TraceID() {
			t.Errorf("span %q has trace %d, want %d", s.Name, s.Trace, root.TraceID())
		}
		if s.Parent == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("trace has %d roots, want 1", roots)
	}
	if byName["query"].Parent != byName["request"].ID {
		t.Errorf("query span parent = %d, want request id %d", byName["query"].Parent, byName["request"].ID)
	}
	if byName["query.probe"].Parent != byName["query"].ID {
		t.Errorf("probe span parent = %d, want query id %d", byName["query.probe"].Parent, byName["query"].ID)
	}

	if id, err := ParseTraceID(FormatTraceID(root.TraceID())); err != nil || id != root.TraceID() {
		t.Errorf("trace id round-trip: got %d, %v; want %d", id, err, root.TraceID())
	}
	if _, err := ParseTraceID("zz"); err == nil {
		t.Error("ParseTraceID accepted garbage")
	}

	// Nil safety: a context without a span and nil span methods.
	if s := SpanFromContext(context.Background()); s != nil {
		t.Errorf("SpanFromContext on empty ctx = %v", s)
	}
	var nilSpan *Span
	if ctx2 := ContextWithSpan(context.Background(), nilSpan); SpanFromContext(ctx2) != nil {
		t.Error("nil span stored in context")
	}
	if nilSpan.TraceID() != 0 {
		t.Error("nil span has a trace id")
	}
}
