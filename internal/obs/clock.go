package obs

import "time"

// Clock and Since are the sanctioned wall-clock reads of the
// observability layer. Timing feeds metrics and spans only — never
// matching, scoring, or result order — so these two helpers (together
// with the root package's statsClock/statsSince) form the exemption list
// of the `obs` lint analyzer: every other direct time.Now/time.Since in
// an instrumented package is a diagnostic.

// Clock returns the current wall-clock time.
func Clock() time.Time {
	return time.Now()
}

// Since returns the wall-clock time elapsed since t.
func Since(t time.Time) time.Duration {
	return time.Since(t)
}
