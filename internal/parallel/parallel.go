// Package parallel provides the bounded worker pools WALRUS's hot paths
// fan work across: sliding-window DP rows, per-image region extraction in
// batch ingest, and per-query-region index probes. Every helper takes the
// same knob: workers <= 0 means one worker per logical CPU (GOMAXPROCS),
// 1 forces the serial path, and any other value bounds the pool at that
// size. Work items are claimed dynamically from a shared counter, so
// uneven item costs still balance across the pool; callers that need
// deterministic output write results into per-index slots and merge in
// index order afterwards.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"walrus/internal/obs"
)

// poolMetrics are the package's pre-resolved obs handles. Worker pools are
// ephemeral (one per For call), so the handles are package-global and read
// through an atomic pointer; nil means observability is off and the claim
// loop does no metric work.
type poolMetrics struct {
	queueDepth, activeWorkers *obs.Gauge
	tasks                     *obs.Counter
}

var metrics atomic.Pointer[poolMetrics]

// SetMetrics publishes pool activity into reg under the walrus_pool_*
// namespace; nil detaches. The handles are process-global: every pool in
// the process reports into the same gauges.
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&poolMetrics{
		queueDepth:    reg.Gauge("walrus_pool_queue_depth", "Work items submitted to worker pools and not yet claimed."),
		activeWorkers: reg.Gauge("walrus_pool_active_workers", "Worker goroutines (or inline serial loops) currently running."),
		tasks:         reg.Counter("walrus_pool_tasks_total", "Work items completed by worker pools."),
	})
}

// Workers resolves a parallelism knob: values <= 0 mean GOMAXPROCS,
// anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) on up to workers goroutines
// (resolved by Workers) and returns when all calls have finished. With
// one worker — or one item — it degrades to a plain loop on the calling
// goroutine, so the serial path has zero scheduling overhead.
func For(n, workers int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	m := metrics.Load()
	if m != nil {
		m.queueDepth.Add(int64(n))
	}
	if workers <= 1 {
		if m != nil {
			m.activeWorkers.Add(1)
		}
		for i := 0; i < n; i++ {
			fn(i)
			if m != nil {
				m.queueDepth.Add(-1)
				m.tasks.Inc()
			}
		}
		if m != nil {
			m.activeWorkers.Add(-1)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			if m != nil {
				m.activeWorkers.Add(1)
				defer m.activeWorkers.Add(-1)
			}
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
				if m != nil {
					m.queueDepth.Add(-1)
					m.tasks.Inc()
				}
			}
		}()
	}
	wg.Wait()
}

// ForErr runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the error of the lowest-indexed failing call, or nil. All items
// run regardless of failures, so the returned error is deterministic — the
// same one the serial loop would have hit first.
func ForErr(n, workers int, fn func(i int) error) error {
	errs := make([]error, n)
	For(n, workers, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
