// Package parallel provides the bounded worker pools WALRUS's hot paths
// fan work across: sliding-window DP rows, per-image region extraction in
// batch ingest, and per-query-region index probes. Every helper takes the
// same knob: workers <= 0 means one worker per logical CPU (GOMAXPROCS),
// 1 forces the serial path, and any other value bounds the pool at that
// size. Work items are claimed dynamically from a shared counter, so
// uneven item costs still balance across the pool; callers that need
// deterministic output write results into per-index slots and merge in
// index order afterwards.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob: values <= 0 mean GOMAXPROCS,
// anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) on up to workers goroutines
// (resolved by Workers) and returns when all calls have finished. With
// one worker — or one item — it degrades to a plain loop on the calling
// goroutine, so the serial path has zero scheduling overhead.
func For(n, workers int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the error of the lowest-indexed failing call, or nil. All items
// run regardless of failures, so the returned error is deterministic — the
// same one the serial loop would have hit first.
func ForErr(n, workers int, fn func(i int) error) error {
	errs := make([]error, n)
	For(n, workers, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
