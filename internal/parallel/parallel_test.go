package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 3, 100} {
			hits := make([]atomic.Int32, n)
			For(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForSerialRunsInOrder(t *testing.T) {
	var order []int
	For(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial For visited %v, want ascending order", order)
		}
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom-2")
	err := ForErr(10, 4, func(i int) error {
		if i == 2 {
			return wantErr
		}
		if i == 7 {
			return fmt.Errorf("boom-7")
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("ForErr = %v, want %v", err, wantErr)
	}
	if err := ForErr(10, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("ForErr on success = %v, want nil", err)
	}
}
