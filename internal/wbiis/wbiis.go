// Package wbiis reimplements the WBIIS image indexing system of Wang,
// Wiederhold, Firschein and Wei (Int. J. Digital Libraries 1998), the
// baseline WALRUS is compared against in Section 6.4 of the paper. WBIIS
// computes one signature per image: feature vectors from 4- and 5-level
// Daubechies-4 wavelet transforms of the 128×128 rescaled image, plus the
// standard deviation of the coarsest band. Search proceeds in three steps:
// a crude variance filter, a refinement pass on the 5-level (coarser)
// vectors, and a final ranking on the 4-level vectors with a weighted
// euclidean distance.
//
// Because WBIIS summarizes the whole image in one signature, it cannot
// handle region queries or objects that moved or changed size — the
// failure mode WALRUS was designed to fix.
package wbiis

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"walrus/internal/colorspace"
	"walrus/internal/imgio"
	"walrus/internal/wavelet"
)

// side is the rescaled image side WBIIS operates on.
const side = 128

// Options configures a WBIIS index.
type Options struct {
	// Space is the color space feature vectors are computed in.
	Space colorspace.Space
	// Beta is the variance pre-filter tolerance: a candidate passes when
	// |σq − σt| < Beta·σq (per the WBIIS paper's acceptance criterion).
	Beta float64
	// LowWeight emphasizes the coarsest (upper-left) band in the weighted
	// distance; detail bands get weight 1.
	LowWeight float64
	// ChannelWeights weigh the color channels in the distance; the
	// luminance-like first channel usually carries more weight.
	ChannelWeights [3]float64
	// Refine is the multiple of the requested k kept after the 5-level
	// refinement pass.
	Refine int
}

// DefaultOptions mirrors the WBIIS paper's published setup.
func DefaultOptions() Options {
	return Options{
		Space:          colorspace.YCC,
		Beta:           0.5,
		LowWeight:      1.8,
		ChannelWeights: [3]float64{1.0, 0.7, 0.7},
		Refine:         5,
	}
}

// signature is one image's WBIIS feature set.
type signature struct {
	id    string
	f4    []float64 // upper-left 16×16 of the 4-level transform, 3 channels
	f5    []float64 // upper-left 8×8 of the 5-level transform, 3 channels
	sigma float64   // std dev of the 8×8 coarsest band (first channel)
}

// Match is one query result; lower distance is better.
type Match struct {
	ID       string
	Distance float64
}

// Index is an in-memory WBIIS index. Add and Query are safe for
// concurrent use.
type Index struct {
	opts Options
	mu   sync.RWMutex
	sigs []signature
}

// New creates an empty index.
func New(opts Options) (*Index, error) {
	if opts.Beta <= 0 || opts.LowWeight <= 0 || opts.Refine < 1 {
		return nil, fmt.Errorf("wbiis: invalid options %+v", opts)
	}
	return &Index{opts: opts}, nil
}

// Len returns the number of indexed images.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.sigs)
}

// Add indexes an RGB image under id.
func (ix *Index) Add(id string, im *imgio.Image) error {
	sig, err := ix.signatureOf(id, im)
	if err != nil {
		return err
	}
	ix.mu.Lock()
	ix.sigs = append(ix.sigs, sig)
	ix.mu.Unlock()
	return nil
}

func (ix *Index) signatureOf(id string, im *imgio.Image) (signature, error) {
	if im.C != 3 {
		return signature{}, fmt.Errorf("wbiis: image %q has %d channels, want 3", id, im.C)
	}
	scaled, err := imgio.Resize(im, side, side)
	if err != nil {
		return signature{}, err
	}
	conv, err := colorspace.FromRGB(scaled, ix.opts.Space)
	if err != nil {
		return signature{}, err
	}
	sig := signature{id: id}
	for c := 0; c < 3; c++ {
		plane := wavelet.Matrix{Rows: side, Cols: side, Data: conv.Plane(c)}
		t4, err := wavelet.DaubechiesTransform2D(plane, 4)
		if err != nil {
			return signature{}, err
		}
		t5, err := wavelet.DaubechiesTransform2D(plane, 5)
		if err != nil {
			return signature{}, err
		}
		sig.f4 = append(sig.f4, corner(t4, 16)...)
		sig.f5 = append(sig.f5, corner(t5, 8)...)
		if c == 0 {
			sig.sigma = Stddev(corner(t4, 8))
		}
	}
	return sig, nil
}

// corner extracts the upper-left s×s block of a transform.
func corner(m wavelet.Matrix, s int) []float64 {
	out := make([]float64, 0, s*s)
	for r := 0; r < s; r++ {
		out = append(out, m.Data[r*m.Cols:r*m.Cols+s]...)
	}
	return out
}

// Stddev is the population standard deviation of a feature vector — the
// σ the WBIIS variance filter compares. Exported because the WALRUS
// prefilter tier applies the same acceptance test to per-region wavelet
// signatures.
func Stddev(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	ss := 0.0
	for _, x := range v {
		ss += (x - mean) * (x - mean)
	}
	return math.Sqrt(ss / float64(len(v)))
}

// Acceptance is the WBIIS paper's variance pre-filter criterion: a
// candidate with std dev sigmaT passes against a query with std dev
// sigmaQ when |σq − σt| < β·σq, with an escape hatch accepting two
// near-flat signatures whose σ are both ~0. It is a heuristic, not a
// bound — callers needing exactness must pair it with a conservative
// guard (see the WALRUS prefilter stage).
func Acceptance(sigmaQ, sigmaT, beta float64) bool {
	return math.Abs(sigmaQ-sigmaT) < beta*sigmaQ || (sigmaQ < 1e-9 && sigmaT < 1e-9)
}

// Query returns the k indexed images most similar to im, via the
// three-step WBIIS search.
func (ix *Index) Query(im *imgio.Image, k int) ([]Match, error) {
	if k <= 0 {
		return nil, nil
	}
	q, err := ix.signatureOf("", im)
	if err != nil {
		return nil, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	// Step 1: variance filter.
	var candidates []*signature
	for i := range ix.sigs {
		s := &ix.sigs[i]
		if Acceptance(q.sigma, s.sigma, ix.opts.Beta) {
			candidates = append(candidates, s)
		}
	}
	// If the filter is too harsh (e.g. flat query), fall back to everyone.
	if len(candidates) < k {
		candidates = candidates[:0]
		for i := range ix.sigs {
			candidates = append(candidates, &ix.sigs[i])
		}
	}

	// Step 2: refine on the coarser 5-level vectors.
	type scored struct {
		s *signature
		d float64
	}
	pass2 := make([]scored, len(candidates))
	for i, s := range candidates {
		pass2[i] = scored{s, ix.weightedDist(q.f5, s.f5, 8)}
	}
	sort.Slice(pass2, func(i, j int) bool { return pass2[i].d < pass2[j].d })
	keep := k * ix.opts.Refine
	if keep > len(pass2) {
		keep = len(pass2)
	}
	pass2 = pass2[:keep]

	// Step 3: final ranking on the 4-level vectors.
	final := make([]Match, len(pass2))
	for i, c := range pass2 {
		final[i] = Match{ID: c.s.id, Distance: ix.weightedDist(q.f4, c.s.f4, 16)}
	}
	sort.Slice(final, func(i, j int) bool {
		if final[i].Distance != final[j].Distance {
			return final[i].Distance < final[j].Distance
		}
		return final[i].ID < final[j].ID
	})
	if len(final) > k {
		final = final[:k]
	}
	return final, nil
}

// weightedDist computes the WBIIS weighted euclidean distance between two
// stacked per-channel s×s corner vectors: the coarsest quadrant (upper-left
// s/2×s/2) is weighted by LowWeight, detail coefficients by 1, and each
// channel by its ChannelWeights entry.
func (ix *Index) weightedDist(a, b []float64, s int) float64 {
	per := s * s
	half := s / 2
	total := 0.0
	for c := 0; c < 3; c++ {
		cw := ix.opts.ChannelWeights[c]
		base := c * per
		for r := 0; r < s; r++ {
			for col := 0; col < s; col++ {
				w := 1.0
				if r < half && col < half {
					w = ix.opts.LowWeight
				}
				d := a[base+r*s+col] - b[base+r*s+col]
				total += cw * w * d * d
			}
		}
	}
	return math.Sqrt(total)
}
