package wbiis

import (
	"math/rand"
	"testing"

	"walrus/internal/imgio"
)

func colorImage(r, g, b float64) *imgio.Image {
	im := imgio.New(96, 128, 3)
	im.FillRGB(r, g, b)
	return im
}

func noisyImage(seed int64) *imgio.Image {
	rng := rand.New(rand.NewSource(seed))
	im := imgio.New(128, 96, 3)
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	return im
}

func TestNewValidation(t *testing.T) {
	o := DefaultOptions()
	o.Beta = 0
	if _, err := New(o); err == nil {
		t.Error("accepted Beta 0")
	}
	o = DefaultOptions()
	o.Refine = 0
	if _, err := New(o); err == nil {
		t.Error("accepted Refine 0")
	}
}

func TestSelfQueryRanksFirst(t *testing.T) {
	ix, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	imgs := map[string]*imgio.Image{
		"red":   colorImage(0.9, 0.1, 0.1),
		"green": colorImage(0.1, 0.8, 0.15),
		"blue":  colorImage(0.1, 0.2, 0.9),
		"noise": noisyImage(1),
	}
	for id, im := range imgs {
		if err := ix.Add(id, im); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 4 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for id, im := range imgs {
		matches, err := ix.Query(im, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) == 0 || matches[0].ID != id {
			t.Fatalf("query %q: best match %+v", id, matches)
		}
		if matches[0].Distance > 1e-9 {
			t.Fatalf("self distance = %v", matches[0].Distance)
		}
	}
}

func TestQueryOrdersByVisualSimilarity(t *testing.T) {
	ix, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("darkred", colorImage(0.7, 0.1, 0.1)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("blue", colorImage(0.1, 0.1, 0.9)); err != nil {
		t.Fatal(err)
	}
	matches, err := ix.Query(colorImage(0.8, 0.12, 0.1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].ID != "darkred" {
		t.Fatalf("expected darkred first, got %+v", matches)
	}
	if matches[0].Distance >= matches[1].Distance {
		t.Fatal("distances not ordered")
	}
}

// TestWholeImageSignatureFailsOnTranslation documents the baseline's known
// weakness (the reason WALRUS exists): an object moved to the other corner
// changes the single signature substantially.
func TestWholeImageSignatureFailsOnTranslation(t *testing.T) {
	obj := func(x, y int) *imgio.Image {
		im := imgio.New(128, 128, 3)
		im.FillRGB(0.2, 0.6, 0.2)
		for yy := y; yy < y+40; yy++ {
			for xx := x; xx < x+40; xx++ {
				im.SetRGB(xx, yy, 0.9, 0.1, 0.1)
			}
		}
		return im
	}
	ix, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("same-pos", obj(8, 8)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("moved", obj(80, 80)); err != nil {
		t.Fatal(err)
	}
	matches, err := ix.Query(obj(8, 8), 2)
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].ID != "same-pos" {
		t.Fatalf("best match %+v", matches[0])
	}
	// The moved object scores strictly worse despite identical content.
	if matches[1].Distance <= matches[0].Distance {
		t.Fatal("translation did not hurt the whole-image signature")
	}
}

func TestQueryEdgeCases(t *testing.T) {
	ix, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m, err := ix.Query(colorImage(1, 1, 1), 0); err != nil || m != nil {
		t.Fatalf("k=0: %v, %v", m, err)
	}
	if m, err := ix.Query(colorImage(1, 1, 1), 5); err != nil || len(m) != 0 {
		t.Fatalf("empty index: %v, %v", m, err)
	}
	if err := ix.Add("gray", imgio.New(64, 64, 1)); err == nil {
		t.Error("Add accepted 1-channel image")
	}
}

func TestSmallImagesAreRescaled(t *testing.T) {
	ix, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tiny := imgio.New(16, 24, 3)
	tiny.FillRGB(0.3, 0.6, 0.9)
	if err := ix.Add("tiny", tiny); err != nil {
		t.Fatal(err)
	}
	matches, err := ix.Query(tiny, 1)
	if err != nil || len(matches) != 1 || matches[0].ID != "tiny" {
		t.Fatalf("tiny image round trip: %v, %v", matches, err)
	}
}
