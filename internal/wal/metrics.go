package wal

import "walrus/internal/obs"

// logMetrics are one Log's pre-resolved obs handles. The zero value holds
// only nil handles (every operation a no-op), so the instrumentation sites
// run unconditionally; clock reads and spans are gated on reg != nil.
type logMetrics struct {
	appends, commits, fsyncs, groupCommits, bytesWritten *obs.Counter
	fsyncSeconds                                         *obs.Histogram
	reg                                                  *obs.Registry // nil when observability is off
}

// SetMetrics publishes the log's counters and fsync latency into reg
// under the walrus_wal_* namespace; nil detaches.
func (l *Log) SetMetrics(reg *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if reg == nil {
		l.om = logMetrics{}
		return
	}
	l.om = logMetrics{
		reg:          reg,
		appends:      reg.Counter("walrus_wal_appends_total", "Records appended to the write-ahead log."),
		commits:      reg.Counter("walrus_wal_commits_total", "Commit markers appended to the write-ahead log."),
		fsyncs:       reg.Counter("walrus_wal_fsync_total", "Write-ahead log fsyncs."),
		groupCommits: reg.Counter("walrus_wal_group_commits_total", "Group-commit fsyncs triggered by the byte threshold."),
		bytesWritten: reg.Counter("walrus_wal_bytes_written_total", "Bytes written from the group-commit buffer to the OS."),
		fsyncSeconds: reg.Histogram("walrus_wal_fsync_seconds", "Write-ahead log fsync latency.", nil),
	}
}
