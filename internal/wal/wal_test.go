package wal

import (
	"os"
	"path/filepath"
	"testing"

	"walrus/internal/store"
)

const testPageSize = 256

func openFile(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func newTestLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	f := openFile(t, path)
	l, err := Create(f, testPageSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

func pageImage(fill byte) []byte {
	buf := make([]byte, testPageSize-store.PageFooterSize)
	for i := range buf {
		buf[i] = fill
	}
	return buf
}

// recoverFrom replays the log at path against dbPath (creating an empty
// page file region if needed) and returns the stats.
func recoverFrom(t *testing.T, path, dbPath string, onApp AppFunc) (*Log, RecoveryStats) {
	t.Helper()
	lf := openFile(t, path)
	df := openFile(t, dbPath)
	l, stats, err := Recover(lf, df, testPageSize, 1, onApp)
	if err != nil {
		t.Fatal(err)
	}
	df.Close()
	return l, stats
}

func TestLogAppendAndRecoverPages(t *testing.T) {
	l, path := newTestLog(t)
	dbPath := filepath.Join(filepath.Dir(path), "pages.db")

	lsn1 := l.AppendPage(1, pageImage(0xAA))
	lsn2 := l.AppendPage(2, pageImage(0xBB))
	if lsn2 <= lsn1 {
		t.Fatalf("LSNs not increasing: %d then %d", lsn1, lsn2)
	}
	l.AppendCommit()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.DurableLSN() < lsn2 {
		t.Fatalf("DurableLSN %d below last record %d", l.DurableLSN(), lsn2)
	}
	l.Close()

	// Size the page file for three pages so replay can read-modify-write.
	df := openFile(t, dbPath)
	if err := df.Truncate(3 * testPageSize); err != nil {
		t.Fatal(err)
	}
	df.Close()

	l2, stats := recoverFrom(t, path, dbPath, nil)
	defer l2.Close()
	if !stats.Replayed {
		t.Fatal("Replayed = false for a log with records")
	}
	if stats.PagesApplied != 2 || stats.Commits != 1 || stats.TornBytes != 0 {
		t.Fatalf("stats = %+v", stats)
	}

	// The page file now carries both images with valid footers.
	df = openFile(t, dbPath)
	defer df.Close()
	page := make([]byte, testPageSize)
	for id, fill := range map[int64]byte{1: 0xAA, 2: 0xBB} {
		if _, err := df.ReadAt(page, id*testPageSize); err != nil {
			t.Fatal(err)
		}
		lsn, ok := store.CheckPageFooter(page)
		if !ok {
			t.Fatalf("page %d footer invalid after replay", id)
		}
		if lsn == 0 {
			t.Fatalf("page %d LSN not stamped", id)
		}
		if page[0] != fill || page[testPageSize-store.PageFooterSize-1] != fill {
			t.Fatalf("page %d contents wrong", id)
		}
	}
}

func TestLogUncommittedTailDiscarded(t *testing.T) {
	l, path := newTestLog(t)
	dbPath := filepath.Join(filepath.Dir(path), "pages.db")
	df := openFile(t, dbPath)
	df.Truncate(3 * testPageSize)
	df.Close()

	l.AppendPage(1, pageImage(0x11))
	l.AppendCommit()
	l.AppendPage(2, pageImage(0x22)) // no commit: must be dropped
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, stats := recoverFrom(t, path, dbPath, nil)
	defer l2.Close()
	if stats.PagesApplied != 1 {
		t.Fatalf("PagesApplied = %d, want 1 (uncommitted page replayed?)", stats.PagesApplied)
	}
	if stats.TornBytes == 0 {
		t.Fatal("TornBytes = 0, expected the uncommitted record's bytes")
	}
	page := make([]byte, testPageSize)
	df = openFile(t, dbPath)
	defer df.Close()
	if _, err := df.ReadAt(page, 2*testPageSize); err != nil {
		t.Fatal(err)
	}
	if page[0] == 0x22 {
		t.Fatal("uncommitted page image reached the page file")
	}
}

func TestLogAppRecordsDeliveredInOrder(t *testing.T) {
	l, path := newTestLog(t)
	dbPath := filepath.Join(filepath.Dir(path), "pages.db")

	l.AppendApp(7, []byte("first"))
	l.AppendCommit()
	l.AppendApp(9, []byte("second"))
	l.AppendCommit()
	l.AppendApp(9, []byte("dropped")) // uncommitted
	l.Sync()
	l.Close()

	var got []string
	var lsns []LSN
	l2, stats := recoverFrom(t, path, dbPath, func(lsn LSN, kind byte, payload []byte) error {
		got = append(got, string(payload))
		lsns = append(lsns, lsn)
		return nil
	})
	defer l2.Close()
	if stats.AppRecords != 2 || len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("app records = %v (stats %+v)", got, stats)
	}
	if lsns[0] >= lsns[1] {
		t.Fatalf("app record LSNs not increasing: %v", lsns)
	}
}

// TestLogTornTailEveryOffset chops the log at every byte length and
// verifies recovery always succeeds, never replays uncommitted state, and
// reports the discarded bytes.
func TestLogTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	f := openFile(t, path)
	l, err := Create(f, testPageSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.AppendPage(1, pageImage(0x33))
	l.AppendApp(1, []byte("delta-one"))
	l.AppendCommit()
	l.AppendPage(2, pageImage(0x44))
	l.AppendCommit()
	l.Sync()
	size, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != size.Size() {
		t.Fatal("short read of full log")
	}

	for cut := 0; cut <= len(full); cut++ {
		sub := t.TempDir()
		cutLog := filepath.Join(sub, "wal.log")
		cutDB := filepath.Join(sub, "pages.db")
		if err := os.WriteFile(cutLog, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		df := openFile(t, cutDB)
		df.Truncate(3 * testPageSize)
		df.Close()

		lf := openFile(t, cutLog)
		df = openFile(t, cutDB)
		apps := 0
		l2, stats, err := Recover(lf, df, testPageSize, 1, func(LSN, byte, []byte) error {
			apps++
			return nil
		})
		df.Close()
		if err != nil {
			t.Fatalf("cut %d: Recover failed: %v", cut, err)
		}
		// Appending after recovery must work: the log is positioned at
		// the committed end.
		l2.AppendCommit()
		if err := l2.Sync(); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		l2.Close()
		// Committed prefix grows monotonically with the cut: either
		// nothing, the first transaction, or both.
		switch {
		case stats.PagesApplied == 0 && apps == 0:
		case stats.PagesApplied == 1 && apps == 1:
		case stats.PagesApplied == 2 && apps == 1 && cut == len(full):
		default:
			t.Fatalf("cut %d: impossible recovery state %+v apps=%d", cut, stats, apps)
		}
	}
}

func TestLogResetPreservesLSNMonotonicity(t *testing.T) {
	l, path := newTestLog(t)
	defer os.Remove(path)
	l.AppendPage(1, pageImage(0x55))
	l.AppendCommit()
	end := l.EndLSN()
	if err := l.Reset(end + RecordOverhead); err != nil {
		t.Fatal(err)
	}
	lsn := l.AppendPage(1, pageImage(0x66))
	if lsn < end {
		t.Fatalf("post-reset LSN %d below pre-reset end %d", lsn, end)
	}
	if err := l.Reset(l.EndLSN() - 1); err == nil {
		t.Fatal("Reset accepted a base below the current end LSN")
	}
	l.Close()
}

func TestLogCheckpointBoundsReplay(t *testing.T) {
	l, path := newTestLog(t)
	dbPath := filepath.Join(filepath.Dir(path), "pages.db")
	df := openFile(t, dbPath)
	df.Truncate(3 * testPageSize)
	df.Close()

	l.AppendPage(1, pageImage(0x10))
	l.AppendCommit()
	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	l.AppendPage(2, pageImage(0x20))
	l.AppendCommit()
	l.Sync()
	l.Close()

	l2, stats := recoverFrom(t, path, dbPath, nil)
	defer l2.Close()
	if stats.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d, want 1", stats.Checkpoints)
	}
	// Only the post-checkpoint image is replayed; the checkpoint asserts
	// page 1 already reached the page file.
	if stats.PagesApplied != 1 {
		t.Fatalf("PagesApplied = %d, want 1", stats.PagesApplied)
	}
	if stats.LastCheckpointLSN == 0 {
		t.Fatal("LastCheckpointLSN not reported")
	}
}

func TestLogReplaySkipsNewerOnDiskPages(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	dbPath := filepath.Join(dir, "pages.db")
	f := openFile(t, path)
	l, err := Create(f, testPageSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	lsn := l.AppendPage(1, pageImage(0x77))
	l.AppendCommit()
	l.Sync()
	l.Close()

	// Simulate the page having already been flushed with that exact LSN.
	df := openFile(t, dbPath)
	page := make([]byte, testPageSize)
	copy(page, pageImage(0x77))
	store.StampPageFooter(page, uint64(lsn))
	if _, err := df.WriteAt(page, testPageSize); err != nil {
		t.Fatal(err)
	}
	df.Truncate(2 * testPageSize)
	df.Close()

	l2, stats := recoverFrom(t, path, dbPath, nil)
	defer l2.Close()
	if stats.PagesSkipped != 1 || stats.PagesApplied != 0 {
		t.Fatalf("stats = %+v, want 1 skip / 0 applies", stats)
	}
}

func TestLogTornHeaderReinitializesWithFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	dbPath := filepath.Join(dir, "pages.db")
	if err := os.WriteFile(path, []byte("garbage header"), 0o644); err != nil {
		t.Fatal(err)
	}
	lf := openFile(t, path)
	df := openFile(t, dbPath)
	l, stats, err := Recover(lf, df, testPageSize, 777, nil)
	df.Close()
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if stats.Replayed {
		t.Fatal("Replayed = true for a torn header")
	}
	if stats.TornBytes != int64(len("garbage header")) {
		t.Fatalf("TornBytes = %d", stats.TornBytes)
	}
	if got := l.EndLSN(); got != 777 {
		t.Fatalf("reinitialized base = %d, want fallback 777", got)
	}
}

func TestEnsureDurable(t *testing.T) {
	l, _ := newTestLog(t)
	defer l.Close()
	lsn := l.AppendPage(1, pageImage(0x01))
	l.AppendCommit()
	if l.DurableLSN() > lsn {
		t.Fatal("record durable before any sync")
	}
	if err := l.EnsureDurable(lsn, true); err != nil {
		t.Fatal(err)
	}
	if l.DurableLSN() <= lsn {
		t.Fatalf("EnsureDurable did not advance DurableLSN past %d", lsn)
	}
	// LSN 0 ("never logged") is always a no-op.
	if err := l.EnsureDurable(0, true); err != nil {
		t.Fatal(err)
	}
}
