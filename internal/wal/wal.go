// Package wal implements a physical redo write-ahead log for the
// page-based store, the durability half of the disk-backed WALRUS index.
//
// The log is a single append-only file of length+CRC-framed records.
// Three record classes exist: full page images (redo records), app
// records (opaque payloads the database layer uses for catalog deltas),
// and markers (commit, checkpoint). Appends accumulate in a group-commit
// buffer; Flush writes them to the OS and Sync makes them durable. Every
// record is addressed by its LSN — a monotonically increasing log
// position that survives log truncation via the base offset stored in
// the header (and, as a fallback, in the page file's meta page).
//
// Recovery (see recover.go) is ARIES-lite: redo-only, no undo. The
// database layer guarantees the no-steal discipline (uncommitted pages
// never reach the page file; see store.FlushHook), so scanning the log,
// discarding the torn or uncommitted tail, and reapplying committed page
// images whose LSN exceeds the on-disk page LSN reconstructs exactly the
// state of the last committed operation.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"walrus/internal/obs"
	"walrus/internal/store"
)

// LSN is a log sequence number: a position in the logical log stream. It
// increases monotonically across log truncations. 0 means "never logged".
type LSN uint64

// Record types.
const (
	recPage       = 1 // full page image; pageID set, payload = usable page bytes
	recCommit     = 2 // transaction boundary: records before this are atomic
	recCheckpoint = 3 // all prior page images are reflected in the page file
	recApp        = 4 // opaque app payload (catalog delta), tagged by kind
)

// Framing constants.
const (
	headerSize = 32
	// RecordOverhead is the size of a record header; a marker record
	// (commit, checkpoint) is exactly this long.
	RecordOverhead = 16

	walMagic   = 0x57414C4C // "WALL"
	walVersion = 1
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only write-ahead log. Safe for concurrent use, though
// the database serializes writers anyway.
type Log struct {
	mu       sync.Mutex
	f        store.File
	pageSize int // physical page size of the paired page file
	base     LSN // LSN of the first byte after the header

	written int64 // file offset: everything below is written to the OS
	durable int64 // file offset: everything below is fsynced
	buf     []byte

	om logMetrics // guarded by mu; zero value = observability off
}

// Record header layout (RecordOverhead bytes):
//
//	offset 0:  payload length (uint32)
//	offset 4:  CRC32-Castagnoli over bytes [8, 16+len) (uint32)
//	offset 8:  record type (byte)
//	offset 9:  app kind (byte; 0 unless type is recApp)
//	offset 10: reserved (uint16)
//	offset 12: page id (uint32; 0 unless type is recPage)

// Create initializes a fresh log on f (truncating it) for a page file
// with the given physical page size, starting the LSN stream at base.
func Create(f store.File, pageSize int, base LSN) (*Log, error) {
	l := &Log{f: f, pageSize: pageSize, base: base}
	if err := l.reset(base); err != nil {
		return nil, err
	}
	return l, nil
}

func encodeHeader(pageSize int, base LSN) []byte {
	h := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(h[0:], walMagic)
	binary.LittleEndian.PutUint32(h[4:], walVersion)
	binary.LittleEndian.PutUint32(h[8:], uint32(pageSize))
	binary.LittleEndian.PutUint32(h[12:], 0)
	binary.LittleEndian.PutUint64(h[16:], uint64(base))
	binary.LittleEndian.PutUint32(h[24:], crc32.Checksum(h[:24], walCRC))
	binary.LittleEndian.PutUint32(h[28:], 0)
	return h
}

func decodeHeader(h []byte) (pageSize int, base LSN, ok bool) {
	if len(h) < headerSize {
		return 0, 0, false
	}
	if binary.LittleEndian.Uint32(h[0:]) != walMagic ||
		binary.LittleEndian.Uint32(h[4:]) != walVersion {
		return 0, 0, false
	}
	if binary.LittleEndian.Uint32(h[24:]) != crc32.Checksum(h[:24], walCRC) {
		return 0, 0, false
	}
	ps := binary.LittleEndian.Uint32(h[8:])
	if ps < 64 || ps > 1<<24 {
		return 0, 0, false
	}
	return int(ps), LSN(binary.LittleEndian.Uint64(h[16:])), true
}

// lsnAt maps a file offset to an LSN. Caller holds mu.
func (l *Log) lsnAt(off int64) LSN { return l.base + LSN(off-headerSize) }

// EndLSN returns the LSN one past the last appended record (including
// buffered, not-yet-written appends).
func (l *Log) EndLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsnAt(l.written + int64(len(l.buf)))
}

// DurableLSN returns the LSN up to which the log is known fsynced.
func (l *Log) DurableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsnAt(l.durable)
}

// Size returns the log's logical size in bytes, including buffered
// appends — the quantity checkpoint scheduling throttles on.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.written + int64(len(l.buf)) - headerSize
}

// appendLocked frames one record into the group-commit buffer and returns its
// LSN. Caller holds mu.
func (l *Log) appendLocked(typ, kind byte, pageID uint32, payload []byte) LSN {
	var start time.Time
	if l.om.reg != nil {
		start = obs.Clock()
	}
	lsn := l.lsnAt(l.written + int64(len(l.buf)))
	h := [RecordOverhead]byte{}
	binary.LittleEndian.PutUint32(h[0:], uint32(len(payload)))
	h[8] = typ
	h[9] = kind
	binary.LittleEndian.PutUint32(h[12:], pageID)
	sum := crc32.Checksum(h[8:], walCRC)
	sum = crc32.Update(sum, walCRC, payload)
	binary.LittleEndian.PutUint32(h[4:], sum)
	l.buf = append(l.buf, h[:]...)
	l.buf = append(l.buf, payload...)
	l.om.appends.Inc()
	if l.om.reg != nil {
		l.om.reg.RecordSpan("wal.append", 0, start, obs.Since(start),
			obs.Attr{Key: "bytes", Value: int64(RecordOverhead + len(payload))})
	}
	return lsn
}

// AppendPage logs a full page image (usable bytes, as stored in a buffer
// pool frame) and returns the record's LSN, which the caller stamps on
// the frame so the page footer and the log agree.
func (l *Log) AppendPage(pageID uint32, data []byte) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(recPage, 0, pageID, data)
}

// AppendApp logs an opaque application record tagged with kind.
func (l *Log) AppendApp(kind byte, payload []byte) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(recApp, kind, 0, payload)
}

// AppendCommit logs a transaction boundary: records appended since the
// previous boundary become atomic with respect to recovery.
func (l *Log) AppendCommit() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.om.commits.Inc()
	return l.appendLocked(recCommit, 0, 0, nil)
}

// Flush writes the group-commit buffer to the OS without fsyncing.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.f.WriteAt(l.buf, l.written); err != nil {
		return fmt.Errorf("wal: writing %d bytes at %d: %w", len(l.buf), l.written, err)
	}
	l.om.bytesWritten.Add(uint64(len(l.buf)))
	l.written += int64(len(l.buf))
	l.buf = l.buf[:0]
	return nil
}

// Sync flushes the buffer and forces the log to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if l.durable == l.written {
		return nil
	}
	var start time.Time
	if l.om.reg != nil {
		start = obs.Clock()
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.durable = l.written
	l.om.fsyncs.Inc()
	if l.om.reg != nil {
		d := obs.Since(start)
		l.om.fsyncSeconds.Observe(d.Seconds())
		l.om.reg.RecordSpan("wal.fsync", 0, start, d)
	}
	return nil
}

// MaybeSync flushes the buffer to the OS and fsyncs only once at least
// threshold bytes have accumulated since the last sync — the group-commit
// policy.
func (l *Log) MaybeSync(threshold int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(); err != nil {
		return err
	}
	if l.written-l.durable >= threshold {
		var start time.Time
		if l.om.reg != nil {
			start = obs.Clock()
		}
		if err := l.syncLocked(); err != nil {
			return err
		}
		l.om.groupCommits.Inc()
		if l.om.reg != nil {
			l.om.reg.RecordSpan("wal.group_commit", 0, start, obs.Since(start))
		}
	}
	return nil
}

// EnsureDurable forces the log durable through lsn (the log-before-flush
// invariant consulted by the buffer pool before any page write-back).
// When sync is false it only flushes to the OS — the contract of
// Durability: None.
func (l *Log) EnsureDurable(lsn LSN, sync bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// lsnAt(durable) is the LSN the next appended byte would get; a
	// record is durable only when its start LSN lies strictly below it.
	if lsn == 0 || lsn < l.lsnAt(l.durable) {
		return nil
	}
	if !sync {
		return l.flushLocked()
	}
	return l.syncLocked()
}

// Checkpoint appends a checkpoint record and forces the log durable. The
// caller must have flushed and synced the page file first: the record
// asserts that every earlier page image is reflected on disk.
func (l *Log) Checkpoint() (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.appendLocked(recCheckpoint, 0, 0, nil)
	if err := l.syncLocked(); err != nil {
		return 0, err
	}
	return lsn, nil
}

// Reset discards the log contents and starts a fresh generation whose
// LSN stream begins at newBase (which must be >= the old end LSN; the
// caller persists it in the page file's meta beforehand so recovery can
// rebuild the header if this very sequence is torn).
func (l *Log) Reset(newBase LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cur := l.lsnAt(l.written + int64(len(l.buf))); newBase < cur {
		return fmt.Errorf("wal: reset base %d below current end LSN %d", newBase, cur)
	}
	return l.reset(newBase)
}

func (l *Log) reset(newBase LSN) error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncating: %w", err)
	}
	if _, err := l.f.WriteAt(encodeHeader(l.pageSize, newBase), 0); err != nil {
		return fmt.Errorf("wal: writing header: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync after reset: %w", err)
	}
	l.base = newBase
	l.written = headerSize
	l.durable = headerSize
	l.buf = l.buf[:0]
	return nil
}

// Close flushes, syncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.syncLocked(); err != nil {
		return errors.Join(err, l.f.Close())
	}
	return l.f.Close()
}
