package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplayWAL feeds arbitrary bytes to Recover as the log file. The
// invariants: recovery never panics, never errors on a readable file
// (corruption is data, not failure), and always returns a log that
// accepts appends — a database must survive any torn or garbage log.
func FuzzReplayWAL(f *testing.F) {
	build := func(fn func(l *Log)) []byte {
		dir, err := os.MkdirTemp("", "walfuzz")
		if err != nil {
			f.Fatal(err)
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "wal.log")
		lf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			f.Fatal(err)
		}
		l, err := Create(lf, testPageSize, 1)
		if err != nil {
			f.Fatal(err)
		}
		fn(l)
		l.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}

	empty := build(func(l *Log) {})
	full := build(func(l *Log) {
		l.AppendPage(1, pageImage(0xAB))
		l.AppendApp(1, []byte("catalog delta payload"))
		l.AppendCommit()
		l.AppendPage(2, pageImage(0xCD))
		l.AppendCommit()
		l.Checkpoint()
		l.AppendPage(1, pageImage(0xEF))
		l.AppendCommit()
		l.Sync()
	})
	f.Add(empty)
	f.Add(full)
	f.Add(full[:len(full)-7])         // torn tail
	f.Add(full[:headerSize+5])        // torn first record
	f.Add(full[:headerSize/2])        // torn header
	f.Add([]byte{})                   // missing log
	f.Add([]byte("not a wal at all")) // garbage
	corrupt := append([]byte(nil), full...)
	corrupt[headerSize+20] ^= 0xFF
	f.Add(corrupt) // bit flip inside a record

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		logPath := filepath.Join(dir, "wal.log")
		dbPath := filepath.Join(dir, "pages.db")
		if err := os.WriteFile(logPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dbPath, make([]byte, 8*testPageSize), 0o644); err != nil {
			t.Fatal(err)
		}
		lf, err := os.OpenFile(logPath, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		df, err := os.OpenFile(dbPath, os.O_RDWR, 0o644)
		if err != nil {
			lf.Close()
			t.Fatal(err)
		}
		l, stats, err := Recover(lf, df, testPageSize, 1, func(lsn LSN, kind byte, payload []byte) error {
			return nil
		})
		df.Close()
		if err != nil {
			t.Fatalf("Recover errored on readable input: %v", err)
		}
		if stats.TornBytes < 0 {
			t.Fatalf("negative TornBytes: %+v", stats)
		}
		l.AppendCommit()
		if err := l.Sync(); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		l.Close()
	})
}
